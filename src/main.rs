//! The `drdesync` command-line tool (§3.2: "The tool has a command line
//! interface and the desynchronization operation consists of a sequence
//! of steps").
//!
//! ```text
//! drdesync desync <input.v> [-o out.v] [--sdc out.sdc] [--blif out.blif]
//!                 [--lib hs|ll] [--single-group] [--muxed]
//!                 [--false-path NET]... [--clock PORT] [--period NS]
//!                 [--trace FILE] [--stop-after PASS] [--dump-after PASS[=FILE]]
//! drdesync gatefile [--lib hs|ll]
//! drdesync regions <input.v> [--lib hs|ll]
//! ```

use std::process::ExitCode;

use drd_core::{DesyncError, DesyncOptions, Desynchronizer, FlowContext, Pipeline};
use drd_liberty::gatefile::Gatefile;
use drd_liberty::{vlib90, Library};

fn usage() -> &'static str {
    "drdesync — fully-automated desynchronization of synchronous gate-level netlists\n\
     \n\
     USAGE:\n\
       drdesync desync <input.v> [-o OUT.v] [--sdc OUT.sdc] [--blif OUT.blif]\n\
                       [--lib hs|ll] [--single-group] [--muxed]\n\
                       [--false-path NET]... [--clock PORT] [--period NS]\n\
                       [--trace FILE] [--stop-after PASS] [--dump-after PASS[=FILE]]\n\
       drdesync gatefile [--lib hs|ll]\n\
       drdesync regions <input.v> [--lib hs|ll]\n"
}

fn pick_lib(args: &[String]) -> Library {
    match args.iter().position(|a| a == "--lib") {
        Some(i) if args.get(i + 1).map(String::as_str) == Some("ll") => vlib90::low_leakage(),
        _ => vlib90::high_speed(),
    }
}

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprint!("{}", usage());
        return Err("missing command".into());
    };
    match command.as_str() {
        "gatefile" => {
            let lib = pick_lib(&args);
            let gf = Gatefile::from_library(&lib)?;
            print!("{}", gf.to_text());
            Ok(())
        }
        "regions" => {
            let input = args.get(1).ok_or("missing input netlist")?;
            let lib = pick_lib(&args);
            let mut module = drd_netlist::verilog::parse_module(&std::fs::read_to_string(input)?)?;
            drd_core::region::clean_for_grouping(&mut module, &lib);
            let regions = drd_core::region::group(
                &module,
                &lib,
                &drd_core::region::GroupingOptions::recommended(),
            )?;
            for r in &regions.regions {
                println!(
                    "{}: {} cells, {} sequential{}",
                    r.name,
                    r.cells.len(),
                    r.seq_cells.len(),
                    if r.is_input_region { " (input registers)" } else { "" }
                );
            }
            Ok(())
        }
        "desync" => {
            let input = args.get(1).ok_or("missing input netlist")?;
            let lib = pick_lib(&args);
            let module = drd_netlist::verilog::parse_module(&std::fs::read_to_string(input)?)?;
            let mut opts = DesyncOptions::default();
            if args.iter().any(|a| a == "--single-group") {
                opts.grouping.single_group = true;
            }
            if args.iter().any(|a| a == "--muxed") {
                opts.muxed_delay_elements = true;
            }
            for (i, a) in args.iter().enumerate() {
                if a == "--false-path" {
                    if let Some(net) = args.get(i + 1) {
                        opts.grouping.false_path_nets.push(net.clone());
                    }
                }
            }
            if let Some(port) = flag_value(&args, "--clock") {
                opts.clock_port = Some(port.to_owned());
            }
            if let Some(period) = flag_value(&args, "--period") {
                opts.clock_period_ns = period.parse()?;
            }
            let stop_after = flag_value(&args, "--stop-after");
            let (dump_pass, dump_file) = match flag_value(&args, "--dump-after") {
                Some(v) => match v.split_once('=') {
                    Some((pass, file)) => (Some(pass.to_owned()), file.to_owned()),
                    None => (Some(v.to_owned()), format!("{v}.v")),
                },
                None => (None, String::new()),
            };

            let tool = Desynchronizer::new(&lib)?;
            let pipeline = Pipeline::standard();
            if let Some(pass) = &dump_pass {
                if !pipeline.pass_names().contains(&pass.as_str()) {
                    return Err(format!(
                        "unknown pass `{pass}` for --dump-after — pipeline has: {}",
                        pipeline.pass_names().join(", ")
                    )
                    .into());
                }
            }
            let mut cx = FlowContext::new(&lib, tool.gatefile(), module, opts.clone());
            let trace = pipeline.run_observed(&mut cx, stop_after, |name, cx| {
                if dump_pass.as_deref() == Some(name) {
                    std::fs::write(&dump_file, cx.netlist_verilog()).map_err(|e| {
                        DesyncError::Pipeline {
                            message: format!("cannot write checkpoint `{dump_file}`: {e}"),
                        }
                    })?;
                }
                Ok(())
            })?;
            if let Some(path) = flag_value(&args, "--trace") {
                std::fs::write(path, trace.to_json())?;
            }

            if trace.passes.len() < pipeline.pass_names().len() {
                // Early stop: report partial artifacts and checkpoint the
                // intermediate netlist instead of the finished design.
                let last = trace.passes.last().map_or("<none>", |p| p.name);
                eprintln!(
                    "stopped after pass `{last}` ({} of {} passes run)",
                    trace.passes.len(),
                    pipeline.pass_names().len()
                );
                for p in &trace.passes {
                    eprintln!("  {}: {} [{}]", p.name, p.detail, p.artifacts.join(", "));
                }
                let verilog = cx.netlist_verilog();
                match flag_value(&args, "-o") {
                    Some(path) => std::fs::write(path, verilog)?,
                    None => print!("{verilog}"),
                }
                if flag_value(&args, "--sdc").is_some() || flag_value(&args, "--blif").is_some() {
                    eprintln!("note: --sdc/--blif skipped — flow stopped before completion");
                }
                return Ok(());
            }

            let result = cx.into_result()?;
            let rep = &result.report;
            eprintln!(
                "desynchronized: clock `{}`, {} regions, {} flip-flops substituted, \
                 {} controllers, {} C-elements",
                rep.clock_net,
                rep.regions.len(),
                rep.substituted_ffs,
                rep.controllers,
                rep.celements
            );
            for r in &rep.regions {
                eprintln!(
                    "  {}: {} cells, {} ffs, cloud {:.3} ns, delay element {} levels",
                    r.name, r.cells, r.ffs, r.critical_delay_ns, r.delem_levels
                );
            }
            let verilog = drd_netlist::verilog::write_design(&result.design);
            match flag_value(&args, "-o") {
                Some(path) => std::fs::write(path, verilog)?,
                None => print!("{verilog}"),
            }
            if let Some(path) = flag_value(&args, "--sdc") {
                std::fs::write(path, &result.sdc)?;
            }
            if let Some(path) = flag_value(&args, "--blif") {
                let flat = drd_netlist::flatten(&result.design, result.design.top())?;
                std::fs::write(path, drd_netlist::blif::write_blif(&flat))?;
            }
            Ok(())
        }
        other => {
            eprint!("{}", usage());
            Err(format!("unknown command `{other}`").into())
        }
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
