//! The `drdesync` command-line tool (§3.2: "The tool has a command line
//! interface and the desynchronization operation consists of a sequence
//! of steps").
//!
//! ```text
//! drdesync desync <input.v> [-o out.v] [--sdc out.sdc] [--blif out.blif]
//!                 [--lib hs|ll] [--single-group] [--muxed] [--strict]
//!                 [--keep-sync-ff KIND]... [--jobs N]
//!                 [--max-cells N] [--max-nets N] [--pass-deadline-ms N]
//!                 [--false-path NET]... [--clock PORT] [--period NS]
//!                 [--trace FILE] [--stop-after PASS] [--dump-after PASS[=FILE]]
//! drdesync gatefile [--lib hs|ll]
//! drdesync regions <input.v> [--lib hs|ll]
//! drdesync simulate <input.v> [--lib hs|ll] [--seeds N] [--sigma S]
//!                   [--seed HEX] [--jobs N] [--check-liveness]
//! drdesync serve (--stdio | --socket PATH) [--lib hs|ll] [--jobs N]
//! ```
//!
//! Exit codes: `0` success (including degraded-but-completed flows, which
//! print a warning summary on stderr), `1` usage or I/O errors, `2` parse
//! errors in the input netlist (and invalid `--jobs` values, which are
//! rejected before any flow starts), `3` flow errors (including an
//! unrepairable liveness deadlock, which surfaces as a structured
//! `liveness guard failed` diagnostic).

use std::process::ExitCode;

use drd_core::{DesyncError, DesyncOptions, Desynchronizer, FlowContext, Pipeline};
use drd_liberty::gatefile::Gatefile;
use drd_liberty::{vlib90, Library};
use drd_netlist::NetlistError;

fn usage() -> &'static str {
    "drdesync — fully-automated desynchronization of synchronous gate-level netlists\n\
     \n\
     USAGE:\n\
       drdesync desync <input.v> [-o OUT.v] [--sdc OUT.sdc] [--blif OUT.blif]\n\
                       [--report OUT.report] [--lib hs|ll] [--single-group]\n\
                       [--muxed] [--strict] [--keep-sync-ff KIND]... [--jobs N]\n\
                       [--max-cells N] [--max-nets N] [--pass-deadline-ms N]\n\
                       [--false-path NET]... [--clock PORT] [--period NS]\n\
                       [--trace FILE] [--stop-after PASS] [--dump-after PASS[=FILE]]\n\
     \n\
     PARALLELISM:\n\
       --jobs N             worker threads for the per-region pass fan-out\n\
                            (N >= 1; default: DRD_WORKERS, else available\n\
                            cores; outputs are byte-identical for any count)\n\
       drdesync gatefile [--lib hs|ll]\n\
       drdesync regions <input.v> [--lib hs|ll]\n\
       drdesync simulate <input.v> [--lib hs|ll] [--seeds N] [--sigma S]\n\
                         [--seed HEX] [--jobs N] [--check-liveness]\n\
       drdesync serve (--stdio | --socket PATH) [--lib hs|ll] [--jobs N]\n\
     \n\
     SERVE:\n\
       long-running server accepting concurrent desynchronization jobs as\n\
       newline-delimited JSON requests on stdin/stdout (--stdio) or a Unix\n\
       domain socket (--socket PATH). One request per line:\n\
         {\"id\":\"j1\",\"kind\":\"desync\",\"verilog\":\"...\",\"options\":{...}}\n\
         {\"id\":\"s1\",\"kind\":\"stats\"}   {\"id\":\"bye\",\"kind\":\"shutdown\"}\n\
       Responses echo the id and carry the CLI exit-code taxonomy in an\n\
       exit_code field; artifacts are byte-identical to a one-shot CLI run.\n\
       Repeat submissions answer from an in-memory flow cache keyed on the\n\
       netlist content hash and the canonicalized options. --jobs N sets\n\
       the cross-job core-token pool (default: all cores). See README.\n\
     \n\
     SIMULATE:\n\
       desynchronizes the input, elaborates the handshake control network\n\
       and measures each region's effective cycle time with the\n\
       event-driven timing simulator; --seeds N (default 256) adds a\n\
       Monte-Carlo campaign of N chips at per-gate sigma S (default 0.15,\n\
       campaign seed --seed, workers --jobs). Data goes to stdout and is\n\
       byte-identical for any worker count; progress goes to stderr.\n\
       --check-liveness prints a per-region liveness verdict (source /\n\
       interior topology, request rise vs successor response bound, and\n\
       which repair the guard applied, if any).\n\
     \n\
     ROBUSTNESS:\n\
       --strict             fail fast instead of degrading unsupported regions\n\
                            (and instead of the liveness guard's synchronous\n\
                            fallback rung)\n\
       --keep-sync-ff KIND  treat flip-flop KIND as unsupported: regions\n\
                            containing it stay synchronous (repeatable)\n\
       --max-cells N        abort the flow if the netlist exceeds N cells\n\
       --max-nets N         abort the flow if the netlist exceeds N nets\n\
       --pass-deadline-ms N abort if any single pass runs longer than N ms\n\
     \n\
     EXIT CODES:\n\
       0  success (a degraded flow completes with a warning summary on stderr)\n\
       1  usage or I/O error\n\
       2  input netlist parse error\n\
       3  flow error\n"
}

/// Typed CLI failure: the variant decides the process exit code.
enum CliError {
    /// Bad invocation or I/O trouble → exit 1.
    Usage(String),
    /// The input netlist did not parse → exit 2.
    Parse(String),
    /// The desynchronization flow failed → exit 3.
    Flow(String),
}

impl CliError {
    fn code(&self) -> u8 {
        match self {
            CliError::Usage(_) => 1,
            CliError::Parse(_) => 2,
            CliError::Flow(_) => 3,
        }
    }

    fn message(&self) -> &str {
        match self {
            CliError::Usage(m) | CliError::Parse(m) | CliError::Flow(m) => m,
        }
    }
}

impl From<NetlistError> for CliError {
    fn from(e: NetlistError) -> CliError {
        CliError::Parse(e.to_string())
    }
}

impl From<DesyncError> for CliError {
    fn from(e: DesyncError) -> CliError {
        CliError::Flow(e.to_string())
    }
}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> CliError {
        CliError::Usage(e.to_string())
    }
}

impl From<String> for CliError {
    fn from(m: String) -> CliError {
        CliError::Usage(m)
    }
}

impl From<&str> for CliError {
    fn from(m: &str) -> CliError {
        CliError::Usage(m.to_owned())
    }
}

impl From<drd_liberty::LibraryError> for CliError {
    fn from(e: drd_liberty::LibraryError) -> CliError {
        CliError::Flow(e.to_string())
    }
}

fn pick_lib(args: &[String]) -> Library {
    match args.iter().position(|a| a == "--lib") {
        Some(i) if args.get(i + 1).map(String::as_str) == Some("ll") => vlib90::low_leakage(),
        _ => vlib90::high_speed(),
    }
}

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

/// Parses a `--flag N` numeric budget value.
fn parsed_flag<T: std::str::FromStr>(args: &[String], flag: &str) -> Result<Option<T>, CliError> {
    match flag_value(args, flag) {
        None => Ok(None),
        Some(raw) => raw.parse().map(Some).map_err(|_| {
            CliError::Usage(format!("{flag} expects a number, found `{raw}`"))
        }),
    }
}

/// Parses `--jobs N`, rejecting `0`: a zero-worker pool cannot run any
/// task, and silently clamping it up would hide the typo. Rejected as a
/// [`CliError::Parse`] (exit 2) before any flow work starts.
fn validated_jobs(args: &[String]) -> Result<Option<usize>, CliError> {
    match parsed_flag::<usize>(args, "--jobs")? {
        Some(0) => Err(CliError::Parse(
            "--jobs must be at least 1 (a zero-worker pool can run nothing); \
             pass --jobs N with N >= 1, or omit --jobs to use all cores"
                .to_owned(),
        )),
        other => Ok(other),
    }
}

/// `simulate --check-liveness`: a per-region verdict under the liveness
/// guard's response-bound model (DESIGN.md §3i) — topology class, rise
/// time vs the fastest successor's response bound, and the repair the
/// flow recorded for the region, if any.
fn print_liveness_verdicts(
    report: &drd_core::DesyncReport,
    lib: &Library,
) -> Result<(), CliError> {
    use drd_core::liveness::{is_source, join_fanin, RegionState, ResponseModel};
    let model = ResponseModel::probe(lib)?;
    let states: Vec<RegionState> = report
        .regions
        .iter()
        .map(|r| RegionState {
            name: r.name.clone(),
            controlled: r.ffs > 0 && r.delem_levels > 0,
            levels: r.delem_levels,
            latched: report.liveness_repairs.iter().any(|lr| {
                lr.region == r.name
                    && matches!(lr.action, drd_core::LivenessAction::RequestLatch)
            }),
        })
        .collect();
    let slot = |name: &str| report.regions.iter().position(|r| r.name == name);
    let edges: Vec<(usize, usize)> = report
        .ddg_edges
        .iter()
        .filter_map(|(a, b)| Some((slot(a)?, slot(b)?)))
        .collect();
    for (i, s) in states.iter().enumerate() {
        if !s.controlled {
            println!("liveness {}: synchronous (not handshake-controlled)", s.name);
            continue;
        }
        if !is_source(&states, &edges, i) {
            println!(
                "liveness {}: interior — requests held by C-element joins, no pulse hazard",
                s.name
            );
            continue;
        }
        let rise = model.rise_ns(s.levels);
        let bound = edges
            .iter()
            .filter(|&&(p, q)| p == i && q != i && states[q].controlled)
            .map(|&(_, q)| {
                model.edge_response_ns(states[q].levels, join_fanin(&states, &edges, q))
            })
            .fold(f64::INFINITY, f64::min);
        let verdict = if s.latched {
            "request latch holds the loopback"
        } else if rise < bound {
            "rise inside the response window"
        } else {
            "HAZARD — pulse can be swallowed"
        };
        println!(
            "liveness {}: source — rise {:.3} ns vs successor response {:.3} ns: {verdict}",
            s.name, rise, bound
        );
    }
    for lr in &report.liveness_repairs {
        println!("liveness repair: {lr}");
    }
    Ok(())
}

fn run() -> Result<(), CliError> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprint!("{}", usage());
        return Err("missing command".into());
    };
    match command.as_str() {
        "gatefile" => {
            let lib = pick_lib(&args);
            let gf = Gatefile::from_library(&lib)?;
            print!("{}", gf.to_text());
            Ok(())
        }
        "regions" => {
            let input = args.get(1).ok_or("missing input netlist")?;
            let lib = pick_lib(&args);
            let mut module = drd_netlist::verilog::parse_module(&std::fs::read_to_string(input)?)?;
            drd_core::region::clean_for_grouping(&mut module, &lib);
            let regions = drd_core::region::group(
                &module,
                &lib,
                &drd_core::region::GroupingOptions::recommended(),
            )?;
            for r in &regions.regions {
                println!(
                    "{}: {} cells, {} sequential{}",
                    r.name,
                    r.cells.len(),
                    r.seq_cells.len(),
                    if r.is_input_region { " (input registers)" } else { "" }
                );
            }
            Ok(())
        }
        "simulate" => {
            let input = args.get(1).ok_or("missing input netlist")?;
            let lib = pick_lib(&args);
            let module = drd_netlist::verilog::parse_module(&std::fs::read_to_string(input)?)?;
            let chips: usize = parsed_flag(&args, "--seeds")?.unwrap_or(256);
            let sigma: f64 = parsed_flag(&args, "--sigma")?.unwrap_or(0.15);
            let seed = match flag_value(&args, "--seed") {
                None => 0xD15E_A5E0,
                Some(raw) => {
                    u64::from_str_radix(raw.trim_start_matches("0x"), 16).map_err(|_| {
                        CliError::Usage(format!("--seed expects a hex value, found `{raw}`"))
                    })?
                }
            };
            let jobs: Option<usize> = validated_jobs(&args)?;
            let workers = jobs.unwrap_or_else(drd_runner::runner::worker_count);

            let tool = Desynchronizer::new(&lib)?;
            let opts = DesyncOptions {
                jobs,
                ..DesyncOptions::default()
            };
            let result = tool.run(&module, &opts)?;
            if args.iter().any(|a| a == "--check-liveness") {
                print_liveness_verdicts(&result.report, &lib)?;
            }
            let spec = drd_flow::handshake_spec(&result.report, &lib)?;
            if !spec.regions.iter().any(|r| r.controlled) {
                println!("no controlled regions — nothing to simulate");
                return Ok(());
            }
            let net = drd_sim::HandshakeNet::elaborate(&spec, &lib)
                .map_err(|e| CliError::Flow(e.to_string()))?;
            eprintln!(
                "control network: {} controlled regions, {} variability gates",
                net.region_names().len(),
                net.gate_count()
            );
            let nominal = net
                .nominal_cycle_times()
                .map_err(|e| CliError::Flow(e.to_string()))?;
            let mut worst = 0.0f64;
            for c in &nominal {
                println!(
                    "region {}: cycle {:.6} ns (matched floor {:.6} ns, {} cycles measured)",
                    c.region, c.cycle_ns, c.matched_delay_ns, c.cycles
                );
                worst = worst.max(c.cycle_ns);
            }
            let ones = vec![1.0f64; net.gate_count()];
            println!("nominal effective period: {worst:.6} ns");
            println!(
                "synchronous reference period: {:.6} ns",
                drd_sim::fs_to_ns(net.sync_period_fs(&ones))
            );

            if chips > 0 {
                eprintln!(
                    "monte carlo: {chips} chips, sigma {sigma}, seed {seed:#x}, \
                     {workers} workers"
                );
                let var = drd_sim::GateVariability::new(seed, sigma);
                let samples = net
                    .monte_carlo(&var, chips, workers)
                    .map_err(|e| CliError::Flow(e.to_string()))?;
                let n = samples.len() as f64;
                let mean = samples.iter().map(|s| s.desync_cycle_ns).sum::<f64>() / n;
                let min = samples
                    .iter()
                    .map(|s| s.desync_cycle_ns)
                    .fold(f64::INFINITY, f64::min);
                let max = samples
                    .iter()
                    .map(|s| s.desync_cycle_ns)
                    .fold(0.0f64, f64::max);
                let sync_worst = samples
                    .iter()
                    .map(|s| s.sync_period_ns)
                    .fold(0.0f64, f64::max);
                let faster = samples
                    .iter()
                    .filter(|s| s.desync_cycle_ns < sync_worst)
                    .count();
                println!(
                    "monte carlo ({chips} chips, sigma {sigma}): desync cycle mean \
                     {mean:.6} ns, min {min:.6} ns, max {max:.6} ns"
                );
                println!("sync worst-case period: {sync_worst:.6} ns");
                println!(
                    "chips faster than sync worst-case: {:.4}",
                    faster as f64 / n
                );
            }
            Ok(())
        }
        "serve" => {
            let lib = pick_lib(&args);
            let tokens = validated_jobs(&args)?.unwrap_or_else(drd_runner::runner::worker_count);
            let server = drd_serve::Server::new(&lib, tokens)?;
            if args.iter().any(|a| a == "--stdio") {
                let stdin = std::io::stdin().lock();
                // `Stdout` (not the non-Send lock) — job threads share it.
                let stdout = std::io::stdout();
                let stop = std::sync::atomic::AtomicBool::new(false);
                drd_serve::serve_stream(&server, stdin, stdout, &stop)?;
                Ok(())
            } else if let Some(path) = flag_value(&args, "--socket") {
                eprintln!("serving on unix socket `{path}` with {tokens} core token(s)");
                drd_serve::serve_unix(&server, std::path::Path::new(path))?;
                Ok(())
            } else {
                Err("serve needs --stdio or --socket PATH".into())
            }
        }
        "desync" => {
            let input = args.get(1).ok_or("missing input netlist")?;
            let lib = pick_lib(&args);
            let module = drd_netlist::verilog::parse_module(&std::fs::read_to_string(input)?)?;
            let mut opts = DesyncOptions::default();
            if args.iter().any(|a| a == "--single-group") {
                opts.grouping.single_group = true;
            }
            if args.iter().any(|a| a == "--muxed") {
                opts.muxed_delay_elements = true;
            }
            for (i, a) in args.iter().enumerate() {
                if a == "--false-path" {
                    if let Some(net) = args.get(i + 1) {
                        opts.grouping.false_path_nets.push(net.clone());
                    }
                }
            }
            if let Some(port) = flag_value(&args, "--clock") {
                opts.clock_port = Some(port.to_owned());
            }
            if let Some(period) = parsed_flag(&args, "--period")? {
                opts.clock_period_ns = period;
            }
            opts.strict = args.iter().any(|a| a == "--strict");
            opts.jobs = validated_jobs(&args)?;
            opts.max_cells = parsed_flag(&args, "--max-cells")?;
            opts.max_nets = parsed_flag(&args, "--max-nets")?;
            opts.pass_deadline_ms = parsed_flag(&args, "--pass-deadline-ms")?;
            opts.stg_state_limit = parsed_flag(&args, "--stg-state-limit")?;
            let stop_after = flag_value(&args, "--stop-after");
            let (dump_pass, dump_file) = match flag_value(&args, "--dump-after") {
                Some(v) => match v.split_once('=') {
                    Some((pass, file)) => (Some(pass.to_owned()), file.to_owned()),
                    None => (Some(v.to_owned()), format!("{v}.v")),
                },
                None => (None, String::new()),
            };

            let tool = Desynchronizer::new(&lib)?;
            // `--keep-sync-ff KIND` drops KIND's substitution rule, so
            // regions containing it stay synchronous (or, with --strict,
            // fail the flow).
            let mut gatefile = tool.gatefile().clone();
            for (i, a) in args.iter().enumerate() {
                if a == "--keep-sync-ff" {
                    let kind = args
                        .get(i + 1)
                        .ok_or("--keep-sync-ff expects a flip-flop kind")?;
                    gatefile.rules.retain(|r| &r.ff != kind);
                }
            }
            let pipeline = Pipeline::standard();
            if let Some(pass) = &dump_pass {
                if !pipeline.pass_names().contains(&pass.as_str()) {
                    return Err(format!(
                        "unknown pass `{pass}` for --dump-after — pipeline has: {}",
                        pipeline.pass_names().join(", ")
                    )
                    .into());
                }
            }
            let mut cx = FlowContext::new(&lib, &gatefile, module, opts.clone());
            let trace = pipeline.run_observed(&mut cx, stop_after, |name, cx| {
                if dump_pass.as_deref() == Some(name) {
                    std::fs::write(&dump_file, cx.netlist_verilog()).map_err(|e| {
                        DesyncError::Pipeline {
                            message: format!("cannot write checkpoint `{dump_file}`: {e}"),
                        }
                    })?;
                }
                Ok(())
            })?;
            if let Some(path) = flag_value(&args, "--trace") {
                std::fs::write(path, trace.to_json())?;
            }

            if trace.passes.len() < pipeline.pass_names().len() {
                // Early stop: report partial artifacts and checkpoint the
                // intermediate netlist instead of the finished design.
                let last = trace.passes.last().map_or("<none>", |p| p.name);
                eprintln!(
                    "stopped after pass `{last}` ({} of {} passes run)",
                    trace.passes.len(),
                    pipeline.pass_names().len()
                );
                for p in &trace.passes {
                    eprintln!("  {}: {} [{}]", p.name, p.detail, p.artifacts.join(", "));
                }
                let verilog = cx.netlist_verilog();
                match flag_value(&args, "-o") {
                    Some(path) => std::fs::write(path, verilog)?,
                    None => print!("{verilog}"),
                }
                if flag_value(&args, "--sdc").is_some() || flag_value(&args, "--blif").is_some() {
                    eprintln!("note: --sdc/--blif skipped — flow stopped before completion");
                }
                return Ok(());
            }

            let result = cx.into_result()?;
            let rep = &result.report;
            eprintln!(
                "desynchronized: clock `{}`, {} regions, {} flip-flops substituted, \
                 {} controllers, {} C-elements",
                rep.clock_net,
                rep.regions.len(),
                rep.substituted_ffs,
                rep.controllers,
                rep.celements
            );
            if !rep.liveness_repairs.is_empty() {
                eprintln!(
                    "warning: liveness guard repaired {} pulse-swallowing hazard record(s):",
                    rep.liveness_repairs.len()
                );
                for lr in &rep.liveness_repairs {
                    eprintln!("  {lr}");
                }
            }
            if !rep.degradations.is_empty() {
                eprintln!(
                    "warning: {} region(s) left synchronous (run with --strict to fail instead):",
                    rep.degradations.len()
                );
                for d in &rep.degradations {
                    eprintln!("  {d}");
                }
            }
            for r in &rep.regions {
                eprintln!(
                    "  {}: {} cells, {} ffs, cloud {:.3} ns, delay element {} levels",
                    r.name, r.cells, r.ffs, r.critical_delay_ns, r.delem_levels
                );
            }
            let verilog = drd_netlist::verilog::write_design(&result.design);
            match flag_value(&args, "-o") {
                Some(path) => std::fs::write(path, verilog)?,
                None => print!("{verilog}"),
            }
            if let Some(path) = flag_value(&args, "--sdc") {
                std::fs::write(path, &result.sdc)?;
            }
            if let Some(path) = flag_value(&args, "--report") {
                // Identical bytes to a serve response's `report` field —
                // the differential oracle compares the two directly.
                std::fs::write(path, format!("{:?}", result.report))?;
            }
            if let Some(path) = flag_value(&args, "--blif") {
                let flat = drd_netlist::flatten(&result.design, result.design.top())?;
                std::fs::write(path, drd_netlist::blif::write_blif(&flat))?;
            }
            Ok(())
        }
        other => {
            eprint!("{}", usage());
            Err(format!("unknown command `{other}`").into())
        }
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {}", e.message());
            ExitCode::from(e.code())
        }
    }
}
