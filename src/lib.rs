//! # drdesync — a fully-automated desynchronization flow for synchronous circuits
//!
//! Rust reproduction of the DAC 2007 paper / 2006 master's thesis
//! *"A Fully-Automated Desynchronization Flow for Synchronous Circuits"*
//! (N. Andrikos, University of Crete / ICS-FORTH / STMicroelectronics).
//!
//! This facade crate re-exports the workspace and hosts the `drdesync`
//! command-line tool, the runnable examples and the cross-crate
//! integration tests. Start with:
//!
//! * [`core`] — the desynchronization tool itself (regions, flip-flop
//!   substitution, delay elements, controller network, SDC),
//! * [`netlist`] — gate-level Verilog in/out,
//! * [`liberty`] — the `.lib` parser, gatefile and the `vlib90` library,
//! * [`sim`] — event-driven simulation and flow-equivalence checking,
//! * [`flow`] — the end-to-end methodology and the Chapter-5 experiments.
//!
//! ```no_run
//! use drdesync::core::{DesyncOptions, Desynchronizer};
//! use drdesync::liberty::vlib90;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let lib = vlib90::high_speed();
//! let src = std::fs::read_to_string("chip.v")?;
//! let module = drdesync::netlist::verilog::parse_module(&src)?;
//! let result = Desynchronizer::new(&lib)?.run(&module, &DesyncOptions::default())?;
//! println!("{}", result.sdc);
//! # Ok(())
//! # }
//! ```

pub use drd_core as core;
pub use drd_designs as designs;
pub use drd_flow as flow;
pub use drd_liberty as liberty;
pub use drd_netlist as netlist;
pub use drd_sim as sim;
pub use drd_sta as sta;
pub use drd_stg as stg;
