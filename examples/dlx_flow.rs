//! The full DLX flow (§5.2): generate the processor, desynchronize it,
//! run both implementations through the analytical backend, and print the
//! Table-5.1-shaped comparison plus the generated backend constraints.
//!
//! Run with: `cargo run --example dlx_flow --release`

use drdesync::designs::dlx::DlxParams;
use drdesync::flow::experiment::{area_comparison, CaseStudy};
use drdesync::flow::report::render_area_table;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let case = CaseStudy::dlx(&DlxParams::full())?;
    println!(
        "DLX generated: {} cells (paper's DLX: 14,855 cells post-synthesis)",
        case.module.cell_count()
    );

    let desync = case.desynchronize()?;
    println!("\n--- desynchronization report ---");
    println!("clock net: {}", desync.report.clock_net);
    for r in &desync.report.regions {
        println!(
            "  {}: {} cells, {} ffs, cloud delay {:.3} ns, delay element {} levels",
            r.name, r.cells, r.ffs, r.critical_delay_ns, r.delem_levels
        );
    }
    println!("\n--- generated SDC (Fig. 4.2 / 4.5) ---");
    for line in desync.sdc.lines().take(12) {
        println!("{line}");
    }
    println!("  …");

    println!("\n--- area comparison (Table 5.1) ---");
    let cmp = area_comparison(&case)?;
    print!("{}", render_area_table(&cmp));
    Ok(())
}
