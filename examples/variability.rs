//! Variability tolerance (§2.5, Fig. 5.4): the desynchronized circuit's
//! effective period tracks each chip's silicon, so most chips beat the
//! synchronous worst-case clock.
//!
//! Run with: `cargo run --example variability --release`

use drdesync::designs::dlx::DlxParams;
use drdesync::flow::experiment::{variability_study, CaseStudy};
use drdesync::flow::report::render_variability_figure;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let case = CaseStudy::dlx(&DlxParams {
        width: 16,
        regs_log2: 4,
        rom_log2: 5,
        ram_log2: 3,
        seed: 0xD1_5C0DE,
    })?;
    let study = variability_study(&case, 1000, 0.15, 42)?;
    print!("{}", render_variability_figure(&study));
    Ok(())
}
