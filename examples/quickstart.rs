//! Quickstart: desynchronize the paper's worked example (the Fig. 2.2
//! circuit) and verify flow equivalence against its synchronous self.
//!
//! Run with: `cargo run --example quickstart --release`

use drdesync::core::{DesyncOptions, Desynchronizer};
use drdesync::liberty::{vlib90, Lv};
use drdesync::netlist::Design;
use drdesync::sim::{compare_capture_logs, SimOptions, Simulator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let lib = vlib90::high_speed();
    let module = drdesync::designs::sample::figure_2_2()?;
    println!("input: `{}` with {} cells", module.name, module.cell_count());

    // 1. Desynchronize.
    let tool = Desynchronizer::new(&lib)?;
    let result = tool.run(&module, &DesyncOptions::default())?;
    println!(
        "regions: {:?}",
        result.report.regions.iter().map(|r| &r.name).collect::<Vec<_>>()
    );
    println!("data dependencies (Fig. 2.6): {:?}", result.report.ddg_edges);

    // 2. Synchronous reference simulation.
    let mut sync = Design::new();
    sync.insert(module.clone());
    let mut reference = Simulator::new(&sync, &lib, SimOptions::default())?;
    for i in 0..drdesync::designs::sample::WIDTH {
        reference.poke(&format!("din[{i}]"), Lv::from_bool(i % 2 == 0))?;
    }
    reference.schedule_clock("clk", 2.0, 1.0, 16)?;
    reference.run_for(40.0);

    // 3. Desynchronized simulation: free-running after reset.
    let mut dut = Simulator::new(&result.design, &lib, SimOptions::default())?;
    for i in 0..drdesync::designs::sample::WIDTH {
        dut.poke(&format!("din[{i}]"), Lv::from_bool(i % 2 == 0))?;
    }
    dut.poke("drd_rst", Lv::Zero)?;
    dut.run_for(2.0);
    dut.poke("drd_rst", Lv::One)?;
    dut.run_for(120.0);

    // 4. Flow equivalence: every register's data sequence matches.
    let check = compare_capture_logs(reference.captures(), dut.captures(), |n| format!("{n}_ls"));
    println!("flow equivalence: {check:?}");
    assert!(check.is_equivalent());

    // 5. Export.
    let verilog = drdesync::netlist::verilog::write_design(&result.design);
    println!(
        "exported {} lines of Verilog and {} lines of SDC",
        verilog.lines().count(),
        result.sdc.lines().count()
    );
    Ok(())
}
