//! Protocol explorer (Fig. 2.4): reachability, liveness and executable
//! flow-equivalence checking for the desynchronization handshake
//! protocols, plus the fall-decoupled overwriting counterexample.
//!
//! Run with: `cargo run --example protocol_explorer --release`

use drdesync::stg::flow_equiv::{check_flow_equivalence, FlowEquivalence};
use drdesync::stg::protocols::Protocol;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    for p in Protocol::ALL {
        let stg = p.stg();
        let reach = stg.reachability(1 << 14)?;
        println!("\n{} — {} reachable states", p.name(), reach.state_count());
        println!("  live: {}", stg.is_live() && reach.deadlocks().is_empty());
        if p.executable_fe() {
            match check_flow_equivalence(&stg, 4, 1 << 22)? {
                FlowEquivalence::Ok => println!("  flow-equivalent on a 4-latch pipeline ✓"),
                FlowEquivalence::Violated { reason } => {
                    println!("  NOT flow-equivalent: {reason}")
                }
                FlowEquivalence::Deadlock => println!("  deadlocks"),
            }
        } else {
            println!("  flow equivalence per the proof in [4] (see drd-stg docs)");
        }
    }
    Ok(())
}
