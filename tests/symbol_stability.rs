//! `Symbol` stability across parse → flow → write: symbols recorded on
//! the parsed input module still resolve to the same bytes in the flow
//! output (the flow clones the module, so its interner travels with it),
//! and the exported Verilog spells every surviving name identically.

use std::path::PathBuf;

use drd_check::netgen::{NetGenParams, NetRecipe};
use drd_check::Rng;
use drdesync::core::Desynchronizer;
use drdesync::netlist::Symbol;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

#[test]
fn symbols_survive_parse_flow_write() {
    let src = std::fs::read_to_string(golden_dir().join("escaped_small.v")).expect("input reads");
    let module = drdesync::netlist::verilog::parse_module(&src).expect("input parses");

    // Record every name boundary-crossing symbol on the parsed module.
    let mut recorded: Vec<(Symbol, String)> = Vec::new();
    for (id, net) in module.nets() {
        recorded.push((module.net_sym(id), net.name.to_owned()));
    }
    for (id, cell) in module.cells() {
        recorded.push((module.cell_sym(id), cell.name.to_owned()));
    }
    assert!(recorded.len() > 4, "fixture is non-trivial");

    let lib = drdesync::liberty::vlib90::high_speed();
    let tool = Desynchronizer::new(&lib).expect("tool builds");
    let result = tool
        .run(&module, &drdesync::core::DesyncOptions::default())
        .expect("desync runs");

    // The flow mutates a clone of the input module, so every recorded
    // symbol must still resolve to the exact same bytes in the output.
    let out = result.design.top_module();
    for (sym, name) in &recorded {
        assert_eq!(
            out.symbols().resolve(*sym),
            name.as_str(),
            "symbol for `{name}` drifted through the flow"
        );
    }

    // Names that survive into the output netlist are spelled identically
    // at the write boundary (modulo Verilog escaping, which the reparse
    // strips again).
    let text = drdesync::netlist::verilog::write_design(&result.design);
    let back = drdesync::netlist::verilog::parse_design(&text).expect("output reparses");
    let back_top = back.top_module();
    let mut survived = 0usize;
    for (_, name) in &recorded {
        if out.find_net(name).is_some() && back_top.find_net(name).is_some() {
            survived += 1;
        }
    }
    assert!(survived >= 2, "escaped input nets survive to the output: {survived}");
}

/// The writer's output is a fixed point of write ∘ parse: once a netlist
/// has been exported, re-parsing and re-exporting it reproduces the same
/// bytes. This pins symbol interning, escaped-name sanitization, bus-bit
/// naming and port ordering all at once — any drift in one of them shows
/// up as a byte diff on the second round trip.
#[test]
fn write_parse_write_is_a_fixed_point() {
    let mut sources: Vec<(String, String)> = Vec::new();

    let params = NetGenParams::default();
    let mut rng = Rng::new(0xF1F0_1A17_2026_0808);
    for case in 0..25 {
        let recipe = NetRecipe::sample(&mut rng, &params);
        sources.push((format!("fuzz netlist {case}"), recipe.verilog()));
    }
    for name in ["escaped_small.v", "escaped_small_out.v"] {
        let text = std::fs::read_to_string(golden_dir().join(name)).expect("fixture reads");
        sources.push((name.to_owned(), text));
    }

    for (what, src) in &sources {
        let design = drdesync::netlist::verilog::parse_design(src)
            .unwrap_or_else(|e| panic!("{what} parses: {e}"));
        let first = drdesync::netlist::verilog::write_design(&design);
        let reparsed = drdesync::netlist::verilog::parse_design(&first)
            .unwrap_or_else(|e| panic!("written {what} reparses: {e}"));
        let second = drdesync::netlist::verilog::write_design(&reparsed);
        assert_eq!(first, second, "write∘parse not a fixed point for {what}");
    }
}
