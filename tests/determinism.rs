//! Parallel determinism suite: every flow artifact — report, SDC, exported
//! Verilog and the deterministic FlowTrace rendering — must be
//! byte-identical whatever the worker count. The per-region fan-out only
//! parallelizes read-only analysis; merges happen serially in region-index
//! order, so `--jobs`/`DRD_WORKERS` must never leak into outputs.
//!
//! Cases route through `prop_par_with`, so the suite itself exercises the
//! parallel runner; re-run a single case with `DRD_PROP_CASE_SEED=<seed>`.

use drd_check::netgen::{NetGenParams, NetRecipe};
use drd_check::{prop_par_with, Config, Rng};
use drdesync::core::{DesyncOptions, Desynchronizer};
use drdesync::liberty::vlib90;

#[test]
fn flow_artifacts_are_byte_identical_for_any_worker_count() {
    let lib = vlib90::high_speed();
    let tool = Desynchronizer::new(&lib).expect("tool builds");
    let params = NetGenParams {
        max_stages: 4,
        max_width: 4,
        max_cloud: 12,
        max_inputs: 4,
        scan_set_reset: true,
    };
    prop_par_with(
        Config::new(25).seed(0xDE7E_2313_57A8_1E01),
        |rng: &mut Rng| NetRecipe::sample(rng, &params),
        |recipe: &NetRecipe| {
            let module = recipe.build().map_err(|e| e.to_string())?;
            // One artifact bundle per worker count; flow errors must also
            // be identical, so they become part of the bundle.
            let bundle = |jobs: usize| -> [String; 4] {
                let opts = DesyncOptions {
                    jobs: Some(jobs),
                    ..DesyncOptions::default()
                };
                match tool.run_traced(module.clone(), &opts) {
                    Ok((result, trace)) => [
                        format!("{:?}", result.report),
                        result.sdc.clone(),
                        drdesync::netlist::verilog::write_design(&result.design),
                        trace.to_json_deterministic(),
                    ],
                    Err(e) => [format!("flow error: {e}"), String::new(), String::new(), String::new()],
                }
            };
            let serial = bundle(1);
            for workers in [2, 8] {
                let par = bundle(workers);
                if serial != par {
                    let which = ["report", "sdc", "verilog", "trace"]
                        .iter()
                        .zip(serial.iter().zip(par.iter()))
                        .filter(|(_, (a, b))| a != b)
                        .map(|(n, _)| *n)
                        .collect::<Vec<_>>()
                        .join(", ");
                    return Err(format!("workers={workers} diverged in: {which}"));
                }
            }
            Ok(())
        },
    );
}
