//! Parallel determinism suite: every flow artifact — report, SDC, exported
//! Verilog and the deterministic FlowTrace rendering — must be
//! byte-identical whatever the worker count. The per-region fan-out only
//! parallelizes read-only analysis; merges happen serially in region-index
//! order, so `--jobs`/`DRD_WORKERS` must never leak into outputs.
//!
//! Cases route through `prop_par_with`, so the suite itself exercises the
//! parallel runner; re-run a single case with `DRD_PROP_CASE_SEED=<seed>`.

use drd_check::netgen::{NetGenParams, NetRecipe};
use drd_check::{prop_par_with, Config, Rng};
use drdesync::core::{DesyncOptions, Desynchronizer};
use drdesync::liberty::vlib90;
use drdesync::sim::{GateVariability, HandshakeNet, HandshakeSpec, RegionSpec};

/// The `BENCH_variability` sample vectors: a 1000-chip Monte-Carlo
/// campaign over a four-region handshake ring must merge byte-identically
/// whatever the worker split — every `(chip, desync_cycle_ns,
/// sync_period_ns)` triple, compared at the bit level.
#[test]
fn mc_sample_vectors_are_byte_identical_for_any_worker_count() {
    let lib = vlib90::high_speed();
    let spec = HandshakeSpec {
        regions: (0..4)
            .map(|i| RegionSpec {
                name: format!("g{i}"),
                controlled: true,
                matched_levels: 4 + 3 * i,
                critical_delay_ns: 0.2 + 0.1 * i as f64,
                loopback_latch: false,
            })
            .collect(),
        edges: vec![(0, 1), (1, 2), (2, 3), (3, 0)],
        level_delay_ns: 0.09,
        ff_overhead_ns: 0.15,
    };
    let net = HandshakeNet::elaborate(&spec, &lib).expect("ring elaborates");
    let var = GateVariability::new(0x0BE7_A110, 0.18);
    let serial = net.monte_carlo(&var, 1000, 1).expect("serial campaign");
    assert_eq!(serial.len(), 1000);
    // The campaign must also not collapse to a constant: variability has
    // to actually reach the samples.
    let distinct: std::collections::HashSet<u64> =
        serial.iter().map(|s| s.desync_cycle_ns.to_bits()).collect();
    assert!(distinct.len() > 900, "only {} distinct cycles", distinct.len());
    for workers in [2, 8] {
        let par = net.monte_carlo(&var, 1000, workers).expect("parallel campaign");
        assert_eq!(par.len(), serial.len(), "workers={workers}");
        for (a, b) in serial.iter().zip(&par) {
            assert_eq!(a.chip, b.chip, "workers={workers}");
            assert_eq!(
                a.desync_cycle_ns.to_bits(),
                b.desync_cycle_ns.to_bits(),
                "chip {} desync cycle diverged at workers={workers}",
                a.chip
            );
            assert_eq!(
                a.sync_period_ns.to_bits(),
                b.sync_period_ns.to_bits(),
                "chip {} sync period diverged at workers={workers}",
                a.chip
            );
        }
    }
}

/// The streaming front end parses independent modules in parallel and
/// merges them in module-index order; the exported bytes must be
/// identical whatever the job count, including the cross-module instance
/// retargeting pass that runs after the merge.
#[test]
fn parallel_parse_is_byte_identical_for_any_job_count() {
    let params = NetGenParams::default();
    let mut rng = Rng::new(0x9A88_11E1_2026_0808);
    let mut src = String::new();
    let mut tops = Vec::new();
    for i in 0..3 {
        let recipe = NetRecipe::sample(&mut rng, &params);
        let name = format!("fuzz_{i}");
        // netgen always emits `module fuzz (...)`; rename so the three
        // generated modules can share one source file.
        src.push_str(&recipe.verilog().replacen("module fuzz ", &format!("module {name} "), 1));
        tops.push(name);
    }
    // A top module instantiating the generated ones, so the parallel
    // parse also exercises instance retargeting across module chunks.
    src.push_str("module top (clk);\n  input clk;\n");
    for (i, name) in tops.iter().enumerate() {
        src.push_str(&format!("  {name} u{i} (.clk(clk));\n"));
    }
    src.push_str("endmodule\n");

    let serial = drdesync::netlist::verilog::parse_design_jobs(&src, Some(1))
        .expect("serial parse succeeds");
    let serial_text = drdesync::netlist::verilog::write_design(&serial);
    assert!(serial_text.contains("fuzz_2"), "all modules survive the merge");
    for jobs in [2, 8] {
        let par = drdesync::netlist::verilog::parse_design_jobs(&src, Some(jobs))
            .expect("parallel parse succeeds");
        assert_eq!(
            serial_text,
            drdesync::netlist::verilog::write_design(&par),
            "parallel parse output diverged at jobs={jobs}"
        );
    }
}

#[test]
fn flow_artifacts_are_byte_identical_for_any_worker_count() {
    let lib = vlib90::high_speed();
    let tool = Desynchronizer::new(&lib).expect("tool builds");
    let params = NetGenParams {
        max_stages: 4,
        max_width: 4,
        max_cloud: 12,
        max_inputs: 4,
        scan_set_reset: true,
        source_imbalance: 0,
        deepen_infeasible: 0,
    };
    prop_par_with(
        Config::new(25).seed(0xDE7E_2313_57A8_1E01),
        |rng: &mut Rng| NetRecipe::sample(rng, &params),
        |recipe: &NetRecipe| {
            let module = recipe.build().map_err(|e| e.to_string())?;
            // One artifact bundle per worker count; flow errors must also
            // be identical, so they become part of the bundle.
            let bundle = |jobs: usize| -> [String; 4] {
                let opts = DesyncOptions {
                    jobs: Some(jobs),
                    ..DesyncOptions::default()
                };
                match tool.run_traced(module.clone(), &opts) {
                    Ok((result, trace)) => [
                        format!("{:?}", result.report),
                        result.sdc.clone(),
                        drdesync::netlist::verilog::write_design(&result.design),
                        trace.to_json_deterministic(),
                    ],
                    Err(e) => [format!("flow error: {e}"), String::new(), String::new(), String::new()],
                }
            };
            let serial = bundle(1);
            for workers in [2, 8] {
                let par = bundle(workers);
                if serial != par {
                    let which = ["report", "sdc", "verilog", "trace"]
                        .iter()
                        .zip(serial.iter().zip(par.iter()))
                        .filter(|(_, (a, b))| a != b)
                        .map(|(n, _)| *n)
                        .collect::<Vec<_>>()
                        .join(", ");
                    return Err(format!("workers={workers} diverged in: {which}"));
                }
            }
            Ok(())
        },
    );
}
