//! Golden-file regression: the SDC and flow report of the DLX and
//! ARM-like case studies are snapshotted under `tests/golden/`.
//!
//! Re-record after an intentional output change with:
//!
//! ```bash
//! DRD_BLESS=1 cargo test -q --test golden_files
//! ```

use std::path::PathBuf;

use drd_check::golden::{assert_golden, render_desync_report};
use drdesync::core::Desynchronizer;
use drdesync::flow::experiment::CaseStudy;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

fn snapshot_case(case: &CaseStudy, stem: &str) {
    let tool = Desynchronizer::new(&case.lib).expect("tool builds");
    let result = tool.run(&case.module, &case.desync).expect("desync runs");
    assert_golden(golden_dir().join(format!("{stem}.sdc")), &result.sdc);
    assert_golden(
        golden_dir().join(format!("{stem}_report.txt")),
        &render_desync_report(&result.report),
    );
}

#[test]
fn golden_dlx_small_sdc_and_report() {
    let case = CaseStudy::dlx(&drdesync::designs::dlx::DlxParams::small()).expect("case builds");
    snapshot_case(&case, "dlx_small");
}

#[test]
fn golden_armlike_small_sdc_and_report() {
    let case =
        CaseStudy::armlike(&drdesync::designs::armlike::ArmParams::small()).expect("case builds");
    snapshot_case(&case, "armlike_small");
}

/// Escaped-identifier handling: bus-bit names keep their brackets through
/// import (`\clk[0] ` -> `clk[0]`), so SDC emission must brace every
/// design-derived name (unbraced `[0]` is Tcl command substitution) and the
/// exported Verilog must re-escape them and round-trip.
#[test]
fn golden_escaped_names_round_trip() {
    let src = std::fs::read_to_string(golden_dir().join("escaped_small.v")).expect("input reads");
    let module = drdesync::netlist::verilog::parse_module(&src).expect("escaped input parses");
    let lib = drdesync::liberty::vlib90::high_speed();
    let tool = Desynchronizer::new(&lib).expect("tool builds");
    let result = tool
        .run(&module, &drdesync::core::DesyncOptions::default())
        .expect("desync runs");
    assert!(
        result.sdc.contains("[get_ports {clk[0]}]"),
        "clock port must be braced:\n{}",
        result.sdc
    );
    assert!(!result.sdc.contains("[get_ports clk[0]]"), "{}", result.sdc);
    let out = drdesync::netlist::verilog::write_design(&result.design);
    drdesync::netlist::verilog::parse_design(&out).expect("exported Verilog round-trips");
    assert_golden(golden_dir().join("escaped_small.sdc"), &result.sdc);
    assert_golden(golden_dir().join("escaped_small_out.v"), &out);
}

/// The snapshotted artifacts are deterministic: generating twice from
/// scratch yields byte-identical text (guards the golden files against
/// hidden iteration-order nondeterminism).
#[test]
fn golden_artifacts_are_deterministic() {
    let render = || {
        let case = CaseStudy::dlx(&drdesync::designs::dlx::DlxParams::small()).unwrap();
        let tool = Desynchronizer::new(&case.lib).unwrap();
        let result = tool.run(&case.module, &case.desync).unwrap();
        (result.sdc.clone(), render_desync_report(&result.report))
    };
    assert_eq!(render(), render());
}
