module t(a);
  input a;
endmodule
module t(b);
  input b;
endmodule
