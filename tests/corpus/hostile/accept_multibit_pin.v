module t(a, b, z);
  input a, b;
  output z;
  MX2X1 g (.A({a, b}), .S0(a), .Y(z));
endmodule
