module t(a);
  input a;
  wire \dangling