mödule t(a);
  “input” a;
endmodule
