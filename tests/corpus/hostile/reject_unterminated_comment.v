module t(a);
  input a;
  /* this comment never ends
endmodule
