module t(a, b, z); // line comment
  input a, b;
  output z;
  /* block
     comment */
  AND2X1 g (.A(a), .B(b), .Z(z)); // trailing
endmodule
