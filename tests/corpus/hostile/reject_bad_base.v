module t(z);
  output z;
  BUFX1 g (.A(4'q0), .Z(z));
endmodule
