endmodule ) ( ;; '' [3: module {{ .A wire 9'x assign == \ 
module
