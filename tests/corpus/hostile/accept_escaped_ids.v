module t(a, z);
  input a;
  output z;
  wire \u.q[0] ;
  BUFX1 b1 (.A(a), .Z(\u.q[0] ));
  BUFX1 b2 (.A(\u.q[0] ), .Z(z));
endmodule
