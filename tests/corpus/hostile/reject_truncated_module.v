module t(a);
  input a;
  BUFX1 g (.A(a), .Z(
