module t(a, z);
  input a;
  output z;
  BUFX1 g (a, z);
endmodule
