module t(z);
  output z;
  BUFX1 g (.A(200'h3), .Z(z));
endmodule
