module t(z);
  output z;
  BUFX1 g (.A(70000'h0), .Z(z));
endmodule
