module t(a);
  input a;
  wire [99999999:0] huge;
endmodule
