module t(a, b, z);
  input a, b;
  output z;
  AND2X1 g (.A(a), .B(b), .Z(z));
endmodule
