module t(z0, z1);
  output z0, z1;
  BUFX1 g0 (.A(8'b1010_0101), .Z(z0));
  BUFX1 g1 (.A(16'hDE_AD), .Z(z1));
endmodule
