module escaped_small (clk, din, dout, drd_rst);
  input [0:0] clk;
  input din;
  output dout;
  input drd_rst;
  wire q_0;
  wire n_1;
  wire [4:4] bus_3_;
  wire a$b;
  wire drd_g1_gm;
  wire drd_g1_gs;
  wire r1__qm;
  wire drd_g0_gm;
  wire drd_g0_gs;
  wire r_in__qm;
  wire drd_g1_rom;
  wire drd_g1_ros;
  wire drd_g1_aim;
  wire drd_g1_ais;
  wire drd_g0_rom;
  wire drd_g0_ros;
  wire drd_g0_aim;
  wire drd_g0_ais;
  wire drd_g1_rim;
  wire drd_g0_rim;
  INVX1 u$3 (.A(q_0), .Z(a$b));
  LDX1 r1_lm (.D(a$b), .G(drd_g1_gm), .Q(r1__qm));
  LDX1 r1_ls (.D(r1__qm), .G(drd_g1_gs), .Q(dout));
  LDX1 r_in_lm (.D(din), .G(drd_g0_gm), .Q(r_in__qm));
  LDX1 r_in_ls (.D(r_in__qm), .G(drd_g0_gs), .Q(q_0));
  drd_delem_2 drd_g1_delem (.in1(drd_g0_ros), .out1(drd_g1_rim));
  drd_ctrl_master drd_g1_ctlm (.ri(drd_g1_rim), .ao(drd_g1_ais), .rst(drd_rst), .ai(drd_g1_aim), .ro(drd_g1_rom), .g(drd_g1_gm));
  drd_ctrl_slave drd_g1_ctls (.ri(drd_g1_rom), .ao(drd_g1_ros), .rst(drd_rst), .ai(drd_g1_ais), .ro(drd_g1_ros), .g(drd_g1_gs));
  drd_delem_1 drd_g0_delem (.in1(drd_g0_ros), .out1(drd_g0_rim));
  drd_ctrl_master drd_g0_ctlm (.ri(drd_g0_rim), .ao(drd_g0_ais), .rst(drd_rst), .ai(drd_g0_aim), .ro(drd_g0_rom), .g(drd_g0_gm));
  drd_ctrl_slave drd_g0_ctls (.ri(drd_g0_rom), .ao(drd_g1_aim), .rst(drd_rst), .ai(drd_g0_ais), .ro(drd_g0_ros), .g(drd_g0_gs));
endmodule

module drd_ctrl_master (ri, ao, rst, ai, ro, g);
  input ri;
  input ao;
  input rst;
  output ai;
  output ro;
  output g;
  wire a;
  wire nro;
  wire nao;
  wire g_int;
  INVX1 u_nro (.A(ro), .Z(nro));
  C2RX1 u_a (.A(ri), .B(nro), .RN(rst), .Z(a));
  INVX1 u_nao (.A(ao), .Z(nao));
  C2RX1 u_ro (.A(a), .B(nao), .RN(rst), .Z(ro));
  AND2X1 u_gp (.A(a), .B(nro), .Z(g_int));
  BUFX2 u_g (.A(g_int), .Z(g));
  BUFX1 u_ai (.A(a), .Z(ai));
endmodule

module drd_ctrl_slave (ri, ao, rst, ai, ro, g);
  input ri;
  input ao;
  input rst;
  output ai;
  output ro;
  output g;
  wire a;
  wire nro;
  wire nao;
  wire g_int;
  INVX1 u_nro (.A(ro), .Z(nro));
  C2RX1 u_a (.A(ri), .B(nro), .RN(rst), .Z(a));
  INVX1 u_nao (.A(ao), .Z(nao));
  C2SX1 u_ro (.A(a), .B(nao), .SN(rst), .Z(ro));
  AND2X1 u_gp (.A(a), .B(nro), .Z(g_int));
  BUFX2 u_g (.A(g_int), .Z(g));
  BUFX1 u_ai (.A(a), .Z(ai));
endmodule

module drd_delem_2 (in1, out1);
  input in1;
  output out1;
  wire d0;
  AND2X1 u0 (.A(in1), .B(in1), .Z(d0));
  AND2X1 u1 (.A(d0), .B(in1), .Z(out1));
endmodule

module drd_delem_1 (in1, out1);
  input in1;
  output out1;
  AND2X1 u0 (.A(in1), .B(in1), .Z(out1));
endmodule
