module escaped_small ( \clk[0] , din, dout);
  input \clk[0] ;
  input din;
  output dout;
  wire \q+0 ;
  wire \n-1 ;
  wire \bus[3][4] ;
  wire \a$b ;
  DFFX1 \r.in (.D(din), .CK(\clk[0] ), .Q(\q+0 ));
  INVX1 \c#1 (.A(\q+0 ), .Z(\n-1 ));
  INVX1 \g!2 (.A(\n-1 ), .Z(\bus[3][4] ));
  INVX1 \u$3 (.A(\bus[3][4] ), .Z(\a$b ));
  DFFX1 r1 (.D(\a$b ), .CK(\clk[0] ), .Q(dout));
endmodule
