module escaped_small ( \clk[0] , din, dout);
  input \clk[0] ;
  input din;
  output dout;
  wire \q+0 ;
  wire \n-1 ;
  DFFX1 \r.in (.D(din), .CK(\clk[0] ), .Q(\q+0 ));
  INVX1 \c#1 (.A(\q+0 ), .Z(\n-1 ));
  DFFX1 r1 (.D(\n-1 ), .CK(\clk[0] ), .Q(dout));
endmodule
