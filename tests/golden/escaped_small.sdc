# drdesync generated constraints
# original: create_clock -name "Clk" -period 2.40 -waveform {0 1.20} [get_ports {clk[0]}]
create_clock -name "ClkM" -period 2.40 -waveform {1.00 2.40} [get_pins {*_ctlm/u_g/Z}]
create_clock -name "ClkS" -period 2.40 -waveform {2.40 2.80} [get_pins {*_ctls/u_g/Z}]

# controller loop breaking (Fig. 4.5)
set_disable_timing [get_pins {drd_g1_ctlm/u_nro/A}]
set_disable_timing [get_pins {drd_g1_ctls/u_nro/A}]
set_disable_timing [get_pins {drd_g0_ctlm/u_nro/A}]
set_disable_timing [get_pins {drd_g0_ctls/u_nro/A}]

# allow only safe optimizations (§4.6.2)
set_size_only [get_cells {drd_g1_ctlm/*}]
set_size_only [get_cells {drd_g1_ctls/*}]
set_size_only [get_cells {drd_g0_ctlm/*}]
set_size_only [get_cells {drd_g0_ctls/*}]

# matched delay elements: preserve minimum delays
set_min_delay 0.066 -from [get_pins {drd_g1_delem/in1}] -to [get_pins {drd_g1_delem/out1}]
set_dont_touch [get_cells {drd_g1_delem}]
