//! Workspace-level tests of the instrumented pass pipeline: deterministic
//! pass order, `stop-after` partial artifacts, delta bookkeeping, and a
//! golden `FlowTrace` snapshot of the small DLX flow.
//!
//! Re-record the snapshot after an intentional change with:
//!
//! ```bash
//! DRD_BLESS=1 cargo test -q --test pipeline
//! ```

use std::path::PathBuf;

use drd_check::golden::assert_golden;
use drdesync::core::{DesyncError, Desynchronizer, FlowContext, Pipeline};
use drdesync::flow::experiment::CaseStudy;

const STAGES: [&str; 8] = [
    "clean",
    "clock-id",
    "group",
    "ddg",
    "region-delays",
    "ffsub",
    "control-network",
    "sdc",
];

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

#[test]
fn standard_pipeline_order_is_deterministic() {
    assert_eq!(Pipeline::standard().pass_names(), STAGES);
    assert_eq!(
        Pipeline::standard().pass_names(),
        Pipeline::standard().pass_names()
    );
}

#[test]
fn stop_after_halts_with_partial_artifacts() {
    let case = CaseStudy::dlx(&drdesync::designs::dlx::DlxParams::small()).expect("case builds");
    let tool = Desynchronizer::new(&case.lib).expect("tool builds");
    let mut cx = FlowContext::new(
        &case.lib,
        tool.gatefile(),
        case.module.clone(),
        case.desync.clone(),
    );
    let trace = Pipeline::standard()
        .run_until(&mut cx, Some("region-delays"))
        .expect("prefix runs");
    assert_eq!(trace.passes.len(), 5);
    assert_eq!(trace.passes.last().unwrap().name, "region-delays");
    // Artifacts up to the stop point exist; later ones do not.
    assert!(cx.clock_net().is_some());
    assert!(cx.regions().is_some());
    assert!(cx.ddg().is_some());
    assert!(cx.region_delays().is_some());
    assert!(cx.network().is_none());
    assert!(cx.sdc().is_none());
    // The checkpoint netlist is still parseable synchronous Verilog.
    let v = cx.netlist_verilog();
    drdesync::netlist::verilog::parse_design(&v).expect("checkpoint parses");
    assert!(!v.contains("drd_ctrl_master"));
    // A partial context cannot be finalized.
    match cx.into_result() {
        Err(DesyncError::Pipeline { .. }) => {}
        other => panic!("expected pipeline error, got {:?}", other.map(|_| ())),
    }
}

#[test]
fn pass_deltas_sum_to_final_netlist_stats() {
    let case = CaseStudy::dlx(&drdesync::designs::dlx::DlxParams::small()).expect("case builds");
    let tool = Desynchronizer::new(&case.lib).expect("tool builds");
    let mut cx = FlowContext::new(
        &case.lib,
        tool.gatefile(),
        case.module.clone(),
        case.desync.clone(),
    );
    let trace = Pipeline::standard().run(&mut cx).expect("flow runs");
    assert_eq!(trace.passes.len(), STAGES.len());

    let first = trace.passes.first().unwrap();
    let last = trace.passes.last().unwrap();
    assert_eq!(first.cells_before, case.module.cell_count());
    assert_eq!(first.nets_before, case.module.net_count());
    let (cells, nets) = cx.netlist_stats();
    assert_eq!(last.cells_after, cells);
    assert_eq!(last.nets_after, nets);
    assert_eq!(
        trace.cell_delta_sum(),
        cells as i64 - case.module.cell_count() as i64
    );
    assert_eq!(
        trace.net_delta_sum(),
        nets as i64 - case.module.net_count() as i64
    );
    // Deltas chain: each pass starts where the previous one ended.
    for w in trace.passes.windows(2) {
        assert_eq!(w[0].cells_after, w[1].cells_before);
        assert_eq!(w[0].nets_after, w[1].nets_before);
    }

    // The finalized result matches the context's last observed stats.
    let result = cx.into_result().expect("result assembles");
    let top = result.design.module(result.design.top());
    assert_eq!(top.cell_count(), cells);
    assert_eq!(top.net_count(), nets);
}

#[test]
fn golden_dlx_small_flow_trace() {
    let case = CaseStudy::dlx(&drdesync::designs::dlx::DlxParams::small()).expect("case builds");
    let tool = Desynchronizer::new(&case.lib).expect("tool builds");
    let (_result, trace) = tool
        .run_traced(case.module.clone(), &case.desync)
        .expect("flow runs");
    assert_golden(
        golden_dir().join("dlx_small_flow_trace.json"),
        &trace.to_json_deterministic(),
    );
}

/// The legacy one-call wrapper and a hand-driven pipeline produce the
/// same result object on a real case study.
#[test]
fn wrapper_and_pipeline_agree_on_dlx_small() {
    let case = CaseStudy::dlx(&drdesync::designs::dlx::DlxParams::small()).expect("case builds");
    let tool = Desynchronizer::new(&case.lib).expect("tool builds");
    let legacy = tool
        .run(&case.module, &case.desync)
        .expect("wrapper runs");
    let mut cx = FlowContext::new(
        &case.lib,
        tool.gatefile(),
        case.module.clone(),
        case.desync.clone(),
    );
    Pipeline::standard().run(&mut cx).expect("pipeline runs");
    let piped = cx.into_result().expect("result assembles");
    assert_eq!(legacy.sdc, piped.sdc);
    assert_eq!(
        drdesync::netlist::verilog::write_design(&legacy.design),
        drdesync::netlist::verilog::write_design(&piped.design)
    );
}

#[test]
fn trace_json_lists_every_stage_with_timings() {
    let case = CaseStudy::dlx(&drdesync::designs::dlx::DlxParams::small()).expect("case builds");
    let tool = Desynchronizer::new(&case.lib).expect("tool builds");
    let (_result, trace) = tool
        .run_traced(case.module.clone(), &case.desync)
        .expect("flow runs");
    let json = trace.to_json();
    for stage in STAGES {
        assert!(json.contains(&format!("\"name\": \"{stage}\"")), "{json}");
    }
    assert!(json.contains("wall_ns"));
    assert!(json.contains("total_wall_ns"));
    assert_eq!(json.matches('{').count(), json.matches('}').count());
    assert_eq!(json.matches('[').count(), json.matches(']').count());
}
