//! Workspace-level tests of the instrumented pass pipeline: deterministic
//! pass order, `stop-after` partial artifacts, delta bookkeeping, and a
//! golden `FlowTrace` snapshot of the small DLX flow.
//!
//! Re-record the snapshot after an intentional change with:
//!
//! ```bash
//! DRD_BLESS=1 cargo test -q --test pipeline
//! ```

use std::path::PathBuf;

use drd_check::golden::assert_golden;
use drdesync::core::{DesyncError, DesyncOptions, Desynchronizer, FlowContext, Pipeline};
use drdesync::flow::experiment::CaseStudy;
use drdesync::netlist::{Conn, Module, PortDir};

const STAGES: [&str; 9] = [
    "clean",
    "clock-id",
    "group",
    "ddg",
    "region-delays",
    "ffsub",
    "control-network",
    "liveness",
    "sdc",
];

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

#[test]
fn standard_pipeline_order_is_deterministic() {
    assert_eq!(Pipeline::standard().pass_names(), STAGES);
    assert_eq!(
        Pipeline::standard().pass_names(),
        Pipeline::standard().pass_names()
    );
}

#[test]
fn stop_after_halts_with_partial_artifacts() {
    let case = CaseStudy::dlx(&drdesync::designs::dlx::DlxParams::small()).expect("case builds");
    let tool = Desynchronizer::new(&case.lib).expect("tool builds");
    let mut cx = FlowContext::new(
        &case.lib,
        tool.gatefile(),
        case.module.clone(),
        case.desync.clone(),
    );
    let trace = Pipeline::standard()
        .run_until(&mut cx, Some("region-delays"))
        .expect("prefix runs");
    assert_eq!(trace.passes.len(), 5);
    assert_eq!(trace.passes.last().unwrap().name, "region-delays");
    // Artifacts up to the stop point exist; later ones do not.
    assert!(cx.clock_net().is_some());
    assert!(cx.regions().is_some());
    assert!(cx.ddg().is_some());
    assert!(cx.region_delays().is_some());
    assert!(cx.network().is_none());
    assert!(cx.sdc().is_none());
    // The checkpoint netlist is still parseable synchronous Verilog.
    let v = cx.netlist_verilog();
    drdesync::netlist::verilog::parse_design(&v).expect("checkpoint parses");
    assert!(!v.contains("drd_ctrl_master"));
    // A partial context cannot be finalized.
    match cx.into_result() {
        Err(DesyncError::Pipeline { .. }) => {}
        other => panic!("expected pipeline error, got {:?}", other.map(|_| ())),
    }
}

#[test]
fn pass_deltas_sum_to_final_netlist_stats() {
    let case = CaseStudy::dlx(&drdesync::designs::dlx::DlxParams::small()).expect("case builds");
    let tool = Desynchronizer::new(&case.lib).expect("tool builds");
    let mut cx = FlowContext::new(
        &case.lib,
        tool.gatefile(),
        case.module.clone(),
        case.desync.clone(),
    );
    let trace = Pipeline::standard().run(&mut cx).expect("flow runs");
    assert_eq!(trace.passes.len(), STAGES.len());

    let first = trace.passes.first().unwrap();
    let last = trace.passes.last().unwrap();
    assert_eq!(first.cells_before, case.module.cell_count());
    assert_eq!(first.nets_before, case.module.net_count());
    let (cells, nets) = cx.netlist_stats();
    assert_eq!(last.cells_after, cells);
    assert_eq!(last.nets_after, nets);
    assert_eq!(
        trace.cell_delta_sum(),
        cells as i64 - case.module.cell_count() as i64
    );
    assert_eq!(
        trace.net_delta_sum(),
        nets as i64 - case.module.net_count() as i64
    );
    // Deltas chain: each pass starts where the previous one ended.
    for w in trace.passes.windows(2) {
        assert_eq!(w[0].cells_after, w[1].cells_before);
        assert_eq!(w[0].nets_after, w[1].nets_before);
    }

    // The finalized result matches the context's last observed stats.
    let result = cx.into_result().expect("result assembles");
    let top = result.design.module(result.design.top());
    assert_eq!(top.cell_count(), cells);
    assert_eq!(top.net_count(), nets);
}

#[test]
fn golden_dlx_small_flow_trace() {
    let case = CaseStudy::dlx(&drdesync::designs::dlx::DlxParams::small()).expect("case builds");
    let tool = Desynchronizer::new(&case.lib).expect("tool builds");
    let (_result, trace) = tool
        .run_traced(case.module.clone(), &case.desync)
        .expect("flow runs");
    assert_golden(
        golden_dir().join("dlx_small_flow_trace.json"),
        &trace.to_json_deterministic(),
    );
}

/// The legacy one-call wrapper and a hand-driven pipeline produce the
/// same result object on a real case study.
#[test]
fn wrapper_and_pipeline_agree_on_dlx_small() {
    let case = CaseStudy::dlx(&drdesync::designs::dlx::DlxParams::small()).expect("case builds");
    let tool = Desynchronizer::new(&case.lib).expect("tool builds");
    let legacy = tool
        .run(&case.module, &case.desync)
        .expect("wrapper runs");
    let mut cx = FlowContext::new(
        &case.lib,
        tool.gatefile(),
        case.module.clone(),
        case.desync.clone(),
    );
    Pipeline::standard().run(&mut cx).expect("pipeline runs");
    let piped = cx.into_result().expect("result assembles");
    assert_eq!(legacy.sdc, piped.sdc);
    assert_eq!(
        drdesync::netlist::verilog::write_design(&legacy.design),
        drdesync::netlist::verilog::write_design(&piped.design)
    );
}

#[test]
fn trace_json_lists_every_stage_with_timings() {
    let case = CaseStudy::dlx(&drdesync::designs::dlx::DlxParams::small()).expect("case builds");
    let tool = Desynchronizer::new(&case.lib).expect("tool builds");
    let (_result, trace) = tool
        .run_traced(case.module.clone(), &case.desync)
        .expect("flow runs");
    let json = trace.to_json();
    for stage in STAGES {
        assert!(json.contains(&format!("\"name\": \"{stage}\"")), "{json}");
    }
    assert!(json.contains("wall_ns"));
    assert!(json.contains("total_wall_ns"));
    assert_eq!(json.matches('{').count(), json.matches('}').count());
    assert_eq!(json.matches('[').count(), json.matches(']').count());
}

/// A two-cell module whose second cell instantiates a kind absent from
/// the library: `clean` and `clock-id` succeed, `group` must reject it.
fn module_with_unknown_cell() -> Module {
    let mut m = Module::new("broken");
    m.add_port("clk", PortDir::Input).unwrap();
    m.add_port("d", PortDir::Input).unwrap();
    let clk = m.find_net("clk").unwrap();
    let d = m.find_net("d").unwrap();
    let x = m.add_net("x").unwrap();
    let q = m.add_net("q").unwrap();
    m.add_cell(
        "u_bogus",
        "BOGUSX1",
        &[("A", Conn::Net(d)), ("Z", Conn::Net(x))],
    )
    .unwrap();
    m.add_cell(
        "r0",
        "DFFX1",
        &[("D", Conn::Net(x)), ("CK", Conn::Net(clk)), ("Q", Conn::Net(q))],
    )
    .unwrap();
    m
}

/// A pass failing mid-run leaves a `FlowTrace` holding exactly the passes
/// that completed, records the failure, and leaves the context usable —
/// not torn — so callers can still inspect the checkpoint netlist.
#[test]
fn failing_pass_records_partial_trace_and_keeps_context_inspectable() {
    let case = CaseStudy::dlx(&drdesync::designs::dlx::DlxParams::small()).expect("case builds");
    let tool = Desynchronizer::new(&case.lib).expect("tool builds");
    let mut cx = FlowContext::new(
        &case.lib,
        tool.gatefile(),
        module_with_unknown_cell(),
        DesyncOptions::default(),
    );
    let (trace, err) = Pipeline::standard().run_recording(&mut cx, None);

    // Exactly the completed prefix, in order.
    let names: Vec<&str> = trace.passes.iter().map(|p| p.name).collect();
    assert_eq!(names, ["clean", "clock-id"]);
    let e = trace.error.as_ref().expect("failure recorded");
    assert_eq!(e.pass, "group");
    assert!(e.message.contains("BOGUSX1"), "{}", e.message);
    match err {
        Some(DesyncError::UnknownCell { name }) => assert_eq!(name, "BOGUSX1"),
        other => panic!("expected UnknownCell, got {other:?}"),
    }

    // The context holds the last successful pass's artifacts and nothing
    // past the failure point.
    assert!(cx.clock_net().is_some());
    assert!(cx.regions().is_none());
    assert!(cx.network().is_none());
    // The checkpoint netlist is intact, parseable synchronous Verilog.
    let v = cx.netlist_verilog();
    drdesync::netlist::verilog::parse_design(&v).expect("checkpoint parses");
    assert!(v.contains("BOGUSX1"));
    // And the partial context still refuses to finalize.
    assert!(matches!(
        cx.into_result(),
        Err(DesyncError::Pipeline { .. })
    ));
}

/// The failure also shows up in the trace's JSON renderings under an
/// `error` key (both timed and deterministic forms), keeping machine
/// consumers of `FlowTrace` aware of aborted runs.
#[test]
fn failing_trace_json_carries_the_error_record() {
    let case = CaseStudy::dlx(&drdesync::designs::dlx::DlxParams::small()).expect("case builds");
    let tool = Desynchronizer::new(&case.lib).expect("tool builds");
    let mut cx = FlowContext::new(
        &case.lib,
        tool.gatefile(),
        module_with_unknown_cell(),
        DesyncOptions::default(),
    );
    let (trace, _err) = Pipeline::standard().run_recording(&mut cx, None);
    for json in [trace.to_json(), trace.to_json_deterministic()] {
        assert!(json.contains("\"error\""), "{json}");
        assert!(json.contains("\"pass\": \"group\""), "{json}");
        assert!(json.contains("BOGUSX1"), "{json}");
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
    // A successful run must NOT carry the key.
    let ok = Pipeline::standard()
        .run(&mut FlowContext::new(
            &case.lib,
            tool.gatefile(),
            case.module.clone(),
            case.desync.clone(),
        ))
        .expect("clean flow runs");
    assert!(!ok.to_json().contains("\"error\""));
}

/// The one-call wrappers agree with the recording API on the failure.
#[test]
fn wrapper_apis_propagate_the_pass_failure() {
    let case = CaseStudy::dlx(&drdesync::designs::dlx::DlxParams::small()).expect("case builds");
    let tool = Desynchronizer::new(&case.lib).expect("tool builds");
    let err = tool
        .run_traced(module_with_unknown_cell(), &DesyncOptions::default())
        .expect_err("broken module must not desynchronize");
    assert!(matches!(err, DesyncError::UnknownCell { .. }));
    let (res, trace) = tool.run_checked(module_with_unknown_cell(), &DesyncOptions::default());
    assert!(res.is_err());
    assert_eq!(trace.error.as_ref().map(|e| e.pass), Some("group"));
}

/// Fuzz loop on the parallel runner: the hand-driven pipeline and the
/// one-call wrapper agree on random netlists, whatever the worker count.
/// A failure prints the `NetRecipe` and seed for replay.
#[test]
fn fuzz_wrapper_and_pipeline_agree_on_random_netlists() {
    use drd_check::netgen::{NetGenParams, NetRecipe};
    use drd_check::{prop_par_with, Config};

    let case = CaseStudy::dlx(&drdesync::designs::dlx::DlxParams::small()).expect("case builds");
    let tool = Desynchronizer::new(&case.lib).expect("tool builds");
    let params = NetGenParams::default();
    prop_par_with(
        Config {
            cases: 8,
            seed: 0x11C0_DE0F_917E,
            ..Config::new(8)
        },
        |rng| NetRecipe::sample(rng, &params),
        |recipe| {
            let module = recipe.build().map_err(|e| e.to_string())?;
            let legacy = tool
                .run(&module, &DesyncOptions::default())
                .map_err(|e| format!("wrapper failed: {e}"))?;
            let mut cx = FlowContext::new(
                &case.lib,
                tool.gatefile(),
                module,
                DesyncOptions::default(),
            );
            Pipeline::standard()
                .run(&mut cx)
                .map_err(|e| format!("pipeline failed: {e}"))?;
            let piped = cx.into_result().map_err(|e| e.to_string())?;
            if legacy.sdc != piped.sdc {
                return Err("wrapper and pipeline SDC diverge".into());
            }
            let a = drdesync::netlist::verilog::write_design(&legacy.design);
            let b = drdesync::netlist::verilog::write_design(&piped.design);
            if a != b {
                return Err("wrapper and pipeline netlists diverge".into());
            }
            Ok(())
        },
    );
}
