//! Cross-crate property-based tests (drd-check harness): structural
//! invariants of the tool over randomly generated pipelines.

use drd_check::{prop, Rng};

use drdesync::core::region::{group, GroupingOptions};
use drdesync::core::{DesyncOptions, Desynchronizer};
use drdesync::liberty::vlib90;
use drdesync::netlist::{Conn, Module, PortDir};

/// Generates a random multi-stage pipeline: `stages` clouds of width
/// `width`, randomly wired cloud-to-register connections.
fn pipeline(stages: usize, width: usize, taps: &[u8]) -> Module {
    let mut m = Module::new("p");
    m.add_port("clk", PortDir::Input).unwrap();
    m.add_port("din", PortDir::Input).unwrap();
    let clk = m.find_net("clk").unwrap();
    let mut prev: Vec<_> = (0..width)
        .map(|i| {
            let din = m.find_net("din").unwrap();
            let q = m.add_net(format!("q0_{i}")).unwrap();
            m.add_cell(
                format!("r0_{i}"),
                "DFFX1",
                &[("D", Conn::Net(din)), ("CK", Conn::Net(clk)), ("Q", Conn::Net(q))],
            )
            .unwrap();
            q
        })
        .collect();
    for s in 1..=stages {
        let mut next = Vec::with_capacity(width);
        for i in 0..width {
            let tap = usize::from(taps[(s * width + i) % taps.len()]) % width;
            let z = m.add_net(format!("c{s}_{i}")).unwrap();
            m.add_cell(
                format!("g{s}_{i}"),
                "NAND2X1",
                &[
                    ("A", Conn::Net(prev[i])),
                    ("B", Conn::Net(prev[tap])),
                    ("Z", Conn::Net(z)),
                ],
            )
            .unwrap();
            let q = m.add_net(format!("q{s}_{i}")).unwrap();
            m.add_cell(
                format!("r{s}_{i}"),
                "DFFX1",
                &[("D", Conn::Net(z)), ("CK", Conn::Net(clk)), ("Q", Conn::Net(q))],
            )
            .unwrap();
            next.push(q);
        }
        prev = next;
    }
    m
}

type PipelineInput = (usize, usize, Vec<u8>);

fn pipeline_strategy(max_stages: usize, max_width: usize) -> impl Fn(&mut Rng) -> PipelineInput {
    move |rng| {
        let stages = rng.range(1, max_stages);
        let width = rng.range(1, max_width);
        let taps = (0..32).map(|_| rng.range(0, 8) as u8).collect();
        (stages, width, taps)
    }
}

/// Every cell lands in exactly one region, and regions partition the
/// netlist.
#[test]
fn grouping_partitions_all_cells() {
    let lib = vlib90::high_speed();
    prop(16, pipeline_strategy(4, 5), |(stages, width, taps)| {
        let m = pipeline(*stages, *width, taps);
        let regions = group(&m, &lib, &GroupingOptions::recommended())
            .map_err(|e| format!("grouping: {e}"))?;
        let mut seen = std::collections::HashSet::new();
        for r in &regions.regions {
            for c in &r.cells {
                if !seen.insert(c.clone()) {
                    return Err(format!("cell {c} in two regions"));
                }
            }
        }
        if seen.len() != m.cell_count() {
            return Err(format!("{} grouped of {} cells", seen.len(), m.cell_count()));
        }
        Ok(())
    });
}

/// Desynchronization conserves the datapath: every original combinational
/// gate survives, every flip-flop becomes exactly one master and one
/// slave latch, and the exported Verilog re-parses.
#[test]
fn desynchronization_structural_invariants() {
    let lib = vlib90::high_speed();
    prop(16, pipeline_strategy(3, 4), |(stages, width, taps)| {
        let m = pipeline(*stages, *width, taps);
        let ff_count = m.cells().filter(|(_, c)| c.kind_name() == "DFFX1").count();
        let tool = Desynchronizer::new(&lib).map_err(|e| e.to_string())?;
        let result = tool
            .run(&m, &DesyncOptions::default())
            .map_err(|e| e.to_string())?;
        if result.report.substituted_ffs != ff_count {
            return Err(format!(
                "substituted {} of {ff_count} ffs",
                result.report.substituted_ffs
            ));
        }

        let flat = drdesync::netlist::flatten(&result.design, result.design.top())
            .map_err(|e| e.to_string())?;
        let masters = flat.cells().filter(|(_, c)| c.name.ends_with("_lm")).count();
        let slaves = flat.cells().filter(|(_, c)| c.name.ends_with("_ls")).count();
        if masters != ff_count || slaves != ff_count {
            return Err(format!("{masters} masters / {slaves} slaves for {ff_count} ffs"));
        }
        // No flip-flops remain.
        let dffs = flat
            .cells()
            .filter(|(_, c)| c.kind_name().starts_with("DFF"))
            .count();
        if dffs != 0 {
            return Err(format!("{dffs} flip-flops remain"));
        }
        // The export re-parses.
        let text = drdesync::netlist::verilog::write_design(&result.design);
        drdesync::netlist::verilog::parse_design(&text)
            .map(|_| ())
            .map_err(|e| format!("export does not re-parse: {e}"))
    });
}

/// The SDC always covers every controller instance with loop-breaking
/// disables and size_only protection.
#[test]
fn sdc_covers_all_controllers() {
    let lib = vlib90::high_speed();
    prop(16, pipeline_strategy(3, 4), |(stages, width, taps)| {
        let m = pipeline(*stages, *width, taps);
        let tool = Desynchronizer::new(&lib).map_err(|e| e.to_string())?;
        let result = tool
            .run(&m, &DesyncOptions::default())
            .map_err(|e| e.to_string())?;
        let flat = drdesync::netlist::flatten(&result.design, result.design.top())
            .map_err(|e| e.to_string())?;
        for (_, cell) in flat.cells() {
            if let Some(inst) = cell.name.strip_suffix("/u_a") {
                let disable = format!("{inst}/u_nro/A");
                let size_only = format!("set_size_only [get_cells {{{inst}/*}}]");
                if !result.sdc.contains(&disable) {
                    return Err(format!("controller {inst} missing from SDC"));
                }
                if !result.sdc.contains(&size_only) {
                    return Err(format!("controller {inst} missing size_only"));
                }
            }
        }
        Ok(())
    });
}
