//! Cross-crate property-based tests (proptest): structural invariants of
//! the tool over randomly generated pipelines.

use proptest::prelude::*;

use drdesync::core::region::{group, GroupingOptions};
use drdesync::core::{DesyncOptions, Desynchronizer};
use drdesync::liberty::vlib90;
use drdesync::netlist::{Conn, Module, PortDir};

/// Generates a random multi-stage pipeline: `stages` clouds of width
/// `width`, randomly wired cloud-to-register connections.
fn pipeline(stages: usize, width: usize, taps: &[usize]) -> Module {
    let mut m = Module::new("p");
    m.add_port("clk", PortDir::Input).unwrap();
    m.add_port("din", PortDir::Input).unwrap();
    let clk = m.find_net("clk").unwrap();
    let mut prev: Vec<_> = (0..width)
        .map(|i| {
            let din = m.find_net("din").unwrap();
            let q = m.add_net(format!("q0_{i}")).unwrap();
            m.add_cell(
                format!("r0_{i}"),
                "DFFX1",
                &[("D", Conn::Net(din)), ("CK", Conn::Net(clk)), ("Q", Conn::Net(q))],
            )
            .unwrap();
            q
        })
        .collect();
    for s in 1..=stages {
        let mut next = Vec::with_capacity(width);
        for i in 0..width {
            let tap = taps[(s * width + i) % taps.len()] % width;
            let z = m.add_net(format!("c{s}_{i}")).unwrap();
            m.add_cell(
                format!("g{s}_{i}"),
                "NAND2X1",
                &[
                    ("A", Conn::Net(prev[i])),
                    ("B", Conn::Net(prev[tap])),
                    ("Z", Conn::Net(z)),
                ],
            )
            .unwrap();
            let q = m.add_net(format!("q{s}_{i}")).unwrap();
            m.add_cell(
                format!("r{s}_{i}"),
                "DFFX1",
                &[("D", Conn::Net(z)), ("CK", Conn::Net(clk)), ("Q", Conn::Net(q))],
            )
            .unwrap();
            next.push(q);
        }
        prev = next;
    }
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every cell lands in exactly one region, and regions partition the
    /// netlist.
    #[test]
    fn grouping_partitions_all_cells(
        stages in 1usize..4,
        width in 1usize..5,
        taps in proptest::collection::vec(0usize..8, 32),
    ) {
        let lib = vlib90::high_speed();
        let m = pipeline(stages, width, &taps);
        let regions = group(&m, &lib, &GroupingOptions::recommended()).unwrap();
        let mut seen = std::collections::HashSet::new();
        for r in &regions.regions {
            for c in &r.cells {
                prop_assert!(seen.insert(c.clone()), "cell {c} in two regions");
            }
        }
        prop_assert_eq!(seen.len(), m.cell_count());
    }

    /// Desynchronization conserves the datapath: every original
    /// combinational gate survives, every flip-flop becomes exactly one
    /// master and one slave latch, and the exported Verilog re-parses.
    #[test]
    fn desynchronization_structural_invariants(
        stages in 1usize..3,
        width in 1usize..4,
        taps in proptest::collection::vec(0usize..8, 32),
    ) {
        let lib = vlib90::high_speed();
        let m = pipeline(stages, width, &taps);
        let ff_count = m.cells().filter(|(_, c)| c.kind.name() == "DFFX1").count();
        let tool = Desynchronizer::new(&lib).unwrap();
        let result = tool.run(&m, &DesyncOptions::default()).unwrap();
        prop_assert_eq!(result.report.substituted_ffs, ff_count);

        let flat = drdesync::netlist::flatten(&result.design, result.design.top()).unwrap();
        let masters = flat.cells().filter(|(_, c)| c.name.ends_with("_lm")).count();
        let slaves = flat.cells().filter(|(_, c)| c.name.ends_with("_ls")).count();
        prop_assert_eq!(masters, ff_count);
        prop_assert_eq!(slaves, ff_count);
        // No flip-flops remain.
        prop_assert_eq!(flat.cells().filter(|(_, c)| c.kind.name().starts_with("DFF")).count(), 0);
        // The export re-parses.
        let text = drdesync::netlist::verilog::write_design(&result.design);
        prop_assert!(drdesync::netlist::verilog::parse_design(&text).is_ok());
    }

    /// The SDC always covers every controller instance with loop-breaking
    /// disables and size_only protection.
    #[test]
    fn sdc_covers_all_controllers(
        stages in 1usize..3,
        width in 1usize..4,
        taps in proptest::collection::vec(0usize..8, 32),
    ) {
        let lib = vlib90::high_speed();
        let m = pipeline(stages, width, &taps);
        let tool = Desynchronizer::new(&lib).unwrap();
        let result = tool.run(&m, &DesyncOptions::default()).unwrap();
        let flat = drdesync::netlist::flatten(&result.design, result.design.top()).unwrap();
        for (_, cell) in flat.cells() {
            let name = &cell.name;
            if let Some(inst) = name.strip_suffix("/u_a") {
                let disable = format!("{inst}/u_nro/A");
                let size_only = format!("set_size_only [get_cells {{{inst}/*}}]");
                prop_assert!(
                    result.sdc.contains(&disable),
                    "controller {} missing from SDC",
                    inst
                );
                prop_assert!(result.sdc.contains(&size_only));
            }
        }
    }
}
