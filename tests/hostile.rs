//! Tier-1 hostile-input gate: the Verilog reader and the guarded flow
//! must survive ≥10k seeded adversarial inputs with zero escaped panics.
//!
//! Input count is overridable via `DRD_HOSTILE_INPUTS` (never below the
//! 10_000 floor — the whole point of the gate), workers via
//! `DRD_WORKERS`.

use drd_check::hostile::run_hostile_campaign;
use drd_check::runner;

#[test]
fn hostile_campaign_has_zero_escaped_panics() {
    let count: usize = std::env::var("DRD_HOSTILE_INPUTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10_000)
        .max(10_000);
    let report = run_hostile_campaign(count, 0x0DE5_7AC7, runner::worker_count());
    assert_eq!(report.total, count);
    assert_eq!(
        report.panics, 0,
        "escaped panic, reproduce with drd_check::hostile::generate{:?}",
        report.first_panic
    );
    // Sanity: the campaign exercised both sides of the parser.
    assert!(report.rejected > 0, "no input was rejected — generator broken?");
    assert!(
        report.flow_errors + report.completed > 0,
        "no input parsed — truncation/splice families broken?"
    );
}
