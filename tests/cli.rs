//! Smoke tests of the `drdesync` command-line tool.

use std::process::Command;

fn write_sample(dir: &std::path::Path) -> std::path::PathBuf {
    let module = drdesync::designs::sample::figure_2_2().unwrap();
    let mut design = drdesync::netlist::Design::new();
    design.insert(module);
    let path = dir.join("sample.v");
    std::fs::write(&path, drdesync::netlist::verilog::write_design(&design)).unwrap();
    path
}

#[test]
fn cli_desync_produces_verilog_sdc_and_blif() {
    let dir = std::env::temp_dir().join("drdesync_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let input = write_sample(&dir);
    let out_v = dir.join("out.v");
    let out_sdc = dir.join("out.sdc");
    let out_blif = dir.join("out.blif");
    let status = Command::new(env!("CARGO_BIN_EXE_drdesync"))
        .args([
            "desync",
            input.to_str().unwrap(),
            "-o",
            out_v.to_str().unwrap(),
            "--sdc",
            out_sdc.to_str().unwrap(),
            "--blif",
            out_blif.to_str().unwrap(),
            "--period",
            "2.4",
        ])
        .status()
        .expect("binary runs");
    assert!(status.success());
    let verilog = std::fs::read_to_string(&out_v).unwrap();
    assert!(verilog.contains("drd_ctrl_master"));
    drdesync::netlist::verilog::parse_design(&verilog).expect("output parses");
    let sdc = std::fs::read_to_string(&out_sdc).unwrap();
    assert!(sdc.contains("create_clock"));
    let blif = std::fs::read_to_string(&out_blif).unwrap();
    assert!(blif.starts_with(".model"));
}

#[test]
fn cli_regions_and_gatefile() {
    let dir = std::env::temp_dir().join("drdesync_cli_test2");
    std::fs::create_dir_all(&dir).unwrap();
    let input = write_sample(&dir);
    let out = Command::new(env!("CARGO_BIN_EXE_drdesync"))
        .args(["regions", input.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("sequential"), "{text}");

    let out = Command::new(env!("CARGO_BIN_EXE_drdesync"))
        .args(["gatefile", "--lib", "ll"])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("replace DFFX1 -> LDX1+LDX1"), "{text}");
}

#[test]
fn cli_trace_stop_after_and_dump_after() {
    let dir = std::env::temp_dir().join("drdesync_cli_test3");
    std::fs::create_dir_all(&dir).unwrap();
    let input = write_sample(&dir);
    let out_v = dir.join("partial.v");
    let trace = dir.join("trace.json");
    let dump = dir.join("after_group.v");
    let out = Command::new(env!("CARGO_BIN_EXE_drdesync"))
        .args([
            "desync",
            input.to_str().unwrap(),
            "-o",
            out_v.to_str().unwrap(),
            "--trace",
            trace.to_str().unwrap(),
            "--stop-after",
            "ddg",
            "--dump-after",
            &format!("group={}", dump.display()),
        ])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("stopped after pass `ddg`"), "{stderr}");

    // The trace lists exactly the executed prefix of the pipeline.
    let json = std::fs::read_to_string(&trace).unwrap();
    for pass in ["clean", "clock-id", "group", "ddg"] {
        assert!(json.contains(&format!("\"name\": \"{pass}\"")), "{json}");
    }
    assert!(!json.contains("\"name\": \"sdc\""), "{json}");

    // The checkpoint and the partial output are both parseable Verilog
    // and still synchronous (no control network inserted yet).
    for path in [&dump, &out_v] {
        let v = std::fs::read_to_string(path).unwrap();
        drdesync::netlist::verilog::parse_design(&v).expect("checkpoint parses");
        assert!(!v.contains("drd_ctrl_master"), "{v}");
    }

    // Unknown pass names are rejected for both flags.
    for flag in ["--stop-after", "--dump-after"] {
        let out = Command::new(env!("CARGO_BIN_EXE_drdesync"))
            .args(["desync", input.to_str().unwrap(), flag, "bogus"])
            .output()
            .expect("binary runs");
        assert!(!out.status.success(), "{flag} bogus should fail");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("unknown pass `bogus`"), "{stderr}");
    }
}

#[test]
fn cli_simulate_reports_cycle_times_and_is_worker_stable() {
    let dir = std::env::temp_dir().join("drdesync_cli_sim");
    std::fs::create_dir_all(&dir).unwrap();
    let input = write_sample(&dir);
    let run = |jobs: &str| {
        let out = Command::new(env!("CARGO_BIN_EXE_drdesync"))
            .args([
                "simulate",
                input.to_str().unwrap(),
                "--seeds",
                "64",
                "--jobs",
                jobs,
            ])
            .output()
            .expect("binary runs");
        assert!(out.status.success(), "{out:?}");
        String::from_utf8(out.stdout).unwrap()
    };
    let serial = run("1");
    assert!(serial.contains("matched floor"), "{serial}");
    assert!(serial.contains("nominal effective period:"), "{serial}");
    assert!(serial.contains("sync worst-case period:"), "{serial}");
    // stdout carries only data, so it must be byte-identical whatever
    // the worker count.
    assert_eq!(serial, run("4"));

    // `--seeds 0` skips the campaign but still measures nominal timing.
    let out = Command::new(env!("CARGO_BIN_EXE_drdesync"))
        .args(["simulate", input.to_str().unwrap(), "--seeds", "0"])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("nominal effective period:"), "{text}");
    assert!(!text.contains("monte carlo"), "{text}");

    // A malformed campaign seed is a usage error.
    let out = Command::new(env!("CARGO_BIN_EXE_drdesync"))
        .args(["simulate", input.to_str().unwrap(), "--seed", "zz"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(1), "{out:?}");
}

#[test]
fn cli_rejects_unknown_command() {
    let out = Command::new(env!("CARGO_BIN_EXE_drdesync"))
        .args(["frobnicate"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert_eq!(out.status.code(), Some(1));
}

/// Two-region netlist whose second region's flip-flop flavour can be
/// declared unsupported via `--keep-sync-ff DFFRX1`.
fn write_mixed(dir: &std::path::Path) -> std::path::PathBuf {
    let src = "
        module mix (clk, out0, out1);
          input clk; output out0; output out1;
          wire d0; wire d1;
          INVX1 inv0 (.A(out0), .Z(d0));
          DFFX1 r0 (.D(d0), .CK(clk), .Q(out0));
          INVX1 inv1 (.A(out0), .Z(d1));
          DFFRX1 r1 (.D(d1), .RN(1'b1), .CK(clk), .Q(out1));
        endmodule";
    let path = dir.join("mix.v");
    std::fs::write(&path, src).unwrap();
    path
}

#[test]
fn cli_parse_error_exits_2() {
    let dir = std::env::temp_dir().join("drdesync_cli_exit2");
    std::fs::create_dir_all(&dir).unwrap();
    let input = dir.join("garbage.v");
    std::fs::write(&input, "module broken (a;\n???\n").unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_drdesync"))
        .args(["desync", input.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("error:"), "{stderr}");
}

#[test]
fn cli_flow_error_exits_3() {
    let dir = std::env::temp_dir().join("drdesync_cli_exit3");
    std::fs::create_dir_all(&dir).unwrap();
    // Parses fine but has no clocked flip-flop: the flow cannot identify
    // a clock and fails.
    let input = dir.join("clockless.v");
    std::fs::write(
        &input,
        "module clockless (input a, output z);\n  INVX1 u (.A(a), .Z(z));\nendmodule",
    )
    .unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_drdesync"))
        .args(["desync", input.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(3), "{out:?}");
}

#[test]
fn cli_degraded_flow_exits_0_with_warning() {
    let dir = std::env::temp_dir().join("drdesync_cli_degraded");
    std::fs::create_dir_all(&dir).unwrap();
    let input = write_mixed(&dir);
    let out_v = dir.join("out.v");
    let out_sdc = dir.join("out.sdc");
    let out = Command::new(env!("CARGO_BIN_EXE_drdesync"))
        .args([
            "desync",
            input.to_str().unwrap(),
            "-o",
            out_v.to_str().unwrap(),
            "--sdc",
            out_sdc.to_str().unwrap(),
            "--keep-sync-ff",
            "DFFRX1",
        ])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("warning: 1 region(s) left synchronous"),
        "{stderr}"
    );
    assert!(stderr.contains("DFFRX1"), "{stderr}");
    // The degraded region keeps its flip-flop; the SDC declares the CDC.
    let verilog = std::fs::read_to_string(&out_v).unwrap();
    assert!(verilog.contains("DFFRX1"), "{verilog}");
    let sdc = std::fs::read_to_string(&out_sdc).unwrap();
    assert!(sdc.contains("set_clock_groups -asynchronous"), "{sdc}");
}

#[test]
fn cli_strict_turns_degradation_into_flow_error() {
    let dir = std::env::temp_dir().join("drdesync_cli_strict");
    std::fs::create_dir_all(&dir).unwrap();
    let input = write_mixed(&dir);
    let out = Command::new(env!("CARGO_BIN_EXE_drdesync"))
        .args([
            "desync",
            input.to_str().unwrap(),
            "--keep-sync-ff",
            "DFFRX1",
            "--strict",
        ])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(3), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("DFFRX1"), "{stderr}");
}

#[test]
fn cli_jobs_zero_is_rejected_before_any_flow_runs() {
    // `--jobs 0` used to flow through `parsed_flag` into a zero-worker
    // pool; it must be rejected up front with exit 2 and a usage-style
    // message, uniformly across the commands that take --jobs.
    let dir = std::env::temp_dir().join("drdesync_cli_jobs0");
    std::fs::create_dir_all(&dir).unwrap();
    let input = write_sample(&dir);
    let invocations: [&[&str]; 3] = [
        &["desync", input.to_str().unwrap(), "--jobs", "0"],
        &["simulate", input.to_str().unwrap(), "--seeds", "1", "--jobs", "0"],
        &["serve", "--stdio", "--jobs", "0"],
    ];
    for args in invocations {
        let out = Command::new(env!("CARGO_BIN_EXE_drdesync"))
            .args(args)
            .stdin(std::process::Stdio::null())
            .output()
            .expect("binary runs");
        assert_eq!(out.status.code(), Some(2), "{args:?}: {out:?}");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("--jobs must be at least 1"), "{args:?}: {stderr}");
        assert!(stderr.contains("omit --jobs"), "{args:?}: {stderr}");
    }
    // `--jobs 1` stays valid.
    let status = Command::new(env!("CARGO_BIN_EXE_drdesync"))
        .args(["desync", input.to_str().unwrap(), "-o", dir.join("j1.v").to_str().unwrap()])
        .args(["--jobs", "1"])
        .status()
        .expect("binary runs");
    assert!(status.success());
}

#[test]
fn cli_serve_stdio_answers_jobs_stats_and_shutdown() {
    use std::io::Write;

    let dir = std::env::temp_dir().join("drdesync_cli_serve");
    std::fs::create_dir_all(&dir).unwrap();
    let input = write_sample(&dir);
    let verilog = std::fs::read_to_string(&input).unwrap();
    let escaped: String = verilog
        .chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            '\n' => "\\n".chars().collect(),
            c => vec![c],
        })
        .collect();

    let mut child = Command::new(env!("CARGO_BIN_EXE_drdesync"))
        .args(["serve", "--stdio"])
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("binary runs");
    // One request at a time, so the second identical job deterministically
    // hits the cache (two *concurrent* identical jobs would both miss).
    let mut stdin = child.stdin.take().unwrap();
    let mut reader = std::io::BufReader::new(child.stdout.take().unwrap());
    let mut ask = move |request: &str| -> String {
        use std::io::BufRead;
        writeln!(stdin, "{request}").unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        line
    };
    let cold = ask(&format!("{{\"id\":\"a\",\"kind\":\"desync\",\"verilog\":\"{escaped}\"}}"));
    assert!(cold.contains("\"id\":\"a\"") && cold.contains("\"cached\":false"), "{cold}");
    let warm = ask(&format!("{{\"id\":\"b\",\"kind\":\"desync\",\"verilog\":\"{escaped}\"}}"));
    assert!(warm.contains("\"id\":\"b\"") && warm.contains("\"cached\":true"), "{warm}");
    let bad = ask("this is not json");
    assert!(
        bad.contains("\"error_kind\":\"request\"") && bad.contains("\"exit_code\":1"),
        "malformed line must be answered, not fatal: {bad}"
    );
    let stats = ask("{\"id\":\"s\",\"kind\":\"stats\"}");
    assert!(stats.contains("\"kind\":\"stats\""), "{stats}");
    assert!(stats.contains("\"cache_hits\":1"), "{stats}");
    let bye = ask("{\"id\":\"bye\",\"kind\":\"shutdown\"}");
    assert!(bye.contains("\"kind\":\"shutdown\""), "{bye}");
    assert!(bye.contains("\"jobs_served\":2"), "{bye}");
    let status = child.wait().expect("server exits");
    assert!(status.success(), "{status:?}");
}

#[test]
fn cli_budget_flags_abort_with_flow_error() {
    let dir = std::env::temp_dir().join("drdesync_cli_budget");
    std::fs::create_dir_all(&dir).unwrap();
    let input = write_sample(&dir);
    let out = Command::new(env!("CARGO_BIN_EXE_drdesync"))
        .args(["desync", input.to_str().unwrap(), "--max-cells", "1"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(3), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("cells budget"), "{stderr}");

    // A malformed budget value is a usage error, not a flow error.
    let out = Command::new(env!("CARGO_BIN_EXE_drdesync"))
        .args(["desync", input.to_str().unwrap(), "--max-cells", "many"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(1), "{out:?}");
}
