//! Differential parser equivalence: the streaming zero-copy front end
//! against the frozen pre-rewrite parser (`verilog::legacy`, kept under
//! the `legacy-parser` feature exactly as it shipped).
//!
//! The contract, per input:
//! - legacy parses → the streaming parser produces a *structurally
//!   identical* design: same modules, ports, nets, cells, pins and
//!   constant ties by **resolved name** (symbol indices are an internal
//!   detail and free to differ), and the two designs re-export to
//!   byte-identical Verilog;
//! - legacy rejects → the streaming parser also rejects;
//! - legacy panics (it predates some hostile-input hardening) → the
//!   streaming parser must still return, never panic — its outcome may
//!   be either a parse or a structured error.
//!
//! Exercised across the seeded 25-netlist fuzz corpus (`drd-check`
//! netgen, the same generator family as the flow-equivalence fuzzer),
//! every golden Verilog fixture, and targeted constructs around known
//! legacy/streaming divergence risks (escaped names, wide constants,
//! classic vs ANSI ports, assign aliases).

use std::fmt::Write as _;
use std::panic::catch_unwind;

use drd_check::netgen::{NetGenParams, NetRecipe};
use drd_check::Rng;
use drd_netlist::verilog;
use drd_netlist::{Conn, Design};

/// A canonical, fully name-resolved dump of a design's structure. Two
/// designs with equal signatures are the same netlist regardless of how
/// their symbol tables assigned indices.
fn design_signature(design: &Design) -> String {
    let mut out = String::new();
    for (_, m) in design.modules() {
        let _ = writeln!(out, "module {}", m.name);
        for (_, p) in m.ports() {
            let _ = writeln!(out, "  port {} {:?}", p.name, p.dir);
        }
        for (_, n) in m.nets() {
            let _ = write!(out, "  net {}", n.name);
            if let Some(b) = n.bus {
                let _ = write!(out, " bus {}[{}]", b.base, b.index);
            }
            out.push('\n');
        }
        for (_, c) in m.cells() {
            let _ = write!(out, "  cell {} {:?}", c.name, c.kind_ref());
            for &(pin, conn) in c.pins() {
                let _ = write!(out, " .{}(", m.resolve(pin));
                match conn {
                    Conn::Net(id) => out.push_str(m.net(id).name),
                    Conn::Const0 => out.push('0'),
                    Conn::Const1 => out.push('1'),
                    Conn::Open => {}
                }
                out.push(')');
            }
            out.push('\n');
        }
        for &(net, value) in m.const_ties() {
            let _ = writeln!(out, "  tie {} {}", m.net(net).name, u8::from(value));
        }
    }
    out
}

/// Runs one input through both front ends and asserts the outcome
/// contract described in the module docs.
fn assert_equivalent(src: &str, what: &str) {
    let new = catch_unwind(|| verilog::parse_design(src))
        .unwrap_or_else(|_| panic!("streaming parser panicked on {what}"));
    let legacy = catch_unwind(|| verilog::legacy::parse_design(src));
    match legacy {
        Ok(Ok(old)) => {
            let new = match new {
                Ok(d) => d,
                Err(e) => panic!("streaming parser rejected {what} that legacy accepts: {e}"),
            };
            assert_eq!(
                design_signature(&old),
                design_signature(&new),
                "structural divergence on {what}"
            );
            assert_eq!(
                verilog::write_design(&old),
                verilog::write_design(&new),
                "re-export divergence on {what}"
            );
        }
        Ok(Err(_)) => {
            assert!(
                new.is_err(),
                "streaming parser accepted {what} that legacy rejects"
            );
        }
        // Legacy panicked: the streaming parser already proved it
        // returns (unwrapped above); either outcome is acceptable.
        Err(_) => {}
    }
}

#[test]
fn parsers_agree_on_25_netlist_fuzz_corpus() {
    let params = NetGenParams::default();
    let mut rng = Rng::new(0xD1FF_F00D_2026_0808);
    for case in 0..25 {
        let recipe = NetRecipe::sample(&mut rng, &params);
        let src = recipe.verilog();
        assert!(
            src.contains("module"),
            "netgen produced an empty case {case}"
        );
        assert_equivalent(&src, &format!("fuzz netlist {case}"));
    }
}

#[test]
fn parsers_agree_on_golden_fixtures() {
    let dir = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden");
    let mut seen = 0;
    let mut entries: Vec<_> = std::fs::read_dir(&dir)
        .expect("golden dir reads")
        .map(|e| e.expect("entry reads").path())
        .filter(|p| p.extension().is_some_and(|x| x == "v"))
        .collect();
    entries.sort();
    for path in entries {
        let src = std::fs::read_to_string(&path).expect("fixture reads");
        assert_equivalent(&src, &path.display().to_string());
        seen += 1;
    }
    assert!(seen >= 2, "expected at least escaped_small.v and its output");
}

#[test]
fn parsers_agree_on_targeted_constructs() {
    let cases: &[(&str, &str)] = &[
        (
            "escaped identifiers with bus suffixes",
            "module t(a, z);\n  input a;\n  output z;\n  wire \\u.q[3] ;\n  \
             BUFX1 b1 (.A(a), .Z(\\u.q[3] ));\n  BUFX1 b2 (.A(\\u.q[3] ), .Z(z));\nendmodule\n",
        ),
        (
            "colliding sanitized escaped names",
            "module t(z);\n  output z;\n  wire \\a+b ;\n  wire \\a-b ;\n  \
             AND2X1 g (.A(\\a+b ), .B(\\a-b ), .Z(z));\nendmodule\n",
        ),
        (
            "classic (non-ANSI) port declarations",
            "module t(a, b, z);\n  input a, b;\n  output z;\n  \
             AND2X1 g (.A(a), .B(b), .Z(z));\nendmodule\n",
        ),
        (
            "ANSI ranged ports and bus expressions",
            "module t(input [3:0] a, output [3:0] z);\n  \
             BUFX1 g0 (.A(a[0]), .Z(z[0]));\n  BUFX1 g1 (.A(a[1]), .Z(z[1]));\n  \
             BUFX1 g2 (.A(a[2]), .Z(z[2]));\n  BUFX1 g3 (.A(a[3]), .Z(z[3]));\nendmodule\n",
        ),
        (
            "assign aliases onto ports and constants",
            "module t(a, z, y);\n  input a;\n  output z, y;\n  wire w;\n  \
             assign w = a;\n  assign y = 1'b1;\n  BUFX1 g (.A(w), .Z(z));\nendmodule\n",
        ),
        (
            "concatenations into multi-bit pins",
            "module t(a, b, z);\n  input a, b;\n  output z;\n  \
             MX2X1 g (.A({a, b}), .S0(a), .Y(z));\nendmodule\n",
        ),
        (
            "sized constants in every base",
            "module t(z0, z1, z2, z3);\n  output z0, z1, z2, z3;\n  \
             BUFX1 g0 (.A(1'b1), .Z(z0));\n  BUFX1 g1 (.A(4'hA), .Z(z1));\n  \
             BUFX1 g2 (.A(3'o5), .Z(z2));\n  BUFX1 g3 (.A(2'd3), .Z(z3));\nendmodule\n",
        ),
        (
            "multi-module designs with instance retargeting",
            "module top(a, z);\n  input a;\n  output z;\n  \
             leaf u (.p(a), .q(z));\nendmodule\n\
             module leaf(p, q);\n  input p;\n  output q;\n  \
             BUFX1 g (.A(p), .Z(q));\nendmodule\n",
        ),
        // Known legacy weak spots: the contract degrades to
        // "streaming must not panic" when legacy panics.
        (
            "constants wider than 128 bits",
            "module t(z);\n  output [199:0] z;\n  \
             BUFX1 g (.A(1'b0), .Z(z[0]));\n  wire [199:0] k;\nendmodule\n",
        ),
        (
            "syntax errors mid-statement",
            "module t(a);\n  input a;\n  BUFX1 g (.A(a), ;\nendmodule\n",
        ),
        (
            "unsupported behavioural code",
            "module t(a);\n  input a;\n  always @(posedge a) q <= a;\nendmodule\n",
        ),
    ];
    for (what, src) in cases {
        assert_equivalent(src, what);
    }
}
