//! Cross-crate integration tests: the full desynchronization flow from
//! Verilog text in to Verilog/SDC out, with flow-equivalence checking.

use drdesync::core::{DesyncOptions, Desynchronizer};
use drdesync::liberty::{vlib90, Lv};
use drdesync::netlist::Design;
use drdesync::sim::{compare_capture_logs, SimOptions, Simulator};

/// The full loop: generate → write Verilog → parse it back → desynchronize
/// the parsed netlist → simulate both → flow equivalence.
#[test]
fn verilog_roundtrip_then_desynchronize_sample() {
    let lib = vlib90::high_speed();
    let module = drdesync::designs::sample::figure_2_2().unwrap();

    // Round-trip through the textual format, as the real flow would.
    let mut d = Design::new();
    d.insert(module.clone());
    let text = drdesync::netlist::verilog::write_design(&d);
    let parsed = drdesync::netlist::verilog::parse_module(&text).unwrap();

    let tool = Desynchronizer::new(&lib).unwrap();
    let result = tool.run(&parsed, &DesyncOptions::default()).unwrap();
    assert!(result.report.substituted_ffs >= 20);
    assert!(result.sdc.contains("create_clock"));

    // Reference run.
    let mut sync = Design::new();
    sync.insert(module);
    let mut reference = Simulator::new(&sync, &lib, SimOptions::default()).unwrap();
    for i in 0..drdesync::designs::sample::WIDTH {
        reference
            .poke(&format!("din[{i}]"), Lv::from_bool(i % 2 == 1))
            .unwrap();
    }
    reference.schedule_clock("clk", 2.0, 1.0, 12).unwrap();
    reference.run_for(30.0);

    // Desynchronized run.
    let mut dut = Simulator::new(&result.design, &lib, SimOptions::default()).unwrap();
    for i in 0..drdesync::designs::sample::WIDTH {
        dut.poke(&format!("din[{i}]"), Lv::from_bool(i % 2 == 1))
            .unwrap();
    }
    dut.poke("drd_rst", Lv::Zero).unwrap();
    dut.run_for(2.0);
    dut.poke("drd_rst", Lv::One).unwrap();
    dut.run_for(120.0);

    let check = compare_capture_logs(reference.captures(), dut.captures(), |n| format!("{n}_ls"));
    assert!(check.is_equivalent(), "{check:?}");
}

/// Flow equivalence holds for the (small) DLX pipeline with register-file
/// feedback, and under intra-die variation.
#[test]
fn dlx_flow_equivalence_with_variation() {
    let lib = vlib90::high_speed();
    let params = drdesync::designs::dlx::DlxParams::small();
    let module = drdesync::designs::dlx::build(&params).unwrap();

    let mut sync = Design::new();
    sync.insert(module.clone());
    let mut reference = Simulator::new(&sync, &lib, SimOptions::default()).unwrap();
    reference.poke("irq", Lv::Zero).unwrap();
    reference.schedule_clock("clk", 3.0, 1.5, 16).unwrap();
    reference.run_for(55.0);
    assert_eq!(reference.captures().capture_count("pc_r0"), 16);

    let tool = Desynchronizer::new(&lib).unwrap();
    // "Delay elements must include margins to cope with uncorrelated
    // variability" (§2.5): widen the margin to cover the intra-die sigma
    // used below.
    let desync_opts = DesyncOptions {
        delay_margin: 1.30,
        ..DesyncOptions::default()
    };
    let result = tool.run(&module, &desync_opts).unwrap();
    // Simulate with per-instance delay variation: the self-timed circuit
    // must still be flow-equivalent (the delay elements carry margin).
    let opts = SimOptions::default().with_variation(0.04, 1234);
    let mut dut = Simulator::new(&result.design, &lib, opts).unwrap();
    dut.poke("irq", Lv::Zero).unwrap();
    dut.poke("drd_rst", Lv::Zero).unwrap();
    dut.run_for(3.0);
    dut.poke("drd_rst", Lv::One).unwrap();
    dut.run_for(220.0);
    assert!(dut.captures().capture_count("pc_r0_ls") >= 8);

    let check = compare_capture_logs(reference.captures(), dut.captures(), |n| format!("{n}_ls"));
    assert!(check.is_equivalent(), "{check:?}");
}

/// The desynchronized netlist is fully standard: it exports to Verilog
/// and BLIF, re-parses, and re-simulates identically.
#[test]
fn desynchronized_netlist_is_portable() {
    let lib = vlib90::high_speed();
    let module = drdesync::designs::sample::figure_2_2().unwrap();
    let tool = Desynchronizer::new(&lib).unwrap();
    let result = tool.run(&module, &DesyncOptions::default()).unwrap();

    let text = drdesync::netlist::verilog::write_design(&result.design);
    let reparsed = drdesync::netlist::verilog::parse_design(&text).unwrap();
    // Same cell population after a round trip.
    let flat_a = drdesync::netlist::flatten(&result.design, result.design.top()).unwrap();
    let flat_b = drdesync::netlist::flatten(&reparsed, reparsed.top()).unwrap();
    assert_eq!(flat_a.cell_count(), flat_b.cell_count());

    let blif = drdesync::netlist::blif::write_blif(&flat_a);
    assert!(blif.contains(".model"));
    assert!(blif.contains(".gate LDX1"));

    // The re-parsed design still runs.
    let mut sim = Simulator::new(&reparsed, &lib, SimOptions::default()).unwrap();
    for i in 0..drdesync::designs::sample::WIDTH {
        sim.poke(&format!("din[{i}]"), Lv::Zero).unwrap();
    }
    sim.poke("drd_rst", Lv::Zero).unwrap();
    sim.run_for(2.0);
    sim.poke("drd_rst", Lv::One).unwrap();
    sim.run_for(60.0);
    assert!(sim.captures().capture_count("g1_r0_ls") >= 4);
}

/// Scan-inserted designs desynchronize too: scan flip-flops become
/// mux+latch-pair structures (Fig. 3.1a) and the circuit still runs.
#[test]
fn scan_design_desynchronizes() {
    let lib = vlib90::low_leakage();
    let mut module = drdesync::designs::dlx::build(&drdesync::designs::dlx::DlxParams {
        width: 8,
        regs_log2: 3,
        rom_log2: 4,
        ram_log2: 3,
        seed: 7,
    })
    .unwrap();
    let scan = drdesync::flow::insert_scan(&mut module, &lib).unwrap();
    assert!(scan.converted > 100);

    let mut opts = DesyncOptions::default();
    opts.grouping.single_group = true;
    opts.grouping.false_path_nets.push("scan_en".into());
    let tool = Desynchronizer::new(&lib).unwrap();
    let result = tool.run(&module, &opts).unwrap();
    assert_eq!(result.report.regions.len(), 1);
    // Scan muxes were synthesized around the latch pairs.
    let flat = drdesync::netlist::flatten(&result.design, result.design.top()).unwrap();
    let muxes = flat
        .cells()
        .filter(|(_, c)| c.name.ends_with("_smx"))
        .count();
    assert_eq!(muxes, scan.converted);
}

/// Ablation: lowering every C-element to the majority-gate standard-cell
/// form (for C-element-less target libraries) preserves behaviour — the
/// decomposed desynchronized circuit is still flow-equivalent.
#[test]
fn celement_decomposition_preserves_flow_equivalence() {
    let lib = vlib90::high_speed();
    let module = drdesync::designs::sample::figure_2_2().unwrap();
    let tool = Desynchronizer::new(&lib).unwrap();
    let result = tool.run(&module, &DesyncOptions::default()).unwrap();
    let mut flat = drdesync::netlist::flatten(&result.design, result.design.top()).unwrap();
    let n = drdesync::core::celement::decompose_celements(&mut flat, &lib).unwrap();
    assert!(n > 10, "decomposed {n} C-elements");

    // Reference.
    let mut sync = Design::new();
    sync.insert(module);
    let mut reference = Simulator::new(&sync, &lib, SimOptions::default()).unwrap();
    for i in 0..drdesync::designs::sample::WIDTH {
        reference.poke(&format!("din[{i}]"), Lv::One).unwrap();
    }
    reference.schedule_clock("clk", 2.0, 1.0, 10).unwrap();
    reference.run_for(26.0);

    let mut dut = Simulator::from_flat(&flat, &lib, SimOptions::default()).unwrap();
    for i in 0..drdesync::designs::sample::WIDTH {
        dut.poke(&format!("din[{i}]"), Lv::One).unwrap();
    }
    dut.poke("drd_rst", Lv::Zero).unwrap();
    dut.run_for(2.0);
    dut.poke("drd_rst", Lv::One).unwrap();
    dut.run_for(120.0);
    let check = compare_capture_logs(reference.captures(), dut.captures(), |n| format!("{n}_ls"));
    assert!(check.is_equivalent(), "{check:?}");
}

/// The ARM-like scan design (§5.3 configuration: Low-Leakage library,
/// single group) is flow-equivalent after desynchronization, with the
/// scan path held in functional mode.
#[test]
fn armlike_single_group_flow_equivalence() {
    let lib = vlib90::low_leakage();
    let params = drdesync::designs::armlike::ArmParams::small();
    let mut module = drdesync::designs::armlike::build(&params).unwrap();
    drdesync::flow::insert_scan(&mut module, &lib).unwrap();

    let mut sync = Design::new();
    sync.insert(module.clone());
    let mut reference = Simulator::new(&sync, &lib, SimOptions::default()).unwrap();
    for p in ["irq", "scan_in", "scan_en"] {
        reference.poke(p, Lv::Zero).unwrap();
    }
    reference.schedule_clock("clk", 6.0, 3.0, 10).unwrap();
    reference.run_for(70.0);

    let mut opts = DesyncOptions::default();
    opts.grouping.single_group = true;
    opts.grouping.false_path_nets.push("scan_en".into());
    let tool = Desynchronizer::new(&lib).unwrap();
    let result = tool.run(&module, &opts).unwrap();
    let mut dut = Simulator::new(&result.design, &lib, SimOptions::default()).unwrap();
    for p in ["irq", "scan_in", "scan_en"] {
        dut.poke(p, Lv::Zero).unwrap();
    }
    dut.poke("drd_rst", Lv::Zero).unwrap();
    dut.run_for(5.0);
    dut.poke("drd_rst", Lv::One).unwrap();
    dut.run_for(400.0);
    assert!(dut.captures().capture_count("pc_r0_ls") >= 5);

    let check = compare_capture_logs(reference.captures(), dut.captures(), |n| format!("{n}_ls"));
    assert!(check.is_equivalent(), "{check:?}");
}

/// The Fig. 5.3 property in miniature: with 8-tap multiplexed delay
/// elements, the effective period falls monotonically with the selection
/// while staying flow-equivalent at and above the matched tap. (On this
/// small design every tap stays correct — the fixed control slack covers
/// the tiny clouds; the full failure-point experiment is the `fig_5_3`
/// bench binary, which asserts the too-short region starts at the same
/// selection in both corners.)
#[test]
fn muxed_delay_selection_gates_correctness() {
    let lib = vlib90::high_speed();
    let module = drdesync::designs::dlx::build(&drdesync::designs::dlx::DlxParams::small()).unwrap();

    let mut sync = Design::new();
    sync.insert(module.clone());
    let mut reference = Simulator::new(&sync, &lib, SimOptions::default()).unwrap();
    reference.poke("irq", Lv::Zero).unwrap();
    reference.schedule_clock("clk", 3.0, 1.5, 16).unwrap();
    reference.run_for(55.0);

    let opts = DesyncOptions {
        muxed_delay_elements: true,
        ..DesyncOptions::default()
    };
    let tool = Desynchronizer::new(&lib).unwrap();
    let result = tool.run(&module, &opts).unwrap();

    let watch_net = {
        let r = result
            .report
            .regions
            .iter()
            .filter(|r| r.ffs > 0)
            .max_by_key(|r| r.ffs)
            .unwrap();
        format!("drd_{}_gs", r.name)
    };
    let run_at = |selection: u8| {
        let mut dut = Simulator::new(&result.design, &lib, SimOptions::default()).unwrap();
        dut.poke("irq", Lv::Zero).unwrap();
        dut.watch(&watch_net).unwrap();
        for b in 0..3 {
            dut.poke(&format!("dsel[{b}]"), Lv::from_bool((selection >> b) & 1 == 1))
                .unwrap();
        }
        dut.poke("drd_rst", Lv::Zero).unwrap();
        dut.run_for(3.0);
        dut.poke("drd_rst", Lv::One).unwrap();
        dut.run_for(250.0);
        let edges = dut.rising_edges(&watch_net);
        let period = (edges[edges.len() - 1] - edges[2]) / (edges.len() - 3) as f64;
        (
            compare_capture_logs(reference.captures(), dut.captures(), |n| format!("{n}_ls")),
            period,
        )
    };

    let (fe2, p2) = run_at(2);
    let (fe7, p7) = run_at(7);
    let (_, p0) = run_at(0);
    assert!(fe2.is_equivalent(), "matched selection: {fe2:?}");
    assert!(fe7.is_equivalent(), "longest selection: {fe7:?}");
    assert!(
        p0 < p2 && p2 < p7,
        "period falls monotonically with selection: {p0:.3} < {p2:.3} < {p7:.3}"
    );
}
