//! Differential flow-equivalence fuzzing (the acceptance gate of the
//! offline verification harness): ≥ 100 seeded random synchronous
//! netlists through the full desynchronization flow, each co-simulated
//! against its clocked self, asserting capture-log equality (§2.1) and
//! SDC well-formedness. Failing netlists shrink to a minimal reproducer
//! printed as Verilog.
//!
//! All four loops run on the work-stealing parallel runner
//! ([`drd_check::prop_par_with`]) with fixed seeds: case seeds are
//! pre-generated serially, so the failing `NetRecipe` + seed printed on
//! panic is identical for any worker count (`DRD_WORKERS` to override).
//!
//! Replay knobs (see README "Building and testing"):
//! `DRD_PROP_SEED`, `DRD_PROP_CASES`, `DRD_PROP_CASE_SEED`.

use std::sync::atomic::{AtomicUsize, Ordering};

use drd_check::diff::{run_differential, DiffConfig};
use drd_check::golden::render_desync_report;
use drd_check::netgen::{NetGenParams, NetRecipe};
use drd_check::{prop_par_with, Config, Rng};
use drdesync::core::{DesyncOptions, Desynchronizer, FlowContext, Pipeline};
use drdesync::liberty::vlib90;

#[test]
fn differential_fuzz_100_random_netlists() {
    let lib = vlib90::high_speed();
    let params = NetGenParams::default();
    let config = DiffConfig::default();
    let total_events = AtomicUsize::new(0);
    prop_par_with(
        Config::new(100).seed(0xD5C0_DE20_07F0_22ED),
        |rng: &mut Rng| NetRecipe::sample(rng, &params),
        |recipe: &NetRecipe| {
            let stats = run_differential(recipe, &lib, &config)?;
            total_events.fetch_add(stats.events, Ordering::Relaxed);
            Ok(())
        },
    );
    let total_events = total_events.load(Ordering::Relaxed);
    assert!(total_events > 1000, "compared {total_events} capture events");
}

/// The scan / sync-set / sync-reset substitution flavours (Fig. 3.1) stay
/// flow-equivalent when every stage is forced to carry wide mixed banks.
#[test]
fn differential_fuzz_scan_set_reset_mix() {
    let lib = vlib90::high_speed();
    let params = NetGenParams {
        max_stages: 2,
        max_width: 4,
        max_cloud: 4,
        max_inputs: 6,
        scan_set_reset: true,
        source_imbalance: 0,
        deepen_infeasible: 0,
    };
    let config = DiffConfig::default();
    prop_par_with(
        Config::new(16).seed(0x5CA0_F1B3),
        |rng: &mut Rng| NetRecipe::sample(rng, &params),
        |recipe: &NetRecipe| run_differential(recipe, &lib, &config).map(|_| ()),
    );
}

/// The legacy `Desynchronizer::run` wrapper and the explicit
/// [`Pipeline`] path are the same flow: on fuzzed netlists both produce
/// byte-identical SDC constraints, reports, and output Verilog (or fail
/// with the same error).
#[test]
fn differential_pipeline_matches_legacy_wrapper() {
    let lib = vlib90::high_speed();
    let params = NetGenParams::default();
    let tool = Desynchronizer::new(&lib).expect("tool builds");
    let opts = DesyncOptions::default();
    prop_par_with(
        Config::new(25).seed(0x9A55_F10E),
        |rng: &mut Rng| NetRecipe::sample(rng, &params),
        |recipe: &NetRecipe| {
            let module = recipe.build().map_err(|e| e.to_string())?;
            let legacy = tool.run(&module, &opts);
            let mut cx = FlowContext::new(&lib, tool.gatefile(), module, opts.clone());
            let piped = Pipeline::standard()
                .run(&mut cx)
                .and_then(|_| cx.into_result());
            match (legacy, piped) {
                (Ok(a), Ok(b)) => {
                    if a.sdc != b.sdc {
                        return Err("SDC outputs differ".into());
                    }
                    if render_desync_report(&a.report) != render_desync_report(&b.report) {
                        return Err("flow reports differ".into());
                    }
                    let va = drdesync::netlist::verilog::write_design(&a.design);
                    let vb = drdesync::netlist::verilog::write_design(&b.design);
                    if va != vb {
                        return Err("output Verilog differs".into());
                    }
                    Ok(())
                }
                (Err(a), Err(b)) if a.to_string() == b.to_string() => Ok(()),
                (a, b) => Err(format!(
                    "paths disagree: legacy {:?}, pipeline {:?}",
                    a.map(|_| ()).map_err(|e| e.to_string()),
                    b.map(|_| ()).map_err(|e| e.to_string()),
                )),
            }
        },
    );
}

/// The differential harness also holds under the Low-Leakage library.
#[test]
fn differential_fuzz_low_leakage_library() {
    let lib = vlib90::low_leakage();
    let params = NetGenParams::default();
    let config = DiffConfig::default();
    prop_par_with(
        Config::new(12).seed(0x11_C0DE),
        |rng: &mut Rng| NetRecipe::sample(rng, &params),
        |recipe: &NetRecipe| run_differential(recipe, &lib, &config).map(|_| ()),
    );
}
