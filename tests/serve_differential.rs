//! Differential oracle for `drdesync serve` (DESIGN.md §3j): the server
//! and the one-shot CLI are two front ends over the same flow, so every
//! artifact — report, SDC, Verilog — must be **byte-identical** across
//!
//! * the one-shot CLI (`drdesync desync -o/--sdc/--report`),
//! * `drdesync serve --stdio` with one request in flight (cold cache),
//! * `drdesync serve --stdio` with eight requests in flight (cold
//!   cache, cross-job scheduling active),
//! * warm-cache replays of both serve runs (`cached:true` responses).
//!
//! The corpus is 25 fuzzed netlists (seeded netgen, vetted in-process so
//! every flow succeeds; a third carry the imbalanced liveness-hazard
//! shape so the reports contain repair records, not just topology).

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::process::{Command, Stdio};

use drd_check::netgen::{NetGenParams, NetRecipe};
use drd_check::Rng;
use drd_core::{DesyncOptions, Desynchronizer};
use drd_liberty::vlib90;
use drd_serve::json;

const CORPUS: usize = 25;

/// Seeded fuzz corpus, vetted in-process: only netlists whose flow
/// succeeds are kept (the differential compares artifacts, and error
/// paths have none).
fn corpus() -> Vec<String> {
    let lib = vlib90::high_speed();
    let tool = Desynchronizer::new(&lib).expect("tool builds");
    let mut rng = Rng::new(0x5E12_7E00_D1FF);
    let params = NetGenParams::default();
    let mut kept = Vec::new();
    let mut drawn = 0usize;
    while kept.len() < CORPUS {
        drawn += 1;
        assert!(drawn < 400, "corpus generation stopped converging");
        let mut recipe = NetRecipe::sample(&mut rng, &params);
        if drawn.is_multiple_of(3) {
            recipe.imbalance(rng.range(6, 18));
        }
        let Ok(module) = recipe.build() else { continue };
        if tool.run(&module, &DesyncOptions::default()).is_ok() {
            kept.push(recipe.verilog());
        }
    }
    kept
}

/// The three artifacts the oracle compares.
#[derive(Debug, Clone, PartialEq)]
struct Artifacts {
    report: String,
    sdc: String,
    verilog: String,
}

/// Runs one netlist through the one-shot CLI, returning its artifacts.
fn cli_artifacts(dir: &std::path::Path, i: usize, verilog: &str) -> Artifacts {
    let src = dir.join(format!("in{i}.v"));
    let out = dir.join(format!("out{i}.v"));
    let sdc = dir.join(format!("out{i}.sdc"));
    let report = dir.join(format!("out{i}.report"));
    std::fs::write(&src, verilog).expect("corpus file written");
    let status = Command::new(env!("CARGO_BIN_EXE_drdesync"))
        .args(["desync"])
        .arg(&src)
        .arg("-o")
        .arg(&out)
        .arg("--sdc")
        .arg(&sdc)
        .arg("--report")
        .arg(&report)
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .status()
        .expect("cli spawns");
    assert!(status.success(), "vetted netlist {i} failed in the CLI");
    Artifacts {
        report: std::fs::read_to_string(&report).expect("report read"),
        sdc: std::fs::read_to_string(&sdc).expect("sdc read"),
        verilog: std::fs::read_to_string(&out).expect("verilog read"),
    }
}

fn desync_request(id: &str, verilog: &str) -> String {
    format!(
        "{{\"id\":\"{id}\",\"kind\":\"desync\",\"verilog\":{},\"options\":{{}}}}",
        json::escape(verilog)
    )
}

/// Parses a serve response, asserting success and the expected cache
/// disposition, and extracts its artifacts.
fn response_artifacts(line: &str, want_cached: bool) -> (String, Artifacts) {
    let v = json::parse(line).expect("response parses");
    let id = v.get("id").and_then(json::Value::as_str).expect("id").to_owned();
    assert_eq!(
        v.get("status").and_then(json::Value::as_str),
        Some("ok"),
        "job {id} failed: {line}"
    );
    assert_eq!(
        v.get("cached").and_then(json::Value::as_bool),
        Some(want_cached),
        "job {id}: wrong cache disposition"
    );
    let field = |k: &str| v.get(k).and_then(json::Value::as_str).expect("artifact").to_owned();
    (
        id,
        Artifacts { report: field("report"), sdc: field("sdc"), verilog: field("verilog") },
    )
}

/// Runs the corpus through one `serve --stdio` process: a cold pass with
/// `window` requests in flight, then a warm replay of the whole corpus.
/// Responses are matched by id — with several jobs in flight completion
/// order is schedule-dependent.
fn serve_artifacts(corpus: &[String], window: usize) -> (Vec<Artifacts>, Vec<Artifacts>) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_drdesync"))
        .args(["serve", "--stdio"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("server spawns");
    let mut stdin = child.stdin.take().expect("stdin");
    let mut stdout = BufReader::new(child.stdout.take().expect("stdout"));

    let mut read_line = || {
        let mut line = String::new();
        stdout.read_line(&mut line).expect("response read");
        assert!(!line.is_empty(), "server hung up early");
        line
    };

    let mut run_pass = |prefix: &str, want_cached: bool| -> Vec<Artifacts> {
        let mut got: HashMap<String, Artifacts> = HashMap::new();
        for chunk in corpus.chunks(window) {
            let base = got.len();
            for (j, v) in chunk.iter().enumerate() {
                let req = desync_request(&format!("{prefix}{}", base + j), v);
                writeln!(stdin, "{req}").expect("request written");
            }
            for _ in chunk {
                let (id, art) = response_artifacts(&read_line(), want_cached);
                assert!(got.insert(id, art).is_none(), "duplicate response id");
            }
        }
        (0..corpus.len())
            .map(|i| got.remove(&format!("{prefix}{i}")).expect("response for every job"))
            .collect()
    };

    let cold = run_pass("c", false);
    let warm = run_pass("w", true);

    writeln!(stdin, "{{\"id\":\"bye\",\"kind\":\"shutdown\"}}").expect("shutdown written");
    let bye = read_line();
    assert!(bye.contains("\"shutdown\""), "unexpected shutdown response: {bye}");
    drop(stdin);
    assert!(child.wait().expect("server exits").success());
    (cold, warm)
}

#[test]
fn serve_and_cli_artifacts_are_byte_identical_across_all_paths() {
    let corpus = corpus();
    let dir = std::env::temp_dir().join(format!("drd_serve_diff_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");

    let cli: Vec<Artifacts> =
        corpus.iter().enumerate().map(|(i, v)| cli_artifacts(&dir, i, v)).collect();
    let (cold1, warm1) = serve_artifacts(&corpus, 1);
    let (cold8, warm8) = serve_artifacts(&corpus, 8);

    for (i, want) in cli.iter().enumerate() {
        for (path, got) in [
            ("serve@1 cold", &cold1[i]),
            ("serve@1 warm", &warm1[i]),
            ("serve@8 cold", &cold8[i]),
            ("serve@8 warm", &warm8[i]),
        ] {
            assert_eq!(want, got, "netlist {i}: {path} diverged from the CLI artifacts");
        }
    }
    // The corpus must not be trivially empty-artifact: every flow ships
    // a netlist and an SDC.
    assert!(cli.iter().all(|a| !a.verilog.is_empty() && !a.sdc.is_empty()));

    let _ = std::fs::remove_dir_all(&dir);
}
