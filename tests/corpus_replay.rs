//! Deterministic hostile-input regression corpus.
//!
//! `tests/corpus/hostile/` holds small Verilog fixtures distilled from
//! the randomized 10k crash-fuzz campaign (`drd-bench --bin hostile`)
//! plus handcrafted probes of every parser resource cap. The expected
//! outcome is encoded in the file name: `reject_*` must return a
//! structured error, `accept_*` must parse. Either way the parser must
//! *return* — a panic on any fixture fails the suite immediately, which
//! pins past crash classes (truncated input, token soup, unterminated
//! comments, escaped identifiers at EOF) without re-running the fuzzer.

use std::panic::catch_unwind;
use std::path::PathBuf;

use drdesync::netlist::verilog;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus/hostile")
}

#[test]
fn hostile_corpus_replays_with_expected_outcomes() {
    let mut paths: Vec<_> = std::fs::read_dir(corpus_dir())
        .expect("corpus dir reads")
        .map(|e| e.expect("entry reads").path())
        .filter(|p| p.extension().is_some_and(|x| x == "v"))
        .collect();
    paths.sort();
    assert!(paths.len() >= 15, "corpus unexpectedly small: {}", paths.len());

    for path in paths {
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .expect("utf-8 file name")
            .to_owned();
        let src = std::fs::read_to_string(&path).expect("fixture reads");

        let outcome = catch_unwind(|| verilog::parse_design(&src))
            .unwrap_or_else(|_| panic!("parser panicked on {name}"));

        if name.starts_with("reject_") {
            assert!(outcome.is_err(), "{name} parsed but is marked reject");
        } else if name.starts_with("accept_") {
            let design = outcome.unwrap_or_else(|e| panic!("{name} failed to parse: {e}"));
            // Accepted fixtures must also round-trip to a writer fixed
            // point: the corpus doubles as a regression net for the
            // exporter's handling of the same odd constructs.
            let first = verilog::write_design(&design);
            let reparsed = verilog::parse_design(&first)
                .unwrap_or_else(|e| panic!("written {name} reparses: {e}"));
            let second = verilog::write_design(&reparsed);
            assert_eq!(first, second, "write∘parse drifts for {name}");
        } else {
            panic!("{name}: corpus files must be named accept_*.v or reject_*.v");
        }
    }
}
