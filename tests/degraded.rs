//! Graceful per-region degradation: flows with a deliberately
//! unsupported flip-flop flavour complete with the affected region left
//! synchronous, report exactly that region, and stay flow-equivalent on
//! every region whose fan-in contains no degraded region.
//!
//! Golden snapshots live under `tests/golden/`; re-record with
//! `DRD_BLESS=1 cargo test -q --test degraded`.

use std::collections::HashSet;
use std::path::PathBuf;

use drd_check::golden::{assert_golden, render_desync_report};
use drdesync::core::{DegradeReason, DesyncOptions, Desynchronizer, FlowContext, Pipeline};
use drdesync::liberty::{vlib90, Lv};
use drdesync::netlist::{Conn, Design, Module};
use drdesync::sim::{SimOptions, Simulator};

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

/// Two-region netlist: region A (`r0`, DFFX1) feeds region B (`r1`,
/// DFFRX1 with its reset tied off). Dropping DFFRX1's substitution rule
/// degrades exactly region B; region A has no degraded fan-in.
fn mixed_module() -> Module {
    drdesync::netlist::verilog::parse_module(
        "module mix (clk, out0, out1);
           input clk; output out0; output out1;
           wire d0; wire d1;
           INVX1 inv0 (.A(out0), .Z(d0));
           DFFX1 r0 (.D(d0), .CK(clk), .Q(out0));
           INVX1 inv1 (.A(out0), .Z(d1));
           DFFRX1 r1 (.D(d1), .RN(1'b1), .CK(clk), .Q(out1));
         endmodule",
    )
    .expect("fixture parses")
}

/// Region names transitively reachable from `from` along `edges`
/// (including `from` itself): behaviour downstream of a degraded region
/// crosses an unconstrained clock-domain boundary, so only regions
/// outside this set keep the flow-equivalence guarantee.
fn downstream_closure(from: &str, edges: &[(String, String)]) -> HashSet<String> {
    let mut seen: HashSet<String> = HashSet::from([from.to_owned()]);
    loop {
        let before = seen.len();
        for (a, b) in edges {
            if seen.contains(a) {
                seen.insert(b.clone());
            }
        }
        if seen.len() == before {
            return seen;
        }
    }
}

/// The golden fixture of the satellite: one unsupported flip-flop
/// flavour, exactly one `Degradation` entry in the report and the trace,
/// and the still-desynchronized region passes the flow-equivalence
/// oracle.
#[test]
fn golden_mixed_degraded_report_trace_and_flow_equivalence() {
    let lib = vlib90::high_speed();
    let module = mixed_module();
    let tool = Desynchronizer::new(&lib).expect("tool builds");
    let mut gatefile = tool.gatefile().clone();
    gatefile.rules.retain(|r| r.ff != "DFFRX1");

    let mut cx = FlowContext::new(&lib, &gatefile, module.clone(), DesyncOptions::default());
    let trace = Pipeline::standard()
        .run_until(&mut cx, None)
        .expect("degraded flow completes");
    let result = cx.into_result().expect("result materializes");
    let rep = &result.report;

    assert_eq!(rep.degradations.len(), 1, "{:?}", rep.degradations);
    let d = &rep.degradations[0];
    assert_eq!(d.cells, vec!["r1".to_owned()]);
    assert!(
        matches!(&d.reason, DegradeReason::UnsupportedFf { kind } if kind == "DFFRX1"),
        "{:?}",
        d.reason
    );

    assert_golden(
        golden_dir().join("mixed_degraded_report.txt"),
        &render_desync_report(rep),
    );
    assert_golden(
        golden_dir().join("mixed_degraded_flow_trace.json"),
        &trace.to_json_deterministic(),
    );

    // Region A is upstream of the degraded region, so its capture
    // sequence must still match the synchronous reference.
    let mut sync = Design::new();
    sync.insert(module);
    let mut reference = Simulator::new(&sync, &lib, SimOptions::default()).unwrap();
    reference.schedule_clock("clk", 2.0, 1.0, 20).unwrap();
    reference.run_for(45.0);
    assert_eq!(reference.captures().capture_count("r0"), 20);

    let mut dut = Simulator::new(&result.design, &lib, SimOptions::default()).unwrap();
    // The degraded flip-flop still needs its clock; the handshake side
    // free-runs after reset.
    dut.schedule_clock("clk", 2.0, 1.0, 20).unwrap();
    dut.poke("drd_rst", Lv::Zero).unwrap();
    dut.run_for(2.0);
    dut.poke("drd_rst", Lv::One).unwrap();
    dut.run_for(200.0);
    assert!(dut.captures().capture_count("r1") > 0, "degraded FF still clocks");

    let ref_seq = reference.captures().sequence("r0").unwrap();
    let dut_seq = dut.captures().sequence("r0_ls").expect("r0 was desynchronized");
    let n = ref_seq.len().min(dut_seq.len());
    assert!(n >= 10, "common prefix long enough: {n}");
    assert_eq!(ref_seq[..n], dut_seq[..n], "region A stays flow-equivalent");
}

/// §acceptance: a partially-degraded DLX-small flow lists each skipped
/// region in the report and passes flow-equivalence on every region with
/// no degraded fan-in.
#[test]
fn partially_degraded_dlx_small_is_flow_equivalent_elsewhere() {
    let lib = vlib90::high_speed();
    let mut module = drdesync::designs::dlx::build(&drdesync::designs::dlx::DlxParams::small())
        .expect("dlx builds");

    // Region membership of the unmodified design (grouping runs before
    // substitution, so the degraded flow sees the same regions).
    let regions = {
        let mut cleaned = module.clone();
        drdesync::core::region::clean_for_grouping(&mut cleaned, &lib);
        drdesync::core::region::group(
            &cleaned,
            &lib,
            &drdesync::core::region::GroupingOptions::recommended(),
        )
        .expect("grouping works")
    };
    // Degrade the isolated input-register region (the irq synchronizer):
    // rewrite its single flip-flop to the flavour whose rule we drop.
    let victim = regions
        .regions
        .iter()
        .find(|r| r.is_input_region)
        .expect("dlx has an input-register region");
    assert_eq!(victim.seq_cells.len(), 1, "{:?}", victim.seq_cells);
    let ff_name = victim.seq_cells[0].clone();
    let id = module.find_cell(&ff_name).expect("victim FF exists");
    let cell = module.cell(id);
    let mut pins: Vec<(String, Conn)> = (0..cell.pins().len())
        .map(|i| (cell.pin_name(i).to_owned(), cell.pins()[i].1))
        .collect();
    pins.push(("RN".to_owned(), Conn::Const1));
    module.remove_cell(id);
    let pin_refs: Vec<(&str, Conn)> = pins.iter().map(|(p, c)| (p.as_str(), *c)).collect();
    module
        .add_cell(ff_name.clone(), "DFFRX1", &pin_refs)
        .expect("replacement FF added");

    let tool = Desynchronizer::new(&lib).expect("tool builds");
    let mut gatefile = tool.gatefile().clone();
    gatefile.rules.retain(|r| r.ff != "DFFRX1");
    let mut cx = FlowContext::new(&lib, &gatefile, module.clone(), DesyncOptions::default());
    Pipeline::standard()
        .run_until(&mut cx, None)
        .expect("degraded flow completes");
    let result = cx.into_result().expect("result materializes");
    let rep = &result.report;

    // The report lists each skipped region — here exactly the victim.
    assert_eq!(rep.degradations.len(), 1, "{:?}", rep.degradations);
    assert_eq!(rep.degradations[0].region, victim.name);
    assert_eq!(rep.degradations[0].cells, vec![ff_name.clone()]);

    // Every region outside the degraded region's downstream closure
    // keeps the flow-equivalence guarantee.
    let excluded = downstream_closure(&victim.name, &rep.ddg_edges);
    assert_eq!(
        excluded.len(),
        1,
        "the input region is isolated in the DDG: {excluded:?}"
    );
    let checked_ffs: HashSet<String> = regions
        .regions
        .iter()
        .filter(|r| !excluded.contains(&r.name))
        .flat_map(|r| r.seq_cells.iter().cloned())
        .collect();

    let mut sync = Design::new();
    sync.insert(module);
    let mut reference = Simulator::new(&sync, &lib, SimOptions::default()).unwrap();
    reference.poke("irq", Lv::Zero).unwrap();
    reference.schedule_clock("clk", 3.0, 1.5, 16).unwrap();
    reference.run_for(55.0);
    assert_eq!(reference.captures().capture_count("pc_r0"), 16);

    let mut dut = Simulator::new(&result.design, &lib, SimOptions::default()).unwrap();
    dut.poke("irq", Lv::Zero).unwrap();
    dut.schedule_clock("clk", 3.0, 1.5, 16).unwrap();
    dut.poke("drd_rst", Lv::Zero).unwrap();
    dut.run_for(3.0);
    dut.poke("drd_rst", Lv::One).unwrap();
    dut.run_for(220.0);
    assert!(dut.captures().capture_count("pc_r0_ls") >= 8);
    assert!(
        dut.captures().capture_count(&ff_name) > 0,
        "degraded `{ff_name}` still clocks synchronously"
    );

    let names: Vec<String> = reference.captures().elements().map(str::to_owned).collect();
    let mut compared = 0usize;
    for name in names {
        if !checked_ffs.contains(&name) {
            continue;
        }
        let ref_seq = reference.captures().sequence(&name).unwrap();
        let dut_seq = dut
            .captures()
            .sequence(&format!("{name}_ls"))
            .unwrap_or_else(|| panic!("`{name}` was not desynchronized"));
        let n = ref_seq.len().min(dut_seq.len());
        assert_eq!(ref_seq[..n], dut_seq[..n], "FF `{name}` diverges");
        compared += 1;
    }
    assert!(compared >= 100, "checked {compared} flip-flops");
}
