#!/usr/bin/env bash
# Tier-1 verification, fully offline (see README "Building and testing").
#
#   scripts/verify.sh
#
# 1. guards the offline-only dependency policy (every [dependencies] /
#    [dev-dependencies] entry in every Cargo.toml must be a workspace
#    path dependency — nothing may come from a registry),
# 2. builds and tests the whole workspace with --offline,
# 3. lints the whole workspace with clippy, warnings denied,
# 4. regenerates the Table 5.1 area comparison as an end-to-end smoke run,
# 5. regenerates results/BENCH_flow_passes.json and checks it lists every
#    pipeline pass,
# 6. runs the mutation campaign (results/BENCH_mutation.json) and gates on
#    a 100% kill rate — every injected fault must be caught by an oracle,
# 7. runs the hostile-input crash campaign (results/BENCH_hostile.json)
#    and gates on zero escaped panics,
# 8. checks the panic-free guard rails: the lint deny attributes on the
#    core passes and the Verilog reader, and the Degradation schema in
#    the golden degraded-flow artifacts, plus the interned-name guard
#    rail (no String-keyed maps inside core/sta/sim pass modules),
# 9. runs the parallel scaling bench (results/BENCH_scale.json), checks
#    its schema, gates on >= 3x flow speedup where there are >= 4 cores
#    (reported, not gated, on narrower hosts), and re-runs the
#    determinism suite under DRD_WORKERS=3 to cross-check that worker
#    count never leaks into artifacts,
# 10. runs the handshake-level variability Monte Carlo
#    (results/BENCH_variability.json), checks its schema, gates on >= 3x
#    Monte-Carlo speedup where there are >= 4 cores, and re-runs the
#    simulator determinism suite under DRD_WORKERS=3,
# 11. regenerates the kernel micro-benchmarks (results/BENCH_kernels.json)
#    and gates the streaming Verilog front end against the frozen
#    pre-streaming baseline (>= 4x parse, >= 2x write on the full DLX),
#    then re-runs the differential parser-equivalence, hostile-corpus
#    replay and diagnostics suites that pin its behaviour,
# 12. runs the liveness-guard campaign (results/BENCH_liveness.json):
#    fuzzed imbalanced open-chain designs through the flow, gated on
#    zero undiagnosed deadlocks (every shipped design re-verified by the
#    structural liveness oracle and the handshake simulation), then
#    re-runs the liveness suites that pin the guard's behaviour,
# 13. runs the serve-mode throughput campaign (results/BENCH_serve.json):
#    a fuzzed corpus through the concurrent job server at 1/8/64
#    clients, cold and warm cache, gated on zero failed or wedged jobs,
#    on every cache-hit artifact being byte-identical to its cold-path
#    original, and on the warm-cache p50 latency sitting >= 10x below
#    the cold-path p50; then re-runs the serve-vs-CLI differential
#    oracle that pins the server's artifacts to the one-shot flow.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "== dependency guard: no registry dependencies allowed =="
bad=0
for manifest in Cargo.toml crates/*/Cargo.toml; do
  # Inside dependency sections, every entry must be `foo.workspace = true`
  # or `foo = { path = ... }` / `{ workspace = true ... }`. Any version
  # requirement string (`foo = "1"` or `version = "..."`) is a registry
  # dependency trying to sneak back in.
  if awk '
    /^\[/ { in_dep = ($0 ~ /^\[(workspace\.)?(dev-|build-)?dependencies\]/) }
    in_dep && /=/ && !/^[[:space:]]*#/ {
      line = $0
      if (line ~ /"[^"]*"/ && line !~ /path[[:space:]]*=/ && line !~ /workspace[[:space:]]*=[[:space:]]*true/) {
        print FILENAME ": " line
        found = 1
      }
    }
    END { exit found }
  ' "$manifest"; then :; else
    bad=1
  fi
done
if [ "$bad" -ne 0 ]; then
  echo "error: non-path dependency found — this workspace must build offline" >&2
  exit 1
fi
echo "ok: all dependencies are in-tree path dependencies"

echo "== cargo build --release (offline) =="
cargo build --release --offline

echo "== cargo test -q (offline, whole workspace) =="
cargo test -q --workspace --offline

echo "== cargo clippy (offline, warnings denied) =="
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "== table 5.1 end-to-end smoke (offline) =="
cargo run --release --offline -p drd-bench --bin table_5_1

echo "== per-pass flow timings (offline) =="
cargo run --release --offline -p drd-bench --bin flow_passes
trace_json=results/BENCH_flow_passes.json
if [ ! -s "$trace_json" ]; then
  echo "error: $trace_json missing or empty" >&2
  exit 1
fi
for pass in clean clock-id group ddg region-delays ffsub control-network liveness sdc; do
  if ! grep -q "\"label\": \"$pass\"" "$trace_json"; then
    echo "error: $trace_json does not list pass \`$pass\`" >&2
    exit 1
  fi
done
open_braces=$(grep -o '{' "$trace_json" | wc -l)
close_braces=$(grep -o '}' "$trace_json" | wc -l)
if [ "$open_braces" -ne "$close_braces" ]; then
  echo "error: $trace_json is not well-formed (unbalanced braces)" >&2
  exit 1
fi
echo "ok: $trace_json lists all nine passes"

echo "== mutation score gate (offline) =="
cargo run --release --offline -p drd-bench --bin mutation
mut_json=results/BENCH_mutation.json
if [ ! -s "$mut_json" ]; then
  echo "error: $mut_json missing or empty" >&2
  exit 1
fi
# Schema: every field the gate and the experiment log rely on.
for field in '"name": "mutation"' '"kinds"' '"seeds_per_kind"' '"mutants"' \
             '"killed"' '"kill_rate"' '"workers"' '"coverage_buckets"' \
             '"parallel"' '"single_thread"' '"mutants_per_s"' \
             '"speedup_estimate"' '"results"'; do
  if ! grep -q "$field" "$mut_json"; then
    echo "error: $mut_json misses field $field" >&2
    exit 1
  fi
done
open_braces=$(grep -o '{' "$mut_json" | wc -l)
close_braces=$(grep -o '}' "$mut_json" | wc -l)
if [ "$open_braces" -ne "$close_braces" ]; then
  echo "error: $mut_json is not well-formed (unbalanced braces)" >&2
  exit 1
fi
mutants=$(sed -n 's/^[[:space:]]*"mutants": \([0-9]*\),.*/\1/p' "$mut_json")
killed=$(sed -n 's/^[[:space:]]*"killed": \([0-9]*\),.*/\1/p' "$mut_json")
if [ -z "$mutants" ] || [ "$mutants" -eq 0 ] || [ "$mutants" != "$killed" ]; then
  echo "error: mutation score below 100% ($killed/$mutants killed) — oracle gap" >&2
  exit 1
fi
echo "ok: $killed/$mutants mutants killed (100%)"
# The work-stealing runner must pay off where there are cores to steal
# from; on narrow hosts (CI containers, laptops on battery) only report.
cores=$(nproc 2>/dev/null || echo 1)
speedup=$(sed -n 's/^[[:space:]]*"speedup_estimate": \([0-9.]*\),.*/\1/p' "$mut_json")
if [ "$cores" -ge 4 ]; then
  if ! awk -v s="$speedup" 'BEGIN { exit !(s >= 2.0) }'; then
    echo "error: parallel runner speedup $speedup < 2.0x on a $cores-core host" >&2
    exit 1
  fi
  echo "ok: parallel speedup ${speedup}x on $cores cores"
else
  echo "note: $cores core(s) — speedup ${speedup}x reported, not gated"
fi

echo "== hostile-input crash campaign gate (offline) =="
cargo run --release --offline -p drd-bench --bin hostile
host_json=results/BENCH_hostile.json
if [ ! -s "$host_json" ]; then
  echo "error: $host_json missing or empty" >&2
  exit 1
fi
for field in '"name": "hostile"' '"inputs"' '"rejected"' '"flow_errors"' \
             '"completed"' '"panics"' '"workers"'; do
  if ! grep -q "$field" "$host_json"; then
    echo "error: $host_json misses field $field" >&2
    exit 1
  fi
done
if ! grep -q '"panics": 0' "$host_json"; then
  echo "error: hostile campaign let a panic escape the structured-error boundary:" >&2
  grep '"panics"\|"first_panic' "$host_json" >&2
  exit 1
fi
echo "ok: $(sed -n 's/^[[:space:]]*"inputs": \([0-9]*\),.*/\1/p' "$host_json") hostile inputs, zero escaped panics"

echo "== panic-free guard rails =="
# The core passes and the Verilog reader are the panic-free boundary;
# the deny attributes must stay on their module declarations.
for decl in controller desync ffsub region; do
  if ! grep -B2 "mod $decl;" crates/core/src/lib.rs | grep -q 'deny(clippy::unwrap_used, clippy::panic)'; then
    echo "error: crates/core/src/lib.rs lost the deny attribute on \`mod $decl\`" >&2
    exit 1
  fi
done
for decl in lexer parser; do
  if ! grep -B3 "mod $decl;" crates/netlist/src/verilog/mod.rs | grep -q 'deny(clippy::unwrap_used, clippy::panic)'; then
    echo "error: crates/netlist/src/verilog/mod.rs lost the deny attribute on \`mod $decl\`" >&2
    exit 1
  fi
done
# The golden degraded-flow artifacts must keep the structured
# Degradation schema (region + reason + cells) that tools consume.
deg_trace=tests/golden/mixed_degraded_flow_trace.json
deg_report=tests/golden/mixed_degraded_report.txt
for f in "$deg_trace" "$deg_report"; do
  if [ ! -s "$f" ]; then
    echo "error: golden degraded artifact $f missing or empty" >&2
    exit 1
  fi
done
for field in '"degradations"' '"region"' '"reason"' '"cells"'; do
  if ! grep -q "$field" "$deg_trace"; then
    echo "error: $deg_trace misses Degradation field $field" >&2
    exit 1
  fi
done
if ! grep -q '^degradations (1):' "$deg_report"; then
  echo "error: $deg_report does not list exactly one degradation section" >&2
  exit 1
fi
if ! grep -q 'left synchronous' "$deg_report"; then
  echo "error: $deg_report misses the degradation rationale line" >&2
  exit 1
fi
echo "ok: deny attributes and Degradation schema in place"

echo "== interned-name guard rail =="
# Pass modules in core/sta/sim must key their maps on Symbol/NetId/CellId,
# never on owned String names — names cross the API only at the
# parse/write/report boundaries. The sole allowed exception is the
# caller-facing `GraphOptions.instance_arcs` configuration map in
# crates/sta/src/graph.rs, which is part of the public options surface
# where callers naturally speak in names.
string_maps=$(grep -rn 'HashMap<String' crates/core/src crates/sta/src crates/sim/src \
  | grep -v 'crates/sta/src/graph.rs:.*instance_arcs' || true)
if [ -n "$string_maps" ]; then
  echo "error: String-keyed map in a pass module (use Symbol/NetId/CellId):" >&2
  echo "$string_maps" >&2
  exit 1
fi
echo "ok: no String-keyed maps outside the name boundary"

echo "== parallel scaling bench gate (offline) =="
# The binary itself exits non-zero if region lookup is no longer O(1)
# or if serial and parallel artifacts diverge at any step.
cargo run --release --offline -p drd-bench --bin scale
scale_json=results/BENCH_scale.json
if [ ! -s "$scale_json" ]; then
  echo "error: $scale_json missing or empty" >&2
  exit 1
fi
for field in '"name": "scale"' '"workers"' '"speedup"' '"lookup_ratio"' \
             '"points"' '"serial_ns"' '"parallel_ns"'; do
  if ! grep -q "$field" "$scale_json"; then
    echo "error: $scale_json misses field $field" >&2
    exit 1
  fi
done
open_braces=$(grep -o '{' "$scale_json" | wc -l)
close_braces=$(grep -o '}' "$scale_json" | wc -l)
if [ "$open_braces" -ne "$close_braces" ]; then
  echo "error: $scale_json is not well-formed (unbalanced braces)" >&2
  exit 1
fi
# The region fan-out must pay off where there are cores to run on; on
# narrow hosts (CI containers, laptops on battery) only report.
cores=$(nproc 2>/dev/null || echo 1)
scale_speedup=$(sed -n 's/^[[:space:]]*"speedup": \([0-9.]*\),.*/\1/p' "$scale_json")
if [ "$cores" -ge 4 ]; then
  if ! awk -v s="$scale_speedup" 'BEGIN { exit !(s >= 3.0) }'; then
    echo "error: flow speedup $scale_speedup < 3.0x on a $cores-core host" >&2
    exit 1
  fi
  echo "ok: flow speedup ${scale_speedup}x on $cores cores"
else
  echo "note: $cores core(s) — flow speedup ${scale_speedup}x reported, not gated"
fi

echo "== determinism cross-check under DRD_WORKERS=3 (offline) =="
DRD_WORKERS=3 cargo test -q --offline --test determinism
echo "ok: artifacts byte-identical with an odd ambient worker count"

echo "== handshake variability Monte Carlo gate (offline) =="
# The binary itself exits non-zero when zero-sigma campaigns are not
# bitwise nominal, when worker splits diverge, when the sync-vs-desync
# variability crossover is lost, or (on >= 4 cores) when the parallel
# Monte Carlo speedup falls under 3x.
cargo run --release --offline -p drd-bench --bin variability
var_json=results/BENCH_variability.json
if [ ! -s "$var_json" ]; then
  echo "error: $var_json missing or empty" >&2
  exit 1
fi
for field in '"name": "variability"' '"chips"' '"workers"' '"host_cores"' \
             '"sigma_grid"' '"speedup"' '"byte_identical": true' '"designs"' \
             '"taps"' '"curve"' '"histogram"' '"desync_mean_norm"' \
             '"sync_worst_norm"' '"fraction_faster"'; do
  if ! grep -q "$field" "$var_json"; then
    echo "error: $var_json misses field $field" >&2
    exit 1
  fi
done
open_braces=$(grep -o '{' "$var_json" | wc -l)
close_braces=$(grep -o '}' "$var_json" | wc -l)
if [ "$open_braces" -ne "$close_braces" ]; then
  echo "error: $var_json is not well-formed (unbalanced braces)" >&2
  exit 1
fi
chips=$(sed -n 's/^[[:space:]]*"chips": \([0-9]*\),.*/\1/p' "$var_json")
if [ -z "$chips" ] || [ "$chips" -lt 1000 ]; then
  echo "error: variability campaign ran $chips chips (< 1000 seeds)" >&2
  exit 1
fi
cores=$(nproc 2>/dev/null || echo 1)
mc_speedup=$(sed -n 's/^[[:space:]]*"speedup": \([0-9.]*\),.*/\1/p' "$var_json")
if [ "$cores" -ge 4 ]; then
  if ! awk -v s="$mc_speedup" 'BEGIN { exit !(s >= 3.0) }'; then
    echo "error: Monte-Carlo speedup $mc_speedup < 3.0x on a $cores-core host" >&2
    exit 1
  fi
  echo "ok: Monte-Carlo speedup ${mc_speedup}x on $cores cores"
else
  echo "note: $cores core(s) — Monte-Carlo speedup ${mc_speedup}x reported, not gated"
fi
DRD_WORKERS=3 cargo test -q --offline --test determinism mc_
echo "ok: $chips-chip campaign byte-identical, simulator determinism holds at DRD_WORKERS=3"

echo "== streaming Verilog front-end gate (offline) =="
cargo bench --offline -p drd-bench
kern_json=results/BENCH_kernels.json
if [ ! -s "$kern_json" ]; then
  echo "error: $kern_json missing or empty" >&2
  exit 1
fi
# Absolute thresholds derived from the frozen pre-streaming front end's
# BENCH_kernels.json on this design (full DLX: parse mean 35113000 ns,
# write mean 11253601 ns): >= 4x parse and >= 2x write. Gated on min_ns —
# the minimum over 10 iterations is the noise-robust statistic (means
# swing with ambient host load; the min does not), and the mean-derived
# thresholds make the bar conservative.
min_of() {
  sed -n 's/.*"label": "'"$1"'", "iters": [0-9]*, "min_ns": \([0-9]*\),.*/\1/p' "$kern_json"
}
parse_min=$(min_of verilog_parse_dlx_full)
write_min=$(min_of verilog_write_dlx_full)
parse_legacy=$(min_of verilog_parse_dlx_full_legacy)
write_legacy=$(min_of verilog_write_dlx_full_legacy)
for v in "$parse_min" "$write_min" "$parse_legacy" "$write_legacy"; do
  if [ -z "$v" ]; then
    echo "error: $kern_json misses a verilog_{parse,write}_dlx_full[_legacy] entry" >&2
    exit 1
  fi
done
if [ "$parse_min" -gt 8778250 ]; then
  echo "error: streaming parse min ${parse_min} ns > 8778250 ns (4x gate vs frozen baseline)" >&2
  exit 1
fi
if [ "$write_min" -gt 5626800 ]; then
  echo "error: streaming write min ${write_min} ns > 5626800 ns (2x gate vs frozen baseline)" >&2
  exit 1
fi
echo "ok: parse ${parse_min} ns (<= 8778250), write ${write_min} ns (<= 5626800);" \
     "same-run legacy minima ${parse_legacy} / ${write_legacy} ns"
# The behavioural pins for the rewrite: differential equivalence against
# the frozen parser, the distilled hostile-regression corpus, and the
# exact error-span diagnostics.
cargo test -q --offline --test differential_frontend --test corpus_replay
cargo test -q --offline -p drd-netlist --test diagnostics
echo "ok: differential equivalence, corpus replay and diagnostics suites pass"

echo "== liveness-guard campaign gate (offline) =="
# The binary itself exits non-zero when any shipped design fails the
# structural liveness oracle or deadlocks in the handshake simulation —
# an undiagnosed wedge, the exact failure the guard exists to prevent.
cargo run --release --offline -p drd-bench --bin liveness
live_json=results/BENCH_liveness.json
if [ ! -s "$live_json" ]; then
  echo "error: $live_json missing or empty" >&2
  exit 1
fi
for field in '"name": "liveness"' '"designs"' '"completed"' \
             '"hazardous_designs"' '"repaired_deepen"' '"repaired_latch"' \
             '"degraded"' '"diagnosed_errors"' '"undiagnosed_deadlocks"' \
             '"guard_wall_ns"' '"flow_wall_ns"' '"guard_fraction"'; do
  if ! grep -q "$field" "$live_json"; then
    echo "error: $live_json misses field $field" >&2
    exit 1
  fi
done
if ! grep -q '"undiagnosed_deadlocks": 0' "$live_json"; then
  echo "error: a design shipped wedged without a diagnosis:" >&2
  grep '"undiagnosed_deadlocks"' "$live_json" >&2
  exit 1
fi
hazardous=$(sed -n 's/^[[:space:]]*"hazardous_designs": \([0-9]*\),.*/\1/p' "$live_json")
if [ -z "$hazardous" ] || [ "$hazardous" -lt 1 ]; then
  echo "error: campaign found $hazardous hazardous designs — generator lost the hazard" >&2
  exit 1
fi
# The behavioural pins for the guard: the repaired classic stall, the
# fuzzed repaired-or-diagnosed property, and the structural oracle's
# own unit suite.
cargo test -q --offline -p drd-check --test handshake_stall --test liveness_props
cargo test -q --offline -p drd-check --lib liveness
echo "ok: $hazardous hazardous design(s) repaired, zero undiagnosed deadlocks"

echo "== serve-mode throughput campaign gate (offline) =="
# The binary itself exits non-zero when any job fails or wedges, or when
# a warm-cache artifact diverges byte-wise from its cold-path original.
cargo run --release --offline -p drd-bench --bin serve
serve_json=results/BENCH_serve.json
if [ ! -s "$serve_json" ]; then
  echo "error: $serve_json missing or empty" >&2
  exit 1
fi
for field in '"name": "serve"' '"jobs"' '"tokens"' '"failed_jobs"' \
             '"identity_mismatches"' '"runs"' '"clients"' '"cache"' \
             '"jobs_per_sec"' '"p50_us"' '"p99_us"'; do
  if ! grep -q "$field" "$serve_json"; then
    echo "error: $serve_json misses field $field" >&2
    exit 1
  fi
done
open_braces=$(grep -o '{' "$serve_json" | wc -l)
close_braces=$(grep -o '}' "$serve_json" | wc -l)
if [ "$open_braces" -ne "$close_braces" ]; then
  echo "error: $serve_json is not well-formed (unbalanced braces)" >&2
  exit 1
fi
if ! grep -q '"failed_jobs": 0' "$serve_json"; then
  echo "error: serve campaign had failed or wedged jobs:" >&2
  grep '"failed_jobs"' "$serve_json" >&2
  exit 1
fi
if ! grep -q '"identity_mismatches": 0' "$serve_json"; then
  echo "error: a cache-hit response diverged from its cold-path artifacts:" >&2
  grep '"identity_mismatches"' "$serve_json" >&2
  exit 1
fi
for c in 1 8 64; do
  if ! grep -q "\"clients\": $c, \"cache\": \"cold\"" "$serve_json" ||
     ! grep -q "\"clients\": $c, \"cache\": \"warm\"" "$serve_json"; then
    echo "error: $serve_json misses the $c-client cold/warm rows" >&2
    exit 1
  fi
done
# The flow cache must actually pay: a warm hit replays stored bytes, so
# its p50 latency has to sit at least 10x below the cold-path p50. Gated
# on the 1-client rows — the least scheduler-noisy configuration.
cold_p50=$(sed -n 's/.*"clients": 1, "cache": "cold".*"p50_us": \([0-9.]*\),.*/\1/p' "$serve_json")
warm_p50=$(sed -n 's/.*"clients": 1, "cache": "warm".*"p50_us": \([0-9.]*\),.*/\1/p' "$serve_json")
if [ -z "$cold_p50" ] || [ -z "$warm_p50" ]; then
  echo "error: $serve_json misses the 1-client p50 latencies" >&2
  exit 1
fi
if ! awk -v c="$cold_p50" -v w="$warm_p50" 'BEGIN { exit !(w * 10.0 <= c) }'; then
  echo "error: warm-cache p50 ${warm_p50} us not 10x below cold p50 ${cold_p50} us" >&2
  exit 1
fi
echo "ok: warm p50 ${warm_p50} us vs cold p50 ${cold_p50} us (>= 10x)"
# The behavioural pin for the server: every artifact byte-identical to
# the one-shot CLI across 1/8 in-flight jobs, cold and warm cache, plus
# the serve protocol suites.
cargo test -q --offline --test serve_differential --test cli
cargo test -q --offline -p drd-serve
echo "ok: serve-vs-CLI differential and serve protocol suites pass"

echo "verify: OK"
