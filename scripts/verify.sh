#!/usr/bin/env bash
# Tier-1 verification, fully offline (see README "Building and testing").
#
#   scripts/verify.sh
#
# 1. guards the offline-only dependency policy (every [dependencies] /
#    [dev-dependencies] entry in every Cargo.toml must be a workspace
#    path dependency — nothing may come from a registry),
# 2. builds and tests the whole workspace with --offline,
# 3. lints the whole workspace with clippy, warnings denied,
# 4. regenerates the Table 5.1 area comparison as an end-to-end smoke run,
# 5. regenerates results/BENCH_flow_passes.json and checks it lists every
#    pipeline pass.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "== dependency guard: no registry dependencies allowed =="
bad=0
for manifest in Cargo.toml crates/*/Cargo.toml; do
  # Inside dependency sections, every entry must be `foo.workspace = true`
  # or `foo = { path = ... }` / `{ workspace = true ... }`. Any version
  # requirement string (`foo = "1"` or `version = "..."`) is a registry
  # dependency trying to sneak back in.
  if awk '
    /^\[/ { in_dep = ($0 ~ /^\[(workspace\.)?(dev-|build-)?dependencies\]/) }
    in_dep && /=/ && !/^[[:space:]]*#/ {
      line = $0
      if (line ~ /"[^"]*"/ && line !~ /path[[:space:]]*=/ && line !~ /workspace[[:space:]]*=[[:space:]]*true/) {
        print FILENAME ": " line
        found = 1
      }
    }
    END { exit found }
  ' "$manifest"; then :; else
    bad=1
  fi
done
if [ "$bad" -ne 0 ]; then
  echo "error: non-path dependency found — this workspace must build offline" >&2
  exit 1
fi
echo "ok: all dependencies are in-tree path dependencies"

echo "== cargo build --release (offline) =="
cargo build --release --offline

echo "== cargo test -q (offline, whole workspace) =="
cargo test -q --workspace --offline

echo "== cargo clippy (offline, warnings denied) =="
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "== table 5.1 end-to-end smoke (offline) =="
cargo run --release --offline -p drd-bench --bin table_5_1

echo "== per-pass flow timings (offline) =="
cargo run --release --offline -p drd-bench --bin flow_passes
trace_json=results/BENCH_flow_passes.json
if [ ! -s "$trace_json" ]; then
  echo "error: $trace_json missing or empty" >&2
  exit 1
fi
for pass in clean clock-id group ddg region-delays ffsub control-network sdc; do
  if ! grep -q "\"label\": \"$pass\"" "$trace_json"; then
    echo "error: $trace_json does not list pass \`$pass\`" >&2
    exit 1
  fi
done
open_braces=$(grep -o '{' "$trace_json" | wc -l)
close_braces=$(grep -o '}' "$trace_json" | wc -l)
if [ "$open_braces" -ne "$close_braces" ]; then
  echo "error: $trace_json is not well-formed (unbalanced braces)" >&2
  exit 1
fi
echo "ok: $trace_json lists all eight passes"

echo "verify: OK"
