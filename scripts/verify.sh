#!/usr/bin/env bash
# Tier-1 verification, fully offline (see README "Building and testing").
#
#   scripts/verify.sh
#
# 1. guards the offline-only dependency policy (every [dependencies] /
#    [dev-dependencies] entry in every Cargo.toml must be a workspace
#    path dependency — nothing may come from a registry),
# 2. builds and tests the whole workspace with --offline,
# 3. regenerates the Table 5.1 area comparison as an end-to-end smoke run.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "== dependency guard: no registry dependencies allowed =="
bad=0
for manifest in Cargo.toml crates/*/Cargo.toml; do
  # Inside dependency sections, every entry must be `foo.workspace = true`
  # or `foo = { path = ... }` / `{ workspace = true ... }`. Any version
  # requirement string (`foo = "1"` or `version = "..."`) is a registry
  # dependency trying to sneak back in.
  if awk '
    /^\[/ { in_dep = ($0 ~ /^\[(workspace\.)?(dev-|build-)?dependencies\]/) }
    in_dep && /=/ && !/^[[:space:]]*#/ {
      line = $0
      if (line ~ /"[^"]*"/ && line !~ /path[[:space:]]*=/ && line !~ /workspace[[:space:]]*=[[:space:]]*true/) {
        print FILENAME ": " line
        found = 1
      }
    }
    END { exit found }
  ' "$manifest"; then :; else
    bad=1
  fi
done
if [ "$bad" -ne 0 ]; then
  echo "error: non-path dependency found — this workspace must build offline" >&2
  exit 1
fi
echo "ok: all dependencies are in-tree path dependencies"

echo "== cargo build --release (offline) =="
cargo build --release --offline

echo "== cargo test -q (offline, whole workspace) =="
cargo test -q --workspace --offline

echo "== table 5.1 end-to-end smoke (offline) =="
cargo run --release --offline -p drd-bench --bin table_5_1

echo "verify: OK"
