//! Design-for-testability: scan insertion (§4.3).
//!
//! "After synthesis, there is the DFT phase where all the sequential
//! elements are substituted by scan ones connected in a scan chain, for
//! making the circuit observable." The scan variant of each flip-flop is
//! found by *feature matching* against the library's gatefile: a scan
//! cell is one whose recognized features equal the original cell's plus a
//! scan mux.

use drd_liberty::gatefile::Gatefile;
use drd_liberty::Library;
use drd_netlist::{Conn, KindRef, Module, PortDir};

use drd_core::DesyncError;

/// Report from scan insertion.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScanReport {
    /// Flip-flops converted to scan flip-flops.
    pub converted: usize,
    /// Length of the stitched chain.
    pub chain_length: usize,
    /// The chain order (instance names).
    pub chain: Vec<String>,
}

/// Finds the scan variant of `base` in the library via gatefile features.
fn scan_variant<'l>(lib: &'l Library, gatefile: &Gatefile, base: &str) -> Option<&'l str> {
    let base_rule = gatefile.rule(base)?;
    if base_rule.features.scan.is_some() {
        return Some(lib.cell(base)?.name.as_str()); // already scan
    }
    for rule in &gatefile.rules {
        let f = &rule.features;
        if f.scan.is_some()
            && f.sync_reset == base_rule.features.sync_reset
            && f.sync_set == base_rule.features.sync_set
            && f.async_clear == base_rule.features.async_clear
            && f.async_preset == base_rule.features.async_preset
            && f.clock_enable == base_rule.features.clock_enable
        {
            return Some(lib.cell(&rule.ff)?.name.as_str());
        }
    }
    None
}

/// Converts every flip-flop to its scan variant and stitches the chain.
///
/// Adds ports `scan_in`, `scan_en` and `scan_out`. Flip-flops with no
/// scan variant in the library are left unconverted (and excluded from
/// the chain), mirroring practice for uncontrollable cells.
///
/// # Errors
/// Propagates netlist errors.
pub fn insert_scan(module: &mut Module, lib: &Library) -> Result<ScanReport, DesyncError> {
    let gatefile = Gatefile::from_library(lib)?;
    let mut report = ScanReport::default();

    let scan_in = {
        let p = module.add_port("scan_in", PortDir::Input)?;
        module.port(p).net
    };
    let scan_en = {
        let p = module.add_port("scan_en", PortDir::Input)?;
        module.port(p).net
    };
    let scan_out_port = {
        let p = module.add_port("scan_out", PortDir::Output)?;
        module.port(p).net
    };

    let targets: Vec<(String, String, String)> = module
        .cells()
        .filter_map(|(_, cell)| {
            let KindRef::Lib(kind) = cell.kind_ref() else { return None };
            let lc = lib.cell(kind)?;
            if lc.class() != drd_liberty::CellClass::FlipFlop {
                return None;
            }
            let variant = scan_variant(lib, &gatefile, kind)?;
            if variant == kind {
                return None;
            }
            Some((cell.name.to_owned(), kind.to_owned(), variant.to_owned()))
        })
        .collect();

    let mut prev_q = scan_in;
    for (name, _old_kind, new_kind) in &targets {
        let id = module.find_cell(name).expect("listed above");
        let old = module.cell(id);
        let scan_rule = gatefile.rule(new_kind).expect("scan variant has a rule");
        let scan = scan_rule.features.scan.as_ref().expect("scan pins");
        // Rebuild the cell with the scan kind and the extra pins.
        let mut pins: Vec<(String, Conn)> = (0..old.pins().len())
            .map(|i| (old.pin_name(i).to_owned(), old.pins()[i].1))
            .collect();
        let q_pin = scan_rule.q_pin.clone();
        let q_conn = old.pin(&q_pin);
        module.remove_cell(id);
        pins.push((scan.scan_in.clone(), Conn::Net(prev_q)));
        pins.push((scan.scan_enable.clone(), Conn::Net(scan_en)));
        // The chain reads this cell's Q; create one if unconnected.
        let q_net = match q_conn {
            Some(Conn::Net(n)) => n,
            _ => {
                let n = module.add_net_auto(&format!("{name}__scanq"));
                pins.push((q_pin.clone(), Conn::Net(n)));
                n
            }
        };
        let pin_refs: Vec<(&str, Conn)> = pins.iter().map(|(p, c)| (p.as_str(), *c)).collect();
        let kind = module.lib_kind(new_kind);
        module.add_cell_of_kind(name.clone(), kind, &pin_refs)?;
        prev_q = q_net;
        report.converted += 1;
        report.chain.push(name.clone());
    }
    report.chain_length = report.converted;
    // Close the chain on the scan-out port.
    let cname = module.unique_cell_name("u_scan_out");
    module.add_cell(
        cname,
        "BUFX1",
        &[("A", Conn::Net(prev_q)), ("Z", Conn::Net(scan_out_port))],
    )?;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use drd_liberty::{vlib90, Lv};
    use drd_netlist::Design;
    use drd_sim::{SimOptions, Simulator};

    fn shift_register(n: usize) -> Module {
        let mut m = Module::new("sr");
        m.add_port("clk", PortDir::Input).unwrap();
        m.add_port("d", PortDir::Input).unwrap();
        let clk = m.find_net("clk").unwrap();
        let mut prev = m.find_net("d").unwrap();
        for i in 0..n {
            let q = m.add_net(format!("q{i}")).unwrap();
            m.add_cell(
                format!("r{i}"),
                "DFFX1",
                &[("D", Conn::Net(prev)), ("CK", Conn::Net(clk)), ("Q", Conn::Net(q))],
            )
            .unwrap();
            prev = q;
        }
        m
    }

    #[test]
    fn converts_and_stitches() {
        let lib = vlib90::high_speed();
        let mut m = shift_register(4);
        let report = insert_scan(&mut m, &lib).unwrap();
        assert_eq!(report.converted, 4);
        assert_eq!(report.chain_length, 4);
        // All flip-flops are now scan cells.
        for (_, cell) in m.cells() {
            if cell.name.starts_with('r') {
                assert_eq!(cell.kind_name(), "SDFFX1", "{}", cell.name);
            }
        }
        assert!(m.find_port("scan_in").is_some());
        assert!(m.find_port("scan_out").is_some());
    }

    /// The fabricated-chip test pattern: shift a pattern in through the
    /// chain and observe it at scan_out `n` cycles later.
    #[test]
    fn scan_chain_shifts_patterns() {
        let lib = vlib90::high_speed();
        let mut m = shift_register(4);
        insert_scan(&mut m, &lib).unwrap();
        let mut design = Design::new();
        design.insert(m);
        let mut sim = Simulator::new(&design, &lib, SimOptions::default()).unwrap();
        sim.poke("clk", Lv::Zero).unwrap();
        sim.poke("d", Lv::Zero).unwrap();
        sim.poke("scan_en", Lv::One).unwrap();
        let pattern = [Lv::One, Lv::Zero, Lv::One, Lv::One];
        let mut observed = Vec::new();
        for cycle in 0..8 {
            let bit = pattern.get(cycle).copied().unwrap_or(Lv::Zero);
            sim.poke("scan_in", bit).unwrap();
            sim.run_for(2.0);
            sim.poke("clk", Lv::One).unwrap();
            sim.run_for(2.0);
            sim.poke("clk", Lv::Zero).unwrap();
            sim.run_for(2.0);
            observed.push(sim.peek("scan_out").unwrap());
        }
        // The pattern emerges after 4 shift cycles.
        assert_eq!(&observed[3..7], &pattern[..], "observed: {observed:?}");
    }

    #[test]
    fn scan_variant_matching() {
        let lib = vlib90::high_speed();
        let gf = Gatefile::from_library(&lib).unwrap();
        assert_eq!(scan_variant(&lib, &gf, "DFFX1"), Some("SDFFX1"));
        assert_eq!(scan_variant(&lib, &gf, "DFFRX1"), Some("SDFFRX1"));
        assert_eq!(scan_variant(&lib, &gf, "SDFFX1"), Some("SDFFX1"));
        // No scan variant exists for the async-set flavour in vlib90.
        assert_eq!(scan_variant(&lib, &gf, "DFFASX1"), None);
    }
}
