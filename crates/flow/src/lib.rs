//! # drd-flow — the fully-automated desynchronization EDA methodology
//!
//! Chapter 4's flow, end to end: synthesis-side netlist preparation, DFT
//! scan insertion, desynchronization (via [`drd_core`]), an analytical
//! backend (placement / CTS / routing bookkeeping standing in for
//! Synopsys Astro — see DESIGN.md's substitution table), and the
//! experiment drivers that regenerate every table and figure of Chapter 5:
//!
//! * [`dft`] — scan-flip-flop substitution and chain stitching (§4.3),
//! * [`backend`] — fanout buffering, low-skew enable/clock trees, core
//!   size and utilization bookkeeping (§4.7),
//! * [`experiment`] — the synchronous-vs-desynchronized comparison
//!   procedure of Fig. 5.1: area (Tables 5.1/5.2), the delay-selection
//!   timing sweep (Fig. 5.3), Monte-Carlo variability (Fig. 5.4) and
//!   power (Fig. 5.5),
//! * [`report`] — the table renderers used by the bench binaries.

pub mod backend;
pub mod dft;
pub mod experiment;
pub mod report;

pub use backend::{place_and_route, BackendOptions, LayoutResult};
pub use dft::{insert_scan, ScanReport};
pub use experiment::{
    area_comparison, handshake_spec, power_sweep, timing_sweep, variability_study,
    AreaComparison, CaseStudy, PowerSweep, TimingSweep, VariabilityStudy,
};
