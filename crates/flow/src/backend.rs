//! Analytical backend: placement, buffering, CTS and core bookkeeping
//! (§4.7), standing in for Synopsys Astro.
//!
//! The paper's post-layout rows (Tables 5.1/5.2) are area bookkeeping:
//! cell/net counts grow through buffering and clock/enable-tree
//! synthesis, the standard-cell area grows accordingly, and
//! `core size = standard-cell area / utilization`. This module reproduces
//! that bookkeeping:
//!
//! * high-fanout nets get buffer trees (`max_fanout` loads per driver),
//! * every clock-like net — the synchronous clock, or each controller
//!   latch-enable in the desynchronized circuit — gets a low-skew buffer
//!   tree (CTS),
//! * utilization is a floorplan input; the paper's runs used ≈95 %
//!   (synchronous DLX), ≈91 % (desynchronized DLX, whose many independent
//!   enable trees demand routing margin), and a pre-existing fixed
//!   floorplan for the synchronous ARM. A `fixed_core_size` mirrors the
//!   latter.

use drd_liberty::Library;
use drd_netlist::{Conn, Design, Endpoint, Module};

use drd_core::DesyncError;

/// Backend options.
#[derive(Debug, Clone)]
pub struct BackendOptions {
    /// Floorplan utilization target (ignored when `fixed_core_size` set).
    pub utilization: f64,
    /// Maximum loads per driver before a buffer tree is inserted.
    pub max_fanout: usize,
    /// Clock-like nets that receive low-skew trees, by name. When empty,
    /// the clock is auto-detected; desynchronized designs should list
    /// their `drd_*_gm`/`drd_*_gs` nets (done automatically for nets with
    /// that prefix).
    pub clock_like: Vec<String>,
    /// Use a pre-existing floorplan of this size (the paper's ARM case).
    pub fixed_core_size: Option<f64>,
}

impl Default for BackendOptions {
    fn default() -> Self {
        BackendOptions {
            utilization: 0.95,
            max_fanout: 16,
            clock_like: Vec::new(),
            fixed_core_size: None,
        }
    }
}

/// The post-layout row of Tables 5.1/5.2.
#[derive(Debug, Clone, PartialEq)]
pub struct LayoutResult {
    /// Net count after buffering/CTS.
    pub nets: usize,
    /// Cell count after buffering/CTS.
    pub cells: usize,
    /// Standard-cell area.
    pub std_cell_area: f64,
    /// Core size (`area / utilization`).
    pub core_size: f64,
    /// Resulting utilization (%).
    pub utilization: f64,
    /// Buffers inserted for fanout control.
    pub fanout_buffers: usize,
    /// Buffers inserted by clock/enable-tree synthesis.
    pub tree_buffers: usize,
}

/// Runs the analytical backend over `design`'s top (flattened first).
///
/// # Errors
/// Propagates netlist errors.
pub fn place_and_route(
    design: &Design,
    lib: &Library,
    opts: &BackendOptions,
) -> Result<LayoutResult, DesyncError> {
    let mut flat = drd_netlist::flatten(design, design.top())?;

    // Collect clock-like nets: explicit + auto-detected.
    let mut clock_like: Vec<String> = opts.clock_like.clone();
    for (_, net) in flat.nets() {
        let n = net.name;
        if (n.starts_with("drd_") && (n.ends_with("_gm") || n.ends_with("_gs")))
            && !clock_like.iter().any(|c| c == n)
        {
            clock_like.push(n.to_owned());
        }
    }
    if clock_like.is_empty() {
        if let Some(clk) = drd_core::region::find_clock_net(&flat, lib) {
            clock_like.push(flat.net(clk).name.to_owned());
        }
    }

    // CTS: buffer trees on clock-like nets.
    let mut tree_buffers = 0usize;
    for name in &clock_like {
        if let Some(net) = flat.find_net(name) {
            tree_buffers += buffer_tree(&mut flat, lib, net, opts.max_fanout, "cts")?;
        }
    }
    // Fanout buffering on ordinary nets.
    let mut fanout_buffers = 0usize;
    loop {
        let conn = flat.connectivity(lib)?;
        let mut worst: Option<(drd_netlist::NetId, usize)> = None;
        for (nid, net) in flat.nets() {
            if clock_like.iter().any(|c| c == net.name) {
                continue;
            }
            let loads = conn.loads(nid).len();
            if loads > opts.max_fanout && worst.map(|(_, l)| loads > l).unwrap_or(true) {
                worst = Some((nid, loads));
            }
        }
        let Some((nid, _)) = worst else { break };
        fanout_buffers += buffer_tree(&mut flat, lib, nid, opts.max_fanout, "fob")?;
    }

    let counts = drd_netlist::stats::counts(&flat);
    let area = drd_netlist::stats::area_breakdown(
        &flat,
        |k| lib.area_of(k),
        |k| lib.is_sequential(k),
    );
    let (core_size, utilization) = match opts.fixed_core_size {
        Some(core) => (core, area.cell_area / core),
        None => (area.cell_area / opts.utilization, opts.utilization),
    };
    Ok(LayoutResult {
        nets: counts.nets,
        cells: counts.cells,
        std_cell_area: area.cell_area,
        core_size,
        utilization: utilization * 100.0,
        fanout_buffers,
        tree_buffers,
    })
}

/// Splits `net`'s loads into groups of ≤ `max_fanout` behind buffers;
/// recurses until the driver itself has ≤ `max_fanout` loads. Returns the
/// number of buffers inserted.
fn buffer_tree(
    module: &mut Module,
    lib: &Library,
    net: drd_netlist::NetId,
    max_fanout: usize,
    tag: &str,
) -> Result<usize, DesyncError> {
    let mut inserted = 0usize;
    loop {
        let conn = module.connectivity(lib)?;
        let loads: Vec<Endpoint> = conn.loads(net).to_vec();
        if loads.len() <= max_fanout {
            return Ok(inserted);
        }
        // Group loads and insert one buffer per group.
        for (g, chunk) in loads.chunks(max_fanout).enumerate() {
            let buf_out = module.add_net_auto(&format!(
                "{}_{tag}{g}",
                module.net(net).name.replace(['[', ']'], "_")
            ));
            let cell = module.unique_cell_name(&format!("u_{tag}"));
            module.add_cell(
                cell,
                "BUFX2",
                &[("A", Conn::Net(net)), ("Z", Conn::Net(buf_out))],
            )?;
            inserted += 1;
            for load in chunk {
                if let Endpoint::Pin(p) = load {
                    let pin = module.cell_pins(p.cell)[p.pin as usize].0;
                    module.set_pin_sym(p.cell, pin, Conn::Net(buf_out));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drd_liberty::vlib90;
    use drd_netlist::PortDir;

    fn star(fanout: usize) -> Design {
        let mut m = Module::new("star");
        m.add_port("clk", PortDir::Input).unwrap();
        m.add_port("a", PortDir::Input).unwrap();
        let clk = m.find_net("clk").unwrap();
        let a = m.find_net("a").unwrap();
        for i in 0..fanout {
            let q = m.add_net(format!("q{i}")).unwrap();
            m.add_cell(
                format!("r{i}"),
                "DFFX1",
                &[("D", Conn::Net(a)), ("CK", Conn::Net(clk)), ("Q", Conn::Net(q))],
            )
            .unwrap();
        }
        let mut d = Design::new();
        d.insert(m);
        d
    }

    #[test]
    fn clock_tree_and_fanout_buffering() {
        let lib = vlib90::high_speed();
        let d = star(40);
        let opts = BackendOptions {
            max_fanout: 8,
            ..BackendOptions::default()
        };
        let result = place_and_route(&d, &lib, &opts).unwrap();
        // 40 clock loads → tree buffers; 40 data loads → fanout buffers.
        assert!(result.tree_buffers >= 5, "{result:?}");
        assert!(result.fanout_buffers >= 5, "{result:?}");
        assert_eq!(result.cells, 40 + result.tree_buffers + result.fanout_buffers);
        assert!(result.core_size > result.std_cell_area);
        assert!((result.utilization - 95.0).abs() < 1e-9);
    }

    #[test]
    fn fixed_core_size_derives_utilization() {
        let lib = vlib90::high_speed();
        let d = star(4);
        let opts = BackendOptions {
            fixed_core_size: Some(2000.0),
            ..BackendOptions::default()
        };
        let result = place_and_route(&d, &lib, &opts).unwrap();
        assert_eq!(result.core_size, 2000.0);
        assert!(result.utilization < 95.0);
    }

    #[test]
    fn buffering_respects_max_fanout() {
        let lib = vlib90::high_speed();
        let d = star(64);
        let opts = BackendOptions {
            max_fanout: 8,
            ..BackendOptions::default()
        };
        let _ = place_and_route(&d, &lib, &opts).unwrap();
        // Rebuild to verify invariant on the flattened result: rerun and
        // inspect manually.
        let mut flat = drd_netlist::flatten(&d, d.top()).unwrap();
        for name in ["clk", "a"] {
            let net = flat.find_net(name).unwrap();
            super::buffer_tree(&mut flat, &lib, net, 8, "t").unwrap();
        }
        let conn = flat.connectivity(&lib).unwrap();
        for (nid, _) in flat.nets() {
            assert!(conn.loads(nid).len() <= 8, "net over fanout");
        }
    }
}
