//! Table and figure renderers for the Chapter-5 reproductions.

use std::fmt::Write as _;

use drd_core::FlowTrace;

use crate::experiment::{AreaComparison, TimingSweep, VariabilityStudy};

/// Renders the per-pass instrumentation of one pipeline run.
pub fn render_pass_timings(trace: &FlowTrace) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<18} {:>11} {:>8} {:>8}  detail",
        "pass", "time (µs)", "Δcells", "Δnets"
    );
    for p in &trace.passes {
        let _ = writeln!(
            out,
            "{:<18} {:>11.1} {:>+8} {:>+8}  {}",
            p.name,
            p.wall_ns as f64 / 1e3,
            p.cell_delta(),
            p.net_delta(),
            p.detail
        );
    }
    let _ = writeln!(
        out,
        "{:<18} {:>11.1}",
        "total",
        trace.total_wall_ns as f64 / 1e3
    );
    out
}

/// Renders Table 5.1 / 5.2 (area results, synchronous vs desynchronized).
pub fn render_area_table(cmp: &AreaComparison) -> String {
    let mut out = String::new();
    let pct = AreaComparison::pct;
    let _ = writeln!(
        out,
        "Area results for synchronous and desynchronized {} (Table 5.1/5.2 shape)",
        cmp.name
    );
    let _ = writeln!(
        out,
        "{:<34} {:>14} {:>14} {:>10}",
        "phase / property", "sync", "desync", "% overhead"
    );
    let s = &cmp.sync_synth;
    let d = &cmp.desync_synth;
    let rows = [
        ("post-synth  # nets", s.nets as f64, d.nets as f64),
        ("post-synth  # cells", s.cells as f64, d.cells as f64),
        ("post-synth  cell area", s.cell_area, d.cell_area),
        ("post-synth  combinational", s.combinational, d.combinational),
        ("post-synth  sequential", s.sequential, d.sequential),
    ];
    for (name, a, b) in rows {
        let _ = writeln!(out, "{name:<34} {a:>14.2} {b:>14.2} {:>9.2}%", pct(a, b));
    }
    let sl = &cmp.sync_layout;
    let dl = &cmp.desync_layout;
    let rows = [
        ("post-layout # nets", sl.nets as f64, dl.nets as f64),
        ("post-layout # cells", sl.cells as f64, dl.cells as f64),
        ("post-layout std cell area", sl.std_cell_area, dl.std_cell_area),
        ("post-layout core size", sl.core_size, dl.core_size),
    ];
    for (name, a, b) in rows {
        let _ = writeln!(out, "{name:<34} {a:>14.2} {b:>14.2} {:>9.2}%", pct(a, b));
    }
    let _ = writeln!(
        out,
        "{:<34} {:>13.2}% {:>13.2}% {:>9.2}%",
        "post-layout core utilization",
        sl.utilization,
        dl.utilization,
        pct(sl.utilization, dl.utilization),
    );
    out
}

/// Renders Fig. 5.3 (operational period vs delay selection).
pub fn render_timing_figure(sweep: &TimingSweep) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Operational period vs delay selection for {} (Fig. 5.3 shape)",
        sweep.name
    );
    let _ = writeln!(
        out,
        "{:>9} {:>16} {:>16}   (× = too-short delay elements)",
        "selection", "best case (ns)", "worst case (ns)"
    );
    for (b, w) in sweep.best.iter().zip(sweep.worst.iter()) {
        let mark = |ok: bool| if ok { " " } else { "×" };
        let _ = writeln!(
            out,
            "{:>9} {:>15.3}{} {:>15.3}{}",
            b.selection,
            b.period_ns,
            mark(b.flow_equivalent),
            w.period_ns,
            mark(w.flow_equivalent),
        );
    }
    let _ = writeln!(
        out,
        "synchronous reference: best {:.3} ns, worst {:.3} ns",
        sweep.sync_best_period, sweep.sync_worst_period
    );
    out
}

/// Renders Fig. 5.5 (total power vs delay selection).
pub fn render_power_figure(sweep: &TimingSweep) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Total power vs delay selection for {} (Fig. 5.5 shape)",
        sweep.name
    );
    let _ = writeln!(
        out,
        "{:>9} {:>16} {:>16}",
        "selection", "best case (mW)", "worst case (mW)"
    );
    for (b, w) in sweep.best.iter().zip(sweep.worst.iter()) {
        let _ = writeln!(
            out,
            "{:>9} {:>16.3} {:>16.3}",
            b.selection, b.power_total, w.power_total
        );
    }
    let _ = writeln!(
        out,
        "synchronous reference: best {:.3} mW, worst {:.3} mW",
        sweep.sync_best_power, sweep.sync_worst_power
    );
    out
}

/// Renders Fig. 5.4 (real operation delay distribution) as a histogram.
pub fn render_variability_figure(study: &VariabilityStudy) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Real operation delay for {} over {} chips (Fig. 5.4 shape)",
        study.name,
        study.desync_periods.len()
    );
    let min = study
        .desync_periods
        .iter()
        .copied()
        .fold(f64::INFINITY, f64::min);
    let max = study
        .desync_periods
        .iter()
        .copied()
        .fold(0.0f64, f64::max);
    const BINS: usize = 24;
    let mut bins = [0usize; BINS];
    for &p in &study.desync_periods {
        let i = (((p - min) / (max - min + 1e-12)) * BINS as f64) as usize;
        bins[i.min(BINS - 1)] += 1;
    }
    let peak = bins.iter().copied().max().unwrap_or(1).max(1);
    for (i, &count) in bins.iter().enumerate() {
        let lo = min + (max - min) * i as f64 / BINS as f64;
        let bar = "#".repeat(count * 40 / peak);
        let marker = if lo <= study.sync_worst_period
            && study.sync_worst_period < lo + (max - min) / BINS as f64
        {
            "  <-- sync worst-case clock"
        } else {
            ""
        };
        let _ = writeln!(out, "{lo:>7.3} ns |{bar}{marker}");
    }
    let _ = writeln!(
        out,
        "desynchronized chips faster than the synchronous worst case: {:.1}%",
        study.fraction_faster * 100.0
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{AreaRow, SweepRow};
    use crate::LayoutResult;

    fn row(x: f64) -> AreaRow {
        AreaRow {
            nets: (x as usize) * 10,
            cells: (x as usize) * 9,
            cell_area: x * 100.0,
            combinational: x * 60.0,
            sequential: x * 40.0,
        }
    }

    fn layout(x: f64) -> LayoutResult {
        LayoutResult {
            nets: (x as usize) * 11,
            cells: (x as usize) * 10,
            std_cell_area: x * 110.0,
            core_size: x * 120.0,
            utilization: 95.0 - x,
            fanout_buffers: 1,
            tree_buffers: 2,
        }
    }

    #[test]
    fn area_table_renders_all_rows() {
        let cmp = AreaComparison {
            name: "DLX".into(),
            sync_synth: row(10.0),
            desync_synth: row(12.0),
            sync_layout: layout(10.0),
            desync_layout: layout(12.0),
        };
        let text = render_area_table(&cmp);
        assert!(text.contains("post-synth  sequential"));
        assert!(text.contains("core utilization"));
        assert!(text.contains("20.00%"));
    }

    #[test]
    fn figures_render() {
        let mk = |sel: u8, ok: bool| SweepRow {
            selection: sel,
            period_ns: 2.0 + sel as f64 * 0.3,
            flow_equivalent: ok,
            power_total: 100.0 - sel as f64,
            power_dynamic: 90.0,
        };
        let sweep = TimingSweep {
            name: "DLX".into(),
            best: (0..=7).rev().map(|s| mk(s, s >= 2)).collect(),
            worst: (0..=7).rev().map(|s| mk(s, s >= 2)).collect(),
            sync_best_period: 1.14,
            sync_worst_period: 2.44,
            sync_best_power: 120.0,
            sync_worst_power: 60.0,
        };
        let t = render_timing_figure(&sweep);
        assert!(t.contains("selection"));
        assert!(t.contains("×"), "{t}");
        let p = render_power_figure(&sweep);
        assert!(p.contains("mW"));
        let study = VariabilityStudy {
            name: "DLX".into(),
            sync_worst_period: 2.44,
            sync_best_period: 1.14,
            desync_periods: (0..100).map(|i| 1.4 + i as f64 * 0.015).collect(),
            fraction_faster: 0.9,
        };
        let v = render_variability_figure(&study);
        assert!(v.contains("90.0%"));
    }
}
