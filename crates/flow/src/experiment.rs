//! The experimental procedure of §5.1 (Fig. 5.1): implement each design
//! twice — synchronous and desynchronized — with the same library and
//! "tools", then compare area, timing, power and variability tolerance.

use drd_core::{DesyncOptions, DesyncReport, DesyncResult, Desynchronizer, FlowTrace};
use drd_liberty::{Corner, Library, Lv};
use drd_netlist::{Design, Module};
use drd_sim::{
    compare_capture_logs, CaptureLog, GateVariability, HandshakeNet, HandshakeSpec, RegionSpec,
    SimOptions, Simulator,
};
use drd_sta::{GraphOptions, TimingGraph};

use crate::backend::{place_and_route, BackendOptions, LayoutResult};
use drd_core::DesyncError;

/// A design case study (the paper's DLX and ARM, §5.2/§5.3).
#[derive(Debug, Clone)]
pub struct CaseStudy {
    /// Case name for reports.
    pub name: String,
    /// The synchronous post-synthesis netlist.
    pub module: Module,
    /// Technology library.
    pub lib: Library,
    /// Desynchronization options.
    pub desync: DesyncOptions,
    /// Backend options for the synchronous implementation.
    pub sync_backend: BackendOptions,
    /// Backend options for the desynchronized implementation.
    pub desync_backend: BackendOptions,
    /// Cycles of synchronous reference simulation for flow-equivalence
    /// and power measurements.
    pub reference_cycles: usize,
}

impl CaseStudy {
    /// The DLX case study (§5.2): High-Speed library, automatic grouping.
    ///
    /// # Errors
    /// Propagates generator errors.
    pub fn dlx(params: &drd_designs::dlx::DlxParams) -> Result<CaseStudy, DesyncError> {
        let module = drd_designs::dlx::build(params)?;
        Ok(CaseStudy {
            name: format!("DLX{}", params.width),
            module,
            lib: drd_liberty::vlib90::high_speed(),
            desync: DesyncOptions::default(),
            sync_backend: BackendOptions {
                utilization: 0.95,
                ..BackendOptions::default()
            },
            desync_backend: BackendOptions {
                // The controller network's independent enable trees demand
                // routing margin (§4.7; Table 5.1 reports 95 % → 91 %).
                utilization: 0.91,
                ..BackendOptions::default()
            },
            reference_cycles: 24,
        })
    }

    /// The ARM-like case study (§5.3): Low-Leakage library, scan design,
    /// single desynchronization group, pre-existing synchronous floorplan.
    ///
    /// # Errors
    /// Propagates generator and DFT errors.
    pub fn armlike(params: &drd_designs::armlike::ArmParams) -> Result<CaseStudy, DesyncError> {
        let lib = drd_liberty::vlib90::low_leakage();
        let mut module = drd_designs::armlike::build(params)?;
        crate::dft::insert_scan(&mut module, &lib)?;
        let mut desync = DesyncOptions::default();
        desync.grouping.single_group = true;
        // Scan enable is a global control: a false path for grouping.
        desync.grouping.false_path_nets.push("scan_en".into());
        Ok(CaseStudy {
            name: format!("ARM{}", params.width),
            module,
            lib,
            desync,
            sync_backend: BackendOptions {
                // The pre-existing ARM floorplan (≈80 % utilization).
                utilization: 0.80,
                ..BackendOptions::default()
            },
            desync_backend: BackendOptions {
                utilization: 0.88,
                ..BackendOptions::default()
            },
            reference_cycles: 16,
        })
    }

    /// Desynchronizes the case's module.
    ///
    /// # Errors
    /// Propagates desynchronization errors.
    pub fn desynchronize(&self) -> Result<DesyncResult, DesyncError> {
        Ok(self.desynchronize_traced()?.0)
    }

    /// Desynchronizes the case's module through the instrumented pass
    /// pipeline, returning per-pass timings alongside the result — the
    /// Table 5.1/5.2 drivers report them for free.
    ///
    /// # Errors
    /// Propagates desynchronization errors.
    pub fn desynchronize_traced(&self) -> Result<(DesyncResult, FlowTrace), DesyncError> {
        Desynchronizer::new(&self.lib)?.run_traced(self.module.clone(), &self.desync)
    }

    /// Minimum synchronous clock period at the typical corner: worst
    /// register-to-register arrival plus clk→Q and setup.
    ///
    /// # Errors
    /// Propagates STA errors.
    pub fn sync_min_period(&self) -> Result<f64, DesyncError> {
        let graph = TimingGraph::build(&self.module, &self.lib, &GraphOptions::default())?;
        let arr = graph.arrivals(Corner::typical())?;
        let ff = self.lib.cell("DFFX1").expect("vlib90 has DFFX1");
        let overhead = ff.max_intrinsic_delay() + ff.setup;
        Ok(arr.max_endpoint_arrival() + overhead)
    }
}

// ---------------------------------------------------------------------------
// Area (Tables 5.1 / 5.2)
// ---------------------------------------------------------------------------

/// A post-synthesis area row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaRow {
    /// Net count.
    pub nets: usize,
    /// Cell count.
    pub cells: usize,
    /// Total cell area.
    pub cell_area: f64,
    /// Combinational area.
    pub combinational: f64,
    /// Sequential area.
    pub sequential: f64,
}

fn area_row(module: &Module, lib: &Library) -> AreaRow {
    let counts = drd_netlist::stats::counts(module);
    // Composite-latch gates count as sequential, matching the paper's
    // accounting (§5.3.1) — walk cells directly so the classifier can see
    // instance names.
    let mut cell_area = 0.0;
    let mut combinational = 0.0;
    let mut sequential = 0.0;
    for (_, cell) in module.cells() {
        let a = lib.area_of(cell.kind_ref());
        cell_area += a;
        if lib.is_sequential(cell.kind_ref())
            || drd_core::ffsub::is_substitution_cell(cell.name)
        {
            sequential += a;
        } else {
            combinational += a;
        }
    }
    AreaRow {
        nets: counts.nets,
        cells: counts.cells,
        cell_area,
        combinational,
        sequential,
    }
}

/// The full Table 5.1 / 5.2 comparison.
#[derive(Debug, Clone)]
pub struct AreaComparison {
    /// Case name.
    pub name: String,
    /// Post-synthesis, synchronous.
    pub sync_synth: AreaRow,
    /// Post-synthesis, desynchronized.
    pub desync_synth: AreaRow,
    /// Post-layout, synchronous.
    pub sync_layout: LayoutResult,
    /// Post-layout, desynchronized.
    pub desync_layout: LayoutResult,
}

impl AreaComparison {
    /// Percentage overhead helper.
    pub fn pct(sync: f64, desync: f64) -> f64 {
        (desync - sync) / sync * 100.0
    }

    /// Total core-size overhead (%).
    pub fn core_overhead(&self) -> f64 {
        Self::pct(self.sync_layout.core_size, self.desync_layout.core_size)
    }

    /// Sequential-area overhead (%), the substitution cost (§5.2.1).
    pub fn sequential_overhead(&self) -> f64 {
        Self::pct(self.sync_synth.sequential, self.desync_synth.sequential)
    }

    /// Combinational-area overhead (%).
    pub fn combinational_overhead(&self) -> f64 {
        Self::pct(self.sync_synth.combinational, self.desync_synth.combinational)
    }
}

/// Runs the area comparison (Fig. 5.1's two parallel implementations).
///
/// # Errors
/// Propagates flow errors.
pub fn area_comparison(case: &CaseStudy) -> Result<AreaComparison, DesyncError> {
    Ok(area_comparison_traced(case)?.0)
}

/// [`area_comparison`] plus the desynchronization pipeline's per-pass
/// instrumentation.
///
/// # Errors
/// Propagates flow errors.
pub fn area_comparison_traced(
    case: &CaseStudy,
) -> Result<(AreaComparison, FlowTrace), DesyncError> {
    let sync_synth = area_row(&case.module, &case.lib);
    let (desync, trace) = case.desynchronize_traced()?;
    let flat = drd_netlist::flatten(&desync.design, desync.design.top())?;
    let desync_synth = area_row(&flat, &case.lib);

    let mut sync_design = Design::new();
    sync_design.insert(case.module.clone());
    let sync_layout = place_and_route(&sync_design, &case.lib, &case.sync_backend)?;
    let desync_layout = place_and_route(&desync.design, &case.lib, &case.desync_backend)?;
    Ok((
        AreaComparison {
            name: case.name.clone(),
            sync_synth,
            desync_synth,
            sync_layout,
            desync_layout,
        },
        trace,
    ))
}

// ---------------------------------------------------------------------------
// Timing & power sweep (Figs. 5.3 / 5.5)
// ---------------------------------------------------------------------------

/// One sweep measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepRow {
    /// Delay-element mux selection (7 = longest … 0 = shortest).
    pub selection: u8,
    /// Measured effective period (ns).
    pub period_ns: f64,
    /// Whether the run stayed flow-equivalent to the synchronous
    /// reference (false ⇒ "too short delay elements", the dashed region
    /// of Fig. 5.3).
    pub flow_equivalent: bool,
    /// Total power over the measurement window (mW-like).
    pub power_total: f64,
    /// Dynamic component.
    pub power_dynamic: f64,
}

/// The Fig. 5.3 (and Fig. 5.5) sweep result.
#[derive(Debug, Clone)]
pub struct TimingSweep {
    /// Case name.
    pub name: String,
    /// Rows at the best corner, selection 7 → 0.
    pub best: Vec<SweepRow>,
    /// Rows at the worst corner, selection 7 → 0.
    pub worst: Vec<SweepRow>,
    /// Synchronous period at the best corner.
    pub sync_best_period: f64,
    /// Synchronous period at the worst corner.
    pub sync_worst_period: f64,
    /// Synchronous power at each corner (at its own period).
    pub sync_best_power: f64,
    /// Synchronous power at the worst corner.
    pub sync_worst_power: f64,
}

impl TimingSweep {
    /// The smallest selection that still works at the given corner rows.
    pub fn first_working_selection(rows: &[SweepRow]) -> Option<u8> {
        rows.iter()
            .rev()
            .find(|r| r.flow_equivalent)
            .map(|r| r.selection)
    }
}

/// Captures the synchronous reference log (typical corner, relaxed clock).
fn sync_reference(case: &CaseStudy) -> Result<(CaptureLog, f64), DesyncError> {
    let period = case.sync_min_period()? * 1.1;
    let mut design = Design::new();
    design.insert(case.module.clone());
    let mut sim = Simulator::new(&design, &case.lib, SimOptions::default()).map_err(sim_err)?;
    init_inputs(&mut sim, &case.module);
    sim.schedule_clock("clk", period, period / 2.0, case.reference_cycles)
        .map_err(sim_err)?;
    sim.run_for(period * (case.reference_cycles + 2) as f64);
    Ok((sim.captures().clone(), period))
}

/// Measures synchronous power at `corner`, clocked at that corner's
/// minimum period.
fn sync_power(case: &CaseStudy, corner: Corner, typ_period: f64) -> Result<f64, DesyncError> {
    let period = typ_period * corner.delay_factor;
    let mut design = Design::new();
    design.insert(case.module.clone());
    let mut sim =
        Simulator::new(&design, &case.lib, SimOptions::at_corner(corner)).map_err(sim_err)?;
    init_inputs(&mut sim, &case.module);
    let warmup = 4usize;
    sim.schedule_clock("clk", period, period / 2.0, case.reference_cycles + warmup)
        .map_err(sim_err)?;
    sim.run_for(period * warmup as f64);
    sim.reset_power_window();
    sim.run_for(period * case.reference_cycles as f64);
    Ok(sim.power_report().total())
}

fn sim_err(e: drd_sim::SimError) -> DesyncError {
    DesyncError::Clock {
        message: format!("simulation failed: {e}"),
    }
}

/// Drives all primary inputs (other than clock/reset/dsel) to 0.
fn init_inputs(sim: &mut Simulator, module: &Module) {
    for (_, port) in module.ports() {
        if port.dir != drd_netlist::PortDir::Input {
            continue;
        }
        let name = port.name;
        if name == "clk" || name == "drd_rst" || name.starts_with("dsel") {
            continue;
        }
        let _ = sim.poke(name, Lv::Zero);
    }
}

/// Runs the Fig. 5.3 / Fig. 5.5 sweep: desynchronize with 8-tap muxed
/// delay elements, then measure effective period, flow equivalence and
/// power for every selection at both corners.
///
/// # Errors
/// Propagates flow errors.
pub fn timing_sweep(case: &CaseStudy) -> Result<TimingSweep, DesyncError> {
    let (reference, _) = sync_reference(case)?;
    let typ_period = case.sync_min_period()?;

    let mut opts = case.desync.clone();
    opts.muxed_delay_elements = true;
    let desync = Desynchronizer::new(&case.lib)?.run(&case.module, &opts)?;

    // Watch the busiest region's slave enable for period measurement.
    let watch_region = desync
        .report
        .regions
        .iter()
        .filter(|r| r.ffs > 0)
        .max_by_key(|r| r.ffs)
        .map(|r| r.name.clone())
        .ok_or_else(|| DesyncError::Clock {
            message: "no controlled regions".into(),
        })?;
    let watch_net = format!("drd_{watch_region}_gs");

    let run_one = |corner: Corner, selection: u8| -> Result<SweepRow, DesyncError> {
        let mut sim =
            Simulator::new(&desync.design, &case.lib, SimOptions::at_corner(corner))
                .map_err(sim_err)?;
        init_inputs(&mut sim, &case.module);
        for b in 0..3 {
            sim.poke(
                &format!("dsel[{b}]"),
                Lv::from_bool((selection >> b) & 1 == 1),
            )
            .map_err(sim_err)?;
        }
        sim.watch(&watch_net).map_err(sim_err)?;
        sim.poke("drd_rst", Lv::Zero).map_err(sim_err)?;
        sim.run_for(5.0 * corner.delay_factor);
        sim.poke("drd_rst", Lv::One).map_err(sim_err)?;
        // Warm up, then measure.
        let window = typ_period * corner.delay_factor * (case.reference_cycles + 6) as f64 * 2.5;
        sim.run_for(window * 0.2);
        sim.reset_power_window();
        sim.run_for(window);
        let edges = sim.rising_edges(&watch_net);
        let period = if edges.len() >= 4 {
            (edges[edges.len() - 1] - edges[2]) / (edges.len() - 3) as f64
        } else {
            f64::INFINITY
        };
        let power = sim.power_report();
        let check = compare_capture_logs(&reference, sim.captures(), |n| format!("{n}_ls"));
        Ok(SweepRow {
            selection,
            period_ns: period,
            flow_equivalent: check.is_equivalent() && edges.len() >= 4,
            power_total: power.total(),
            power_dynamic: power.dynamic,
        })
    };

    let mut best = Vec::new();
    let mut worst = Vec::new();
    for sel in (0..=7u8).rev() {
        best.push(run_one(Corner::best(), sel)?);
        worst.push(run_one(Corner::worst(), sel)?);
    }
    Ok(TimingSweep {
        name: case.name.clone(),
        best,
        worst,
        sync_best_period: typ_period * Corner::best().delay_factor,
        sync_worst_period: typ_period * Corner::worst().delay_factor,
        sync_best_power: sync_power(case, Corner::best(), typ_period)?,
        sync_worst_power: sync_power(case, Corner::worst(), typ_period)?,
    })
}

/// The Fig. 5.5 view of the sweep (power instead of period).
#[derive(Debug, Clone)]
pub struct PowerSweep {
    /// The underlying sweep.
    pub sweep: TimingSweep,
}

/// Runs the power sweep (shares the Fig. 5.3 runs).
///
/// # Errors
/// Propagates flow errors.
pub fn power_sweep(case: &CaseStudy) -> Result<PowerSweep, DesyncError> {
    Ok(PowerSweep {
        sweep: timing_sweep(case)?,
    })
}

// ---------------------------------------------------------------------------
// Variability (Fig. 5.4)
// ---------------------------------------------------------------------------

/// The Fig. 5.4 study: per-chip operating points.
#[derive(Debug, Clone)]
pub struct VariabilityStudy {
    /// Case name.
    pub name: String,
    /// Synchronous worst-case period — every synchronous chip must be
    /// clocked at this.
    pub sync_worst_period: f64,
    /// Synchronous best-case period (distribution lower bound).
    pub sync_best_period: f64,
    /// Desynchronized per-chip periods (one per sampled chip).
    pub desync_periods: Vec<f64>,
    /// Fraction of desynchronized chips faster than the synchronous
    /// worst case (the shaded ≈90 % of Fig. 5.4).
    pub fraction_faster: f64,
}

/// Projects a desynchronization report onto the handshake simulator's
/// control-network spec. `drd-sim` sits below `drd-core` in the crate
/// order (core *tests* with the simulator), so the projection lives on
/// the flow side: region rows become [`RegionSpec`]s and the DDG edges
/// become index pairs.
///
/// # Errors
/// Propagates delay-element probing errors.
pub fn handshake_spec(
    report: &DesyncReport,
    lib: &Library,
) -> Result<HandshakeSpec, DesyncError> {
    let level_delay_ns = drd_core::delay_element::level_delay_ns(lib)?;
    let ff = lib.cell("DFFX1").expect("vlib90 has DFFX1");
    let regions: Vec<RegionSpec> = report
        .regions
        .iter()
        .map(|r| RegionSpec {
            name: r.name.clone(),
            // Degraded regions keep ffs but get no delay element; both
            // conditions must hold for the region to carry controllers.
            controlled: r.ffs > 0 && r.delem_levels > 0,
            matched_levels: r.delem_levels,
            critical_delay_ns: r.critical_delay_ns,
            loopback_latch: report.liveness_repairs.iter().any(|lr| {
                lr.region == r.name
                    && matches!(lr.action, drd_core::LivenessAction::RequestLatch)
            }),
        })
        .collect();
    let slot = |name: &str| report.regions.iter().position(|r| r.name == name);
    let edges = report
        .ddg_edges
        .iter()
        .filter_map(|(a, b)| Some((slot(a)?, slot(b)?)))
        .collect();
    Ok(HandshakeSpec {
        regions,
        edges,
        level_delay_ns,
        ff_overhead_ns: ff.max_intrinsic_delay() + ff.setup,
    })
}

/// Runs the Monte-Carlo variability study: the desynchronized circuit
/// runs at its own chip's silicon speed (its delay elements track the
/// logic, §2.5), while the synchronous design is stuck at the worst
/// corner. Per-chip periods come from the handshake-level event
/// simulator — every control gate and delay-element level draws its own
/// keyed delay factor, and the campaign fans out one chip per task with
/// chip-order merging, so the study is byte-identical for any worker
/// count.
///
/// # Errors
/// Propagates flow errors.
pub fn variability_study(
    case: &CaseStudy,
    chips: usize,
    sigma: f64,
    seed: u64,
) -> Result<VariabilityStudy, DesyncError> {
    let typ_period = case.sync_min_period()?;
    let desync = case.desynchronize()?;
    let spec = handshake_spec(&desync.report, &case.lib)?;
    let net = HandshakeNet::elaborate(&spec, &case.lib).map_err(sim_err)?;
    let var = GateVariability::new(seed, sigma);
    let samples = net
        .monte_carlo(&var, chips, drd_runner::worker_count())
        .map_err(sim_err)?;
    let desync_periods: Vec<f64> = samples.iter().map(|s| s.desync_cycle_ns).collect();
    let sync_worst = typ_period * Corner::worst().delay_factor;
    let faster = desync_periods
        .iter()
        .filter(|&&p| p < sync_worst)
        .count();
    Ok(VariabilityStudy {
        name: case.name.clone(),
        sync_worst_period: sync_worst,
        sync_best_period: typ_period * Corner::best().delay_factor,
        fraction_faster: faster as f64 / desync_periods.len().max(1) as f64,
        desync_periods,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use drd_designs::dlx::DlxParams;

    fn small_case() -> CaseStudy {
        CaseStudy::dlx(&DlxParams::small()).unwrap()
    }

    #[test]
    fn area_comparison_shape_matches_table_5_1() {
        let case = small_case();
        let cmp = area_comparison(&case).unwrap();
        // Desynchronization adds cells and nets…
        assert!(cmp.desync_synth.cells > cmp.sync_synth.cells);
        assert!(cmp.desync_synth.nets > cmp.sync_synth.nets);
        // …the sequential area grows substantially (latch pairs)…
        assert!(
            cmp.sequential_overhead() > 10.0,
            "seq overhead {:.2}%",
            cmp.sequential_overhead()
        );
        // …while combinational area grows only a little.
        assert!(
            cmp.combinational_overhead() < cmp.sequential_overhead(),
            "comb {:.2}% < seq {:.2}%",
            cmp.combinational_overhead(),
            cmp.sequential_overhead()
        );
        // Core overhead is positive but moderate.
        let core = cmp.core_overhead();
        assert!((2.0..60.0).contains(&core), "core overhead {core:.2}%");
        // Post-layout has more cells than post-synthesis (buffering).
        assert!(cmp.sync_layout.cells >= cmp.sync_synth.cells);
        assert!(cmp.desync_layout.cells >= cmp.desync_synth.cells);
    }

    #[test]
    fn variability_study_produces_elastic_distribution() {
        // The small DLX has a short critical path, so the fixed control
        // overhead dominates and few chips beat the synchronous worst
        // case; the full-size case study (see the fig_5_4 bench binary)
        // reaches the paper's majority-of-chips regime. Here we check the
        // mechanics: an elastic, corner-tracking period distribution.
        let case = small_case();
        let study = variability_study(&case, 500, 0.15, 7).unwrap();
        assert_eq!(study.desync_periods.len(), 500);
        assert!(study.sync_worst_period > study.sync_best_period);
        let min = study.desync_periods.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = study.desync_periods.iter().cloned().fold(0.0f64, f64::max);
        // Per-chip periods span the process spread (elastic, §2.5).
        assert!(max > 1.2 * min, "spread {min:.3}..{max:.3}");
        // The desynchronized circuit is slower than the synchronous
        // typical case (control overhead) but same order of magnitude.
        let mean = study.desync_periods.iter().sum::<f64>() / 500.0;
        let typ = case.sync_min_period().unwrap();
        assert!(mean > typ && mean < 3.0 * typ, "mean {mean:.3} vs typ {typ:.3}");
    }
}
