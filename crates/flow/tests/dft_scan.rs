//! Scan-chain preservation through latch substitution (§4.3 meets §3.2).
//!
//! The DFT phase stitches every flip-flop into a scan chain; the
//! desynchronization flow then replaces each scan flip-flop with a
//! master/slave latch pair plus an explicit scan mux. These tests pin
//! down the contract: the chain stitched by [`drd_flow::insert_scan`]
//! must survive the substitution cell-for-cell (same scan-in ordering,
//! same shared scan-enable, mux feeding the master latch), and the
//! structural scan oracle in `drd-check` must reject any un-stitching —
//! including the `broken-scan-stitch` mutation kind.

use drd_check::diff::{verify_result, DiffConfig};
use drd_check::mutate::{apply, Mutation};
use drd_check::netgen::{FfKind, NetGenParams, NetRecipe};
use drd_check::Rng;
use drd_core::{DesyncOptions, DesyncResult, Desynchronizer};
use drd_flow::insert_scan;
use drd_liberty::vlib90;
use drd_netlist::{Conn, Module, PortDir};

/// A shift register whose data path runs through inverters, so each
/// flip-flop's `D` net differs from the `Q` net the scan chain taps —
/// the mux legs stay structurally distinguishable.
fn inverting_shift_register(n: usize) -> Module {
    let mut m = Module::new("isr");
    m.add_port("clk", PortDir::Input).unwrap();
    m.add_port("d", PortDir::Input).unwrap();
    let clk = m.find_net("clk").unwrap();
    let mut prev = m.find_net("d").unwrap();
    for i in 0..n {
        let nd = m.add_net(format!("nd{i}")).unwrap();
        m.add_cell(
            format!("inv{i}"),
            "INVX1",
            &[("A", Conn::Net(prev)), ("Z", Conn::Net(nd))],
        )
        .unwrap();
        let q = m.add_net(format!("q{i}")).unwrap();
        m.add_cell(
            format!("r{i}"),
            "DFFX1",
            &[("D", Conn::Net(nd)), ("CK", Conn::Net(clk)), ("Q", Conn::Net(q))],
        )
        .unwrap();
        prev = q;
    }
    m
}

/// Net name of `pin` on cell `name`, `None` when absent or tied off.
fn pin_net(m: &Module, name: &str, pin: &str) -> Option<String> {
    let cell = m.find_cell(name)?;
    let net = m.cell(cell).pin(pin)?.net()?;
    Some(m.net(net).name.to_owned())
}

#[test]
fn scan_chain_survives_latch_substitution() {
    let lib = vlib90::high_speed();
    let mut module = inverting_shift_register(4);
    let report = insert_scan(&mut module, &lib).unwrap();
    assert_eq!(report.chain, ["r0", "r1", "r2", "r3"]);

    let tool = Desynchronizer::new(&lib).unwrap();
    let result = tool.run(&module, &DesyncOptions::default()).unwrap();
    let top = result.design.module(result.design.top());

    let mut prev_link = "scan_in".to_owned();
    for (i, ff) in report.chain.iter().enumerate() {
        let mux = format!("{ff}_smx");
        let id = top
            .find_cell(&mux)
            .unwrap_or_else(|| panic!("{mux} missing after substitution"));
        assert_eq!(top.cell(id).kind_name(), "MUX2X1", "{mux}");
        // The stitched ordering: each mux's scan leg taps the previous
        // link (the scan_in port, then each predecessor's Q net).
        assert_eq!(pin_net(top, &mux, "B").as_deref(), Some(prev_link.as_str()));
        // One shared scan enable selects the whole chain.
        assert_eq!(pin_net(top, &mux, "S").as_deref(), Some("scan_en"));
        // Functional leg still the inverted data, mux into the master.
        assert_eq!(pin_net(top, &mux, "A").as_deref(), Some(format!("nd{i}").as_str()));
        assert_eq!(pin_net(top, &mux, "Z"), pin_net(top, &format!("{ff}_lm"), "D"));
        assert!(top.find_cell(&format!("{ff}_ls")).is_some(), "{ff}_ls missing");
        prev_link = format!("q{i}");
    }
}

/// Deterministically find a netgen recipe that contains a scan flip-flop
/// and whose clean flow the oracle stack accepts.
fn scan_recipe(lib: &drd_liberty::Library, config: &DiffConfig) -> (NetRecipe, DesyncResult) {
    let mut rng = Rng::new(0x05CA_9C4A);
    let params = NetGenParams::default();
    for _ in 0..64 {
        let recipe = NetRecipe::sample(&mut rng, &params);
        let has_scan = recipe
            .stages
            .iter()
            .any(|s| s.ffs.iter().any(|f| f.kind == FfKind::Scan));
        if !has_scan {
            continue;
        }
        let Ok(module) = recipe.build() else { continue };
        let tool = Desynchronizer::new(lib).unwrap();
        let Ok(clean) = tool.run(&module, &DesyncOptions::default()) else {
            continue;
        };
        if verify_result(&recipe, lib, config, &clean).is_ok() {
            return (recipe, clean);
        }
    }
    panic!("no verifiable scan-carrying recipe in 64 samples");
}

#[test]
fn scan_oracle_accepts_clean_flows_and_kills_unstitched_ones() {
    let lib = vlib90::high_speed();
    let config = DiffConfig::default();
    let (recipe, clean) = scan_recipe(&lib, &config);

    // Both broken legs of the new mutation kind must be caught, and by
    // the scan oracle specifically.
    for site_seed in [0u64, 1] {
        let mutant = apply(Mutation::BrokenScanStitch, site_seed, &recipe, &clean, &lib)
            .expect("scan mux present");
        let why = verify_result(&recipe, &lib, &config, &mutant)
            .expect_err("un-stitched chain must be rejected");
        assert!(why.contains("scan"), "rejected for the wrong reason: {why}");
    }
}
