//! Timing-loop detection and breaking (§4.6.1).
//!
//! The controller network is a genuinely cyclic circuit, which conventional
//! STA cannot analyze: "any cycles in the combinational netlist must be
//! broken, i.e. some edges must be removed. Such edges can be, for example,
//! those classified as back-edges by the STA graph traversal algorithm. …
//! the places where the graph is cut are arbitrary with respect to the
//! design's functionality" — which is why the paper cuts the controller
//! loops *by hand* at specific timing-disabled pins instead. This module
//! provides both mechanisms: [`TimingGraph::disable_pin`] for the manual
//! cuts, and [`TimingGraph::break_loops`] for the automatic DFS back-edge
//! fallback.

use crate::graph::{EdgeId, NodeId, TimingGraph};

/// Result of automatic loop breaking.
#[derive(Debug, Clone, Default)]
pub struct LoopReport {
    /// Edges that were cut, as `(from-name, to-name)` pairs.
    pub cut_edges: Vec<(String, String)>,
}

impl LoopReport {
    /// Number of cut edges.
    pub fn cut_count(&self) -> usize {
        self.cut_edges.len()
    }
}

impl TimingGraph {
    /// Detects cycles among the active edges and cuts every DFS back-edge,
    /// returning what was cut. Deterministic: DFS visits nodes in id order.
    pub fn break_loops(&mut self) -> LoopReport {
        #[derive(Clone, Copy, PartialEq)]
        enum Color {
            White,
            Gray,
            Black,
        }
        let n = self.node_count();
        let mut color = vec![Color::White; n];
        let mut cuts: Vec<EdgeId> = Vec::new();

        // Iterative DFS to survive deep graphs.
        for root in 0..n {
            if color[root] != Color::White {
                continue;
            }
            // Stack of (node, iterator position over out-edges).
            let mut stack: Vec<(usize, usize)> = vec![(root, 0)];
            color[root] = Color::Gray;
            while let Some(&(node, pos)) = stack.last() {
                let out = &self.out[node];
                let mut advanced = false;
                let mut pos = pos;
                while pos < out.len() {
                    let eid = out[pos];
                    pos += 1;
                    let edge = &self.edges[eid.0 as usize];
                    if edge.disabled {
                        continue;
                    }
                    let next = edge.to.0 as usize;
                    match color[next] {
                        Color::White => {
                            color[next] = Color::Gray;
                            stack.last_mut().expect("stack non-empty").1 = pos;
                            stack.push((next, 0));
                            advanced = true;
                            break;
                        }
                        Color::Gray => {
                            // Back edge: cut it.
                            cuts.push(eid);
                        }
                        Color::Black => {}
                    }
                }
                if !advanced {
                    color[node] = Color::Black;
                    stack.pop();
                }
            }
        }

        let mut report = LoopReport::default();
        for eid in cuts {
            let e = &mut self.edges[eid.0 as usize];
            e.disabled = true;
            let (from, to) = (e.from, e.to);
            report.cut_edges.push((
                self.node_name(from).to_owned(),
                self.node_name(to).to_owned(),
            ));
        }
        report
    }

    /// Returns a node on a remaining active cycle, or `None` if the graph
    /// is acyclic (used to verify that manual cuts were sufficient).
    pub fn find_cycle(&self) -> Option<NodeId> {
        let n = self.node_count();
        let mut indegree = vec![0usize; n];
        for e in self.edges.iter().filter(|e| !e.disabled) {
            indegree[e.to.0 as usize] += 1;
        }
        let mut queue: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
        let mut seen = 0usize;
        while let Some(i) = queue.pop() {
            seen += 1;
            for (_, e) in self.active_out(NodeId(i as u32)) {
                let t = e.to.0 as usize;
                indegree[t] -= 1;
                if indegree[t] == 0 {
                    queue.push(t);
                }
            }
        }
        if seen == n {
            None
        } else {
            indegree
                .iter()
                .position(|&d| d > 0)
                .map(|i| NodeId(i as u32))
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::graph::{GraphOptions, TimingGraph};
    use drd_liberty::vlib90;
    use drd_netlist::{Conn, Module, PortDir};

    /// A ring oscillator: three inverters in a loop.
    fn ring() -> Module {
        let mut m = Module::new("ring");
        let n0 = m.add_net("n0").unwrap();
        let n1 = m.add_net("n1").unwrap();
        let n2 = m.add_net("n2").unwrap();
        m.add_cell("i0", "INVX1", &[("A", Conn::Net(n0)), ("Z", Conn::Net(n1))])
            .unwrap();
        m.add_cell("i1", "INVX1", &[("A", Conn::Net(n1)), ("Z", Conn::Net(n2))])
            .unwrap();
        m.add_cell("i2", "INVX1", &[("A", Conn::Net(n2)), ("Z", Conn::Net(n0))])
            .unwrap();
        m
    }

    #[test]
    fn detects_and_breaks_ring() {
        let lib = vlib90::high_speed();
        let mut g = TimingGraph::build(&ring(), &lib, &GraphOptions::default()).unwrap();
        assert!(g.find_cycle().is_some());
        let report = g.break_loops();
        assert_eq!(report.cut_count(), 1);
        assert!(g.find_cycle().is_none());
    }

    #[test]
    fn manual_disable_also_breaks() {
        let lib = vlib90::high_speed();
        let mut g = TimingGraph::build(&ring(), &lib, &GraphOptions::default()).unwrap();
        g.disable_pin("i1", "Z");
        assert!(g.find_cycle().is_none());
        // Nothing left for the automatic pass.
        assert_eq!(g.break_loops().cut_count(), 0);
    }

    #[test]
    fn acyclic_graph_unchanged() {
        let lib = vlib90::high_speed();
        let mut m = Module::new("t");
        m.add_port("a", PortDir::Input).unwrap();
        let a = m.find_net("a").unwrap();
        let n = m.add_net("n").unwrap();
        m.add_cell("u", "INVX1", &[("A", Conn::Net(a)), ("Z", Conn::Net(n))])
            .unwrap();
        let mut g = TimingGraph::build(&m, &lib, &GraphOptions::default()).unwrap();
        assert!(g.find_cycle().is_none());
        assert_eq!(g.break_loops().cut_count(), 0);
    }

    #[test]
    fn break_is_deterministic() {
        let lib = vlib90::high_speed();
        let mut g1 = TimingGraph::build(&ring(), &lib, &GraphOptions::default()).unwrap();
        let mut g2 = TimingGraph::build(&ring(), &lib, &GraphOptions::default()).unwrap();
        assert_eq!(g1.break_loops().cut_edges, g2.break_loops().cut_edges);
    }
}
