//! Pin-level timing-graph construction.

use std::collections::hash_map::Entry;
use std::collections::HashMap;

use drd_liberty::{LibCell, Library, SeqKind};
use drd_netlist::{
    CellId, CellKind, Conn, Connectivity, Design, Endpoint, KindRef, Module, NetId, PortDir,
    PortId, Symbol, SymbolTable,
};

use crate::StaError;

/// Handle to a timing-graph node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) u32);

/// Handle to a timing-graph edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EdgeId(pub(crate) u32);

/// What a node represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// A cell pin (`cell`, index into the cell's pin list).
    Pin {
        /// Owning cell.
        cell: CellId,
        /// Pin index within the cell's pin list.
        pin: u32,
    },
    /// A module port.
    Port(PortId),
}

/// What an edge represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeKind {
    /// A pin-to-pin arc inside a cell.
    CellArc,
    /// A net connection from a driver to one load.
    Net,
}

#[derive(Debug, Clone)]
pub(crate) struct Node {
    pub kind: NodeKind,
    /// Pretty `instance/pin` or `port` name for reports.
    pub name: String,
    /// True if timing is disabled through this pin (§4.6.1).
    pub disabled: bool,
    /// True if this node is a timing endpoint (sequential data input or
    /// output port).
    pub endpoint: bool,
}

#[derive(Debug, Clone)]
pub(crate) struct Edge {
    pub from: NodeId,
    pub to: NodeId,
    /// Typical-corner delay (ns), already including load-dependent terms.
    pub delay: f64,
    pub kind: EdgeKind,
    /// Cut by loop breaking or pin disabling.
    pub disabled: bool,
}

/// Options controlling graph construction.
#[derive(Debug, Clone)]
pub struct GraphOptions {
    /// Include clock→Q / enable→Q launch arcs (default: false, so
    /// sequential outputs become path sources).
    pub include_clock_to_q: bool,
    /// Treat latches as transparent (include D→Q arcs). Default: false —
    /// latches are region boundaries, as the desynchronization timing
    /// constraints demand (§4.5.1).
    pub latch_transparent: bool,
    /// Extra wire delay added to every net edge (a crude pre-layout wire
    /// model; the backend replaces it with fanout-dependent estimates).
    pub wire_delay: f64,
    /// Timing arcs for module instances (black boxes), keyed by module
    /// name: `(input port, output port, delay)` — used for delay-element
    /// and controller instances.
    pub instance_arcs: HashMap<String, Vec<(String, String, f64)>>,
}

impl Default for GraphOptions {
    fn default() -> Self {
        GraphOptions {
            include_clock_to_q: false,
            latch_transparent: false,
            wire_delay: 0.0,
            instance_arcs: HashMap::new(),
        }
    }
}

/// Timing arcs and endpoint pins of one library cell, with pin names
/// resolved against the module's symbol table once and then replayed for
/// every instance of that kind — arc construction never touches strings.
#[derive(Debug, Default)]
struct KindArcs {
    /// `(from pin, to pin, intrinsic delay, output drive resistance)` for
    /// every arc enabled under the current [`GraphOptions`].
    arcs: Vec<(Symbol, Symbol, f64, f64)>,
    /// Sequential data inputs (timing endpoints).
    endpoints: Vec<Symbol>,
}

fn prepare_kind(module: &Module, lc: &LibCell, opts: &GraphOptions) -> KindArcs {
    let mut k = KindArcs::default();
    // Which input pin launches paths through this cell?
    let blocked_from: Option<&str> = match &lc.seq {
        SeqKind::None | SeqKind::CElement { .. } => None,
        SeqKind::FlipFlop(ff) => Some(ff.clocked_on.as_str()),
        SeqKind::Latch(l) => Some(l.enable.as_str()),
    };
    let is_latch = matches!(lc.seq, SeqKind::Latch(_));
    for arc in &lc.arcs {
        let through_clock = Some(arc.from.as_str()) == blocked_from;
        let allowed = match &lc.seq {
            SeqKind::None | SeqKind::CElement { .. } => true,
            SeqKind::FlipFlop(_) => opts.include_clock_to_q && through_clock,
            SeqKind::Latch(_) => {
                (through_clock && opts.include_clock_to_q)
                    || (!through_clock && (opts.latch_transparent && is_latch))
            }
        };
        if !allowed {
            continue;
        }
        // A pin name that was never interned in the module cannot be
        // connected on any instance — the arc can never materialize.
        let (Some(from), Some(to)) = (module.lookup_sym(&arc.from), module.lookup_sym(&arc.to))
        else {
            continue;
        };
        let res = lc.pin(&arc.to).map(|p| p.drive_resistance).unwrap_or(0.0);
        k.arcs.push((from, to, arc.rise.max(arc.fall), res));
    }
    if let Some(clockish) = blocked_from {
        for pin in lc.input_pins() {
            if pin.name == clockish {
                continue;
            }
            if let Some(s) = module.lookup_sym(&pin.name) {
                k.endpoints.push(s);
            }
        }
    }
    k
}

/// Net load capacitances (input-pin caps of all loads), with per-kind
/// `(pin symbol, capacitance)` tables derived once per distinct cell kind.
fn net_loads(module: &Module, lib: &Library) -> Result<Vec<f64>, StaError> {
    let mut kind_caps: HashMap<Symbol, Vec<(Symbol, f64)>> = HashMap::new();
    let mut net_load: Vec<f64> = vec![0.0; module.net_count()];
    for (_, cell) in module.cells() {
        let CellKind::Lib(kind) = cell.kind else { continue };
        let caps = match kind_caps.entry(kind) {
            Entry::Occupied(e) => e.into_mut(),
            Entry::Vacant(e) => {
                let lc = lib.cell(module.resolve(kind)).ok_or_else(|| StaError::UnknownCell {
                    name: module.resolve(kind).to_owned(),
                })?;
                e.insert(
                    lc.input_pins()
                        .filter_map(|p| module.lookup_sym(&p.name).map(|s| (s, p.capacitance)))
                        .collect(),
                )
            }
        };
        for &(pin, c) in cell.pins() {
            if let Conn::Net(n) = c {
                if let Some(&(_, cap)) = caps.iter().find(|&&(s, _)| s == pin) {
                    net_load[n.index()] += cap;
                }
            }
        }
    }
    Ok(net_load)
}

fn check_lib_cells(module: &Module, lib: &Library) -> Result<(), StaError> {
    for (_, cell) in module.cells() {
        if let KindRef::Lib(name) = cell.kind_ref() {
            if lib.cell(name).is_none() {
                return Err(StaError::UnknownCell {
                    name: name.to_owned(),
                });
            }
        }
    }
    Ok(())
}

/// Shared read-only preparation for building many per-region subset
/// graphs of one module (see [`TimingGraph::build_subset`]): connectivity
/// and full-module net load capacitances are derived once and then shared
/// — the struct is `Sync`, so region tasks can build their subgraphs in
/// parallel.
#[derive(Debug)]
pub struct SubsetContext<'a> {
    module: &'a Module,
    conn: Connectivity,
    net_load: Vec<f64>,
}

impl<'a> SubsetContext<'a> {
    /// Prepares subset building for `module`, which must contain library
    /// cells only (instances are allowed but get arcs solely through
    /// [`GraphOptions::instance_arcs`]).
    ///
    /// # Errors
    /// Returns [`StaError`] for unknown cells or a malformed netlist.
    pub fn new(module: &'a Module, lib: &Library) -> Result<Self, StaError> {
        check_lib_cells(module, lib)?;
        let conn = module.connectivity(lib).map_err(|e| StaError::BadNetlist {
            message: e.to_string(),
        })?;
        let net_load = net_loads(module, lib)?;
        Ok(SubsetContext {
            module,
            conn,
            net_load,
        })
    }

    /// The module this context was prepared for.
    pub fn module(&self) -> &'a Module {
        self.module
    }
}

/// A pin-level timing graph for one module.
#[derive(Debug, Clone)]
pub struct TimingGraph {
    pub(crate) nodes: Vec<Node>,
    pub(crate) edges: Vec<Edge>,
    pub(crate) out: Vec<Vec<EdgeId>>,
    pin_nodes: HashMap<(CellId, u32), NodeId>,
    port_nodes: HashMap<PortId, NodeId>,
    /// Clone of the module's symbol table (refcount bumps, not string
    /// copies) so the string-facing `find_pin` API can resolve names.
    syms: SymbolTable,
    cell_ids: HashMap<Symbol, CellId>,
    /// First pin index carrying each pin-name symbol on a cell.
    pin_ids: HashMap<(CellId, Symbol), u32>,
}

impl TimingGraph {
    /// Builds the timing graph of a standalone module (no submodule
    /// instances, unless they are covered by
    /// [`GraphOptions::instance_arcs`]).
    ///
    /// # Errors
    /// Returns [`StaError`] for unknown cells/pins or a malformed netlist.
    pub fn build(module: &Module, lib: &Library, opts: &GraphOptions) -> Result<Self, StaError> {
        let mut design = Design::new();
        design.insert(module.clone());
        let top = design.top();
        Self::build_in_design(&design, top, lib, opts)
    }

    /// Builds the timing graph of `design.module(id)`, resolving instance
    /// pin directions through the design's module ports.
    ///
    /// # Errors
    /// Returns [`StaError`] for unknown cells/pins or a malformed netlist.
    pub fn build_in_design(
        design: &Design,
        id: drd_netlist::ModuleId,
        lib: &Library,
        opts: &GraphOptions,
    ) -> Result<Self, StaError> {
        let module = design.module(id);
        // Verify library references up-front so unknown cells are reported
        // as such rather than as connectivity failures.
        check_lib_cells(module, lib)?;
        let dirs = design.pin_dirs(lib);
        let conn = module
            .connectivity(&dirs)
            .map_err(|e| StaError::BadNetlist {
                message: e.to_string(),
            })?;

        let mut g = TimingGraph::empty(module);
        let net_load = net_loads(module, lib)?;

        // Nodes for ports.
        for (pid, port) in module.ports() {
            g.push_port_node(pid, port.name, port.dir);
        }

        // Nodes for cell pins + intra-cell arcs (arc pin names resolved
        // once per distinct cell kind).
        let mut kinds: HashMap<Symbol, KindArcs> = HashMap::new();
        for (cid, cell) in module.cells() {
            g.push_cell_nodes(cid, cell);
            match cell.kind {
                CellKind::Lib(kind) => {
                    let ka = kind_arcs(&mut kinds, module, lib, opts, kind)?;
                    g.add_kind_arcs(module, cid, ka, &net_load);
                }
                CellKind::Instance(kind) => {
                    g.add_instance_arcs(module, cid, kind, opts);
                }
            }
        }

        // Net edges: driver → each load.
        for (nid, _net) in module.nets() {
            let Some(driver) = conn.driver(nid) else { continue };
            let Some(from) = g.endpoint_node(driver) else { continue };
            for load in conn.loads(nid) {
                if let Some(to) = g.endpoint_node(*load) {
                    g.push_edge(from, to, opts.wire_delay, EdgeKind::Net);
                }
            }
        }
        Ok(g)
    }

    /// Builds the timing graph restricted to `cells` (all module ports are
    /// kept). Shared read-only preparation — connectivity and net load
    /// capacitances — comes from `cx`, so many subset graphs of the same
    /// module can be built concurrently without re-deriving O(design)
    /// state per call.
    ///
    /// Net loads are taken from the **full** module, so arc delays match
    /// [`TimingGraph::build`] exactly. Arrival times at the subset's
    /// endpoints equal the full-graph arrivals whenever every path into
    /// them stays inside `cells` — which holds for desynchronization
    /// regions: clouds of different regions are disjoint, and with the
    /// default [`GraphOptions`] sequential outputs and ports are zero-
    /// arrival sources either way.
    ///
    /// # Errors
    /// Returns [`StaError`] for unknown cells or pins.
    pub fn build_subset(
        cx: &SubsetContext<'_>,
        lib: &Library,
        opts: &GraphOptions,
        cells: &[CellId],
    ) -> Result<Self, StaError> {
        let module = cx.module;
        let mut g = TimingGraph::empty(module);

        // Nodes for ports (zero-arrival sources / output endpoints).
        for (pid, port) in module.ports() {
            g.push_port_node(pid, port.name, port.dir);
        }

        // Nodes and arcs for the subset cells only.
        let mut kinds: HashMap<Symbol, KindArcs> = HashMap::new();
        for &cid in cells {
            let cell = module.cell(cid);
            g.push_cell_nodes(cid, cell);
            match cell.kind {
                CellKind::Lib(kind) => {
                    let ka = kind_arcs(&mut kinds, module, lib, opts, kind)?;
                    g.add_kind_arcs(module, cid, ka, &cx.net_load);
                }
                CellKind::Instance(kind) => {
                    g.add_instance_arcs(module, cid, kind, opts);
                }
            }
        }

        // Net edges over the nets touched by the subset (plus port nets),
        // visited in net-id order for a deterministic edge list.
        let mut touched: Vec<NetId> = Vec::new();
        for (_, port) in module.ports() {
            touched.push(port.net);
        }
        for &cid in cells {
            for &(_, c) in module.cell_pins(cid) {
                if let Conn::Net(n) = c {
                    touched.push(n);
                }
            }
        }
        touched.sort_unstable_by_key(|n| n.index());
        touched.dedup();
        for nid in touched {
            let Some(driver) = cx.conn.driver(nid) else { continue };
            let Some(from) = g.endpoint_node(driver) else { continue };
            for load in cx.conn.loads(nid) {
                if let Some(to) = g.endpoint_node(*load) {
                    g.push_edge(from, to, opts.wire_delay, EdgeKind::Net);
                }
            }
        }
        Ok(g)
    }

    fn empty(module: &Module) -> Self {
        TimingGraph {
            nodes: Vec::new(),
            edges: Vec::new(),
            out: Vec::new(),
            pin_nodes: HashMap::new(),
            port_nodes: HashMap::new(),
            syms: module.symbols().clone(),
            cell_ids: HashMap::new(),
            pin_ids: HashMap::new(),
        }
    }

    fn push_port_node(&mut self, pid: PortId, name: &str, dir: PortDir) {
        let node = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            kind: NodeKind::Port(pid),
            name: name.to_owned(),
            disabled: false,
            endpoint: dir != PortDir::Input,
        });
        self.port_nodes.insert(pid, node);
    }

    /// Creates nodes for every net-connected pin of `cell`.
    fn push_cell_nodes(&mut self, cid: CellId, cell: drd_netlist::Cell<'_>) {
        self.cell_ids.insert(cell.name_sym(), cid);
        for (idx, &(pin, c)) in cell.pins().iter().enumerate() {
            if c.net().is_none() {
                continue;
            }
            let node = NodeId(self.nodes.len() as u32);
            self.nodes.push(Node {
                kind: NodeKind::Pin {
                    cell: cid,
                    pin: idx as u32,
                },
                name: format!("{}/{}", cell.name, cell.pin_name(idx)),
                disabled: false,
                endpoint: false,
            });
            self.pin_nodes.insert((cid, idx as u32), node);
            self.pin_ids.entry((cid, pin)).or_insert(idx as u32);
        }
    }

    /// Replays a kind's prepared arcs onto one instance and marks its
    /// sequential data inputs as endpoints.
    fn add_kind_arcs(&mut self, module: &Module, cid: CellId, ka: &KindArcs, net_load: &[f64]) {
        for &(from_sym, to_sym, intrinsic, res) in &ka.arcs {
            let (Some(&fi), Some(&ti)) = (
                self.pin_ids.get(&(cid, from_sym)),
                self.pin_ids.get(&(cid, to_sym)),
            ) else {
                continue;
            };
            let from = self.pin_nodes[&(cid, fi)];
            let to = self.pin_nodes[&(cid, ti)];
            // Load-dependent delay on the output pin.
            let load = module.cell_pins(cid)[ti as usize]
                .1
                .net()
                .map(|n| net_load[n.index()])
                .unwrap_or(0.0);
            self.push_edge(from, to, intrinsic + res * load, EdgeKind::CellArc);
        }
        for &s in &ka.endpoints {
            if let Some(&pi) = self.pin_ids.get(&(cid, s)) {
                let node = self.pin_nodes[&(cid, pi)];
                self.nodes[node.0 as usize].endpoint = true;
            }
        }
    }

    /// Adds black-box arcs of a module instance from
    /// [`GraphOptions::instance_arcs`]. Without arcs the instance is an
    /// opaque boundary: its inputs are endpoints, its outputs sources.
    fn add_instance_arcs(&mut self, module: &Module, cid: CellId, kind: Symbol, opts: &GraphOptions) {
        let Some(arcs) = opts.instance_arcs.get(module.resolve(kind)) else {
            return;
        };
        for (from, to, delay) in arcs {
            let (Some(f), Some(t)) = (self.pin_node(cid, from), self.pin_node(cid, to)) else {
                continue;
            };
            self.push_edge(f, t, *delay, EdgeKind::CellArc);
        }
    }

    /// Resolves `cid`'s pin by name through the interned symbol table.
    fn pin_node(&self, cid: CellId, pin: &str) -> Option<NodeId> {
        let pi = *self.pin_ids.get(&(cid, self.syms.lookup(pin)?))?;
        self.pin_nodes.get(&(cid, pi)).copied()
    }

    fn endpoint_node(&self, e: Endpoint) -> Option<NodeId> {
        match e {
            Endpoint::Pin(p) => self.pin_nodes.get(&(p.cell, p.pin)).copied(),
            Endpoint::Port(p) => self.port_nodes.get(&p).copied(),
        }
    }

    fn push_edge(&mut self, from: NodeId, to: NodeId, delay: f64, kind: EdgeKind) {
        let id = EdgeId(self.edges.len() as u32);
        self.edges.push(Edge {
            from,
            to,
            delay,
            kind,
            disabled: false,
        });
        if self.out.len() < self.nodes.len() {
            self.out.resize(self.nodes.len(), Vec::new());
        }
        self.out[from.0 as usize].push(id);
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges (including disabled ones).
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Pretty name of a node (`instance/pin` or port name).
    pub fn node_name(&self, node: NodeId) -> &str {
        &self.nodes[node.0 as usize].name
    }

    /// Kind of a node.
    pub fn node_kind(&self, node: NodeId) -> NodeKind {
        self.nodes[node.0 as usize].kind
    }

    /// Finds the node of `instance/pin`.
    pub fn find_pin(&self, cell: &str, pin: &str) -> Option<NodeId> {
        let cid = *self.cell_ids.get(&self.syms.lookup(cell)?)?;
        self.pin_node(cid, pin)
    }

    /// Disables timing through `instance/pin` (the paper's
    /// `set_disable_timing`, Fig. 4.5c). All arcs entering or leaving the
    /// pin are cut. Returns false if the pin does not exist.
    pub fn disable_pin(&mut self, cell: &str, pin: &str) -> bool {
        let Some(node) = self.find_pin(cell, pin) else {
            return false;
        };
        self.nodes[node.0 as usize].disabled = true;
        for e in self.edges.iter_mut() {
            if e.from == node || e.to == node {
                e.disabled = true;
            }
        }
        true
    }

    /// Iterates over edges as `(from, to, delay, kind, disabled)`.
    pub fn edge_list(&self) -> impl Iterator<Item = (NodeId, NodeId, f64, EdgeKind, bool)> + '_ {
        self.edges
            .iter()
            .map(|e| (e.from, e.to, e.delay, e.kind, e.disabled))
    }

    /// Iterates over the ids of all timing endpoints.
    pub fn endpoints(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.endpoint)
            .map(|(i, _)| NodeId(i as u32))
    }

    /// Active (non-disabled) outgoing edges of `node`.
    pub(crate) fn active_out(&self, node: NodeId) -> impl Iterator<Item = (EdgeId, &Edge)> {
        self.out
            .get(node.0 as usize)
            .into_iter()
            .flatten()
            .map(|&eid| (eid, &self.edges[eid.0 as usize]))
            .filter(|(_, e)| !e.disabled)
    }
}

/// Fetches (building on first use) the prepared arcs of `kind`.
fn kind_arcs<'a>(
    kinds: &'a mut HashMap<Symbol, KindArcs>,
    module: &Module,
    lib: &Library,
    opts: &GraphOptions,
    kind: Symbol,
) -> Result<&'a KindArcs, StaError> {
    Ok(match kinds.entry(kind) {
        Entry::Occupied(e) => e.into_mut(),
        Entry::Vacant(e) => {
            let lc = lib.cell(module.resolve(kind)).ok_or_else(|| StaError::UnknownCell {
                name: module.resolve(kind).to_owned(),
            })?;
            e.insert(prepare_kind(module, lc, opts))
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use drd_liberty::vlib90;

    fn chain_module() -> Module {
        let mut m = Module::new("t");
        m.add_port("a", PortDir::Input).unwrap();
        m.add_port("clk", PortDir::Input).unwrap();
        m.add_port("z", PortDir::Output).unwrap();
        let a = m.find_net("a").unwrap();
        let clk = m.find_net("clk").unwrap();
        let z = m.find_net("z").unwrap();
        let n1 = m.add_net("n1").unwrap();
        let n2 = m.add_net("n2").unwrap();
        m.add_cell("u1", "INVX1", &[("A", Conn::Net(a)), ("Z", Conn::Net(n1))])
            .unwrap();
        m.add_cell(
            "r1",
            "DFFX1",
            &[("D", Conn::Net(n1)), ("CK", Conn::Net(clk)), ("Q", Conn::Net(n2))],
        )
        .unwrap();
        m.add_cell("u2", "INVX1", &[("A", Conn::Net(n2)), ("Z", Conn::Net(z))])
            .unwrap();
        m
    }

    #[test]
    fn graph_has_expected_shape() {
        let lib = vlib90::high_speed();
        let g = TimingGraph::build(&chain_module(), &lib, &GraphOptions::default()).unwrap();
        // Ports a, clk, z + pins u1/A u1/Z r1/D r1/CK r1/Q u2/A u2/Z.
        assert_eq!(g.node_count(), 10);
        // Arcs: u1 A→Z, u2 A→Z (no clock→Q by default).
        let arc_count = g
            .edges
            .iter()
            .filter(|e| e.kind == EdgeKind::CellArc)
            .count();
        assert_eq!(arc_count, 2);
        // r1/D is an endpoint; z port is an endpoint.
        let endpoint_names: Vec<&str> = g.endpoints().map(|n| g.node_name(n)).collect();
        assert!(endpoint_names.contains(&"r1/D"));
        assert!(endpoint_names.contains(&"z"));
        assert!(!endpoint_names.contains(&"r1/CK"));
    }

    #[test]
    fn clock_to_q_arcs_are_optional() {
        let lib = vlib90::high_speed();
        let opts = GraphOptions {
            include_clock_to_q: true,
            ..GraphOptions::default()
        };
        let g = TimingGraph::build(&chain_module(), &lib, &opts).unwrap();
        let arc_count = g
            .edges
            .iter()
            .filter(|e| e.kind == EdgeKind::CellArc)
            .count();
        assert_eq!(arc_count, 3); // + CK→Q
    }

    #[test]
    fn disable_pin_cuts_edges() {
        let lib = vlib90::high_speed();
        let mut g = TimingGraph::build(&chain_module(), &lib, &GraphOptions::default()).unwrap();
        assert!(g.disable_pin("u1", "Z"));
        assert!(!g.disable_pin("u1", "nope"));
        assert!(!g.disable_pin("missing", "Z"));
        let disabled = g.edges.iter().filter(|e| e.disabled).count();
        assert!(disabled >= 2); // the A→Z arc and the net edge to r1/D
    }

    #[test]
    fn unknown_cell_is_an_error() {
        let lib = vlib90::high_speed();
        let mut m = Module::new("t");
        let n = m.add_net("n").unwrap();
        m.add_cell("u", "NOT_A_CELL", &[("A", Conn::Net(n))]).unwrap();
        match TimingGraph::build(&m, &lib, &GraphOptions::default()) {
            Err(StaError::UnknownCell { name }) => assert_eq!(name, "NOT_A_CELL"),
            other => panic!("expected UnknownCell, got {other:?}"),
        }
    }
}
