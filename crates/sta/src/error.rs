//! STA error type.

use std::error::Error;
use std::fmt;

/// Errors from timing-graph construction and analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StaError {
    /// The netlist references a cell or pin missing from the library.
    UnknownCell {
        /// Name of the unknown cell or `cell/pin`.
        name: String,
    },
    /// The netlist is electrically malformed (e.g. multiple drivers).
    BadNetlist {
        /// Description of the problem.
        message: String,
    },
    /// Arrival propagation found a cycle that was not broken.
    Cycle {
        /// A human-readable description of one node on the cycle.
        through: String,
    },
}

impl fmt::Display for StaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StaError::UnknownCell { name } => write!(f, "unknown library cell `{name}`"),
            StaError::BadNetlist { message } => write!(f, "bad netlist: {message}"),
            StaError::Cycle { through } => {
                write!(f, "timing graph contains an unbroken cycle through {through}")
            }
        }
    }
}

impl Error for StaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = StaError::Cycle {
            through: "u1/Z".into(),
        };
        assert!(e.to_string().contains("u1/Z"));
        fn is_error<T: Error + Send + Sync>() {}
        is_error::<StaError>();
    }
}
