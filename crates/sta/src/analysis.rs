//! Arrival-time propagation and critical-path extraction.

use drd_liberty::Corner;

use crate::graph::{NodeId, TimingGraph};
use crate::StaError;

/// One step of a reported timing path.
#[derive(Debug, Clone, PartialEq)]
pub struct PathStep {
    /// The node (`instance/pin` or port name).
    pub node: String,
    /// Arrival time at this node (ns, derated to the analysis corner).
    pub arrival: f64,
}

/// Max-arrival times for every node of a graph, at one corner.
#[derive(Debug, Clone)]
pub struct Arrivals {
    arrivals: Vec<f64>,
    /// Predecessor edge on the worst path, for traceback.
    worst_pred: Vec<Option<NodeId>>,
    names: Vec<String>,
    endpoints: Vec<NodeId>,
}

impl Arrivals {
    /// Arrival time at `node`.
    pub fn at(&self, node: NodeId) -> f64 {
        self.arrivals[node.0 as usize]
    }

    /// The largest arrival anywhere in the graph.
    pub fn max_arrival(&self) -> f64 {
        self.arrivals.iter().copied().fold(0.0, f64::max)
    }

    /// The largest arrival over timing endpoints (sequential data inputs
    /// and output ports) — the number that sizes a region's delay element.
    pub fn max_endpoint_arrival(&self) -> f64 {
        self.endpoints
            .iter()
            .map(|&n| self.arrivals[n.0 as usize])
            .fold(0.0, f64::max)
    }

    /// The worst endpoint and its arrival, if any endpoint exists.
    pub fn worst_endpoint(&self) -> Option<(NodeId, f64)> {
        self.endpoints
            .iter()
            .map(|&n| (n, self.arrivals[n.0 as usize]))
            .max_by(|a, b| a.1.total_cmp(&b.1))
    }

    /// Reconstructs the critical path ending at `node` (source first).
    pub fn path_to(&self, node: NodeId) -> Vec<PathStep> {
        let mut steps = Vec::new();
        let mut cur = Some(node);
        while let Some(n) = cur {
            steps.push(PathStep {
                node: self.names[n.0 as usize].clone(),
                arrival: self.arrivals[n.0 as usize],
            });
            cur = self.worst_pred[n.0 as usize];
        }
        steps.reverse();
        steps
    }

    /// The critical path to the worst endpoint (empty if no endpoints).
    pub fn critical_path(&self) -> Vec<PathStep> {
        match self.worst_endpoint() {
            Some((node, _)) => self.path_to(node),
            None => Vec::new(),
        }
    }
}

impl TimingGraph {
    /// Propagates max-arrival times through the active edges at `corner`.
    ///
    /// Sources (nodes with no active incoming edges) start at 0.
    ///
    /// # Errors
    /// Returns [`StaError::Cycle`] if an unbroken cycle remains; call
    /// [`TimingGraph::break_loops`] or [`TimingGraph::disable_pin`] first.
    pub fn arrivals(&self, corner: Corner) -> Result<Arrivals, StaError> {
        self.arrivals_with(corner, 1)
    }

    /// [`TimingGraph::arrivals`] with an explicit worker count, propagating
    /// levelized wavefronts: a serial Kahn pass assigns each node its
    /// topological level, then every node of a level is relaxed from its
    /// incoming edges — independent work, fanned out across `workers` when
    /// the wavefront is wide enough. Each node scans its in-edges in
    /// edge-id order with a strict-max first-wins tie-break, so arrivals
    /// *and* worst-predecessor choices are identical for every worker
    /// count (the old stack-driven propagation broke arrival ties by
    /// visit order).
    ///
    /// # Errors
    /// As [`TimingGraph::arrivals`].
    pub fn arrivals_with(&self, corner: Corner, workers: usize) -> Result<Arrivals, StaError> {
        let n = self.node_count();
        let mut indegree = vec![0usize; n];
        for e in self.edges.iter().filter(|e| !e.disabled) {
            indegree[e.to.0 as usize] += 1;
        }
        let mut incoming: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (i, e) in self.edges.iter().enumerate() {
            if !e.disabled {
                incoming[e.to.0 as usize].push(i as u32);
            }
        }

        // Serial levelization.
        let mut remaining = indegree;
        let mut frontier: Vec<usize> = (0..n).filter(|&i| remaining[i] == 0).collect();
        let mut levels: Vec<Vec<usize>> = Vec::new();
        let mut seen = 0usize;
        while !frontier.is_empty() {
            seen += frontier.len();
            let mut next = Vec::new();
            for &i in &frontier {
                for (_, e) in self.active_out(NodeId(i as u32)) {
                    let t = e.to.0 as usize;
                    remaining[t] -= 1;
                    if remaining[t] == 0 {
                        next.push(t);
                    }
                }
            }
            levels.push(frontier);
            frontier = next;
        }
        if seen != n {
            let through = (0..n)
                .find(|&i| remaining[i] > 0)
                .map(|i| self.node_name(NodeId(i as u32)).to_owned())
                .unwrap_or_default();
            return Err(StaError::Cycle { through });
        }

        // Wavefront relaxation: each node depends only on lower levels.
        let mut arrivals = vec![0.0f64; n];
        let mut worst_pred: Vec<Option<NodeId>> = vec![None; n];
        let relax = |arr: &[f64], node: usize| -> (f64, Option<NodeId>) {
            let mut best = 0.0f64;
            let mut pred = None;
            for &eid in &incoming[node] {
                let e = &self.edges[eid as usize];
                let cand = arr[e.from.0 as usize] + corner.delay(e.delay);
                if pred.is_none() || cand > best {
                    best = cand;
                    pred = Some(e.from);
                }
            }
            (best, pred)
        };
        // Narrow wavefronts are not worth the fan-out overhead.
        const PAR_MIN_WIDTH: usize = 64;
        for level in &levels {
            if workers > 1 && level.len() >= PAR_MIN_WIDTH {
                let relaxed =
                    drd_runner::run_indexed(level.len(), workers, |k| relax(&arrivals, level[k]));
                for (k, (a, p)) in relaxed.into_iter().enumerate() {
                    arrivals[level[k]] = a;
                    worst_pred[level[k]] = p;
                }
            } else {
                for &node in level {
                    let (a, p) = relax(&arrivals, node);
                    arrivals[node] = a;
                    worst_pred[node] = p;
                }
            }
        }
        Ok(Arrivals {
            arrivals,
            worst_pred,
            names: self.nodes.iter().map(|nd| nd.name.clone()).collect(),
            endpoints: self.endpoints().collect(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphOptions;
    use drd_liberty::vlib90;
    use drd_netlist::{Conn, Module, PortDir};

    /// a → INV → INV → … (depth) → r1/D
    fn inv_chain(depth: usize) -> Module {
        let mut m = Module::new("chain");
        m.add_port("a", PortDir::Input).unwrap();
        m.add_port("clk", PortDir::Input).unwrap();
        let clk = m.find_net("clk").unwrap();
        let mut prev = m.find_net("a").unwrap();
        for i in 0..depth {
            let next = m.add_net(format!("n{i}")).unwrap();
            m.add_cell(
                format!("u{i}"),
                "INVX1",
                &[("A", Conn::Net(prev)), ("Z", Conn::Net(next))],
            )
            .unwrap();
            prev = next;
        }
        let q = m.add_net("q").unwrap();
        m.add_cell(
            "r1",
            "DFFX1",
            &[("D", Conn::Net(prev)), ("CK", Conn::Net(clk)), ("Q", Conn::Net(q))],
        )
        .unwrap();
        m
    }

    #[test]
    fn arrival_grows_with_depth() {
        let lib = vlib90::high_speed();
        let g4 = TimingGraph::build(&inv_chain(4), &lib, &GraphOptions::default()).unwrap();
        let g8 = TimingGraph::build(&inv_chain(8), &lib, &GraphOptions::default()).unwrap();
        let a4 = g4.arrivals(Corner::typical()).unwrap();
        let a8 = g8.arrivals(Corner::typical()).unwrap();
        assert!(a8.max_endpoint_arrival() > 1.9 * a4.max_endpoint_arrival());
    }

    #[test]
    fn corner_derating_scales_arrivals() {
        let lib = vlib90::high_speed();
        let g = TimingGraph::build(&inv_chain(6), &lib, &GraphOptions::default()).unwrap();
        let typical = g.arrivals(Corner::typical()).unwrap().max_endpoint_arrival();
        let worst = g.arrivals(Corner::worst()).unwrap().max_endpoint_arrival();
        let best = g.arrivals(Corner::best()).unwrap().max_endpoint_arrival();
        assert!((worst / typical - Corner::worst().delay_factor).abs() < 1e-9);
        assert!((best / typical - Corner::best().delay_factor).abs() < 1e-9);
    }

    #[test]
    fn critical_path_traceback() {
        let lib = vlib90::high_speed();
        let g = TimingGraph::build(&inv_chain(3), &lib, &GraphOptions::default()).unwrap();
        let arr = g.arrivals(Corner::typical()).unwrap();
        let path = arr.critical_path();
        // a → u0/A → u0/Z → u1/A → u1/Z → u2/A → u2/Z → r1/D
        assert_eq!(path.first().unwrap().node, "a");
        assert_eq!(path.last().unwrap().node, "r1/D");
        assert_eq!(path.len(), 8);
        // Arrivals are monotone along the path.
        for w in path.windows(2) {
            assert!(w[1].arrival >= w[0].arrival);
        }
    }

    #[test]
    fn cycle_reported_as_error() {
        let lib = vlib90::high_speed();
        let mut m = Module::new("r");
        let n0 = m.add_net("n0").unwrap();
        let n1 = m.add_net("n1").unwrap();
        m.add_cell("i0", "INVX1", &[("A", Conn::Net(n0)), ("Z", Conn::Net(n1))])
            .unwrap();
        m.add_cell("i1", "INVX1", &[("A", Conn::Net(n1)), ("Z", Conn::Net(n0))])
            .unwrap();
        let g = TimingGraph::build(&m, &lib, &GraphOptions::default()).unwrap();
        assert!(matches!(
            g.arrivals(Corner::typical()),
            Err(StaError::Cycle { .. })
        ));
    }

    #[test]
    fn parallel_wavefronts_match_serial_exactly() {
        // Same arrivals AND same worst-predecessor choices for any worker
        // count, across a batch of fuzzed netlists (wide enough to cross
        // the parallel wavefront threshold).
        let lib = vlib90::high_speed();
        let mut rng = drd_check::Rng::new(0xA11_D0CF);
        for case in 0..8 {
            let params = drd_check::netgen::NetGenParams {
                max_stages: 4,
                max_width: 6,
                max_cloud: 40,
                ..drd_check::netgen::NetGenParams::default()
            };
            let recipe = drd_check::netgen::NetRecipe::sample(&mut rng, &params);
            let m = recipe.build().unwrap();
            let g = TimingGraph::build(&m, &lib, &GraphOptions::default()).unwrap();
            let serial = g.arrivals(Corner::typical()).unwrap();
            for workers in [2usize, 3, 8] {
                let par = g.arrivals_with(Corner::typical(), workers).unwrap();
                for i in 0..g.node_count() {
                    let node = NodeId(i as u32);
                    assert_eq!(
                        serial.at(node).to_bits(),
                        par.at(node).to_bits(),
                        "case {case}, {workers} workers, node {}",
                        g.node_name(node)
                    );
                    assert_eq!(
                        serial.worst_pred[i], par.worst_pred[i],
                        "case {case}, {workers} workers, node {}",
                        g.node_name(node)
                    );
                }
            }
        }
    }

    #[test]
    fn wire_delay_adds_per_net_edge() {
        let lib = vlib90::high_speed();
        let base = TimingGraph::build(&inv_chain(4), &lib, &GraphOptions::default())
            .unwrap()
            .arrivals(Corner::typical())
            .unwrap()
            .max_endpoint_arrival();
        let opts = GraphOptions {
            wire_delay: 0.01,
            ..GraphOptions::default()
        };
        let wired = TimingGraph::build(&inv_chain(4), &lib, &opts)
            .unwrap()
            .arrivals(Corner::typical())
            .unwrap()
            .max_endpoint_arrival();
        // 5 net hops on the critical path (a→u0, u0→u1, …, u3→r1).
        assert!((wired - base - 0.05).abs() < 1e-9);
    }
}
