//! # drd-sta — static timing analysis
//!
//! A pin-level STA engine standing in for the commercial timing tool the
//! paper drives (Synopsys PrimeTime). It is used in exactly the places the
//! paper uses STA:
//!
//! * measuring the critical-path delay of each desynchronization region so
//!   the matching delay element can be sized (§3.2.5, Fig. 2.8),
//! * analyzing the *cyclic* asynchronous controller network after breaking
//!   its timing loops with timing-disabled pins (§4.6, Fig. 4.5),
//! * checking that latch setup constraints hold at a given corner.
//!
//! The engine builds a [`TimingGraph`] over cell pins and module ports,
//! detects cycles, cuts them (either at user-specified disabled pins — the
//! paper's hand-crafted controller cuts — or automatically at DFS
//! back-edges, which the paper warns may leave the critical cycle
//! unconstrained), and propagates arrival times topologically.
//!
//! ```
//! use drd_liberty::{vlib90, Corner};
//! use drd_netlist::{Conn, Module, PortDir};
//! use drd_sta::{GraphOptions, TimingGraph};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let lib = vlib90::high_speed();
//! let mut m = Module::new("t");
//! m.add_port("a", PortDir::Input)?;
//! m.add_port("z", PortDir::Output)?;
//! let a = m.find_net("a").ok_or("a")?;
//! let z = m.find_net("z").ok_or("z")?;
//! let mid = m.add_net("mid")?;
//! m.add_cell("u1", "INVX1", &[("A", Conn::Net(a)), ("Z", Conn::Net(mid))])?;
//! m.add_cell("u2", "INVX1", &[("A", Conn::Net(mid)), ("Z", Conn::Net(z))])?;
//! let graph = TimingGraph::build(&m, &lib, &GraphOptions::default())?;
//! let arrivals = graph.arrivals(Corner::typical())?;
//! assert!(arrivals.max_arrival() > 0.0);
//! # Ok(())
//! # }
//! ```

mod analysis;
mod error;
mod graph;
mod loops;

pub use analysis::{Arrivals, PathStep};
pub use error::StaError;
pub use graph::{EdgeId, EdgeKind, GraphOptions, NodeId, NodeKind, SubsetContext, TimingGraph};
pub use loops::LoopReport;
