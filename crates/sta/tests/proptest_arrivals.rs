//! Properties of arrival analysis: monotone under corner derating and
//! under netlist extension.

use proptest::prelude::*;

use drd_liberty::{vlib90, Corner};
use drd_netlist::{Conn, Module, PortDir};
use drd_sta::{GraphOptions, TimingGraph};

fn chain(kinds: &[u8]) -> Module {
    let mut m = Module::new("c");
    m.add_port("a", PortDir::Input).unwrap();
    m.add_port("clk", PortDir::Input).unwrap();
    let clk = m.find_net("clk").unwrap();
    let mut prev = m.find_net("a").unwrap();
    for (i, &k) in kinds.iter().enumerate() {
        let z = m.add_net(format!("n{i}")).unwrap();
        let gate = match k % 4 {
            0 => "INVX1",
            1 => "BUFX1",
            2 => "AND2X1",
            _ => "XOR2X1",
        };
        if k % 4 < 2 {
            m.add_cell(format!("u{i}"), gate, &[("A", Conn::Net(prev)), ("Z", Conn::Net(z))])
                .unwrap();
        } else {
            m.add_cell(
                format!("u{i}"),
                gate,
                &[("A", Conn::Net(prev)), ("B", Conn::Net(prev)), ("Z", Conn::Net(z))],
            )
            .unwrap();
        }
        prev = z;
    }
    let q = m.add_net("q").unwrap();
    m.add_cell(
        "r",
        "DFFX1",
        &[("D", Conn::Net(prev)), ("CK", Conn::Net(clk)), ("Q", Conn::Net(q))],
    )
    .unwrap();
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn corner_scaling_is_exact(kinds in proptest::collection::vec(any::<u8>(), 1..24)) {
        let lib = vlib90::high_speed();
        let g = TimingGraph::build(&chain(&kinds), &lib, &GraphOptions::default()).unwrap();
        let typ = g.arrivals(Corner::typical()).unwrap().max_endpoint_arrival();
        let worst = g.arrivals(Corner::worst()).unwrap().max_endpoint_arrival();
        prop_assert!((worst - typ * Corner::worst().delay_factor).abs() < 1e-9);
    }

    #[test]
    fn extending_a_chain_never_reduces_arrival(
        kinds in proptest::collection::vec(any::<u8>(), 2..24),
    ) {
        let lib = vlib90::high_speed();
        let shorter = TimingGraph::build(&chain(&kinds[..kinds.len() - 1]), &lib, &GraphOptions::default())
            .unwrap()
            .arrivals(Corner::typical())
            .unwrap()
            .max_endpoint_arrival();
        let longer = TimingGraph::build(&chain(&kinds), &lib, &GraphOptions::default())
            .unwrap()
            .arrivals(Corner::typical())
            .unwrap()
            .max_endpoint_arrival();
        prop_assert!(longer >= shorter - 1e-9, "{longer} >= {shorter}");
    }

    #[test]
    fn critical_path_is_monotone(kinds in proptest::collection::vec(any::<u8>(), 1..24)) {
        let lib = vlib90::high_speed();
        let g = TimingGraph::build(&chain(&kinds), &lib, &GraphOptions::default()).unwrap();
        let arr = g.arrivals(Corner::typical()).unwrap();
        let path = arr.critical_path();
        prop_assert!(!path.is_empty());
        for w in path.windows(2) {
            prop_assert!(w[1].arrival >= w[0].arrival);
        }
    }
}
