//! Properties of arrival analysis: monotone under corner derating and
//! under netlist extension.

use drd_check::{prop, Rng};
use drd_liberty::{vlib90, Corner};
use drd_netlist::{Conn, Module, PortDir};
use drd_sta::{GraphOptions, TimingGraph};

fn chain(kinds: &[u8]) -> Module {
    let mut m = Module::new("c");
    m.add_port("a", PortDir::Input).unwrap();
    m.add_port("clk", PortDir::Input).unwrap();
    let clk = m.find_net("clk").unwrap();
    let mut prev = m.find_net("a").unwrap();
    for (i, &k) in kinds.iter().enumerate() {
        let z = m.add_net(format!("n{i}")).unwrap();
        let gate = match k % 4 {
            0 => "INVX1",
            1 => "BUFX1",
            2 => "AND2X1",
            _ => "XOR2X1",
        };
        if k % 4 < 2 {
            m.add_cell(format!("u{i}"), gate, &[("A", Conn::Net(prev)), ("Z", Conn::Net(z))])
                .unwrap();
        } else {
            m.add_cell(
                format!("u{i}"),
                gate,
                &[("A", Conn::Net(prev)), ("B", Conn::Net(prev)), ("Z", Conn::Net(z))],
            )
            .unwrap();
        }
        prev = z;
    }
    let q = m.add_net("q").unwrap();
    m.add_cell(
        "r",
        "DFFX1",
        &[("D", Conn::Net(prev)), ("CK", Conn::Net(clk)), ("Q", Conn::Net(q))],
    )
    .unwrap();
    m
}

fn kinds_strategy(min_len: usize) -> impl Fn(&mut Rng) -> Vec<u8> {
    move |rng| {
        let len = rng.range(min_len, 24);
        rng.bytes(len)
    }
}

#[test]
fn corner_scaling_is_exact() {
    let lib = vlib90::high_speed();
    prop(48, kinds_strategy(1), |kinds: &Vec<u8>| {
        if kinds.is_empty() {
            return Ok(());
        }
        let g = TimingGraph::build(&chain(kinds), &lib, &GraphOptions::default())
            .map_err(|e| e.to_string())?;
        let typ = g
            .arrivals(Corner::typical())
            .map_err(|e| e.to_string())?
            .max_endpoint_arrival();
        let worst = g
            .arrivals(Corner::worst())
            .map_err(|e| e.to_string())?
            .max_endpoint_arrival();
        let expected = typ * Corner::worst().delay_factor;
        if (worst - expected).abs() < 1e-9 {
            Ok(())
        } else {
            Err(format!("worst {worst} != typical×factor {expected}"))
        }
    });
}

#[test]
fn extending_a_chain_never_reduces_arrival() {
    let lib = vlib90::high_speed();
    prop(48, kinds_strategy(2), |kinds: &Vec<u8>| {
        if kinds.len() < 2 {
            return Ok(());
        }
        let arrival = |ks: &[u8]| -> Result<f64, String> {
            Ok(TimingGraph::build(&chain(ks), &lib, &GraphOptions::default())
                .map_err(|e| e.to_string())?
                .arrivals(Corner::typical())
                .map_err(|e| e.to_string())?
                .max_endpoint_arrival())
        };
        let shorter = arrival(&kinds[..kinds.len() - 1])?;
        let longer = arrival(kinds)?;
        if longer >= shorter - 1e-9 {
            Ok(())
        } else {
            Err(format!("{longer} < {shorter}"))
        }
    });
}

#[test]
fn critical_path_is_monotone() {
    let lib = vlib90::high_speed();
    prop(48, kinds_strategy(1), |kinds: &Vec<u8>| {
        if kinds.is_empty() {
            return Ok(());
        }
        let g = TimingGraph::build(&chain(kinds), &lib, &GraphOptions::default())
            .map_err(|e| e.to_string())?;
        let arr = g.arrivals(Corner::typical()).map_err(|e| e.to_string())?;
        let path = arr.critical_path();
        if path.is_empty() {
            return Err("empty critical path".into());
        }
        for w in path.windows(2) {
            if w[1].arrival < w[0].arrival {
                return Err(format!("arrival drops: {} -> {}", w[0].arrival, w[1].arrival));
            }
        }
        Ok(())
    });
}
