//! Flip-flop substitution (§2.3, §3.2.3, Fig. 3.1).
//!
//! Every flip-flop is replaced by a master/slave pair of the library's
//! simplest latch, plus the extra gates its features require (§3.1.2):
//!
//! * scan flip-flops get a multiplexer before the master (Fig. 3.1a),
//! * synchronous reset/set get an AND/OR on the data path (Fig. 3.1b),
//! * asynchronous set/reset gate both data paths *and* both enables, so
//!   the latches open during the assertion and the value passes
//!   (Fig. 3.1c),
//! * clock-gated flip-flops gate both latch enables (Fig. 3.1d).
//!
//! The master latch is enabled by the region's master enable net, the
//! slave by the slave enable net — both driven later by the region's
//! controller pair.

use drd_liberty::gatefile::{ControlPin, FfRule, Gatefile};
use drd_liberty::Library;
use drd_netlist::{CellId, Conn, Module, NetId};

use crate::{DegradeReason, DesyncError};

/// Suffixes of cells synthesized by the substitution around the latch
/// pair. For area accounting these count as *sequential* logic, as in the
/// paper's tables: "The combinational logic overhead because of the scan
/// flip-flops substitution is included in the sequential logic overhead"
/// (§5.3.1) — the composite latch is one sequential module (§3.1.2).
pub const COMPOSITE_SUFFIXES: [&str; 19] = [
    "_lm", "_ls", "_qn", "_smx", "_srg", "_sri", "_srn", "_ssg", "_ssi",
    "_gme", "_gse", "_aci", "_acn", "_acd", "_acm", "_acs", "_api", "_apd",
    "_asd",
];

/// True if `cell_name` was synthesized by flip-flop substitution (part of
/// a composite latch).
pub fn is_substitution_cell(cell_name: &str) -> bool {
    // Suffix may carry a uniquifying counter: `r1_smx` or `r1_smx_42`.
    let base = match cell_name.rfind('_') {
        Some(i) if cell_name[i + 1..].chars().all(|c| c.is_ascii_digit()) => &cell_name[..i],
        _ => cell_name,
    };
    COMPOSITE_SUFFIXES.iter().any(|s| base.ends_with(s))
        || ["_apm", "_aps"].iter().any(|s| base.ends_with(s))
}

/// Statistics from a substitution run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SubstitutionReport {
    /// Flip-flops substituted.
    pub substituted: usize,
    /// Extra combinational gates inserted (muxes, and/or/inv).
    pub extra_gates: usize,
}

/// Pre-substitution validation of one region's sequential cells: returns
/// the reason the region cannot be desynchronized, or `None` when every
/// substitution target is supported.
///
/// This mirrors exactly the checks [`substitute_ffs`] performs, but runs
/// them *before* any netlist mutation — substitution removes the original
/// flip-flop first, so graceful per-region degradation must decide while
/// the region is still intact.
pub fn region_degrade_reason(
    module: &Module,
    lib: &Library,
    gatefile: &Gatefile,
    seq_cells: &[String],
) -> Option<DegradeReason> {
    for name in seq_cells {
        let Some(cell_id) = module.find_cell(name) else {
            continue; // already substituted or removed
        };
        let kind_name = module.cell(cell_id).kind_name();
        let Some(lc) = lib.cell(kind_name) else {
            return Some(DegradeReason::UnknownCell {
                kind: kind_name.to_owned(),
            });
        };
        if lc.class() != drd_liberty::CellClass::FlipFlop {
            continue; // latches stay; not a substitution target
        }
        if gatefile.rule(kind_name).is_none() {
            return Some(DegradeReason::UnsupportedFf {
                kind: kind_name.to_owned(),
            });
        }
    }
    None
}

/// Substitutes every flip-flop named in `seq_cells` by a latch pair
/// enabled by `gm` (master) and `gs` (slave).
///
/// # Errors
/// Returns [`DesyncError::NoRule`] if the gatefile lacks a rule for some
/// flip-flop, and propagates netlist errors.
pub fn substitute_ffs(
    module: &mut Module,
    lib: &Library,
    gatefile: &Gatefile,
    seq_cells: &[String],
    gm: NetId,
    gs: NetId,
) -> Result<SubstitutionReport, DesyncError> {
    let mut report = SubstitutionReport::default();
    for name in seq_cells {
        let Some(cell_id) = module.find_cell(name) else {
            continue; // already substituted or removed
        };
        let kind_name = module.cell(cell_id).kind_name().to_owned();
        let Some(lc) = lib.cell(&kind_name) else {
            return Err(DesyncError::UnknownCell { name: kind_name });
        };
        match lc.class() {
            drd_liberty::CellClass::FlipFlop => {}
            // Latches in a latch-based design stay; other cells are not
            // substitution targets.
            _ => continue,
        }
        let rule = gatefile
            .rule(&kind_name)
            .ok_or_else(|| DesyncError::NoRule {
                cell: kind_name.clone(),
            })?
            .clone();
        let gates = substitute_one(module, &rule, cell_id, gm, gs)?;
        report.substituted += 1;
        report.extra_gates += gates;
    }
    Ok(report)
}

/// Substitutes a single flip-flop; returns the number of extra gates.
fn substitute_one(
    module: &mut Module,
    rule: &FfRule,
    cell_id: CellId,
    gm: NetId,
    gs: NetId,
) -> Result<usize, DesyncError> {
    let name = module.cell(cell_id).name.to_owned();
    let mut extra = 0usize;

    // Snapshot the pin connections before the cell is removed; a cloned
    // symbol table (refcount bumps) keeps name lookups alive while the
    // module is mutated below.
    let pins: Vec<(drd_netlist::Symbol, Conn)> = module.cell_pins(cell_id).to_vec();
    let syms = module.symbols().clone();
    let pin_conn = move |pin: &str| -> Conn {
        syms.lookup(pin)
            .and_then(|s| pins.iter().find(|&&(p, _)| p == s).map(|&(_, c)| c))
            .unwrap_or(Conn::Open)
    };
    let f = &rule.features;

    module.remove_cell(cell_id);

    // Helper: insert a gate returning its output net.
    let gate = |module: &mut Module,
                    extra: &mut usize,
                    kind: &str,
                    suffix: &str,
                    pins: &[(&str, Conn)]|
     -> Result<NetId, DesyncError> {
        let out = module.add_net_auto(&format!("{name}__{suffix}"));
        let mut all: Vec<(&str, Conn)> = pins.to_vec();
        all.push(("Z", Conn::Net(out)));
        let cname = module.unique_cell_name(&format!("{name}_{suffix}"));
        module.add_cell(cname, kind, &all)?;
        *extra += 1;
        Ok(out)
    };
    // Helper: active-high assertion signal of a control pin.
    let assert_net = |module: &mut Module,
                          extra: &mut usize,
                          ctrl: &ControlPin,
                          suffix: &str|
     -> Result<Conn, DesyncError> {
        let conn = pin_conn(&ctrl.pin);
        if ctrl.active_low {
            match conn {
                Conn::Net(n) => Ok(Conn::Net(gate(
                    module,
                    extra,
                    "INVX1",
                    suffix,
                    &[("A", Conn::Net(n))],
                )?)),
                Conn::Const0 => Ok(Conn::Const1),
                _ => Ok(Conn::Const0),
            }
        } else {
            Ok(conn)
        }
    };

    // ---- data path ---------------------------------------------------
    let mut d: Conn = f
        .data
        .as_deref()
        .map(&pin_conn)
        .unwrap_or(Conn::Open);

    // Scan mux (Fig. 3.1a).
    if let Some(scan) = &f.scan {
        let si = pin_conn(&scan.scan_in);
        let se = pin_conn(&scan.scan_enable);
        d = Conn::Net(gate(
            module,
            &mut extra,
            "MUX2X1",
            "smx",
            &[("A", d), ("B", si), ("S", se)],
        )?);
    }
    // Synchronous reset: data AND not-asserted (Fig. 3.1b).
    if let Some(sr) = &f.sync_reset {
        let enable_side = if sr.active_low {
            pin_conn(&sr.pin) // `d & RN`
        } else {
            // active-high reset: `d & !R`
            let a = assert_net(module, &mut extra, &ControlPin {
                pin: sr.pin.clone(),
                active_low: false,
            }, "sri")?;
            match a {
                Conn::Net(n) => Conn::Net(gate(
                    module,
                    &mut extra,
                    "INVX1",
                    "srn",
                    &[("A", Conn::Net(n))],
                )?),
                Conn::Const0 => Conn::Const1,
                _ => Conn::Const0,
            }
        };
        d = Conn::Net(gate(
            module,
            &mut extra,
            "AND2X1",
            "srg",
            &[("A", d), ("B", enable_side)],
        )?);
    }
    // Synchronous set: data OR asserted.
    if let Some(ss) = &f.sync_set {
        let a = assert_net(module, &mut extra, ss, "ssi")?;
        d = Conn::Net(gate(
            module,
            &mut extra,
            "OR2X1",
            "ssg",
            &[("A", d), ("B", a)],
        )?);
    }

    // ---- enables -------------------------------------------------------
    let mut gm_eff = Conn::Net(gm);
    let mut gs_eff = Conn::Net(gs);
    if let Some(en_pin) = &f.clock_enable {
        // Fig. 3.1d: gate the latch-enable signals.
        let en = pin_conn(en_pin);
        gm_eff = Conn::Net(gate(
            module,
            &mut extra,
            "AND2X1",
            "gme",
            &[("A", gm_eff), ("B", en)],
        )?);
        gs_eff = Conn::Net(gate(
            module,
            &mut extra,
            "AND2X1",
            "gse",
            &[("A", gs_eff), ("B", en)],
        )?);
    }

    // Asynchronous clear/preset (Fig. 3.1c): open the latches during the
    // assertion and force the data value through.
    let mut slave_d_override: Option<(Conn, bool)> = None; // (assert, set?)
    if let Some(ac) = &f.async_clear {
        let a = assert_net(module, &mut extra, ac, "aci")?;
        let an = match a {
            Conn::Net(n) => Conn::Net(gate(
                module,
                &mut extra,
                "INVX1",
                "acn",
                &[("A", Conn::Net(n))],
            )?),
            Conn::Const0 => Conn::Const1,
            _ => Conn::Const0,
        };
        d = Conn::Net(gate(
            module,
            &mut extra,
            "AND2X1",
            "acd",
            &[("A", d), ("B", an)],
        )?);
        gm_eff = Conn::Net(gate(
            module,
            &mut extra,
            "OR2X1",
            "acm",
            &[("A", gm_eff), ("B", a)],
        )?);
        gs_eff = Conn::Net(gate(
            module,
            &mut extra,
            "OR2X1",
            "acs",
            &[("A", gs_eff), ("B", a)],
        )?);
        slave_d_override = Some((an, false));
    }
    if let Some(ap) = &f.async_preset {
        let a = assert_net(module, &mut extra, ap, "api")?;
        d = Conn::Net(gate(
            module,
            &mut extra,
            "OR2X1",
            "apd",
            &[("A", d), ("B", a)],
        )?);
        gm_eff = Conn::Net(gate(
            module,
            &mut extra,
            "OR2X1",
            "apm",
            &[("A", gm_eff), ("B", a)],
        )?);
        gs_eff = Conn::Net(gate(
            module,
            &mut extra,
            "OR2X1",
            "aps",
            &[("A", gs_eff), ("B", a)],
        )?);
        slave_d_override = Some((a, true));
    }

    // ---- the latch pair --------------------------------------------------
    let qm = module.add_net_auto(&format!("{name}__qm"));
    let cname = module.unique_cell_name(&format!("{name}_lm"));
    module.add_cell(
        cname,
        rule.latch_cell.clone(),
        &[
            (rule.latch_d.as_str(), d),
            (rule.latch_g.as_str(), gm_eff),
            (rule.latch_q.as_str(), Conn::Net(qm)),
        ],
    )?;

    // Slave data, possibly gated for async controls.
    let slave_d = match slave_d_override {
        None => Conn::Net(qm),
        Some((ctrl, set)) => {
            let kind = if set { "OR2X1" } else { "AND2X1" };
            Conn::Net(gate(
                module,
                &mut extra,
                kind,
                "asd",
                &[("A", Conn::Net(qm)), ("B", ctrl)],
            )?)
        }
    };

    let q_conn = pin_conn(&rule.q_pin);
    let qn_conn = rule.qn_pin.as_deref().map(&pin_conn).unwrap_or(Conn::Open);
    let qs = match q_conn {
        Conn::Net(n) => n,
        _ => module.add_net_auto(&format!("{name}__qs")),
    };
    let cname = module.unique_cell_name(&format!("{name}_ls"));
    module.add_cell(
        cname,
        rule.latch_cell.clone(),
        &[
            (rule.latch_d.as_str(), slave_d),
            (rule.latch_g.as_str(), gs_eff),
            (rule.latch_q.as_str(), Conn::Net(qs)),
        ],
    )?;
    if let Conn::Net(qn_net) = qn_conn {
        let cname = module.unique_cell_name(&format!("{name}_qn"));
        module.add_cell(
            cname,
            "INVX1",
            &[("A", Conn::Net(qs)), ("Z", Conn::Net(qn_net))],
        )?;
        extra += 1;
    }
    Ok(extra)
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::panic)]
    use super::*;
    use drd_liberty::vlib90;
    use drd_netlist::PortDir;

    fn setup() -> (Module, Library, Gatefile, NetId, NetId) {
        let lib = vlib90::high_speed();
        let gf = Gatefile::from_library(&lib).unwrap();
        let mut m = Module::new("t");
        m.add_port("clk", PortDir::Input).unwrap();
        m.add_port("d", PortDir::Input).unwrap();
        m.add_port("q", PortDir::Output).unwrap();
        let gm = m.add_net("gm1").unwrap();
        let gs = m.add_net("gs1").unwrap();
        (m, lib, gf, gm, gs)
    }

    #[test]
    fn plain_dff_becomes_latch_pair() {
        let (mut m, lib, gf, gm, gs) = setup();
        let d = m.find_net("d").unwrap();
        let clk = m.find_net("clk").unwrap();
        let q = m.find_net("q").unwrap();
        m.add_cell(
            "r1",
            "DFFX1",
            &[("D", Conn::Net(d)), ("CK", Conn::Net(clk)), ("Q", Conn::Net(q))],
        )
        .unwrap();
        let rep = substitute_ffs(&mut m, &lib, &gf, &["r1".into()], gm, gs).unwrap();
        assert_eq!(rep.substituted, 1);
        assert_eq!(rep.extra_gates, 0);
        assert!(m.find_cell("r1").is_none());
        let lm = m.find_cell("r1_lm").expect("master latch");
        let ls = m.find_cell("r1_ls").expect("slave latch");
        assert_eq!(m.cell(lm).kind_name(), "LDX1");
        assert_eq!(m.cell(lm).pin("G"), Some(Conn::Net(gm)));
        assert_eq!(m.cell(ls).pin("G"), Some(Conn::Net(gs)));
        // Slave output drives the original Q net.
        assert_eq!(m.cell(ls).pin("Q"), Some(Conn::Net(q)));
        // Master data is the original D.
        assert_eq!(m.cell(lm).pin("D"), Some(Conn::Net(d)));
    }

    #[test]
    fn qn_output_gets_an_inverter() {
        let (mut m, lib, gf, gm, gs) = setup();
        let d = m.find_net("d").unwrap();
        let clk = m.find_net("clk").unwrap();
        let qn = m.add_net("qn").unwrap();
        m.add_cell(
            "r1",
            "DFFX1",
            &[("D", Conn::Net(d)), ("CK", Conn::Net(clk)), ("QN", Conn::Net(qn))],
        )
        .unwrap();
        let rep = substitute_ffs(&mut m, &lib, &gf, &["r1".into()], gm, gs).unwrap();
        assert_eq!(rep.extra_gates, 1);
        let inv = m.find_cell("r1_qn").expect("qn inverter");
        assert_eq!(m.cell(inv).pin("Z"), Some(Conn::Net(qn)));
    }

    #[test]
    fn scan_ff_gets_mux(){
        let (mut m, lib, gf, gm, gs) = setup();
        let d = m.find_net("d").unwrap();
        let clk = m.find_net("clk").unwrap();
        let q = m.find_net("q").unwrap();
        let si = m.add_net("si").unwrap();
        let se = m.add_net("se").unwrap();
        m.add_cell(
            "r1",
            "SDFFX1",
            &[
                ("D", Conn::Net(d)),
                ("SI", Conn::Net(si)),
                ("SE", Conn::Net(se)),
                ("CK", Conn::Net(clk)),
                ("Q", Conn::Net(q)),
            ],
        )
        .unwrap();
        let rep = substitute_ffs(&mut m, &lib, &gf, &["r1".into()], gm, gs).unwrap();
        assert_eq!(rep.extra_gates, 1);
        let mux = m.find_cell("r1_smx").expect("scan mux");
        assert_eq!(m.cell(mux).kind_name(), "MUX2X1");
        assert_eq!(m.cell(mux).pin("B"), Some(Conn::Net(si)));
        assert_eq!(m.cell(mux).pin("S"), Some(Conn::Net(se)));
        // The mux feeds the master latch.
        let lm = m.find_cell("r1_lm").unwrap();
        let mux_out = m.cell(mux).pin("Z").unwrap();
        assert_eq!(m.cell(lm).pin("D"), Some(mux_out));
    }

    #[test]
    fn sync_reset_gets_and_gate() {
        let (mut m, lib, gf, gm, gs) = setup();
        let d = m.find_net("d").unwrap();
        let clk = m.find_net("clk").unwrap();
        let q = m.find_net("q").unwrap();
        let rn = m.add_net("rn").unwrap();
        m.add_cell(
            "r1",
            "DFFRX1",
            &[
                ("D", Conn::Net(d)),
                ("RN", Conn::Net(rn)),
                ("CK", Conn::Net(clk)),
                ("Q", Conn::Net(q)),
            ],
        )
        .unwrap();
        let rep = substitute_ffs(&mut m, &lib, &gf, &["r1".into()], gm, gs).unwrap();
        assert_eq!(rep.extra_gates, 1);
        let and = m.find_cell("r1_srg").expect("sync reset AND");
        assert_eq!(m.cell(and).pin("B"), Some(Conn::Net(rn)));
    }

    #[test]
    fn async_clear_gates_data_and_enables() {
        let (mut m, lib, gf, gm, gs) = setup();
        let d = m.find_net("d").unwrap();
        let clk = m.find_net("clk").unwrap();
        let q = m.find_net("q").unwrap();
        let cdn = m.add_net("cdn").unwrap();
        m.add_cell(
            "r1",
            "DFFARX1",
            &[
                ("D", Conn::Net(d)),
                ("CDN", Conn::Net(cdn)),
                ("CK", Conn::Net(clk)),
                ("Q", Conn::Net(q)),
            ],
        )
        .unwrap();
        let rep = substitute_ffs(&mut m, &lib, &gf, &["r1".into()], gm, gs).unwrap();
        assert!(rep.extra_gates >= 4, "gates: {}", rep.extra_gates);
        // Enables are gated with ORs, so the latches open on assertion.
        let lm = m.find_cell("r1_lm").unwrap();
        assert_ne!(m.cell(lm).pin("G"), Some(Conn::Net(gm)));
        let or_m = m.find_cell("r1_acm").expect("master enable OR");
        assert_eq!(m.cell(or_m).pin("A"), Some(Conn::Net(gm)));
    }

    #[test]
    fn clock_enable_gates_both_enables() {
        let (mut m, lib, gf, gm, gs) = setup();
        let d = m.find_net("d").unwrap();
        let clk = m.find_net("clk").unwrap();
        let q = m.find_net("q").unwrap();
        let en = m.add_net("en").unwrap();
        m.add_cell(
            "r1",
            "DFFEX1",
            &[
                ("D", Conn::Net(d)),
                ("EN", Conn::Net(en)),
                ("CK", Conn::Net(clk)),
                ("Q", Conn::Net(q)),
            ],
        )
        .unwrap();
        let rep = substitute_ffs(&mut m, &lib, &gf, &["r1".into()], gm, gs).unwrap();
        assert_eq!(rep.extra_gates, 2);
        let gme = m.find_cell("r1_gme").expect("master enable AND");
        let gse = m.find_cell("r1_gse").expect("slave enable AND");
        assert_eq!(m.cell(gme).pin("B"), Some(Conn::Net(en)));
        assert_eq!(m.cell(gse).pin("B"), Some(Conn::Net(en)));
    }

    /// End-to-end behavioural check: a substituted plain DFF driven by
    /// non-overlapping master/slave enables behaves like the original
    /// flip-flop (same captured sequence).
    #[test]
    fn latch_pair_behaves_like_ff() {
        use drd_liberty::Lv;
        use drd_sim::{SimOptions, Simulator};

        let lib = vlib90::high_speed();
        let gf = Gatefile::from_library(&lib).unwrap();
        let build = |substitute: bool| -> drd_netlist::Design {
            let mut m = Module::new("t");
            m.add_port("clk", PortDir::Input).unwrap();
            m.add_port("gm", PortDir::Input).unwrap();
            m.add_port("gs", PortDir::Input).unwrap();
            m.add_port("d", PortDir::Input).unwrap();
            m.add_port("q", PortDir::Output).unwrap();
            let d = m.find_net("d").unwrap();
            let clk = m.find_net("clk").unwrap();
            let q = m.find_net("q").unwrap();
            m.add_cell(
                "r1",
                "DFFX1",
                &[("D", Conn::Net(d)), ("CK", Conn::Net(clk)), ("Q", Conn::Net(q))],
            )
            .unwrap();
            if substitute {
                let gm = m.find_net("gm").unwrap();
                let gs = m.find_net("gs").unwrap();
                substitute_ffs(&mut m, &lib, &gf, &["r1".into()], gm, gs).unwrap();
            }
            let mut design = drd_netlist::Design::new();
            design.insert(m);
            design
        };

        // Reference: flip-flop clocked normally.
        let mut reference = Simulator::new(&build(false), &lib, SimOptions::default()).unwrap();
        reference.poke("clk", Lv::Zero).unwrap();
        let data = [Lv::One, Lv::Zero, Lv::Zero, Lv::One, Lv::One];
        for (i, v) in data.iter().enumerate() {
            let t0 = 10.0 * i as f64;
            reference.poke_at("d", *v, t0 + 1.0).unwrap();
            reference.poke_at("clk", Lv::One, t0 + 5.0).unwrap();
            reference.poke_at("clk", Lv::Zero, t0 + 8.0).unwrap();
        }
        reference.run_for(60.0);

        // DUT: latch pair with non-overlapping enables; the slave closes
        // where the flip-flop's rising edge was.
        let mut dut = Simulator::new(&build(true), &lib, SimOptions::default()).unwrap();
        dut.poke("gm", Lv::Zero).unwrap();
        dut.poke("gs", Lv::Zero).unwrap();
        for (i, v) in data.iter().enumerate() {
            let t0 = 10.0 * i as f64;
            dut.poke_at("d", *v, t0 + 1.0).unwrap();
            // Master transparent while clock low, slave pulses after.
            dut.poke_at("gm", Lv::One, t0 + 2.0).unwrap();
            dut.poke_at("gm", Lv::Zero, t0 + 5.0).unwrap();
            dut.poke_at("gs", Lv::One, t0 + 6.0).unwrap();
            dut.poke_at("gs", Lv::Zero, t0 + 8.0).unwrap();
        }
        dut.run_for(60.0);

        let ref_seq = reference.captures().sequence("r1").unwrap();
        let dut_seq = dut.captures().sequence("r1_ls").unwrap();
        assert_eq!(ref_seq, data.to_vec());
        assert_eq!(dut_seq, data.to_vec());
    }
}
