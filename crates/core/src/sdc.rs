//! Backend timing-constraint generation (§4.4–§4.6, Figs. 4.2/4.5).
//!
//! The desynchronized circuit has the same datapath as its synchronous
//! counterpart, but it is a latch design with an asynchronous controller
//! network, so its constraints are stricter:
//!
//! * the original clock becomes two non-overlapping master/slave clocks
//!   whose source pins are the controllers' latch-enable drivers
//!   (Fig. 4.2) — the backend then optimizes the datapath exactly as it
//!   would the synchronous version (Fig. 4.3);
//! * the controller timing loops are broken at specific timing-disabled
//!   pins, keeping the critical cycle constrained (Fig. 4.5);
//! * controller gates are `size_only` so re-synthesis cannot introduce
//!   hazards (§4.6.2);
//! * delay-element paths get min/max delay constraints so timing-driven
//!   P&R preserves the matching.

use std::fmt::Write as _;

use crate::controller;
use crate::network::NetworkReport;

/// Inputs for SDC generation.
#[derive(Debug, Clone)]
pub struct SdcSpec {
    /// Original synchronous clock period (ns).
    pub period_ns: f64,
    /// Original clock port name.
    pub clock_port: String,
    /// Controller instance names per region (from
    /// [`NetworkReport::controller_instances`]).
    pub controllers: Vec<(String, String)>,
    /// Delay-element instance names and their minimum matched delay (ns).
    pub delay_elements: Vec<(String, f64)>,
    /// Regions left synchronous by graceful degradation. When non-empty,
    /// the original clock is emitted as a *real* clock (it still drives
    /// the degraded regions' flip-flops) and declared asynchronous to the
    /// ClkM/ClkS latch clocks — every degraded-region boundary is a
    /// clock-domain crossing the backend must treat as such.
    pub degraded: Vec<String>,
}

/// Renders a netlist name as a safe `get_ports`/`get_pins`/`get_cells`
/// argument.
///
/// Netlist names are not Tcl-safe: import keeps the bus brackets of escaped
/// identifiers (`\clk[0] ` becomes `clk[0]`), and `[...]` outside braces is
/// Tcl command substitution. Bracing fixes every name except those
/// containing brace or backslash characters, which switch to
/// backslash-escaping (braces would not nest).
fn tcl_arg(name: &str) -> String {
    if !name.contains(['{', '}', '\\']) {
        return format!("{{{name}}}");
    }
    let mut out = String::with_capacity(name.len() + 4);
    for c in name.chars() {
        if matches!(c, '{' | '}' | '\\' | '[' | ']' | '$' | '"' | ';' | ' ' | '\t') {
            out.push('\\');
        }
        out.push(c);
    }
    out
}

/// Generates the SDC text.
pub fn generate(spec: &SdcSpec) -> String {
    generate_with(spec, 1).0
}

/// [`generate`] with an explicit worker count.
///
/// The per-controller constraint fragments (loop breaking and `size_only`)
/// fan out one task per controlled region; fragments are concatenated
/// serially in region-index order, so the text is byte-identical for every
/// worker count. Returns the SDC text plus the per-region fragment wall
/// time in nanoseconds.
pub fn generate_with(spec: &SdcSpec, workers: usize) -> (String, Vec<u128>) {
    let mut out = String::new();
    let p = spec.period_ns;
    let _ = writeln!(out, "# drdesync generated constraints");
    let _ = writeln!(
        out,
        "# original: create_clock -name \"Clk\" -period {p:.2} -waveform {{0 {:.2}}} [get_ports {}]",
        p / 2.0,
        tcl_arg(&spec.clock_port)
    );
    // Fig. 4.2: the falling edge of the master and the rising edge of the
    // slave coincide with the original rising edge.
    let m_rise = p * 5.0 / 12.0;
    let s_fall = p * 7.0 / 6.0;
    let _ = writeln!(
        out,
        "create_clock -name \"ClkM\" -period {p:.2} -waveform {{{m_rise:.2} {p:.2}}} \
         [get_pins {{*_ctlm/u_g/Z}}]"
    );
    let _ = writeln!(
        out,
        "create_clock -name \"ClkS\" -period {p:.2} -waveform {{{p:.2} {s_fall:.2}}} \
         [get_pins {{*_ctls/u_g/Z}}]"
    );
    out.push('\n');

    if !spec.degraded.is_empty() {
        let _ = writeln!(
            out,
            "# degraded regions stay synchronous — clock-domain crossings"
        );
        let _ = writeln!(
            out,
            "create_clock -name \"Clk\" -period {p:.2} -waveform {{0 {:.2}}} [get_ports {}]",
            p / 2.0,
            tcl_arg(&spec.clock_port)
        );
        let _ = writeln!(
            out,
            "set_clock_groups -asynchronous -group {{Clk}} -group {{ClkM ClkS}}"
        );
        for region in &spec.degraded {
            let _ = writeln!(out, "# region `{region}` left on Clk");
        }
        out.push('\n');
    }

    // Per-controller fragments, built in parallel and concatenated in
    // region-index order.
    let fragments = drd_runner::run_indexed(spec.controllers.len(), workers, |i| {
        let start = std::time::Instant::now();
        let (master, slave) = &spec.controllers[i];
        let mut disable = String::new();
        let mut size_only = String::new();
        for inst in [master, slave] {
            if inst.is_empty() {
                continue;
            }
            for (cell, pin) in controller::disabled_pins() {
                let _ = writeln!(
                    disable,
                    "set_disable_timing [get_pins {}]",
                    tcl_arg(&format!("{inst}/{cell}/{pin}"))
                );
            }
            let _ = writeln!(
                size_only,
                "set_size_only [get_cells {}]",
                tcl_arg(&format!("{inst}/*"))
            );
        }
        (disable, size_only, start.elapsed().as_nanos())
    });

    let _ = writeln!(out, "# controller loop breaking (Fig. 4.5)");
    for (disable, _, _) in &fragments {
        out.push_str(disable);
    }
    out.push('\n');

    let _ = writeln!(out, "# allow only safe optimizations (§4.6.2)");
    for (_, size_only, _) in &fragments {
        out.push_str(size_only);
    }
    out.push('\n');

    let _ = writeln!(out, "# matched delay elements: preserve minimum delays");
    for (inst, min_delay) in &spec.delay_elements {
        let _ = writeln!(
            out,
            "set_min_delay {min_delay:.3} -from [get_pins {}] -to [get_pins {}]",
            tcl_arg(&format!("{inst}/in1")),
            tcl_arg(&format!("{inst}/out1"))
        );
        let _ = writeln!(out, "set_dont_touch [get_cells {}]", tcl_arg(inst));
    }
    let region_wall_ns = fragments.into_iter().map(|(_, _, w)| w).collect();
    (out, region_wall_ns)
}

/// Convenience: builds the [`SdcSpec`] from a network report.
pub fn spec_from_report(
    period_ns: f64,
    clock_port: &str,
    report: &NetworkReport,
    delem_min_delays: &[(String, f64)],
    degraded: &[String],
) -> SdcSpec {
    SdcSpec {
        period_ns,
        clock_port: clock_port.to_owned(),
        controllers: report
            .controller_instances
            .iter()
            .filter(|(m, _)| !m.is_empty())
            .cloned()
            .collect(),
        delay_elements: delem_min_delays.to_vec(),
        degraded: degraded.to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SdcSpec {
        SdcSpec {
            period_ns: 2.4,
            clock_port: "clk".into(),
            controllers: vec![("drd_g1_ctlm".into(), "drd_g1_ctls".into())],
            delay_elements: vec![("drd_g1_delem".into(), 0.84)],
            degraded: Vec::new(),
        }
    }

    #[test]
    fn clock_transformation_matches_figure_4_2() {
        let sdc = generate(&sample());
        assert!(sdc.contains("create_clock -name \"ClkM\" -period 2.40 -waveform {1.00 2.40}"));
        assert!(sdc.contains("create_clock -name \"ClkS\" -period 2.40 -waveform {2.40 2.80}"));
        assert!(sdc.contains("[get_pins {*_ctlm/u_g/Z}]"));
    }

    #[test]
    fn loop_breaking_and_size_only() {
        let sdc = generate(&sample());
        assert!(sdc.contains("set_disable_timing [get_pins {drd_g1_ctlm/u_nro/A}]"));
        assert!(sdc.contains("set_disable_timing [get_pins {drd_g1_ctls/u_nro/A}]"));
        assert!(sdc.contains("set_size_only [get_cells {drd_g1_ctlm/*}]"));
    }

    #[test]
    fn delay_elements_constrained() {
        let sdc = generate(&sample());
        assert!(sdc.contains("set_min_delay 0.840"));
        assert!(sdc.contains("set_dont_touch [get_cells {drd_g1_delem}]"));
    }

    #[test]
    fn clean_spec_emits_no_cdc_section() {
        let sdc = generate(&sample());
        assert!(!sdc.contains("set_clock_groups"), "{sdc}");
        assert!(
            !sdc.lines().any(|l| l.starts_with("create_clock -name \"Clk\"")),
            "{sdc}"
        );
    }

    #[test]
    fn bracketed_clock_port_is_braced_in_every_get_ports() {
        // Escaped bus-bit identifiers keep their brackets through import
        // (`\clk[0] ` -> `clk[0]`); unbraced, `[0]` is Tcl command
        // substitution.
        let mut spec = sample();
        spec.clock_port = "clk[0]".into();
        spec.degraded = vec!["g2".into()];
        let sdc = generate(&spec);
        assert!(sdc.contains("[get_ports {clk[0]}]"), "{sdc}");
        assert!(!sdc.contains("[get_ports clk[0]]"), "{sdc}");
    }

    #[test]
    fn brace_and_backslash_names_fall_back_to_backslash_escaping() {
        assert_eq!(tcl_arg("clk"), "{clk}");
        assert_eq!(tcl_arg("clk[0]"), "{clk[0]}");
        assert_eq!(tcl_arg("a{b"), "a\\{b");
        assert_eq!(tcl_arg("a\\b[1]"), "a\\\\b\\[1\\]");
    }

    #[test]
    fn parallel_generation_is_byte_identical_to_serial() {
        let mut spec = sample();
        spec.controllers = (1..6)
            .map(|i| (format!("drd_g{i}_ctlm"), format!("drd_g{i}_ctls")))
            .collect();
        let serial = generate(&spec);
        for workers in [2, 3, 8] {
            let (par, walls) = generate_with(&spec, workers);
            assert_eq!(serial, par, "workers={workers}");
            assert_eq!(walls.len(), spec.controllers.len());
        }
    }

    #[test]
    fn degraded_spec_declares_clock_domain_crossing() {
        let mut spec = sample();
        spec.degraded = vec!["g2".into()];
        let sdc = generate(&spec);
        assert!(
            sdc.contains("create_clock -name \"Clk\" -period 2.40 -waveform {0 1.20} [get_ports {clk}]"),
            "{sdc}"
        );
        assert!(
            sdc.contains("set_clock_groups -asynchronous -group {Clk} -group {ClkM ClkS}"),
            "{sdc}"
        );
        assert!(sdc.contains("region `g2` left on Clk"), "{sdc}");
    }
}
