//! Control-network insertion (§2.4.2, §2.4.5, §3.2.6, Figs. 2.7/2.11).
//!
//! Every region gets a master/slave pair of semi-decoupled controllers.
//! Requests flow along the data-dependency graph: the slave request of
//! each predecessor, joined by a C-element tree and delayed by the
//! region's matched delay element, becomes the master's input request;
//! acknowledgements flow backwards symmetrically. Regions without
//! predecessors (input registers) loop their own slave request back —
//! the environment is always ready, mirroring the synchronous circuit
//! re-sampling its inputs every cycle; regions without successors get an
//! eager output environment (`ao = ro`).

use drd_liberty::Library;
use drd_netlist::{Conn, Design, Endpoint, ModuleId, NetId, PinUse};

use crate::celement;
use crate::controller::{build_controller, ControllerRole};
use crate::ddg::Ddg;
use crate::delay_element;
use crate::region::Regions;
use crate::DesyncError;

/// Naming helper: the master/slave enable nets of a region.
pub fn enable_net_names(region: &str) -> (String, String) {
    (format!("drd_{region}_gm"), format!("drd_{region}_gs"))
}

/// Report from control-network insertion.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NetworkReport {
    /// Controller instances inserted (2 per controlled region).
    pub controllers: usize,
    /// C-elements inserted for request/acknowledge joins.
    pub celements: usize,
    /// Delay-element instances inserted.
    pub delay_elements: usize,
    /// Chain length (matched levels) per region (0 = no controller).
    pub delem_levels: Vec<usize>,
    /// Names of all controller instances (`(master, slave)` per region).
    pub controller_instances: Vec<(String, String)>,
    /// Names of every C-element cell in the request/acknowledge joins —
    /// targeted mutation points for the fault-injection harness.
    pub celement_instances: Vec<String>,
    /// Names of every delay-element instance, one per controlled region —
    /// targeted mutation points for matched-delay faults.
    pub delay_element_instances: Vec<String>,
    /// Buffers inserted for the low-skew enable trees.
    pub enable_tree_buffers: usize,
}

/// Delay-element sizing knobs for [`insert_control_network`].
#[derive(Debug, Clone, Copy)]
pub struct NetworkOptions {
    /// Use 8-tap multiplexed delay elements and add `dsel[2:0]` ports.
    pub muxed: bool,
    /// Safety factor on the matched delay (e.g. 1.1 = +10%).
    pub margin: f64,
}

/// Inserts the full controller network into `design`'s module `top`.
///
/// `region_delays_ns` holds the typical-corner critical-path delay of each
/// region's logic cloud; delay elements are sized to cover it with
/// `opts.margin`. If `opts.muxed` is set, 8-tap multiplexed delay elements
/// are used and `dsel[2:0]` input ports are added.
///
/// `degraded` names regions left synchronous by graceful degradation:
/// they get no controller pair, no delay element and no handshake nets —
/// their flip-flops keep the original clock — and requests/acknowledges
/// of neighbouring regions simply skip them (their loads/drivers fall
/// back to the environment rules).
///
/// # Errors
/// Propagates netlist and STA errors.
#[allow(clippy::too_many_arguments)]
pub fn insert_control_network(
    design: &mut Design,
    top: ModuleId,
    regions: &Regions,
    ddg: &Ddg,
    region_delays_ns: &[f64],
    lib: &Library,
    degraded: &[String],
    opts: NetworkOptions,
) -> Result<NetworkReport, DesyncError> {
    insert_control_network_with(
        design,
        top,
        regions,
        ddg,
        region_delays_ns,
        lib,
        degraded,
        opts,
        1,
    )
    .map(|(report, _)| report)
}

/// [`insert_control_network`] with an explicit worker count.
///
/// The per-region delay-element *sizing* (the `levels_for_delay` binary
/// search over the library, the dominant analysis cost here) fans out one
/// task per region over `workers` threads; module creation and all netlist
/// mutation stay serial in region-index order, so the resulting design is
/// byte-identical for every worker count. Returns the report plus the
/// per-region sizing wall time in nanoseconds (0 for skipped regions).
///
/// # Errors
/// Propagates netlist and STA errors.
#[allow(clippy::too_many_arguments)]
pub fn insert_control_network_with(
    design: &mut Design,
    top: ModuleId,
    regions: &Regions,
    ddg: &Ddg,
    region_delays_ns: &[f64],
    lib: &Library,
    degraded: &[String],
    opts: NetworkOptions,
    workers: usize,
) -> Result<(NetworkReport, Vec<u128>), DesyncError> {
    let NetworkOptions { muxed, margin } = opts;
    let mut report = NetworkReport::default();

    // Controller modules (once).
    for role in [ControllerRole::Master, ControllerRole::Slave] {
        if design.find_module(role.module_name()).is_none() {
            design.insert(build_controller(role));
        }
    }

    // Reset / calibration ports.
    let rst = {
        let m = design.module_mut(top);
        match m.find_port("drd_rst") {
            Some(p) => m.port(p).net,
            None => {
                let p = m.add_port("drd_rst", drd_netlist::PortDir::Input)?;
                m.port(p).net
            }
        }
    };
    let sel_nets: Vec<NetId> = if muxed {
        let m = design.module_mut(top);
        (0..3)
            .map(|b| {
                let name = format!("dsel[{b}]");
                match m.find_port(&name) {
                    Some(p) => Ok(m.port(p).net),
                    None => {
                        let p = m.add_port(name, drd_netlist::PortDir::Input)?;
                        Ok(m.port(p).net)
                    }
                }
            })
            .collect::<Result<_, drd_netlist::NetlistError>>()?
    } else {
        Vec::new()
    };

    let n = regions.regions.len();
    let controlled: Vec<bool> = regions
        .regions
        .iter()
        .map(|r| !r.seq_cells.is_empty() && !degraded.contains(&r.name))
        .collect();

    // Per-region handshake nets (created up-front so joins can reference
    // any region).
    let mut rom = vec![None; n];
    let mut ros = vec![None; n];
    let mut aim = vec![None; n];
    let mut ais = vec![None; n];
    {
        let m = design.module_mut(top);
        for (i, r) in regions.regions.iter().enumerate() {
            if !controlled[i] {
                continue;
            }
            rom[i] = Some(m.add_net_auto(&format!("drd_{}_rom", r.name)));
            ros[i] = Some(m.add_net_auto(&format!("drd_{}_ros", r.name)));
            aim[i] = Some(m.add_net_auto(&format!("drd_{}_aim", r.name)));
            ais[i] = Some(m.add_net_auto(&format!("drd_{}_ais", r.name)));
        }
    }

    // Delay-element sizing (parallel, read-only per region) followed by
    // module creation (serial, deduplicated, in region-index order).
    let overhead = if muxed {
        delay_element::mux_overhead_levels(lib)?
    } else {
        0
    };
    let sized = drd_runner::run_indexed(n, workers, |i| {
        let start = std::time::Instant::now();
        let levels = if !controlled[i] {
            Ok(0)
        } else {
            let target = region_delays_ns.get(i).copied().unwrap_or(0.0);
            if target <= 0.0 {
                Ok(1)
            } else {
                delay_element::levels_for_delay(lib, target, margin)
            }
        };
        (levels, start.elapsed().as_nanos())
    });
    let mut delem_levels = vec![0usize; n];
    let mut region_wall_ns = vec![0u128; n];
    for (i, (levels, wall)) in sized.into_iter().enumerate() {
        delem_levels[i] = levels?;
        region_wall_ns[i] = wall;
        if !controlled[i] {
            continue;
        }
        let module_name = delem_module_name(muxed, delem_levels[i]);
        if design.find_module(&module_name).is_none() {
            let module = if muxed {
                delay_element::build_muxed(&module_name, delem_levels[i], overhead)
            } else {
                delay_element::build_fixed(&module_name, delem_levels[i])
            };
            design.insert(module);
        }
    }
    report.delem_levels = delem_levels.clone();

    // Wiring per region.
    for (i, r) in regions.regions.iter().enumerate() {
        if !controlled[i] {
            report.controller_instances.push((String::new(), String::new()));
            continue;
        }
        let m = design.module_mut(top);
        let (gm_name, gs_name) = enable_net_names(&r.name);
        let gm = m
            .find_net(&gm_name)
            .ok_or_else(|| DesyncError::Clock {
                message: format!("enable net `{gm_name}` missing (run ffsub first)"),
            })?;
        let gs = m.find_net(&gs_name).ok_or_else(|| DesyncError::Clock {
            message: format!("enable net `{gs_name}` missing (run ffsub first)"),
        })?;

        // Input requests: predecessors' slave ro, joined and delayed.
        let pred_reqs: Vec<NetId> = ddg.preds[i]
            .iter()
            .filter(|&&p| controlled[p])
            .map(|&p| ros[p].expect("controlled predecessor has nets"))
            .collect();
        let raw_req = if pred_reqs.is_empty() {
            // Environment loopback: always-ready input.
            ros[i].expect("own nets exist")
        } else {
            let (net, c) = celement::join(m, &pred_reqs, &format!("drd_{}_ri", r.name))?;
            report.celements += c.celements;
            report.celement_instances.extend(c.cells);
            net
        };
        let rim = m.add_net_auto(&format!("drd_{}_rim", r.name));
        let delem_name = delem_module_name(muxed, delem_levels[i]);
        let mut delem_pins: Vec<(&str, Conn)> =
            vec![("in1", Conn::Net(raw_req)), ("out1", Conn::Net(rim))];
        let sel_names: Vec<String> = (0..3).map(|b| format!("sel[{b}]")).collect();
        if muxed {
            for (b, sel_net) in sel_nets.iter().enumerate() {
                delem_pins.push((sel_names[b].as_str(), Conn::Net(*sel_net)));
            }
        }
        let delem_inst = m.unique_cell_name(&format!("drd_{}_delem", r.name));
        m.add_instance(delem_inst.clone(), delem_name, &delem_pins)?;
        report.delay_elements += 1;
        report.delay_element_instances.push(delem_inst);

        // Output acknowledgements: successors' master ai, joined.
        let succ_acks: Vec<NetId> = ddg.succs[i]
            .iter()
            .filter(|&&s| controlled[s])
            .map(|&s| aim[s].expect("controlled successor has nets"))
            .collect();
        let slave_ao = if succ_acks.is_empty() {
            // Eager output environment: acknowledge own request.
            ros[i].expect("own nets exist")
        } else {
            let (net, c) = celement::join(m, &succ_acks, &format!("drd_{}_ao", r.name))?;
            report.celements += c.celements;
            report.celement_instances.extend(c.cells);
            net
        };

        // The controller pair.
        let master_name = m.unique_cell_name(&format!("drd_{}_ctlm", r.name));
        m.add_instance(
            master_name.clone(),
            ControllerRole::Master.module_name(),
            &[
                ("ri", Conn::Net(rim)),
                ("ao", Conn::Net(ais[i].expect("own nets"))),
                ("rst", Conn::Net(rst)),
                ("ai", Conn::Net(aim[i].expect("own nets"))),
                ("ro", Conn::Net(rom[i].expect("own nets"))),
                ("g", Conn::Net(gm)),
            ],
        )?;
        let slave_name = m.unique_cell_name(&format!("drd_{}_ctls", r.name));
        m.add_instance(
            slave_name.clone(),
            ControllerRole::Slave.module_name(),
            &[
                ("ri", Conn::Net(rom[i].expect("own nets"))),
                ("ao", Conn::Net(slave_ao)),
                ("rst", Conn::Net(rst)),
                ("ai", Conn::Net(ais[i].expect("own nets"))),
                ("ro", Conn::Net(ros[i].expect("own nets"))),
                ("g", Conn::Net(gs)),
            ],
        )?;
        report.controllers += 2;
        report
            .controller_instances
            .push((master_name, slave_name));
    }

    // Low-skew enable trees: bound every enable net's fanout so large
    // regions' latch phases stay crisp (CTS's job in the paper's backend).
    // Degraded regions have no enable nets; `buffer_enable_tree` is a
    // no-op for them.
    for r in regions.regions.iter().filter(|r| !r.seq_cells.is_empty()) {
        let (gm_name, gs_name) = enable_net_names(&r.name);
        for name in [gm_name, gs_name] {
            report.enable_tree_buffers +=
                buffer_enable_tree(design, top, lib, &name, 16)?;
        }
    }
    Ok((report, region_wall_ns))
}

/// Builds a balanced buffer tree so the latch-enable net drives at most
/// `max_fanout` loads per stage — the low-skew tree CTS would synthesize
/// (§4.5.1); required for correct pre-layout simulation of large regions.
fn buffer_enable_tree(
    design: &mut Design,
    top: ModuleId,
    lib: &Library,
    net_name: &str,
    max_fanout: usize,
) -> Result<usize, DesyncError> {
    let Some(net) = design.module(top).find_net(net_name) else {
        return Ok(0);
    };
    // One connectivity snapshot for the whole tree. The previous version
    // recomputed pin directions and full-module connectivity on every tree
    // level, which made insertion quadratic in module size; after the first
    // level the remaining loads on `net` are exactly the buffers we just
    // inserted, so we track them directly instead of rescanning the module.
    let mut current: Vec<Endpoint> = {
        let dirs = design.pin_dirs(lib);
        design.module(top).connectivity(&dirs)?.loads(net).to_vec()
    };
    let mut inserted = 0usize;
    let m = design.module_mut(top);
    while current.len() > max_fanout {
        let mut next: Vec<Endpoint> =
            Vec::with_capacity(current.len().div_ceil(max_fanout));
        for (g, chunk) in current.chunks(max_fanout).enumerate() {
            let out = m.add_net_auto(&format!("{net_name}_ct{g}"));
            let cell = m.unique_cell_name(&format!("{net_name}_ctb"));
            let buf = m.add_cell(
                cell,
                "BUFX2",
                &[("A", Conn::Net(net)), ("Z", Conn::Net(out))],
            )?;
            inserted += 1;
            for load in chunk {
                if let Endpoint::Pin(p) = load {
                    let pin = m.cell_pins(p.cell)[p.pin as usize].0;
                    m.set_pin_sym(p.cell, pin, Conn::Net(out));
                }
            }
            // The buffer's "A" pin (index 0) is the only load the new
            // level leaves on `net` for this chunk.
            next.push(Endpoint::Pin(PinUse { cell: buf, pin: 0 }));
        }
        current = next;
    }
    Ok(inserted)
}

/// Module name of a delay element: `drd_delem_<levels>` (fixed) or
/// `drd_delemx_<levels>` (muxed). Shared with the liveness guard's
/// deepen surgery and the structural checks.
pub fn delem_module_name(muxed: bool, levels: usize) -> String {
    if muxed {
        format!("drd_delemx_{levels}")
    } else {
        format!("drd_delem_{levels}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ddg;
    use crate::ffsub::substitute_ffs;
    use crate::region::{group, GroupingOptions};
    use drd_liberty::gatefile::Gatefile;
    use drd_liberty::vlib90;
    use drd_netlist::{Module, PortDir};

    /// 2-region pipeline ready for network insertion.
    fn prepared() -> (Design, ModuleId, Regions, Ddg, Vec<f64>) {
        let lib = vlib90::high_speed();
        let gf = Gatefile::from_library(&lib).unwrap();
        let mut m = Module::new("p");
        m.add_port("clk", PortDir::Input).unwrap();
        m.add_port("din", PortDir::Input).unwrap();
        m.add_port("dout", PortDir::Output).unwrap();
        let clk = m.find_net("clk").unwrap();
        let din = m.find_net("din").unwrap();
        let dout = m.find_net("dout").unwrap();
        let q0 = m.add_net("q0").unwrap();
        m.add_cell(
            "r_in",
            "DFFX1",
            &[("D", Conn::Net(din)), ("CK", Conn::Net(clk)), ("Q", Conn::Net(q0))],
        )
        .unwrap();
        let n1 = m.add_net("n1").unwrap();
        m.add_cell("c1", "INVX1", &[("A", Conn::Net(q0)), ("Z", Conn::Net(n1))])
            .unwrap();
        m.add_cell(
            "r1",
            "DFFX1",
            &[("D", Conn::Net(n1)), ("CK", Conn::Net(clk)), ("Q", Conn::Net(dout))],
        )
        .unwrap();
        let regions = group(&m, &lib, &GroupingOptions::recommended()).unwrap();
        let graph = ddg::build(&m, &lib, &regions).unwrap();
        // Substitute each region's flip-flops.
        for r in &regions.regions {
            let (gm_name, gs_name) = enable_net_names(&r.name);
            let gm = m.add_net(gm_name).unwrap();
            let gs = m.add_net(gs_name).unwrap();
            substitute_ffs(&mut m, &lib, &gf, &r.seq_cells, gm, gs).unwrap();
        }
        let delays = vec![0.1; regions.regions.len()];
        let mut design = Design::new();
        let top = design.insert(m);
        (design, top, regions, graph, delays)
    }

    #[test]
    fn network_insertion_wires_controller_pairs() {
        let (mut design, top, regions, graph, delays) = prepared();
        let lib = vlib90::high_speed();
        let opts = NetworkOptions { muxed: false, margin: 1.1 };
        let report =
            insert_control_network(&mut design, top, &regions, &graph, &delays, &lib, &[], opts)
                .unwrap();
        assert_eq!(report.controllers, 4, "2 regions × (master + slave)");
        assert_eq!(report.delay_elements, 2);
        let m = design.module(top);
        assert!(m.find_port("drd_rst").is_some());
        // The region with a predecessor has its request joined/delayed
        // from the predecessor's slave request.
        assert!(design.find_module("drd_ctrl_master").is_some());
        assert!(design.find_module("drd_ctrl_slave").is_some());
        // Every controlled region has a delay element instance.
        let delems = m
            .cells()
            .filter(|(_, c)| c.kind_name().starts_with("drd_delem"))
            .count();
        assert_eq!(delems, 2);
    }

    #[test]
    fn degraded_region_gets_no_controller_or_delay_element() {
        let (mut design, top, regions, graph, delays) = prepared();
        let lib = vlib90::high_speed();
        let opts = NetworkOptions { muxed: false, margin: 1.1 };
        let degraded = vec!["g1".to_string()];
        let report = insert_control_network(
            &mut design,
            top,
            &regions,
            &graph,
            &delays,
            &lib,
            &degraded,
            opts,
        )
        .unwrap();
        assert_eq!(report.controllers, 2, "only the non-degraded region");
        assert_eq!(report.delay_elements, 1);
        let g1 = regions
            .regions
            .iter()
            .position(|r| r.name == "g1")
            .unwrap();
        assert_eq!(
            report.controller_instances[g1],
            (String::new(), String::new())
        );
        assert_eq!(report.delem_levels[g1], 0);
        let m = design.module(top);
        assert!(m.find_cell("drd_g1_ctlm").is_none());
        assert!(m.find_cell("drd_g1_delem").is_none());
    }

    #[test]
    fn muxed_network_adds_sel_ports() {
        let (mut design, top, regions, graph, delays) = prepared();
        let lib = vlib90::high_speed();
        let opts = NetworkOptions { muxed: true, margin: 1.1 };
        let report =
            insert_control_network(&mut design, top, &regions, &graph, &delays, &lib, &[], opts)
                .unwrap();
        let m = design.module(top);
        for b in 0..3 {
            assert!(m.find_port(&format!("dsel[{b}]")).is_some());
        }
        assert!(report.delem_levels.iter().all(|&l| l >= 1));
        assert!(design
            .modules()
            .any(|(_, module)| module.name.starts_with("drd_delemx_")));
    }
}
