//! Matched delay elements (§2.4.4, §3.1.4, Figs. 2.8/2.9).
//!
//! Each region's request signal is delayed by at least the region's
//! combinational critical-path delay. Because 4-phase controllers are
//! used, the elements are *asymmetric* — slow rise (the request must wait
//! for the logic), fast fall (the return-to-zero phase should be quick) —
//! built as an AND chain where every stage is also fed by the input, so a
//! falling input collapses the whole chain in one gate delay.
//!
//! A multiplexed variant exposes 8 taps selected by `sel[2:0]` so the
//! final delay can be calibrated after layout (§3.2.5, the Fig. 5.3
//! sweep): tap `k` gives roughly `(0.70 + 0.15·k)×` the matched delay,
//! so tap 2 is the matched point and taps 0–1 are deliberately too short.

use drd_liberty::{Corner, Library};
use drd_netlist::{Conn, Module, PortDir};
use drd_sta::{GraphOptions, TimingGraph};

use crate::DesyncError;

/// Number of taps in a multiplexed delay element.
pub const MUX_TAPS: usize = 8;

/// Relative length of tap `k` (tap 2 ≙ matched delay).
pub fn tap_factor(k: usize) -> f64 {
    0.70 + 0.15 * k as f64
}

/// Builds a fixed-length asymmetric delay element module named `name` with
/// ports `in1` → `out1` and `levels` AND stages.
///
/// # Panics
/// Panics if `levels == 0`.
pub fn build_fixed(name: &str, levels: usize) -> Module {
    assert!(levels > 0, "a delay element needs at least one level");
    let mut m = Module::new(name);
    m.add_port("in1", PortDir::Input).expect("fresh module");
    m.add_port("out1", PortDir::Output).expect("fresh module");
    let input = m.find_net("in1").expect("port net");
    let out = m.find_net("out1").expect("port net");
    let mut prev = input;
    let mut feed = input;
    for i in 0..levels {
        // Segment the shared fast-fall feed so the input net's fanout (and
        // with it the return-to-zero time) stays bounded.
        if i % 8 == 0 && levels > 8 {
            let seg = m.add_net(format!("f{i}")).expect("fresh name");
            m.add_cell(
                format!("uf{i}"),
                "BUFX2",
                &[("A", Conn::Net(input)), ("Z", Conn::Net(seg))],
            )
            .expect("fresh name");
            feed = seg;
        }
        let next = if i + 1 == levels {
            out
        } else {
            m.add_net(format!("d{i}")).expect("fresh name")
        };
        m.add_cell(
            format!("u{i}"),
            "AND2X1",
            &[("A", Conn::Net(prev)), ("B", Conn::Net(feed)), ("Z", Conn::Net(next))],
        )
        .expect("fresh name");
        prev = next;
    }
    m
}

/// Measures how many AND levels the 8:1 mux tree is worth, so tap
/// lengths can compensate for the selection overhead.
///
/// # Errors
/// Propagates STA errors.
pub fn mux_overhead_levels(lib: &Library) -> Result<usize, DesyncError> {
    let per_level = level_delay_ns(lib)?;
    let one = measure_delay(&build_muxed("drd_muxprobe", 1, 0), lib, Corner::typical())?;
    Ok(((one - per_level) / per_level).ceil().max(0.0) as usize)
}

/// Builds a multiplexed asymmetric delay element named `name`: the chain
/// is as long as the longest tap, and `sel[2:0]` pick among [`MUX_TAPS`]
/// taps whose *total* delay (chain + mux tree) is `tap_factor(k) ×` the
/// matched delay; `overhead_levels` (see [`mux_overhead_levels`]) is
/// subtracted from each tap's chain length to compensate for the tree.
///
/// # Panics
/// Panics if `matched_levels == 0`.
pub fn build_muxed(name: &str, matched_levels: usize, overhead_levels: usize) -> Module {
    assert!(matched_levels > 0, "a delay element needs at least one level");
    let tap_levels: Vec<usize> = (0..MUX_TAPS)
        .map(|k| {
            // Total tap delay should be factor(k) × matched; the mux tree
            // contributes `overhead_levels` of it.
            let ideal = matched_levels as f64 * tap_factor(k);
            ((ideal.round() as usize).saturating_sub(overhead_levels)).max(1)
        })
        .collect();
    let chain_len = *tap_levels.iter().max().expect("non-empty");

    let mut m = Module::new(name);
    m.add_port("in1", PortDir::Input).expect("fresh module");
    m.add_port("out1", PortDir::Output).expect("fresh module");
    for b in 0..3 {
        m.add_port(format!("sel[{b}]"), PortDir::Input)
            .expect("fresh module");
    }
    let input = m.find_net("in1").expect("port net");
    let out = m.find_net("out1").expect("port net");

    let mut stage_nets = Vec::with_capacity(chain_len + 1);
    stage_nets.push(input);
    let mut prev = input;
    let mut feed = input;
    for i in 0..chain_len {
        if i % 8 == 0 && chain_len > 8 {
            let seg = m.add_net(format!("f{i}")).expect("fresh name");
            m.add_cell(
                format!("uf{i}"),
                "BUFX2",
                &[("A", Conn::Net(input)), ("Z", Conn::Net(seg))],
            )
            .expect("fresh name");
            feed = seg;
        }
        let next = m.add_net(format!("d{i}")).expect("fresh name");
        m.add_cell(
            format!("u{i}"),
            "AND2X1",
            &[("A", Conn::Net(prev)), ("B", Conn::Net(feed)), ("Z", Conn::Net(next))],
        )
        .expect("fresh name");
        stage_nets.push(next);
        prev = next;
    }

    // 8:1 mux tree on the taps, selected by sel[2] (MSB) … sel[0].
    let taps: Vec<_> = tap_levels.iter().map(|&l| stage_nets[l]).collect();
    let mut level: Vec<drd_netlist::NetId> = taps;
    for bit in 0..3 {
        let sel = m
            .find_net(&format!("sel[{bit}]"))
            .expect("sel port net");
        let mut next_level = Vec::with_capacity(level.len() / 2);
        for (pair, chunk) in level.chunks(2).enumerate() {
            let z = if level.len() == 2 {
                out
            } else {
                m.add_net(format!("m{bit}_{pair}")).expect("fresh name")
            };
            m.add_cell(
                format!("mx{bit}_{pair}"),
                "MUX2X1",
                &[
                    ("A", Conn::Net(chunk[0])),
                    ("B", Conn::Net(chunk[1])),
                    ("S", Conn::Net(sel)),
                    ("Z", Conn::Net(z)),
                ],
            )
            .expect("fresh name");
            next_level.push(z);
        }
        level = next_level;
    }
    m
}

/// Measures a delay element's `in1 → out1` propagation delay by STA.
///
/// # Errors
/// Propagates STA errors.
pub fn measure_delay(module: &Module, lib: &Library, corner: Corner) -> Result<f64, DesyncError> {
    let graph = TimingGraph::build(module, lib, &GraphOptions::default())?;
    let arrivals = graph.arrivals(corner)?;
    Ok(arrivals.max_endpoint_arrival())
}

/// Measures the typical-corner delay of one AND level (library
/// preparation, §3.1.4: "we implement delay elements of variable logic
/// depth … and perform STA to measure their delay values").
///
/// # Errors
/// Propagates STA errors.
pub fn level_delay_ns(lib: &Library) -> Result<f64, DesyncError> {
    const PROBE_LEVELS: usize = 16;
    let probe = build_fixed("drd_delem_probe", PROBE_LEVELS);
    Ok(measure_delay(&probe, lib, Corner::typical())? / PROBE_LEVELS as f64)
}

/// Chooses the chain length whose delay covers `target_ns` with `margin`
/// (e.g. 1.1 for +10 %).
///
/// # Errors
/// Propagates STA errors.
pub fn levels_for_delay(lib: &Library, target_ns: f64, margin: f64) -> Result<usize, DesyncError> {
    let per_level = level_delay_ns(lib)?;
    Ok(((target_ns * margin / per_level).ceil() as usize).max(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use drd_liberty::vlib90;

    #[test]
    fn fixed_delay_scales_with_levels() {
        let lib = vlib90::high_speed();
        let d4 = measure_delay(&build_fixed("d4", 4), &lib, Corner::typical()).unwrap();
        let d8 = measure_delay(&build_fixed("d8", 8), &lib, Corner::typical()).unwrap();
        assert!(d8 > 1.8 * d4, "{d8} vs {d4}");
    }

    #[test]
    fn sizing_meets_target() {
        let lib = vlib90::high_speed();
        let target = 0.8;
        let levels = levels_for_delay(&lib, target, 1.1).unwrap();
        let delay = measure_delay(&build_fixed("dx", levels), &lib, Corner::typical()).unwrap();
        assert!(delay >= target, "sized delay {delay} ≥ target {target}");
        assert!(delay < target * 1.6, "not grossly oversized: {delay}");
    }

    #[test]
    fn asymmetric_behaviour_fast_fall() {
        use drd_liberty::Lv;
        use drd_sim::{SimOptions, Simulator};
        let lib = vlib90::high_speed();
        let mut design = drd_netlist::Design::new();
        design.insert(build_fixed("delem", 12));
        let mut sim = Simulator::new(&design, &lib, SimOptions::default()).unwrap();
        sim.poke("in1", Lv::Zero).unwrap();
        sim.run_for(5.0);
        sim.watch("out1").unwrap();
        // Rising edge propagates through the whole chain.
        let t0 = sim.time_ns();
        sim.poke("in1", Lv::One).unwrap();
        sim.run_for(10.0);
        let edges = sim.edge_trace("out1");
        let rise = edges.iter().find(|&&(_, r)| r).expect("rise seen").0 - t0;
        // Falling edge collapses in roughly one AND delay.
        let t1 = sim.time_ns();
        sim.poke("in1", Lv::Zero).unwrap();
        sim.run_for(10.0);
        let edges = sim.edge_trace("out1");
        let fall = edges.iter().find(|&&(_, r)| !r).expect("fall seen").0 - t1;
        assert!(
            rise > 4.0 * fall,
            "asymmetric: rise {rise} ns vs fall {fall} ns"
        );
    }

    #[test]
    fn muxed_taps_are_monotone_and_bracket_matched_delay() {
        use drd_liberty::Lv;
        use drd_sim::{SimOptions, Simulator};
        let lib = vlib90::high_speed();
        let matched = 10;
        let overhead = mux_overhead_levels(&lib).unwrap();
        let module = build_muxed("delem_m", matched, overhead);
        let matched_delay =
            measure_delay(&build_fixed("ref", matched), &lib, Corner::typical()).unwrap();

        let mut rises = Vec::new();
        for k in 0..MUX_TAPS {
            let mut design = drd_netlist::Design::new();
            design.insert(module.clone());
            let mut sim = Simulator::new(&design, &lib, SimOptions::default()).unwrap();
            for b in 0..3 {
                let v = if (k >> b) & 1 == 1 { Lv::One } else { Lv::Zero };
                sim.poke(&format!("sel[{b}]"), v).unwrap();
            }
            sim.poke("in1", Lv::Zero).unwrap();
            sim.run_for(10.0);
            sim.watch("out1").unwrap();
            let t0 = sim.time_ns();
            sim.poke("in1", Lv::One).unwrap();
            sim.run_for(20.0);
            let rise = sim
                .edge_trace("out1")
                .iter()
                .find(|&&(_, r)| r)
                .expect("rise")
                .0
                - t0;
            rises.push(rise);
        }
        for w in rises.windows(2) {
            assert!(w[1] > w[0], "taps monotone: {rises:?}");
        }
        // Tap 2 sits at the matched point (±20 %), taps 0–1 are short,
        // tap 7 is substantially longer (the Fig. 5.3 sweep shape).
        assert!(
            (rises[2] / matched_delay - 1.0).abs() < 0.25,
            "tap2 {} vs matched {matched_delay}",
            rises[2]
        );
        assert!(rises[0] < 0.85 * rises[2], "{rises:?}");
        assert!(rises[7] > 1.5 * rises[2], "{rises:?}");
    }

    #[test]
    fn tap_factors() {
        assert!((tap_factor(2) - 1.0).abs() < 1e-12);
        assert!(tap_factor(0) < 1.0);
        assert!(tap_factor(7) > 1.7);
    }
}
