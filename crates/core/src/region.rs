//! Automatic region creation — the grouping algorithm (§3.2.2).
//!
//! A *region* is a combinational logic cloud together with the flip-flops
//! it drives; regions must be independent (no connections between the
//! clouds of different regions). The algorithm of Fig. 3.3/3.4:
//!
//! 1. group together all combinational gates connected to each other (and
//!    the sequential elements they drive),
//! 2. add to each group the sequential elements directly driven by the
//!    group's sequential members (FF→FF history chains),
//! 3. assign all remaining sequential elements — flip-flops registering
//!    circuit inputs — to the extra *Group 0*.
//!
//! Heuristics from the paper: logic cleaning (buffers and inverter pairs
//! removed first, Fig. 3.5 — see [`clean_for_grouping`]), by-name bus
//! grouping (Fig. 3.6), and user-marked false-path nets (global resets,
//! clock-gating controls) that are ignored during traversal. The clock
//! net is excluded automatically.

use std::collections::{HashMap, HashSet};

use drd_liberty::{CellClass, Library, SeqKind};
use drd_netlist::passes::{clean_logic, CleanKind, CleanStats};
use drd_netlist::{Cell, CellId, Conn, Endpoint, Module, NetId, Symbol, SymbolTable};

use crate::DesyncError;

/// Options for the grouping pass.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GroupingOptions {
    /// Use the by-name bus heuristic (Fig. 3.6). Default: true via
    /// [`GroupingOptions::default`]? No — all fields default off except
    /// where noted; use [`GroupingOptions::recommended`] for the paper's
    /// configuration.
    pub bus_grouping: bool,
    /// Net names to ignore as false paths (§3.2.2 "False Paths").
    pub false_path_nets: Vec<String>,
    /// Put the whole circuit in a single region (the paper's ARM design,
    /// §5.3: "the ARM design was implemented using only one group").
    pub single_group: bool,
}

impl GroupingOptions {
    /// The paper's default configuration: bus grouping on.
    pub fn recommended() -> Self {
        GroupingOptions {
            bus_grouping: true,
            ..GroupingOptions::default()
        }
    }
}

/// One desynchronization region.
#[derive(Debug, Clone)]
pub struct Region {
    /// Region name (`g0` is the input-register region).
    pub name: String,
    /// All member cells, by instance name.
    pub cells: Vec<String>,
    /// The sequential members (targets of flip-flop substitution).
    pub seq_cells: Vec<String>,
    /// True for Group 0 (input-registering flip-flops with no logic cloud).
    pub is_input_region: bool,
}

/// The grouping result.
#[derive(Debug, Clone)]
pub struct Regions {
    /// Regions, `g0` (if any) last.
    pub regions: Vec<Region>,
    /// Interned cell name → region index, built once at construction.
    /// Keeps [`Regions::region_of`] O(1); the per-cell loops in DDG
    /// building and SDC emission call it once per cell, so a linear scan
    /// here made those passes quadratic in design size. Member names are
    /// interned into a private table whose symbols are dense, so the
    /// region index is a plain vector indexed by symbol — one hash probe
    /// per lookup, not two.
    index: Vec<usize>,
    syms: SymbolTable,
}

impl Regions {
    /// Builds the grouping result, indexing every member cell by name.
    pub fn new(regions: Vec<Region>) -> Self {
        let mut syms = SymbolTable::default();
        let mut index = Vec::new();
        for (i, r) in regions.iter().enumerate() {
            for c in &r.cells {
                let sym = syms.intern(c);
                if sym.index() == index.len() {
                    index.push(i);
                }
            }
        }
        Regions { regions, index, syms }
    }

    /// Index of the region containing cell `name`.
    pub fn region_of(&self, name: &str) -> Option<usize> {
        let sym = self.syms.lookup(name)?;
        self.index.get(sym.index()).copied()
    }

    /// Number of regions.
    pub fn len(&self) -> usize {
        self.regions.len()
    }

    /// True if no regions were formed.
    pub fn is_empty(&self) -> bool {
        self.regions.is_empty()
    }
}

/// Identifies the clock net: the net driving the largest number of
/// sequential clock/enable pins. Ties are broken deterministically —
/// port-driven nets win over internally generated ones (a gated clock must
/// not shadow the primary clock it derives from), then the
/// lexicographically smallest net name.
pub fn find_clock_net(module: &Module, lib: &Library) -> Option<NetId> {
    let mut counts: HashMap<NetId, usize> = HashMap::new();
    for (_, cell) in module.cells() {
        let Some(lc) = lib.cell_of(cell.kind_ref()) else { continue };
        let clock_pin = match &lc.seq {
            SeqKind::FlipFlop(ff) => Some(ff.clocked_on.as_str()),
            SeqKind::Latch(l) => Some(l.enable.as_str()),
            _ => None,
        };
        if let Some(pin) = clock_pin {
            if let Some(Conn::Net(n)) = cell.pin(pin) {
                *counts.entry(n).or_insert(0) += 1;
            }
        }
    }
    let port_nets: HashSet<NetId> = module.ports().map(|(_, p)| p.net).collect();
    counts
        .into_iter()
        .max_by(|&(n1, c1), &(n2, c2)| {
            c1.cmp(&c2)
                .then_with(|| port_nets.contains(&n1).cmp(&port_nets.contains(&n2)))
                .then_with(|| module.net(n2).name.cmp(module.net(n1).name))
        })
        .map(|(n, _)| n)
}

/// Classifier for the cleaning pass: buffers and inverters of `lib`.
pub fn clean_classifier(lib: &Library) -> impl Fn(Cell<'_>) -> Option<CleanKind> + '_ {
    |cell: Cell<'_>| {
        let lc = lib.cell_of(cell.kind_ref())?;
        if lc.class() != CellClass::Combinational {
            return None;
        }
        let inputs: Vec<_> = lc.input_pins().collect();
        let outputs: Vec<_> = lc.output_pins().collect();
        if inputs.len() != 1 || outputs.len() != 1 {
            return None;
        }
        let f = outputs[0].function.as_ref()?;
        use drd_liberty::function::Expr;
        match f {
            Expr::Var(v) if *v == inputs[0].name => Some(CleanKind::Buffer {
                input: inputs[0].name.clone(),
                output: outputs[0].name.clone(),
            }),
            Expr::Not(inner) => match inner.as_ref() {
                Expr::Var(v) if *v == inputs[0].name => Some(CleanKind::Inverter {
                    input: inputs[0].name.clone(),
                    output: outputs[0].name.clone(),
                }),
                _ => None,
            },
            _ => None,
        }
    }
}

/// Removes synthesis buffering from `module` so grouping sees only true
/// data dependencies (§3.2.2 "Logic Cleaning", Fig. 3.5).
pub fn clean_for_grouping(module: &mut Module, lib: &Library) -> CleanStats {
    clean_logic(module, lib, clean_classifier(lib))
}

struct UnionFind {
    parent: Vec<u32>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
        }
    }
    fn find(&mut self, i: usize) -> usize {
        let mut root = i;
        while self.parent[root] as usize != root {
            root = self.parent[root] as usize;
        }
        let mut cur = i;
        while self.parent[cur] as usize != root {
            let next = self.parent[cur] as usize;
            self.parent[cur] = root as u32;
            cur = next;
        }
        root
    }
    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra.max(rb)] = ra.min(rb) as u32;
        }
    }
}

/// Runs the grouping algorithm on a (cleaned) module.
///
/// # Errors
/// Returns [`DesyncError::UnknownCell`] for cells missing from the
/// library, and propagates connectivity errors.
pub fn group(
    module: &Module,
    lib: &Library,
    opts: &GroupingOptions,
) -> Result<Regions, DesyncError> {
    let cells: Vec<(CellId, Cell<'_>)> = module.cells().collect();
    let index_of: HashMap<CellId, usize> =
        cells.iter().enumerate().map(|(i, (id, _))| (*id, i)).collect();
    for (_, cell) in &cells {
        if lib.cell_of(cell.kind_ref()).is_none() {
            return Err(DesyncError::UnknownCell {
                name: cell.kind_name().to_owned(),
            });
        }
    }

    if opts.single_group {
        let mut all = Vec::new();
        let mut seq = Vec::new();
        for (_, cell) in &cells {
            all.push(cell.name.to_owned());
            if lib.is_sequential(cell.kind_ref()) {
                seq.push(cell.name.to_owned());
            }
        }
        return Ok(Regions::new(vec![Region {
            name: "g1".into(),
            cells: all,
            seq_cells: seq,
            is_input_region: false,
        }]));
    }

    // False-path nets: user-marked plus the clock.
    let mut false_nets: HashSet<NetId> = opts
        .false_path_nets
        .iter()
        .filter_map(|n| module.find_net(n))
        .collect();
    if let Some(clk) = find_clock_net(module, lib) {
        false_nets.insert(clk);
    }

    let conn = module.connectivity(lib)?;
    let mut uf = UnionFind::new(cells.len());

    // Clock/enable pin symbols per seq cell kind, to skip during
    // traversal. A clock pin name absent from the symbol table cannot be
    // connected anywhere, so `None` is equivalent to "no clock pin".
    let clockish_pin = |cell: &Cell<'_>| -> Option<Symbol> {
        let name = match &lib.cell_of(cell.kind_ref())?.seq {
            SeqKind::FlipFlop(ff) => &ff.clocked_on,
            SeqKind::Latch(l) => &l.enable,
            _ => return None,
        };
        module.lookup_sym(name)
    };

    // Step 1: connected components over combinational connections, pulling
    // in the driven sequential elements.
    for (i, (cid, cell)) in cells.iter().enumerate() {
        let is_comb = !lib.is_sequential(cell.kind_ref());
        if !is_comb {
            continue;
        }
        for (pin_idx, (_, c)) in cell.pins().iter().enumerate() {
            let Conn::Net(net) = c else { continue };
            if false_nets.contains(net) {
                continue;
            }
            let driving = conn.driver(*net)
                == Some(Endpoint::Pin(drd_netlist::PinUse {
                    cell: *cid,
                    pin: pin_idx as u32,
                }));
            if driving {
                // Union with every load (combinational neighbours and the
                // driven sequential elements) — but never through a
                // sequential clock/enable pin.
                for load in conn.loads(*net) {
                    let Endpoint::Pin(p) = load else { continue };
                    let load_cell = cells[index_of[&p.cell]].1;
                    if clockish_pin(&load_cell) == Some(load_cell.pins()[p.pin as usize].0) {
                        continue;
                    }
                    uf.union(i, index_of[&p.cell]);
                }
            } else {
                // Union with a combinational source.
                if let Some(Endpoint::Pin(p)) = conn.driver(*net) {
                    let src = cells[index_of[&p.cell]].1;
                    if !lib.is_sequential(src.kind_ref()) {
                        uf.union(i, index_of[&p.cell]);
                    }
                }
            }
        }
    }

    // Bus heuristic (Fig. 3.6): drivers of bits of the same bus group
    // together.
    if opts.bus_grouping {
        let mut bus_driver: HashMap<&str, usize> = HashMap::new();
        for (nid, net) in module.nets() {
            let Some(bus) = &net.bus else { continue };
            if false_nets.contains(&nid) {
                continue;
            }
            let Some(Endpoint::Pin(p)) = conn.driver(nid) else { continue };
            let idx = index_of[&p.cell];
            match bus_driver.get(bus.base) {
                Some(&first) => uf.union(first, idx),
                None => {
                    bus_driver.insert(bus.base, idx);
                }
            }
        }
    }

    // Step 2: sequential elements directly driven by grouped sequential
    // elements join the driver's region.
    for (i, (cid, cell)) in cells.iter().enumerate() {
        if !lib.is_sequential(cell.kind_ref()) {
            continue;
        }
        for (pin_idx, (_, c)) in cell.pins().iter().enumerate() {
            let Conn::Net(net) = c else { continue };
            if false_nets.contains(net) {
                continue;
            }
            let driving = conn.driver(*net)
                == Some(Endpoint::Pin(drd_netlist::PinUse {
                    cell: *cid,
                    pin: pin_idx as u32,
                }));
            if !driving {
                continue;
            }
            for load in conn.loads(*net) {
                let Endpoint::Pin(p) = load else { continue };
                let load_cell = cells[index_of[&p.cell]].1;
                if !lib.is_sequential(load_cell.kind_ref()) {
                    continue;
                }
                if clockish_pin(&load_cell) == Some(load_cell.pins()[p.pin as usize].0) {
                    continue;
                }
                uf.union(i, index_of[&p.cell]);
            }
        }
    }

    // Collect classes. Classes without any combinational member and of
    // size 1 fall into Group 0 (step 3) — as do all cells whose class
    // contains only sequential elements with no cloud.
    let mut class_members: HashMap<usize, Vec<usize>> = HashMap::new();
    for i in 0..cells.len() {
        let root = uf.find(i);
        class_members.entry(root).or_default().push(i);
    }
    let mut regions: Vec<Region> = Vec::new();
    let mut group0: Vec<usize> = Vec::new();
    let mut roots: Vec<usize> = class_members.keys().copied().collect();
    roots.sort_unstable();
    for root in roots {
        let members = &class_members[&root];
        let has_comb = members
            .iter()
            .any(|&i| !lib.is_sequential(cells[i].1.kind_ref()));
        let has_multiple_seq = members.len() > 1;
        if !has_comb && !has_multiple_seq {
            group0.extend(members.iter().copied());
            continue;
        }
        let name = format!("g{}", regions.len() + 1);
        let mut cell_names = Vec::with_capacity(members.len());
        let mut seq_names = Vec::new();
        for &i in members {
            cell_names.push(cells[i].1.name.to_owned());
            if lib.is_sequential(cells[i].1.kind_ref()) {
                seq_names.push(cells[i].1.name.to_owned());
            }
        }
        regions.push(Region {
            name,
            cells: cell_names,
            seq_cells: seq_names,
            is_input_region: false,
        });
    }
    if !group0.is_empty() {
        let cell_names: Vec<String> = group0.iter().map(|&i| cells[i].1.name.to_owned()).collect();
        regions.push(Region {
            name: "g0".into(),
            seq_cells: cell_names.clone(),
            cells: cell_names,
            is_input_region: true,
        });
    }
    Ok(Regions::new(regions))
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::panic)]
    use super::*;
    use drd_liberty::vlib90;
    use drd_netlist::PortDir;

    /// Builds a 2-stage pipeline: in → r_in → cloud1 → r1 → cloud2 → r2.
    fn pipeline() -> Module {
        let mut m = Module::new("p");
        m.add_port("clk", PortDir::Input).unwrap();
        m.add_port("din", PortDir::Input).unwrap();
        let clk = m.find_net("clk").unwrap();
        let din = m.find_net("din").unwrap();
        let q0 = m.add_net("q0").unwrap();
        m.add_cell(
            "r_in",
            "DFFX1",
            &[("D", Conn::Net(din)), ("CK", Conn::Net(clk)), ("Q", Conn::Net(q0))],
        )
        .unwrap();
        let n1 = m.add_net("n1").unwrap();
        m.add_cell("c1", "INVX1", &[("A", Conn::Net(q0)), ("Z", Conn::Net(n1))])
            .unwrap();
        let q1 = m.add_net("q1").unwrap();
        m.add_cell(
            "r1",
            "DFFX1",
            &[("D", Conn::Net(n1)), ("CK", Conn::Net(clk)), ("Q", Conn::Net(q1))],
        )
        .unwrap();
        let n2 = m.add_net("n2").unwrap();
        m.add_cell(
            "c2",
            "NAND2X1",
            &[("A", Conn::Net(q1)), ("B", Conn::Net(q0)), ("Z", Conn::Net(n2))],
        )
        .unwrap();
        let q2 = m.add_net("q2").unwrap();
        m.add_cell(
            "r2",
            "DFFX1",
            &[("D", Conn::Net(n2)), ("CK", Conn::Net(clk)), ("Q", Conn::Net(q2))],
        )
        .unwrap();
        m
    }

    #[test]
    fn clock_net_is_found() {
        let m = pipeline();
        let lib = vlib90::high_speed();
        let clk = find_clock_net(&m, &lib).unwrap();
        assert_eq!(m.net(clk).name, "clk");
    }

    #[test]
    fn pipeline_groups_into_stage_regions() {
        let m = pipeline();
        let lib = vlib90::high_speed();
        let regions = group(&m, &lib, &GroupingOptions::recommended()).unwrap();
        // Expected: {c1, r1}, {c2, r2}, and g0 = {r_in}.
        assert_eq!(regions.len(), 3);
        let r_c1 = regions.region_of("c1").unwrap();
        assert_eq!(regions.region_of("r1"), Some(r_c1));
        let r_c2 = regions.region_of("c2").unwrap();
        assert_eq!(regions.region_of("r2"), Some(r_c2));
        assert_ne!(r_c1, r_c2);
        let g0 = regions.region_of("r_in").unwrap();
        assert!(regions.regions[g0].is_input_region);
        assert_eq!(regions.regions[g0].name, "g0");
    }

    #[test]
    fn single_group_mode() {
        let m = pipeline();
        let lib = vlib90::high_speed();
        let regions = group(
            &m,
            &lib,
            &GroupingOptions {
                single_group: true,
                ..GroupingOptions::default()
            },
        )
        .unwrap();
        assert_eq!(regions.len(), 1);
        assert_eq!(regions.regions[0].cells.len(), 5);
        assert_eq!(regions.regions[0].seq_cells.len(), 3);
    }

    #[test]
    fn false_path_nets_are_ignored() {
        // A comb-driven global net (e.g. a decoded clock-gating control)
        // tied to both clouds merges them; marking it as a false path
        // keeps them separate.
        let mut m = pipeline();
        let q0 = m.find_net("q0").unwrap();
        let g = m.add_net("gate_en").unwrap();
        m.add_cell("genv", "INVX1", &[("A", Conn::Net(q0)), ("Z", Conn::Net(g))])
            .unwrap();
        let n1b = m.add_net("n1b").unwrap();
        let c1 = m.find_cell("c1").unwrap();
        // Re-route cloud1 through an AND with the global signal.
        let n1 = m.find_net("n1").unwrap();
        m.set_pin(c1, "Z", Conn::Net(n1b));
        m.add_cell(
            "c1g",
            "AND2X1",
            &[("A", Conn::Net(n1b)), ("B", Conn::Net(g)), ("Z", Conn::Net(n1))],
        )
        .unwrap();
        let c2 = m.find_cell("c2").unwrap();
        let n2 = m.find_net("n2").unwrap();
        let n2b = m.add_net("n2b").unwrap();
        m.set_pin(c2, "Z", Conn::Net(n2b));
        m.add_cell(
            "c2g",
            "AND2X1",
            &[("A", Conn::Net(n2b)), ("B", Conn::Net(g)), ("Z", Conn::Net(n2))],
        )
        .unwrap();
        let lib = vlib90::high_speed();

        let merged = group(&m, &lib, &GroupingOptions::recommended()).unwrap();
        assert_eq!(
            merged.region_of("c1"),
            merged.region_of("c2"),
            "global net merges clouds without false-path marking"
        );

        let opts = GroupingOptions {
            bus_grouping: true,
            false_path_nets: vec!["gate_en".into()],
            ..GroupingOptions::default()
        };
        let split = group(&m, &lib, &opts).unwrap();
        assert_ne!(split.region_of("c1"), split.region_of("c2"));
    }

    #[test]
    fn buffer_cleaning_removes_false_dependencies() {
        // Fig. 3.5: a buffer inserted between two clouds creates a false
        // dependency; cleaning removes it.
        let mut m = pipeline();
        let lib = vlib90::high_speed();
        // Insert a buffer driving both clouds' inputs from q0.
        let q0 = m.find_net("q0").unwrap();
        let bufd = m.add_net("q0_buf").unwrap();
        let c1 = m.find_cell("c1").unwrap();
        let c2 = m.find_cell("c2").unwrap();
        m.set_pin(c1, "A", Conn::Net(bufd));
        m.set_pin(c2, "B", Conn::Net(bufd));
        m.add_cell("buf0", "BUFX1", &[("A", Conn::Net(q0)), ("Z", Conn::Net(bufd))])
            .unwrap();
        // Without cleaning the buffer is itself a comb cell connected to
        // both clouds → everything merges.
        let merged = group(&m, &lib, &GroupingOptions::recommended()).unwrap();
        assert_eq!(merged.region_of("c1"), merged.region_of("c2"));
        // After cleaning, the regions split again.
        let stats = clean_for_grouping(&mut m, &lib);
        assert_eq!(stats.buffers_removed, 1);
        let split = group(&m, &lib, &GroupingOptions::recommended()).unwrap();
        assert_ne!(split.region_of("c1"), split.region_of("c2"));
    }

    #[test]
    fn bus_grouping_merges_bus_bit_drivers() {
        let lib = vlib90::high_speed();
        let mut m = Module::new("b");
        m.add_port("clk", PortDir::Input).unwrap();
        let clk = m.find_net("clk").unwrap();
        // Two independent clouds driving bits of the same output bus.
        for i in 0..2 {
            let qa = m.add_net(format!("qa{i}")).unwrap();
            let qb = m.add_net(format!("d[{i}]")).unwrap();
            m.add_cell(
                format!("rin{i}"),
                "DFFX1",
                &[("D", Conn::Net(qb)), ("CK", Conn::Net(clk)), ("Q", Conn::Net(qa))],
            )
            .unwrap();
            let bus_bit = m.add_net(format!("bus[{i}]")).unwrap();
            m.add_cell(
                format!("inv{i}"),
                "INVX1",
                &[("A", Conn::Net(qa)), ("Z", Conn::Net(bus_bit))],
            )
            .unwrap();
        }
        let no_bus = group(&m, &lib, &GroupingOptions::default()).unwrap();
        assert_ne!(no_bus.region_of("inv0"), no_bus.region_of("inv1"));
        let with_bus = group(&m, &lib, &GroupingOptions::recommended()).unwrap();
        assert_eq!(with_bus.region_of("inv0"), with_bus.region_of("inv1"));
    }

    #[test]
    fn ff_to_ff_chains_join_the_driver_region() {
        let lib = vlib90::high_speed();
        let mut m = pipeline();
        // r2 directly drives a history flip-flop r3.
        let clk = m.find_net("clk").unwrap();
        let q2 = m.find_net("q2").unwrap();
        let q3 = m.add_net("q3").unwrap();
        m.add_cell(
            "r3",
            "DFFX1",
            &[("D", Conn::Net(q2)), ("CK", Conn::Net(clk)), ("Q", Conn::Net(q3))],
        )
        .unwrap();
        let regions = group(&m, &lib, &GroupingOptions::recommended()).unwrap();
        assert_eq!(regions.region_of("r3"), regions.region_of("r2"));
    }

    #[test]
    fn region_lookup_uses_the_prebuilt_index() {
        let m = pipeline();
        let lib = vlib90::high_speed();
        let regions = group(&m, &lib, &GroupingOptions::recommended()).unwrap();
        // Every member resolves through the name → index map, and the map
        // agrees with a full scan of the membership lists.
        for (i, r) in regions.regions.iter().enumerate() {
            for c in &r.cells {
                assert_eq!(regions.region_of(c), Some(i), "cell {c}");
            }
        }
        assert_eq!(regions.region_of("no_such_cell"), None);
    }

    #[test]
    fn gated_clock_loses_to_the_primary_port_clock() {
        // Half the flip-flops run on a derived (gated) clock produced by
        // combinational logic; the other half on the port clock. With equal
        // clock-pin counts the port-driven net must win, independent of
        // hash-map iteration order.
        let lib = vlib90::high_speed();
        let mut m = Module::new("g");
        m.add_port("clk", PortDir::Input).unwrap();
        m.add_port("en", PortDir::Input).unwrap();
        let clk = m.find_net("clk").unwrap();
        let en = m.find_net("en").unwrap();
        let gclk = m.add_net("aaa_gated").unwrap(); // sorts before "clk"
        m.add_cell(
            "cg",
            "AND2X1",
            &[("A", Conn::Net(clk)), ("B", Conn::Net(en)), ("Z", Conn::Net(gclk))],
        )
        .unwrap();
        for i in 0..3 {
            let d = m.add_net(format!("d{i}")).unwrap();
            let qp = m.add_net(format!("qp{i}")).unwrap();
            let qg = m.add_net(format!("qg{i}")).unwrap();
            m.add_cell(
                format!("rp{i}"),
                "DFFX1",
                &[("D", Conn::Net(d)), ("CK", Conn::Net(clk)), ("Q", Conn::Net(qp))],
            )
            .unwrap();
            m.add_cell(
                format!("rg{i}"),
                "DFFX1",
                &[("D", Conn::Net(d)), ("CK", Conn::Net(gclk)), ("Q", Conn::Net(qg))],
            )
            .unwrap();
        }
        for _ in 0..32 {
            let found = find_clock_net(&m, &lib).unwrap();
            assert_eq!(m.net(found).name, "clk");
        }
    }
}
