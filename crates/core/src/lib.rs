//! # drd-core — the `drdesync` desynchronization tool
//!
//! The paper's primary contribution (Chapter 3): a tool that transforms a
//! post-synthesis synchronous gate-level netlist into a desynchronized —
//! asynchronous, handshake-controlled — netlist, plus the backend timing
//! constraints that let a conventional synchronous flow finish the chip.
//!
//! The pipeline (§3.2) is exposed both as individual passes and through
//! the one-call [`Desynchronizer`]:
//!
//! 1. design import — [`drd_netlist::verilog`] (the netlist crate)
//! 2. automatic region creation — [`region`] (Figs. 3.3–3.6)
//! 3. flip-flop substitution — [`ffsub`] (Fig. 3.1), driven by the
//!    library's [`drd_liberty::gatefile`] replacement rules
//! 4. data-dependency graph — [`ddg`] (Fig. 2.6)
//! 5. delay-element creation — [`delay_element`] (Figs. 2.8/2.9), sized by
//!    STA
//! 6. control-network insertion — [`controller`] + [`celement`] +
//!    [`network`] (Figs. 2.7/2.11)
//! 7. design export + physical timing constraints — [`sdc`] (Figs. 4.2/4.5)
//!
//! ```no_run
//! use drd_core::{DesyncOptions, Desynchronizer};
//! use drd_liberty::vlib90;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let lib = vlib90::high_speed();
//! let module = drd_netlist::verilog::parse_module(&std::fs::read_to_string("chip.v")?)?;
//! let result = Desynchronizer::new(&lib)?.run(&module, &DesyncOptions::default())?;
//! std::fs::write("chip_desync.v", drd_netlist::verilog::write_design(&result.design))?;
//! std::fs::write("chip_desync.sdc", &result.sdc)?;
//! # Ok(())
//! # }
//! ```

pub mod celement;
#[deny(clippy::unwrap_used, clippy::panic)]
pub mod controller;
pub mod ddg;
pub mod delay_element;
#[deny(clippy::unwrap_used, clippy::panic)]
mod desync;
mod error;
#[deny(clippy::unwrap_used, clippy::panic)]
pub mod ffsub;
pub mod liveness;
pub mod network;
pub mod pipeline;
#[deny(clippy::unwrap_used, clippy::panic)]
pub mod region;
pub mod sdc;

pub use desync::{
    region_delays, region_delays_with, DesyncOptions, DesyncReport, DesyncResult, Desynchronizer,
    RegionSummary,
};
pub use error::{DegradeReason, Degradation, DesyncError};
pub use liveness::{LivenessAction, LivenessRepair};
pub use pipeline::{
    FlowContext, FlowErrorTrace, FlowTrace, LivenessGuardPass, Pass, PassReport, PassTrace,
    Pipeline,
};
