//! Liveness guard (the ninth pass, DESIGN.md §3i).
//!
//! The loopback environment (`crate::network`) feeds a *source* region's
//! own slave request back as its input request. That request falls as
//! soon as the successor acknowledges, so its pulse width equals the
//! successor's response time — and a source whose matched delay exceeds
//! that width has its request swallowed by the asymmetric delay element
//! (every AND stage is fed by the input, so a falling input collapses
//! the whole chain) and the region wedges after one transfer. Interior
//! regions are immune: their requests are held by C-element joins until
//! the consumer has answered.
//!
//! The guard computes a conservative response-time bound for every
//! source region's successors, flags sources whose request-chain rise
//! time can outlive the pulse, and repairs each hazard with a
//! deterministic ladder:
//!
//! 1. **Deepen** the deficient successors' delay elements so the pulse
//!    outlives the source's rise time (with the flow's delay margin) —
//!    unless the new chain would exceed the clock-period timing budget.
//! 2. **Latch** the source's loopback with a request-extending
//!    C-element (`C2(ros, !aim)`): the request is held until the
//!    region's own master acknowledges, so no pulse can be swallowed.
//! 3. **Degrade** the source to synchronous (reusing the per-region
//!    degradation machinery) when simulation shows the network still
//!    wedges — a strict run turns this rung into
//!    [`DesyncError::Liveness`] instead.
//!
//! Every decision is recorded as a [`LivenessRepair`] and the repaired
//! network is validated by `drd_sim::handshake`: the planner keeps
//! repairing until the previously-deadlocking topology settles, and an
//! unrepaireable deadlock is always a structured error — never silent.
//!
//! Determinism: hazards are processed one per round in region-index
//! order, all netlist surgery is serial in record order, and the bound
//! math uses only library constants and one deterministic STA probe —
//! the records and the repaired netlist are byte-identical for every
//! worker count.

use std::fmt;

use drd_liberty::{Corner, Library};
use drd_netlist::{CellId, Conn, Design, ModuleId};
use drd_sim::{HandshakeNet, HandshakeSpec, RegionSpec};
use drd_sta::{GraphOptions, TimingGraph};

use crate::delay_element;
use crate::network::{delem_module_name, enable_net_names};
use crate::DesyncError;

/// Stages of the probe chain whose per-stage STA arrivals seed
/// [`ResponseModel::chain_delay_ns`]; deeper chains extrapolate with the
/// last measured stage-to-stage gap.
const CHAIN_PROBE_LEVELS: usize = 40;

/// Library-derived constants of the response-bound model.
///
/// A successor's response time to a rising request is its own matched
/// delay (the request must traverse the deepened chain) plus its request
/// join tree (one C-element stage per `log2` of the controlled fan-in)
/// plus the controller round trip — request C-element, master latch
/// controller, acknowledge inverter, slave controller — approximated by
/// one worst-case intrinsic delay of each gate in that path.
///
/// The chain term is per-edge STA, not a linear average: [`Self::probe`]
/// runs one timing analysis over a [`CHAIN_PROBE_LEVELS`]-stage delay
/// element and records the arrival at every stage output, so wire/fanout
/// load (the BUFX2 feed segmentation, the shared fast-fall net) is in
/// the bound. The table only ever *raises* the response bound over the
/// old `levels × level_delay_ns` floor, so hazards can only shrink and
/// deepen targets never increase relative to the linear model.
#[derive(Debug, Clone, PartialEq)]
pub struct ResponseModel {
    /// Typical-corner delay of one AND level of a delay element (ns).
    pub level_delay_ns: f64,
    /// Controller round-trip delay: `C2RX1 + BUFX1 + INVX1 + C2SX1` (ns).
    pub ctrl_response_ns: f64,
    /// Typical-corner delay of one C2X1 join-tree stage (ns); 0 in flat
    /// models.
    join_stage_ns: f64,
    /// `chain_arrival_ns[i]` = STA arrival at stage `i`'s output of the
    /// probe chain — the measured delay of an `(i+1)`-level element with
    /// its real wire load. Empty in flat models.
    chain_arrival_ns: Vec<f64>,
}

impl ResponseModel {
    /// A load-blind linear model: `response = levels × level_delay +
    /// ctrl_response`, no join-tree credit. This is the conservative
    /// floor [`Self::probe`] refines; tests use it for closed-form
    /// arithmetic.
    pub fn flat(level_delay_ns: f64, ctrl_response_ns: f64) -> Self {
        ResponseModel {
            level_delay_ns,
            ctrl_response_ns,
            join_stage_ns: 0.0,
            chain_arrival_ns: Vec::new(),
        }
    }

    /// Probes the model's constants from `lib` by STA, including the
    /// per-stage arrival table of a [`CHAIN_PROBE_LEVELS`]-deep chain.
    ///
    /// # Errors
    /// [`DesyncError::UnknownCell`] when a controller gate is missing;
    /// propagates STA errors from the chain probe.
    pub fn probe(lib: &Library) -> Result<Self, DesyncError> {
        let level_delay_ns = delay_element::level_delay_ns(lib)?;
        let d = |name: &str| {
            lib.cell(name)
                .map(|c| c.max_intrinsic_delay())
                .ok_or_else(|| DesyncError::UnknownCell { name: name.to_owned() })
        };
        let ctrl_response_ns = d("C2RX1")? + d("BUFX1")? + d("INVX1")? + d("C2SX1")?;
        let join_stage_ns = d("C2X1")?;

        let probe = delay_element::build_fixed("drd_delem_edge_probe", CHAIN_PROBE_LEVELS);
        let graph = TimingGraph::build(&probe, lib, &GraphOptions::default())?;
        let arrivals = graph.arrivals(Corner::typical())?;
        let mut chain_arrival_ns = Vec::with_capacity(CHAIN_PROBE_LEVELS);
        for i in 0..CHAIN_PROBE_LEVELS {
            let node = graph.find_pin(&format!("u{i}"), "Z").ok_or_else(|| {
                DesyncError::Pipeline {
                    message: format!("response-model probe: chain stage u{i} missing"),
                }
            })?;
            chain_arrival_ns.push(arrivals.at(node));
        }
        Ok(ResponseModel {
            level_delay_ns,
            ctrl_response_ns,
            join_stage_ns,
            chain_arrival_ns,
        })
    }

    /// Rise time of a `levels`-deep request chain (ns). Deliberately the
    /// linear floor, never the STA table: over-estimating the *source's*
    /// pulse length would under-flag, so only the successor side gets the
    /// refined (larger) number.
    pub fn rise_ns(&self, levels: usize) -> f64 {
        levels as f64 * self.level_delay_ns
    }

    /// STA-measured propagation delay of a `levels`-deep chain (ns),
    /// clamped from below by the linear estimate so refining the model
    /// can only raise response bounds, never lower them.
    fn chain_delay_ns(&self, levels: usize) -> f64 {
        let linear = self.rise_ns(levels);
        if levels == 0 || self.chain_arrival_ns.is_empty() {
            return linear;
        }
        let n = self.chain_arrival_ns.len();
        let sta = if levels <= n {
            self.chain_arrival_ns[levels - 1]
        } else {
            // Beyond the probe: extend with the last stage-to-stage gap
            // (the chain is periodic past the first feed segment).
            let slope = if n >= 2 {
                self.chain_arrival_ns[n - 1] - self.chain_arrival_ns[n - 2]
            } else {
                self.level_delay_ns
            };
            self.chain_arrival_ns[n - 1] + (levels - n) as f64 * slope
        };
        linear.max(sta)
    }

    /// C-element stages in the request join tree of a successor fed by
    /// `fanin` controlled predecessors (balanced pairwise reduction:
    /// `⌈log2 fanin⌉`, 0 for a single raw-wire predecessor).
    pub fn join_levels(fanin: usize) -> usize {
        if fanin < 2 {
            0
        } else {
            (usize::BITS - (fanin - 1).leading_zeros()) as usize
        }
    }

    /// Per-edge response time of a successor with a `levels`-deep delay
    /// element whose request join is fed by `join_fanin` controlled
    /// predecessors (ns): STA chain delay + join-tree stages + controller
    /// round trip.
    pub fn edge_response_ns(&self, levels: usize, join_fanin: usize) -> f64 {
        self.chain_delay_ns(levels)
            + Self::join_levels(join_fanin) as f64 * self.join_stage_ns
            + self.ctrl_response_ns
    }

    /// Response time of a successor with a `levels`-deep delay element
    /// and no join-tree credit (ns) — the single-predecessor edge bound.
    pub fn response_ns(&self, levels: usize) -> f64 {
        self.edge_response_ns(levels, 0)
    }
}

/// Number of controlled predecessors feeding region `s`'s request join —
/// the fan-in that sizes its C-element join tree in the elaborated
/// control network.
pub fn join_fanin(states: &[RegionState], edges: &[(usize, usize)], s: usize) -> usize {
    edges
        .iter()
        .filter(|&&(p, q)| q == s && p != s && states[p].controlled)
        .count()
}

/// The planner's view of one region — the spec-level state the ladder
/// operates on before any netlist surgery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegionState {
    /// Region name (`g0`, …).
    pub name: String,
    /// Carries a controller pair and delay element.
    pub controlled: bool,
    /// Matched delay-element levels.
    pub levels: usize,
    /// A request-extending latch holds the loopback request.
    pub latched: bool,
}

/// Whether region `i` is a loopback source: controlled, no controlled
/// predecessors (a self-loop counts as a predecessor) and at least one
/// controlled successor to swallow its pulse.
pub fn is_source(states: &[RegionState], edges: &[(usize, usize)], i: usize) -> bool {
    states[i].controlled
        && !edges.iter().any(|&(p, s)| s == i && states[p].controlled)
        && edges
            .iter()
            .any(|&(p, s)| p == i && s != i && states[s].controlled)
}

/// One flagged pulse-swallowing hazard.
#[derive(Debug, Clone, PartialEq)]
pub struct Hazard {
    /// Index of the source region.
    pub region: usize,
    /// The source's request-chain rise time (ns).
    pub rise_ns: f64,
    /// The fastest successor's response time — the pulse width (ns).
    pub bound_ns: f64,
    /// Successors whose response is below `rise_ns ×` the margin.
    pub deficient: Vec<usize>,
}

/// Flags every unlatched source whose rise time reaches the fastest
/// successor's response bound, in region-index order.
pub fn hazards(
    model: &ResponseModel,
    states: &[RegionState],
    edges: &[(usize, usize)],
    margin: f64,
) -> Vec<Hazard> {
    (0..states.len())
        .filter(|&i| is_source(states, edges, i) && !states[i].latched)
        .filter_map(|i| {
            let rise = model.rise_ns(states[i].levels);
            let succs: Vec<usize> = edges
                .iter()
                .filter(|&&(p, s)| p == i && s != i && states[s].controlled)
                .map(|&(_, s)| s)
                .collect();
            let edge = |s: usize| {
                model.edge_response_ns(states[s].levels, join_fanin(states, edges, s))
            };
            let bound = succs.iter().map(|&s| edge(s)).fold(f64::INFINITY, f64::min);
            if rise < bound {
                return None;
            }
            let deficient: Vec<usize> =
                succs.iter().copied().filter(|&s| edge(s) < rise * margin).collect();
            Some(Hazard { region: i, rise_ns: rise, bound_ns: bound, deficient })
        })
        .collect()
}

/// What one repair did.
#[derive(Debug, Clone, PartialEq)]
pub enum LivenessAction {
    /// A deficient successor's delay element was swapped for a deeper
    /// one (the instance name is unchanged; only its module changes).
    DeepenSuccessor {
        /// The successor whose element was deepened.
        successor: String,
        /// Levels before the repair.
        from_levels: usize,
        /// Levels after the repair.
        to_levels: usize,
    },
    /// A request-extending C-element latch was inserted on the source's
    /// loopback path.
    RequestLatch,
    /// The source was degraded to synchronous.
    Degrade,
}

/// One recorded liveness repair — a FlowTrace / report artifact.
#[derive(Debug, Clone, PartialEq)]
pub struct LivenessRepair {
    /// The source region whose pulse was at risk.
    pub region: String,
    /// The source's request-chain rise time at decision time (ns).
    pub rise_ns: f64,
    /// The fastest successor's response bound at decision time (ns).
    pub response_bound_ns: f64,
    /// The rung of the ladder that was applied.
    pub action: LivenessAction,
}

impl fmt::Display for LivenessRepair {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "region `{}`: request rise {:.3} ns vs successor response {:.3} ns — ",
            self.region, self.rise_ns, self.response_bound_ns
        )?;
        match &self.action {
            LivenessAction::DeepenSuccessor { successor, from_levels, to_levels } => write!(
                f,
                "deepened `{successor}`'s delay element {from_levels} → {to_levels} levels"
            ),
            LivenessAction::RequestLatch => {
                write!(f, "request-extending latch inserted on the loopback")
            }
            LivenessAction::Degrade => write!(f, "repairs exhausted, region left synchronous"),
        }
    }
}

fn rise_and_bound(
    model: &ResponseModel,
    states: &[RegionState],
    edges: &[(usize, usize)],
    i: usize,
) -> (f64, f64) {
    let rise = model.rise_ns(states[i].levels);
    let bound = edges
        .iter()
        .filter(|&&(p, s)| p == i && s != i && states[s].controlled)
        .map(|&(_, s)| model.edge_response_ns(states[s].levels, join_fanin(states, edges, s)))
        .fold(f64::INFINITY, f64::min);
    (rise, bound)
}

/// Plans the repair ladder over spec-level state.
///
/// Phase A screens statically: each hazard (one per round, region-index
/// order) either deepens all deficient successors — sized so their
/// response covers `margin ×` the source's rise, rejected when the new
/// chain's own rise would exceed `clock_period_ns` — or, over budget,
/// latches the source's loopback. Phase B validates dynamically: while
/// `validate` reports a deadlock, the first unlatched source is latched;
/// with every source latched, the first source is degraded (an error in
/// `strict` mode). A deadlock that survives all rungs is
/// [`DesyncError::Liveness`].
///
/// `validate` receives the candidate state and returns `Ok(true)` when
/// the network settles (or the topology is vacuous — the caller decides).
/// `states` is mutated to the final planned state; the returned records
/// are the repairs in application order.
///
/// # Errors
/// [`DesyncError::Liveness`] as above; propagates validator errors.
pub fn plan_repairs(
    model: &ResponseModel,
    states: &mut [RegionState],
    edges: &[(usize, usize)],
    clock_period_ns: f64,
    margin: f64,
    strict: bool,
    mut validate: impl FnMut(&[RegionState]) -> Result<bool, DesyncError>,
) -> Result<Vec<LivenessRepair>, DesyncError> {
    let n = states.len();
    let mut repairs = Vec::new();

    // Phase A: static screening. Deepening only raises successor
    // response times and latching removes a source from the hazard set,
    // so one hazard per round converges; the cap is pure defence.
    for _ in 0..(2 * n + 2) {
        let Some(h) = hazards(model, states, edges, margin).into_iter().next() else {
            break;
        };
        // Per-successor deepen target: the smallest depth whose per-edge
        // response covers margin × rise. The upward search replaces the
        // old closed-form linear target; because the STA table only
        // raises the bound, the search can only stop earlier — targets
        // never increase relative to the linear model. The search quits
        // at the clock budget (the `within_budget` check then latches).
        let wanted: Vec<(usize, usize)> = h
            .deficient
            .iter()
            .map(|&s| {
                let fanin = join_fanin(states, edges, s);
                let floor = states[s].levels + 1;
                let mut to = floor;
                while model.edge_response_ns(to, fanin) < h.rise_ns * margin
                    && model.rise_ns(to) <= clock_period_ns
                    && to < floor + 100_000
                {
                    to += 1;
                }
                (s, to)
            })
            .collect();
        let within_budget =
            wanted.iter().all(|&(_, to)| model.rise_ns(to) <= clock_period_ns);
        if within_budget && !wanted.is_empty() {
            for (s, to) in wanted {
                let from = states[s].levels;
                states[s].levels = to;
                repairs.push(LivenessRepair {
                    region: states[h.region].name.clone(),
                    rise_ns: h.rise_ns,
                    response_bound_ns: h.bound_ns,
                    action: LivenessAction::DeepenSuccessor {
                        successor: states[s].name.clone(),
                        from_levels: from,
                        to_levels: to,
                    },
                });
            }
        } else {
            states[h.region].latched = true;
            repairs.push(LivenessRepair {
                region: states[h.region].name.clone(),
                rise_ns: h.rise_ns,
                response_bound_ns: h.bound_ns,
                action: LivenessAction::RequestLatch,
            });
        }
    }

    // Phase B: dynamic validation. Degrading a source can expose new
    // sources (its successors lose their predecessor); their hazards
    // surface as fresh deadlocks and are latched on the next round.
    let cap = 3 * n + 3;
    let mut iterations = 0usize;
    loop {
        if validate(states)? {
            return Ok(repairs);
        }
        iterations += 1;
        let sources: Vec<usize> = (0..n).filter(|&i| is_source(states, edges, i)).collect();
        if iterations <= cap {
            if let Some(&i) = sources.iter().find(|&&i| !states[i].latched) {
                let (rise, bound) = rise_and_bound(model, states, edges, i);
                states[i].latched = true;
                repairs.push(LivenessRepair {
                    region: states[i].name.clone(),
                    rise_ns: rise,
                    response_bound_ns: bound,
                    action: LivenessAction::RequestLatch,
                });
                continue;
            }
            if let Some(&i) = sources.first() {
                if strict {
                    return Err(DesyncError::Liveness {
                        region: states[i].name.clone(),
                        message: format!(
                            "network still deadlocks after {} repair(s); the region \
                             would be degraded to synchronous (strict mode)",
                            repairs.len()
                        ),
                    });
                }
                let (rise, bound) = rise_and_bound(model, states, edges, i);
                states[i].controlled = false;
                states[i].latched = false;
                repairs.push(LivenessRepair {
                    region: states[i].name.clone(),
                    rise_ns: rise,
                    response_bound_ns: bound,
                    action: LivenessAction::Degrade,
                });
                continue;
            }
        }
        // No repairable source left (or the cap tripped): the deadlock
        // is not the source-pulse hazard — refuse to ship it silently.
        let region = sources
            .first()
            .map_or_else(|| "<network>".to_owned(), |&i| states[i].name.clone());
        return Err(DesyncError::Liveness {
            region,
            message: format!(
                "control network still deadlocks after {} repair(s)",
                repairs.len()
            ),
        });
    }
}

/// Validates spec-level state with the handshake simulator: `Ok(true)`
/// when the network settles — or when the topology is vacuous (no
/// controlled region, or an isolated controlled region whose
/// loopback + eager-ack environment wedges by construction; the
/// handshake-timing oracle skips the same shapes) — and `Ok(false)` on a
/// simulated deadlock.
///
/// # Errors
/// Propagates elaboration failures and non-deadlock simulation errors.
pub fn validate_with_sim(
    states: &[RegionState],
    edges: &[(usize, usize)],
    critical_delays_ns: &[f64],
    lib: &Library,
    level_delay_ns: f64,
    ff_overhead_ns: f64,
) -> Result<bool, DesyncError> {
    if !states.iter().any(|s| s.controlled) {
        return Ok(true);
    }
    let isolated = states.iter().enumerate().any(|(i, s)| {
        s.controlled
            && !edges.iter().any(|&(p, q)| {
                (q == i && states[p].controlled) || (p == i && states[q].controlled)
            })
    });
    if isolated {
        return Ok(true);
    }
    let spec = HandshakeSpec {
        regions: states
            .iter()
            .enumerate()
            .map(|(i, s)| RegionSpec {
                name: s.name.clone(),
                controlled: s.controlled,
                matched_levels: s.levels,
                critical_delay_ns: critical_delays_ns.get(i).copied().unwrap_or(0.0),
                loopback_latch: s.latched,
            })
            .collect(),
        edges: edges.to_vec(),
        level_delay_ns,
        ff_overhead_ns,
    };
    let net = HandshakeNet::elaborate(&spec, lib).map_err(|e| DesyncError::Pipeline {
        message: format!("liveness validation: {e}"),
    })?;
    match net.nominal_cycle_times() {
        Ok(_) => Ok(true),
        Err(e) => {
            let message = e.to_string();
            if message.contains("deadlock") {
                Ok(false)
            } else {
                Err(DesyncError::Pipeline {
                    message: format!("liveness validation: {message}"),
                })
            }
        }
    }
}

/// Swaps region `succ`'s delay element for a `to_levels`-deep module.
/// The instance name (`drd_<succ>_delem`) is unchanged — SDC constraints
/// keep matching — and the new module is created (and deduplicated) on
/// demand.
///
/// # Errors
/// [`DesyncError::Pipeline`] when the instance is missing; propagates
/// STA errors from muxed-overhead probing.
pub fn apply_deepen(
    design: &mut Design,
    top: ModuleId,
    succ: &str,
    to_levels: usize,
    muxed: bool,
    lib: &Library,
) -> Result<(), DesyncError> {
    let module_name = delem_module_name(muxed, to_levels);
    if design.find_module(&module_name).is_none() {
        let module = if muxed {
            let overhead = delay_element::mux_overhead_levels(lib)?;
            delay_element::build_muxed(&module_name, to_levels, overhead)
        } else {
            delay_element::build_fixed(&module_name, to_levels)
        };
        design.insert(module);
    }
    let m = design.module_mut(top);
    let inst = format!("drd_{succ}_delem");
    let cell = m.find_cell(&inst).ok_or_else(|| DesyncError::Pipeline {
        message: format!("liveness deepen: delay element `{inst}` missing"),
    })?;
    let kind = m.instance_kind(&module_name);
    m.set_cell_kind(cell, kind);
    Ok(())
}

/// Inserts the request-extending latch on `region`'s loopback path:
/// `C2(ros, !aim)` between the slave request and the delay element, so
/// the looped-back request is held high until the region's own master
/// acknowledges. Both C-element inputs are 1 at reset (the slave request
/// resets high, the master acknowledge low), so the element
/// self-initializes to the bare-wire value — the same argument that lets
/// the join trees go without explicit resets.
///
/// # Errors
/// [`DesyncError::Pipeline`] when the region's handshake nets or delay
/// element are missing; propagates netlist errors.
pub fn apply_latch(design: &mut Design, top: ModuleId, region: &str) -> Result<(), DesyncError> {
    let m = design.module_mut(top);
    let net = |m: &drd_netlist::Module, name: &str| {
        m.find_net(name).ok_or_else(|| DesyncError::Pipeline {
            message: format!("liveness latch: net `{name}` missing"),
        })
    };
    let ros = net(m, &format!("drd_{region}_ros"))?;
    let aim = net(m, &format!("drd_{region}_aim"))?;
    let nai = m.add_net_auto(&format!("drd_{region}_reqext_nai"));
    let q = m.add_net_auto(&format!("drd_{region}_reqext_q"));
    m.add_cell(
        format!("drd_{region}_reqext_inv"),
        "INVX1",
        &[("A", Conn::Net(aim)), ("Z", Conn::Net(nai))],
    )?;
    m.add_cell(
        format!("drd_{region}_reqext"),
        "C2X1",
        &[("A", Conn::Net(ros)), ("B", Conn::Net(nai)), ("Z", Conn::Net(q))],
    )?;
    let delem_name = format!("drd_{region}_delem");
    let delem = m.find_cell(&delem_name).ok_or_else(|| DesyncError::Pipeline {
        message: format!("liveness latch: delay element `{delem_name}` missing"),
    })?;
    m.set_pin(delem, "in1", Conn::Net(q));
    Ok(())
}

/// What [`apply_degrade`] removed, for report bookkeeping.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DegradeStats {
    /// Names of every removed cell.
    pub removed_cells: Vec<String>,
    /// How many of them were C-elements.
    pub removed_celements: usize,
}

/// Degrades source region `region` back to synchronous: removes its
/// controller pair, delay element, request-extending latch (if any) and
/// acknowledge-join tree, re-clocks its latch enables from `clock_net`
/// (master transparent clock-low via an inverter, slave clock-high via a
/// buffer — the master/slave phasing of the original flip-flops), and
/// rewires each controlled successor's request input: a direct loopback
/// wire becomes the successor's own loopback (the successor is now a
/// source itself), a join-tree input is shorted through to its sibling
/// (a C-element with equal inputs follows them).
///
/// Only *sources* are ever degraded here, which is what keeps the
/// surgery tractable: no upstream region holds a reference to a source's
/// handshake nets.
///
/// # Errors
/// [`DesyncError::Pipeline`] when the expected structure is missing;
/// propagates netlist errors.
pub fn apply_degrade(
    design: &mut Design,
    top: ModuleId,
    region: &str,
    succs: &[String],
    clock_net: &str,
) -> Result<DegradeStats, DesyncError> {
    let m = design.module_mut(top);
    let ros = m
        .find_net(&format!("drd_{region}_ros"))
        .ok_or_else(|| DesyncError::Pipeline {
            message: format!("liveness degrade: net `drd_{region}_ros` missing"),
        })?;

    // Rewire successors off the dying request net first.
    for s in succs {
        let delem_name = format!("drd_{s}_delem");
        let delem = m.find_cell(&delem_name).ok_or_else(|| DesyncError::Pipeline {
            message: format!("liveness degrade: delay element `{delem_name}` missing"),
        })?;
        let direct = m
            .cell_pins(delem)
            .iter()
            .any(|&(p, c)| m.resolve(p) == "in1" && c == Conn::Net(ros));
        if direct {
            // The source was the successor's only predecessor: loop the
            // successor's own slave request back, making it a source.
            let own = m.find_net(&format!("drd_{s}_ros")).ok_or_else(|| {
                DesyncError::Pipeline {
                    message: format!("liveness degrade: net `drd_{s}_ros` missing"),
                }
            })?;
            m.set_pin(delem, "in1", Conn::Net(own));
            continue;
        }
        // Request join tree: short the source's input through to its
        // sibling — C2(x, x) is a follower of x.
        let join_prefix = format!("drd_{s}_ri_uc");
        let joins: Vec<CellId> = m
            .cells()
            .filter(|(_, c)| c.name.starts_with(join_prefix.as_str()))
            .map(|(id, _)| id)
            .collect();
        for id in joins {
            let pins = m.cell_pins(id);
            let Some(&(hit, _)) = pins
                .iter()
                .find(|&&(p, c)| c == Conn::Net(ros) && m.resolve(p) != "Z")
            else {
                continue;
            };
            let Some(&(_, sibling)) = pins
                .iter()
                .find(|&&(p, c)| p != hit && c != Conn::Net(ros) && m.resolve(p) != "Z")
            else {
                continue;
            };
            m.set_pin_sym(id, hit, sibling);
        }
    }

    // Remove the region's control machinery.
    let exact = [
        format!("drd_{region}_ctlm"),
        format!("drd_{region}_ctls"),
        format!("drd_{region}_delem"),
        format!("drd_{region}_reqext"),
        format!("drd_{region}_reqext_inv"),
    ];
    let ao_prefix = format!("drd_{region}_ao_uc");
    let ri_prefix = format!("drd_{region}_ri_uc");
    let mut stats = DegradeStats::default();
    let doomed: Vec<(CellId, String, bool)> = m
        .cells()
        .filter(|(_, c)| {
            exact.iter().any(|e| e.as_str() == c.name)
                || c.name.starts_with(ao_prefix.as_str())
                || c.name.starts_with(ri_prefix.as_str())
        })
        .map(|(id, c)| (id, c.name.to_owned(), c.kind_name() == "C2X1"))
        .collect();
    for (id, name, is_c2) in doomed {
        m.remove_cell(id);
        if is_c2 {
            stats.removed_celements += 1;
        }
        stats.removed_cells.push(name);
    }

    // Re-clock the latch enables from the original clock: the master
    // latch is transparent while the clock is low, the slave while it is
    // high — together an edge-triggered pair again. The enable-tree
    // buffers keep fanning the re-driven root nets out.
    let clk = m.find_net(clock_net).ok_or_else(|| DesyncError::Pipeline {
        message: format!("liveness degrade: clock net `{clock_net}` missing"),
    })?;
    let (gm_name, gs_name) = enable_net_names(region);
    let gm = m.find_net(&gm_name).ok_or_else(|| DesyncError::Pipeline {
        message: format!("liveness degrade: enable net `{gm_name}` missing"),
    })?;
    let gs = m.find_net(&gs_name).ok_or_else(|| DesyncError::Pipeline {
        message: format!("liveness degrade: enable net `{gs_name}` missing"),
    })?;
    m.add_cell(
        format!("drd_{region}_syncm"),
        "INVX1",
        &[("A", Conn::Net(clk)), ("Z", Conn::Net(gm))],
    )?;
    m.add_cell(
        format!("drd_{region}_syncs"),
        "BUFX1",
        &[("A", Conn::Net(clk)), ("Z", Conn::Net(gs))],
    )?;
    Ok(stats)
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::panic)]
    use super::*;
    use drd_liberty::vlib90;

    fn st(name: &str, levels: usize) -> RegionState {
        RegionState { name: name.into(), controlled: true, levels, latched: false }
    }

    /// Source g0 (24 levels) → sink g1 (2 levels): the stall-test shape.
    fn imbalanced() -> (Vec<RegionState>, Vec<(usize, usize)>) {
        (vec![st("g0", 24), st("g1", 2)], vec![(0, 1)])
    }

    #[test]
    fn model_probe_is_positive() {
        let model = ResponseModel::probe(&vlib90::high_speed()).unwrap();
        assert!(model.level_delay_ns > 0.0);
        assert!(model.ctrl_response_ns > 0.0);
        assert!(model.response_ns(3) > model.rise_ns(3));
    }

    #[test]
    fn probed_bound_never_below_the_linear_floor() {
        let model = ResponseModel::probe(&vlib90::high_speed()).unwrap();
        let flat = ResponseModel::flat(model.level_delay_ns, model.ctrl_response_ns);
        for levels in 1..64 {
            assert!(
                model.response_ns(levels) >= flat.response_ns(levels) - 1e-12,
                "levels {levels}: {} < {}",
                model.response_ns(levels),
                flat.response_ns(levels)
            );
        }
    }

    #[test]
    fn join_fanin_credit_raises_the_edge_bound() {
        assert_eq!(ResponseModel::join_levels(0), 0);
        assert_eq!(ResponseModel::join_levels(1), 0);
        assert_eq!(ResponseModel::join_levels(2), 1);
        assert_eq!(ResponseModel::join_levels(3), 2);
        assert_eq!(ResponseModel::join_levels(4), 2);
        assert_eq!(ResponseModel::join_levels(5), 3);
        let model = ResponseModel::probe(&vlib90::high_speed()).unwrap();
        assert!(model.edge_response_ns(4, 2) > model.edge_response_ns(4, 1));
        assert!(
            (model.edge_response_ns(4, 1) - model.edge_response_ns(4, 0)).abs() < 1e-12,
            "a single raw-wire predecessor has no join tree"
        );
    }

    #[test]
    fn join_fanin_counts_controlled_predecessors_only() {
        let states = vec![st("g0", 4), st("g1", 4), st("g2", 4)];
        let edges = vec![(0, 2), (1, 2), (2, 2)];
        assert_eq!(join_fanin(&states, &edges, 2), 2, "self-loop excluded");
        let mut half = states;
        half[1].controlled = false;
        assert_eq!(join_fanin(&half, &edges, 2), 1);
    }

    #[test]
    fn probed_model_never_deepens_more_than_the_linear_model() {
        // ROADMAP liveness follow-on (a): the per-edge STA bound repairs
        // *less* aggressively — the stall-shape deepen target under the
        // probed model is never deeper than under the load-blind linear
        // model it replaces.
        let probed = ResponseModel::probe(&vlib90::high_speed()).unwrap();
        let flat = ResponseModel::flat(probed.level_delay_ns, probed.ctrl_response_ns);
        let to_levels = |model: &ResponseModel| {
            let (mut states, edges) = imbalanced();
            let repairs =
                plan_repairs(model, &mut states, &edges, 10.0, 1.08, false, |_| Ok(true))
                    .unwrap();
            match &repairs[0].action {
                LivenessAction::DeepenSuccessor { to_levels, .. } => *to_levels,
                other => panic!("expected a deepen, got {other:?}"),
            }
        };
        assert!(to_levels(&probed) <= to_levels(&flat));
    }

    #[test]
    fn hazard_classification_flags_the_imbalanced_source_only() {
        let model = ResponseModel::flat(0.09, 0.3);
        let (states, edges) = imbalanced();
        let found = hazards(&model, &states, &edges, 1.08);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].region, 0);
        assert_eq!(found[0].deficient, vec![1]);
        assert!(found[0].rise_ns > found[0].bound_ns);

        // Balanced chain: no hazard.
        let states = vec![st("g0", 4), st("g1", 4)];
        assert!(hazards(&model, &states, &edges, 1.08).is_empty());

        // Interior regions are never flagged: give the source a pred.
        let (states, _) = imbalanced();
        let ring = vec![(0, 1), (1, 0)];
        assert!(hazards(&model, &states, &ring, 1.08).is_empty());

        // A self-loop counts as a predecessor.
        let (states, _) = imbalanced();
        let looped = vec![(0, 1), (0, 0)];
        assert!(hazards(&model, &states, &looped, 1.08).is_empty());
    }

    #[test]
    fn planner_deepens_within_budget() {
        let model = ResponseModel::flat(0.09, 0.3);
        let (mut states, edges) = imbalanced();
        let repairs =
            plan_repairs(&model, &mut states, &edges, 10.0, 1.08, false, |_| Ok(true)).unwrap();
        assert_eq!(repairs.len(), 1, "{repairs:?}");
        let r = &repairs[0];
        assert_eq!(r.region, "g0");
        match &r.action {
            LivenessAction::DeepenSuccessor { successor, from_levels, to_levels } => {
                assert_eq!(successor, "g1");
                assert_eq!(*from_levels, 2);
                // Sized so the successor's response covers margin × rise.
                assert!(model.response_ns(*to_levels) >= r.rise_ns * 1.08, "{repairs:?}");
                assert_eq!(states[1].levels, *to_levels);
            }
            other => panic!("expected a deepen, got {other:?}"),
        }
        // The repaired state screens clean.
        assert!(hazards(&model, &states, &edges, 1.08).is_empty());
    }

    #[test]
    fn planner_latches_when_deepening_breaks_the_budget() {
        let model = ResponseModel::flat(0.09, 0.3);
        let (mut states, edges) = imbalanced();
        // Budget below even the source's own chain: deepening impossible.
        let repairs =
            plan_repairs(&model, &mut states, &edges, 1.0, 1.08, false, |_| Ok(true)).unwrap();
        assert_eq!(repairs.len(), 1, "{repairs:?}");
        assert_eq!(repairs[0].action, LivenessAction::RequestLatch);
        assert!(states[0].latched);
        assert_eq!(states[1].levels, 2, "successor untouched");
    }

    #[test]
    fn planner_latches_then_degrades_on_persistent_deadlock() {
        let model = ResponseModel::flat(0.09, 0.3);
        // Statically clean (balanced) but the validator insists on a
        // wedge until the source is degraded — the unreachable-in-flow
        // rung, exercised through the injected validator.
        let mut states = vec![st("g0", 4), st("g1", 4)];
        let edges = vec![(0, 1)];
        let mut calls = 0usize;
        let repairs = plan_repairs(&model, &mut states, &edges, 10.0, 1.08, false, |s| {
            calls += 1;
            Ok(!s[0].controlled)
        })
        .unwrap();
        assert!(calls >= 3, "validated after every rung: {calls}");
        assert_eq!(
            repairs.iter().map(|r| &r.action).collect::<Vec<_>>(),
            vec![&LivenessAction::RequestLatch, &LivenessAction::Degrade],
            "{repairs:?}"
        );
        assert!(!states[0].controlled);
    }

    #[test]
    fn strict_mode_turns_degrade_into_a_liveness_error() {
        let model = ResponseModel::flat(0.09, 0.3);
        let mut states = vec![st("g0", 4), st("g1", 4)];
        let edges = vec![(0, 1)];
        let err = plan_repairs(&model, &mut states, &edges, 10.0, 1.08, true, |s| {
            Ok(!s[0].controlled)
        })
        .unwrap_err();
        assert!(
            matches!(&err, DesyncError::Liveness { region, .. } if region == "g0"),
            "{err:?}"
        );
    }

    #[test]
    fn unrepairable_deadlock_is_a_structured_error() {
        let model = ResponseModel::flat(0.09, 0.3);
        // A ring has no source at all: nothing to latch or degrade.
        let mut states = vec![st("g0", 4), st("g1", 4)];
        let edges = vec![(0, 1), (1, 0)];
        let err = plan_repairs(&model, &mut states, &edges, 10.0, 1.08, false, |_| Ok(false))
            .unwrap_err();
        match err {
            DesyncError::Liveness { region, message } => {
                assert_eq!(region, "<network>");
                assert!(message.contains("still deadlocks"), "{message}");
            }
            other => panic!("expected Liveness, got {other:?}"),
        }
    }

    #[test]
    fn repair_display_names_the_rungs() {
        let r = LivenessRepair {
            region: "g0".into(),
            rise_ns: 2.16,
            response_bound_ns: 0.48,
            action: LivenessAction::DeepenSuccessor {
                successor: "g1".into(),
                from_levels: 2,
                to_levels: 26,
            },
        };
        let text = r.to_string();
        assert!(text.contains("`g0`") && text.contains("2 → 26"), "{text}");
        let l = LivenessRepair { action: LivenessAction::RequestLatch, ..r.clone() };
        assert!(l.to_string().contains("latch"), "{l}");
        let d = LivenessRepair { action: LivenessAction::Degrade, ..r };
        assert!(d.to_string().contains("synchronous"), "{d}");
    }
}
