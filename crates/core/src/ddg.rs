//! Data-dependency graph construction (§2.4.1, §3.2.4, Fig. 2.6).
//!
//! Nodes are regions; a directed edge `r1 → r2` records a combinational
//! path from an output of `r1` (a register output, since region outputs
//! are always driven by registers) to an input of `r2`. The controller
//! network must respect these dependencies (Fig. 2.7).

use std::collections::HashSet;

use drd_liberty::Library;
use drd_netlist::{Conn, Endpoint, Module};

use crate::region::Regions;
use crate::DesyncError;

/// The region-level data-dependency graph.
#[derive(Debug, Clone)]
pub struct Ddg {
    /// Directed edges `(from, to)` over region indices.
    pub edges: Vec<(usize, usize)>,
    /// Predecessors per region.
    pub preds: Vec<Vec<usize>>,
    /// Successors per region.
    pub succs: Vec<Vec<usize>>,
    /// Regions with no predecessors, cached at build time.
    sources: Vec<usize>,
    /// Regions with no successors, cached at build time.
    sinks: Vec<usize>,
}

impl Ddg {
    /// Regions with no predecessors (fed only by primary inputs).
    /// Computed once in [`build`]; callers that need ownership can
    /// `.to_vec()` the returned slice.
    pub fn sources(&self) -> &[usize] {
        &self.sources
    }

    /// Regions with no successors. Cached at build time like
    /// [`Ddg::sources`].
    pub fn sinks(&self) -> &[usize] {
        &self.sinks
    }
}

/// Builds the data-dependency graph of `regions` over `module`.
///
/// Self-edges are recorded when a region's cloud reads its own registers
/// (e.g. a counter or an accumulator): the region's own master then
/// consumes its own slave's data, and the controller network must join it
/// into both the request and acknowledge paths.
///
/// # Errors
/// Propagates connectivity errors.
pub fn build(module: &Module, lib: &Library, regions: &Regions) -> Result<Ddg, DesyncError> {
    let conn = module.connectivity(lib)?;
    let mut edge_set: HashSet<(usize, usize)> = HashSet::new();
    for (cid, cell) in module.cells() {
        let Some(to) = regions.region_of(cell.name) else {
            continue;
        };
        for (_, c) in cell.pins() {
            let Conn::Net(net) = c else { continue };
            let Some(Endpoint::Pin(p)) = conn.driver(*net) else {
                continue;
            };
            if p.cell == cid {
                continue; // the cell's own output pin
            }
            let driver = module.cell(p.cell);
            let Some(from) = regions.region_of(driver.name) else {
                continue;
            };
            if from != to {
                edge_set.insert((from, to));
            } else if lib.is_sequential(driver.kind_ref()) {
                // The cloud reads the region's own registers.
                edge_set.insert((from, from));
            }
        }
    }
    let n = regions.regions.len();
    let mut edges: Vec<(usize, usize)> = edge_set.into_iter().collect();
    edges.sort_unstable();
    let mut preds = vec![Vec::new(); n];
    let mut succs = vec![Vec::new(); n];
    for &(from, to) in &edges {
        succs[from].push(to);
        preds[to].push(from);
    }
    let sources = (0..n).filter(|&r| preds[r].is_empty()).collect();
    let sinks = (0..n).filter(|&r| succs[r].is_empty()).collect();
    Ok(Ddg { edges, preds, succs, sources, sinks })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::region::{group, GroupingOptions};
    use drd_liberty::vlib90;
    use drd_netlist::PortDir;

    /// in → r_in(g0) → c1 → r1 → c2 → r2, with c2 also reading r_in.
    fn pipeline() -> Module {
        let mut m = Module::new("p");
        m.add_port("clk", PortDir::Input).unwrap();
        m.add_port("din", PortDir::Input).unwrap();
        let clk = m.find_net("clk").unwrap();
        let din = m.find_net("din").unwrap();
        let q0 = m.add_net("q0").unwrap();
        m.add_cell(
            "r_in",
            "DFFX1",
            &[("D", Conn::Net(din)), ("CK", Conn::Net(clk)), ("Q", Conn::Net(q0))],
        )
        .unwrap();
        let n1 = m.add_net("n1").unwrap();
        m.add_cell("c1", "INVX1", &[("A", Conn::Net(q0)), ("Z", Conn::Net(n1))])
            .unwrap();
        let q1 = m.add_net("q1").unwrap();
        m.add_cell(
            "r1",
            "DFFX1",
            &[("D", Conn::Net(n1)), ("CK", Conn::Net(clk)), ("Q", Conn::Net(q1))],
        )
        .unwrap();
        let n2 = m.add_net("n2").unwrap();
        m.add_cell(
            "c2",
            "NAND2X1",
            &[("A", Conn::Net(q1)), ("B", Conn::Net(q0)), ("Z", Conn::Net(n2))],
        )
        .unwrap();
        let q2 = m.add_net("q2").unwrap();
        m.add_cell(
            "r2",
            "DFFX1",
            &[("D", Conn::Net(n2)), ("CK", Conn::Net(clk)), ("Q", Conn::Net(q2))],
        )
        .unwrap();
        m
    }

    #[test]
    fn pipeline_dependencies() {
        let m = pipeline();
        let lib = vlib90::high_speed();
        let regions = group(&m, &lib, &GroupingOptions::recommended()).unwrap();
        let ddg = build(&m, &lib, &regions).unwrap();

        let idx = |cell: &str| regions.region_of(cell).unwrap();
        let (rg1, rg2, rg0) = (idx("r1"), idx("r2"), idx("r_in"));
        // g0 → stage1, g0 → stage2 (c2 reads q0 directly), stage1 → stage2.
        assert!(ddg.edges.contains(&(rg0, rg1)));
        assert!(ddg.edges.contains(&(rg0, rg2)));
        assert!(ddg.edges.contains(&(rg1, rg2)));
        assert_eq!(ddg.edges.len(), 3, "no self loops in a pure pipeline");
        assert_eq!(ddg.sources(), &[rg0]);
        assert_eq!(ddg.sinks(), &[rg2]);
        // The cached lists agree with a fresh scan of the adjacency lists.
        let scan_sources: Vec<usize> =
            (0..ddg.preds.len()).filter(|&r| ddg.preds[r].is_empty()).collect();
        let scan_sinks: Vec<usize> =
            (0..ddg.succs.len()).filter(|&r| ddg.succs[r].is_empty()).collect();
        assert_eq!(ddg.sources(), scan_sources.as_slice());
        assert_eq!(ddg.sinks(), scan_sinks.as_slice());
        assert_eq!(ddg.preds[rg2].len(), 2);
    }

    #[test]
    fn feedback_produces_cyclic_ddg() {
        // r2's cloud feeds back into stage 1 → cycle in the DDG.
        let mut m = pipeline();
        let lib = vlib90::high_speed();
        let q2 = m.find_net("q2").unwrap();
        let c1 = m.find_cell("c1").unwrap();
        // Replace c1 with a 2-input gate reading q2 as well.
        let q0 = m.find_net("q0").unwrap();
        let n1 = m.find_net("n1").unwrap();
        m.remove_cell(c1);
        m.add_cell(
            "c1",
            "NAND2X1",
            &[("A", Conn::Net(q0)), ("B", Conn::Net(q2)), ("Z", Conn::Net(n1))],
        )
        .unwrap();
        let regions = group(&m, &lib, &GroupingOptions::recommended()).unwrap();
        let ddg = build(&m, &lib, &regions).unwrap();
        let (r1, r2) = (
            regions.region_of("r1").unwrap(),
            regions.region_of("r2").unwrap(),
        );
        assert!(ddg.edges.contains(&(r1, r2)));
        assert!(ddg.edges.contains(&(r2, r1)));
    }
}
