//! The 4-phase semi-decoupled latch controller (§2.2, §3.1.3, Figs.
//! 2.3/3.2/4.5).
//!
//! The controller is the classic two-C-element Furber & Day semi-decoupled
//! circuit the thesis adopts:
//!
//! ```text
//! a  = C(ri, !ro)      — rises when a request arrives and the output
//!                        handshake is idle; falls when the request
//!                        withdraws and the output request is out
//! ro = C(a,  !ao)      — the output request follows the latch opening
//! g  = a & !ro         — the latch enable pulses open between the
//!                        request arriving and the output request going
//!                        out: the latch has closed again one C-element
//!                        delay after opening
//! ai = a               — the input acknowledge
//! ```
//!
//! The capture *pulse* is what preserves flow equivalence in practice: a
//! predecessor can only present new data after its own master/slave cycle
//! (several gate delays plus its matched delay element), by which time
//! this latch — open for a single C-element delay — has long closed. The
//! strictly-safe alternative (acknowledge only on capture completion) is
//! the fully-decoupled controller of Fig. 2.4, which trades two more
//! states of controller complexity; see DESIGN.md.
//!
//! Reset polarity encodes the initial data tokens (§2.4.2): at reset every
//! latch holds valid reset data, so **slave** controllers come out of
//! reset with their request *asserted* (`ro` resets to 1 through a
//! set-variant C-element) while **master** controllers reset to 0. This
//! makes the controller network live after reset *and* makes the master
//! phase fire first, matching the synchronous master/slave clock
//! transformation of Fig. 4.2 (the first capture after reset is the
//! master's, so slave data sequences align with the flip-flop ones).
//!
//! All controller gates are hazard-free by construction and marked
//! `size_only` so backend optimization may resize but never restructure
//! them (§4.6.2).

use drd_netlist::{Conn, Module, PortDir};

/// Master or slave role of a controller within a region's pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ControllerRole {
    /// Drives the master latches; resets with `ro = 0`.
    Master,
    /// Drives the slave latches; resets with `ro = 1` (reset data valid).
    Slave,
}

impl ControllerRole {
    /// Module name generated for this role.
    pub fn module_name(self) -> &'static str {
        match self {
            ControllerRole::Master => "drd_ctrl_master",
            ControllerRole::Slave => "drd_ctrl_slave",
        }
    }
}

/// Builds the controller module for `role`.
///
/// Ports: `ri`, `ao`, `rst` (inputs); `ai`, `ro`, `g` (outputs).
pub fn build_controller(role: ControllerRole) -> Module {
    let mut m = Module::new(role.module_name());
    m.add_port("ri", PortDir::Input).expect("fresh module");
    m.add_port("ao", PortDir::Input).expect("fresh module");
    m.add_port("rst", PortDir::Input).expect("fresh module");
    m.add_port("ai", PortDir::Output).expect("fresh module");
    m.add_port("ro", PortDir::Output).expect("fresh module");
    m.add_port("g", PortDir::Output).expect("fresh module");
    let ri = m.find_net("ri").expect("port net");
    let ao = m.find_net("ao").expect("port net");
    let rst = m.find_net("rst").expect("port net");
    let ai = m.find_net("ai").expect("port net");
    let ro = m.find_net("ro").expect("port net");
    let g = m.find_net("g").expect("port net");

    let a = m.add_net("a").expect("fresh name");
    let ro_int = ro; // the C-element drives the request port directly
    let nro = m.add_net("nro").expect("fresh name");
    let nao = m.add_net("nao").expect("fresh name");

    m.add_cell(
        "u_nro",
        "INVX1",
        &[("A", Conn::Net(ro_int)), ("Z", Conn::Net(nro))],
    )
    .expect("fresh name");
    m.add_cell(
        "u_a",
        "C2RX1",
        &[
            ("A", Conn::Net(ri)),
            ("B", Conn::Net(nro)),
            ("RN", Conn::Net(rst)),
            ("Z", Conn::Net(a)),
        ],
    )
    .expect("fresh name");
    m.add_cell(
        "u_nao",
        "INVX1",
        &[("A", Conn::Net(ao)), ("Z", Conn::Net(nao))],
    )
    .expect("fresh name");
    let (ro_cell, ctrl_pin) = match role {
        ControllerRole::Master => ("C2RX1", "RN"),
        ControllerRole::Slave => ("C2SX1", "SN"),
    };
    m.add_cell(
        "u_ro",
        ro_cell,
        &[
            ("A", Conn::Net(a)),
            ("B", Conn::Net(nao)),
            (ctrl_pin, Conn::Net(rst)),
            ("Z", Conn::Net(ro_int)),
        ],
    )
    .expect("fresh name");
    // Latch-enable pulse: open at a+, closed again by ro+.
    let g_int = m.add_net("g_int").expect("fresh name");
    m.add_cell(
        "u_gp",
        "AND2X1",
        &[("A", Conn::Net(a)), ("B", Conn::Net(nro)), ("Z", Conn::Net(g_int))],
    )
    .expect("fresh name");
    m.add_cell(
        "u_g",
        "BUFX2",
        &[("A", Conn::Net(g_int)), ("Z", Conn::Net(g))],
    )
    .expect("fresh name");
    m.add_cell(
        "u_ai",
        "BUFX1",
        &[("A", Conn::Net(a)), ("Z", Conn::Net(ai))],
    )
    .expect("fresh name");

    // §4.6.2: the controllers are hazard-free; allow only safe
    // optimizations (resizing).
    let ids: Vec<_> = m.cells().map(|(id, _)| id).collect();
    for id in ids {
        m.set_size_only(id, true);
    }
    m
}

/// The timing-disabled pins that break this controller's internal timing
/// loops for STA (§4.6.1, Fig. 4.5c), as `(instance, pin)` pairs relative
/// to the controller instance.
pub fn disabled_pins() -> Vec<(&'static str, &'static str)> {
    // Cutting the ro → !ro → C(a) feedback breaks both internal cycles
    // (a → ro → nro → a and the a/ro self-holds are inside the
    // C-elements); every remaining controller path stays constrained
    // through its other pins.
    vec![("u_nro", "A")]
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::panic)]
    use super::*;
    use drd_liberty::{vlib90, Lv};
    use drd_netlist::Design;
    use drd_sim::{SimOptions, Simulator};
    use drd_stg::conformance::{semi_decoupled_controller_stg, Conformance};

    #[test]
    fn controller_modules_are_well_formed() {
        for role in [ControllerRole::Master, ControllerRole::Slave] {
            let m = build_controller(role);
            assert_eq!(m.port_count(), 6);
            assert_eq!(m.cell_count(), 7);
            for (_, cell) in m.cells() {
                assert!(cell.size_only, "{} must be size_only", cell.name);
            }
        }
        assert_ne!(
            ControllerRole::Master.module_name(),
            ControllerRole::Slave.module_name()
        );
    }

    /// Drive a single slave controller with an ideal environment and check
    /// the observed signal trace against the semi-decoupled STG
    /// specification — the verification petrify's synthesis would imply
    /// (§3.1.3).
    #[test]
    fn gate_level_controller_conforms_to_stg() {
        let lib = vlib90::high_speed();
        let mut design = Design::new();
        // The master role resets with ro = 0, matching the specification's
        // all-low initial state.
        design.insert(build_controller(ControllerRole::Master));
        let mut sim = Simulator::new(&design, &lib, SimOptions::default()).unwrap();
        // Reset first; watch only after the outputs settled, so the
        // X→0 initialization edges are not part of the checked trace.
        sim.poke("ri", Lv::Zero).unwrap();
        sim.poke("ao", Lv::Zero).unwrap();
        sim.poke("rst", Lv::Zero).unwrap();
        sim.run_for(5.0);
        sim.poke("rst", Lv::One).unwrap();
        sim.run_for(5.0);
        for net in ["g", "ro"] {
            sim.watch(net).unwrap();
        }

        // Environment script for two full handshakes, reacting with fixed
        // latencies (the STG is speed-independent, so any latency works).
        let mut events: Vec<(f64, &str, bool)> = Vec::new();
        let mut t = sim.time_ns();
        for _ in 0..2 {
            // ri+ … controller raises g, then ro. Environment answers.
            events.push((t + 1.0, "ri", true));
            // ri- after ai+ (ai = g, observed at +ε); ao+ after ro+.
            events.push((t + 3.0, "ri", false));
            events.push((t + 5.0, "ao", true));
            // ao- after ro-.
            events.push((t + 9.0, "ao", false));
            t += 12.0;
        }
        for (at, sig, v) in &events {
            sim.poke_at(sig, Lv::from_bool(*v), *at).unwrap();
        }
        sim.run_for(t + 12.0 - sim.time_ns());

        // Merge observed edges of all four signals in time order.
        let mut trace: Vec<(f64, &str, bool)> = Vec::new();
        for sig in ["g", "ro"] {
            for (time, rising) in sim.edge_trace(sig) {
                trace.push((time, sig, rising));
            }
        }
        for (time, sig, rising) in events {
            trace.push((time, sig, rising));
        }
        trace.sort_by(|a, b| a.0.total_cmp(&b.0));

        let spec = semi_decoupled_controller_stg();
        let mut checker = Conformance::new(&spec);
        for (_, sig, rising) in &trace {
            checker
                .observe(sig, *rising)
                .unwrap_or_else(|e| panic!("trace violates STG: {e}; trace = {trace:?}"));
        }
        assert!(checker.observed() >= 16, "two full cycles observed");
    }

    /// A master+slave ring (one pipeline stage fed back on itself) must
    /// oscillate after reset — the liveness property the reset polarity
    /// (master ro = 1) exists to provide.
    #[test]
    fn master_slave_ring_oscillates() {
        let lib = vlib90::high_speed();
        let mut design = Design::new();
        let top = design.add_module("ring");
        {
            let m = design.module_mut(top);
            m.add_port("rst", PortDir::Input).unwrap();
            m.add_port("gm", PortDir::Output).unwrap();
            m.add_port("gs", PortDir::Output).unwrap();
            let rst = m.find_net("rst").unwrap();
            let gm = m.find_net("gm").unwrap();
            let gs = m.find_net("gs").unwrap();
            let rom = m.add_net("rom").unwrap();
            let ros = m.add_net("ros").unwrap();
            let aim = m.add_net("aim").unwrap();
            let ais = m.add_net("ais").unwrap();
            m.add_instance(
                "u_m",
                ControllerRole::Master.module_name(),
                &[
                    ("ri", Conn::Net(ros)),
                    ("ao", Conn::Net(ais)),
                    ("rst", Conn::Net(rst)),
                    ("ai", Conn::Net(aim)),
                    ("ro", Conn::Net(rom)),
                    ("g", Conn::Net(gm)),
                ],
            )
            .unwrap();
            m.add_instance(
                "u_s",
                ControllerRole::Slave.module_name(),
                &[
                    ("ri", Conn::Net(rom)),
                    ("ao", Conn::Net(aim)),
                    ("rst", Conn::Net(rst)),
                    ("ai", Conn::Net(ais)),
                    ("ro", Conn::Net(ros)),
                    ("g", Conn::Net(gs)),
                ],
            )
            .unwrap();
        }
        design.insert(build_controller(ControllerRole::Master));
        design.insert(build_controller(ControllerRole::Slave));

        let mut sim = Simulator::new(&design, &lib, SimOptions::default()).unwrap();
        sim.watch("gm").unwrap();
        sim.watch("gs").unwrap();
        sim.poke("rst", Lv::Zero).unwrap();
        sim.run_for(5.0);
        sim.poke("rst", Lv::One).unwrap();
        sim.run_for(100.0);
        let gm_edges = sim.rising_edges("gm");
        let gs_edges = sim.rising_edges("gs");
        assert!(
            gm_edges.len() > 10 && gs_edges.len() > 10,
            "ring oscillates: gm {} edges, gs {} edges",
            gm_edges.len(),
            gs_edges.len()
        );
        // Effective period is stable (self-timed).
        let periods: Vec<f64> = gm_edges.windows(2).map(|w| w[1] - w[0]).collect();
        let avg = periods.iter().sum::<f64>() / periods.len() as f64;
        for p in periods.iter().skip(1) {
            assert!((p - avg).abs() < 0.25 * avg, "stable period: {periods:?}");
        }
    }

    /// The controller's internal timing loops break with the documented
    /// disabled pins (Fig. 4.5).
    #[test]
    fn loop_breaking_with_disabled_pins() {
        use drd_sta::{GraphOptions, TimingGraph};
        let lib = vlib90::high_speed();
        let m = build_controller(ControllerRole::Slave);
        let mut g = TimingGraph::build(&m, &lib, &GraphOptions::default()).unwrap();
        assert!(g.find_cycle().is_some(), "controller is cyclic");
        for (cell, pin) in disabled_pins() {
            assert!(g.disable_pin(cell, pin), "{cell}/{pin} exists");
        }
        assert!(
            g.find_cycle().is_none(),
            "documented pins break all timing loops"
        );
        // And arrivals become computable.
        assert!(g.arrivals(drd_liberty::Corner::typical()).is_ok());
    }
}
