//! The instrumented pass pipeline behind the desynchronization flow.
//!
//! The paper's flow is explicitly staged (Fig. 2.1, §3.2): import → clean
//! → clock identification → region creation → DDG → delay sizing →
//! flip-flop substitution → control network → constraints. Each stage is a
//! [`Pass`] over a shared [`FlowContext`]; the [`Pipeline`] runs them in
//! order and records a [`FlowTrace`] — per-pass wall time, top-module
//! cell/net deltas and produced artifacts — so drivers can time, stop
//! after, checkpoint or extend any stage. [`crate::Desynchronizer::run`]
//! is a thin compatibility wrapper over [`Pipeline::standard`].

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

use drd_liberty::gatefile::Gatefile;
use drd_liberty::Library;
use drd_netlist::{Design, Module, ModuleId};

use crate::ddg::{self, Ddg};
use crate::desync::{DesyncOptions, DesyncReport, DesyncResult, RegionSummary};
use crate::ffsub;
use crate::network::{self, enable_net_names, NetworkReport};
use crate::liveness::{self, LivenessAction, LivenessRepair, RegionState};
use crate::region::{self, Regions};
use crate::sdc;
use crate::{DegradeReason, Degradation, DesyncError};

/// The working netlist: a bare module through substitution, a design (top
/// plus generated controller/delay-element modules) afterwards.
// One Netlist lives per flow run, so the size gap between the two
// variants costs nothing; boxing would only add a pointer chase.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
enum Netlist {
    Module(Module),
    Design { design: Design, top: ModuleId },
}

/// Everything the passes read and write: the working netlist, the
/// library/gatefile handles, the run options and the accumulated
/// artifacts of earlier passes.
#[derive(Debug, Clone)]
pub struct FlowContext<'a> {
    lib: &'a Library,
    gatefile: &'a Gatefile,
    opts: DesyncOptions,
    netlist: Netlist,
    cleaned_cells: usize,
    clock_net: Option<String>,
    regions: Option<Regions>,
    ddg: Option<Ddg>,
    region_delays: Option<Vec<f64>>,
    substituted_ffs: usize,
    extra_gates: usize,
    network: Option<NetworkReport>,
    sdc: Option<String>,
    degradations: Vec<Degradation>,
    liveness_repairs: Vec<LivenessRepair>,
}

impl<'a> FlowContext<'a> {
    /// Prepares a context owning `module` — no netlist copy is made; use
    /// [`crate::Desynchronizer::run`] for the borrowing wrapper.
    pub fn new(
        lib: &'a Library,
        gatefile: &'a Gatefile,
        module: Module,
        opts: DesyncOptions,
    ) -> Self {
        FlowContext {
            lib,
            gatefile,
            opts,
            netlist: Netlist::Module(module),
            cleaned_cells: 0,
            clock_net: None,
            regions: None,
            ddg: None,
            region_delays: None,
            substituted_ffs: 0,
            extra_gates: 0,
            network: None,
            sdc: None,
            degradations: Vec::new(),
            liveness_repairs: Vec::new(),
        }
    }

    /// The run options.
    pub fn options(&self) -> &DesyncOptions {
        &self.opts
    }

    /// The technology library.
    pub fn library(&self) -> &'a Library {
        self.lib
    }

    /// The prepared gatefile.
    pub fn gatefile(&self) -> &'a Gatefile {
        self.gatefile
    }

    /// Cells removed by the `clean` pass.
    pub fn cleaned_cells(&self) -> usize {
        self.cleaned_cells
    }

    /// The identified clock net (after `clock-id`).
    pub fn clock_net(&self) -> Option<&str> {
        self.clock_net.as_deref()
    }

    /// The grouping result (after `group`).
    pub fn regions(&self) -> Option<&Regions> {
        self.regions.as_ref()
    }

    /// The data-dependency graph (after `ddg`).
    pub fn ddg(&self) -> Option<&Ddg> {
        self.ddg.as_ref()
    }

    /// Per-region critical-path delays (after `region-delays`).
    pub fn region_delays(&self) -> Option<&[f64]> {
        self.region_delays.as_deref()
    }

    /// Flip-flops substituted so far (after `ffsub`).
    pub fn substituted_ffs(&self) -> usize {
        self.substituted_ffs
    }

    /// The control-network report (after `control-network`).
    pub fn network(&self) -> Option<&NetworkReport> {
        self.network.as_ref()
    }

    /// The generated SDC text (after `sdc`).
    pub fn sdc(&self) -> Option<&str> {
        self.sdc.as_deref()
    }

    /// Regions left synchronous by graceful degradation so far. Empty for
    /// a fully desynchronized (or strict) run.
    pub fn degradations(&self) -> &[Degradation] {
        &self.degradations
    }

    /// Repairs the liveness guard applied (after `liveness`). Empty when
    /// no pulse-swallowing hazard was found.
    pub fn liveness_repairs(&self) -> &[LivenessRepair] {
        &self.liveness_repairs
    }

    /// `(cells, nets)` of the current working top module. Generated
    /// controller/delay-element modules are not counted: the deltas
    /// describe what each pass does to the design under transformation.
    pub fn netlist_stats(&self) -> (usize, usize) {
        let m = self.top_module();
        (m.cell_count(), m.net_count())
    }

    /// The current working netlist as Verilog — the whole design once
    /// generated modules exist, the bare module before that. Suitable as a
    /// re-importable checkpoint at any pass boundary.
    pub fn netlist_verilog(&self) -> String {
        match &self.netlist {
            Netlist::Module(m) => drd_netlist::verilog::write_module(m),
            Netlist::Design { design, .. } => drd_netlist::verilog::write_design(design),
        }
    }

    fn top_module(&self) -> &Module {
        match &self.netlist {
            Netlist::Module(m) => m,
            Netlist::Design { design, top } => design.module(*top),
        }
    }

    fn module_mut(&mut self) -> Result<&mut Module, DesyncError> {
        match &mut self.netlist {
            Netlist::Module(m) => Ok(m),
            Netlist::Design { .. } => Err(missing("a pre-network module", "control-network")),
        }
    }

    /// Mutable access to the pre-network working module — the hook custom
    /// passes (and the mutation-testing harness) use to transform the
    /// netlist between standard passes.
    ///
    /// # Errors
    /// Returns [`DesyncError::Pipeline`] once `control-network` has
    /// promoted the module into a design.
    pub fn working_module_mut(&mut self) -> Result<&mut Module, DesyncError> {
        self.module_mut()
    }

    fn module(&self) -> Result<&Module, DesyncError> {
        match &self.netlist {
            Netlist::Module(m) => Ok(m),
            Netlist::Design { .. } => Err(missing("a pre-network module", "control-network")),
        }
    }

    fn design_mut(&mut self) -> Result<(&mut Design, ModuleId), DesyncError> {
        match &mut self.netlist {
            Netlist::Design { design, top } => Ok((design, *top)),
            Netlist::Module(_) => {
                Err(missing("the desynchronized design", "control-network"))
            }
        }
    }

    /// Consumes the context into the flow result. All eight passes must
    /// have run.
    ///
    /// # Errors
    /// Returns [`DesyncError::Pipeline`] if a required artifact is missing.
    pub fn into_result(self) -> Result<DesyncResult, DesyncError> {
        let Netlist::Design { design, .. } = self.netlist else {
            return Err(missing("the desynchronized design", "control-network"));
        };
        let clock_name = self.clock_net.ok_or_else(|| missing("clock net", "clock-id"))?;
        let regions = self.regions.ok_or_else(|| missing("regions", "group"))?;
        let graph = self.ddg.ok_or_else(|| missing("DDG", "ddg"))?;
        let delays = self
            .region_delays
            .ok_or_else(|| missing("region delays", "region-delays"))?;
        let net_report = self
            .network
            .ok_or_else(|| missing("network report", "control-network"))?;
        let sdc_text = self.sdc.ok_or_else(|| missing("SDC", "sdc"))?;

        let region_summaries = regions
            .regions
            .iter()
            .enumerate()
            .map(|(i, r)| RegionSummary {
                name: r.name.clone(),
                cells: r.cells.len(),
                ffs: r.seq_cells.len(),
                critical_delay_ns: delays[i],
                delem_levels: net_report.delem_levels[i],
            })
            .collect();
        let ddg_edges = graph
            .edges
            .iter()
            .map(|&(a, b)| {
                (
                    regions.regions[a].name.clone(),
                    regions.regions[b].name.clone(),
                )
            })
            .collect();

        Ok(DesyncResult {
            design,
            sdc: sdc_text,
            report: DesyncReport {
                clock_net: clock_name,
                regions: region_summaries,
                ddg_edges,
                substituted_ffs: self.substituted_ffs,
                extra_gates: self.extra_gates,
                controllers: net_report.controllers,
                celements: net_report.celements,
                cleaned_cells: self.cleaned_cells,
                degradations: self.degradations,
                liveness_repairs: self.liveness_repairs,
            },
        })
    }
}

fn missing(what: &str, pass: &str) -> DesyncError {
    DesyncError::Pipeline {
        message: format!("{what} not available — run the `{pass}` pass first"),
    }
}

/// What one pass did, for the trace.
#[derive(Debug, Clone, Default)]
pub struct PassReport {
    /// Stable keys of the artifacts this pass produced or updated.
    pub artifacts: Vec<&'static str>,
    /// One-line human summary.
    pub detail: String,
    /// Worker threads the pass fanned out over (0 for serial passes).
    pub workers: usize,
    /// Wall time of each per-region task (ns), in region-index order —
    /// empty for serial passes. Timing only: rendered with `wall_ns`, never
    /// in the deterministic trace.
    pub region_wall_ns: Vec<u128>,
}

impl PassReport {
    /// Report of a serial pass.
    pub fn new(artifacts: Vec<&'static str>, detail: String) -> Self {
        PassReport {
            artifacts,
            detail,
            workers: 0,
            region_wall_ns: Vec::new(),
        }
    }

    /// Report of a pass that fanned out per-region work over `workers`
    /// threads.
    pub fn parallel(
        artifacts: Vec<&'static str>,
        detail: String,
        workers: usize,
        region_wall_ns: Vec<u128>,
    ) -> Self {
        PassReport {
            artifacts,
            detail,
            workers,
            region_wall_ns,
        }
    }
}

/// One named, instrumentable stage of the flow.
pub trait Pass {
    /// Stable pass name (`clean`, `group`, …) used by `--stop-after`,
    /// `--dump-after` and the trace.
    fn name(&self) -> &'static str;

    /// Runs the pass over `cx`.
    ///
    /// # Errors
    /// Propagates [`DesyncError`] from the underlying transformation.
    fn run(&self, cx: &mut FlowContext<'_>) -> Result<PassReport, DesyncError>;
}

// ---------------------------------------------------------------------------
// The nine standard passes (§3.2 plus the liveness guard, in flow order)
// ---------------------------------------------------------------------------

/// Logic cleaning (§3.2.2): remove synthesis buffering before grouping.
pub struct CleanPass;

impl Pass for CleanPass {
    fn name(&self) -> &'static str {
        "clean"
    }

    fn run(&self, cx: &mut FlowContext<'_>) -> Result<PassReport, DesyncError> {
        let cleaned = if cx.opts.clean_logic {
            let lib = cx.lib;
            let stats = region::clean_for_grouping(cx.module_mut()?, lib);
            stats.buffers_removed + 2 * stats.inverter_pairs_removed
        } else {
            0
        };
        cx.cleaned_cells = cleaned;
        Ok(PassReport::new(
            vec!["cleaned-cells"],
            format!("{cleaned} buffering cells removed"),
        ))
    }
}

/// Clock identification: the named port, or the net clocking the most
/// sequential cells.
pub struct ClockIdPass;

impl Pass for ClockIdPass {
    fn name(&self) -> &'static str {
        "clock-id"
    }

    fn run(&self, cx: &mut FlowContext<'_>) -> Result<PassReport, DesyncError> {
        let module = cx.module()?;
        let clock_net = match &cx.opts.clock_port {
            Some(port) => module
                .find_net(port)
                .ok_or_else(|| DesyncError::Clock {
                    message: format!("clock port `{port}` not found"),
                })?,
            None => region::find_clock_net(module, cx.lib).ok_or_else(|| DesyncError::Clock {
                message: "no sequential cells, nothing to desynchronize".into(),
            })?,
        };
        let clock_name = module.net(clock_net).name.to_owned();
        let detail = format!("clock net `{clock_name}`");
        cx.clock_net = Some(clock_name);
        Ok(PassReport::new(vec!["clock-net"], detail))
    }
}

/// Region creation (§3.2.2, Figs. 3.3–3.6).
pub struct GroupPass;

impl Pass for GroupPass {
    fn name(&self) -> &'static str {
        "group"
    }

    fn run(&self, cx: &mut FlowContext<'_>) -> Result<PassReport, DesyncError> {
        let clock_name = cx
            .clock_net
            .clone()
            .ok_or_else(|| missing("clock net", "clock-id"))?;
        let mut grouping = cx.opts.grouping.clone();
        grouping.false_path_nets.push(clock_name);
        let regions = region::group(cx.module()?, cx.lib, &grouping)?;
        let detail = format!("{} regions", regions.regions.len());
        cx.regions = Some(regions);
        Ok(PassReport::new(vec!["regions"], detail))
    }
}

/// Data-dependency graph construction (Fig. 2.6).
pub struct DdgPass;

impl Pass for DdgPass {
    fn name(&self) -> &'static str {
        "ddg"
    }

    fn run(&self, cx: &mut FlowContext<'_>) -> Result<PassReport, DesyncError> {
        let regions = cx.regions.as_ref().ok_or_else(|| missing("regions", "group"))?;
        let graph = ddg::build(cx.module()?, cx.lib, regions)?;
        let detail = format!("{} dependency edges", graph.edges.len());
        cx.ddg = Some(graph);
        Ok(PassReport::new(vec!["ddg"], detail))
    }
}

/// Per-region critical-path delays by STA on the pre-substitution netlist
/// (§3.2.5; the datapath is unchanged by substitution).
pub struct RegionDelaysPass;

impl Pass for RegionDelaysPass {
    fn name(&self) -> &'static str {
        "region-delays"
    }

    fn run(&self, cx: &mut FlowContext<'_>) -> Result<PassReport, DesyncError> {
        let workers = cx.opts.workers();
        let regions = cx.regions.as_ref().ok_or_else(|| missing("regions", "group"))?;
        let (mut delays, region_wall_ns) =
            crate::desync::region_delays_with(cx.module()?, cx.lib, regions, workers)?;
        // A region whose cloud delay cannot be matched (non-finite STA
        // result) degrades to synchronous instead of poisoning the delay
        // elements downstream.
        let mut degraded = Vec::new();
        for (i, r) in regions.regions.iter().enumerate() {
            if delays[i].is_finite() {
                continue;
            }
            let message = format!("non-finite critical delay {}", delays[i]);
            if cx.opts.strict {
                return Err(DesyncError::Pipeline {
                    message: format!("region `{}`: {message}", r.name),
                });
            }
            degraded.push(Degradation {
                region: r.name.clone(),
                reason: DegradeReason::DelayMatching { message },
                cells: r.seq_cells.clone(),
            });
            delays[i] = 0.0;
        }
        cx.degradations.extend(degraded);
        let worst = delays.iter().copied().fold(0.0f64, f64::max);
        cx.region_delays = Some(delays);
        Ok(PassReport::parallel(
            vec!["region-delays"],
            format!("worst cloud {worst:.3} ns"),
            workers,
            region_wall_ns,
        ))
    }
}

/// Flip-flop substitution per region (§3.2.4, Fig. 3.1).
pub struct FfSubPass;

impl Pass for FfSubPass {
    fn name(&self) -> &'static str {
        "ffsub"
    }

    fn run(&self, cx: &mut FlowContext<'_>) -> Result<PassReport, DesyncError> {
        let workers = cx.opts.workers();
        let regions = cx
            .regions
            .take()
            .ok_or_else(|| missing("regions", "group"))?;
        let lib = cx.lib;
        let gatefile = cx.gatefile;
        let strict = cx.opts.strict;
        let mut substituted = 0usize;
        let mut extra_gates = 0usize;
        let mut degraded: Vec<Degradation> = Vec::new();
        let mut region_wall_ns = vec![0u128; regions.regions.len()];
        let result = (|| -> Result<(), DesyncError> {
            // Validate every region up front, one read-only task per
            // region: substitution is destructive, so degradation must be
            // atomic — either every flip-flop converts or none does. The
            // checks only inspect the region's own cells (regions are
            // disjoint), so they are independent of each other and of the
            // serial substitution order below.
            let skip: Vec<bool> = regions
                .regions
                .iter()
                .map(|r| {
                    r.seq_cells.is_empty()
                        || cx.degradations.iter().any(|d| d.region == r.name)
                })
                .collect();
            let checks: Vec<(Option<DegradeReason>, u128)> = {
                let working = cx.module()?;
                drd_runner::run_indexed(regions.regions.len(), workers, |i| {
                    let start = Instant::now();
                    let reason = if skip[i] {
                        None
                    } else {
                        ffsub::region_degrade_reason(
                            working,
                            lib,
                            gatefile,
                            &regions.regions[i].seq_cells,
                        )
                    };
                    (reason, start.elapsed().as_nanos())
                })
            };
            // Serial merge and substitution in region-index order — the
            // mutations (and therefore the netlist bytes) are identical
            // for every worker count.
            for (i, r) in regions.regions.iter().enumerate() {
                let (reason, wall) = &checks[i];
                region_wall_ns[i] = *wall;
                if skip[i] {
                    continue;
                }
                if let Some(reason) = reason.clone() {
                    if strict {
                        return Err(match reason {
                            DegradeReason::UnknownCell { kind } => {
                                DesyncError::UnknownCell { name: kind }
                            }
                            DegradeReason::UnsupportedFf { kind } => {
                                DesyncError::NoRule { cell: kind }
                            }
                            other => DesyncError::Pipeline {
                                message: format!("region `{}`: {other}", r.name),
                            },
                        });
                    }
                    degraded.push(Degradation {
                        region: r.name.clone(),
                        reason,
                        cells: r.seq_cells.clone(),
                    });
                    continue;
                }
                let working = cx.module_mut()?;
                let (gm_name, gs_name) = enable_net_names(&r.name);
                let gm = working.add_net(gm_name)?;
                let gs = working.add_net(gs_name)?;
                let rep =
                    ffsub::substitute_ffs(working, lib, gatefile, &r.seq_cells, gm, gs)?;
                substituted += rep.substituted;
                extra_gates += rep.extra_gates;
            }
            Ok(())
        })();
        cx.regions = Some(regions);
        result?;
        cx.substituted_ffs = substituted;
        cx.extra_gates = extra_gates;
        let detail = if degraded.is_empty() {
            format!("{substituted} flip-flops → latch pairs, {extra_gates} extra gates")
        } else {
            format!(
                "{substituted} flip-flops → latch pairs, {extra_gates} extra gates, \
                 {} region(s) left synchronous",
                degraded.len()
            )
        };
        cx.degradations.extend(degraded);
        Ok(PassReport::parallel(
            vec!["substituted-ffs"],
            detail,
            workers,
            region_wall_ns,
        ))
    }
}

/// Control-network insertion (§3.2.6, Figs. 2.7/2.11): promotes the
/// working module into a design and adds controllers, C-elements, delay
/// elements and enable trees.
pub struct ControlNetworkPass;

impl Pass for ControlNetworkPass {
    fn name(&self) -> &'static str {
        "control-network"
    }

    fn run(&self, cx: &mut FlowContext<'_>) -> Result<PassReport, DesyncError> {
        let regions = cx.regions.as_ref().ok_or_else(|| missing("regions", "group"))?;
        let graph = cx.ddg.as_ref().ok_or_else(|| missing("DDG", "ddg"))?;
        let delays = cx
            .region_delays
            .as_deref()
            .ok_or_else(|| missing("region delays", "region-delays"))?;
        let degraded: Vec<String> = cx
            .degradations
            .iter()
            .map(|d| d.region.clone())
            .collect();
        let Netlist::Module(working) =
            std::mem::replace(&mut cx.netlist, Netlist::Module(Module::new("drd_empty")))
        else {
            return Err(missing("a pre-network module", "control-network"));
        };
        let workers = cx.opts.workers();
        let mut design = Design::new();
        let top = design.insert(working);
        let inserted = network::insert_control_network_with(
            &mut design,
            top,
            regions,
            graph,
            delays,
            cx.lib,
            &degraded,
            network::NetworkOptions {
                muxed: cx.opts.muxed_delay_elements,
                margin: cx.opts.delay_margin,
            },
            workers,
        );
        cx.netlist = Netlist::Design { design, top };
        let (net_report, region_wall_ns) = inserted?;
        let detail = format!(
            "{} controllers, {} C-elements, {} delay elements",
            net_report.controllers, net_report.celements, net_report.delay_elements
        );
        cx.network = Some(net_report);
        Ok(PassReport::parallel(
            vec!["network-report", "design"],
            detail,
            workers,
            region_wall_ns,
        ))
    }
}

/// Liveness guard (DESIGN.md §3i): flags loopback source regions whose
/// request pulse can be swallowed by a faster successor's asymmetric
/// delay element, repairs each hazard with the deepen → latch → degrade
/// ladder, and validates the repaired network with the handshake-level
/// simulator — a desynchronized result is never silently wedged.
pub struct LivenessGuardPass;

impl Pass for LivenessGuardPass {
    fn name(&self) -> &'static str {
        "liveness"
    }

    fn run(&self, cx: &mut FlowContext<'_>) -> Result<PassReport, DesyncError> {
        let lib = cx.lib;
        let clock_name = cx
            .clock_net
            .clone()
            .ok_or_else(|| missing("clock net", "clock-id"))?;
        let delays = cx
            .region_delays
            .as_deref()
            .ok_or_else(|| missing("region delays", "region-delays"))?
            .to_vec();
        let (edges, seq_cells) = {
            let regions =
                cx.regions.as_ref().ok_or_else(|| missing("regions", "group"))?;
            let graph = cx.ddg.as_ref().ok_or_else(|| missing("DDG", "ddg"))?;
            let seq: Vec<Vec<String>> =
                regions.regions.iter().map(|r| r.seq_cells.clone()).collect();
            (graph.edges.clone(), seq)
        };
        let mut states: Vec<RegionState> = {
            let regions =
                cx.regions.as_ref().ok_or_else(|| missing("regions", "group"))?;
            let net_report = cx
                .network
                .as_ref()
                .ok_or_else(|| missing("network report", "control-network"))?;
            regions
                .regions
                .iter()
                .enumerate()
                .map(|(i, r)| RegionState {
                    name: r.name.clone(),
                    controlled: net_report.delem_levels[i] > 0,
                    levels: net_report.delem_levels[i],
                    latched: false,
                })
                .collect()
        };
        let mut replay = states.clone();

        let model = liveness::ResponseModel::probe(lib)?;
        // The spec projection's FF overhead only shapes the synchronous
        // comparison inside the simulator, never the deadlock verdict —
        // a missing DFFX1 must not fail the guard.
        let ff_overhead_ns = lib
            .cell("DFFX1")
            .map_or(0.0, |c| c.max_intrinsic_delay() + c.setup);
        let validate_edges = edges.clone();
        let validate_delays = delays.clone();
        let repairs = liveness::plan_repairs(
            &model,
            &mut states,
            &edges,
            cx.opts.clock_period_ns,
            cx.opts.delay_margin,
            cx.opts.strict,
            |s| {
                liveness::validate_with_sim(
                    s,
                    &validate_edges,
                    &validate_delays,
                    lib,
                    model.level_delay_ns,
                    ff_overhead_ns,
                )
            },
        )?;
        if repairs.is_empty() {
            return Ok(PassReport::new(
                vec!["liveness-repairs"],
                "no pulse-swallowing hazards".into(),
            ));
        }

        // Apply the planned surgery serially, in record order, replaying
        // the spec-level state so later records see earlier effects.
        let muxed = cx.opts.muxed_delay_elements;
        let idx_of = |replay: &[RegionState], name: &str| {
            replay
                .iter()
                .position(|s| s.name == name)
                .ok_or_else(|| DesyncError::Pipeline {
                    message: format!("liveness repair names unknown region `{name}`"),
                })
        };
        for rep in &repairs {
            let i = idx_of(&replay, &rep.region)?;
            match &rep.action {
                LivenessAction::DeepenSuccessor { successor, to_levels, .. } => {
                    let (design, top) = cx.design_mut()?;
                    liveness::apply_deepen(design, top, successor, *to_levels, muxed, lib)?;
                    let si = idx_of(&replay, successor)?;
                    replay[si].levels = *to_levels;
                    if let Some(nr) = cx.network.as_mut() {
                        nr.delem_levels[si] = *to_levels;
                    }
                }
                LivenessAction::RequestLatch => {
                    let (design, top) = cx.design_mut()?;
                    liveness::apply_latch(design, top, &rep.region)?;
                    replay[i].latched = true;
                    if let Some(nr) = cx.network.as_mut() {
                        nr.celements += 1;
                        nr.celement_instances.push(format!("drd_{}_reqext", rep.region));
                    }
                }
                LivenessAction::Degrade => {
                    let succs: Vec<String> = edges
                        .iter()
                        .filter(|&&(p, s)| p == i && s != i && replay[s].controlled)
                        .map(|&(_, s)| replay[s].name.clone())
                        .collect();
                    let (design, top) = cx.design_mut()?;
                    let stats = liveness::apply_degrade(
                        design,
                        top,
                        &rep.region,
                        &succs,
                        &clock_name,
                    )?;
                    replay[i].controlled = false;
                    replay[i].latched = false;
                    if let Some(nr) = cx.network.as_mut() {
                        nr.delem_levels[i] = 0;
                        nr.controllers = nr.controllers.saturating_sub(2);
                        nr.delay_elements = nr.delay_elements.saturating_sub(1);
                        nr.celements =
                            nr.celements.saturating_sub(stats.removed_celements);
                        nr.controller_instances[i] = (String::new(), String::new());
                        let delem = format!("drd_{}_delem", rep.region);
                        nr.delay_element_instances.retain(|d| d != &delem);
                        nr.celement_instances
                            .retain(|c| !stats.removed_cells.contains(c));
                    }
                    cx.degradations.push(Degradation {
                        region: rep.region.clone(),
                        reason: DegradeReason::Liveness {
                            message: format!(
                                "request pulse {:.3} ns vs successor response {:.3} ns; \
                                 deepen and latch repairs did not restore liveness",
                                rep.rise_ns, rep.response_bound_ns
                            ),
                        },
                        cells: seq_cells[i].clone(),
                    });
                }
            }
        }
        let count = |action: fn(&LivenessAction) -> bool| {
            repairs.iter().filter(|r| action(&r.action)).count()
        };
        let detail = format!(
            "{} repair(s): {} deepened, {} latched, {} degraded",
            repairs.len(),
            count(|a| matches!(a, LivenessAction::DeepenSuccessor { .. })),
            count(|a| matches!(a, LivenessAction::RequestLatch)),
            count(|a| matches!(a, LivenessAction::Degrade)),
        );
        cx.liveness_repairs.extend(repairs);
        Ok(PassReport::new(vec!["liveness-repairs"], detail))
    }
}

/// Backend constraint generation (§4.4–§4.6, Figs. 4.2/4.5).
pub struct SdcPass;

impl Pass for SdcPass {
    fn name(&self) -> &'static str {
        "sdc"
    }

    fn run(&self, cx: &mut FlowContext<'_>) -> Result<PassReport, DesyncError> {
        let clock_name = cx
            .clock_net
            .as_deref()
            .ok_or_else(|| missing("clock net", "clock-id"))?;
        let regions = cx.regions.as_ref().ok_or_else(|| missing("regions", "group"))?;
        let delays = cx
            .region_delays
            .as_deref()
            .ok_or_else(|| missing("region delays", "region-delays"))?;
        let net_report = cx
            .network
            .as_ref()
            .ok_or_else(|| missing("network report", "control-network"))?;
        let degraded: Vec<String> = cx
            .degradations
            .iter()
            .map(|d| d.region.clone())
            .collect();
        let delem_min: Vec<(String, f64)> = regions
            .regions
            .iter()
            .enumerate()
            .filter(|(i, r)| {
                !r.seq_cells.is_empty() && delays[*i] > 0.0 && !degraded.contains(&r.name)
            })
            .map(|(i, r)| (format!("drd_{}_delem", r.name), delays[i]))
            .collect();
        let spec = sdc::spec_from_report(
            cx.opts.clock_period_ns,
            clock_name,
            net_report,
            &delem_min,
            &degraded,
        );
        let workers = cx.opts.workers();
        let (text, region_wall_ns) = sdc::generate_with(&spec, workers);
        let detail = format!("{} SDC lines", text.lines().count());
        cx.sdc = Some(text);
        Ok(PassReport::parallel(vec!["sdc"], detail, workers, region_wall_ns))
    }
}

// ---------------------------------------------------------------------------
// Trace
// ---------------------------------------------------------------------------

/// Instrumentation record of one executed pass.
#[derive(Debug, Clone)]
pub struct PassTrace {
    /// Pass name.
    pub name: &'static str,
    /// Wall time of the pass (ns).
    pub wall_ns: u128,
    /// Top-module cell count before the pass.
    pub cells_before: usize,
    /// Top-module cell count after the pass.
    pub cells_after: usize,
    /// Top-module net count before the pass.
    pub nets_before: usize,
    /// Top-module net count after the pass.
    pub nets_after: usize,
    /// Artifacts the pass produced.
    pub artifacts: Vec<&'static str>,
    /// One-line summary.
    pub detail: String,
    /// Worker threads the pass fanned out over (0 for serial passes).
    pub workers: usize,
    /// Per-region task wall times (ns), region-index order; empty for
    /// serial passes.
    pub region_wall_ns: Vec<u128>,
}

impl PassTrace {
    /// Signed cell-count change of this pass.
    pub fn cell_delta(&self) -> i64 {
        self.cells_after as i64 - self.cells_before as i64
    }

    /// Signed net-count change of this pass.
    pub fn net_delta(&self) -> i64 {
        self.nets_after as i64 - self.nets_before as i64
    }
}

/// A recorded pass failure: which pass died and why. The trace keeps the
/// passes that completed before it, so a mid-run failure still reports
/// the partial pipeline instead of discarding the instrumentation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowErrorTrace {
    /// Name of the failing pass.
    pub pass: &'static str,
    /// The failure, rendered.
    pub message: String,
}

/// Machine-readable record of one pipeline run.
#[derive(Debug, Clone, Default)]
pub struct FlowTrace {
    /// Executed passes, in order.
    pub passes: Vec<PassTrace>,
    /// Total wall time across all executed passes (ns).
    pub total_wall_ns: u128,
    /// Set when the run stopped at a failing pass; [`FlowTrace::passes`]
    /// then holds exactly the passes that completed before it.
    pub error: Option<FlowErrorTrace>,
    /// Regions the flow left synchronous (graceful degradation). Empty
    /// for a fully desynchronized run — the JSON rendering omits the
    /// section entirely then, keeping clean-flow traces byte-identical.
    pub degradations: Vec<Degradation>,
    /// Repairs the liveness guard applied. Empty when no
    /// pulse-swallowing hazard was found — the JSON rendering omits the
    /// section then, like `degradations`.
    pub liveness_repairs: Vec<LivenessRepair>,
}

impl FlowTrace {
    /// Sum of per-pass cell deltas — equals final minus initial top-module
    /// cell count.
    pub fn cell_delta_sum(&self) -> i64 {
        self.passes.iter().map(PassTrace::cell_delta).sum()
    }

    /// Sum of per-pass net deltas.
    pub fn net_delta_sum(&self) -> i64 {
        self.passes.iter().map(PassTrace::net_delta).sum()
    }

    /// The JSON document, including wall times.
    pub fn to_json(&self) -> String {
        self.render_json(true)
    }

    /// The JSON document with wall times omitted — byte-stable across
    /// runs, for golden snapshots.
    pub fn to_json_deterministic(&self) -> String {
        self.render_json(false)
    }

    fn render_json(&self, with_times: bool) -> String {
        let mut out = String::from("{\n  \"flow\": \"desync\",\n  \"passes\": [\n");
        for (i, p) in self.passes.iter().enumerate() {
            out.push_str("    {");
            out.push_str(&format!("\"name\": \"{}\", ", escape(p.name)));
            if with_times {
                out.push_str(&format!("\"wall_ns\": {}, ", p.wall_ns));
                if p.workers > 0 {
                    out.push_str(&format!("\"workers\": {}, ", p.workers));
                    out.push_str("\"region_wall_ns\": [");
                    for (j, w) in p.region_wall_ns.iter().enumerate() {
                        out.push_str(&format!(
                            "{}{}",
                            w,
                            if j + 1 == p.region_wall_ns.len() { "" } else { ", " }
                        ));
                    }
                    out.push_str("], ");
                }
            }
            out.push_str(&format!(
                "\"cells_before\": {}, \"cells_after\": {}, \"nets_before\": {}, \"nets_after\": {}, ",
                p.cells_before, p.cells_after, p.nets_before, p.nets_after
            ));
            out.push_str("\"artifacts\": [");
            for (j, a) in p.artifacts.iter().enumerate() {
                out.push_str(&format!(
                    "\"{}\"{}",
                    escape(a),
                    if j + 1 == p.artifacts.len() { "" } else { ", " }
                ));
            }
            out.push_str(&format!("], \"detail\": \"{}\"}}", escape(&p.detail)));
            out.push_str(if i + 1 == self.passes.len() { "\n" } else { ",\n" });
        }
        out.push_str("  ]");
        if let Some(err) = &self.error {
            out.push_str(&format!(
                ",\n  \"error\": {{\"pass\": \"{}\", \"message\": \"{}\"}}",
                escape(err.pass),
                escape(&err.message)
            ));
        }
        if !self.degradations.is_empty() {
            out.push_str(",\n  \"degradations\": [\n");
            for (i, d) in self.degradations.iter().enumerate() {
                out.push_str(&format!(
                    "    {{\"region\": \"{}\", \"reason\": \"{}\", \"cells\": [",
                    escape(&d.region),
                    escape(&d.reason.to_string())
                ));
                for (j, c) in d.cells.iter().enumerate() {
                    out.push_str(&format!(
                        "\"{}\"{}",
                        escape(c),
                        if j + 1 == d.cells.len() { "" } else { ", " }
                    ));
                }
                out.push_str("]}");
                out.push_str(if i + 1 == self.degradations.len() { "\n" } else { ",\n" });
            }
            out.push_str("  ]");
        }
        if !self.liveness_repairs.is_empty() {
            out.push_str(",\n  \"liveness_repairs\": [\n");
            for (i, r) in self.liveness_repairs.iter().enumerate() {
                out.push_str(&format!(
                    "    {{\"region\": \"{}\", \"rise_ns\": {:.4}, \"response_bound_ns\": {:.4}, ",
                    escape(&r.region),
                    r.rise_ns,
                    r.response_bound_ns
                ));
                match &r.action {
                    LivenessAction::DeepenSuccessor { successor, from_levels, to_levels } => {
                        out.push_str(&format!(
                            "\"action\": \"deepen\", \"successor\": \"{}\", \
                             \"from_levels\": {from_levels}, \"to_levels\": {to_levels}}}",
                            escape(successor)
                        ));
                    }
                    LivenessAction::RequestLatch => {
                        out.push_str("\"action\": \"request-latch\"}");
                    }
                    LivenessAction::Degrade => out.push_str("\"action\": \"degrade\"}"),
                }
                out.push_str(if i + 1 == self.liveness_repairs.len() { "\n" } else { ",\n" });
            }
            out.push_str("  ]");
        }
        if with_times {
            out.push_str(&format!(",\n  \"total_wall_ns\": {}", self.total_wall_ns));
        }
        out.push_str("\n}\n");
        out
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

// ---------------------------------------------------------------------------
// Pipeline runner
// ---------------------------------------------------------------------------

/// An ordered sequence of passes with instrumentation.
pub struct Pipeline {
    passes: Vec<Box<dyn Pass>>,
}

impl Pipeline {
    /// The standard nine-stage flow, in order: `clean`, `clock-id`,
    /// `group`, `ddg`, `region-delays`, `ffsub`, `control-network`,
    /// `liveness`, `sdc` — the paper's eight stages plus the liveness
    /// guard between network insertion and constraint generation (so the
    /// SDC sees repaired delay-element levels and liveness degradations).
    pub fn standard() -> Pipeline {
        Pipeline {
            passes: vec![
                Box::new(CleanPass),
                Box::new(ClockIdPass),
                Box::new(GroupPass),
                Box::new(DdgPass),
                Box::new(RegionDelaysPass),
                Box::new(FfSubPass),
                Box::new(ControlNetworkPass),
                Box::new(LivenessGuardPass),
                Box::new(SdcPass),
            ],
        }
    }

    /// An empty pipeline, for custom flows.
    pub fn empty() -> Pipeline {
        Pipeline { passes: Vec::new() }
    }

    /// Appends a pass.
    pub fn push(&mut self, pass: Box<dyn Pass>) -> &mut Self {
        self.passes.push(pass);
        self
    }

    /// The pass names, in execution order.
    pub fn pass_names(&self) -> Vec<&'static str> {
        self.passes.iter().map(|p| p.name()).collect()
    }

    /// Runs every pass over `cx`.
    ///
    /// # Errors
    /// Propagates the first pass failure.
    pub fn run(&self, cx: &mut FlowContext<'_>) -> Result<FlowTrace, DesyncError> {
        self.run_observed(cx, None, |_, _| Ok(()))
    }

    /// Runs passes until (and including) `stop_after`, or all of them when
    /// `None`.
    ///
    /// # Errors
    /// Returns [`DesyncError::Pipeline`] for an unknown pass name, else
    /// propagates the first pass failure.
    pub fn run_until(
        &self,
        cx: &mut FlowContext<'_>,
        stop_after: Option<&str>,
    ) -> Result<FlowTrace, DesyncError> {
        self.run_observed(cx, stop_after, |_, _| Ok(()))
    }

    /// [`Pipeline::run_until`] with an observer called after every
    /// executed pass — the checkpoint hook behind `--dump-after`.
    ///
    /// # Errors
    /// Returns [`DesyncError::Pipeline`] for an unknown `stop_after` name,
    /// else propagates the first pass or observer failure.
    pub fn run_observed(
        &self,
        cx: &mut FlowContext<'_>,
        stop_after: Option<&str>,
        observer: impl FnMut(&'static str, &FlowContext<'_>) -> Result<(), DesyncError>,
    ) -> Result<FlowTrace, DesyncError> {
        let (trace, err) = self.run_recording_observed(cx, stop_after, observer);
        match err {
            Some(e) => Err(e),
            None => Ok(trace),
        }
    }

    /// Runs passes like [`Pipeline::run_until`], but never discards the
    /// instrumentation: on a pass failure the returned [`FlowTrace`] keeps
    /// the completed-pass list and records the failure in
    /// [`FlowTrace::error`], and the typed [`DesyncError`] is returned
    /// alongside. The context is left exactly as the last *successful*
    /// pass left it (each pass restores its borrows on error), so callers
    /// can still inspect artifacts and the checkpoint netlist.
    ///
    /// This is the *guarded* entry point: a panicking pass is caught
    /// (`catch_unwind`) and reported as [`DesyncError::Panic`] instead of
    /// aborting, and the [`DesyncOptions`] budgets (`max_cells`,
    /// `max_nets`, `pass_deadline_ms`) are checked after every pass,
    /// turning runaway expansion into [`DesyncError::Budget`] /
    /// [`DesyncError::Deadline`]. After a caught panic the context may be
    /// mid-mutation — inspect the trace, not the netlist.
    pub fn run_recording(
        &self,
        cx: &mut FlowContext<'_>,
        stop_after: Option<&str>,
    ) -> (FlowTrace, Option<DesyncError>) {
        self.run_recording_observed(cx, stop_after, |_, _| Ok(()))
    }

    fn run_recording_observed(
        &self,
        cx: &mut FlowContext<'_>,
        stop_after: Option<&str>,
        mut observer: impl FnMut(&'static str, &FlowContext<'_>) -> Result<(), DesyncError>,
    ) -> (FlowTrace, Option<DesyncError>) {
        let mut trace = FlowTrace::default();
        if let Some(stop) = stop_after {
            if !self.passes.iter().any(|p| p.name() == stop) {
                let err = DesyncError::Pipeline {
                    message: format!(
                        "unknown pass `{stop}` — pipeline has: {}",
                        self.pass_names().join(", ")
                    ),
                };
                trace.error = Some(FlowErrorTrace {
                    pass: "<pipeline>",
                    message: err.to_string(),
                });
                return (trace, Some(err));
            }
        }
        for pass in &self.passes {
            let (cells_before, nets_before) = cx.netlist_stats();
            let start = Instant::now();
            // Guard: a panicking pass must not abort the flow — catch the
            // unwind and convert it into a structured diagnostic. The
            // context may be mid-mutation after a panic, so the run stops
            // here either way.
            let caught = catch_unwind(AssertUnwindSafe(|| pass.run(cx)));
            let wall_ns = start.elapsed().as_nanos();
            let result = match caught {
                Ok(result) => result,
                Err(payload) => Err(DesyncError::Panic {
                    pass: pass.name(),
                    message: panic_message(payload.as_ref()),
                }),
            };
            let report = match result {
                Ok(report) => report,
                Err(e) => {
                    trace.error = Some(FlowErrorTrace {
                        pass: pass.name(),
                        message: e.to_string(),
                    });
                    trace.degradations = cx.degradations.clone();
            trace.liveness_repairs = cx.liveness_repairs.clone();
                    return (trace, Some(e));
                }
            };
            let (cells_after, nets_after) = cx.netlist_stats();
            trace.total_wall_ns += wall_ns;
            trace.passes.push(PassTrace {
                name: pass.name(),
                wall_ns,
                cells_before,
                cells_after,
                nets_before,
                nets_after,
                artifacts: report.artifacts,
                detail: report.detail,
                workers: report.workers,
                region_wall_ns: report.region_wall_ns,
            });
            // Guard: resource budgets and the wall-clock deadline are
            // enforced after every pass (passes cannot be preempted). The
            // violation is recorded as a structured error on top of the
            // completed-pass trace.
            if let Some(e) = guard_violation(&cx.opts, pass.name(), cells_after, nets_after, wall_ns)
            {
                trace.error = Some(FlowErrorTrace {
                    pass: pass.name(),
                    message: e.to_string(),
                });
                trace.degradations = cx.degradations.clone();
            trace.liveness_repairs = cx.liveness_repairs.clone();
                return (trace, Some(e));
            }
            if let Err(e) = observer(pass.name(), cx) {
                trace.error = Some(FlowErrorTrace {
                    pass: pass.name(),
                    message: e.to_string(),
                });
                trace.degradations = cx.degradations.clone();
            trace.liveness_repairs = cx.liveness_repairs.clone();
                return (trace, Some(e));
            }
            if stop_after == Some(pass.name()) {
                break;
            }
        }
        trace.degradations = cx.degradations.clone();
        trace.liveness_repairs = cx.liveness_repairs.clone();
        (trace, None)
    }
}

/// Renders a caught panic payload: `&str` and `String` payloads (what
/// `panic!` produces) are shown verbatim, anything else is opaque.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Checks the post-pass budgets from [`DesyncOptions`]: cell/net ceilings
/// and the per-pass wall-clock deadline. Returns the violation, if any.
fn guard_violation(
    opts: &DesyncOptions,
    pass: &'static str,
    cells: usize,
    nets: usize,
    wall_ns: u128,
) -> Option<DesyncError> {
    if let Some(limit) = opts.max_cells {
        if cells > limit {
            return Some(DesyncError::Budget {
                pass,
                resource: "cells",
                limit,
                actual: cells,
            });
        }
    }
    if let Some(limit) = opts.max_nets {
        if nets > limit {
            return Some(DesyncError::Budget {
                pass,
                resource: "nets",
                limit,
                actual: nets,
            });
        }
    }
    if let Some(limit_ms) = opts.pass_deadline_ms {
        if wall_ns > u128::from(limit_ms).saturating_mul(1_000_000) {
            return Some(DesyncError::Deadline { pass, limit_ms });
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Desynchronizer;
    use drd_liberty::vlib90;
    use drd_netlist::{Conn, PortDir};

    fn toggle() -> Module {
        let mut m = Module::new("t");
        m.add_port("clk", PortDir::Input).unwrap();
        m.add_port("out", PortDir::Output).unwrap();
        let clk = m.find_net("clk").unwrap();
        let q = m.find_net("out").unwrap();
        let d = m.add_net("d").unwrap();
        m.add_cell("inv", "INVX1", &[("A", Conn::Net(q)), ("Z", Conn::Net(d))])
            .unwrap();
        m.add_cell(
            "r0",
            "DFFX1",
            &[("D", Conn::Net(d)), ("CK", Conn::Net(clk)), ("Q", Conn::Net(q))],
        )
        .unwrap();
        m
    }

    #[test]
    fn standard_pipeline_has_the_nine_stages() {
        assert_eq!(
            Pipeline::standard().pass_names(),
            vec![
                "clean",
                "clock-id",
                "group",
                "ddg",
                "region-delays",
                "ffsub",
                "control-network",
                "liveness",
                "sdc"
            ]
        );
    }

    #[test]
    fn full_run_produces_result_and_trace() {
        let lib = vlib90::high_speed();
        let tool = Desynchronizer::new(&lib).unwrap();
        let mut cx = FlowContext::new(
            &lib,
            tool.gatefile(),
            toggle(),
            DesyncOptions::default(),
        );
        let trace = Pipeline::standard().run(&mut cx).unwrap();
        assert_eq!(trace.passes.len(), 9);
        assert!(trace.passes.iter().all(|p| p.wall_ns > 0));
        let result = cx.into_result().unwrap();
        assert!(result.sdc.contains("create_clock"));
        assert_eq!(result.report.substituted_ffs, 1);
    }

    #[test]
    fn stop_after_halts_with_partial_artifacts() {
        let lib = vlib90::high_speed();
        let tool = Desynchronizer::new(&lib).unwrap();
        let mut cx = FlowContext::new(
            &lib,
            tool.gatefile(),
            toggle(),
            DesyncOptions::default(),
        );
        let trace = Pipeline::standard().run_until(&mut cx, Some("group")).unwrap();
        assert_eq!(trace.passes.len(), 3);
        assert!(cx.regions().is_some());
        assert!(cx.ddg().is_none());
        assert!(cx.sdc().is_none());
        // An incomplete context cannot be assembled into a result.
        assert!(matches!(
            cx.into_result(),
            Err(DesyncError::Pipeline { .. })
        ));
    }

    #[test]
    fn unknown_stop_pass_is_an_error() {
        let lib = vlib90::high_speed();
        let tool = Desynchronizer::new(&lib).unwrap();
        let mut cx = FlowContext::new(
            &lib,
            tool.gatefile(),
            toggle(),
            DesyncOptions::default(),
        );
        let err = Pipeline::standard()
            .run_until(&mut cx, Some("nope"))
            .unwrap_err();
        assert!(err.to_string().contains("nope"));
    }

    #[test]
    fn trace_json_is_balanced_and_deterministic_variant_has_no_times() {
        let lib = vlib90::high_speed();
        let tool = Desynchronizer::new(&lib).unwrap();
        let mut cx = FlowContext::new(
            &lib,
            tool.gatefile(),
            toggle(),
            DesyncOptions::default(),
        );
        let trace = Pipeline::standard().run(&mut cx).unwrap();
        let timed = trace.to_json();
        assert!(timed.contains("wall_ns"));
        let stable = trace.to_json_deterministic();
        assert!(!stable.contains("wall_ns"));
        for json in [&timed, &stable] {
            assert_eq!(json.matches('{').count(), json.matches('}').count());
            assert_eq!(json.matches('[').count(), json.matches(']').count());
        }
    }

    /// Two regions with different FF flavours: region A toggles through a
    /// `DFFX1`, region B re-registers A's output in a `DFFRX1` — removing
    /// the `DFFRX1` gatefile rule makes exactly one region degradable.
    fn two_region_mixed() -> Module {
        let mut m = Module::new("mix");
        m.add_port("clk", PortDir::Input).unwrap();
        m.add_port("out0", PortDir::Output).unwrap();
        m.add_port("out1", PortDir::Output).unwrap();
        let clk = m.find_net("clk").unwrap();
        let q0 = m.find_net("out0").unwrap();
        let q1 = m.find_net("out1").unwrap();
        let d0 = m.add_net("d0").unwrap();
        m.add_cell("inv0", "INVX1", &[("A", Conn::Net(q0)), ("Z", Conn::Net(d0))])
            .unwrap();
        m.add_cell(
            "r0",
            "DFFX1",
            &[("D", Conn::Net(d0)), ("CK", Conn::Net(clk)), ("Q", Conn::Net(q0))],
        )
        .unwrap();
        let d1 = m.add_net("d1").unwrap();
        m.add_cell("inv1", "INVX1", &[("A", Conn::Net(q0)), ("Z", Conn::Net(d1))])
            .unwrap();
        m.add_cell(
            "r1",
            "DFFRX1",
            &[
                ("D", Conn::Net(d1)),
                ("RN", Conn::Const1),
                ("CK", Conn::Net(clk)),
                ("Q", Conn::Net(q1)),
            ],
        )
        .unwrap();
        m
    }

    #[test]
    fn unsupported_ff_degrades_region_not_flow() {
        let lib = vlib90::high_speed();
        let mut gf = Gatefile::from_library(&lib).unwrap();
        gf.rules.retain(|r| r.ff != "DFFRX1");
        let mut cx = FlowContext::new(&lib, &gf, two_region_mixed(), DesyncOptions::default());
        let (trace, err) = Pipeline::standard().run_recording(&mut cx, None);
        assert!(err.is_none(), "degraded flow completes: {err:?}");
        assert_eq!(trace.degradations.len(), 1, "{:?}", trace.degradations);
        assert!(trace.to_json().contains("\"degradations\""));
        let result = cx.into_result().unwrap();
        let rep = &result.report;
        assert_eq!(rep.degradations.len(), 1);
        let d = &rep.degradations[0];
        assert!(
            matches!(&d.reason, DegradeReason::UnsupportedFf { kind } if kind == "DFFRX1"),
            "{d:?}"
        );
        assert_eq!(d.cells, vec!["r1".to_string()]);
        // Region A desynchronized: one FF substituted, one controller pair.
        assert_eq!(rep.substituted_ffs, 1);
        assert_eq!(rep.controllers, 2);
        // Region B kept its flip-flop, clock and got no controller.
        let top = result.design.module(result.design.top());
        let r1 = top.find_cell("r1").expect("degraded FF survives");
        assert_eq!(top.cell(r1).kind_name(), "DFFRX1");
        assert!(top.find_cell(&format!("drd_{}_ctlm", d.region)).is_none());
        // The SDC declares the clock-domain crossing.
        assert!(result.sdc.contains("set_clock_groups -asynchronous"), "{}", result.sdc);
    }

    #[test]
    fn strict_mode_restores_fail_fast() {
        let lib = vlib90::high_speed();
        let mut gf = Gatefile::from_library(&lib).unwrap();
        gf.rules.retain(|r| r.ff != "DFFRX1");
        let opts = DesyncOptions {
            strict: true,
            ..DesyncOptions::default()
        };
        let mut cx = FlowContext::new(&lib, &gf, two_region_mixed(), opts);
        let (trace, err) = Pipeline::standard().run_recording(&mut cx, None);
        assert!(
            matches!(err, Some(DesyncError::NoRule { ref cell }) if cell == "DFFRX1"),
            "{err:?}"
        );
        assert!(trace.degradations.is_empty());
    }

    struct PanicPass;
    impl Pass for PanicPass {
        fn name(&self) -> &'static str {
            "boom"
        }
        fn run(&self, _cx: &mut FlowContext<'_>) -> Result<PassReport, DesyncError> {
            panic!("kaboom {}", 6 * 7)
        }
    }

    #[test]
    fn panicking_pass_is_caught_as_structured_error() {
        let lib = vlib90::high_speed();
        let tool = Desynchronizer::new(&lib).unwrap();
        let mut cx = FlowContext::new(&lib, tool.gatefile(), toggle(), DesyncOptions::default());
        let mut p = Pipeline::empty();
        p.push(Box::new(PanicPass));
        let (trace, err) = p.run_recording(&mut cx, None);
        match err {
            Some(DesyncError::Panic { pass, message }) => {
                assert_eq!(pass, "boom");
                assert!(message.contains("kaboom 42"), "{message}");
            }
            other => panic!("expected Panic, got {other:?}"),
        }
        assert_eq!(trace.error.as_ref().unwrap().pass, "boom");
        assert!(trace.passes.is_empty(), "the failed pass is not recorded as executed");
    }

    #[test]
    fn cell_budget_violation_is_a_structured_error() {
        let lib = vlib90::high_speed();
        let tool = Desynchronizer::new(&lib).unwrap();
        let opts = DesyncOptions {
            max_cells: Some(1),
            ..DesyncOptions::default()
        };
        // toggle() has 2 cells: the very first pass must trip the budget.
        let mut cx = FlowContext::new(&lib, tool.gatefile(), toggle(), opts);
        let (trace, err) = Pipeline::standard().run_recording(&mut cx, None);
        assert!(
            matches!(
                err,
                Some(DesyncError::Budget { resource: "cells", limit: 1, actual: 2, .. })
            ),
            "{err:?}"
        );
        assert_eq!(trace.passes.len(), 1, "the tripping pass is still traced");
        assert!(trace.error.is_some());
    }

    struct SleepPass;
    impl Pass for SleepPass {
        fn name(&self) -> &'static str {
            "nap"
        }
        fn run(&self, _cx: &mut FlowContext<'_>) -> Result<PassReport, DesyncError> {
            std::thread::sleep(std::time::Duration::from_millis(25));
            Ok(PassReport::default())
        }
    }

    #[test]
    fn pass_deadline_is_enforced_post_hoc() {
        let lib = vlib90::high_speed();
        let tool = Desynchronizer::new(&lib).unwrap();
        let opts = DesyncOptions {
            pass_deadline_ms: Some(1),
            ..DesyncOptions::default()
        };
        let mut cx = FlowContext::new(&lib, tool.gatefile(), toggle(), opts);
        let mut p = Pipeline::empty();
        p.push(Box::new(SleepPass));
        let (_, err) = p.run_recording(&mut cx, None);
        assert!(
            matches!(err, Some(DesyncError::Deadline { pass: "nap", limit_ms: 1 })),
            "{err:?}"
        );
    }

    #[test]
    fn observer_sees_every_executed_pass() {
        let lib = vlib90::high_speed();
        let tool = Desynchronizer::new(&lib).unwrap();
        let mut cx = FlowContext::new(
            &lib,
            tool.gatefile(),
            toggle(),
            DesyncOptions::default(),
        );
        let mut seen = Vec::new();
        Pipeline::standard()
            .run_observed(&mut cx, Some("ddg"), |name, cx| {
                seen.push((name, cx.netlist_verilog().len()));
                Ok(())
            })
            .unwrap();
        assert_eq!(
            seen.iter().map(|(n, _)| *n).collect::<Vec<_>>(),
            vec!["clean", "clock-id", "group", "ddg"]
        );
        // Checkpoints are valid Verilog at every boundary.
        assert!(seen.iter().all(|&(_, len)| len > 0));
    }
}
