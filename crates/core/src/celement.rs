//! C-Muller synchronization trees (§2.4.3, §3.1.5, Table 2.1).
//!
//! Multiple input requests (or output acknowledgements) are synchronized
//! by C-elements: the output rises only when all inputs have risen and
//! falls only when all have fallen. Wide rendezvous are built as balanced
//! trees of 2-input C-elements. Join trees need no reset: with all inputs
//! equal at reset they initialize themselves.

use drd_netlist::{Conn, Module, NetId};

use crate::DesyncError;

/// Report from building one C-element tree.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CTreeReport {
    /// C-elements inserted.
    pub celements: usize,
    /// Instance names of the inserted C-elements — the targeted mutation
    /// points the fault-injection harness corrupts one at a time.
    pub cells: Vec<String>,
}

/// Joins `inputs` with a balanced tree of `C2X1` cells named with
/// `prefix`; returns the rendezvous net (and how many cells were added).
///
/// A single input is returned unchanged.
///
/// # Errors
/// Propagates netlist errors.
///
/// # Panics
/// Panics if `inputs` is empty.
pub fn join(
    module: &mut Module,
    inputs: &[NetId],
    prefix: &str,
) -> Result<(NetId, CTreeReport), DesyncError> {
    assert!(!inputs.is_empty(), "a join needs at least one input");
    let mut report = CTreeReport::default();
    let mut level: Vec<NetId> = inputs.to_vec();
    let mut stage = 0usize;
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len().div_ceil(2));
        for (i, chunk) in level.chunks(2).enumerate() {
            if chunk.len() == 1 {
                next.push(chunk[0]);
                continue;
            }
            let z = module.add_net_auto(&format!("{prefix}_c{stage}_{i}"));
            let name = module.unique_cell_name(&format!("{prefix}_uc{stage}_{i}"));
            module.add_cell(
                name.clone(),
                "C2X1",
                &[
                    ("A", Conn::Net(chunk[0])),
                    ("B", Conn::Net(chunk[1])),
                    ("Z", Conn::Net(z)),
                ],
            )?;
            report.celements += 1;
            report.cells.push(name);
            next.push(z);
        }
        level = next;
        stage += 1;
    }
    Ok((level[0], report))
}

/// Lowers every primitive C-element of a *flat* module into pure standard
/// cells: the classic majority-gate-with-feedback form
/// `z = (a & b) | (z & (a | b))`, with the reset/set pin folded in. Useful
/// for exporting to flows whose libraries have no C-element (the paper
/// synthesizes its C-elements from Verilog with a conventional tool,
/// §3.1.5). Returns the number of C-elements decomposed.
///
/// # Errors
/// Propagates netlist errors.
///
/// # Panics
/// Panics if a C-element has other than two rendezvous inputs (wider
/// C-elements are built as trees of 2-input cells by [`join`]).
pub fn decompose_celements(
    module: &mut Module,
    lib: &drd_liberty::Library,
) -> Result<usize, DesyncError> {
    use drd_liberty::SeqKind;
    let targets: Vec<_> = module
        .cells()
        .filter_map(|(id, cell)| {
            let lc = lib.cell_of(cell.kind_ref())?;
            match &lc.seq {
                SeqKind::CElement { inputs, reset, set, q } => Some((
                    id,
                    cell.name.to_owned(),
                    inputs.clone(),
                    reset.clone(),
                    set.clone(),
                    q.clone(),
                )),
                _ => None,
            }
        })
        .collect();
    let count = targets.len();
    for (id, name, inputs, reset, set, q) in targets {
        assert_eq!(inputs.len(), 2, "tree-decomposed C-elements are 2-input");
        let cell = module.cell(id);
        let pin = |p: &str| cell.pin(p).unwrap_or(Conn::Open);
        let (a, b) = (pin(&inputs[0]), pin(&inputs[1]));
        let z = pin(&q);
        let rn = reset.as_deref().map(&pin);
        let sn = set.as_deref().map(&pin);
        module.remove_cell(id);
        let Conn::Net(z_net) = z else { continue };

        let and_ab = module.add_net_auto(&format!("{name}__maj_and"));
        let or_ab = module.add_net_auto(&format!("{name}__maj_or"));
        let hold = module.add_net_auto(&format!("{name}__maj_hold"));
        let cname = module.unique_cell_name(&format!("{name}_mand"));
        module.add_cell(
            cname,
            "AND2X1",
            &[("A", a), ("B", b), ("Z", Conn::Net(and_ab))],
        )?;
        let cname = module.unique_cell_name(&format!("{name}_mor"));
        module.add_cell(
            cname,
            "OR2X1",
            &[("A", a), ("B", b), ("Z", Conn::Net(or_ab))],
        )?;
        let cname = module.unique_cell_name(&format!("{name}_mhold"));
        module.add_cell(
            cname,
            "AND2X1",
            &[("A", Conn::Net(or_ab)), ("B", Conn::Net(z_net)), ("Z", Conn::Net(hold))],
        )?;
        // Output stage, with reset/set folded in.
        match (rn, sn) {
            (Some(rn), None) => {
                let pre = module.add_net_auto(&format!("{name}__maj_pre"));
                let cname = module.unique_cell_name(&format!("{name}_mout"));
                module.add_cell(
                    cname,
                    "OR2X1",
                    &[("A", Conn::Net(and_ab)), ("B", Conn::Net(hold)), ("Z", Conn::Net(pre))],
                )?;
                let cname = module.unique_cell_name(&format!("{name}_mrst"));
                module.add_cell(
                    cname,
                    "AND2X1",
                    &[("A", Conn::Net(pre)), ("B", rn), ("Z", Conn::Net(z_net))],
                )?;
            }
            (None, Some(sn)) => {
                let pre = module.add_net_auto(&format!("{name}__maj_pre"));
                let nsn = module.add_net_auto(&format!("{name}__maj_nsn"));
                let cname = module.unique_cell_name(&format!("{name}_mout"));
                module.add_cell(
                    cname,
                    "OR2X1",
                    &[("A", Conn::Net(and_ab)), ("B", Conn::Net(hold)), ("Z", Conn::Net(pre))],
                )?;
                let cname = module.unique_cell_name(&format!("{name}_mnsn"));
                module.add_cell(
                    cname,
                    "INVX1",
                    &[("A", sn), ("Z", Conn::Net(nsn))],
                )?;
                let cname = module.unique_cell_name(&format!("{name}_mset"));
                module.add_cell(
                    cname,
                    "OR2X1",
                    &[("A", Conn::Net(pre)), ("B", Conn::Net(nsn)), ("Z", Conn::Net(z_net))],
                )?;
            }
            _ => {
                let cname = module.unique_cell_name(&format!("{name}_mout"));
                module.add_cell(
                    cname,
                    "OR2X1",
                    &[("A", Conn::Net(and_ab)), ("B", Conn::Net(hold)), ("Z", Conn::Net(z_net))],
                )?;
            }
        }
    }
    Ok(count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use drd_liberty::{vlib90, Lv};
    use drd_netlist::{Design, PortDir};
    use drd_sim::{SimOptions, Simulator};

    #[test]
    fn single_input_is_identity() {
        let mut m = Module::new("t");
        let a = m.add_net("a").unwrap();
        let (out, rep) = join(&mut m, &[a], "j").unwrap();
        assert_eq!(out, a);
        assert_eq!(rep.celements, 0);
        assert_eq!(m.cell_count(), 0);
    }

    #[test]
    fn tree_sizes() {
        for (n, expected) in [(2usize, 1usize), (3, 2), (4, 3), (5, 4), (10, 9)] {
            let mut m = Module::new("t");
            let inputs: Vec<NetId> = (0..n)
                .map(|i| m.add_net(format!("i{i}")).unwrap())
                .collect();
            let (_, rep) = join(&mut m, &inputs, "j").unwrap();
            assert_eq!(rep.celements, expected, "n = {n}");
        }
    }

    /// The decomposed majority form behaves per Table 2.1 and holds state
    /// through its feedback loop.
    #[test]
    fn decomposed_celement_matches_primitive() {
        let lib = vlib90::high_speed();
        let mut m = Module::new("t");
        for p in ["a", "b"] {
            m.add_port(p, PortDir::Input).unwrap();
        }
        m.add_port("z", PortDir::Output).unwrap();
        let a = m.find_net("a").unwrap();
        let b = m.find_net("b").unwrap();
        let z = m.find_net("z").unwrap();
        m.add_cell(
            "c",
            "C2X1",
            &[("A", Conn::Net(a)), ("B", Conn::Net(b)), ("Z", Conn::Net(z))],
        )
        .unwrap();
        let n = decompose_celements(&mut m, &lib).unwrap();
        assert_eq!(n, 1);
        assert!(m.find_cell("c").is_none());
        assert!(m.cell_count() >= 4);

        let mut design = Design::new();
        design.insert(m);
        let mut sim = Simulator::new(&design, &lib, SimOptions::default()).unwrap();
        let set = |sim: &mut Simulator, av: Lv, bv: Lv| {
            sim.poke("a", av).unwrap();
            sim.poke("b", bv).unwrap();
            sim.run_for(3.0);
        };
        set(&mut sim, Lv::Zero, Lv::Zero);
        assert_eq!(sim.peek("z").unwrap(), Lv::Zero);
        set(&mut sim, Lv::One, Lv::One);
        assert_eq!(sim.peek("z").unwrap(), Lv::One);
        set(&mut sim, Lv::Zero, Lv::One);
        assert_eq!(sim.peek("z").unwrap(), Lv::One, "holds");
        set(&mut sim, Lv::Zero, Lv::Zero);
        assert_eq!(sim.peek("z").unwrap(), Lv::Zero);
    }

    /// Table 2.1: all 0s → 0, all 1s → 1, otherwise unchanged — checked
    /// behaviourally on a 3-input tree.
    #[test]
    fn truth_table_2_1_holds_for_trees() {
        let lib = vlib90::high_speed();
        let mut m = Module::new("t");
        for i in 0..3 {
            m.add_port(format!("i{i}"), PortDir::Input).unwrap();
        }
        m.add_port("z", PortDir::Output).unwrap();
        let inputs: Vec<NetId> = (0..3)
            .map(|i| m.find_net(&format!("i{i}")).unwrap())
            .collect();
        let (out, _) = join(&mut m, &inputs, "j").unwrap();
        let z = m.find_net("z").unwrap();
        m.add_cell("obuf", "BUFX1", &[("A", Conn::Net(out)), ("Z", Conn::Net(z))])
            .unwrap();
        let mut design = Design::new();
        design.insert(m);
        let mut sim = Simulator::new(&design, &lib, SimOptions::default()).unwrap();

        let set = |sim: &mut Simulator, bits: [Lv; 3]| {
            for (i, b) in bits.iter().enumerate() {
                sim.poke(&format!("i{i}"), *b).unwrap();
            }
            sim.run_for(2.0);
        };
        set(&mut sim, [Lv::Zero, Lv::Zero, Lv::Zero]);
        assert_eq!(sim.peek("z").unwrap(), Lv::Zero, "all 0s → 0");
        set(&mut sim, [Lv::One, Lv::One, Lv::One]);
        assert_eq!(sim.peek("z").unwrap(), Lv::One, "all 1s → 1");
        set(&mut sim, [Lv::One, Lv::Zero, Lv::One]);
        assert_eq!(sim.peek("z").unwrap(), Lv::One, "mixed → unchanged");
        set(&mut sim, [Lv::Zero, Lv::Zero, Lv::One]);
        assert_eq!(sim.peek("z").unwrap(), Lv::One, "mixed → unchanged");
        set(&mut sim, [Lv::Zero, Lv::Zero, Lv::Zero]);
        assert_eq!(sim.peek("z").unwrap(), Lv::Zero, "all 0s → 0 again");
    }
}
