//! The one-call desynchronization flow (§3.2, Fig. 2.1) — a thin
//! compatibility wrapper over the instrumented [`crate::pipeline`].

use std::collections::HashMap;

use drd_liberty::gatefile::Gatefile;
use drd_liberty::{Corner, Library, SeqKind};
use drd_netlist::{Design, Module};
use drd_sta::{GraphOptions, SubsetContext, TimingGraph};

use crate::pipeline::{FlowContext, FlowTrace, Pipeline};
use crate::region::{GroupingOptions, Regions};
use crate::DesyncError;

/// Options for a desynchronization run.
#[derive(Debug, Clone, PartialEq)]
pub struct DesyncOptions {
    /// Region-creation options (§3.2.2).
    pub grouping: GroupingOptions,
    /// Remove synthesis buffering before grouping (§3.2.2, IPO flow:
    /// "the removed logic does not need to be put back").
    pub clean_logic: bool,
    /// Safety margin on matched delays (§2.5: "delay elements must include
    /// margins to cope with uncorrelated variability").
    pub delay_margin: f64,
    /// Use 8-tap multiplexed delay elements with `dsel[2:0]` calibration
    /// ports (§3.2.5, the Fig. 5.3 sweep).
    pub muxed_delay_elements: bool,
    /// Clock port name; auto-detected when `None`.
    pub clock_port: Option<String>,
    /// Original clock period for constraint generation (ns).
    pub clock_period_ns: f64,
    /// Fail fast: treat any per-region degradation (unsupported FF, delay
    /// matching or controller synthesis failure) as a hard error instead
    /// of leaving the region synchronous. The CLI exposes this as
    /// `--strict`.
    pub strict: bool,
    /// Guard budget: abort (with [`crate::DesyncError::Budget`]) when a
    /// pass leaves more than this many cells in the working netlist.
    pub max_cells: Option<usize>,
    /// Guard budget: ceiling on nets in the working netlist after each
    /// pass.
    pub max_nets: Option<usize>,
    /// Guard budget: ceiling on explored STG states in protocol checks.
    pub stg_state_limit: Option<usize>,
    /// Guard budget: per-pass wall-clock deadline in milliseconds,
    /// enforced after the pass returns (passes are not preempted).
    pub pass_deadline_ms: Option<u64>,
    /// Worker threads for the per-region parallel passes (`region-delays`,
    /// `ffsub`, `control-network`, `sdc`). `None` defers to the
    /// `DRD_WORKERS` environment variable, then to the machine's available
    /// parallelism. All artifacts are byte-identical for every worker
    /// count. The CLI exposes this as `--jobs`.
    pub jobs: Option<usize>,
}

impl DesyncOptions {
    /// The effective worker count: `jobs` if set, otherwise
    /// [`drd_runner::worker_count`] (`DRD_WORKERS` override or available
    /// parallelism).
    pub fn workers(&self) -> usize {
        self.jobs.map_or_else(drd_runner::worker_count, |j| j.max(1))
    }

    /// Canonical serialization of every option that can change the
    /// flow's artifacts — the options half of a flow-cache key.
    ///
    /// `jobs` is deliberately excluded: artifacts are byte-identical for
    /// every worker count (the PR 5 determinism invariant), so the worker
    /// count must not split cache entries. `false_path_nets` is sorted
    /// and deduplicated (grouping consumes it as a set). Field order is
    /// fixed, strings are debug-escaped and floats render in round-trip
    /// form, so equal keys mean equal flow behaviour.
    pub fn cache_key(&self) -> String {
        let mut nets = self.grouping.false_path_nets.clone();
        nets.sort();
        nets.dedup();
        format!(
            "bus={};false_paths={:?};single={};clean={};margin={:?};muxed={};\
             clock={:?};period={:?};strict={};max_cells={:?};max_nets={:?};\
             stg_limit={:?};deadline_ms={:?}",
            self.grouping.bus_grouping,
            nets,
            self.grouping.single_group,
            self.clean_logic,
            self.delay_margin,
            self.muxed_delay_elements,
            self.clock_port,
            self.clock_period_ns,
            self.strict,
            self.max_cells,
            self.max_nets,
            self.stg_state_limit,
            self.pass_deadline_ms,
        )
    }
}

impl Default for DesyncOptions {
    fn default() -> Self {
        DesyncOptions {
            grouping: GroupingOptions::recommended(),
            clean_logic: true,
            delay_margin: 1.08,
            muxed_delay_elements: false,
            clock_port: None,
            clock_period_ns: 2.4,
            strict: false,
            max_cells: None,
            max_nets: None,
            stg_state_limit: None,
            pass_deadline_ms: None,
            jobs: None,
        }
    }
}

/// Summary of what the tool did.
#[derive(Debug, Clone)]
pub struct DesyncReport {
    /// The identified clock net name.
    pub clock_net: String,
    /// Region summaries `(name, cells, ffs, critical_delay_ns,
    /// delem_levels)`.
    pub regions: Vec<RegionSummary>,
    /// Data-dependency edges as region-name pairs.
    pub ddg_edges: Vec<(String, String)>,
    /// Flip-flops substituted.
    pub substituted_ffs: usize,
    /// Extra gates inserted by the substitution.
    pub extra_gates: usize,
    /// Controller instances inserted.
    pub controllers: usize,
    /// C-elements inserted.
    pub celements: usize,
    /// Buffers/inverter pairs removed by cleaning.
    pub cleaned_cells: usize,
    /// Regions left synchronous (empty for a fully desynchronized run).
    pub degradations: Vec<crate::Degradation>,
    /// Repairs the liveness guard applied to keep loopback source
    /// regions from wedging (empty when no hazard was found).
    pub liveness_repairs: Vec<crate::LivenessRepair>,
}

/// Per-region summary.
#[derive(Debug, Clone)]
pub struct RegionSummary {
    /// Region name (`g0` = input registers).
    pub name: String,
    /// Total cells before substitution.
    pub cells: usize,
    /// Flip-flops substituted.
    pub ffs: usize,
    /// Typical-corner critical-path delay of the cloud (ns).
    pub critical_delay_ns: f64,
    /// Matched delay-element levels.
    pub delem_levels: usize,
}

/// The outcome of desynchronization.
#[derive(Debug, Clone)]
pub struct DesyncResult {
    /// The desynchronized design: top module plus generated controller and
    /// delay-element modules.
    pub design: Design,
    /// Backend physical timing constraints (Synopsys SDC).
    pub sdc: String,
    /// What happened.
    pub report: DesyncReport,
}

/// The desynchronization tool.
#[derive(Debug, Clone)]
pub struct Desynchronizer<'a> {
    lib: &'a Library,
    gatefile: Gatefile,
}

impl<'a> Desynchronizer<'a> {
    /// Prepares the tool for `lib` (builds the gatefile, §3.1).
    ///
    /// # Errors
    /// Returns [`DesyncError::Library`] if the library cannot support
    /// desynchronization (e.g. no latch).
    pub fn new(lib: &'a Library) -> Result<Self, DesyncError> {
        Ok(Desynchronizer {
            lib,
            gatefile: Gatefile::from_library(lib)?,
        })
    }

    /// The prepared gatefile.
    pub fn gatefile(&self) -> &Gatefile {
        &self.gatefile
    }

    /// Desynchronizes `module`. Borrowing wrapper around
    /// [`Desynchronizer::run_owned`] — clones the input netlist once.
    ///
    /// # Errors
    /// Returns [`DesyncError`] if the clock cannot be identified, a
    /// flip-flop has no replacement rule, or a netlist/STA pass fails.
    pub fn run(&self, module: &Module, opts: &DesyncOptions) -> Result<DesyncResult, DesyncError> {
        self.run_owned(module.clone(), opts)
    }

    /// Desynchronizes `module`, consuming it — no netlist copy is made.
    ///
    /// # Errors
    /// As [`Desynchronizer::run`].
    pub fn run_owned(
        &self,
        module: Module,
        opts: &DesyncOptions,
    ) -> Result<DesyncResult, DesyncError> {
        Ok(self.run_traced(module, opts)?.0)
    }

    /// Desynchronizes `module` through [`Pipeline::standard`], returning
    /// the per-pass instrumentation alongside the result.
    ///
    /// # Errors
    /// As [`Desynchronizer::run`].
    pub fn run_traced(
        &self,
        module: Module,
        opts: &DesyncOptions,
    ) -> Result<(DesyncResult, FlowTrace), DesyncError> {
        let (result, trace) = self.run_checked(module, opts);
        Ok((result?, trace))
    }

    /// Like [`Desynchronizer::run_traced`], but a mid-run pass failure
    /// does not discard the instrumentation: the returned [`FlowTrace`]
    /// always lists the passes that completed, and records the failing
    /// pass and message in [`FlowTrace::error`].
    pub fn run_checked(
        &self,
        module: Module,
        opts: &DesyncOptions,
    ) -> (Result<DesyncResult, DesyncError>, FlowTrace) {
        let mut cx = FlowContext::new(self.lib, &self.gatefile, module, opts.clone());
        let (trace, err) = Pipeline::standard().run_recording(&mut cx, None);
        match err {
            Some(e) => (Err(e), trace),
            None => (cx.into_result(), trace),
        }
    }
}

/// Per-region combinational critical-path delay: the worst arrival at any
/// data input of the region's sequential cells (§3.2.5). Serial wrapper
/// around [`region_delays_with`].
pub fn region_delays(
    module: &Module,
    lib: &Library,
    regions: &Regions,
) -> Result<Vec<f64>, DesyncError> {
    region_delays_with(module, lib, regions, 1).map(|(delays, _)| delays)
}

/// [`region_delays`] with an explicit worker count, also returning the
/// per-region analysis wall time (ns) for flow instrumentation.
///
/// Each region is one task: a [`SubsetContext`]-backed timing graph over
/// the region's own cells is built and propagated independently — valid
/// because region clouds are disjoint and sequential outputs/ports are
/// zero-arrival sources either way, so each endpoint's arrival only
/// depends on in-region logic. Results are merged in region-index order
/// (the lowest-indexed error wins), making the output independent of the
/// worker count.
pub fn region_delays_with(
    module: &Module,
    lib: &Library,
    regions: &Regions,
    workers: usize,
) -> Result<(Vec<f64>, Vec<u128>), DesyncError> {
    let cx = SubsetContext::new(module, lib)?;
    let cell_ids: HashMap<&str, drd_netlist::CellId> =
        module.cells().map(|(id, c)| (c.name, id)).collect();
    let kind_of: HashMap<&str, &str> =
        module.cells().map(|(_, c)| (c.name, c.kind_name())).collect();
    let members: Vec<Vec<drd_netlist::CellId>> = regions
        .regions
        .iter()
        .map(|r| {
            r.cells
                .iter()
                .filter_map(|name| cell_ids.get(name.as_str()).copied())
                .collect()
        })
        .collect();

    let analyzed = drd_runner::run_indexed(regions.regions.len(), workers, |i| {
        let start = std::time::Instant::now();
        let graph = TimingGraph::build_subset(&cx, lib, &GraphOptions::default(), &members[i])?;
        let arrivals = graph.arrivals(Corner::typical())?;
        let mut worst = 0.0f64;
        for cell_name in &regions.regions[i].seq_cells {
            let Some(kind) = kind_of.get(cell_name.as_str()) else { continue };
            let Some(lc) = lib.cell(kind) else { continue };
            let clockish = match &lc.seq {
                SeqKind::FlipFlop(ff) => Some(ff.clocked_on.clone()),
                SeqKind::Latch(l) => Some(l.enable.clone()),
                _ => None,
            };
            for pin in lc.input_pins() {
                if Some(&pin.name) == clockish.as_ref() {
                    continue;
                }
                if let Some(node) = graph.find_pin(cell_name, &pin.name) {
                    worst = worst.max(arrivals.at(node));
                }
            }
        }
        // Account for the latch setup time the delayed request must cover.
        let delay = if worst > 0.0 { worst + 0.05 } else { 0.0 };
        Ok::<(f64, u128), DesyncError>((delay, start.elapsed().as_nanos()))
    });

    let mut delays = vec![0.0f64; regions.regions.len()];
    let mut walls = vec![0u128; regions.regions.len()];
    for (i, outcome) in analyzed.into_iter().enumerate() {
        let (delay, wall) = outcome?;
        delays[i] = delay;
        walls[i] = wall;
    }
    Ok((delays, walls))
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::panic)]
    use super::*;
    use drd_liberty::{vlib90, Lv};
    use drd_netlist::{Conn, PortDir};
    use drd_sim::{compare_capture_logs, SimOptions, Simulator};

    /// Self-contained two-region design:
    /// * region A: `r0` toggles (D = !Q0),
    /// * region B: `r1` accumulates parity (D = Q0 ^ Q1).
    fn toggle_parity() -> Module {
        let mut m = Module::new("tp");
        m.add_port("clk", PortDir::Input).unwrap();
        m.add_port("out0", PortDir::Output).unwrap();
        m.add_port("out1", PortDir::Output).unwrap();
        let clk = m.find_net("clk").unwrap();
        let q0 = m.find_net("out0").unwrap();
        let q1 = m.find_net("out1").unwrap();
        let d0 = m.add_net("d0").unwrap();
        m.add_cell("inv0", "INVX1", &[("A", Conn::Net(q0)), ("Z", Conn::Net(d0))])
            .unwrap();
        m.add_cell(
            "r0",
            "DFFX1",
            &[("D", Conn::Net(d0)), ("CK", Conn::Net(clk)), ("Q", Conn::Net(q0))],
        )
        .unwrap();
        let d1 = m.add_net("d1").unwrap();
        m.add_cell(
            "xor1",
            "XOR2X1",
            &[("A", Conn::Net(q0)), ("B", Conn::Net(q1)), ("Z", Conn::Net(d1))],
        )
        .unwrap();
        m.add_cell(
            "r1",
            "DFFX1",
            &[("D", Conn::Net(d1)), ("CK", Conn::Net(clk)), ("Q", Conn::Net(q1))],
        )
        .unwrap();
        m
    }

    #[test]
    fn report_shape() {
        let lib = vlib90::high_speed();
        let tool = Desynchronizer::new(&lib).unwrap();
        let result = tool.run(&toggle_parity(), &DesyncOptions::default()).unwrap();
        let rep = &result.report;
        assert_eq!(rep.clock_net, "clk");
        assert_eq!(rep.substituted_ffs, 2);
        assert_eq!(rep.regions.len(), 2, "{:?}", rep.regions);
        assert_eq!(rep.controllers, 4);
        // Region A feeds region B; both regions read their own registers.
        assert!(rep.ddg_edges.len() >= 3, "{:?}", rep.ddg_edges);
        assert!(result.sdc.contains("create_clock"));
        // The exported design parses back (write → parse round trip).
        let text = drd_netlist::verilog::write_design(&result.design);
        drd_netlist::verilog::parse_design(&text).expect("exported Verilog parses");
    }

    /// The headline property: the desynchronized circuit is
    /// flow-equivalent to its synchronous counterpart (§2.1).
    #[test]
    fn desynchronized_circuit_is_flow_equivalent() {
        let lib = vlib90::high_speed();
        let module = toggle_parity();

        // Synchronous reference: 20 clocked cycles.
        let mut sync_design = Design::new();
        sync_design.insert(module.clone());
        let mut reference = Simulator::new(&sync_design, &lib, SimOptions::default()).unwrap();
        reference.schedule_clock("clk", 2.0, 1.0, 20).unwrap();
        reference.run_for(45.0);
        assert_eq!(reference.captures().capture_count("r0"), 20);

        // Desynchronized version, free-running after reset.
        let tool = Desynchronizer::new(&lib).unwrap();
        let result = tool.run(&module, &DesyncOptions::default()).unwrap();
        let mut dut = Simulator::new(&result.design, &lib, SimOptions::default()).unwrap();
        dut.poke("drd_rst", Lv::Zero).unwrap();
        dut.run_for(2.0);
        dut.poke("drd_rst", Lv::One).unwrap();
        dut.run_for(200.0);
        assert!(
            dut.captures().capture_count("r0_ls") >= 10,
            "desynchronized circuit runs: {} slave captures",
            dut.captures().capture_count("r0_ls")
        );

        let check = compare_capture_logs(reference.captures(), dut.captures(), |n| {
            format!("{n}_ls")
        });
        assert!(check.is_equivalent(), "flow equivalence: {check:?}");
    }

    /// Effective period scales with the operating corner — the circuit is
    /// self-timed (§2.5).
    #[test]
    fn effective_period_tracks_corner() {
        let lib = vlib90::high_speed();
        let tool = Desynchronizer::new(&lib).unwrap();
        let result = tool.run(&toggle_parity(), &DesyncOptions::default()).unwrap();
        let period_at = |corner| {
            let mut sim =
                Simulator::new(&result.design, &lib, SimOptions::at_corner(corner)).unwrap();
            sim.watch("drd_g1_gs").unwrap();
            sim.poke("drd_rst", Lv::Zero).unwrap();
            sim.run_for(2.0);
            sim.poke("drd_rst", Lv::One).unwrap();
            sim.run_for(300.0);
            let edges = sim.rising_edges("drd_g1_gs");
            assert!(edges.len() > 5, "oscillates at {}", corner.name);
            (edges[edges.len() - 1] - edges[1]) / (edges.len() - 2) as f64
        };
        let best = period_at(Corner::best());
        let worst = period_at(Corner::worst());
        let ratio = worst / best;
        let expected = Corner::worst().delay_factor / Corner::best().delay_factor;
        assert!(
            (ratio / expected - 1.0).abs() < 0.1,
            "period ratio {ratio} tracks corner ratio {expected}"
        );
    }

    #[test]
    fn parallel_region_delays_match_serial_bitwise() {
        let lib = vlib90::high_speed();
        let mut m = toggle_parity();
        crate::region::clean_for_grouping(&mut m, &lib);
        let regions =
            crate::region::group(&m, &lib, &crate::region::GroupingOptions::recommended())
                .unwrap();
        let serial = region_delays(&m, &lib, &regions).unwrap();
        assert!(serial.iter().any(|&d| d > 0.0), "{serial:?}");
        for workers in [2, 3, 8] {
            let (par, walls) = region_delays_with(&m, &lib, &regions, workers).unwrap();
            assert_eq!(walls.len(), serial.len());
            for (a, b) in serial.iter().zip(&par) {
                assert_eq!(a.to_bits(), b.to_bits(), "workers={workers}");
            }
        }
    }

    #[test]
    fn no_clock_is_an_error() {
        let lib = vlib90::high_speed();
        let tool = Desynchronizer::new(&lib).unwrap();
        let mut m = Module::new("comb");
        let a = m.add_net("a").unwrap();
        let z = m.add_net("z").unwrap();
        m.add_cell("u", "INVX1", &[("A", Conn::Net(a)), ("Z", Conn::Net(z))])
            .unwrap();
        assert!(matches!(
            tool.run(&m, &DesyncOptions::default()),
            Err(DesyncError::Clock { .. })
        ));
    }
}
