//! Desynchronization error type.

use std::error::Error;
use std::fmt;

/// Errors from the desynchronization passes.
#[derive(Debug, Clone)]
pub enum DesyncError {
    /// The netlist references an unknown library cell.
    UnknownCell {
        /// The missing cell name.
        name: String,
    },
    /// No clock could be identified (or the design has multiple clocks —
    /// "Currently the desynchronization flow supports only single clock
    /// circuits", §4.1).
    Clock {
        /// Explanation.
        message: String,
    },
    /// Library preparation failed (no latch, unsupported flip-flop, …).
    Library(drd_liberty::LibraryError),
    /// A netlist operation failed.
    Netlist(drd_netlist::NetlistError),
    /// Static timing analysis failed.
    Sta(drd_sta::StaError),
    /// A flip-flop has no replacement rule in the gatefile.
    NoRule {
        /// The flip-flop cell name.
        cell: String,
    },
    /// A pass-pipeline misuse: unknown pass name, or a pass run before
    /// its prerequisites.
    Pipeline {
        /// Explanation.
        message: String,
    },
}

impl fmt::Display for DesyncError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DesyncError::UnknownCell { name } => write!(f, "unknown library cell `{name}`"),
            DesyncError::Clock { message } => write!(f, "clock identification failed: {message}"),
            DesyncError::Library(e) => write!(f, "library preparation failed: {e}"),
            DesyncError::Netlist(e) => write!(f, "netlist operation failed: {e}"),
            DesyncError::Sta(e) => write!(f, "timing analysis failed: {e}"),
            DesyncError::NoRule { cell } => {
                write!(f, "no gatefile replacement rule for flip-flop `{cell}`")
            }
            DesyncError::Pipeline { message } => write!(f, "pipeline error: {message}"),
        }
    }
}

impl Error for DesyncError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            DesyncError::Library(e) => Some(e),
            DesyncError::Netlist(e) => Some(e),
            DesyncError::Sta(e) => Some(e),
            _ => None,
        }
    }
}

impl From<drd_liberty::LibraryError> for DesyncError {
    fn from(e: drd_liberty::LibraryError) -> Self {
        DesyncError::Library(e)
    }
}

impl From<drd_netlist::NetlistError> for DesyncError {
    fn from(e: drd_netlist::NetlistError) -> Self {
        DesyncError::Netlist(e)
    }
}

impl From<drd_sta::StaError> for DesyncError {
    fn from(e: drd_sta::StaError) -> Self {
        DesyncError::Sta(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = DesyncError::NoRule { cell: "DFFZ".into() };
        assert!(e.to_string().contains("DFFZ"));
        let e: DesyncError = drd_liberty::LibraryError::new("boom").into();
        assert!(e.source().is_some());
    }
}
