//! Desynchronization error type.

use std::error::Error;
use std::fmt;

/// Errors from the desynchronization passes.
#[derive(Debug, Clone)]
pub enum DesyncError {
    /// The netlist references an unknown library cell.
    UnknownCell {
        /// The missing cell name.
        name: String,
    },
    /// No clock could be identified (or the design has multiple clocks —
    /// "Currently the desynchronization flow supports only single clock
    /// circuits", §4.1).
    Clock {
        /// Explanation.
        message: String,
    },
    /// Library preparation failed (no latch, unsupported flip-flop, …).
    Library(drd_liberty::LibraryError),
    /// A netlist operation failed.
    Netlist(drd_netlist::NetlistError),
    /// Static timing analysis failed.
    Sta(drd_sta::StaError),
    /// A flip-flop has no replacement rule in the gatefile.
    NoRule {
        /// The flip-flop cell name.
        cell: String,
    },
    /// A pass-pipeline misuse: unknown pass name, or a pass run before
    /// its prerequisites.
    Pipeline {
        /// Explanation.
        message: String,
    },
    /// A guarded pass exceeded a configured resource budget (see
    /// [`crate::DesyncOptions`]'s `max_cells` / `max_nets` /
    /// `stg_state_limit` fields).
    Budget {
        /// The pass whose output broke the budget.
        pass: &'static str,
        /// Which resource overflowed ("cells", "nets", "stg states").
        resource: &'static str,
        /// The configured ceiling.
        limit: usize,
        /// The observed value.
        actual: usize,
    },
    /// A guarded pass overran its wall-clock deadline
    /// (`pass_deadline_ms`).
    Deadline {
        /// The pass that overran.
        pass: &'static str,
        /// The configured deadline in milliseconds.
        limit_ms: u64,
    },
    /// A pass panicked; the guard caught the unwind and converted it into
    /// this diagnostic instead of aborting the process.
    Panic {
        /// The pass that panicked.
        pass: &'static str,
        /// The panic payload (message), when it was a string.
        message: String,
    },
    /// The liveness guard could not repair a pulse-swallowing hazard
    /// within its ladder (deepen → latch → degrade): either the run is
    /// strict and a region would have to be degraded, or the repaired
    /// network still deadlocks in validation.
    Liveness {
        /// The source region whose request pulse is swallowed.
        region: String,
        /// What the guard tried and why it stopped.
        message: String,
    },
}

impl fmt::Display for DesyncError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DesyncError::UnknownCell { name } => write!(f, "unknown library cell `{name}`"),
            DesyncError::Clock { message } => write!(f, "clock identification failed: {message}"),
            DesyncError::Library(e) => write!(f, "library preparation failed: {e}"),
            DesyncError::Netlist(e) => write!(f, "netlist operation failed: {e}"),
            DesyncError::Sta(e) => write!(f, "timing analysis failed: {e}"),
            DesyncError::NoRule { cell } => {
                write!(f, "no gatefile replacement rule for flip-flop `{cell}`")
            }
            DesyncError::Pipeline { message } => write!(f, "pipeline error: {message}"),
            DesyncError::Budget {
                pass,
                resource,
                limit,
                actual,
            } => write!(
                f,
                "pass `{pass}` exceeded the {resource} budget: {actual} > {limit}"
            ),
            DesyncError::Deadline { pass, limit_ms } => {
                write!(f, "pass `{pass}` overran its {limit_ms} ms deadline")
            }
            DesyncError::Panic { pass, message } => {
                write!(f, "pass `{pass}` panicked: {message}")
            }
            DesyncError::Liveness { region, message } => {
                write!(f, "liveness guard failed for region `{region}`: {message}")
            }
        }
    }
}

impl Error for DesyncError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            DesyncError::Library(e) => Some(e),
            DesyncError::Netlist(e) => Some(e),
            DesyncError::Sta(e) => Some(e),
            _ => None,
        }
    }
}

impl From<drd_liberty::LibraryError> for DesyncError {
    fn from(e: drd_liberty::LibraryError) -> Self {
        DesyncError::Library(e)
    }
}

impl From<drd_netlist::NetlistError> for DesyncError {
    fn from(e: drd_netlist::NetlistError) -> Self {
        DesyncError::Netlist(e)
    }
}

impl From<drd_sta::StaError> for DesyncError {
    fn from(e: drd_sta::StaError) -> Self {
        DesyncError::Sta(e)
    }
}

/// Why a region was left synchronous instead of being desynchronized.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DegradeReason {
    /// A sequential cell's flip-flop flavour has no gatefile replacement
    /// rule (unsupported composite FF).
    UnsupportedFf {
        /// The flip-flop kind lacking a rule.
        kind: String,
    },
    /// A sequential cell's kind is missing from the library entirely.
    UnknownCell {
        /// The missing library cell name.
        kind: String,
    },
    /// Delay matching failed for the region's combinational cloud.
    DelayMatching {
        /// Explanation from the STA layer.
        message: String,
    },
    /// The region's handshake controller could not be synthesized.
    ControllerSynthesis {
        /// Explanation.
        message: String,
    },
    /// The region is a loopback source whose request pulse would be
    /// swallowed downstream, and neither deepening the successors'
    /// delay elements nor latching the loopback produced a live
    /// network.
    Liveness {
        /// Explanation from the liveness guard.
        message: String,
    },
}

impl fmt::Display for DegradeReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DegradeReason::UnsupportedFf { kind } => {
                write!(f, "unsupported flip-flop `{kind}` (no gatefile rule)")
            }
            DegradeReason::UnknownCell { kind } => {
                write!(f, "unknown library cell `{kind}`")
            }
            DegradeReason::DelayMatching { message } => {
                write!(f, "delay matching failed: {message}")
            }
            DegradeReason::ControllerSynthesis { message } => {
                write!(f, "controller synthesis failed: {message}")
            }
            DegradeReason::Liveness { message } => {
                write!(f, "liveness repair exhausted: {message}")
            }
        }
    }
}

/// A region the flow left synchronous: its flip-flops keep the original
/// clock, no controller is inserted for it, and the SDC declares the
/// boundary as a clock-domain crossing. Recorded in the flow report (and
/// trace) so a partially desynchronized result is never silent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Degradation {
    /// The region that stayed synchronous.
    pub region: String,
    /// Why it could not be desynchronized.
    pub reason: DegradeReason,
    /// The sequential cells left clocked.
    pub cells: Vec<String>,
}

impl fmt::Display for Degradation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "region `{}` left synchronous: {} ({} cell{})",
            self.region,
            self.reason,
            self.cells.len(),
            if self.cells.len() == 1 { "" } else { "s" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = DesyncError::NoRule { cell: "DFFZ".into() };
        assert!(e.to_string().contains("DFFZ"));
        let e: DesyncError = drd_liberty::LibraryError::new("boom").into();
        assert!(e.source().is_some());
    }

    #[test]
    fn guard_errors_name_pass_and_limits() {
        let e = DesyncError::Budget {
            pass: "ffsub",
            resource: "cells",
            limit: 10,
            actual: 42,
        };
        assert_eq!(e.to_string(), "pass `ffsub` exceeded the cells budget: 42 > 10");
        let e = DesyncError::Deadline { pass: "ddg", limit_ms: 5 };
        assert!(e.to_string().contains("5 ms deadline"));
        let e = DesyncError::Panic {
            pass: "sdc",
            message: "boom".into(),
        };
        assert!(e.to_string().contains("panicked: boom"));
    }

    #[test]
    fn degradation_display_lists_region_and_reason() {
        let d = Degradation {
            region: "g2".into(),
            reason: DegradeReason::UnsupportedFf { kind: "DFFQX9".into() },
            cells: vec!["r0".into()],
        };
        let text = d.to_string();
        assert!(text.contains("`g2`"), "{text}");
        assert!(text.contains("DFFQX9"), "{text}");
        assert!(text.contains("1 cell)"), "{text}");
    }
}
