//! A minimal property-testing harness: seeded generation, seed reporting
//! and greedy input shrinking.
//!
//! ```
//! use drd_check::{prop, Rng};
//!
//! prop(
//!     64,
//!     |rng: &mut Rng| {
//!         let len = rng.range(0, 16);
//!         rng.bytes(len)
//!     },
//!     |bytes: &Vec<u8>| {
//!         if bytes.iter().all(|&b| usize::from(b) <= bytes.len() * 300) {
//!             Ok(())
//!         } else {
//!             Err("impossible".into())
//!         }
//!     },
//! );
//! ```
//!
//! On failure the harness greedily shrinks the failing input through
//! [`Shrink::shrink`] candidates (a candidate is accepted whenever it still
//! fails the property) and panics with the run seed, the case number, the
//! minimal input and both failure messages. Environment overrides:
//!
//! * `DRD_PROP_SEED` — replay a whole run under a different base seed,
//! * `DRD_PROP_CASES` — override the number of cases,
//! * `DRD_PROP_CASE_SEED` — run exactly one case with the given seed
//!   (printed by a failure report; fastest way to replay a failure).

use crate::rng::Rng;

/// Types that can propose structurally smaller candidates of themselves.
///
/// `shrink` returns candidate replacements, most aggressive first; the
/// harness keeps any candidate that still fails the property and repeats
/// until no candidate fails (greedy descent).
pub trait Shrink: Sized {
    /// Candidate smaller inputs. An empty vector means fully shrunk.
    fn shrink(&self) -> Vec<Self> {
        Vec::new()
    }
}

macro_rules! impl_shrink_uint {
    ($($t:ty),*) => {$(
        impl Shrink for $t {
            fn shrink(&self) -> Vec<Self> {
                let mut out = Vec::new();
                if *self != 0 {
                    out.push(0);
                    if *self > 1 {
                        out.push(*self / 2);
                    }
                    out.push(*self - 1);
                }
                out
            }
        }
    )*};
}
impl_shrink_uint!(u8, u16, u32, u64, usize);

impl Shrink for bool {
    fn shrink(&self) -> Vec<Self> {
        if *self {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

impl<T: Clone + Shrink> Shrink for Vec<T> {
    fn shrink(&self) -> Vec<Self> {
        let n = self.len();
        let mut out = Vec::new();
        if n == 0 {
            return out;
        }
        out.push(Vec::new());
        if n > 1 {
            out.push(self[..n / 2].to_vec());
            out.push(self[n / 2..].to_vec());
        }
        if n <= 16 {
            for i in 0..n {
                let mut v = self.clone();
                v.remove(i);
                out.push(v);
            }
            for i in 0..n {
                for cand in self[i].shrink().into_iter().take(2) {
                    let mut v = self.clone();
                    v[i] = cand;
                    out.push(v);
                }
            }
        }
        out
    }
}

macro_rules! impl_shrink_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Clone + Shrink),+> Shrink for ($($name,)+) {
            fn shrink(&self) -> Vec<Self> {
                let mut out = Vec::new();
                $(
                    for cand in self.$idx.shrink() {
                        let mut t = self.clone();
                        t.$idx = cand;
                        out.push(t);
                    }
                )+
                out
            }
        }
    };
}
impl_shrink_tuple!(A: 0);
impl_shrink_tuple!(A: 0, B: 1);
impl_shrink_tuple!(A: 0, B: 1, C: 2);
impl_shrink_tuple!(A: 0, B: 1, C: 2, D: 3);

/// Harness configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of random cases to run.
    pub cases: u32,
    /// Base seed for the run; per-case seeds derive from it.
    pub seed: u64,
    /// Upper bound on shrink *attempts* (candidate evaluations).
    pub max_shrink_steps: u32,
}

impl Config {
    /// A config running `cases` cases under the default seed.
    pub fn new(cases: u32) -> Config {
        Config {
            cases,
            seed: 0xD5C0_DE20_07DA_C007,
            max_shrink_steps: 400,
        }
    }

    /// Overrides the base seed.
    pub fn seed(mut self, seed: u64) -> Config {
        self.seed = seed;
        self
    }
}

fn env_u64(name: &str) -> Option<u64> {
    let raw = std::env::var(name).ok()?;
    let raw = raw.trim();
    let parsed = if let Some(hex) = raw.strip_prefix("0x") {
        u64::from_str_radix(hex, 16)
    } else {
        raw.parse()
    };
    match parsed {
        Ok(v) => Some(v),
        Err(_) => panic!("{name}={raw} is not a valid integer"),
    }
}

/// Runs `check` over `cases` inputs drawn from `strategy`.
///
/// # Panics
/// Panics with a seed-reporting, shrunk failure report if any case fails.
pub fn prop<T, G, C>(cases: u32, strategy: G, check: C)
where
    T: Clone + std::fmt::Debug + Shrink,
    G: FnMut(&mut Rng) -> T,
    C: FnMut(&T) -> Result<(), String>,
{
    prop_with(Config::new(cases), strategy, check);
}

/// [`prop`] with an explicit [`Config`].
///
/// # Panics
/// Panics with a seed-reporting, shrunk failure report if any case fails.
pub fn prop_with<T, G, C>(config: Config, mut strategy: G, mut check: C)
where
    T: Clone + std::fmt::Debug + Shrink,
    G: FnMut(&mut Rng) -> T,
    C: FnMut(&T) -> Result<(), String>,
{
    let cases = env_u64("DRD_PROP_CASES").map_or(config.cases, |v| v as u32);
    let base_seed = env_u64("DRD_PROP_SEED").unwrap_or(config.seed);
    let single = env_u64("DRD_PROP_CASE_SEED");

    let mut seed_stream = Rng::new(base_seed);
    for case in 0..cases {
        let case_seed = match single {
            Some(s) => s,
            None => seed_stream.next_u64(),
        };
        let input = strategy(&mut Rng::new(case_seed));
        if let Err(original) = check(&input) {
            let (min, min_err, steps) =
                shrink_failure(input.clone(), original.clone(), &mut check, config.max_shrink_steps);
            panic!(
                "property failed at case {case}/{cases} \
                 (base seed {base_seed:#018x}, case seed {case_seed:#018x})\n\
                 replay just this case with: DRD_PROP_CASE_SEED={case_seed:#x}\n\
                 original input: {input:?}\n\
                 original failure: {original}\n\
                 shrunk input ({steps} shrink attempts): {min:?}\n\
                 shrunk failure: {min_err}"
            );
        }
        if single.is_some() {
            break;
        }
    }
}

/// [`prop_with`] on the work-stealing parallel runner: cases are checked
/// concurrently, yet the failure report is identical to the serial
/// harness — per-case seeds derive from the base seed by case *index*,
/// the **lowest failing case index** is reported (not whichever thread
/// lost the race), and shrinking runs serially on that case. The same
/// `DRD_PROP_SEED` / `DRD_PROP_CASES` / `DRD_PROP_CASE_SEED` overrides
/// apply, so any parallel failure replays with one single-threaded
/// command.
///
/// # Panics
/// Panics with the seed-reporting, shrunk failure report if any case
/// fails.
pub fn prop_par_with<T, G, C>(config: Config, strategy: G, check: C)
where
    T: Clone + std::fmt::Debug + Shrink + Send,
    G: Fn(&mut Rng) -> T + Sync,
    C: Fn(&T) -> Result<(), String> + Sync,
{
    let cases = env_u64("DRD_PROP_CASES").map_or(config.cases, |v| v as u32);
    let base_seed = env_u64("DRD_PROP_SEED").unwrap_or(config.seed);
    let single = env_u64("DRD_PROP_CASE_SEED");

    let mut seed_stream = Rng::new(base_seed);
    let case_seeds: Vec<u64> = match single {
        Some(s) => vec![s],
        None => (0..cases).map(|_| seed_stream.next_u64()).collect(),
    };

    let outcomes: Vec<Option<(T, String)>> =
        crate::runner::run_parallel(case_seeds.len(), |case| {
            let input = strategy(&mut Rng::new(case_seeds[case]));
            match check(&input) {
                Ok(()) => None,
                Err(e) => Some((input, e)),
            }
        });

    if let Some((case, Some((input, original)))) = outcomes
        .into_iter()
        .enumerate()
        .find(|(_, o)| o.is_some())
    {
        let case_seed = case_seeds[case];
        let mut recheck = |t: &T| check(t);
        let (min, min_err, steps) = shrink_failure(
            input.clone(),
            original.clone(),
            &mut recheck,
            config.max_shrink_steps,
        );
        panic!(
            "property failed at case {case}/{cases} \
             (base seed {base_seed:#018x}, case seed {case_seed:#018x})\n\
             replay just this case with: DRD_PROP_CASE_SEED={case_seed:#x}\n\
             original input: {input:?}\n\
             original failure: {original}\n\
             shrunk input ({steps} shrink attempts): {min:?}\n\
             shrunk failure: {min_err}"
        );
    }
}

fn shrink_failure<T, C>(mut current: T, mut err: String, check: &mut C, max_steps: u32) -> (T, String, u32)
where
    T: Clone + std::fmt::Debug + Shrink,
    C: FnMut(&T) -> Result<(), String>,
{
    let mut steps = 0u32;
    'outer: while steps < max_steps {
        for candidate in current.shrink() {
            if steps >= max_steps {
                break 'outer;
            }
            steps += 1;
            if let Err(e) = check(&candidate) {
                current = candidate;
                err = e;
                continue 'outer;
            }
        }
        break;
    }
    (current, err, steps)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let mut ran = 0u32;
        prop(
            32,
            |rng: &mut Rng| rng.range(0, 100),
            |_| {
                ran += 1;
                Ok(())
            },
        );
        assert_eq!(ran, 32);
    }

    #[test]
    fn failing_property_panics_with_seed_report() {
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            prop(
                64,
                |rng: &mut Rng| rng.range(0, 1000),
                |&v: &usize| if v < 500 { Ok(()) } else { Err(format!("{v} too big")) },
            );
        }));
        let msg = *caught.expect_err("must fail").downcast::<String>().unwrap();
        assert!(msg.contains("case seed"), "{msg}");
        assert!(msg.contains("DRD_PROP_CASE_SEED"), "{msg}");
    }

    #[test]
    fn shrinking_finds_a_minimal_vector() {
        // Property: the sum of the bytes stays below 50. The minimal
        // counterexample is a single byte of value 50.
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            prop(
                200,
                |rng: &mut Rng| {
                    let len = rng.range(0, 12);
                    rng.bytes(len)
                },
                |v: &Vec<u8>| {
                    let sum: u32 = v.iter().map(|&b| u32::from(b)).sum();
                    if sum < 50 {
                        Ok(())
                    } else {
                        Err(format!("sum {sum}"))
                    }
                },
            );
        }));
        let msg = *caught.expect_err("must fail").downcast::<String>().unwrap();
        // The shrunk counterexample is tiny: a one-element vector.
        let shrunk = msg.split("shrunk input").nth(1).unwrap();
        let open = shrunk.find('[').unwrap();
        let close = shrunk.find(']').unwrap();
        let body = &shrunk[open + 1..close];
        assert!(
            body.split(',').count() <= 2,
            "shrunk to at most two bytes: {msg}"
        );
    }

    #[test]
    fn shrink_candidates_are_smaller() {
        let v = vec![3u8, 200, 7];
        for cand in v.shrink() {
            let size: usize = cand.iter().map(|&b| 1 + b as usize).sum();
            let orig: usize = v.iter().map(|&b| 1 + b as usize).sum();
            assert!(size < orig, "{cand:?} not smaller than {v:?}");
        }
        assert!(0u32.shrink().is_empty());
        assert!(false.shrink().is_empty());
        assert_eq!(true.shrink(), vec![false]);
    }

    /// The parallel harness reports byte-for-byte the same failure as the
    /// serial one: same case index, same case seed, same shrunk input.
    #[test]
    fn parallel_failure_report_matches_serial() {
        let strategy = |rng: &mut Rng| rng.range(0, 1000);
        let check = |&v: &usize| {
            if v < 500 {
                Ok(())
            } else {
                Err(format!("{v} too big"))
            }
        };
        let serial = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            prop(64, strategy, check);
        }));
        let parallel = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            prop_par_with(Config::new(64), strategy, check);
        }));
        let serial_msg = *serial.expect_err("fails").downcast::<String>().unwrap();
        let parallel_msg = *parallel.expect_err("fails").downcast::<String>().unwrap();
        assert_eq!(serial_msg, parallel_msg);
    }

    #[test]
    fn parallel_prop_passes_clean_properties() {
        prop_par_with(
            Config::new(128),
            |rng: &mut Rng| rng.range(0, 100),
            |&v: &usize| if v < 100 { Ok(()) } else { Err("impossible".into()) },
        );
    }

    #[test]
    fn tuple_shrink_covers_all_slots() {
        let t = (2u8, vec![1u8], true);
        let cands = t.shrink();
        assert!(cands.iter().any(|c| c.0 == 0));
        assert!(cands.iter().any(|c| c.1.is_empty()));
        assert!(cands.iter().any(|c| !c.2));
    }
}
