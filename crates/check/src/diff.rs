//! Differential flow-equivalence fuzzing: run a random synchronous
//! netlist through the full desynchronization flow and co-simulate both
//! versions.
//!
//! The check is the paper's headline property (§2.1): "each individual
//! sequential element in the desynchronized circuit possesses the exact
//! same data sequence as its synchronous counterpart". The synchronous
//! reference is clocked for a fixed number of cycles; the desynchronized
//! circuit free-runs after its handshake reset; the per-element capture
//! logs must agree on their common prefix ([`compare_capture_logs`]).
//!
//! On top of that, [`verify_result`] asserts the structural invariants of
//! a correct desynchronization — invariants sharpened by mutation testing
//! (every check below kills a class of injected fault the behavioural
//! oracle alone could miss):
//!
//! * one master + one slave latch per flip-flop, no flip-flop left behind;
//! * the flat `C2X1` population matches the reported join-tree size
//!   (kills dropped/duplicated C-elements that happen to be sequentially
//!   benign on a given workload);
//! * one delay element per controlled region (kills bypassed matched
//!   delays that only misbehave at real silicon timings);
//! * every master latch enable resolves to a `*_gm` net and every slave
//!   enable to a `*_gs` net (kills swapped-phase and stuck-enable faults
//!   structurally, independent of data patterns);
//! * every controller handshake pin is a real net (kills tied-off
//!   req/ack wires);
//! * every scan flip-flop's mux still selects the original scan-in under
//!   the original scan-enable and feeds the master latch (kills broken
//!   scan stitching — behaviourally invisible whenever the workload
//!   leaves `SE` at 0, §4.3);
//! * the simulated handshake cycle time of every region respects the STA
//!   matched-delay floor, and a zero-variability Monte-Carlo chip
//!   reproduces the nominal simulation bit for bit
//!   ([`crate::handshake`]);
//! * the netlist carries the liveness guard's reported repairs — delay
//!   elements at their recorded depths, request latches where recorded —
//!   and no unrepaired pulse-swallowing hazard ships
//!   ([`crate::liveness`]);
//! * the emitted SDC carries loop-break, `size_only` and matched
//!   `set_min_delay` lines for every controller and delay element.
//!
//! The split between [`run_differential`] (flow + verification) and
//! [`verify_result`] (verification of a *given* result) is what the
//! mutation harness in [`crate::mutate`] builds on: it corrupts a clean
//! [`DesyncResult`] and asserts `verify_result` now fails.

use drd_core::{DesyncOptions, DesyncResult, Desynchronizer};
use drd_liberty::{Library, Lv};
use drd_netlist::{Conn, Design};
use drd_sim::{compare_capture_logs, FlowCheck, SimOptions, Simulator};

use crate::netgen::{FfKind, NetRecipe};

/// Co-simulation windows for the differential check.
#[derive(Debug, Clone)]
pub struct DiffConfig {
    /// Clocked cycles of the synchronous reference.
    pub sync_cycles: usize,
    /// Reference clock period (ns).
    pub clock_period_ns: f64,
    /// Free-running time of the desynchronized circuit after reset (ns).
    pub dut_run_ns: f64,
    /// Minimum slave-latch captures every flip-flop must reach (guards
    /// against a silently stalled handshake network "passing" on an
    /// empty capture prefix).
    pub min_captures: usize,
}

impl Default for DiffConfig {
    fn default() -> DiffConfig {
        DiffConfig {
            sync_cycles: 10,
            clock_period_ns: 2.0,
            dut_run_ns: 240.0,
            min_captures: 3,
        }
    }
}

/// Statistics of one successful differential run.
#[derive(Debug, Clone)]
pub struct DiffStats {
    /// Flip-flops compared.
    pub ffs: usize,
    /// Total capture events compared across all elements.
    pub events: usize,
    /// Controller instances found in the desynchronized netlist.
    pub controllers: usize,
}

fn fail(recipe: &NetRecipe, what: &str) -> String {
    format!("{what}\n--- failing synchronous netlist ---\n{}", recipe.verilog())
}

/// Simulates the clocked reference and checks every flip-flop captured
/// exactly `sync_cycles` times.
fn simulate_reference(
    recipe: &NetRecipe,
    lib: &Library,
    config: &DiffConfig,
) -> Result<Simulator, String> {
    let module = recipe
        .build()
        .map_err(|e| format!("recipe does not build: {e}"))?;
    let mut sync_design = Design::new();
    sync_design.insert(module);
    let mut reference = Simulator::new(&sync_design, lib, SimOptions::default())
        .map_err(|e| fail(recipe, &format!("sync simulator: {e}")))?;
    for i in 0..recipe.inputs.max(1) {
        let v = Lv::from_bool((recipe.input_bits >> i) & 1 == 1);
        reference
            .poke(&recipe.input_name(i), v)
            .map_err(|e| fail(recipe, &format!("sync poke: {e}")))?;
    }
    reference
        .schedule_clock("clk", config.clock_period_ns, config.clock_period_ns / 2.0, config.sync_cycles)
        .map_err(|e| fail(recipe, &format!("sync clock: {e}")))?;
    reference.run_for(config.clock_period_ns * (config.sync_cycles + 2) as f64);
    for ff in &recipe.ff_names() {
        if reference.captures().capture_count(ff) != config.sync_cycles {
            return Err(fail(
                recipe,
                &format!(
                    "sync reference: {ff} captured {} times, expected {}",
                    reference.captures().capture_count(ff),
                    config.sync_cycles
                ),
            ));
        }
    }
    Ok(reference)
}

/// Runs one recipe through sync simulation, desynchronization, async
/// co-simulation, capture-log comparison and SDC linting.
///
/// # Errors
/// A human-readable failure report (including the netlist as Verilog)
/// when any stage of the differential check fails.
pub fn run_differential(
    recipe: &NetRecipe,
    lib: &Library,
    config: &DiffConfig,
) -> Result<DiffStats, String> {
    let module = recipe
        .build()
        .map_err(|e| format!("recipe does not build: {e}"))?;
    let tool = Desynchronizer::new(lib).map_err(|e| format!("tool: {e}"))?;
    let result = tool
        .run(&module, &DesyncOptions::default())
        .map_err(|e| fail(recipe, &format!("desynchronization failed: {e}")))?;
    verify_result(recipe, lib, config, &result)
}

/// Verifies a desynchronization *result* against its source recipe: the
/// full oracle stack (structure, SDC, behavioural co-simulation) on an
/// already-produced [`DesyncResult`]. This is the entry point the
/// mutation harness attacks — a corrupted result must make this fail.
///
/// # Errors
/// A human-readable failure report naming the first violated oracle.
pub fn verify_result(
    recipe: &NetRecipe,
    lib: &Library,
    config: &DiffConfig,
    result: &DesyncResult,
) -> Result<DiffStats, String> {
    let ff_names = recipe.ff_names();
    if result.report.substituted_ffs != ff_names.len() {
        return Err(fail(
            recipe,
            &format!(
                "substituted {} flip-flops, netlist has {}",
                result.report.substituted_ffs,
                ff_names.len()
            ),
        ));
    }
    let controllers = check_structure(recipe, result, ff_names.len())?;
    check_scan_chain(recipe, lib, result)?;
    lint_sdc(recipe, result)?;

    // Handshake-timing oracle (DESIGN.md §3f): the event-driven
    // control-network simulation must respect static timing.
    let spec = crate::handshake::handshake_spec(&result.report, lib)
        .map_err(|e| fail(recipe, &format!("handshake spec: {e}")))?;
    crate::handshake::verify_handshake_timing(&spec, lib)
        .map_err(|e| fail(recipe, &format!("handshake timing oracle: {e}")))?;

    // Liveness oracle (DESIGN.md §3i): the netlist must carry the
    // repairs the guard reported, and the shipped delay-element depths
    // must leave no pulse-swallowing hazard behind.
    crate::liveness::verify_liveness(&result.report, &result.design, lib)
        .map_err(|e| fail(recipe, &format!("liveness oracle: {e}")))?;

    let reference = simulate_reference(recipe, lib, config)?;

    // Desynchronized DUT: same constants, handshake reset, free run.
    let mut dut = Simulator::new(&result.design, lib, SimOptions::default())
        .map_err(|e| fail(recipe, &format!("dut simulator: {e}")))?;
    for i in 0..recipe.inputs.max(1) {
        let v = Lv::from_bool((recipe.input_bits >> i) & 1 == 1);
        dut.poke(&recipe.input_name(i), v)
            .map_err(|e| fail(recipe, &format!("dut poke: {e}")))?;
    }
    dut.poke("drd_rst", Lv::Zero)
        .map_err(|e| fail(recipe, &format!("dut reset: {e}")))?;
    dut.run_for(2.0);
    dut.poke("drd_rst", Lv::One)
        .map_err(|e| fail(recipe, &format!("dut reset release: {e}")))?;
    dut.run_for(config.dut_run_ns);

    for ff in &ff_names {
        let got = dut.captures().capture_count(&format!("{ff}_ls"));
        if got < config.min_captures {
            return Err(fail(
                recipe,
                &format!(
                    "desynchronized circuit stalled: slave {ff}_ls captured only {got} \
                     times in {} ns (minimum {})",
                    config.dut_run_ns, config.min_captures
                ),
            ));
        }
    }

    let check = compare_capture_logs(reference.captures(), dut.captures(), |n| format!("{n}_ls"));
    match check {
        FlowCheck::Equivalent { elements, events } => Ok(DiffStats {
            ffs: elements,
            events,
            controllers,
        }),
        other => Err(fail(recipe, &format!("flow equivalence violated: {other:?}"))),
    }
}

/// Structural invariants of the substitution and control network.
fn check_structure(recipe: &NetRecipe, result: &DesyncResult, ff_count: usize) -> Result<usize, String> {
    let flat = drd_netlist::flatten(&result.design, result.design.top())
        .map_err(|e| fail(recipe, &format!("flatten: {e}")))?;
    let masters = flat.cells().filter(|(_, c)| c.name.ends_with("_lm")).count();
    let slaves = flat.cells().filter(|(_, c)| c.name.ends_with("_ls")).count();
    if masters != ff_count || slaves != ff_count {
        return Err(fail(
            recipe,
            &format!("expected {ff_count} master/slave latch pairs, found {masters}/{slaves}"),
        ));
    }
    let dffs = flat
        .cells()
        .filter(|(_, c)| c.kind_name().starts_with("DFF") || c.kind_name().starts_with("SDFF"))
        .count();
    if dffs != 0 {
        return Err(fail(recipe, &format!("{dffs} flip-flops survived substitution")));
    }

    // Join-tree census: dropped or duplicated C-elements can be
    // sequentially benign on constant inputs, so count them exactly (the
    // controllers' internal C-elements are C2RX1/C2SX1, never C2X1).
    let c2 = flat.cells().filter(|(_, c)| c.kind_name() == "C2X1").count();
    if c2 != result.report.celements {
        return Err(fail(
            recipe,
            &format!(
                "join trees hold {c2} C2X1 cells, report says {}",
                result.report.celements
            ),
        ));
    }

    // One matched delay element per controlled region — a bypassed delay
    // only misbehaves at real silicon timings, so enforce it structurally.
    let top = result.design.module(result.design.top());
    let delems = top
        .cells()
        .filter(|(_, c)| c.kind_name().starts_with("drd_delem"))
        .count();
    let controlled = result
        .report
        .regions
        .iter()
        .filter(|r| r.ffs > 0 && r.delem_levels > 0)
        .count();
    if delems != controlled {
        return Err(fail(
            recipe,
            &format!("{delems} delay elements for {controlled} controlled region(s)"),
        ));
    }

    // Latch-enable phase lint: master enables come from a `*_gm` net,
    // slave enables from `*_gs` (buffer-tree legs keep the substring).
    // Kills swapped master/slave phases and enables tied to constants.
    for (_, cell) in flat.cells() {
        let want = if cell.name.ends_with("_lm") {
            "_gm"
        } else if cell.name.ends_with("_ls") {
            "_gs"
        } else {
            continue;
        };
        let g = cell.pin("G").unwrap_or(Conn::Open);
        let ok = g
            .net()
            .is_some_and(|n| flat.net(n).name.contains(want));
        if !ok {
            return Err(fail(
                recipe,
                &format!("latch {} enable is not a {want} net (found {g:?})", cell.name),
            ));
        }
    }

    // Handshake pins must be real nets — a request or acknowledge tied to
    // a constant deadlocks or free-runs depending on polarity, but either
    // way it is no longer a handshake.
    for (_, cell) in top.cells() {
        let kind = cell.kind_name();
        if kind != "drd_ctrl_master" && kind != "drd_ctrl_slave" {
            continue;
        }
        for (i, &(_, conn)) in cell.pins().iter().enumerate() {
            if conn.net().is_none() {
                return Err(fail(
                    recipe,
                    &format!(
                        "controller {} pin {} tied off ({conn:?})",
                        cell.name,
                        cell.pin_name(i)
                    ),
                ));
            }
        }
    }

    Ok(flat
        .cells()
        .filter(|(_, c)| c.name.ends_with("/u_a"))
        .count())
}

/// Scan-chain preservation through latch substitution (§4.3): every scan
/// flip-flop's `_smx` mux must still select the *original* scan-in net
/// under the *original* scan-enable net and feed that flip-flop's master
/// latch. The comparison nets come from a copy of the input netlist run
/// through the same logic cleaning the flow applies before substitution
/// (`drd_core::region::clean_for_grouping`), so buffered scan hookups
/// resolve to the same net names on both sides.
///
/// This is a structural oracle on purpose: rewired scan stitching is
/// behaviourally invisible whenever the workload holds `SE` at 0, which
/// is exactly what mission-mode co-simulation does.
fn check_scan_chain(
    recipe: &NetRecipe,
    lib: &Library,
    result: &DesyncResult,
) -> Result<(), String> {
    let scan_ffs: Vec<String> = recipe
        .stages
        .iter()
        .enumerate()
        .flat_map(|(s, stage)| {
            stage
                .ffs
                .iter()
                .enumerate()
                .filter(|(_, f)| f.kind == FfKind::Scan)
                .map(move |(l, _)| format!("r{s}_{l}"))
        })
        .collect();
    if scan_ffs.is_empty() {
        return Ok(());
    }

    let mut cleaned = recipe
        .build()
        .map_err(|e| format!("recipe does not build: {e}"))?;
    drd_core::region::clean_for_grouping(&mut cleaned, lib);
    let top = result.design.module(result.design.top());

    // Net name of `pin` on cell `name` in `module`.
    let pin_net = |module: &drd_netlist::Module, name: &str, pin: &str| -> Option<String> {
        let cell = module.find_cell(name)?;
        let net = module.cell(cell).pin(pin)?.net()?;
        Some(module.net(net).name.to_owned())
    };

    for ff in &scan_ffs {
        let si = pin_net(&cleaned, ff, "SI")
            .ok_or_else(|| fail(recipe, &format!("cleaned netlist lost {ff}'s SI")))?;
        let se = pin_net(&cleaned, ff, "SE")
            .ok_or_else(|| fail(recipe, &format!("cleaned netlist lost {ff}'s SE")))?;
        let mux_name = format!("{ff}_smx");
        let Some(mux) = top.find_cell(&mux_name) else {
            return Err(fail(recipe, &format!("scan mux {mux_name} is missing")));
        };
        if top.cell(mux).kind_name() != "MUX2X1" {
            return Err(fail(
                recipe,
                &format!("{mux_name} is a {}, not MUX2X1", top.cell(mux).kind_name()),
            ));
        }
        for (pin, want) in [("B", &si), ("S", &se)] {
            let got = top
                .cell(mux)
                .pin(pin)
                .and_then(|c| c.net())
                .map(|n| top.net(n).name.to_owned());
            if got.as_ref() != Some(want) {
                return Err(fail(
                    recipe,
                    &format!("{mux_name} pin {pin} is {got:?}, scan chain expects `{want}`"),
                ));
            }
        }
        // The mux output must be what the master latch samples.
        let mux_z = top
            .cell(mux)
            .pin("Z")
            .and_then(|c| c.net())
            .map(|n| top.net(n).name.to_owned())
            .ok_or_else(|| fail(recipe, &format!("{mux_name} output is unconnected")))?;
        let lm_d = pin_net(top, &format!("{ff}_lm"), "D");
        if lm_d.as_ref() != Some(&mux_z) {
            return Err(fail(
                recipe,
                &format!("{ff}_lm samples {lm_d:?}, scan mux drives `{mux_z}`"),
            ));
        }
    }
    Ok(())
}

/// SDC well-formedness: both derived clocks, loop-breaking disables and
/// `size_only` for every controller instance, a matched `set_min_delay`
/// plus `dont_touch` for every delay element, balanced braces.
fn lint_sdc(recipe: &NetRecipe, result: &DesyncResult) -> Result<(), String> {
    let sdc = &result.sdc;
    for needle in ["create_clock", "ClkM", "ClkS"] {
        if !sdc.contains(needle) {
            return Err(fail(recipe, &format!("SDC lacks {needle}")));
        }
    }
    for line in sdc.lines() {
        let open = line.matches(['{', '[']).count();
        let close = line.matches(['}', ']']).count();
        if open != close {
            return Err(fail(recipe, &format!("unbalanced SDC line: {line}")));
        }
    }
    let flat = drd_netlist::flatten(&result.design, result.design.top())
        .map_err(|e| fail(recipe, &format!("flatten: {e}")))?;
    for (_, cell) in flat.cells() {
        if let Some(inst) = cell.name.strip_suffix("/u_a") {
            let disable = format!("{inst}/u_nro/A");
            let size_only = format!("set_size_only [get_cells {{{inst}/*}}]");
            if !sdc.contains(&disable) {
                return Err(fail(recipe, &format!("SDC misses loop break for {inst}")));
            }
            if !sdc.contains(&size_only) {
                return Err(fail(recipe, &format!("SDC misses size_only for {inst}")));
            }
        }
    }
    // Matched-delay floor: every delay element matching a region with a
    // positive critical delay needs its `set_min_delay` through in1→out1
    // and a `dont_touch` — without them a timing tool may legally shrink
    // the matched path below the region's critical delay (§3.1.4).
    // Zero-delay regions (e.g. the input-register region `g0`) carry a
    // minimum one-level element with no floor to preserve, and degraded
    // regions (clock fallback, `delem_levels == 0`) carry none at all.
    for r in &result.report.regions {
        if r.ffs == 0 || r.delem_levels == 0 || r.critical_delay_ns <= 0.0 {
            continue;
        }
        let inst = format!("drd_{}_delem", r.name);
        let min_delay = format!("-from [get_pins {{{inst}/in1}}] -to [get_pins {{{inst}/out1}}]");
        let dont_touch = format!("set_dont_touch [get_cells {{{inst}}}]");
        let has_min = sdc
            .lines()
            .any(|l| l.starts_with("set_min_delay") && l.contains(&min_delay));
        if !has_min {
            return Err(fail(recipe, &format!("SDC misses set_min_delay for {inst}")));
        }
        if !sdc.contains(&dont_touch) {
            return Err(fail(recipe, &format!("SDC misses dont_touch for {inst}")));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netgen::{NetGenParams, NetRecipe};
    use crate::rng::Rng;
    use drd_liberty::vlib90;

    #[test]
    fn a_handful_of_random_netlists_are_flow_equivalent() {
        let lib = vlib90::high_speed();
        let mut rng = Rng::new(0xD1FF);
        let params = NetGenParams::default();
        for _ in 0..4 {
            let recipe = NetRecipe::sample(&mut rng, &params);
            let stats = run_differential(&recipe, &lib, &DiffConfig::default())
                .expect("flow equivalence holds");
            assert!(stats.events > 0);
            assert!(stats.controllers > 0);
        }
    }

    #[test]
    fn runner_is_deterministic() {
        let lib = vlib90::high_speed();
        let recipe = NetRecipe::sample(&mut Rng::new(0xCAFE), &NetGenParams::default());
        let a = run_differential(&recipe, &lib, &DiffConfig::default()).unwrap();
        let b = run_differential(&recipe, &lib, &DiffConfig::default()).unwrap();
        assert_eq!(a.events, b.events);
        assert_eq!(a.ffs, b.ffs);
    }

    #[test]
    fn verify_result_accepts_a_clean_flow() {
        let lib = vlib90::high_speed();
        let recipe = NetRecipe::sample(&mut Rng::new(0xFACE), &NetGenParams::default());
        let module = recipe.build().unwrap();
        let tool = Desynchronizer::new(&lib).unwrap();
        let result = tool.run(&module, &DesyncOptions::default()).unwrap();
        let stats = verify_result(&recipe, &lib, &DiffConfig::default(), &result)
            .expect("clean result verifies");
        assert_eq!(stats.ffs, recipe.ff_names().len());
    }
}
