//! Differential flow-equivalence fuzzing: run a random synchronous
//! netlist through the full desynchronization flow and co-simulate both
//! versions.
//!
//! The check is the paper's headline property (§2.1): "each individual
//! sequential element in the desynchronized circuit possesses the exact
//! same data sequence as its synchronous counterpart". The synchronous
//! reference is clocked for a fixed number of cycles; the desynchronized
//! circuit free-runs after its handshake reset; the per-element capture
//! logs must agree on their common prefix ([`compare_capture_logs`]).
//! On top of that the runner asserts the structural invariants of the
//! substitution (one master + one slave latch per flip-flop, no flip-flop
//! left behind) and the well-formedness of the emitted SDC.

use drd_core::{DesyncOptions, DesyncResult, Desynchronizer};
use drd_liberty::{Library, Lv};
use drd_netlist::Design;
use drd_sim::{compare_capture_logs, FlowCheck, SimOptions, Simulator};

use crate::netgen::NetRecipe;

/// Co-simulation windows for the differential check.
#[derive(Debug, Clone)]
pub struct DiffConfig {
    /// Clocked cycles of the synchronous reference.
    pub sync_cycles: usize,
    /// Reference clock period (ns).
    pub clock_period_ns: f64,
    /// Free-running time of the desynchronized circuit after reset (ns).
    pub dut_run_ns: f64,
    /// Minimum slave-latch captures every flip-flop must reach (guards
    /// against a silently stalled handshake network "passing" on an
    /// empty capture prefix).
    pub min_captures: usize,
}

impl Default for DiffConfig {
    fn default() -> DiffConfig {
        DiffConfig {
            sync_cycles: 10,
            clock_period_ns: 2.0,
            dut_run_ns: 240.0,
            min_captures: 3,
        }
    }
}

/// Statistics of one successful differential run.
#[derive(Debug, Clone)]
pub struct DiffStats {
    /// Flip-flops compared.
    pub ffs: usize,
    /// Total capture events compared across all elements.
    pub events: usize,
    /// Controller instances found in the desynchronized netlist.
    pub controllers: usize,
}

fn fail(recipe: &NetRecipe, what: &str) -> String {
    format!("{what}\n--- failing synchronous netlist ---\n{}", recipe.verilog())
}

/// Runs one recipe through sync simulation, desynchronization, async
/// co-simulation, capture-log comparison and SDC linting.
///
/// # Errors
/// A human-readable failure report (including the netlist as Verilog)
/// when any stage of the differential check fails.
pub fn run_differential(
    recipe: &NetRecipe,
    lib: &Library,
    config: &DiffConfig,
) -> Result<DiffStats, String> {
    let module = recipe
        .build()
        .map_err(|e| format!("recipe does not build: {e}"))?;
    let ff_names = recipe.ff_names();

    // Synchronous reference: constant inputs, `sync_cycles` clocked cycles.
    let mut sync_design = Design::new();
    sync_design.insert(module.clone());
    let mut reference = Simulator::new(&sync_design, lib, SimOptions::default())
        .map_err(|e| fail(recipe, &format!("sync simulator: {e}")))?;
    for i in 0..recipe.inputs.max(1) {
        let v = Lv::from_bool((recipe.input_bits >> i) & 1 == 1);
        reference
            .poke(&recipe.input_name(i), v)
            .map_err(|e| fail(recipe, &format!("sync poke: {e}")))?;
    }
    reference
        .schedule_clock("clk", config.clock_period_ns, config.clock_period_ns / 2.0, config.sync_cycles)
        .map_err(|e| fail(recipe, &format!("sync clock: {e}")))?;
    reference.run_for(config.clock_period_ns * (config.sync_cycles + 2) as f64);
    for ff in &ff_names {
        if reference.captures().capture_count(ff) != config.sync_cycles {
            return Err(fail(
                recipe,
                &format!(
                    "sync reference: {ff} captured {} times, expected {}",
                    reference.captures().capture_count(ff),
                    config.sync_cycles
                ),
            ));
        }
    }

    // Desynchronize.
    let tool = Desynchronizer::new(lib).map_err(|e| format!("tool: {e}"))?;
    let result = tool
        .run(&module, &DesyncOptions::default())
        .map_err(|e| fail(recipe, &format!("desynchronization failed: {e}")))?;
    if result.report.substituted_ffs != ff_names.len() {
        return Err(fail(
            recipe,
            &format!(
                "substituted {} flip-flops, netlist has {}",
                result.report.substituted_ffs,
                ff_names.len()
            ),
        ));
    }
    let controllers = check_structure(recipe, &result, ff_names.len())?;
    lint_sdc(recipe, &result)?;

    // Desynchronized DUT: same constants, handshake reset, free run.
    let mut dut = Simulator::new(&result.design, lib, SimOptions::default())
        .map_err(|e| fail(recipe, &format!("dut simulator: {e}")))?;
    for i in 0..recipe.inputs.max(1) {
        let v = Lv::from_bool((recipe.input_bits >> i) & 1 == 1);
        dut.poke(&recipe.input_name(i), v)
            .map_err(|e| fail(recipe, &format!("dut poke: {e}")))?;
    }
    dut.poke("drd_rst", Lv::Zero)
        .map_err(|e| fail(recipe, &format!("dut reset: {e}")))?;
    dut.run_for(2.0);
    dut.poke("drd_rst", Lv::One)
        .map_err(|e| fail(recipe, &format!("dut reset release: {e}")))?;
    dut.run_for(config.dut_run_ns);

    for ff in &ff_names {
        let got = dut.captures().capture_count(&format!("{ff}_ls"));
        if got < config.min_captures {
            return Err(fail(
                recipe,
                &format!(
                    "desynchronized circuit stalled: slave {ff}_ls captured only {got} \
                     times in {} ns (minimum {})",
                    config.dut_run_ns, config.min_captures
                ),
            ));
        }
    }

    let check = compare_capture_logs(reference.captures(), dut.captures(), |n| format!("{n}_ls"));
    match check {
        FlowCheck::Equivalent { elements, events } => Ok(DiffStats {
            ffs: elements,
            events,
            controllers,
        }),
        other => Err(fail(recipe, &format!("flow equivalence violated: {other:?}"))),
    }
}

/// Structural invariants of the substitution on the flattened result.
fn check_structure(recipe: &NetRecipe, result: &DesyncResult, ff_count: usize) -> Result<usize, String> {
    let flat = drd_netlist::flatten(&result.design, result.design.top())
        .map_err(|e| fail(recipe, &format!("flatten: {e}")))?;
    let masters = flat.cells().filter(|(_, c)| c.name.ends_with("_lm")).count();
    let slaves = flat.cells().filter(|(_, c)| c.name.ends_with("_ls")).count();
    if masters != ff_count || slaves != ff_count {
        return Err(fail(
            recipe,
            &format!("expected {ff_count} master/slave latch pairs, found {masters}/{slaves}"),
        ));
    }
    let dffs = flat
        .cells()
        .filter(|(_, c)| c.kind.name().starts_with("DFF") || c.kind.name().starts_with("SDFF"))
        .count();
    if dffs != 0 {
        return Err(fail(recipe, &format!("{dffs} flip-flops survived substitution")));
    }
    Ok(flat
        .cells()
        .filter(|(_, c)| c.name.ends_with("/u_a"))
        .count())
}

/// SDC well-formedness: both derived clocks, loop-breaking disables and
/// `size_only` for every controller instance, balanced braces.
fn lint_sdc(recipe: &NetRecipe, result: &DesyncResult) -> Result<(), String> {
    let sdc = &result.sdc;
    for needle in ["create_clock", "ClkM", "ClkS"] {
        if !sdc.contains(needle) {
            return Err(fail(recipe, &format!("SDC lacks {needle}")));
        }
    }
    for line in sdc.lines() {
        let open = line.matches(['{', '[']).count();
        let close = line.matches(['}', ']']).count();
        if open != close {
            return Err(fail(recipe, &format!("unbalanced SDC line: {line}")));
        }
    }
    let flat = drd_netlist::flatten(&result.design, result.design.top())
        .map_err(|e| fail(recipe, &format!("flatten: {e}")))?;
    for (_, cell) in flat.cells() {
        if let Some(inst) = cell.name.strip_suffix("/u_a") {
            let disable = format!("{inst}/u_nro/A");
            let size_only = format!("set_size_only [get_cells {{{inst}/*}}]");
            if !sdc.contains(&disable) {
                return Err(fail(recipe, &format!("SDC misses loop break for {inst}")));
            }
            if !sdc.contains(&size_only) {
                return Err(fail(recipe, &format!("SDC misses size_only for {inst}")));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netgen::{NetGenParams, NetRecipe};
    use crate::rng::Rng;
    use drd_liberty::vlib90;

    #[test]
    fn a_handful_of_random_netlists_are_flow_equivalent() {
        let lib = vlib90::high_speed();
        let mut rng = Rng::new(0xD1FF);
        let params = NetGenParams::default();
        for _ in 0..4 {
            let recipe = NetRecipe::sample(&mut rng, &params);
            let stats = run_differential(&recipe, &lib, &DiffConfig::default())
                .expect("flow equivalence holds");
            assert!(stats.events > 0);
            assert!(stats.controllers > 0);
        }
    }

    #[test]
    fn runner_is_deterministic() {
        let lib = vlib90::high_speed();
        let recipe = NetRecipe::sample(&mut Rng::new(0xCAFE), &NetGenParams::default());
        let a = run_differential(&recipe, &lib, &DiffConfig::default()).unwrap();
        let b = run_differential(&recipe, &lib, &DiffConfig::default()).unwrap();
        assert_eq!(a.events, b.events);
        assert_eq!(a.ffs, b.ffs);
    }
}
