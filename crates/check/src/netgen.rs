//! Random synchronous gate-level netlist generation over the `vlib90`
//! cells — the input side of the differential flow-equivalence fuzzer.
//!
//! A netlist is described by a plain-data [`NetRecipe`] (so failing cases
//! can be shrunk structurally and printed), and built into a well-formed
//! [`Module`]: a bank of input registers followed by `stages` of random
//! combinational clouds and register banks. Cloud inputs may reach any
//! register output — including the registers of the *same* or *later*
//! stages — so the generated designs exercise feedback regions,
//! cross-stage dependencies and arbitrary data-dependency graphs, like
//! the worked example of Fig. 2.6. All indices are taken modulo the size
//! of the legal candidate pool at build time, so **every** recipe value
//! produces a valid netlist (no combinational cycles: a cloud net only
//! ever references register outputs, primary inputs or earlier cloud
//! nets of its own stage).
//!
//! Flip-flop kinds cover the substitution flavours of Fig. 3.1 whose
//! extra pins are synchronous data (plain, sync-reset `DFFRX1`, sync-set
//! `DFFSX1`, scan `SDFFX1`). Asynchronous set/reset flavours are excluded
//! by design: their out-of-band transitions are not flow-equivalence
//! comparable under free-running handshake clocks.

use drd_netlist::{Conn, Module, NetId, NetlistError, PortDir};

use crate::rng::Rng;
use crate::Shrink;

/// Combinational cells the cloud generator draws from: `(kind, two_input)`.
const GATES: [(&str, bool); 8] = [
    ("INVX1", false),
    ("BUFX1", false),
    ("NAND2X1", true),
    ("NOR2X1", true),
    ("AND2X1", true),
    ("OR2X1", true),
    ("XOR2X1", true),
    ("XNOR2X1", true),
];

/// Flip-flop flavour of one register lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FfKind {
    /// `DFFX1` — plain D flip-flop.
    Plain,
    /// `DFFRX1` — synchronous reset (`D & RN`).
    SyncReset,
    /// `DFFSX1` — synchronous set (`D | S`).
    SyncSet,
    /// `SDFFX1` — scan mux (`(D & !SE) | (SI & SE)`).
    Scan,
}

/// One register lane: the flavour plus pool indices for the data pin and
/// the flavour's extra synchronous pins.
#[derive(Debug, Clone)]
pub struct FfRecipe {
    /// Flip-flop flavour.
    pub kind: FfKind,
    /// Pool index of the `D` driver.
    pub d: usize,
    /// Pool index of the first extra pin (`RN`/`S`/`SI`).
    pub aux0: usize,
    /// Pool index of the second extra pin (`SE`).
    pub aux1: usize,
}

/// One combinational cloud gate: `kind` indexes [`GATES`], `a`/`b` index
/// the candidate pool (modulo its size).
#[derive(Debug, Clone)]
pub struct GateOp {
    /// Gate selector.
    pub kind: u8,
    /// First operand pool index.
    pub a: usize,
    /// Second operand pool index (ignored by one-input gates).
    pub b: usize,
}

/// One pipeline stage: a cloud of gates and a bank of register lanes.
#[derive(Debug, Clone)]
pub struct StageRecipe {
    /// Combinational cloud, in creation order.
    pub cloud: Vec<GateOp>,
    /// Register lanes.
    pub ffs: Vec<FfRecipe>,
}

/// A complete random synchronous netlist description.
#[derive(Debug, Clone)]
pub struct NetRecipe {
    /// Primary-input bus width (`din[inputs-1:0]`).
    pub inputs: usize,
    /// Constant values driven on `din` during co-simulation (bit `i` of
    /// this word drives `din[i]`).
    pub input_bits: u64,
    /// Pipeline stages.
    pub stages: Vec<StageRecipe>,
}

/// Size knobs for [`NetRecipe::sample`].
#[derive(Debug, Clone)]
pub struct NetGenParams {
    /// Maximum number of stages (inclusive).
    pub max_stages: usize,
    /// Maximum register lanes per stage (inclusive).
    pub max_width: usize,
    /// Maximum cloud gates per stage (inclusive).
    pub max_cloud: usize,
    /// Maximum `din` bus width (inclusive).
    pub max_inputs: usize,
    /// Include scan / sync-set / sync-reset flip-flop flavours.
    pub scan_set_reset: bool,
    /// When positive, rewire every sample into an imbalanced open chain:
    /// stage 0 becomes a loopback source carrying a NAND chain this many
    /// gates deep, feeding a fast successor stage — the pulse-swallowing
    /// topology the liveness guard must repair
    /// (see [`NetRecipe::imbalance`]).
    pub source_imbalance: usize,
    /// When positive, manufacture a *deepening-infeasible* hazard on top
    /// of the imbalanced shape: the source chain is this many gates deep
    /// and the successor stage grows its own chain an eighth as deep
    /// (see [`NetRecipe::deepen_infeasible`]). Covering the source's
    /// rise would need a successor delay element deeper than any clock
    /// budget the successor's own floor fits, so the repair ladder must
    /// skip the deepen rung and fall through to latch / degrade.
    /// Overrides `source_imbalance` when both are set.
    pub deepen_infeasible: usize,
}

impl Default for NetGenParams {
    fn default() -> NetGenParams {
        NetGenParams {
            max_stages: 3,
            max_width: 3,
            max_cloud: 6,
            max_inputs: 4,
            scan_set_reset: true,
            source_imbalance: 0,
            deepen_infeasible: 0,
        }
    }
}

impl NetRecipe {
    /// Draws a random recipe within `params`.
    pub fn sample(rng: &mut Rng, params: &NetGenParams) -> NetRecipe {
        let n_stages = rng.range(1, params.max_stages + 1);
        let width = rng.range(1, params.max_width + 1);
        let inputs = rng.range(1, params.max_inputs + 1);
        let input_bits = rng.next_u64();
        let stages = (0..n_stages)
            .map(|_| {
                let cloud = (0..rng.range(0, params.max_cloud + 1))
                    .map(|_| GateOp {
                        kind: rng.next_u64() as u8,
                        a: rng.range(0, 4096),
                        b: rng.range(0, 4096),
                    })
                    .collect();
                let ffs = (0..width)
                    .map(|_| FfRecipe {
                        kind: if params.scan_set_reset {
                            *rng.choose(&[
                                FfKind::Plain,
                                FfKind::Plain,
                                FfKind::Plain,
                                FfKind::SyncReset,
                                FfKind::SyncSet,
                                FfKind::Scan,
                            ])
                        } else {
                            FfKind::Plain
                        },
                        d: rng.range(0, 4096),
                        aux0: rng.range(0, 4096),
                        aux1: rng.range(0, 4096),
                    })
                    .collect();
                StageRecipe { cloud, ffs }
            })
            .collect();
        let mut recipe = NetRecipe {
            inputs,
            input_bits,
            stages,
        };
        if params.deepen_infeasible > 0 {
            recipe.deepen_infeasible(params.deepen_infeasible);
        } else if params.source_imbalance > 0 {
            recipe.imbalance(params.source_imbalance);
        }
        recipe
    }

    /// Rewires this recipe into an imbalanced open chain: stage 0 grows
    /// a `levels`-deep NAND chain (every gate also fed by `din`, the
    /// stall-test shape) whose end drives *all* of its register lanes —
    /// forced to plain flip-flops so no aux pin pulls in a predecessor —
    /// and stage 1 (created on demand) reads `q0_0` through an inverter,
    /// keeping the stages in separate regions. The result is a loopback
    /// source whose matched delay dwarfs its successor's response time:
    /// the topology the liveness guard exists to repair.
    pub fn imbalance(&mut self, levels: usize) {
        if self.stages.len() < 2 {
            self.stages.push(StageRecipe {
                cloud: Vec::new(),
                ffs: vec![FfRecipe { kind: FfKind::Plain, d: 0, aux0: 0, aux1: 0 }],
            });
        }
        let total_ffs: usize = self.stages.iter().map(|s| s.ffs.len()).sum();
        let base = self.inputs.max(1) + total_ffs; // first cloud-net index
        let chain: Vec<GateOp> = (0..levels)
            .map(|c| GateOp {
                kind: 2, // NAND2X1 — survives buffer cleaning
                a: if c == 0 { 0 } else { base + c - 1 },
                b: 0,
            })
            .collect();
        let stage0 = &mut self.stages[0];
        stage0.cloud.splice(0..0, chain);
        for ff in &mut stage0.ffs {
            ff.kind = FfKind::Plain;
            ff.d = base + levels - 1;
        }
        let q0_0 = self.inputs.max(1);
        let stage1 = &mut self.stages[1];
        stage1.cloud.insert(0, GateOp { kind: 0, a: q0_0, b: 0 });
        if let Some(ff) = stage1.ffs.first_mut() {
            ff.kind = FfKind::Plain;
            ff.d = base;
        }
    }

    /// Rewires this recipe into a *deepening-infeasible* imbalanced
    /// chain: the [`Self::imbalance`] shape with a `levels`-deep source
    /// chain, plus a NAND chain an eighth as deep grown inside the
    /// successor stage (between the region-splitting inverter and its
    /// register). The successor's response stays deficient against the
    /// source's rise, but the deepen target the hazard demands — a
    /// delay element covering `margin ×` that rise — overshoots any
    /// clock budget the successor's own floor fits, so the repair
    /// ladder's deepen rung is rejected and the latch (and, if the
    /// network still wedges, degrade) rungs take over.
    pub fn deepen_infeasible(&mut self, levels: usize) {
        self.imbalance(levels);
        let total_ffs: usize = self.stages.iter().map(|s| s.ffs.len()).sum();
        let base = self.inputs.max(1) + total_ffs; // first local cloud-net index
        // After `imbalance`, stage 1's cloud slot 0 is the inverter on
        // `q0_0` (local net `base`); the chain continues from it, every
        // gate also fed by `din` like the source chain.
        let succ_levels = (levels / 8).max(2);
        let chain: Vec<GateOp> = (0..succ_levels)
            .map(|c| GateOp { kind: 2, a: base + c, b: 0 })
            .collect();
        let stage1 = &mut self.stages[1];
        stage1.cloud.splice(1..1, chain);
        if let Some(ff) = stage1.ffs.first_mut() {
            ff.d = base + succ_levels;
        }
    }

    /// Names of every flip-flop instance, in creation order.
    pub fn ff_names(&self) -> Vec<String> {
        let mut names = Vec::new();
        for (s, stage) in self.stages.iter().enumerate() {
            for l in 0..stage.ffs.len() {
                names.push(format!("r{s}_{l}"));
            }
        }
        names
    }

    /// Name of primary input bit `i`.
    pub fn input_name(&self, i: usize) -> String {
        if self.inputs == 1 {
            "din".to_owned()
        } else {
            format!("din[{i}]")
        }
    }

    /// Builds the synchronous [`Module`] described by this recipe.
    ///
    /// # Errors
    /// Propagates netlist construction errors (cannot happen: names are
    /// generated collision-free).
    pub fn build(&self) -> Result<Module, NetlistError> {
        let mut m = Module::new("fuzz");
        m.add_port("clk", PortDir::Input)?;
        let clk = m.find_net("clk").expect("clk net exists");
        let mut pool: Vec<NetId> = Vec::new();
        for i in 0..self.inputs.max(1) {
            let p = m.add_port(self.input_name(i), PortDir::Input)?;
            pool.push(m.port(p).net);
        }
        // All register outputs exist up front so clouds can reference any
        // stage (feedback edges are sequential, never combinational).
        let mut q_nets: Vec<Vec<NetId>> = Vec::new();
        for (s, stage) in self.stages.iter().enumerate() {
            let qs = (0..stage.ffs.len())
                .map(|l| m.add_net(format!("q{s}_{l}")))
                .collect::<Result<Vec<_>, _>>()?;
            pool.extend(&qs);
            q_nets.push(qs);
        }
        for (s, stage) in self.stages.iter().enumerate() {
            let mut local = pool.clone();
            for (c, op) in stage.cloud.iter().enumerate() {
                let (gate, two_input) = GATES[usize::from(op.kind) % GATES.len()];
                let z = m.add_net(format!("c{s}_{c}"))?;
                let a = local[op.a % local.len()];
                if two_input {
                    let b = local[op.b % local.len()];
                    m.add_cell(
                        format!("g{s}_{c}"),
                        gate,
                        &[("A", Conn::Net(a)), ("B", Conn::Net(b)), ("Z", Conn::Net(z))],
                    )?;
                } else {
                    m.add_cell(format!("g{s}_{c}"), gate, &[("A", Conn::Net(a)), ("Z", Conn::Net(z))])?;
                }
                local.push(z);
            }
            for (l, ff) in stage.ffs.iter().enumerate() {
                let q = q_nets[s][l];
                let d = local[ff.d % local.len()];
                let name = format!("r{s}_{l}");
                match ff.kind {
                    FfKind::Plain => {
                        m.add_cell(
                            name,
                            "DFFX1",
                            &[("D", Conn::Net(d)), ("CK", Conn::Net(clk)), ("Q", Conn::Net(q))],
                        )?;
                    }
                    FfKind::SyncReset => {
                        let rn = local[ff.aux0 % local.len()];
                        m.add_cell(
                            name,
                            "DFFRX1",
                            &[
                                ("D", Conn::Net(d)),
                                ("RN", Conn::Net(rn)),
                                ("CK", Conn::Net(clk)),
                                ("Q", Conn::Net(q)),
                            ],
                        )?;
                    }
                    FfKind::SyncSet => {
                        let set = local[ff.aux0 % local.len()];
                        m.add_cell(
                            name,
                            "DFFSX1",
                            &[
                                ("D", Conn::Net(d)),
                                ("S", Conn::Net(set)),
                                ("CK", Conn::Net(clk)),
                                ("Q", Conn::Net(q)),
                            ],
                        )?;
                    }
                    FfKind::Scan => {
                        let si = local[ff.aux0 % local.len()];
                        let se = local[ff.aux1 % local.len()];
                        m.add_cell(
                            name,
                            "SDFFX1",
                            &[
                                ("D", Conn::Net(d)),
                                ("SI", Conn::Net(si)),
                                ("SE", Conn::Net(se)),
                                ("CK", Conn::Net(clk)),
                                ("Q", Conn::Net(q)),
                            ],
                        )?;
                    }
                }
            }
        }
        Ok(m)
    }

    /// The recipe's netlist as structural Verilog (for failure reports).
    pub fn verilog(&self) -> String {
        match self.build() {
            Ok(module) => {
                let mut d = drd_netlist::Design::new();
                d.insert(module);
                drd_netlist::verilog::write_design(&d)
            }
            Err(e) => format!("<recipe does not build: {e}>"),
        }
    }
}

impl Shrink for NetRecipe {
    fn shrink(&self) -> Vec<NetRecipe> {
        let mut out = Vec::new();
        // Fewer stages.
        if self.stages.len() > 1 {
            let mut r = self.clone();
            r.stages.truncate(self.stages.len() / 2);
            out.push(r);
            let mut r = self.clone();
            r.stages.pop();
            out.push(r);
        }
        // Narrower register banks.
        if self.stages.iter().any(|s| s.ffs.len() > 1) {
            let mut r = self.clone();
            for s in &mut r.stages {
                s.ffs.truncate(1.max(s.ffs.len() / 2));
            }
            out.push(r);
        }
        // Thinner clouds.
        if self.stages.iter().any(|s| !s.cloud.is_empty()) {
            let mut r = self.clone();
            for s in &mut r.stages {
                s.cloud.clear();
            }
            out.push(r);
            let mut r = self.clone();
            for s in &mut r.stages {
                s.cloud.truncate(s.cloud.len() / 2);
            }
            out.push(r);
        }
        // Plain flip-flops only.
        if self
            .stages
            .iter()
            .any(|s| s.ffs.iter().any(|f| f.kind != FfKind::Plain))
        {
            let mut r = self.clone();
            for s in &mut r.stages {
                for f in &mut s.ffs {
                    f.kind = FfKind::Plain;
                }
            }
            out.push(r);
        }
        // Simpler constants and a narrower input bus.
        if self.input_bits != 0 {
            let mut r = self.clone();
            r.input_bits = 0;
            out.push(r);
        }
        if self.inputs > 1 {
            let mut r = self.clone();
            r.inputs = 1;
            out.push(r);
        }
        // Zero out the wiring indices (pulls every pin to the first pool
        // entries, collapsing the connectivity).
        if self.stages.iter().any(|s| {
            s.cloud.iter().any(|g| g.a != 0 || g.b != 0 || g.kind != 0)
                || s.ffs.iter().any(|f| f.d != 0 || f.aux0 != 0 || f.aux1 != 0)
        }) {
            let mut r = self.clone();
            for s in &mut r.stages {
                for g in &mut s.cloud {
                    *g = GateOp { kind: 0, a: 0, b: 0 };
                }
                for f in &mut s.ffs {
                    f.d = 0;
                    f.aux0 = 0;
                    f.aux1 = 0;
                }
            }
            out.push(r);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_sampled_recipe_builds_and_reparses() {
        let mut rng = Rng::new(0xFEED);
        let params = NetGenParams::default();
        for _ in 0..50 {
            let recipe = NetRecipe::sample(&mut rng, &params);
            let module = recipe.build().expect("recipe builds");
            assert!(module.cell_count() >= recipe.ff_names().len());
            let text = recipe.verilog();
            drd_netlist::verilog::parse_design(&text).expect("verilog reparses");
        }
    }

    #[test]
    fn sampling_is_deterministic() {
        let params = NetGenParams::default();
        let a = NetRecipe::sample(&mut Rng::new(99), &params);
        let b = NetRecipe::sample(&mut Rng::new(99), &params);
        assert_eq!(a.verilog(), b.verilog());
    }

    #[test]
    fn shrink_candidates_always_build() {
        let mut rng = Rng::new(0xABCD);
        let params = NetGenParams::default();
        for _ in 0..20 {
            let recipe = NetRecipe::sample(&mut rng, &params);
            for cand in recipe.shrink() {
                cand.build().expect("shrunk recipe still builds");
                assert!(!cand.stages.is_empty());
            }
        }
    }

    #[test]
    fn scan_set_reset_mix_is_exercised() {
        let mut rng = Rng::new(0x5EED);
        let params = NetGenParams {
            max_stages: 2,
            max_width: 4,
            ..NetGenParams::default()
        };
        let mut kinds = std::collections::HashSet::new();
        for _ in 0..100 {
            let r = NetRecipe::sample(&mut rng, &params);
            for s in &r.stages {
                for f in &s.ffs {
                    kinds.insert(f.kind);
                }
            }
        }
        assert!(kinds.contains(&FfKind::Plain));
        assert!(kinds.contains(&FfKind::SyncReset));
        assert!(kinds.contains(&FfKind::SyncSet));
        assert!(kinds.contains(&FfKind::Scan));
    }
}
