//! Structural coverage tracking for generated netlists — which shapes the
//! fuzzers have actually exercised — feeding a coverage-guided sampler.
//!
//! A [`NetRecipe`] is abstracted into discrete [`Bucket`]s: flip-flop
//! flavours hit (Fig. 3.1), region-count and shape buckets, feedback-edge
//! presence (the Fig. 2.6 worked example's distinguishing feature),
//! primary-input width and constants, plus the handshake-protocol
//! variants exercised by the STG-level mutations (Fig. 2.4). The guided
//! sampler draws several candidates and keeps the one hitting the most
//! *unseen* buckets, so small case budgets still cover the structural
//! grid instead of resampling the generator's most likely shapes.
//!
//! Feedback/cross-edge detection replays the pool-index arithmetic of
//! [`NetRecipe::build`] without building the module: an operand index is
//! a feedback edge iff it resolves to the `q` net of the same or a later
//! stage.

use std::collections::HashSet;

use drd_stg::protocols::Protocol;

use crate::netgen::{FfKind, NetGenParams, NetRecipe};
use crate::rng::Rng;

/// One structural coverage point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Bucket {
    /// A flip-flop flavour appears in the netlist.
    FfKind(FfKind),
    /// Stage count, clamped to 3 ("3 or more").
    Stages(u8),
    /// Total register count: 1 → 1–2, 2 → 3–4, 3 → 5+.
    Width(u8),
    /// Largest per-stage cloud: 0 → empty, 1 → 1–3 gates, 2 → 4+.
    Cloud(u8),
    /// Primary-input bus width, clamped to 3 ("3 or more").
    Inputs(u8),
    /// Some cloud or flip-flop input resolves to a register of the same
    /// or a later stage (a sequential feedback edge).
    Feedback(bool),
    /// Some input resolves to a register of an *earlier* stage other than
    /// the immediately preceding one (a forward skip edge).
    SkipEdge(bool),
    /// The constant `din` word is all zeros.
    ConstZero(bool),
    /// A Fig. 2.4 handshake-protocol variant was exercised (recorded by
    /// the STG-level mutation harness, not derivable from a recipe).
    Protocol(Protocol),
}

/// The structural features of one recipe, before bucketing.
#[derive(Debug, Clone)]
pub struct RecipeFeatures {
    /// Flip-flop flavours present.
    pub ff_kinds: Vec<FfKind>,
    /// Stage count.
    pub stages: usize,
    /// Total register lanes.
    pub width: usize,
    /// Largest per-stage cloud.
    pub max_cloud: usize,
    /// Primary-input bus width.
    pub inputs: usize,
    /// Any same-or-later-stage register reference.
    pub has_feedback: bool,
    /// Any reference skipping backwards over more than one stage.
    pub has_skip_edge: bool,
    /// All-zero input constants.
    pub const_zero: bool,
}

impl RecipeFeatures {
    /// Extracts the features of `recipe` by replaying the build-time pool
    /// arithmetic.
    pub fn of(recipe: &NetRecipe) -> RecipeFeatures {
        let inputs = recipe.inputs.max(1);
        let widths: Vec<usize> = recipe.stages.iter().map(|s| s.ffs.len()).collect();
        // Pool layout of `NetRecipe::build`: din bits, then every stage's
        // q nets in stage order.
        let mut q_start = vec![0usize; widths.len()];
        let mut acc = inputs;
        for (s, w) in widths.iter().enumerate() {
            q_start[s] = acc;
            acc += w;
        }
        let pool_len = acc;
        // Which stage owns pool index `i`, if any.
        let stage_of = |i: usize| -> Option<usize> {
            (i >= inputs).then(|| {
                q_start
                    .iter()
                    .rposition(|&start| start <= i)
                    .expect("pool index past inputs lands in a stage")
            })
        };

        let mut has_feedback = false;
        let mut has_skip_edge = false;
        let mut ff_kinds = Vec::new();
        for (s, stage) in recipe.stages.iter().enumerate() {
            let mut classify = |idx: usize, local_len: usize| {
                // Cloud nets (indices past the shared pool) are local and
                // combinational — never feedback.
                if let Some(t) = stage_of(idx % local_len).filter(|_| idx % local_len < pool_len)
                {
                    if t >= s {
                        has_feedback = true;
                    } else if s - t > 1 {
                        has_skip_edge = true;
                    }
                }
            };
            for (c, op) in stage.cloud.iter().enumerate() {
                let local_len = pool_len + c;
                classify(op.a, local_len);
                if gate_is_two_input(op.kind) {
                    classify(op.b, local_len);
                }
            }
            let local_len = pool_len + stage.cloud.len();
            for ff in &stage.ffs {
                classify(ff.d, local_len);
                match ff.kind {
                    FfKind::Plain => {}
                    FfKind::SyncReset | FfKind::SyncSet => classify(ff.aux0, local_len),
                    FfKind::Scan => {
                        classify(ff.aux0, local_len);
                        classify(ff.aux1, local_len);
                    }
                }
                if !ff_kinds.contains(&ff.kind) {
                    ff_kinds.push(ff.kind);
                }
            }
        }

        RecipeFeatures {
            ff_kinds,
            stages: recipe.stages.len(),
            width: widths.iter().sum(),
            max_cloud: recipe.stages.iter().map(|s| s.cloud.len()).max().unwrap_or(0),
            inputs,
            has_feedback,
            has_skip_edge,
            const_zero: recipe.input_bits & ((1u64 << inputs.min(63)) - 1) == 0,
        }
    }

    /// The coverage points this recipe hits.
    pub fn buckets(&self) -> Vec<Bucket> {
        let mut out: Vec<Bucket> = self.ff_kinds.iter().map(|&k| Bucket::FfKind(k)).collect();
        out.push(Bucket::Stages(self.stages.min(3) as u8));
        out.push(Bucket::Width(match self.width {
            0..=2 => 1,
            3..=4 => 2,
            _ => 3,
        }));
        out.push(Bucket::Cloud(match self.max_cloud {
            0 => 0,
            1..=3 => 1,
            _ => 2,
        }));
        out.push(Bucket::Inputs(self.inputs.min(3) as u8));
        out.push(Bucket::Feedback(self.has_feedback));
        out.push(Bucket::SkipEdge(self.has_skip_edge));
        out.push(Bucket::ConstZero(self.const_zero));
        out
    }
}

/// Mirror of the `GATES` table in [`crate::netgen`]: which gate selectors
/// decode to two-input cells (`kind % 8`, indices 2..=7).
fn gate_is_two_input(kind: u8) -> bool {
    kind % 8 >= 2
}

/// Accumulated structural coverage across a fuzzing run.
#[derive(Debug, Clone, Default)]
pub struct Coverage {
    seen: HashSet<Bucket>,
}

impl Coverage {
    /// An empty coverage map.
    pub fn new() -> Coverage {
        Coverage::default()
    }

    /// Buckets seen so far.
    pub fn len(&self) -> usize {
        self.seen.len()
    }

    /// True when nothing was recorded yet.
    pub fn is_empty(&self) -> bool {
        self.seen.is_empty()
    }

    /// True when `bucket` has been hit.
    pub fn contains(&self, bucket: Bucket) -> bool {
        self.seen.contains(&bucket)
    }

    /// Records one explicit coverage point (e.g. a protocol variant).
    /// Returns true if it was new.
    pub fn record_bucket(&mut self, bucket: Bucket) -> bool {
        self.seen.insert(bucket)
    }

    /// Records every bucket of `recipe`; returns how many were new.
    pub fn record(&mut self, recipe: &NetRecipe) -> usize {
        RecipeFeatures::of(recipe)
            .buckets()
            .into_iter()
            .filter(|&b| self.seen.insert(b))
            .count()
    }

    /// How many of `recipe`'s buckets are unseen (the guided sampler's
    /// score).
    pub fn unseen(&self, recipe: &NetRecipe) -> usize {
        RecipeFeatures::of(recipe)
            .buckets()
            .into_iter()
            .filter(|b| !self.seen.contains(b))
            .count()
    }

    /// A sorted, human-readable dump of the seen buckets.
    pub fn describe(&self) -> Vec<String> {
        let mut v: Vec<String> = self.seen.iter().map(|b| format!("{b:?}")).collect();
        v.sort();
        v
    }
}

/// Coverage-guided sampling: draws up to `tries` candidate recipes from
/// `rng` and returns the first one maximizing unseen-bucket count (the
/// draw is recorded). With everything already covered this degenerates to
/// plain [`NetRecipe::sample`] — no bias once the grid is saturated.
pub fn sample_guided(
    rng: &mut Rng,
    params: &NetGenParams,
    coverage: &mut Coverage,
    tries: usize,
) -> NetRecipe {
    let mut best = NetRecipe::sample(rng, params);
    let mut best_score = coverage.unseen(&best);
    for _ in 1..tries.max(1) {
        if best_score == 0 && !coverage.is_empty() {
            break;
        }
        let cand = NetRecipe::sample(rng, params);
        let score = coverage.unseen(&cand);
        if score > best_score {
            best = cand;
            best_score = score;
        }
    }
    coverage.record(&best);
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn features_are_deterministic_and_bucketable() {
        let mut rng = Rng::new(0xC0FE);
        let params = NetGenParams::default();
        for _ in 0..50 {
            let r = NetRecipe::sample(&mut rng, &params);
            let a = RecipeFeatures::of(&r);
            let b = RecipeFeatures::of(&r);
            assert_eq!(a.buckets(), b.buckets());
            assert!(!a.buckets().is_empty());
            assert_eq!(a.stages, r.stages.len());
        }
    }

    #[test]
    fn guided_sampling_covers_the_grid_faster() {
        let params = NetGenParams::default();
        let runs = 30usize;
        let mut plain = Coverage::new();
        let mut rng = Rng::new(7);
        for _ in 0..runs {
            let r = NetRecipe::sample(&mut rng, &params);
            plain.record(&r);
        }
        let mut guided = Coverage::new();
        let mut rng = Rng::new(7);
        for _ in 0..runs {
            sample_guided(&mut rng, &params, &mut guided, 8);
        }
        assert!(
            guided.len() >= plain.len(),
            "guided {} < plain {}",
            guided.len(),
            plain.len()
        );
        // The guided run must reach every FF flavour within the budget.
        for k in [FfKind::Plain, FfKind::SyncReset, FfKind::SyncSet, FfKind::Scan] {
            assert!(guided.contains(Bucket::FfKind(k)), "{k:?} uncovered");
        }
    }

    #[test]
    fn feedback_detection_matches_a_known_recipe() {
        use crate::netgen::{FfRecipe, StageRecipe};
        // One input, one stage, one FF whose D is index 1 → the stage's
        // own q net → feedback.
        let fb = NetRecipe {
            inputs: 1,
            input_bits: 0,
            stages: vec![StageRecipe {
                cloud: vec![],
                ffs: vec![FfRecipe { kind: FfKind::Plain, d: 1, aux0: 0, aux1: 0 }],
            }],
        };
        assert!(RecipeFeatures::of(&fb).has_feedback);
        // D tied to the primary input → no feedback.
        let ff = NetRecipe {
            inputs: 1,
            input_bits: 0,
            stages: vec![StageRecipe {
                cloud: vec![],
                ffs: vec![FfRecipe { kind: FfKind::Plain, d: 0, aux0: 0, aux1: 0 }],
            }],
        };
        assert!(!RecipeFeatures::of(&ff).has_feedback);
        let f = RecipeFeatures::of(&ff);
        assert!(f.const_zero);
        assert_eq!(f.width, 1);
    }

    #[test]
    fn protocol_buckets_are_recordable() {
        let mut cov = Coverage::new();
        assert!(cov.record_bucket(Bucket::Protocol(Protocol::SemiDecoupled)));
        assert!(!cov.record_bucket(Bucket::Protocol(Protocol::SemiDecoupled)));
        assert!(cov.record_bucket(Bucket::Protocol(Protocol::FallDecoupled)));
        assert_eq!(cov.len(), 2);
        assert!(cov.describe().iter().any(|s| s.contains("SemiDecoupled")));
    }
}
