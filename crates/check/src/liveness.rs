//! Liveness oracle: the netlist must actually carry the repairs the
//! liveness guard reported, and the repaired network must screen clean
//! under the guard's own response-bound model (DESIGN.md §3i).
//!
//! Three structural properties, each killing a class of injected fault
//! the behavioural oracle can miss on a lucky workload:
//!
//! 1. **Measured depth** — every controlled region's delay-element
//!    *module* (`drd_delem_<n>` / `drd_delemx_<n>`) encodes its level
//!    count; the measured count must equal the report's. A deepen repair
//!    that was recorded but not applied (or silently undone) shifts the
//!    pulse-width budget back into hazard territory without touching any
//!    other census.
//! 2. **Hazard recheck** — re-running [`drd_core::liveness::hazards`]
//!    over the *measured* depths and the report's DDG edges must flag
//!    nothing: every loopback source either satisfies the response
//!    bound or carries a request-extending latch.
//! 3. **Latch accounting** — a `RequestLatch` record implies the
//!    `drd_<r>_reqext` C-element exists and feeds the region's delay
//!    element, and every `reqext` cell in the netlist is backed by a
//!    record (no unexplained latches).
//!
//! Degraded regions are checked for clean excision: no controller pair,
//! no delay element, and the synchronous re-clocking cells present.

use drd_core::liveness::{hazards, RegionState, ResponseModel};
use drd_core::{DesyncReport, LivenessAction};
use drd_liberty::Library;
use drd_netlist::Design;

/// Parses the level count out of a delay-element module name
/// (`drd_delem_12` → 12, `drd_delemx_7` → 7).
fn delem_levels_of(kind: &str) -> Option<usize> {
    kind.strip_prefix("drd_delemx_")
        .or_else(|| kind.strip_prefix("drd_delem_"))?
        .parse()
        .ok()
}

/// Verifies the liveness guard's contract on a finished flow result —
/// see the module docs for the three properties.
///
/// # Errors
/// A description of the first violated property.
pub fn verify_liveness(
    report: &DesyncReport,
    design: &Design,
    lib: &Library,
) -> Result<(), String> {
    let top = design.module(design.top());
    let model = ResponseModel::probe(lib).map_err(|e| format!("response model: {e}"))?;
    let degraded =
        |name: &str| report.degradations.iter().any(|d| d.region == name);

    // Property 1: measured delay-element depths match the report.
    let mut states = Vec::with_capacity(report.regions.len());
    for r in &report.regions {
        let inst = format!("drd_{}_delem", r.name);
        let measured = top
            .find_cell(&inst)
            .map(|id| top.cell(id).kind_name().to_owned());
        let controlled = r.ffs > 0 && r.delem_levels > 0;
        match (&measured, controlled) {
            (Some(kind), true) => {
                let levels = delem_levels_of(kind)
                    .ok_or_else(|| format!("{inst} has non-delay module `{kind}`"))?;
                if levels != r.delem_levels {
                    return Err(format!(
                        "region {}: delay element is {levels} levels deep, report says {}",
                        r.name, r.delem_levels
                    ));
                }
            }
            (None, true) => return Err(format!("region {}: delay element {inst} missing", r.name)),
            (Some(_), false) => {
                return Err(format!(
                    "region {}: uncontrolled but delay element {inst} survives",
                    r.name
                ))
            }
            (None, false) => {}
        }
        let latched = top.find_cell(&format!("drd_{}_reqext", r.name)).is_some();
        states.push(RegionState {
            name: r.name.clone(),
            controlled,
            levels: r.delem_levels,
            latched,
        });
    }

    // Property 2: the shipped depths screen clean — every unlatched
    // loopback source's rise time stays inside the fastest successor's
    // response bound (the margin only widens the deepening target, not
    // the hazard condition, so 1.0 is exact here).
    let slot = |name: &str| report.regions.iter().position(|r| r.name == name);
    let edges: Vec<(usize, usize)> = report
        .ddg_edges
        .iter()
        .filter_map(|(a, b)| Some((slot(a)?, slot(b)?)))
        .collect();
    if let Some(h) = hazards(&model, &states, &edges, 1.0).first() {
        let r = &states[h.region];
        return Err(format!(
            "region {}: unrepaired pulse-swallowing hazard shipped (rise {:.3} ns >= \
             successor response {:.3} ns, no request latch)",
            r.name, h.rise_ns, h.bound_ns
        ));
    }

    // Property 3: latch records and latch cells agree both ways.
    for lr in &report.liveness_repairs {
        if !matches!(lr.action, LivenessAction::RequestLatch) {
            continue;
        }
        if degraded(&lr.region) {
            continue; // a later Degrade rung excised the latch with the region
        }
        let inst = format!("drd_{}_reqext", lr.region);
        let Some(cell) = top.find_cell(&inst) else {
            return Err(format!(
                "region {}: request latch recorded but {inst} is missing",
                lr.region
            ));
        };
        // The latch output must be what the delay element samples.
        let q = top.cell(cell).pin("Z").and_then(|c| c.net());
        let delem = top
            .find_cell(&format!("drd_{}_delem", lr.region))
            .ok_or_else(|| format!("region {}: latched but no delay element", lr.region))?;
        let in1 = top.cell(delem).pin("in1").and_then(|c| c.net());
        if q.is_none() || q != in1 {
            return Err(format!(
                "region {}: request latch {inst} does not feed the delay element",
                lr.region
            ));
        }
    }
    for r in &report.regions {
        let inst = format!("drd_{}_reqext", r.name);
        if top.find_cell(&inst).is_some()
            && !report.liveness_repairs.iter().any(|lr| {
                lr.region == r.name && matches!(lr.action, LivenessAction::RequestLatch)
            })
        {
            return Err(format!("region {}: unexplained request latch {inst}", r.name));
        }
    }

    // Degraded regions: the control machinery must be fully excised and
    // the synchronous re-clocking in place.
    for d in &report.degradations {
        for suffix in ["ctlm", "ctls", "delem", "reqext"] {
            let inst = format!("drd_{}_{suffix}", d.region);
            if top.find_cell(&inst).is_some() {
                return Err(format!(
                    "degraded region {}: control cell {inst} survives",
                    d.region
                ));
            }
        }
        for suffix in ["syncm", "syncs"] {
            let inst = format!("drd_{}_{suffix}", d.region);
            if top.find_cell(&inst).is_none() {
                return Err(format!(
                    "degraded region {}: re-clocking cell {inst} missing",
                    d.region
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netgen::{FfKind, FfRecipe, GateOp, NetRecipe, StageRecipe};
    use drd_core::{DesyncOptions, Desynchronizer};
    use drd_liberty::vlib90;

    /// The stall-test shape: a 24-NAND source feeding a 1-inverter sink —
    /// guaranteed to exercise the repair ladder.
    fn imbalanced_recipe() -> NetRecipe {
        let chain: Vec<GateOp> = (0..24)
            .map(|c| GateOp { kind: 2, a: if c == 0 { 0 } else { 3 + c - 1 }, b: 0 })
            .collect();
        NetRecipe {
            inputs: 1,
            input_bits: 1,
            stages: vec![
                StageRecipe {
                    cloud: chain,
                    ffs: vec![FfRecipe { kind: FfKind::Plain, d: 3 + 23, aux0: 0, aux1: 0 }],
                },
                StageRecipe {
                    cloud: vec![GateOp { kind: 0, a: 1, b: 0 }],
                    ffs: vec![FfRecipe { kind: FfKind::Plain, d: 3, aux0: 0, aux1: 0 }],
                },
            ],
        }
    }

    #[test]
    fn oracle_accepts_a_repaired_flow() {
        let lib = vlib90::high_speed();
        let module = imbalanced_recipe().build().unwrap();
        let tool = Desynchronizer::new(&lib).unwrap();
        let result = tool.run(&module, &DesyncOptions::default()).unwrap();
        assert!(!result.report.liveness_repairs.is_empty(), "repair expected");
        verify_liveness(&result.report, &result.design, &lib).expect("repaired flow verifies");
    }

    #[test]
    fn oracle_catches_a_shallowed_delay_element() {
        let lib = vlib90::high_speed();
        let module = imbalanced_recipe().build().unwrap();
        let tool = Desynchronizer::new(&lib).unwrap();
        let mut result = tool.run(&module, &DesyncOptions::default()).unwrap();
        // Undo the deepen in the netlist only: swap the deepened module
        // back for a 2-level one, leaving the report pristine.
        let deepened = result
            .report
            .liveness_repairs
            .iter()
            .find_map(|lr| match &lr.action {
                drd_core::LivenessAction::DeepenSuccessor { successor, from_levels, .. } => {
                    Some((successor.clone(), *from_levels))
                }
                _ => None,
            })
            .expect("flow deepened a successor");
        let (succ, from) = deepened;
        let shallow = drd_core::network::delem_module_name(false, from);
        if result.design.find_module(&shallow).is_none() {
            result
                .design
                .insert(drd_core::delay_element::build_fixed(&shallow, from));
        }
        let top = result.design.top();
        let m = result.design.module_mut(top);
        let cell = m.find_cell(&format!("drd_{succ}_delem")).unwrap();
        let kind = m.instance_kind(&shallow);
        m.set_cell_kind(cell, kind);

        let err = verify_liveness(&result.report, &result.design, &lib)
            .expect_err("shallowed delay element must be caught");
        assert!(err.contains("levels deep"), "{err}");
    }

    #[test]
    fn oracle_catches_a_stripped_request_latch() {
        let lib = vlib90::high_speed();
        // Force the latch rung: a clock budget too small to deepen into.
        let module = imbalanced_recipe().build().unwrap();
        let tool = Desynchronizer::new(&lib).unwrap();
        let opts = DesyncOptions { clock_period_ns: 0.5, ..DesyncOptions::default() };
        let result = tool.run(&module, &opts).unwrap();
        let latched: Vec<&str> = result
            .report
            .liveness_repairs
            .iter()
            .filter(|lr| matches!(lr.action, drd_core::LivenessAction::RequestLatch))
            .map(|lr| lr.region.as_str())
            .collect();
        assert!(!latched.is_empty(), "tight budget must force the latch rung");
        verify_liveness(&result.report, &result.design, &lib).expect("latched flow verifies");

        // Strip the latch but leave the record: both directions of the
        // accounting must catch it (here: record without cell).
        let mut broken = result.clone();
        let region = latched[0].to_owned();
        let top = broken.design.top();
        let m = broken.design.module_mut(top);
        let ros = m.find_net(&format!("drd_{region}_ros")).unwrap();
        let delem = m.find_cell(&format!("drd_{region}_delem")).unwrap();
        m.set_pin(delem, "in1", drd_netlist::Conn::Net(ros));
        let latch = m.find_cell(&format!("drd_{region}_reqext")).unwrap();
        m.remove_cell(latch);
        // The hazard recheck sees the unlatched source first; the latch
        // accounting is the backstop for non-hazardous regions.
        let err = verify_liveness(&broken.report, &broken.design, &lib)
            .expect_err("stripped latch must be caught");
        assert!(err.contains("hazard") || err.contains("reqext"), "{err}");
    }
}
