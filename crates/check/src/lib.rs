//! # drd-check — the offline-first verification kit
//!
//! Every test in this workspace must build and run with **zero registry
//! dependencies** (the build environment has no network access to
//! crates.io). This crate provides, in-tree, the pieces that external
//! crates used to supply:
//!
//! * [`rng`] — a deterministic SplitMix64 PRNG (replacing `rand`),
//!   re-exported from `drd-runner`,
//! * [`prop`] — a minimal property-testing harness with seed reporting
//!   and greedy input shrinking (replacing `proptest`),
//! * [`netgen`] — a random synchronous gate-level netlist generator over
//!   the `vlib90` cells (parameterized FF count, cloud depth, bus widths,
//!   scan/set-reset flip-flop mix),
//! * [`diff`] — the differential flow-equivalence fuzzer: desynchronize a
//!   random netlist, co-simulate it against its clocked self and assert
//!   capture-log equality (§2.1) plus SDC well-formedness,
//! * [`golden`] — golden-file snapshot assertions (`DRD_BLESS=1` to
//!   re-record),
//! * [`handshake`] — the handshake-timing oracle: the event-driven
//!   control-network simulation must respect the STA matched-delay floor
//!   and reproduce the nominal run bit-for-bit at zero variability,
//! * [`liveness`] — the liveness oracle: measured delay-element depths
//!   match the report, no unrepaired pulse-swallowing hazard ships, and
//!   request-latch records agree with the netlist both ways,
//! * [`bench`] — a `std::time::Instant` micro-benchmark runner emitting
//!   `BENCH_*.json` (replacing `criterion`),
//! * [`runner`] — a dependency-free work-stealing parallel task runner on
//!   `std::thread` with per-worker seeded scheduling streams, re-exported
//!   from `drd-runner` (the flow passes use the same pool),
//! * [`cover`] — structural coverage buckets over generated netlists and
//!   a coverage-guided recipe sampler,
//! * [`mutate`] — the mutation-testing engine: seeded, paper-meaningful
//!   corruptions of a desynchronized design (or its control protocol)
//!   that every oracle must kill,
//! * [`hostile`] — the hostile-input crash campaign: seeded adversarial
//!   bytes/token-soup/truncated/spliced inputs through the parser and
//!   the budget-starved guarded flow, gating on zero escaped panics.

pub mod bench;
pub mod cover;
pub mod diff;
pub mod golden;
pub mod handshake;
pub mod hostile;
pub mod liveness;
pub mod mutate;
pub mod netgen;
pub mod prop;

pub use drd_runner::{rng, runner, Rng};
pub use prop::{prop, prop_par_with, prop_with, Config, Shrink};
