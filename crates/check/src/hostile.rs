//! Hostile-input crash campaign for the robustness boundary.
//!
//! The Verilog reader and the guarded flow core promise *structured
//! errors, never panics* on arbitrary input. This module generates seeded
//! adversarial inputs — raw bytes, Verilog token soup, truncated and
//! spliced valid netlists — and drives each through `parse_design` (and,
//! when parsing unexpectedly succeeds, through a budget-starved guarded
//! flow) under `catch_unwind`, counting every escape. A campaign with
//! `panics > 0` is a verification failure: the tier-1 test in
//! `tests/hostile.rs` and the `hostile` bench bin both gate on it.

use std::panic::{catch_unwind, AssertUnwindSafe};

use drd_core::{DesyncOptions, Desynchronizer};
use drd_liberty::vlib90;
use drd_netlist::verilog::parse_design;

use crate::netgen::{NetGenParams, NetRecipe};
use crate::rng::Rng;
use crate::runner;

/// The four adversarial input families.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HostileKind {
    /// Arbitrary bytes (lossily decoded to UTF-8 at the API boundary).
    RawBytes,
    /// Random sequences of plausible Verilog tokens, including the
    /// historical panic triggers: huge ranges, huge constant widths,
    /// deep `{` nesting, escaped identifiers followed by exotic
    /// whitespace.
    TokenSoup,
    /// A valid generated netlist truncated at a random point.
    Truncated,
    /// Two valid generated netlists spliced together with a corrupted
    /// seam.
    Spliced,
}

impl HostileKind {
    /// All families, campaign order.
    pub const ALL: [HostileKind; 4] = [
        HostileKind::RawBytes,
        HostileKind::TokenSoup,
        HostileKind::Truncated,
        HostileKind::Spliced,
    ];

    /// Stable label for reports.
    pub fn name(self) -> &'static str {
        match self {
            HostileKind::RawBytes => "raw-bytes",
            HostileKind::TokenSoup => "token-soup",
            HostileKind::Truncated => "truncated",
            HostileKind::Spliced => "spliced",
        }
    }
}

/// Tokens the soup generator draws from. Biased toward constructs that
/// exercise the parser's resource guards.
const SOUP: &[&str] = &[
    "module", "endmodule", "input", "output", "inout", "wire", "tri", "assign", "top",
    "(", ")", "[", "]", "{", "}", ",", ";", ":", ".", "=", "#", "(*", "*)", "/*", "*/", "//",
    "INVX1", "DFFX1", "u1", "\\a+b[3]", "0", "1", "7", "65535", "65537", "999999999999",
    "1'b0", "8'hFF", "4'd10", "4294967295'b1", "99999999999'hx", "'", "\u{00A0}", "é",
];

/// Deterministically generates one hostile input for `(kind, seed)`.
pub fn generate(kind: HostileKind, seed: u64) -> String {
    let mut rng = Rng::new(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ kind as u64);
    match kind {
        HostileKind::RawBytes => {
            let len = rng.range(1, 512);
            String::from_utf8_lossy(&rng.bytes(len)).into_owned()
        }
        HostileKind::TokenSoup => {
            let n = rng.range(1, 200);
            let mut out = String::new();
            for _ in 0..n {
                out.push_str(rng.choose::<&str>(SOUP));
                out.push(match rng.below(4) {
                    0 => '\n',
                    1 => '\t',
                    _ => ' ',
                });
            }
            // Occasionally stack a deep (but sub-limit is the parser's
            // problem, not ours) concatenation prefix.
            if rng.chance(0.2) {
                let depth = rng.range(1, 300);
                out.insert_str(0, &"{".repeat(depth));
            }
            out
        }
        HostileKind::Truncated => {
            let src = valid_sample(&mut rng);
            let mut cut = rng.range(0, src.len().max(1));
            while cut > 0 && !src.is_char_boundary(cut) {
                cut -= 1;
            }
            src[..cut].to_owned()
        }
        HostileKind::Spliced => {
            let a = valid_sample(&mut rng);
            let b = valid_sample(&mut rng);
            let mut cut_a = rng.range(0, a.len().max(1));
            while cut_a > 0 && !a.is_char_boundary(cut_a) {
                cut_a -= 1;
            }
            let mut cut_b = rng.range(0, b.len().max(1));
            while cut_b > 0 && !b.is_char_boundary(cut_b) {
                cut_b -= 1;
            }
            let mut out = a[..cut_a].to_owned();
            let seam = rng.range(0, 8);
            for _ in 0..seam {
                out.push_str(rng.choose::<&str>(SOUP));
                out.push(' ');
            }
            out.push_str(&b[cut_b..]);
            out
        }
    }
}

fn valid_sample(rng: &mut Rng) -> String {
    NetRecipe::sample(rng, &NetGenParams::default()).verilog()
}

/// What one input did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Probe {
    /// Structured parse error — the expected outcome for hostile input.
    Rejected,
    /// Parsed; the budget-starved guarded flow returned a structured
    /// error.
    FlowError,
    /// Parsed and the guarded flow completed (possibly degraded).
    Completed,
    /// A panic escaped — the campaign's failure condition.
    Panicked,
}

/// Aggregate campaign result.
#[derive(Debug, Clone, Default)]
pub struct CampaignReport {
    /// Inputs probed.
    pub total: usize,
    /// Structured parse rejections.
    pub rejected: usize,
    /// Inputs that parsed and then produced a structured flow error.
    pub flow_errors: usize,
    /// Inputs that parsed and completed the starved flow.
    pub completed: usize,
    /// Panics that escaped parser or flow. Must be zero.
    pub panics: usize,
    /// `(kind, seed)` of the first escaped panic, for reproduction.
    pub first_panic: Option<(&'static str, u64)>,
}

impl CampaignReport {
    /// Renders the report as the `BENCH_hostile.json` payload.
    pub fn to_json(&self, workers: usize, wall_ns: u128) -> String {
        let (kind, seed) = self.first_panic.unwrap_or(("", 0));
        format!(
            "{{\n  \"name\": \"hostile\",\n  \"inputs\": {},\n  \"rejected\": {},\n  \
             \"flow_errors\": {},\n  \"completed\": {},\n  \"panics\": {},\n  \
             \"first_panic_kind\": \"{kind}\",\n  \"first_panic_seed\": {seed},\n  \
             \"workers\": {workers},\n  \"wall_ns\": {wall_ns}\n}}\n",
            self.total, self.rejected, self.flow_errors, self.completed, self.panics,
        )
    }
}

/// Probes one `(kind, seed)` input: parse under `catch_unwind`, and when
/// the input parses, run the guarded flow with starved budgets (so even a
/// structurally valid bomb hits a [`drd_core::DesyncError::Budget`] or
/// deadline instead of burning the campaign's wall clock).
fn probe(kind: HostileKind, seed: u64) -> Probe {
    let src = generate(kind, seed);
    let parsed = catch_unwind(AssertUnwindSafe(|| parse_design(&src)));
    let design = match parsed {
        Err(_) => return Probe::Panicked,
        Ok(Err(_)) => return Probe::Rejected,
        Ok(Ok(design)) => design,
    };
    // Empty input parses to a design with no modules — nothing to flow
    // (and `top_module()` would panic).
    let Some(module) = design.modules().next().map(|(_, m)| m.clone()) else {
        return Probe::Rejected;
    };
    let lib = vlib90::high_speed();
    let opts = DesyncOptions {
        max_cells: Some(512),
        max_nets: Some(2048),
        stg_state_limit: Some(4096),
        pass_deadline_ms: Some(2_000),
        ..DesyncOptions::default()
    };
    let flow = catch_unwind(AssertUnwindSafe(|| {
        let tool = Desynchronizer::new(&lib)?;
        tool.run(&module, &opts).map(|_| ())
    }));
    match flow {
        Err(_) => Probe::Panicked,
        Ok(Err(_)) => Probe::FlowError,
        Ok(Ok(())) => Probe::Completed,
    }
}

/// Runs `count` inputs (cycled over [`HostileKind::ALL`]) from
/// `base_seed` on `workers` threads and aggregates the outcome.
pub fn run_hostile_campaign(count: usize, base_seed: u64, workers: usize) -> CampaignReport {
    let probes = runner::run_indexed(count, workers, |i| {
        let kind = HostileKind::ALL[i % HostileKind::ALL.len()];
        let seed = base_seed.wrapping_add(i as u64);
        (kind, seed, probe(kind, seed))
    });
    let mut report = CampaignReport {
        total: probes.len(),
        ..CampaignReport::default()
    };
    for (kind, seed, p) in probes {
        match p {
            Probe::Rejected => report.rejected += 1,
            Probe::FlowError => report.flow_errors += 1,
            Probe::Completed => report.completed += 1,
            Probe::Panicked => {
                report.panics += 1;
                if report.first_panic.is_none() {
                    report.first_panic = Some((kind.name(), seed));
                }
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        for kind in HostileKind::ALL {
            assert_eq!(generate(kind, 7), generate(kind, 7));
        }
        assert_ne!(
            generate(HostileKind::TokenSoup, 1),
            generate(HostileKind::TokenSoup, 2)
        );
    }

    #[test]
    fn every_family_produces_nonempty_inputs() {
        for kind in HostileKind::ALL {
            assert!((0..20).any(|s| !generate(kind, s).is_empty()), "{kind:?}");
        }
    }

    #[test]
    fn small_campaign_is_panic_free() {
        let report = run_hostile_campaign(64, 0xD5, 2);
        assert_eq!(report.total, 64);
        assert_eq!(report.panics, 0, "first: {:?}", report.first_panic);
        assert!(report.rejected > 0, "hostile inputs should mostly be rejected");
        let json = report.to_json(2, 1);
        assert!(json.contains("\"panics\": 0"), "{json}");
    }
}
