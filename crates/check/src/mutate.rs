//! Mutation testing for the desynchronization oracles: inject a
//! paper-meaningful fault into a *correct* desynchronized design (or its
//! control protocol) and assert the verification stack notices.
//!
//! Property-based fuzzing answers "does the flow produce correct
//! circuits?"; mutation testing answers the meta-question "would the
//! oracles *notice* if it didn't?". Each [`Mutation`] variant corrupts
//! one ingredient the paper's correctness argument rests on:
//!
//! * the C-element rendezvous trees (§2.4.3, Table 2.1) — drop,
//!   duplicate, or degrade one to an OR gate;
//! * the master/slave latch discipline (§2.3, Fig. 3.1) — swap a pair's
//!   enable phases, force an enable transparent or opaque, or skip one
//!   region's flip-flop substitution entirely;
//! * the 4-phase req/ack handshake (§2.4, Fig. 2.7) — tie off a request
//!   or acknowledge wire;
//! * the matched delays (§3.1.4) — bypass a delay element, or strip its
//!   `set_min_delay` floor from the SDC (§4.5);
//! * the backend constraints (§4.4–4.6) — strip a loop-break or
//!   `size_only` line;
//! * the DFT scan chain (§4.3) — disconnect one scan mux's scan-in or
//!   scan-enable leg, silently un-stitching the chain;
//! * the handshake protocol itself (§2.2, Fig. 2.4) — substitute the
//!   non-flow-equivalent fall-decoupled protocol, or drop one causality
//!   arc from the semi-decoupled STG.
//!
//! A mutant is **killed** when [`crate::diff::verify_result`] (or, for
//! protocol mutants, the STG flow-equivalence check) rejects it. A
//! surviving mutant is an oracle gap; the harness shrinks the netlist it
//! survived on via the [`crate::prop::Shrink`] machinery and reports it.
//!
//! Everything is deterministic in `(Mutation, seed)`: recipes come from a
//! seeded coverage-guided sampler ([`crate::cover`]), the fault site from
//! a seeded pick over the design's mutation points. Campaigns fan out on
//! the work-stealing runner ([`crate::runner`]).

use drd_core::pipeline::{
    CleanPass, ClockIdPass, ControlNetworkPass, DdgPass, GroupPass, RegionDelaysPass, SdcPass,
};
use drd_core::{
    ffsub, network::enable_net_names, DesyncError, DesyncOptions, DesyncResult, Desynchronizer,
    FlowContext, Pass, PassReport, Pipeline,
};
use drd_liberty::gatefile::Gatefile;
use drd_liberty::{Library, Lv};
use drd_netlist::{CellId, Conn, Design, Module};
use drd_sim::{SimOptions, Simulator};
use drd_stg::flow_equiv::{check_flow_equivalence, FlowEquivalence};
use drd_stg::protocols::Protocol;
use drd_stg::Stg;

use crate::cover::{self, Coverage};
use crate::diff::{verify_result, DiffConfig};
use crate::netgen::{NetGenParams, NetRecipe};
use crate::prop::Shrink;
use crate::rng::Rng;

/// Recipes sampled before declaring a mutation inapplicable.
const MAX_ATTEMPTS: usize = 32;
/// Shrink-candidate budget for a surviving mutant.
const MAX_SHRINK_STEPS: usize = 64;

/// The mutation taxonomy. Every variant names a fault class the paper's
/// construction must exclude — see the module docs for the mapping to
/// paper sections.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mutation {
    /// Remove one C-element from a request/acknowledge join tree and
    /// short its inputs past it (a rendezvous that no longer waits).
    DropCElement,
    /// Clone one join-tree C-element onto a dangling output (the inserted
    /// control network no longer matches the report).
    DuplicateCElement,
    /// Replace one join-tree C-element with an OR gate — rises on *any*
    /// input instead of *all* (Table 2.1 broken in the fast direction).
    CElementToOr,
    /// Swap the master/slave enable phases of one latch pair (the §2.3
    /// two-phase discipline inverted for one stage).
    SwapLatchPhases,
    /// Tie one master controller's request input to constant 0 — the
    /// handshake upstream of that region never fires.
    StuckRequest,
    /// Tie one slave controller's acknowledge input to constant 1 — the
    /// controller stops waiting for its successors.
    StuckAck,
    /// Detach one latch enable from its controller and force it
    /// transparent (constant 1).
    DetachLatchEnable,
    /// Force one latch enable opaque (constant 0) — the latch never
    /// captures again.
    EnableStuckOpaque,
    /// Remove one matched delay element and wire the request straight
    /// through (§3.1.4's timing assumption silently dropped).
    BypassDelayElement,
    /// Run a flow variant whose `ffsub` pass skips one region: its
    /// flip-flops stay clocked while the rest of the design handshakes.
    SkipRegionFfSub,
    /// Strip one `set_min_delay` matched-delay floor from the SDC (§4.5).
    SdcDropMinDelay,
    /// Strip one controller loop-break (`u_nro/A` disable) line from the
    /// SDC (§4.4).
    SdcDropLoopBreak,
    /// Strip one `set_size_only` controller-preservation line from the
    /// SDC (§4.6).
    SdcDropSizeOnly,
    /// Swap the handshake protocol for fall-decoupled — live, but not
    /// flow-equivalent (Fig. 2.4's counterexample).
    ProtocolFallDecoupled,
    /// Drop one causality arc from the semi-decoupled protocol STG.
    ProtocolDropArc,
    /// Corrupt the *input* synchronous netlist before the flow runs — an
    /// undriven net, a multiply-driven net, or a dangling instance pin
    /// (seed-selected). Killed when the guarded pipeline reports a
    /// structured diagnostic (never a panic) or the oracles reject the
    /// output.
    CorruptInput,
    /// Tie one scan mux's scan-in or scan-enable leg (seed-selected) to
    /// constant 0 — the chain is silently un-stitched while functional
    /// behaviour is untouched (§4.3). Only the structural scan-chain
    /// oracle can see it: scan shifting never happens in a functional
    /// workload.
    BrokenScanStitch,
    /// Undo one liveness repair in the netlist while the report still
    /// claims it (DESIGN §3i): shrink a deepened delay element back to
    /// its pre-repair depth, or strip a request-extending latch and
    /// rewire the bare loopback. The repaired handshake spec projected
    /// from the pristine report still simulates live, so only the
    /// structural liveness oracle — measuring the *netlist's* depths and
    /// latches — can see the reopened pulse-swallowing hazard.
    SwallowedRequest,
}

impl Mutation {
    /// Every mutation kind, netlist-level first. Append-only: [`salt`]
    /// is position-based, so reordering would reshuffle seed streams.
    pub const ALL: [Mutation; 18] = [
        Mutation::DropCElement,
        Mutation::DuplicateCElement,
        Mutation::CElementToOr,
        Mutation::SwapLatchPhases,
        Mutation::StuckRequest,
        Mutation::StuckAck,
        Mutation::DetachLatchEnable,
        Mutation::EnableStuckOpaque,
        Mutation::BypassDelayElement,
        Mutation::SkipRegionFfSub,
        Mutation::SdcDropMinDelay,
        Mutation::SdcDropLoopBreak,
        Mutation::SdcDropSizeOnly,
        Mutation::ProtocolFallDecoupled,
        Mutation::ProtocolDropArc,
        Mutation::CorruptInput,
        Mutation::BrokenScanStitch,
        Mutation::SwallowedRequest,
    ];

    /// Stable kebab-case name (used in reports and `BENCH_mutation.json`).
    pub fn name(self) -> &'static str {
        match self {
            Mutation::DropCElement => "drop-celement",
            Mutation::DuplicateCElement => "duplicate-celement",
            Mutation::CElementToOr => "celement-to-or",
            Mutation::SwapLatchPhases => "swap-latch-phases",
            Mutation::StuckRequest => "stuck-request",
            Mutation::StuckAck => "stuck-ack",
            Mutation::DetachLatchEnable => "detach-latch-enable",
            Mutation::EnableStuckOpaque => "enable-stuck-opaque",
            Mutation::BypassDelayElement => "bypass-delay-element",
            Mutation::SkipRegionFfSub => "skip-region-ffsub",
            Mutation::SdcDropMinDelay => "sdc-drop-min-delay",
            Mutation::SdcDropLoopBreak => "sdc-drop-loop-break",
            Mutation::SdcDropSizeOnly => "sdc-drop-size-only",
            Mutation::ProtocolFallDecoupled => "protocol-fall-decoupled",
            Mutation::ProtocolDropArc => "protocol-drop-arc",
            Mutation::CorruptInput => "corrupt-input",
            Mutation::BrokenScanStitch => "broken-scan-stitch",
            Mutation::SwallowedRequest => "swallowed-request",
        }
    }

    /// The paper property this mutation attacks (for the taxonomy table).
    pub fn attacks(self) -> &'static str {
        match self {
            Mutation::DropCElement => "C-element rendezvous, Table 2.1 / §2.4.3",
            Mutation::DuplicateCElement => "join-tree structure, §3.1.5",
            Mutation::CElementToOr => "C-element truth table, Table 2.1",
            Mutation::SwapLatchPhases => "master/slave phases, §2.3 / Fig. 3.1",
            Mutation::StuckRequest => "4-phase request, §2.4 / Fig. 2.7",
            Mutation::StuckAck => "4-phase acknowledge, §2.4 / Fig. 2.7",
            Mutation::DetachLatchEnable => "latch enable wiring, Fig. 3.1",
            Mutation::EnableStuckOpaque => "latch enable wiring, Fig. 3.1",
            Mutation::BypassDelayElement => "matched delays, §3.1.4",
            Mutation::SkipRegionFfSub => "complete FF substitution, §3.2.4",
            Mutation::SdcDropMinDelay => "min-delay floor, §4.5",
            Mutation::SdcDropLoopBreak => "timing-loop breaking, §4.4",
            Mutation::SdcDropSizeOnly => "controller preservation, §4.6",
            Mutation::ProtocolFallDecoupled => "flow equivalence, §2.2 / Fig. 2.4",
            Mutation::ProtocolDropArc => "protocol causality arcs, §2.2",
            Mutation::CorruptInput => "guarded ingestion / structured diagnostics, DESIGN §3d",
            Mutation::BrokenScanStitch => "scan-chain stitching, §4.3",
            Mutation::SwallowedRequest => "liveness repairs, DESIGN §3i",
        }
    }

    /// Protocol-level mutations run against the STG oracles, not a
    /// netlist.
    pub fn is_protocol_level(self) -> bool {
        matches!(
            self,
            Mutation::ProtocolFallDecoupled | Mutation::ProtocolDropArc
        )
    }

    /// Input-level mutations corrupt the synchronous netlist *before*
    /// the flow instead of the desynchronized result after it.
    pub fn is_input_level(self) -> bool {
        matches!(self, Mutation::CorruptInput)
    }

    /// Per-kind salt so every kind consumes an independent seed stream.
    fn salt(self) -> u64 {
        let i = Mutation::ALL.iter().position(|m| *m == self).unwrap() as u64;
        0x6D75_7461_7465_2121 ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15)
    }
}

/// The result of running one mutant.
#[derive(Debug, Clone)]
pub struct MutationOutcome {
    /// Which fault was injected.
    pub mutation: Mutation,
    /// The campaign seed this mutant was derived from.
    pub seed: u64,
    /// True when an oracle rejected the mutant.
    pub killed: bool,
    /// The rejecting oracle's first line (killed), or the survival report
    /// with the shrunk netlist (survived).
    pub oracle: String,
    /// The netlist the mutant ran on (`None` for protocol-level kinds).
    pub recipe: Option<NetRecipe>,
    /// Recipes sampled before an applicable fault site was found.
    pub attempts: usize,
}

fn brief(s: &str) -> String {
    s.lines().next().unwrap_or("").chars().take(200).collect()
}

/// Runs one `(mutation, seed)` mutant end to end: sample netlists until
/// the fault is applicable, inject it, run the oracle stack, shrink any
/// survivor. Deterministic in its arguments.
pub fn run_mutation(
    mutation: Mutation,
    seed: u64,
    lib: &Library,
    config: &DiffConfig,
) -> MutationOutcome {
    if mutation.is_protocol_level() {
        return run_protocol_mutation(mutation, seed);
    }
    if mutation.is_input_level() {
        return run_corruption_mutation(mutation, seed, lib, config);
    }
    let mut rng = Rng::new(seed ^ mutation.salt());
    let params = NetGenParams::default();
    // A local coverage map makes successive attempts structurally diverse
    // (multi-region shapes show up quickly for join-targeting mutations)
    // while keeping the whole task deterministic in (mutation, seed).
    let mut coverage = Coverage::new();
    for attempt_no in 1..=MAX_ATTEMPTS {
        let recipe = if mutation == Mutation::SwallowedRequest {
            // This kind only applies where the liveness guard fired:
            // sample imbalanced open chains until a flow carries repairs.
            let mut r = cover::sample_guided(&mut rng, &params, &mut coverage, 4);
            r.imbalance(rng.range(10, 28));
            r
        } else {
            cover::sample_guided(&mut rng, &params, &mut coverage, 4)
        };
        let site_seed = rng.next_u64();
        match attempt(mutation, site_seed, &recipe, lib, config) {
            Verdict::NotApplicable => continue,
            Verdict::Killed(why) => {
                return MutationOutcome {
                    mutation,
                    seed,
                    killed: true,
                    oracle: why,
                    recipe: Some(recipe),
                    attempts: attempt_no,
                }
            }
            Verdict::Survived => {
                let (shrunk, steps) = shrink_survivor(mutation, site_seed, recipe, lib, config);
                return MutationOutcome {
                    mutation,
                    seed,
                    killed: false,
                    oracle: format!(
                        "SURVIVED ({} shrink attempts) — every oracle accepted the mutant\n\
                         --- smallest surviving netlist ---\n{}",
                        steps,
                        shrunk.verilog()
                    ),
                    recipe: Some(shrunk),
                    attempts: attempt_no,
                };
            }
        }
    }
    MutationOutcome {
        mutation,
        seed,
        killed: false,
        oracle: format!("no applicable fault site in {MAX_ATTEMPTS} sampled netlists"),
        recipe: None,
        attempts: MAX_ATTEMPTS,
    }
}

enum Verdict {
    NotApplicable,
    Killed(String),
    Survived,
}

/// One mutant attempt on one recipe: clean flow must pass verification,
/// then the injected fault must make it fail.
fn attempt(
    mutation: Mutation,
    site_seed: u64,
    recipe: &NetRecipe,
    lib: &Library,
    config: &DiffConfig,
) -> Verdict {
    let Ok(module) = recipe.build() else {
        return Verdict::NotApplicable;
    };
    let Ok(tool) = Desynchronizer::new(lib) else {
        return Verdict::NotApplicable;
    };
    let Ok(clean) = tool.run(&module, &DesyncOptions::default()) else {
        return Verdict::NotApplicable;
    };
    // Only attack designs the oracles accept when unmutated, so a kill is
    // attributable to the fault and not to a flaky baseline.
    if verify_result(recipe, lib, config, &clean).is_err() {
        return Verdict::NotApplicable;
    }
    let Some(mutant) = apply(mutation, site_seed, recipe, &clean, lib) else {
        return Verdict::NotApplicable;
    };
    match verify_result(recipe, lib, config, &mutant) {
        Err(why) => Verdict::Killed(brief(&why)),
        Ok(_) => Verdict::Survived,
    }
}

/// Greedy recipe shrinking that preserves "the mutant survives" — the
/// same discipline [`crate::prop`] uses for failing property inputs.
fn shrink_survivor(
    mutation: Mutation,
    site_seed: u64,
    recipe: NetRecipe,
    lib: &Library,
    config: &DiffConfig,
) -> (NetRecipe, usize) {
    let mut current = recipe;
    let mut steps = 0usize;
    let mut progressed = true;
    while progressed && steps < MAX_SHRINK_STEPS {
        progressed = false;
        for candidate in current.shrink() {
            steps += 1;
            if matches!(
                attempt(mutation, site_seed, &candidate, lib, config),
                Verdict::Survived
            ) {
                current = candidate;
                progressed = true;
                break;
            }
            if steps >= MAX_SHRINK_STEPS {
                break;
            }
        }
    }
    (current, steps)
}

/// Applies `mutation` to a clean flow result, returning the corrupted
/// result (with the **pristine** report, so bookkeeping checks can't kill
/// the mutant trivially — structure and behaviour must). `None` when the
/// design has no applicable fault site.
pub fn apply(
    mutation: Mutation,
    site_seed: u64,
    recipe: &NetRecipe,
    clean: &DesyncResult,
    lib: &Library,
) -> Option<DesyncResult> {
    let mut rng = Rng::new(site_seed);
    match mutation {
        Mutation::SkipRegionFfSub => apply_skip_ffsub(recipe, clean, lib, &mut rng),
        Mutation::SwallowedRequest => apply_swallowed_request(clean, lib, &mut rng),
        Mutation::SdcDropMinDelay | Mutation::SdcDropLoopBreak | Mutation::SdcDropSizeOnly => {
            let keep: fn(&str) -> bool = match mutation {
                Mutation::SdcDropMinDelay => |l| l.starts_with("set_min_delay"),
                Mutation::SdcDropLoopBreak => |l| l.contains("/u_nro/A"),
                _ => |l| l.starts_with("set_size_only"),
            };
            let lines: Vec<&str> = clean.sdc.lines().collect();
            let hits: Vec<usize> = lines
                .iter()
                .enumerate()
                .filter(|(_, l)| keep(l))
                .map(|(i, _)| i)
                .collect();
            if hits.is_empty() {
                return None;
            }
            let drop = *rng.choose(&hits);
            let mut sdc = String::new();
            for (i, l) in lines.iter().enumerate() {
                if i != drop {
                    sdc.push_str(l);
                    sdc.push('\n');
                }
            }
            Some(DesyncResult {
                design: clean.design.clone(),
                sdc,
                report: clean.report.clone(),
            })
        }
        _ => {
            let mut design = clean.design.clone();
            let top = design.top();
            apply_netlist(mutation, design.module_mut(top), &mut rng)?;
            Some(DesyncResult {
                design,
                sdc: clean.sdc.clone(),
                report: clean.report.clone(),
            })
        }
    }
}

/// Seeded pick over the cells matching `select`.
fn pick_cell(m: &Module, rng: &mut Rng, select: impl Fn(&drd_netlist::Cell) -> bool) -> Option<CellId> {
    let targets: Vec<CellId> = m
        .cells()
        .filter(|(_, c)| select(c))
        .map(|(id, _)| id)
        .collect();
    if targets.is_empty() {
        None
    } else {
        Some(*rng.choose(&targets))
    }
}

fn apply_netlist(mutation: Mutation, m: &mut Module, rng: &mut Rng) -> Option<()> {
    match mutation {
        Mutation::DropCElement => {
            let id = pick_cell(m, rng, |c| c.kind_name() == "C2X1")?;
            let cell = m.cell(id);
            let z = cell.pin("Z")?.net()?;
            let a = cell.pin("A")?;
            m.remove_cell(id);
            m.rewire_net(z, a);
        }
        Mutation::DuplicateCElement => {
            let id = pick_cell(m, rng, |c| c.kind_name() == "C2X1")?;
            let cell = m.cell(id);
            let (a, b) = (cell.pin("A")?, cell.pin("B")?);
            let base = cell.name.to_owned();
            let dangling = m.add_net_auto(&format!("{base}_dup"));
            let name = m.unique_cell_name(&format!("{base}_dup"));
            m.add_cell(name, "C2X1", &[("A", a), ("B", b), ("Z", Conn::Net(dangling))])
                .ok()?;
        }
        Mutation::CElementToOr => {
            let id = pick_cell(m, rng, |c| c.kind_name() == "C2X1")?;
            let cell = m.cell(id);
            let name = cell.name.to_owned();
            let pins: Vec<(String, Conn)> = (0..cell.pins().len())
                .map(|i| (cell.pin_name(i).to_owned(), cell.pins()[i].1))
                .collect();
            m.remove_cell(id);
            let pin_refs: Vec<(&str, Conn)> =
                pins.iter().map(|(p, c)| (p.as_str(), *c)).collect();
            m.add_cell(name, "OR2X1", &pin_refs).ok()?;
        }
        Mutation::SwapLatchPhases => {
            let masters: Vec<(CellId, CellId)> = m
                .cells()
                .filter(|(_, c)| c.name.ends_with("_lm"))
                .filter_map(|(id, c)| {
                    let slave = format!("{}_ls", c.name.strip_suffix("_lm")?);
                    Some((id, m.find_cell(&slave)?))
                })
                .collect();
            if masters.is_empty() {
                return None;
            }
            let (lm, ls) = *rng.choose(&masters);
            let gm = m.cell(lm).pin("G")?;
            let gs = m.cell(ls).pin("G")?;
            m.set_pin(lm, "G", gs);
            m.set_pin(ls, "G", gm);
        }
        Mutation::StuckRequest => {
            let id = pick_cell(m, rng, |c| c.kind_name() == "drd_ctrl_master")?;
            m.set_pin(id, "ri", Conn::Const0);
        }
        Mutation::StuckAck => {
            let id = pick_cell(m, rng, |c| c.kind_name() == "drd_ctrl_slave")?;
            m.set_pin(id, "ao", Conn::Const1);
        }
        Mutation::DetachLatchEnable => {
            let id = pick_cell(m, rng, |c| {
                c.name.ends_with("_lm") || c.name.ends_with("_ls")
            })?;
            m.set_pin(id, "G", Conn::Const1);
        }
        Mutation::EnableStuckOpaque => {
            let id = pick_cell(m, rng, |c| {
                c.name.ends_with("_lm") || c.name.ends_with("_ls")
            })?;
            m.set_pin(id, "G", Conn::Const0);
        }
        Mutation::BrokenScanStitch => {
            let id = pick_cell(m, rng, |c| {
                c.kind_name() == "MUX2X1" && c.name.ends_with("_smx")
            })?;
            // Breaking either leg un-stitches the chain: B is the
            // scan-in data path, S the shared scan-enable select.
            let leg = if rng.next_u64() & 1 == 0 { "B" } else { "S" };
            m.set_pin(id, leg, Conn::Const0);
        }
        Mutation::BypassDelayElement => {
            let id = pick_cell(m, rng, |c| c.kind_name().starts_with("drd_delem"))?;
            let cell = m.cell(id);
            let out = cell.pin("out1")?.net()?;
            let inp = cell.pin("in1")?;
            m.remove_cell(id);
            m.rewire_net(out, inp);
        }
        _ => unreachable!("handled in apply()"),
    }
    Some(())
}

/// Undoes one seed-selected liveness repair in the netlist while the
/// report keeps claiming it — the repaired spec still *projects* live,
/// so only the structural liveness oracle sees the reopened hazard.
/// `None` when the clean flow recorded no undoable repair.
fn apply_swallowed_request(
    clean: &DesyncResult,
    lib: &Library,
    rng: &mut Rng,
) -> Option<DesyncResult> {
    use drd_core::LivenessAction;
    let undoable: Vec<&drd_core::LivenessRepair> = clean
        .report
        .liveness_repairs
        .iter()
        .filter(|lr| !matches!(lr.action, LivenessAction::Degrade))
        .collect();
    if undoable.is_empty() {
        return None;
    }
    let lr = *rng.choose(&undoable);
    let mut design = clean.design.clone();
    let top = design.top();
    match &lr.action {
        LivenessAction::DeepenSuccessor { successor, from_levels, .. } => {
            let inst = format!("drd_{successor}_delem");
            let muxed = {
                let m = design.module(top);
                let id = m.find_cell(&inst)?;
                m.cell(id).kind_name().starts_with("drd_delemx_")
            };
            let shallow = drd_core::network::delem_module_name(muxed, *from_levels);
            if design.find_module(&shallow).is_none() {
                let module = if muxed {
                    let overhead = drd_core::delay_element::mux_overhead_levels(lib).ok()?;
                    drd_core::delay_element::build_muxed(&shallow, *from_levels, overhead)
                } else {
                    drd_core::delay_element::build_fixed(&shallow, *from_levels)
                };
                design.insert(module);
            }
            let m = design.module_mut(top);
            let id = m.find_cell(&inst)?;
            let kind = m.instance_kind(&shallow);
            m.set_cell_kind(id, kind);
        }
        LivenessAction::RequestLatch => {
            let m = design.module_mut(top);
            let ros = m.find_net(&format!("drd_{}_ros", lr.region))?;
            let delem = m.find_cell(&format!("drd_{}_delem", lr.region))?;
            m.set_pin(delem, "in1", Conn::Net(ros));
            let latch = m.find_cell(&format!("drd_{}_reqext", lr.region))?;
            m.remove_cell(latch);
            if let Some(inv) = m.find_cell(&format!("drd_{}_reqext_inv", lr.region)) {
                m.remove_cell(inv);
            }
        }
        LivenessAction::Degrade => unreachable!("filtered above"),
    }
    Some(DesyncResult {
        design,
        sdc: clean.sdc.clone(),
        report: clean.report.clone(),
    })
}

/// A standard-flow variant whose `ffsub` stage creates every region's
/// enable nets but skips one region's substitution.
struct SkipOneFfSub {
    selector: u64,
}

impl Pass for SkipOneFfSub {
    fn name(&self) -> &'static str {
        "ffsub"
    }

    fn run(&self, cx: &mut FlowContext<'_>) -> Result<PassReport, DesyncError> {
        let regions = cx
            .regions()
            .ok_or_else(|| DesyncError::Pipeline {
                message: "regions not available — run the `group` pass first".into(),
            })?
            .clone();
        let controlled: Vec<usize> = regions
            .regions
            .iter()
            .enumerate()
            .filter(|(_, r)| !r.seq_cells.is_empty())
            .map(|(i, _)| i)
            .collect();
        if controlled.is_empty() {
            return Err(DesyncError::Pipeline {
                message: "no controlled region to skip".into(),
            });
        }
        let skip = controlled[(self.selector as usize) % controlled.len()];
        let lib = cx.library();
        let gatefile = cx.gatefile();
        let mut substituted = 0usize;
        for (i, r) in regions.regions.iter().enumerate() {
            if r.seq_cells.is_empty() {
                continue;
            }
            let working = cx.working_module_mut()?;
            let (gm_name, gs_name) = enable_net_names(&r.name);
            let gm = working.add_net(gm_name)?;
            let gs = working.add_net(gs_name)?;
            if i == skip {
                continue;
            }
            let rep = ffsub::substitute_ffs(working, lib, gatefile, &r.seq_cells, gm, gs)?;
            substituted += rep.substituted;
        }
        Ok(PassReport::new(
            vec!["substituted-ffs"],
            format!("{substituted} flip-flops substituted, region {skip} skipped"),
        ))
    }
}

fn apply_skip_ffsub(
    recipe: &NetRecipe,
    clean: &DesyncResult,
    lib: &Library,
    rng: &mut Rng,
) -> Option<DesyncResult> {
    let module = recipe.build().ok()?;
    let gatefile = Gatefile::from_library(lib).ok()?;
    let mut cx = FlowContext::new(lib, &gatefile, module, DesyncOptions::default());
    let mut pipe = Pipeline::empty();
    pipe.push(Box::new(CleanPass))
        .push(Box::new(ClockIdPass))
        .push(Box::new(GroupPass))
        .push(Box::new(DdgPass))
        .push(Box::new(RegionDelaysPass))
        .push(Box::new(SkipOneFfSub { selector: rng.next_u64() }))
        .push(Box::new(ControlNetworkPass))
        .push(Box::new(SdcPass));
    pipe.run(&mut cx).ok()?;
    let mutated = cx.into_result().ok()?;
    Some(DesyncResult {
        design: mutated.design,
        sdc: mutated.sdc,
        report: clean.report.clone(),
    })
}

/// Simulates `module` synchronously with the recipe's pokes and clock.
/// `None` when the simulator refuses the module (a structurally broken
/// corruption — e.g. a multiply-driven net — counts as observable).
fn sync_sim(
    recipe: &NetRecipe,
    module: Module,
    lib: &Library,
    config: &DiffConfig,
) -> Option<Simulator> {
    let mut design = Design::new();
    design.insert(module);
    let mut sim = Simulator::new(&design, lib, SimOptions::default()).ok()?;
    for i in 0..recipe.inputs.max(1) {
        let v = Lv::from_bool((recipe.input_bits >> i) & 1 == 1);
        sim.poke(&recipe.input_name(i), v).ok()?;
    }
    sim.schedule_clock(
        "clk",
        config.clock_period_ns,
        config.clock_period_ns / 2.0,
        config.sync_cycles,
    )
    .ok()?;
    sim.run_for(config.clock_period_ns * (config.sync_cycles + 2) as f64);
    Some(sim)
}

/// Injects one seed-selected pre-flow corruption into the synchronous
/// module, returning a description of what was broken. Falls back to
/// double-driving the clock net (always present in a clocked design)
/// when the preferred fault site is missing.
fn corrupt_input(m: &mut Module, rng: &mut Rng) -> &'static str {
    match rng.next_u64() % 3 {
        0 => {
            // A second driver onto an already-driven net.
            let driven: Vec<_> = m
                .cells()
                .flat_map(|(_, c)| {
                    (0..c.pins().len())
                        .filter(move |&i| matches!(c.pin_name(i), "Z" | "Q"))
                        .filter_map(move |i| c.pins()[i].1.net())
                })
                .collect();
            if !driven.is_empty() {
                let victim = *rng.choose(&driven);
                let name = m.unique_cell_name("corrupt_drv");
                if m.add_cell(name, "INVX1", &[("A", Conn::Const0), ("Z", Conn::Net(victim))])
                    .is_ok()
                {
                    return "multiply-driven net";
                }
            }
        }
        1 => {
            // A register data input rewired to a fresh net nothing
            // drives: the register captures X from then on.
            if let Some(id) = pick_cell(m, rng, |c| c.pin("D").is_some()) {
                let undriven = m.add_net_auto("corrupt_undriven");
                m.set_pin(id, "D", Conn::Net(undriven));
                return "undriven net";
            }
        }
        _ => {
            // A register data pin left dangling (`.D()`).
            if let Some(id) = pick_cell(m, rng, |c| c.pin("D").is_some()) {
                m.set_pin(id, "D", Conn::Open);
                return "dangling instance pin";
            }
        }
    }
    let clk = m.find_net("clk").expect("generated netlists are clocked");
    let name = m.unique_cell_name("corrupt_drv");
    m.add_cell(name, "INVX1", &[("A", Conn::Const0), ("Z", Conn::Net(clk))])
        .expect("fresh cell name");
    "multiply-driven clock net"
}

/// Runs one input-corruption mutant: break the synchronous netlist
/// before the flow and require the guarded pipeline (or, if the flow
/// completes, the downstream oracles) to reject it with a structured
/// diagnostic. A caught panic counts as killed — the process survived —
/// but the oracle line flags it, and the unit tests require the
/// diagnostics to be panic-free.
fn run_corruption_mutation(
    mutation: Mutation,
    seed: u64,
    lib: &Library,
    config: &DiffConfig,
) -> MutationOutcome {
    let mut rng = Rng::new(seed ^ mutation.salt());
    let recipe = NetRecipe::sample(&mut rng, &NetGenParams::default());
    let outcome = |killed: bool, oracle: String| MutationOutcome {
        mutation,
        seed,
        killed,
        oracle,
        recipe: Some(recipe.clone()),
        attempts: 1,
    };
    let (Ok(pristine), Ok(gatefile)) = (recipe.build(), Gatefile::from_library(lib)) else {
        return outcome(false, "no applicable fault site (recipe did not build)".into());
    };
    // Observability gate: a data fault can be behaviorally masked (an
    // asserted async set/reset dominates `D`, a never-initialized
    // feedback register never leaves X) — an *equivalent mutant* no
    // oracle can or should kill. Keep drawing corruption sites until
    // the corrupted module's synchronous captures differ from the
    // pristine reference, or the simulator refuses the module outright
    // (a structural break is observable by definition).
    let reference = sync_sim(&recipe, pristine.clone(), lib, config);
    let mut picked = None;
    for attempt in 1..=MAX_ATTEMPTS {
        let mut candidate = pristine.clone();
        let what = corrupt_input(&mut candidate, &mut rng);
        let observable = match (&reference, sync_sim(&recipe, candidate.clone(), lib, config)) {
            (_, None) | (None, _) => true,
            (Some(r), Some(c)) => recipe
                .ff_names()
                .iter()
                .any(|ff| r.captures().sequence(ff) != c.captures().sequence(ff)),
        };
        if observable {
            picked = Some((candidate, what, attempt));
            break;
        }
    }
    let Some((module, what, attempts)) = picked else {
        return outcome(
            false,
            format!("no synchronously observable fault site in {MAX_ATTEMPTS} attempts"),
        );
    };
    let outcome = |killed: bool, oracle: String| MutationOutcome {
        attempts,
        ..outcome(killed, oracle)
    };
    let mut cx = FlowContext::new(lib, &gatefile, module, DesyncOptions::default());
    let (_trace, err) = Pipeline::standard().run_recording(&mut cx, None);
    match err {
        Some(e @ DesyncError::Panic { .. }) => {
            outcome(true, brief(&format!("PANIC caught on {what}: {e}")))
        }
        Some(e) => outcome(true, brief(&format!("guarded flow rejected {what}: {e}"))),
        None => match cx.into_result() {
            Err(e) => outcome(true, brief(&format!("result rejected {what}: {e}"))),
            Ok(result) => match verify_result(&recipe, lib, config, &result) {
                Err(why) => outcome(true, brief(&format!("oracles rejected {what}: {why}"))),
                Ok(_) => outcome(
                    false,
                    format!("SURVIVED — every oracle accepted a flow over a {what}"),
                ),
            },
        },
    }
}

/// The semi-decoupled arc table of Fig. 2.4 (mirrors
/// [`Protocol::SemiDecoupled`]'s encoding), exposed so the arc-drop
/// mutation and its tests agree on indices.
pub const SEMI_DECOUPLED_ARCS: [(&str, &str, u8); 6] = [
    ("A+", "A-", 0),
    ("A-", "A+", 1),
    ("B+", "B-", 0),
    ("B-", "B+", 1),
    ("A-", "B-", 0),
    ("B-", "A+", 1),
];

/// Arc indices whose removal changes the protocol's behaviour. Index 1
/// (`A- → A+`) is excluded: it is *implied* — every `B-` is preceded by a
/// fresh `A-` (arc `A- → B-`), so the marked `B- → A+` place already
/// enforces the A alternation and dropping the implied place yields an
/// equivalent net, not a mutant.
pub const DROPPABLE_ARCS: [usize; 5] = [0, 2, 3, 4, 5];

fn run_protocol_mutation(mutation: Mutation, seed: u64) -> MutationOutcome {
    // A modest state limit: a real violation surfaces within a few
    // thousand states, and several arc-drop mutants are *unbounded* —
    // running into the limit is itself a kill (the oracle refuses the
    // net), so a large bound only buys wasted exploration.
    const STATE_LIMIT: usize = 1 << 16;
    let fe = match mutation {
        Mutation::ProtocolFallDecoupled => {
            check_flow_equivalence(&Protocol::FallDecoupled.stg(), 4, STATE_LIMIT)
        }
        Mutation::ProtocolDropArc => {
            let drop = DROPPABLE_ARCS[(seed % DROPPABLE_ARCS.len() as u64) as usize];
            let mut s = Stg::new(&["A", "B"]);
            for (i, (from, to, tokens)) in SEMI_DECOUPLED_ARCS.iter().enumerate() {
                if i != drop {
                    s.arc(from, to, *tokens).expect("static labels are valid");
                }
            }
            check_flow_equivalence(&s, 4, STATE_LIMIT)
        }
        _ => unreachable!("netlist-level mutation routed to protocol harness"),
    };
    let (killed, oracle) = match fe {
        Ok(FlowEquivalence::Ok) => (
            false,
            "SURVIVED — the flow-equivalence oracle accepted the mutant protocol".to_owned(),
        ),
        Ok(other) => (true, brief(&format!("flow equivalence rejected: {other:?}"))),
        Err(e) => (true, brief(&format!("STG oracle rejected: {e}"))),
    };
    MutationOutcome {
        mutation,
        seed,
        killed,
        oracle,
        recipe: None,
        attempts: 1,
    }
}

/// Fans the `kinds × seeds` grid out on the work-stealing runner;
/// outcomes come back in grid order (kind-major), deterministic for any
/// worker count.
pub fn run_campaign(
    kinds: &[Mutation],
    seeds: &[u64],
    lib: &Library,
    config: &DiffConfig,
    workers: usize,
) -> Vec<MutationOutcome> {
    let grid: Vec<(Mutation, u64)> = kinds
        .iter()
        .flat_map(|&k| seeds.iter().map(move |&s| (k, s)))
        .collect();
    crate::runner::run_indexed(grid.len(), workers, |i| {
        let (mutation, seed) = grid[i];
        run_mutation(mutation, seed, lib, config)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use drd_liberty::vlib90;

    #[test]
    fn names_are_unique_and_kebab() {
        let mut seen = std::collections::HashSet::new();
        for m in Mutation::ALL {
            assert!(seen.insert(m.name()), "{} duplicated", m.name());
            assert!(m.name().chars().all(|c| c.is_ascii_lowercase() || c == '-'));
            assert!(!m.attacks().is_empty());
        }
    }

    #[test]
    fn protocol_mutants_are_killed() {
        // One seed per droppable arc: every non-redundant arc removal must
        // be rejected by the flow-equivalence oracle.
        for seed in 0..DROPPABLE_ARCS.len() as u64 {
            let out = run_mutation(Mutation::ProtocolDropArc, seed, &vlib90::high_speed(), &DiffConfig::default());
            assert!(out.killed, "arc {seed} survived: {}", out.oracle);
        }
        let out = run_mutation(
            Mutation::ProtocolFallDecoupled,
            0,
            &vlib90::high_speed(),
            &DiffConfig::default(),
        );
        assert!(out.killed, "{}", out.oracle);
    }

    #[test]
    fn corrupt_input_mutants_die_with_structured_panic_free_diagnostics() {
        let lib = vlib90::high_speed();
        let config = DiffConfig::default();
        let mut oracles = String::new();
        for seed in 0..8u64 {
            let out = run_mutation(Mutation::CorruptInput, seed, &lib, &config);
            assert!(out.killed, "seed {seed} survived: {}", out.oracle);
            assert!(
                !out.oracle.contains("PANIC"),
                "seed {seed} crashed a pass instead of erroring: {}",
                out.oracle
            );
            oracles.push_str(&out.oracle);
            oracles.push('\n');
        }
        // The seed range must exercise every corruption shape.
        for shape in ["multiply-driven", "undriven net", "dangling instance pin"] {
            assert!(oracles.contains(shape), "`{shape}` never injected:\n{oracles}");
        }
    }

    #[test]
    fn broken_scan_stitch_mutants_are_killed() {
        let lib = vlib90::high_speed();
        let config = DiffConfig::default();
        // Two seeds so both legs (scan-in B, scan-enable S) get exercised
        // across the seed-derived site streams.
        for seed in 0..2u64 {
            let out = run_mutation(Mutation::BrokenScanStitch, seed, &lib, &config);
            assert!(out.killed, "seed {seed} survived: {}", out.oracle);
            assert!(
                out.oracle.contains("scan"),
                "killed by a non-scan oracle (fault not isolated): {}",
                out.oracle
            );
        }
    }

    #[test]
    fn swallowed_request_mutants_are_killed_by_the_liveness_oracle() {
        let lib = vlib90::high_speed();
        let config = DiffConfig::default();
        for seed in 0..2u64 {
            let out = run_mutation(Mutation::SwallowedRequest, seed, &lib, &config);
            assert!(out.killed, "seed {seed} survived: {}", out.oracle);
            assert!(
                out.oracle.contains("liveness"),
                "killed by a non-liveness oracle (fault not isolated): {}",
                out.oracle
            );
        }
    }

    #[test]
    fn a_netlist_mutant_is_killed_and_deterministic() {
        let lib = vlib90::high_speed();
        let config = DiffConfig::default();
        let a = run_mutation(Mutation::SwapLatchPhases, 1, &lib, &config);
        assert!(a.killed, "{}", a.oracle);
        let b = run_mutation(Mutation::SwapLatchPhases, 1, &lib, &config);
        assert_eq!(a.oracle, b.oracle);
        assert_eq!(a.attempts, b.attempts);
    }
}
