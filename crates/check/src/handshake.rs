//! Handshake-timing oracle: the event-driven control-network simulation
//! must be consistent with static timing.
//!
//! Two properties hold for every desynchronized design (DESIGN.md §3f):
//!
//! 1. **STA floor** — each region's simulated effective cycle time is at
//!    least its matched-delay element's nominal rise delay. The request
//!    must traverse the full delay chain every cycle, so a simulator
//!    that measures a faster cycle is broken (or the elaboration lost
//!    the delay element).
//! 2. **Zero-variability exactness** — a Monte-Carlo chip drawn at
//!    `sigma = 0` has every per-gate factor exactly `1.0`, so its
//!    simulation must reproduce the nominal run bit for bit: same event
//!    order, same femtosecond edge times, same `f64` cycle time.
//!
//! One topology is excluded by construction: a controlled region with
//! *neither* controlled predecessors nor successors gets the
//! always-ready loopback request **and** the eager acknowledge
//! environment simultaneously (`drd_core::network`'s environment rules),
//! which degenerates its request into a pulse shorter than the matched
//! delay — the asymmetric delay element swallows it and the ring halts,
//! in silicon as in simulation. The oracle reports such specs as
//! vacuously verified rather than failing on physics.
//!
//! A simulated deadlock on any *coupled* topology is reported as a
//! failure, and that is deliberate: the same wedge happens at gate
//! level, and such a design also fails the behavioural capture-count
//! oracle — the two oracles agree on what is broken. Since PR 9 the
//! flow's liveness guard repairs the classic instance (a source region
//! whose matched delay exceeds its successor's acknowledge time — see
//! `tests/handshake_stall.rs`) before export, so a deadlock here means
//! the guard's contract was violated, not that the hazard is expected.

use drd_core::{DesyncError, DesyncReport};
use drd_liberty::Library;
use drd_sim::{GateVariability, HandshakeNet, HandshakeSpec, RegionCycle, RegionSpec};

/// Projects a desynchronization report onto the handshake simulator's
/// spec — the same projection `drd_flow::experiment::handshake_spec`
/// performs (duplicated here because `drd-check` sits below `drd-flow`).
///
/// # Errors
/// Propagates delay-element probing errors.
pub fn handshake_spec(
    report: &DesyncReport,
    lib: &Library,
) -> Result<HandshakeSpec, DesyncError> {
    let level_delay_ns = drd_core::delay_element::level_delay_ns(lib)?;
    let ff = lib.cell("DFFX1").expect("vlib90 has DFFX1");
    let regions: Vec<RegionSpec> = report
        .regions
        .iter()
        .map(|r| RegionSpec {
            name: r.name.clone(),
            controlled: r.ffs > 0 && r.delem_levels > 0,
            matched_levels: r.delem_levels,
            critical_delay_ns: r.critical_delay_ns,
            loopback_latch: report.liveness_repairs.iter().any(|lr| {
                lr.region == r.name
                    && matches!(lr.action, drd_core::LivenessAction::RequestLatch)
            }),
        })
        .collect();
    let slot = |name: &str| report.regions.iter().position(|r| r.name == name);
    let edges = report
        .ddg_edges
        .iter()
        .filter_map(|(a, b)| Some((slot(a)?, slot(b)?)))
        .collect();
    Ok(HandshakeSpec {
        regions,
        edges,
        level_delay_ns,
        ff_overhead_ns: ff.max_intrinsic_delay() + ff.setup,
    })
}

/// Controlled regions with neither controlled predecessors nor
/// successors (self-loops count as both): the loopback + eager-ack
/// degenerate topology whose handshake halts by design.
pub fn isolated_regions(spec: &HandshakeSpec) -> Vec<String> {
    spec.regions
        .iter()
        .enumerate()
        .filter(|(i, r)| {
            r.controlled
                && !spec.edges.iter().any(|&(p, s)| {
                    (s == *i && spec.regions[p].controlled)
                        || (p == *i && spec.regions[s].controlled)
                })
        })
        .map(|(_, r)| r.name.clone())
        .collect()
}

/// Verifies the handshake-timing oracle for one spec: elaborates the
/// control network, simulates it nominally, and checks both properties
/// above (plus a spot-check that zero-sigma chips are byte-stable under
/// different worker counts).
///
/// Returns `Ok(None)` when the spec is vacuous — no controlled regions,
/// or a degenerate isolated region (see module docs); `Ok(Some(cycles))`
/// with the nominal measurement otherwise.
///
/// # Errors
/// A description of the first violated property.
pub fn verify_handshake_timing(
    spec: &HandshakeSpec,
    lib: &Library,
) -> Result<Option<Vec<RegionCycle>>, String> {
    if !spec.regions.iter().any(|r| r.controlled) {
        return Ok(None);
    }
    if !isolated_regions(spec).is_empty() {
        return Ok(None);
    }
    let net = HandshakeNet::elaborate(spec, lib).map_err(|e| format!("elaboration: {e}"))?;
    let nominal = net
        .nominal_cycle_times()
        .map_err(|e| format!("nominal simulation: {e}"))?;

    // Property 1: the STA matched-delay floor.
    for c in &nominal {
        if c.cycle_ns < c.matched_delay_ns {
            return Err(format!(
                "region {}: simulated cycle {:.6} ns beats the matched-delay floor {:.6} ns",
                c.region, c.cycle_ns, c.matched_delay_ns
            ));
        }
    }

    // Property 2: a zero-sigma Monte-Carlo chip is the nominal run.
    let nominal_worst = nominal.iter().map(|c| c.cycle_ns).fold(0.0f64, f64::max);
    let var = GateVariability::new(0x5EED_516A, 0.0);
    for chip in 0..2 {
        let sample = net
            .chip_sample(&var, chip)
            .map_err(|e| format!("zero-sigma chip {chip}: {e}"))?;
        if sample.desync_cycle_ns.to_bits() != nominal_worst.to_bits() {
            return Err(format!(
                "zero-sigma chip {chip} measured {} ns, nominal is {} ns (must be bit-identical)",
                sample.desync_cycle_ns, nominal_worst
            ));
        }
    }

    // Worker-count stability spot check on a tiny campaign.
    let serial = net
        .monte_carlo(&var, 4, 1)
        .map_err(|e| format!("serial campaign: {e}"))?;
    let parallel = net
        .monte_carlo(&var, 4, 3)
        .map_err(|e| format!("parallel campaign: {e}"))?;
    for (a, b) in serial.iter().zip(&parallel) {
        if a.desync_cycle_ns.to_bits() != b.desync_cycle_ns.to_bits()
            || a.sync_period_ns.to_bits() != b.sync_period_ns.to_bits()
        {
            return Err(format!("chip {} diverged across worker counts", a.chip));
        }
    }

    Ok(Some(nominal))
}

#[cfg(test)]
mod tests {
    use super::*;
    use drd_liberty::vlib90;

    fn two_stage_spec() -> HandshakeSpec {
        HandshakeSpec {
            regions: vec![
                RegionSpec {
                    name: "g0".into(),
                    controlled: true,
                    matched_levels: 4,
                    critical_delay_ns: 0.3,
                    loopback_latch: false,
                },
                RegionSpec {
                    name: "g1".into(),
                    controlled: true,
                    matched_levels: 6,
                    critical_delay_ns: 0.5,
                    loopback_latch: false,
                },
            ],
            edges: vec![(0, 1)],
            level_delay_ns: 0.09,
            ff_overhead_ns: 0.15,
        }
    }

    #[test]
    fn oracle_verifies_a_healthy_pipeline() {
        let cycles = verify_handshake_timing(&two_stage_spec(), &vlib90::high_speed())
            .unwrap()
            .expect("non-vacuous");
        assert_eq!(cycles.len(), 2);
    }

    #[test]
    fn vacuous_specs_are_reported_as_none() {
        let lib = vlib90::high_speed();
        let mut spec = two_stage_spec();
        spec.regions[0].controlled = false;
        spec.regions[1].controlled = false;
        assert!(verify_handshake_timing(&spec, &lib).unwrap().is_none());

        // One controlled region, no edges: the degenerate isolated
        // loopback + eager-ack topology.
        let mut spec = two_stage_spec();
        spec.regions[1].controlled = false;
        spec.edges.clear();
        assert_eq!(isolated_regions(&spec), vec!["g0".to_owned()]);
        assert!(verify_handshake_timing(&spec, &lib).unwrap().is_none());
    }

    #[test]
    fn self_loops_count_as_coupling() {
        let mut spec = two_stage_spec();
        spec.regions.truncate(1);
        spec.edges = vec![(0, 0)];
        assert!(isolated_regions(&spec).is_empty());
        let cycles = verify_handshake_timing(&spec, &vlib90::high_speed())
            .unwrap()
            .expect("ring verifies");
        assert_eq!(cycles.len(), 1);
    }
}
