//! Golden-file (snapshot) assertions.
//!
//! A golden test renders some artifact to text and compares it against a
//! checked-in snapshot. To (re-)record snapshots, run the test with
//! `DRD_BLESS=1`:
//!
//! ```bash
//! DRD_BLESS=1 cargo test -q golden
//! ```

use std::path::Path;

use drd_core::DesyncReport;

/// Compares `actual` against the snapshot at `path`.
///
/// With `DRD_BLESS=1` in the environment the snapshot is (re)written
/// instead and the assertion always passes.
///
/// # Panics
/// Panics when the snapshot is missing (and not blessing) or differs,
/// pointing at the first diverging line.
pub fn assert_golden(path: impl AsRef<Path>, actual: &str) {
    let path = path.as_ref();
    if std::env::var("DRD_BLESS").is_ok_and(|v| !v.is_empty() && v != "0") {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir).expect("create golden dir");
        }
        std::fs::write(path, actual).expect("write golden file");
        eprintln!("blessed {}", path.display());
        return;
    }
    let expected = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(_) => panic!(
            "missing golden file {} — record it with DRD_BLESS=1 cargo test",
            path.display()
        ),
    };
    if expected == actual {
        return;
    }
    let mut line_no = 1usize;
    let mut exp_lines = expected.lines();
    let mut act_lines = actual.lines();
    loop {
        match (exp_lines.next(), act_lines.next()) {
            (Some(e), Some(a)) if e == a => line_no += 1,
            (e, a) => panic!(
                "golden mismatch at {}:{line_no}\n  expected: {:?}\n  actual:   {:?}\n\
                 re-record with DRD_BLESS=1 cargo test",
                path.display(),
                e.unwrap_or("<eof>"),
                a.unwrap_or("<eof>")
            ),
        }
    }
}

/// Renders a [`DesyncReport`] as stable, diff-friendly text for golden
/// comparison (regions in flow order, dependency edges sorted).
pub fn render_desync_report(report: &DesyncReport) -> String {
    let mut out = String::new();
    out.push_str(&format!("clock net: {}\n", report.clock_net));
    out.push_str(&format!(
        "substituted ffs: {}  extra gates: {}  controllers: {}  c-elements: {}  cleaned: {}\n",
        report.substituted_ffs,
        report.extra_gates,
        report.controllers,
        report.celements,
        report.cleaned_cells
    ));
    out.push_str("regions:\n");
    for r in &report.regions {
        out.push_str(&format!(
            "  {:<8} cells {:>5}  ffs {:>4}  delay {:>7.3} ns  delem levels {}\n",
            r.name, r.cells, r.ffs, r.critical_delay_ns, r.delem_levels
        ));
    }
    let mut edges: Vec<String> = report
        .ddg_edges
        .iter()
        .map(|(a, b)| format!("  {a} -> {b}\n"))
        .collect();
    edges.sort();
    out.push_str(&format!("ddg edges ({}):\n", edges.len()));
    for e in edges {
        out.push_str(&e);
    }
    // Only degraded flows render the section, so clean snapshots stay
    // byte-identical.
    if !report.degradations.is_empty() {
        out.push_str(&format!("degradations ({}):\n", report.degradations.len()));
        for d in &report.degradations {
            out.push_str(&format!("  {d}\n"));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matching_snapshot_passes() {
        let dir = std::env::temp_dir().join("drd_check_golden_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ok.txt");
        std::fs::write(&path, "hello\nworld\n").unwrap();
        assert_golden(&path, "hello\nworld\n");
    }

    #[test]
    fn mismatch_panics_with_line_number() {
        let dir = std::env::temp_dir().join("drd_check_golden_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.txt");
        std::fs::write(&path, "hello\nworld\n").unwrap();
        let caught = std::panic::catch_unwind(|| assert_golden(&path, "hello\nmoon\n"));
        let msg = *caught.expect_err("must fail").downcast::<String>().unwrap();
        assert!(msg.contains(":2"), "{msg}");
        assert!(msg.contains("DRD_BLESS"), "{msg}");
    }
}
