//! A dependency-free micro-benchmark runner on `std::time::Instant`.
//!
//! Each benchmark is warmed up once, auto-calibrated to a bounded number
//! of timed iterations, and summarized as min/mean/max wall time. Results
//! print as a table and are written to `BENCH_<name>.json` (directory
//! overridable via `DRD_BENCH_DIR`) so the performance trajectory of the
//! tool kernels is recorded run over run.

use std::path::PathBuf;
use std::time::Instant;

/// Summary of one benchmark.
#[derive(Debug, Clone)]
pub struct Sample {
    /// Benchmark label.
    pub label: String,
    /// Timed iterations.
    pub iters: u32,
    /// Fastest iteration (ns).
    pub min_ns: f64,
    /// Mean iteration (ns).
    pub mean_ns: f64,
    /// Slowest iteration (ns).
    pub max_ns: f64,
}

/// A named group of benchmarks.
#[derive(Debug)]
pub struct Bench {
    name: String,
    target_iters: u32,
    samples: Vec<Sample>,
}

impl Bench {
    /// Creates a bench group; `name` becomes `BENCH_<name>.json`.
    pub fn new(name: &str) -> Bench {
        Bench {
            name: name.to_owned(),
            target_iters: 10,
            samples: Vec::new(),
        }
    }

    /// Overrides the default (10) number of timed iterations.
    pub fn iterations(mut self, iters: u32) -> Bench {
        self.target_iters = iters.max(1);
        self
    }

    /// Times `f`, discarding its result. One untimed warmup iteration,
    /// then `iterations` timed ones (fewer for very slow bodies).
    pub fn run<T>(&mut self, label: &str, mut f: impl FnMut() -> T) {
        std::hint::black_box(f());
        let probe = Instant::now();
        std::hint::black_box(f());
        let probe_ns = probe.elapsed().as_nanos() as f64;
        // Keep a single benchmark under ~2 s of timed work.
        let budget_ns = 2e9;
        let iters = if probe_ns > 0.0 {
            ((budget_ns / probe_ns) as u32).clamp(3, self.target_iters)
        } else {
            self.target_iters
        };
        let mut times = Vec::with_capacity(iters as usize);
        for _ in 0..iters {
            let t = Instant::now();
            std::hint::black_box(f());
            times.push(t.elapsed().as_nanos() as f64);
        }
        let min = times.iter().copied().fold(f64::INFINITY, f64::min);
        let max = times.iter().copied().fold(0.0f64, f64::max);
        let mean = times.iter().sum::<f64>() / times.len() as f64;
        eprintln!(
            "bench {:<40} {:>12.1} µs/iter (min {:.1}, max {:.1}, {} iters)",
            label,
            mean / 1e3,
            min / 1e3,
            max / 1e3,
            iters
        );
        self.samples.push(Sample {
            label: label.to_owned(),
            iters,
            min_ns: min,
            mean_ns: mean,
            max_ns: max,
        });
    }

    /// Recorded samples.
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// The JSON document for this group.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"name\": \"{}\",\n", escape(&self.name)));
        out.push_str("  \"results\": [\n");
        for (i, s) in self.samples.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"label\": \"{}\", \"iters\": {}, \"min_ns\": {:.0}, \"mean_ns\": {:.0}, \"max_ns\": {:.0}}}{}\n",
                escape(&s.label),
                s.iters,
                s.min_ns,
                s.mean_ns,
                s.max_ns,
                if i + 1 == self.samples.len() { "" } else { "," }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Writes `BENCH_<name>.json` and returns its path.
    ///
    /// # Errors
    /// Propagates filesystem errors.
    pub fn finish(self) -> std::io::Result<PathBuf> {
        let dir = std::env::var("DRD_BENCH_DIR").map_or_else(|_| PathBuf::from("."), PathBuf::from);
        std::fs::create_dir_all(&dir)?;
        let path = dir.join(format!("BENCH_{}.json", self.name));
        std::fs::write(&path, self.to_json())?;
        eprintln!("wrote {}", path.display());
        Ok(path)
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runner_records_and_serializes() {
        let mut b = Bench::new("selftest").iterations(5);
        b.run("spin", || (0..1000u64).sum::<u64>());
        b.run("noop", || ());
        assert_eq!(b.samples().len(), 2);
        let json = b.to_json();
        assert!(json.contains("\"name\": \"selftest\""));
        assert!(json.contains("\"label\": \"spin\""));
        assert!(json.contains("mean_ns"));
        // Well-formed enough to be machine-readable: balanced brackets.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn finish_writes_json_file() {
        let dir = std::env::temp_dir().join("drd_check_bench_test");
        std::env::set_var("DRD_BENCH_DIR", &dir);
        let mut b = Bench::new("filetest");
        b.run("noop", || ());
        let path = b.finish().unwrap();
        std::env::remove_var("DRD_BENCH_DIR");
        let text = std::fs::read_to_string(path).unwrap();
        assert!(text.contains("filetest"));
    }
}
