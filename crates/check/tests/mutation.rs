//! Tier-1 mutation smoke: every mutation kind, a few seeds each, run
//! through the work-stealing campaign runner — all mutants must be
//! killed by the oracle stack. The full 25-seed sweep lives in the
//! `mutation` bench bin; this keeps the per-commit cost bounded while
//! still exercising each fault class end to end.

use drd_check::diff::DiffConfig;
use drd_check::mutate::{run_campaign, Mutation};
use drd_check::runner;
use drd_liberty::vlib90;

#[test]
fn every_mutation_kind_is_killed() {
    let lib = vlib90::high_speed();
    let config = DiffConfig::default();
    let seeds: Vec<u64> = (0..2).collect();
    let outcomes = run_campaign(
        &Mutation::ALL,
        &seeds,
        &lib,
        &config,
        runner::worker_count(),
    );
    assert_eq!(outcomes.len(), Mutation::ALL.len() * seeds.len());
    let survivors: Vec<String> = outcomes
        .iter()
        .filter(|o| !o.killed)
        .map(|o| format!("{} seed {}: {}", o.mutation.name(), o.seed, o.oracle))
        .collect();
    assert!(
        survivors.is_empty(),
        "oracle gaps — surviving mutants:\n{}",
        survivors.join("\n")
    );
}

#[test]
fn campaign_order_is_deterministic_across_worker_counts() {
    let lib = vlib90::high_speed();
    let config = DiffConfig::default();
    let kinds = [Mutation::StuckRequest, Mutation::SdcDropMinDelay];
    let one = run_campaign(&kinds, &[3], &lib, &config, 1);
    let many = run_campaign(&kinds, &[3], &lib, &config, 4);
    assert_eq!(one.len(), many.len());
    for (a, b) in one.iter().zip(&many) {
        assert_eq!(a.mutation, b.mutation);
        assert_eq!(a.seed, b.seed);
        assert_eq!(a.killed, b.killed);
        assert_eq!(a.oracle, b.oracle);
    }
}
