//! Property tests for the handshake-level timing simulator (DESIGN.md
//! §3f): fuzzed synchronous netlists go through the full
//! desynchronization flow, their reports project onto control-network
//! specs, and the event-driven simulation must stay consistent with
//! static timing —
//!
//! * every region's simulated effective cycle time respects the STA
//!   matched-delay floor,
//! * a zero-variability Monte-Carlo chip reproduces the nominal run bit
//!   for bit (and, for single-region rings, the closed-form analytical
//!   period femtosecond-exactly),
//! * campaigns are byte-identical for any worker count.
//!
//! Replay knobs: `DRD_PROP_SEED`, `DRD_PROP_CASES`, `DRD_PROP_CASE_SEED`.

use std::sync::atomic::{AtomicUsize, Ordering};

use drd_check::handshake::{handshake_spec, isolated_regions, verify_handshake_timing};
use drd_check::netgen::{NetGenParams, NetRecipe};
use drd_check::{prop_par_with, Config, Rng, Shrink};
use drd_core::{DesyncOptions, Desynchronizer};
use drd_liberty::vlib90;
use drd_sim::{GateVariability, HandshakeNet, HandshakeSpec, RegionSpec};

/// Fuzzed flow outputs: the simulated cycle of every region is bounded
/// below by its matched delay, and zero-sigma chips are bitwise nominal
/// (both enforced inside [`verify_handshake_timing`]).
#[test]
fn fuzzed_flows_respect_the_sta_floor() {
    let lib = vlib90::high_speed();
    let params = NetGenParams::default();
    let tool = Desynchronizer::new(&lib).expect("tool builds");
    let non_vacuous = AtomicUsize::new(0);
    prop_par_with(
        Config::new(60).seed(0x57AF_100D_CAFE),
        |rng: &mut Rng| NetRecipe::sample(rng, &params),
        |recipe: &NetRecipe| {
            let module = recipe.build().map_err(|e| e.to_string())?;
            let Ok(result) = tool.run(&module, &DesyncOptions::default()) else {
                return Ok(()); // flow rejection is not a simulator property
            };
            let spec = handshake_spec(&result.report, &lib).map_err(|e| e.to_string())?;
            if verify_handshake_timing(&spec, &lib)?.is_some() {
                non_vacuous.fetch_add(1, Ordering::Relaxed);
            }
            Ok(())
        },
    );
    let hits = non_vacuous.load(Ordering::Relaxed);
    assert!(hits >= 10, "only {hits} non-vacuous control networks simulated");
}

/// Local wrapper so the foreign spec types ride the prop harness (the
/// orphan rule forbids `impl Shrink for HandshakeSpec` here; shrinking
/// specs is not worth the ceremony — the generator is already small).
#[derive(Debug, Clone)]
struct SpecCase(HandshakeSpec);
impl Shrink for SpecCase {}

#[derive(Debug, Clone)]
struct RingCase(RegionSpec);
impl Shrink for RingCase {}

/// Random spec generator: 1–4 controlled regions in a *closed* feedback
/// ring (plus a self-loop on a random region a quarter of the time),
/// random matched depths and critical delays.
///
/// The ring closure is deliberate: an open chain's source region gets
/// the loopback request environment, whose pulse width is set by the
/// successor's response time — a source with a long matched delay and a
/// fast successor wedges, in silicon as in simulation (see
/// `tests/handshake_stall.rs`). Closed rings hold every request in a
/// C-element join until the consumer's delay chain has been traversed,
/// so any combination of matched depths is live.
fn random_spec(rng: &mut Rng) -> SpecCase {
    let n = rng.range(1, 5);
    let regions = (0..n)
        .map(|i| RegionSpec {
            name: format!("g{i}"),
            controlled: true,
            matched_levels: rng.range(2, 24),
            critical_delay_ns: 0.05 + rng.range(0, 80) as f64 * 0.01,
            loopback_latch: false,
        })
        .collect();
    let mut edges: Vec<(usize, usize)> = (1..n).map(|i| (i - 1, i)).collect();
    if n > 1 {
        edges.push((n - 1, 0)); // close the ring: no loopback sources
    } else {
        edges.push((0, 0)); // a lone region must self-couple to run
    }
    if rng.next_u64() & 3 == 0 {
        let r = rng.range(0, n);
        edges.push((r, r));
    }
    SpecCase(HandshakeSpec {
        regions,
        edges,
        level_delay_ns: 0.09,
        ff_overhead_ns: 0.15,
    })
}

/// Zero-sigma draws are exactly 1.0, so the chip simulation replays the
/// nominal event order; campaigns split across 1, 2 and 8 workers merge
/// to byte-identical samples.
#[test]
fn zero_sigma_chips_and_worker_splits_are_bitwise_stable() {
    let lib = vlib90::high_speed();
    prop_par_with(
        Config::new(24).seed(0x000B_1757_AB1E),
        random_spec,
        |SpecCase(spec): &SpecCase| {
            assert!(isolated_regions(spec).is_empty(), "generator keeps regions coupled");
            let net = HandshakeNet::elaborate(spec, &lib).map_err(|e| e.to_string())?;
            let nominal = net.nominal_cycle_times().map_err(|e| e.to_string())?;
            let worst = nominal.iter().map(|c| c.cycle_ns).fold(0.0f64, f64::max);

            let zero = GateVariability::new(0xFACE_0FF5, 0.0);
            let sample = net.chip_sample(&zero, 7).map_err(|e| e.to_string())?;
            if sample.desync_cycle_ns.to_bits() != worst.to_bits() {
                return Err(format!(
                    "zero-sigma chip {} ns != nominal {} ns",
                    sample.desync_cycle_ns, worst
                ));
            }

            let var = GateVariability::new(0xFACE_0FF5, 0.12);
            let serial = net.monte_carlo(&var, 12, 1).map_err(|e| e.to_string())?;
            for workers in [2, 8] {
                let par = net.monte_carlo(&var, 12, workers).map_err(|e| e.to_string())?;
                for (a, b) in serial.iter().zip(&par) {
                    if a.desync_cycle_ns.to_bits() != b.desync_cycle_ns.to_bits()
                        || a.sync_period_ns.to_bits() != b.sync_period_ns.to_bits()
                    {
                        return Err(format!(
                            "chip {} diverged at {workers} workers",
                            a.chip
                        ));
                    }
                }
            }
            Ok(())
        },
    );
}

/// Single-region rings have a closed-form period; the event-driven
/// simulation must land on it femtosecond-exactly at every matched
/// depth the generator draws.
#[test]
fn ring_simulation_matches_the_analytical_period() {
    let lib = vlib90::high_speed();
    prop_par_with(
        Config::new(32).seed(0x00A1_1A71_C0DE),
        |rng: &mut Rng| {
            RingCase(RegionSpec {
                name: "ring".into(),
                controlled: true,
                matched_levels: rng.range(2, 40),
                critical_delay_ns: 0.05 + rng.range(0, 100) as f64 * 0.01,
                loopback_latch: false,
            })
        },
        |RingCase(region): &RingCase| {
            let spec = HandshakeSpec {
                regions: vec![region.clone()],
                edges: vec![(0, 0)],
                level_delay_ns: 0.09,
                ff_overhead_ns: 0.15,
            };
            let net = HandshakeNet::elaborate(&spec, &lib).map_err(|e| e.to_string())?;
            let analytical = net
                .analytical_ring_cycle_fs(&lib)
                .ok_or("single-region net has a closed form")?;
            let cycles = net.nominal_cycle_times().map_err(|e| e.to_string())?;
            let measured = cycles[0].span_fs / cycles[0].cycles as u64;
            if measured != analytical {
                return Err(format!(
                    "levels {}: measured {measured} fs, closed form {analytical} fs",
                    region.matched_levels
                ));
            }
            Ok(())
        },
    );
}
