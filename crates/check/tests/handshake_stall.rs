//! The liveness guard repairs the pulse-swallowing wedge.
//!
//! The loopback environment (`drd_core::network`) feeds a source
//! region's own slave request back as its input request. That request
//! falls as soon as the successor acknowledges, so its pulse width is
//! set by the successor's response time — and a source whose matched
//! delay exceeds that width would have its request swallowed by the
//! asymmetric delay element (every AND stage is fed by the input, so a
//! fall collapses the chain): the region would wedge after one
//! transfer. Interior regions are immune — their requests are held by
//! C-element joins until the consumer's full delay chain has been
//! traversed.
//!
//! Since PR 9 the `liveness` pass detects this hazard statically and
//! repairs it (here by deepening the successor's delay element so the
//! acknowledge arrives after the source's rise completes). This test
//! pins the repair down at *both* levels on the same design: the
//! gate-level netlist keeps capturing in the event simulator, the
//! handshake-level timing oracle verifies the network live, the repair
//! is recorded in the report, and the whole flow stays byte-identical
//! across worker counts.

use drd_check::handshake::{handshake_spec, verify_handshake_timing};
use drd_check::netgen::{FfKind, FfRecipe, GateOp, NetRecipe, StageRecipe};
use drd_core::{DesyncOptions, Desynchronizer, LivenessAction};
use drd_liberty::{vlib90, Lv};
use drd_sim::{SimOptions, Simulator};

/// Two regions: a source with a 24-NAND critical path (a long matched
/// delay) feeding a successor with a single inverter (a fast ack).
fn imbalanced_recipe() -> NetRecipe {
    // pool: din (0), q0_0 (1), q1_0 (2) → cloud nets start at index 3.
    let chain: Vec<GateOp> = (0..24)
        .map(|c| GateOp {
            kind: 2, // NAND2X1 — survives buffer cleaning
            a: if c == 0 { 0 } else { 3 + c - 1 },
            b: 0,
        })
        .collect();
    NetRecipe {
        inputs: 1,
        input_bits: 1,
        stages: vec![
            StageRecipe {
                cloud: chain,
                ffs: vec![FfRecipe { kind: FfKind::Plain, d: 3 + 23, aux0: 0, aux1: 0 }],
            },
            StageRecipe {
                // One inverter reading q0_0 keeps the stages in separate
                // regions (a direct FF→FF edge would merge them).
                cloud: vec![GateOp { kind: 0, a: 1, b: 0 }],
                ffs: vec![FfRecipe { kind: FfKind::Plain, d: 3, aux0: 0, aux1: 0 }],
            },
        ],
    }
}

#[test]
fn liveness_guard_repairs_the_gate_level_stall() {
    let lib = vlib90::high_speed();
    let recipe = imbalanced_recipe();
    let module = recipe.build().unwrap();
    let tool = Desynchronizer::new(&lib).unwrap();
    let result = tool.run(&module, &DesyncOptions::default()).unwrap();

    // The hazard was detected and repaired, not silently shipped: the
    // report carries at least one structural repair and no region had to
    // fall back to the clock.
    let repairs = &result.report.liveness_repairs;
    assert!(!repairs.is_empty(), "pulse-swallowing hazard must be repaired");
    assert!(
        repairs
            .iter()
            .any(|lr| matches!(lr.action, LivenessAction::DeepenSuccessor { .. })
                | matches!(lr.action, LivenessAction::RequestLatch)),
        "repair ladder must act structurally, got: {repairs:?}"
    );
    assert!(result.report.degradations.is_empty(), "no clock fallback expected");

    // The repaired shape: the successor's delay element was brought up
    // far enough that the source's rise fits inside its response window.
    let regions = &result.report.regions;
    let source = regions.iter().find(|r| r.ffs > 0 && r.critical_delay_ns > 0.4).unwrap();
    let sink = regions.iter().find(|r| r.ffs > 0 && r.critical_delay_ns < 0.2).unwrap();
    assert!(source.delem_levels > 0 && sink.delem_levels > 0, "both regions stay controlled");

    // Gate level: the source region's latches keep capturing — before
    // the guard this design wedged after at most 2 captures in 240 ns.
    let mut dut = Simulator::new(&result.design, &lib, SimOptions::default()).unwrap();
    dut.poke("din", Lv::One).unwrap();
    dut.poke("drd_rst", Lv::Zero).unwrap();
    dut.run_for(2.0);
    dut.poke("drd_rst", Lv::One).unwrap();
    dut.run_for(240.0);
    let captures = dut.captures().capture_count("r0_0_ls");
    assert!(captures > 10, "expected a live ring, saw only {captures} captures in 240 ns");

    // Handshake level: the timing oracle verifies the repaired network.
    let spec = handshake_spec(&result.report, &lib).unwrap();
    let cycles = verify_handshake_timing(&spec, &lib)
        .expect("repaired network must be live")
        .expect("non-vacuous");
    assert!(!cycles.is_empty());

    // Determinism: the repaired flow's artifacts are byte-identical for
    // any worker count — the guard's decisions are serial by design.
    let bundle = |jobs: usize| {
        let opts = DesyncOptions { jobs: Some(jobs), ..DesyncOptions::default() };
        let (result, trace) = tool.run_traced(module.clone(), &opts).unwrap();
        [
            format!("{:?}", result.report),
            result.sdc.clone(),
            drd_netlist::verilog::write_design(&result.design),
            trace.to_json_deterministic(),
        ]
    };
    let serial = bundle(1);
    for jobs in [2, 8] {
        assert_eq!(serial, bundle(jobs), "artifacts diverged at jobs={jobs}");
    }
}

#[test]
fn per_edge_sta_bound_never_deepens_beyond_the_linear_model() {
    // ROADMAP liveness follow-on (a) regression: the per-edge STA-derived
    // response bound repairs no more aggressively than the load-blind
    // linear model it replaced. Each deepen on the 24-NAND stall design
    // is checked against the old closed-form linear target, and the
    // shipped design still re-screens clean (the oracle re-runs the
    // hazard screen at margin 1.0).
    let lib = vlib90::high_speed();
    let module = imbalanced_recipe().build().unwrap();
    let tool = Desynchronizer::new(&lib).unwrap();
    let result = tool.run(&module, &DesyncOptions::default()).unwrap();

    let model = drd_core::liveness::ResponseModel::probe(&lib).unwrap();
    let margin = DesyncOptions::default().delay_margin;
    let mut deepens = 0usize;
    for lr in &result.report.liveness_repairs {
        if let LivenessAction::DeepenSuccessor { from_levels, to_levels, .. } = &lr.action {
            deepens += 1;
            let linear = (((lr.rise_ns * margin - model.ctrl_response_ns)
                / model.level_delay_ns)
                .ceil() as usize)
                .max(from_levels + 1);
            assert!(
                *to_levels <= linear,
                "per-edge bound deepened to {to_levels}, past the linear target {linear}"
            );
        }
    }
    assert!(deepens > 0, "the stall design must still be repaired by deepening");

    drd_check::liveness::verify_liveness(&result.report, &result.design, &lib)
        .expect("repaired design re-screens clean");
}
