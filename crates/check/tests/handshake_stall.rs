//! Faithfulness of the handshake simulator's *deadlock* verdict.
//!
//! The loopback environment (`drd_core::network`) feeds a source
//! region's own slave request back as its input request. That request
//! falls as soon as the successor acknowledges, so its pulse width is
//! set by the successor's response time — and a source whose matched
//! delay exceeds that width has its request swallowed by the asymmetric
//! delay element (every AND stage is fed by the input, so a fall
//! collapses the chain): the region wedges after one transfer. Interior
//! regions are immune — their requests are held by C-element joins
//! until the consumer's full delay chain has been traversed.
//!
//! This test pins the hazard down at *both* levels on the same design:
//! the gate-level netlist stalls in the event simulator, and the
//! handshake-level timing simulation reports the same deadlock — the
//! abstraction does not paper over real silicon behaviour.

use drd_check::handshake::{handshake_spec, verify_handshake_timing};
use drd_check::netgen::{FfKind, FfRecipe, GateOp, NetRecipe, StageRecipe};
use drd_core::{DesyncOptions, Desynchronizer};
use drd_liberty::{vlib90, Lv};
use drd_sim::{SimOptions, Simulator};

/// Two regions: a source with a 24-NAND critical path (a long matched
/// delay) feeding a successor with a single inverter (a fast ack).
fn imbalanced_recipe() -> NetRecipe {
    // pool: din (0), q0_0 (1), q1_0 (2) → cloud nets start at index 3.
    let chain: Vec<GateOp> = (0..24)
        .map(|c| GateOp {
            kind: 2, // NAND2X1 — survives buffer cleaning
            a: if c == 0 { 0 } else { 3 + c - 1 },
            b: 0,
        })
        .collect();
    NetRecipe {
        inputs: 1,
        input_bits: 1,
        stages: vec![
            StageRecipe {
                cloud: chain,
                ffs: vec![FfRecipe { kind: FfKind::Plain, d: 3 + 23, aux0: 0, aux1: 0 }],
            },
            StageRecipe {
                // One inverter reading q0_0 keeps the stages in separate
                // regions (a direct FF→FF edge would merge them).
                cloud: vec![GateOp { kind: 0, a: 1, b: 0 }],
                ffs: vec![FfRecipe { kind: FfKind::Plain, d: 3, aux0: 0, aux1: 0 }],
            },
        ],
    }
}

#[test]
fn simulator_deadlock_verdict_matches_gate_level_stall() {
    let lib = vlib90::high_speed();
    let recipe = imbalanced_recipe();
    let module = recipe.build().unwrap();
    let tool = Desynchronizer::new(&lib).unwrap();
    let result = tool.run(&module, &DesyncOptions::default()).unwrap();

    // The shape under test: an open chain whose source carries the much
    // longer matched delay.
    let regions = &result.report.regions;
    let source = regions.iter().find(|r| r.ffs > 0 && r.critical_delay_ns > 0.4).unwrap();
    let sink = regions.iter().find(|r| r.ffs > 0 && r.critical_delay_ns < 0.2).unwrap();
    assert!(source.delem_levels > sink.delem_levels + 5, "imbalance lost in grouping");

    // Gate level: the source region's latches stop capturing.
    let mut dut = Simulator::new(&result.design, &lib, SimOptions::default()).unwrap();
    dut.poke("din", Lv::One).unwrap();
    dut.poke("drd_rst", Lv::Zero).unwrap();
    dut.run_for(2.0);
    dut.poke("drd_rst", Lv::One).unwrap();
    dut.run_for(240.0);
    let captures = dut.captures().capture_count("r0_0_ls");
    assert!(captures <= 2, "expected a stall, saw {captures} captures in 240 ns");

    // Handshake level: the timing simulation reports the same wedge.
    let spec = handshake_spec(&result.report, &lib).unwrap();
    let err = verify_handshake_timing(&spec, &lib).expect_err("deadlock must be reported");
    assert!(err.contains("deadlock"), "unexpected oracle failure: {err}");
}
