//! Property test for the liveness guard (DESIGN.md §3i): fuzzed
//! *imbalanced open-chain* designs — a loopback source whose matched
//! delay dwarfs its successor's response time, the pulse-swallowing
//! topology — must always come out of the flow either
//!
//! * **live**: the handshake-timing oracle verifies the repaired
//!   control network settles (and the structural liveness oracle agrees
//!   the repairs actually landed in the netlist), or
//! * **diagnosed**: an explicit [`drd_core::DesyncError::Liveness`] /
//!   recorded `Degradation` — never an undiagnosed deadlock.
//!
//! Across the corpus the guard must actually fire: at least one design
//! needs a recorded `LivenessRepair` (otherwise the generator stopped
//! producing the hazard and the property is vacuous).
//!
//! Replay knobs: `DRD_PROP_SEED`, `DRD_PROP_CASES`, `DRD_PROP_CASE_SEED`.

use std::sync::atomic::{AtomicUsize, Ordering};

use drd_check::handshake::{handshake_spec, verify_handshake_timing};
use drd_check::liveness::verify_liveness;
use drd_check::netgen::{NetGenParams, NetRecipe};
use drd_check::{prop_par_with, Config, Rng};
use drd_core::liveness::{plan_repairs, RegionState, ResponseModel};
use drd_core::{DesyncError, DesyncOptions, Desynchronizer, LivenessAction};
use drd_liberty::vlib90;

#[test]
fn imbalanced_open_chains_are_repaired_or_diagnosed_never_wedged() {
    let lib = vlib90::high_speed();
    let tool = Desynchronizer::new(&lib).expect("tool builds");
    let base = NetGenParams { max_stages: 3, max_width: 2, ..NetGenParams::default() };
    let repaired = AtomicUsize::new(0);
    prop_par_with(
        Config::new(40).seed(0x11FE_6A2D_5AFE),
        |rng: &mut Rng| {
            let mut recipe = NetRecipe::sample(rng, &base);
            // Chain depths across the hazard boundary: shallow chains
            // check the guard stays quiet, deep ones force the ladder.
            recipe.imbalance(rng.range(6, 30));
            recipe
        },
        |recipe: &NetRecipe| {
            let module = recipe.build().map_err(|e| e.to_string())?;
            let result = match tool.run(&module, &DesyncOptions::default()) {
                Ok(result) => result,
                // A structured liveness verdict (or any other typed flow
                // rejection) is a diagnosis, not a wedge.
                Err(DesyncError::Liveness { .. }) => return Ok(()),
                Err(_) => return Ok(()),
            };
            if !result.report.liveness_repairs.is_empty() {
                repaired.fetch_add(1, Ordering::Relaxed);
            }
            // Structural: the reported repairs are really in the netlist.
            verify_liveness(&result.report, &result.design, &lib)?;
            // Behavioural: the shipped network settles — a deadlock here
            // would be exactly the undiagnosed wedge the guard forbids.
            let spec = handshake_spec(&result.report, &lib).map_err(|e| e.to_string())?;
            verify_handshake_timing(&spec, &lib)
                .map_err(|e| format!("undiagnosed deadlock shipped: {e}"))?;
            Ok(())
        },
    );
    let hits = repaired.load(Ordering::Relaxed);
    assert!(hits >= 5, "guard fired on only {hits} designs — generator lost the hazard");
}

/// Every rung of the repair ladder must actually fire across a corpus
/// of deepening-infeasible topologies ([`NetGenParams::deepen_infeasible`]):
/// the successor's deepen target overshoots the clock budget, so the
/// flow is forced past the deepen rung onto the **latch** rung. The
/// **degrade** rung is unreachable in-flow — a latched loopback no
/// longer swallows its pulse, so the handshake-sim validator always
/// settles after latching — and is covered at the planner level on the
/// same fuzzed topologies with an injected validator that keeps
/// reporting deadlock until a region has been degraded.
#[test]
fn deepening_infeasible_corpus_exercises_latch_and_degrade_rungs() {
    let lib = vlib90::high_speed();
    let tool = Desynchronizer::new(&lib).expect("tool builds");
    let model = ResponseModel::probe(&lib).expect("model probes");
    // Budget: a 24-level element fits, the margin-scaled target of a
    // 48..96-level source rise never does — deepening is infeasible by
    // construction, independent of the library's absolute level delay.
    let period = model.rise_ns(24);
    let latched = AtomicUsize::new(0);
    let degraded = AtomicUsize::new(0);
    prop_par_with(
        Config::new(24).seed(0x9A7C_44D1_03EB),
        |rng: &mut Rng| {
            let params = NetGenParams {
                max_stages: 2,
                max_width: 2,
                deepen_infeasible: rng.range(48, 96),
                ..NetGenParams::default()
            };
            NetRecipe::sample(rng, &params)
        },
        |recipe: &NetRecipe| {
            let module = recipe.build().map_err(|e| e.to_string())?;
            let opts = DesyncOptions { clock_period_ns: period, ..DesyncOptions::default() };
            // A typed rejection (`DesyncError::Liveness` or any other
            // flow error) is a diagnosis, not a wedge — only completed
            // flows are checked further.
            if let Ok(result) = tool.run(&module, &opts) {
                for lr in &result.report.liveness_repairs {
                    match lr.action {
                        LivenessAction::RequestLatch => {
                            latched.fetch_add(1, Ordering::Relaxed);
                        }
                        LivenessAction::Degrade => {
                            degraded.fetch_add(1, Ordering::Relaxed);
                        }
                        LivenessAction::DeepenSuccessor { .. } => {}
                    }
                }
                verify_liveness(&result.report, &result.design, &lib)?;
                let spec = handshake_spec(&result.report, &lib).map_err(|e| e.to_string())?;
                verify_handshake_timing(&spec, &lib)
                    .map_err(|e| format!("undiagnosed deadlock shipped: {e}"))?;
            }

            // Planner-level degrade coverage on the same fuzzed shape:
            // one region per stage in a chain, the injected validator
            // deadlocks until something has been degraded, so the
            // ladder must walk latch → degrade to terminate.
            let mut states: Vec<RegionState> = recipe
                .stages
                .iter()
                .enumerate()
                .map(|(i, s)| RegionState {
                    name: format!("g{i}"),
                    controlled: true,
                    levels: s.cloud.len().max(1),
                    latched: false,
                })
                .collect();
            let edges: Vec<(usize, usize)> = (1..states.len()).map(|i| (i - 1, i)).collect();
            let repairs = plan_repairs(
                &model,
                &mut states,
                &edges,
                period,
                1.08,
                false,
                |st: &[RegionState]| Ok(st.iter().any(|s| !s.controlled)),
            )
            .map_err(|e| format!("planner wedged instead of degrading: {e}"))?;
            if !repairs.iter().any(|r| matches!(r.action, LivenessAction::Degrade)) {
                return Err("injected deadlock never reached the degrade rung".to_owned());
            }
            degraded.fetch_add(1, Ordering::Relaxed);
            Ok(())
        },
    );
    let l = latched.load(Ordering::Relaxed);
    let d = degraded.load(Ordering::Relaxed);
    assert!(l >= 1, "latch rung never fired in-flow across the corpus");
    assert!(d >= 1, "degrade rung never fired across the corpus");
}

/// Strict mode turns the degrade rung into a hard error; whatever the
/// imbalance, a strict flow must either produce a live network or fail
/// with a typed error — never record a silent clock fallback.
#[test]
fn strict_flows_never_record_a_liveness_degradation() {
    let lib = vlib90::high_speed();
    let tool = Desynchronizer::new(&lib).expect("tool builds");
    let base = NetGenParams { max_stages: 2, max_width: 1, ..NetGenParams::default() };
    prop_par_with(
        Config::new(12).seed(0x57FF_1C7D_0C75),
        |rng: &mut Rng| {
            let mut recipe = NetRecipe::sample(rng, &base);
            recipe.imbalance(rng.range(16, 28));
            recipe
        },
        |recipe: &NetRecipe| {
            let module = recipe.build().map_err(|e| e.to_string())?;
            let opts = DesyncOptions { strict: true, ..DesyncOptions::default() };
            match tool.run(&module, &opts) {
                Ok(result) => {
                    if !result.report.degradations.is_empty() {
                        return Err("strict flow recorded a degradation".to_owned());
                    }
                    Ok(())
                }
                Err(_) => Ok(()), // typed rejection is fine under --strict
            }
        },
    );
}
