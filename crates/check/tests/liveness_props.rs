//! Property test for the liveness guard (DESIGN.md §3i): fuzzed
//! *imbalanced open-chain* designs — a loopback source whose matched
//! delay dwarfs its successor's response time, the pulse-swallowing
//! topology — must always come out of the flow either
//!
//! * **live**: the handshake-timing oracle verifies the repaired
//!   control network settles (and the structural liveness oracle agrees
//!   the repairs actually landed in the netlist), or
//! * **diagnosed**: an explicit [`drd_core::DesyncError::Liveness`] /
//!   recorded `Degradation` — never an undiagnosed deadlock.
//!
//! Across the corpus the guard must actually fire: at least one design
//! needs a recorded `LivenessRepair` (otherwise the generator stopped
//! producing the hazard and the property is vacuous).
//!
//! Replay knobs: `DRD_PROP_SEED`, `DRD_PROP_CASES`, `DRD_PROP_CASE_SEED`.

use std::sync::atomic::{AtomicUsize, Ordering};

use drd_check::handshake::{handshake_spec, verify_handshake_timing};
use drd_check::liveness::verify_liveness;
use drd_check::netgen::{NetGenParams, NetRecipe};
use drd_check::{prop_par_with, Config, Rng};
use drd_core::{DesyncError, DesyncOptions, Desynchronizer};
use drd_liberty::vlib90;

#[test]
fn imbalanced_open_chains_are_repaired_or_diagnosed_never_wedged() {
    let lib = vlib90::high_speed();
    let tool = Desynchronizer::new(&lib).expect("tool builds");
    let base = NetGenParams { max_stages: 3, max_width: 2, ..NetGenParams::default() };
    let repaired = AtomicUsize::new(0);
    prop_par_with(
        Config::new(40).seed(0x11FE_6A2D_5AFE),
        |rng: &mut Rng| {
            let mut recipe = NetRecipe::sample(rng, &base);
            // Chain depths across the hazard boundary: shallow chains
            // check the guard stays quiet, deep ones force the ladder.
            recipe.imbalance(rng.range(6, 30));
            recipe
        },
        |recipe: &NetRecipe| {
            let module = recipe.build().map_err(|e| e.to_string())?;
            let result = match tool.run(&module, &DesyncOptions::default()) {
                Ok(result) => result,
                // A structured liveness verdict (or any other typed flow
                // rejection) is a diagnosis, not a wedge.
                Err(DesyncError::Liveness { .. }) => return Ok(()),
                Err(_) => return Ok(()),
            };
            if !result.report.liveness_repairs.is_empty() {
                repaired.fetch_add(1, Ordering::Relaxed);
            }
            // Structural: the reported repairs are really in the netlist.
            verify_liveness(&result.report, &result.design, &lib)?;
            // Behavioural: the shipped network settles — a deadlock here
            // would be exactly the undiagnosed wedge the guard forbids.
            let spec = handshake_spec(&result.report, &lib).map_err(|e| e.to_string())?;
            verify_handshake_timing(&spec, &lib)
                .map_err(|e| format!("undiagnosed deadlock shipped: {e}"))?;
            Ok(())
        },
    );
    let hits = repaired.load(Ordering::Relaxed);
    assert!(hits >= 5, "guard fired on only {hits} designs — generator lost the hazard");
}

/// Strict mode turns the degrade rung into a hard error; whatever the
/// imbalance, a strict flow must either produce a live network or fail
/// with a typed error — never record a silent clock fallback.
#[test]
fn strict_flows_never_record_a_liveness_degradation() {
    let lib = vlib90::high_speed();
    let tool = Desynchronizer::new(&lib).expect("tool builds");
    let base = NetGenParams { max_stages: 2, max_width: 1, ..NetGenParams::default() };
    prop_par_with(
        Config::new(12).seed(0x57FF_1C7D_0C75),
        |rng: &mut Rng| {
            let mut recipe = NetRecipe::sample(rng, &base);
            recipe.imbalance(rng.range(16, 28));
            recipe
        },
        |recipe: &NetRecipe| {
            let module = recipe.build().map_err(|e| e.to_string())?;
            let opts = DesyncOptions { strict: true, ..DesyncOptions::default() };
            match tool.run(&module, &opts) {
                Ok(result) => {
                    if !result.report.degradations.is_empty() {
                        return Err("strict flow recorded a degradation".to_owned());
                    }
                    Ok(())
                }
                Err(_) => Ok(()), // typed rejection is fine under --strict
            }
        },
    );
}
