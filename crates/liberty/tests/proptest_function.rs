//! Property: the boolean-function engine round-trips through its Display
//! form with identical truth tables, and evaluation is monotone in X.

use proptest::prelude::*;

use drd_liberty::function::Expr;
use drd_liberty::Lv;

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (0u8..4).prop_map(|i| Expr::Var(format!("P{i}"))),
        any::<bool>().prop_map(Expr::Const),
    ];
    leaf.prop_recursive(4, 24, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(|e| Expr::Not(Box::new(e))),
            proptest::collection::vec(inner.clone(), 2..4).prop_map(Expr::And),
            proptest::collection::vec(inner.clone(), 2..4).prop_map(Expr::Or),
            (inner.clone(), inner).prop_map(|(a, b)| Expr::Xor(Box::new(a), Box::new(b))),
        ]
    })
}

fn eval_bits(e: &Expr, bits: u8) -> Lv {
    e.eval(&mut |name: &str| {
        let i: u8 = name[1..].parse().unwrap();
        Lv::from_bool((bits >> i) & 1 == 1)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn display_parse_preserves_truth_table(e in arb_expr()) {
        let reparsed = Expr::parse(&e.to_string()).unwrap();
        for bits in 0u8..16 {
            prop_assert_eq!(eval_bits(&e, bits), eval_bits(&reparsed, bits));
        }
    }

    /// X-monotonicity: replacing a known input by X can only move the
    /// output to X, never flip it between 0 and 1.
    #[test]
    fn x_is_monotone(e in arb_expr(), bits in 0u8..16, xed in 0u8..4) {
        let known = eval_bits(&e, bits);
        let with_x = e.eval(&mut |name: &str| {
            let i: u8 = name[1..].parse().unwrap();
            if i == xed {
                Lv::X
            } else {
                Lv::from_bool((bits >> i) & 1 == 1)
            }
        });
        prop_assert!(
            with_x == known || with_x == Lv::X,
            "{:?} -> {:?}",
            known,
            with_x
        );
    }
}
