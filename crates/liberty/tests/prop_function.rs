//! Property: the boolean-function engine round-trips through its Display
//! form with identical truth tables, and evaluation is monotone in X.

use drd_check::{prop, Rng, Shrink};
use drd_liberty::function::Expr;
use drd_liberty::Lv;

/// Newtype so the harness can shrink expressions structurally.
#[derive(Clone, Debug)]
struct ArbExpr(Expr);

fn gen_expr(rng: &mut Rng, depth: usize) -> Expr {
    if depth == 0 || rng.chance(0.3) {
        if rng.coin() {
            Expr::Var(format!("P{}", rng.below(4)))
        } else {
            Expr::Const(rng.coin())
        }
    } else {
        match rng.below(4) {
            0 => Expr::Not(Box::new(gen_expr(rng, depth - 1))),
            1 => {
                let n = rng.range(2, 4);
                Expr::And((0..n).map(|_| gen_expr(rng, depth - 1)).collect())
            }
            2 => {
                let n = rng.range(2, 4);
                Expr::Or((0..n).map(|_| gen_expr(rng, depth - 1)).collect())
            }
            _ => Expr::Xor(
                Box::new(gen_expr(rng, depth - 1)),
                Box::new(gen_expr(rng, depth - 1)),
            ),
        }
    }
}

impl Shrink for ArbExpr {
    fn shrink(&self) -> Vec<ArbExpr> {
        let mut out: Vec<Expr> = Vec::new();
        match &self.0 {
            Expr::Not(e) => out.push((**e).clone()),
            Expr::And(v) | Expr::Or(v) => out.extend(v.iter().cloned()),
            Expr::Xor(a, b) => {
                out.push((**a).clone());
                out.push((**b).clone());
            }
            Expr::Var(_) => out.push(Expr::Const(false)),
            Expr::Const(_) => {}
        }
        out.into_iter().map(ArbExpr).collect()
    }
}

fn eval_bits(e: &Expr, bits: u8) -> Lv {
    e.eval(&mut |name: &str| {
        let i: u8 = name[1..].parse().unwrap();
        Lv::from_bool((bits >> i) & 1 == 1)
    })
}

#[test]
fn display_parse_preserves_truth_table() {
    prop(
        128,
        |rng: &mut Rng| ArbExpr(gen_expr(rng, 4)),
        |e: &ArbExpr| {
            let reparsed = Expr::parse(&e.0.to_string())
                .map_err(|err| format!("{} does not re-parse: {err}", e.0))?;
            for bits in 0u8..16 {
                let (a, b) = (eval_bits(&e.0, bits), eval_bits(&reparsed, bits));
                if a != b {
                    return Err(format!("inputs {bits:04b}: {a:?} != {b:?} for {}", e.0));
                }
            }
            Ok(())
        },
    );
}

/// X-monotonicity: replacing a known input by X can only move the output
/// to X, never flip it between 0 and 1.
#[test]
fn x_is_monotone() {
    prop(
        128,
        |rng: &mut Rng| {
            let e = ArbExpr(gen_expr(rng, 4));
            let bits = rng.below(16) as u8;
            let xed = rng.below(4) as u8;
            (e, bits, xed)
        },
        |(e, bits, xed): &(ArbExpr, u8, u8)| {
            let known = eval_bits(&e.0, *bits);
            let with_x = e.0.eval(&mut |name: &str| {
                let i: u8 = name[1..].parse().unwrap();
                if i == *xed {
                    Lv::X
                } else {
                    Lv::from_bool((bits >> i) & 1 == 1)
                }
            });
            if with_x == known || with_x == Lv::X {
                Ok(())
            } else {
                Err(format!("{known:?} -> {with_x:?} for {}", e.0))
            }
        },
    );
}
