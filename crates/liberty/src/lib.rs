//! # drd-liberty — technology-library support
//!
//! The library-preparation layer of the desynchronization flow (§3.1 of the
//! paper). It provides:
//!
//! * a ternary [`Lv`] logic value and a boolean-[`function`] engine for
//!   Liberty `function` strings,
//! * a parser for a practical subset of the Liberty (`.lib`) format
//!   ([`parse_library`]),
//! * the [`Library`]/[`LibCell`] model: pins, directions, functions,
//!   per-arc delays, areas, power coefficients and sequential semantics,
//! * the [`gatefile`] — the paper's per-library preparation artifact, with
//!   the flip-flop → master/slave-latch replacement rules (§3.1.1, §3.1.2),
//! * [`vlib90`] — a synthetic 90 nm-class library (High-Speed and
//!   Low-Leakage variants) standing in for the proprietary ST CORE9 library
//!   used by the paper (see DESIGN.md, substitution table),
//! * PVT [`Corner`] derating shared by STA and simulation.
//!
//! ```
//! use drd_liberty::{vlib90, CellClass};
//!
//! let lib = vlib90::high_speed();
//! let nand = lib.cell("NAND2X1").expect("vlib90 has NAND2X1");
//! assert_eq!(nand.class(), CellClass::Combinational);
//! assert!(nand.area > 0.0);
//! ```

mod cell;
mod corner;
pub mod function;
pub mod gatefile;
mod library;
mod logic;
mod parser;
pub mod vlib90;

pub use cell::{CellClass, FfInfo, LatchInfo, LibCell, Pin, SeqKind, TimingArc};
pub use corner::Corner;
pub use library::{Library, LibraryError};
pub use logic::Lv;
pub use parser::parse_library;
