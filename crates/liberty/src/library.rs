//! The [`Library`] container and its error type.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use drd_netlist::{KindRef, PinDirs, PortDir};

use crate::cell::{CellClass, LibCell};

/// Error produced while parsing or validating a technology library.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LibraryError {
    message: String,
    line: Option<usize>,
}

impl LibraryError {
    /// Creates an error without source position.
    pub fn new(message: impl Into<String>) -> Self {
        LibraryError {
            message: message.into(),
            line: None,
        }
    }

    /// Creates an error referring to a source line.
    pub fn at(line: usize, message: impl Into<String>) -> Self {
        LibraryError {
            message: message.into(),
            line: Some(line),
        }
    }
}

impl fmt::Display for LibraryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.line {
            Some(line) => write!(f, "liberty error at line {line}: {}", self.message),
            None => write!(f, "liberty error: {}", self.message),
        }
    }
}

impl Error for LibraryError {}

/// A technology library: a named collection of [`LibCell`]s.
#[derive(Debug, Clone)]
pub struct Library {
    name: String,
    cells: Vec<LibCell>,
    index: HashMap<String, usize>,
}

impl Library {
    /// Builds a library from already-constructed cells.
    ///
    /// # Errors
    /// Returns [`LibraryError`] on duplicate cell names.
    pub fn from_cells(
        name: impl Into<String>,
        cells: Vec<LibCell>,
    ) -> Result<Library, LibraryError> {
        let mut index = HashMap::with_capacity(cells.len());
        for (i, cell) in cells.iter().enumerate() {
            if index.insert(cell.name.clone(), i).is_some() {
                return Err(LibraryError::new(format!(
                    "duplicate cell `{}`",
                    cell.name
                )));
            }
        }
        Ok(Library {
            name: name.into(),
            cells,
            index,
        })
    }

    /// Library name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Looks a cell up by name.
    pub fn cell(&self, name: &str) -> Option<&LibCell> {
        self.index.get(name).map(|&i| &self.cells[i])
    }

    /// Looks up the cell instantiated by a netlist cell kind.
    pub fn cell_of(&self, kind: KindRef<'_>) -> Option<&LibCell> {
        match kind {
            KindRef::Lib(name) => self.cell(name),
            KindRef::Instance(_) => None,
        }
    }

    /// Iterates over all cells.
    pub fn cells(&self) -> impl Iterator<Item = &LibCell> {
        self.cells.iter()
    }

    /// Area of the named cell (0 for unknown cells).
    pub fn area_of(&self, kind: KindRef<'_>) -> f64 {
        self.cell_of(kind).map(|c| c.area).unwrap_or(0.0)
    }

    /// Whether the named cell is sequential (FF, latch or C-element).
    pub fn is_sequential(&self, kind: KindRef<'_>) -> bool {
        self.cell_of(kind).map(|c| c.is_sequential()).unwrap_or(false)
    }

    /// Classification of the named cell.
    pub fn class_of(&self, kind: KindRef<'_>) -> Option<CellClass> {
        self.cell_of(kind).map(|c| c.class())
    }

    /// Cells of a given class, sorted by area (useful for choosing the
    /// smallest buffer / inverter / latch).
    pub fn cells_of_class(&self, class: CellClass) -> Vec<&LibCell> {
        let mut v: Vec<&LibCell> = self.cells.iter().filter(|c| c.class() == class).collect();
        v.sort_by(|a, b| a.area.total_cmp(&b.area));
        v
    }
}

impl PinDirs for Library {
    fn pin_dir(&self, kind: KindRef<'_>, pin: &str) -> Option<PortDir> {
        self.cell_of(kind)?.pin(pin).map(|p| p.dir)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::{Pin, SeqKind};

    fn cell(name: &str, area: f64) -> LibCell {
        LibCell {
            name: name.into(),
            area,
            leakage: 0.0,
            switching_energy: 0.0,
            setup: 0.0,
            hold: 0.0,
            pins: vec![Pin {
                name: "Z".into(),
                dir: PortDir::Output,
                function: None,
                capacitance: 0.0,
                drive_resistance: 1.0,
            }],
            seq: SeqKind::None,
            arcs: vec![],
        }
    }

    #[test]
    fn lookup_and_area() {
        let lib = Library::from_cells("t", vec![cell("A", 1.0), cell("B", 2.0)]).unwrap();
        assert_eq!(lib.name(), "t");
        assert!(lib.cell("A").is_some());
        assert!(lib.cell("C").is_none());
        assert_eq!(lib.area_of(KindRef::Lib("B")), 2.0);
        assert_eq!(lib.area_of(KindRef::Lib("missing")), 0.0);
        assert_eq!(lib.area_of(KindRef::Instance("B")), 0.0);
    }

    #[test]
    fn duplicates_rejected() {
        assert!(Library::from_cells("t", vec![cell("A", 1.0), cell("A", 2.0)]).is_err());
    }

    #[test]
    fn pin_dirs_impl() {
        let lib = Library::from_cells("t", vec![cell("A", 1.0)]).unwrap();
        assert_eq!(lib.pin_dir(KindRef::Lib("A"), "Z"), Some(PortDir::Output));
        assert_eq!(lib.pin_dir(KindRef::Lib("A"), "Y"), None);
    }

    #[test]
    fn cells_of_class_sorted_by_area() {
        let lib = Library::from_cells("t", vec![cell("BIG", 9.0), cell("SMALL", 1.0)]).unwrap();
        let combs = lib.cells_of_class(CellClass::Combinational);
        assert_eq!(combs[0].name, "SMALL");
        assert_eq!(combs[1].name, "BIG");
    }
}
