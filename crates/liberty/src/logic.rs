//! Ternary logic values.

use std::fmt;
use std::ops::{BitAnd, BitOr, BitXor, Not};

/// A ternary logic value: `0`, `1` or unknown (`X`).
///
/// `X` propagates pessimistically through the operators, with the usual
/// dominance rules (`0 & X = 0`, `1 | X = 1`).
///
/// ```
/// use drd_liberty::Lv;
/// assert_eq!(Lv::Zero & Lv::X, Lv::Zero);
/// assert_eq!(Lv::One | Lv::X, Lv::One);
/// assert_eq!(Lv::One ^ Lv::X, Lv::X);
/// assert_eq!(!Lv::X, Lv::X);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Lv {
    /// Logic low.
    Zero,
    /// Logic high.
    One,
    /// Unknown / uninitialized.
    #[default]
    X,
}

impl Lv {
    /// Converts a `bool` into `Zero`/`One`.
    pub fn from_bool(b: bool) -> Lv {
        if b {
            Lv::One
        } else {
            Lv::Zero
        }
    }

    /// Returns `Some(bool)` for known values, `None` for `X`.
    pub fn to_bool(self) -> Option<bool> {
        match self {
            Lv::Zero => Some(false),
            Lv::One => Some(true),
            Lv::X => None,
        }
    }

    /// True if the value is known (not `X`).
    pub fn is_known(self) -> bool {
        self != Lv::X
    }
}

impl From<bool> for Lv {
    fn from(b: bool) -> Lv {
        Lv::from_bool(b)
    }
}

impl fmt::Display for Lv {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Lv::Zero => "0",
            Lv::One => "1",
            Lv::X => "x",
        })
    }
}

impl Not for Lv {
    type Output = Lv;
    fn not(self) -> Lv {
        match self {
            Lv::Zero => Lv::One,
            Lv::One => Lv::Zero,
            Lv::X => Lv::X,
        }
    }
}

impl BitAnd for Lv {
    type Output = Lv;
    fn bitand(self, rhs: Lv) -> Lv {
        match (self, rhs) {
            (Lv::Zero, _) | (_, Lv::Zero) => Lv::Zero,
            (Lv::One, Lv::One) => Lv::One,
            _ => Lv::X,
        }
    }
}

impl BitOr for Lv {
    type Output = Lv;
    fn bitor(self, rhs: Lv) -> Lv {
        match (self, rhs) {
            (Lv::One, _) | (_, Lv::One) => Lv::One,
            (Lv::Zero, Lv::Zero) => Lv::Zero,
            _ => Lv::X,
        }
    }
}

impl BitXor for Lv {
    type Output = Lv;
    fn bitxor(self, rhs: Lv) -> Lv {
        match (self.to_bool(), rhs.to_bool()) {
            (Some(a), Some(b)) => Lv::from_bool(a ^ b),
            _ => Lv::X,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: [Lv; 3] = [Lv::Zero, Lv::One, Lv::X];

    #[test]
    fn and_dominance() {
        for v in ALL {
            assert_eq!(Lv::Zero & v, Lv::Zero);
            assert_eq!(v & Lv::Zero, Lv::Zero);
        }
        assert_eq!(Lv::One & Lv::One, Lv::One);
        assert_eq!(Lv::One & Lv::X, Lv::X);
    }

    #[test]
    fn or_dominance() {
        for v in ALL {
            assert_eq!(Lv::One | v, Lv::One);
            assert_eq!(v | Lv::One, Lv::One);
        }
        assert_eq!(Lv::Zero | Lv::Zero, Lv::Zero);
        assert_eq!(Lv::Zero | Lv::X, Lv::X);
    }

    #[test]
    fn xor_and_not() {
        assert_eq!(Lv::One ^ Lv::One, Lv::Zero);
        assert_eq!(Lv::Zero ^ Lv::One, Lv::One);
        assert_eq!(Lv::X ^ Lv::Zero, Lv::X);
        assert_eq!(!Lv::Zero, Lv::One);
        assert_eq!(!Lv::One, Lv::Zero);
    }

    #[test]
    fn demorgan_holds_for_known_values() {
        for a in [Lv::Zero, Lv::One] {
            for b in [Lv::Zero, Lv::One] {
                assert_eq!(!(a & b), !a | !b);
                assert_eq!(!(a | b), !a & !b);
            }
        }
    }

    #[test]
    fn bool_roundtrip() {
        assert_eq!(Lv::from_bool(true).to_bool(), Some(true));
        assert_eq!(Lv::from_bool(false).to_bool(), Some(false));
        assert_eq!(Lv::X.to_bool(), None);
        assert_eq!(Lv::from(true), Lv::One);
        assert!(Lv::One.is_known());
        assert!(!Lv::X.is_known());
    }

    #[test]
    fn display() {
        assert_eq!(format!("{}{}{}", Lv::Zero, Lv::One, Lv::X), "01x");
    }
}
