//! Library-cell model: pins, timing arcs, sequential semantics.

use drd_netlist::PortDir;

use crate::function::Expr;

/// Broad classification of a library cell (the paper's gatefile `type`
/// field: flip-flop, latch or combinational logic gate — plus the C-Muller
/// element, which desynchronization treats as its own kind).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CellClass {
    /// Pure combinational gate.
    Combinational,
    /// Edge-triggered flip-flop.
    FlipFlop,
    /// Level-sensitive latch.
    Latch,
    /// C-Muller (rendezvous) element (§2.4.3).
    CElement,
}

/// Edge-triggered storage semantics (Liberty `ff` group).
#[derive(Debug, Clone, PartialEq)]
pub struct FfInfo {
    /// Next-state function, evaluated at the active clock edge. Scan muxes,
    /// synchronous set/reset and clock enables appear inside this
    /// expression (e.g. `(SE & SI) | (!SE & D)` for a scan flip-flop).
    pub next_state: Expr,
    /// Clock expression (a bare pin name for rising-edge clocking).
    pub clocked_on: String,
    /// Asynchronous clear condition (output forced 0 while true).
    pub clear: Option<Expr>,
    /// Asynchronous preset condition (output forced 1 while true).
    pub preset: Option<Expr>,
    /// Non-inverted output pin.
    pub q: String,
    /// Inverted output pin, if present.
    pub qn: Option<String>,
}

/// Level-sensitive storage semantics (Liberty `latch` group).
#[derive(Debug, Clone, PartialEq)]
pub struct LatchInfo {
    /// Data function sampled while the latch is transparent.
    pub data_in: Expr,
    /// Enable expression (transparent while true).
    pub enable: String,
    /// Asynchronous clear condition.
    pub clear: Option<Expr>,
    /// Asynchronous preset condition.
    pub preset: Option<Expr>,
    /// Non-inverted output pin.
    pub q: String,
    /// Inverted output pin, if present.
    pub qn: Option<String>,
}

/// Sequential behaviour of a cell.
#[derive(Debug, Clone, PartialEq)]
pub enum SeqKind {
    /// No state: combinational.
    None,
    /// Edge-triggered flip-flop.
    FlipFlop(FfInfo),
    /// Level-sensitive latch.
    Latch(LatchInfo),
    /// C-Muller element: output goes high when all inputs are high, low
    /// when all are low, holds otherwise (Table 2.1).
    CElement {
        /// Input pins participating in the rendezvous.
        inputs: Vec<String>,
        /// Optional active-low reset pin (forces output low).
        reset: Option<String>,
        /// Optional active-low set pin (forces output high; used by the
        /// master controllers, which reset with their request asserted).
        set: Option<String>,
        /// Output pin.
        q: String,
    },
}

/// One pin of a library cell.
#[derive(Debug, Clone, PartialEq)]
pub struct Pin {
    /// Pin name.
    pub name: String,
    /// Direction.
    pub dir: PortDir,
    /// Output function (combinational outputs; state outputs reference the
    /// internal state variable and are resolved via [`SeqKind`]).
    pub function: Option<Expr>,
    /// Input capacitance (pF-like units), used by the load-dependent delay
    /// model.
    pub capacitance: f64,
    /// Drive resistance of output pins (delay per unit load).
    pub drive_resistance: f64,
}

/// An intrinsic pin-to-pin delay arc.
#[derive(Debug, Clone, PartialEq)]
pub struct TimingArc {
    /// Input (related) pin.
    pub from: String,
    /// Output pin.
    pub to: String,
    /// Intrinsic rise delay (ns, typical corner).
    pub rise: f64,
    /// Intrinsic fall delay (ns, typical corner).
    pub fall: f64,
}

/// A technology-library cell.
#[derive(Debug, Clone, PartialEq)]
pub struct LibCell {
    /// Cell name.
    pub name: String,
    /// Cell area (µm²-like units).
    pub area: f64,
    /// Leakage power (µW-like units, typical corner).
    pub leakage: f64,
    /// Dynamic switching energy per output toggle (pJ-like units).
    pub switching_energy: f64,
    /// Setup time for sequential cells (ns).
    pub setup: f64,
    /// Hold time for sequential cells (ns).
    pub hold: f64,
    /// Pins in declaration order.
    pub pins: Vec<Pin>,
    /// Sequential behaviour.
    pub seq: SeqKind,
    /// Intrinsic timing arcs.
    pub arcs: Vec<TimingArc>,
}

impl LibCell {
    /// Broad classification of the cell.
    pub fn class(&self) -> CellClass {
        match &self.seq {
            SeqKind::None => CellClass::Combinational,
            SeqKind::FlipFlop(_) => CellClass::FlipFlop,
            SeqKind::Latch(_) => CellClass::Latch,
            SeqKind::CElement { .. } => CellClass::CElement,
        }
    }

    /// True for flip-flops, latches and C-elements.
    pub fn is_sequential(&self) -> bool {
        self.class() != CellClass::Combinational
    }

    /// Looks a pin up by name.
    pub fn pin(&self, name: &str) -> Option<&Pin> {
        self.pins.iter().find(|p| p.name == name)
    }

    /// Position of a pin in declaration order. Consumers that index pins as
    /// small integers (STA, simulation) use this as the shared pin-id space
    /// for a given library cell.
    pub fn pin_index(&self, name: &str) -> Option<u32> {
        self.pins.iter().position(|p| p.name == name).map(|i| i as u32)
    }

    /// Iterator over input pins.
    pub fn input_pins(&self) -> impl Iterator<Item = &Pin> {
        self.pins.iter().filter(|p| p.dir == PortDir::Input)
    }

    /// Iterator over output pins.
    pub fn output_pins(&self) -> impl Iterator<Item = &Pin> {
        self.pins.iter().filter(|p| p.dir == PortDir::Output)
    }

    /// Intrinsic (rise, fall) delay of the arc `from → to`, if present.
    pub fn arc_delay(&self, from: &str, to: &str) -> Option<(f64, f64)> {
        self.arcs
            .iter()
            .find(|a| a.from == from && a.to == to)
            .map(|a| (a.rise, a.fall))
    }

    /// Worst intrinsic delay (max over arcs, max of rise/fall); 0 if no arcs.
    pub fn max_intrinsic_delay(&self) -> f64 {
        self.arcs
            .iter()
            .map(|a| a.rise.max(a.fall))
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::function::Expr;

    fn inv() -> LibCell {
        LibCell {
            name: "INVX1".into(),
            area: 2.1,
            leakage: 0.01,
            switching_energy: 0.002,
            setup: 0.0,
            hold: 0.0,
            pins: vec![
                Pin {
                    name: "A".into(),
                    dir: PortDir::Input,
                    function: None,
                    capacitance: 0.003,
                    drive_resistance: 0.0,
                },
                Pin {
                    name: "Z".into(),
                    dir: PortDir::Output,
                    function: Some(Expr::parse("!A").unwrap()),
                    capacitance: 0.0,
                    drive_resistance: 1.1,
                },
            ],
            seq: SeqKind::None,
            arcs: vec![TimingArc {
                from: "A".into(),
                to: "Z".into(),
                rise: 0.014,
                fall: 0.011,
            }],
        }
    }

    #[test]
    fn classification() {
        let cell = inv();
        assert_eq!(cell.class(), CellClass::Combinational);
        assert!(!cell.is_sequential());
    }

    #[test]
    fn pin_and_arc_queries() {
        let cell = inv();
        assert_eq!(cell.pin("A").unwrap().dir, PortDir::Input);
        assert_eq!(cell.input_pins().count(), 1);
        assert_eq!(cell.output_pins().count(), 1);
        assert_eq!(cell.arc_delay("A", "Z"), Some((0.014, 0.011)));
        assert_eq!(cell.arc_delay("Z", "A"), None);
        assert!((cell.max_intrinsic_delay() - 0.014).abs() < 1e-12);
    }

    #[test]
    fn celement_class() {
        let mut cell = inv();
        cell.seq = SeqKind::CElement {
            inputs: vec!["A".into(), "B".into()],
            reset: Some("RN".into()),
            set: None,
            q: "Z".into(),
        };
        assert_eq!(cell.class(), CellClass::CElement);
        assert!(cell.is_sequential());
    }
}
