//! Boolean functions in Liberty `function` syntax.
//!
//! Grammar (Liberty operator set): `!a` / `a'` invert, `^` xor, `&`/`*` and
//! (juxtaposition also means and), `|`/`+` or, parentheses, constants `0`
//! and `1`. Precedence, tightest first: invert, xor, and, or.

use std::collections::BTreeSet;
use std::fmt;

use crate::Lv;

/// A parsed boolean expression over named pins.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// A pin reference.
    Var(String),
    /// A constant `0` or `1`.
    Const(bool),
    /// Logical negation.
    Not(Box<Expr>),
    /// N-ary conjunction.
    And(Vec<Expr>),
    /// N-ary disjunction.
    Or(Vec<Expr>),
    /// Exclusive or.
    Xor(Box<Expr>, Box<Expr>),
}

/// Error from [`Expr::parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseFunctionError {
    /// Byte offset in the input where parsing failed.
    pub at: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseFunctionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "function parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseFunctionError {}

impl Expr {
    /// Parses a Liberty function string.
    ///
    /// # Errors
    /// Returns [`ParseFunctionError`] on malformed input.
    ///
    /// ```
    /// use drd_liberty::function::Expr;
    /// use drd_liberty::Lv;
    /// let f = Expr::parse("!(A & B) ^ C").unwrap();
    /// let value = f.eval(&mut |pin: &str| match pin {
    ///     "A" => Lv::One,
    ///     "B" => Lv::Zero,
    ///     _ => Lv::One,
    /// });
    /// assert_eq!(value, Lv::Zero);
    /// ```
    pub fn parse(input: &str) -> Result<Expr, ParseFunctionError> {
        let mut p = FnParser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        let expr = p.parse_or()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(ParseFunctionError {
                at: p.pos,
                message: "trailing input".into(),
            });
        }
        Ok(expr)
    }

    /// Evaluates the expression with pin values from `lookup`.
    pub fn eval(&self, lookup: &mut impl FnMut(&str) -> Lv) -> Lv {
        match self {
            Expr::Var(v) => lookup(v),
            Expr::Const(b) => Lv::from_bool(*b),
            Expr::Not(e) => !e.eval(lookup),
            Expr::And(es) => es.iter().fold(Lv::One, |acc, e| acc & e.eval(lookup)),
            Expr::Or(es) => es.iter().fold(Lv::Zero, |acc, e| acc | e.eval(lookup)),
            Expr::Xor(a, b) => a.eval(lookup) ^ b.eval(lookup),
        }
    }

    /// The set of pin names referenced, in sorted order.
    pub fn vars(&self) -> Vec<String> {
        let mut set = BTreeSet::new();
        self.collect_vars(&mut set);
        set.into_iter().collect()
    }

    fn collect_vars(&self, out: &mut BTreeSet<String>) {
        match self {
            Expr::Var(v) => {
                out.insert(v.clone());
            }
            Expr::Const(_) => {}
            Expr::Not(e) => e.collect_vars(out),
            Expr::And(es) | Expr::Or(es) => es.iter().for_each(|e| e.collect_vars(out)),
            Expr::Xor(a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Var(v) => f.write_str(v),
            Expr::Const(b) => write!(f, "{}", u8::from(*b)),
            Expr::Not(e) => write!(f, "!({e})"),
            Expr::And(es) => {
                let parts: Vec<String> = es.iter().map(|e| format!("({e})")).collect();
                f.write_str(&parts.join(" & "))
            }
            Expr::Or(es) => {
                let parts: Vec<String> = es.iter().map(|e| format!("({e})")).collect();
                f.write_str(&parts.join(" | "))
            }
            Expr::Xor(a, b) => write!(f, "({a}) ^ ({b})"),
        }
    }
}

struct FnParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl FnParser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && (self.bytes[self.pos] as char).is_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<char> {
        self.skip_ws();
        self.bytes.get(self.pos).map(|b| *b as char)
    }

    fn error(&self, message: impl Into<String>) -> ParseFunctionError {
        ParseFunctionError {
            at: self.pos,
            message: message.into(),
        }
    }

    fn parse_or(&mut self) -> Result<Expr, ParseFunctionError> {
        let mut terms = vec![self.parse_and()?];
        while matches!(self.peek(), Some('|') | Some('+')) {
            self.pos += 1;
            terms.push(self.parse_and()?);
        }
        Ok(if terms.len() == 1 {
            terms.pop().expect("one term")
        } else {
            Expr::Or(terms)
        })
    }

    fn parse_and(&mut self) -> Result<Expr, ParseFunctionError> {
        let mut factors = vec![self.parse_xor()?];
        loop {
            match self.peek() {
                Some('&') | Some('*') => {
                    self.pos += 1;
                    factors.push(self.parse_xor()?);
                }
                // Juxtaposition: a following primary begins a new AND factor.
                Some(c) if c == '!' || c == '(' || c.is_ascii_alphanumeric() || c == '_' => {
                    factors.push(self.parse_xor()?);
                }
                _ => break,
            }
        }
        Ok(if factors.len() == 1 {
            factors.pop().expect("one factor")
        } else {
            Expr::And(factors)
        })
    }

    fn parse_xor(&mut self) -> Result<Expr, ParseFunctionError> {
        let mut lhs = self.parse_unary()?;
        while self.peek() == Some('^') {
            self.pos += 1;
            let rhs = self.parse_unary()?;
            lhs = Expr::Xor(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> Result<Expr, ParseFunctionError> {
        let mut expr = match self.peek() {
            Some('!') => {
                self.pos += 1;
                let inner = self.parse_unary()?;
                Expr::Not(Box::new(inner))
            }
            Some('(') => {
                self.pos += 1;
                let inner = self.parse_or()?;
                if self.peek() != Some(')') {
                    return Err(self.error("expected `)`"));
                }
                self.pos += 1;
                inner
            }
            Some('0') => {
                self.pos += 1;
                Expr::Const(false)
            }
            Some('1') => {
                self.pos += 1;
                Expr::Const(true)
            }
            Some(c) if c.is_ascii_alphabetic() || c == '_' => {
                let start = self.pos;
                while self.pos < self.bytes.len() {
                    let c = self.bytes[self.pos] as char;
                    if c.is_ascii_alphanumeric() || c == '_' || c == '[' || c == ']' {
                        self.pos += 1;
                    } else {
                        break;
                    }
                }
                Expr::Var(
                    std::str::from_utf8(&self.bytes[start..self.pos])
                        .expect("ascii slice")
                        .to_owned(),
                )
            }
            Some(c) => return Err(self.error(format!("unexpected character `{c}`"))),
            None => return Err(self.error("unexpected end of input")),
        };
        // Postfix invert: `A'`.
        while self.peek() == Some('\'') {
            self.pos += 1;
            expr = Expr::Not(Box::new(expr));
        }
        Ok(expr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eval_with(expr: &str, pins: &[(&str, Lv)]) -> Lv {
        let f = Expr::parse(expr).unwrap();
        f.eval(&mut |name: &str| {
            pins.iter()
                .find(|(p, _)| *p == name)
                .map(|(_, v)| *v)
                .unwrap_or(Lv::X)
        })
    }

    #[test]
    fn simple_gates() {
        assert_eq!(eval_with("A & B", &[("A", Lv::One), ("B", Lv::One)]), Lv::One);
        assert_eq!(eval_with("A | B", &[("A", Lv::Zero), ("B", Lv::One)]), Lv::One);
        assert_eq!(eval_with("!A", &[("A", Lv::Zero)]), Lv::One);
        assert_eq!(eval_with("A ^ B", &[("A", Lv::One), ("B", Lv::One)]), Lv::Zero);
    }

    #[test]
    fn liberty_operator_aliases() {
        assert_eq!(eval_with("A * B", &[("A", Lv::One), ("B", Lv::One)]), Lv::One);
        assert_eq!(eval_with("A + B", &[("A", Lv::Zero), ("B", Lv::Zero)]), Lv::Zero);
        assert_eq!(eval_with("A'", &[("A", Lv::One)]), Lv::Zero);
        // Juxtaposition is AND.
        assert_eq!(eval_with("A B", &[("A", Lv::One), ("B", Lv::Zero)]), Lv::Zero);
    }

    #[test]
    fn precedence_not_xor_and_or() {
        // !A ^ B & C | D  ==  ((!A ^ B) & C) | D
        let pins = [
            ("A", Lv::One),
            ("B", Lv::Zero),
            ("C", Lv::One),
            ("D", Lv::Zero),
        ];
        assert_eq!(eval_with("!A ^ B & C | D", &pins), Lv::Zero);
        assert_eq!(eval_with("((!A ^ B) & C) | D", &pins), Lv::Zero);
        assert_eq!(eval_with("!A ^ (B & (C | D))", &pins), Lv::Zero);
    }

    #[test]
    fn aoi_gate() {
        // AOI21: !(A1 & A2 | B)
        let f = "!((A1 & A2) | B)";
        assert_eq!(
            eval_with(f, &[("A1", Lv::One), ("A2", Lv::One), ("B", Lv::Zero)]),
            Lv::Zero
        );
        assert_eq!(
            eval_with(f, &[("A1", Lv::Zero), ("A2", Lv::X), ("B", Lv::Zero)]),
            Lv::One
        );
    }

    #[test]
    fn constants() {
        assert_eq!(eval_with("0", &[]), Lv::Zero);
        assert_eq!(eval_with("1 & A", &[("A", Lv::One)]), Lv::One);
    }

    #[test]
    fn vars_are_sorted_unique() {
        let f = Expr::parse("(B & A) | (A ^ C)").unwrap();
        assert_eq!(f.vars(), ["A", "B", "C"]);
    }

    #[test]
    fn bus_style_pin_names() {
        assert_eq!(eval_with("D[1] & D[0]", &[("D[1]", Lv::One), ("D[0]", Lv::One)]), Lv::One);
    }

    #[test]
    fn display_roundtrips_through_parse() {
        for src in ["!(A & B)", "A ^ B ^ C", "(A | B) & !C", "A' + B"] {
            let f = Expr::parse(src).unwrap();
            let g = Expr::parse(&f.to_string()).unwrap();
            // Compare by truth table over the referenced vars.
            let vars = f.vars();
            assert_eq!(vars, g.vars());
            for bits in 0..(1u32 << vars.len()) {
                let mut lk = |name: &str| {
                    let i = vars.iter().position(|v| v == name).unwrap();
                    Lv::from_bool((bits >> i) & 1 == 1)
                };
                assert_eq!(f.eval(&mut lk), g.eval(&mut lk), "src = {src}");
            }
        }
    }

    #[test]
    fn errors() {
        assert!(Expr::parse("").is_err());
        assert!(Expr::parse("A &").is_err());
        assert!(Expr::parse("(A").is_err());
        assert!(Expr::parse("A ? B").is_err());
    }
}
