//! PVT (process / voltage / temperature) operating corners.
//!
//! The paper's library is characterized at *best* and *worst* corners only
//! ("The library does not include typical case conditions", §5 fn. 1);
//! synchronous designs must be clocked at the worst corner, while the
//! desynchronized circuit's delay elements track the actual silicon
//! (§2.5, §5.2.2). Corner derating factors here are shared by the STA
//! engine and the simulator so both see the same timing model.

/// An operating corner, expressed as derating factors applied to the
/// library's typical-corner characterization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Corner {
    /// Corner name for reports ("best", "typical", "worst", "mc").
    pub name: &'static str,
    /// Multiplier applied to every gate delay.
    pub delay_factor: f64,
    /// Multiplier applied to leakage power.
    pub leakage_factor: f64,
    /// Supply voltage (V); dynamic power scales with `voltage²`.
    pub voltage: f64,
}

impl Corner {
    /// Fast process, high voltage, low temperature.
    pub const fn best() -> Corner {
        Corner {
            name: "best",
            delay_factor: 0.68,
            leakage_factor: 2.2,
            voltage: 1.10,
        }
    }

    /// Nominal process, voltage and temperature.
    pub const fn typical() -> Corner {
        Corner {
            name: "typical",
            delay_factor: 1.0,
            leakage_factor: 1.0,
            voltage: 1.00,
        }
    }

    /// Slow process, low voltage, high temperature.
    pub const fn worst() -> Corner {
        Corner {
            name: "worst",
            delay_factor: 1.45,
            leakage_factor: 0.55,
            voltage: 0.90,
        }
    }

    /// Linear interpolation between best (`t = 0`) and worst (`t = 1`),
    /// used for per-chip Monte-Carlo process sampling (Fig. 5.4).
    ///
    /// # Panics
    /// Panics if `t` is not finite.
    pub fn interpolate(t: f64) -> Corner {
        assert!(t.is_finite(), "interpolation parameter must be finite");
        let t = t.clamp(0.0, 1.0);
        let b = Corner::best();
        let w = Corner::worst();
        let lerp = |x: f64, y: f64| x + (y - x) * t;
        Corner {
            name: "mc",
            delay_factor: lerp(b.delay_factor, w.delay_factor),
            leakage_factor: lerp(b.leakage_factor, w.leakage_factor),
            voltage: lerp(b.voltage, w.voltage),
        }
    }

    /// Derates a typical-corner delay to this corner.
    pub fn delay(&self, typical_delay: f64) -> f64 {
        typical_delay * self.delay_factor
    }

    /// Scale factor for dynamic switching energy at this corner (`V²`
    /// relative to nominal).
    pub fn dynamic_energy_factor(&self) -> f64 {
        let nominal = Corner::typical().voltage;
        (self.voltage / nominal).powi(2)
    }
}

impl Default for Corner {
    fn default() -> Self {
        Corner::typical()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_of_corners() {
        assert!(Corner::best().delay_factor < Corner::typical().delay_factor);
        assert!(Corner::typical().delay_factor < Corner::worst().delay_factor);
        // Best/worst delay spread is roughly the 2.1x the paper's Fig 5.4
        // implies (1.14 ns best vs 2.44 ns worst for the synchronous DLX).
        let ratio = Corner::worst().delay_factor / Corner::best().delay_factor;
        assert!(ratio > 1.9 && ratio < 2.4, "spread ratio {ratio}");
    }

    #[test]
    fn interpolation_endpoints() {
        let b = Corner::interpolate(0.0);
        let w = Corner::interpolate(1.0);
        assert!((b.delay_factor - Corner::best().delay_factor).abs() < 1e-12);
        assert!((w.delay_factor - Corner::worst().delay_factor).abs() < 1e-12);
        // Out-of-range values clamp.
        assert_eq!(Corner::interpolate(-3.0).delay_factor, b.delay_factor);
        assert_eq!(Corner::interpolate(9.0).delay_factor, w.delay_factor);
    }

    #[test]
    fn derating() {
        assert!((Corner::worst().delay(2.0) - 2.9).abs() < 1e-12);
        assert!(Corner::best().dynamic_energy_factor() > 1.0);
        assert!(Corner::worst().dynamic_energy_factor() < 1.0);
    }

    #[test]
    #[should_panic = "finite"]
    fn interpolate_rejects_nan() {
        let _ = Corner::interpolate(f64::NAN);
    }
}
