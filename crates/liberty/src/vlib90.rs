//! `vlib90` — a synthetic 90 nm-class standard-cell library.
//!
//! Stands in for the STMicroelectronics CORE9 90 nm library used by the
//! paper (see DESIGN.md's substitution table). Two variants are provided,
//! mirroring the paper's choices: **High-Speed** (used for the DLX case
//! study, §5.2) and **Low-Leakage** (used for the ARM case study, §5.3 —
//! ~1.6× slower, ~8× less leakage).
//!
//! The library is emitted as genuine Liberty source and then parsed by
//! [`crate::parse_library`], so the entire `.lib` ingestion path of the
//! tool is exercised by construction. Key area ratios are calibrated to
//! the paper's observations:
//!
//! * master+slave latch pair ≈ 1.16 × DFF area (Table 5.1's +17.66 %
//!   sequential overhead comes mostly from this substitution),
//! * scan-mux + latch pair ≈ 1.41 × scan-DFF area (Table 5.2's +40.7 %).

use std::sync::OnceLock;

use crate::{parse_library, Library};

/// Library variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// High-speed, high-leakage flavour (DLX case study).
    HighSpeed,
    /// Low-leakage, slower flavour (ARM case study).
    LowLeakage,
}

/// The High-Speed variant (paper: "High-Speed version of the ST CORE9
/// 90nm library").
pub fn high_speed() -> Library {
    static CACHE: OnceLock<Library> = OnceLock::new();
    CACHE
        .get_or_init(|| parse_library(&source(Variant::HighSpeed)).expect("vlib90-hs is valid"))
        .clone()
}

/// The Low-Leakage variant (paper: ARM was implemented in the Low-Leakage
/// library).
pub fn low_leakage() -> Library {
    static CACHE: OnceLock<Library> = OnceLock::new();
    CACHE
        .get_or_init(|| parse_library(&source(Variant::LowLeakage)).expect("vlib90-ll is valid"))
        .clone()
}

/// Liberty source text for a variant (useful for testing external flows).
pub fn source(variant: Variant) -> String {
    let (lib_name, delay_scale, leak_scale) = match variant {
        Variant::HighSpeed => ("vlib90_hs", 1.0, 1.0),
        Variant::LowLeakage => ("vlib90_ll", 1.6, 0.12),
    };
    let mut out = String::with_capacity(32 * 1024);
    out.push_str(&format!(
        "/* vlib90 synthetic 90nm library — {lib_name} */\nlibrary ({lib_name}) {{\n"
    ));
    let mut b = Builder {
        out: &mut out,
        delay_scale,
        leak_scale,
    };

    // ---- combinational ----------------------------------------------------
    b.comb("INVX1", 2.08, 1.4, &["A"], "!A", 0.012);
    b.comb("INVX2", 2.60, 0.8, &["A"], "!A", 0.010);
    b.comb("BUFX1", 2.60, 1.3, &["A"], "A", 0.024);
    b.comb("BUFX2", 3.12, 0.7, &["A"], "A", 0.020);
    b.comb("NAND2X1", 2.60, 1.4, &["A", "B"], "!(A & B)", 0.016);
    b.comb("NAND3X1", 3.64, 1.5, &["A", "B", "C"], "!(A & B & C)", 0.022);
    b.comb("NAND4X1", 4.68, 1.6, &["A", "B", "C", "D"], "!(A & B & C & D)", 0.028);
    b.comb("NOR2X1", 2.60, 1.6, &["A", "B"], "!(A | B)", 0.020);
    b.comb("NOR3X1", 3.64, 1.8, &["A", "B", "C"], "!(A | B | C)", 0.028);
    b.comb("AND2X1", 3.12, 1.3, &["A", "B"], "A & B", 0.030);
    b.comb("AND3X1", 3.64, 1.3, &["A", "B", "C"], "A & B & C", 0.036);
    b.comb("OR2X1", 3.12, 1.4, &["A", "B"], "A | B", 0.033);
    b.comb("OR3X1", 3.64, 1.4, &["A", "B", "C"], "A | B | C", 0.040);
    b.comb("XOR2X1", 4.68, 1.5, &["A", "B"], "A ^ B", 0.045);
    b.comb("XNOR2X1", 4.68, 1.5, &["A", "B"], "!(A ^ B)", 0.046);
    b.comb("AOI21X1", 3.12, 1.5, &["A1", "A2", "B"], "!((A1 & A2) | B)", 0.026);
    b.comb("OAI21X1", 3.12, 1.5, &["A1", "A2", "B"], "!((A1 | A2) & B)", 0.025);
    b.comb(
        "AOI22X1",
        3.64,
        1.6,
        &["A1", "A2", "B1", "B2"],
        "!((A1 & A2) | (B1 & B2))",
        0.032,
    );
    b.comb(
        "OAI22X1",
        3.64,
        1.6,
        &["A1", "A2", "B1", "B2"],
        "!((A1 | A2) & (B1 | B2))",
        0.031,
    );
    b.comb(
        "MUX2X1",
        4.68,
        1.5,
        &["A", "B", "S"],
        "(A & !S) | (B & S)",
        0.042,
    );
    // Full/half adders (two outputs).
    b.multi_out(
        "ADDF",
        10.40,
        &["A", "B", "CI"],
        &[
            ("S", "A ^ B ^ CI", 0.085),
            ("CO", "(A & B) | (CI & (A ^ B))", 0.068),
        ],
    );
    b.multi_out(
        "ADDH",
        6.24,
        &["A", "B"],
        &[("S", "A ^ B", 0.048), ("CO", "A & B", 0.036)],
    );

    // ---- flip-flops --------------------------------------------------------
    b.ff("DFFX1", 14.10, "D", &["D"], None, None, 0.115);
    b.ff("DFFRX1", 15.60, "D & RN", &["D", "RN"], None, None, 0.118);
    b.ff("DFFSX1", 15.60, "D | S", &["D", "S"], None, None, 0.118);
    b.ff(
        "DFFARX1",
        15.60,
        "D",
        &["D"],
        Some(("CDN", "!CDN")),
        None,
        0.118,
    );
    b.ff(
        "DFFASX1",
        15.60,
        "D",
        &["D"],
        None,
        Some(("SDN", "!SDN")),
        0.118,
    );
    b.ff(
        "DFFEX1",
        16.60,
        "(D & EN) | (IQ & !EN)",
        &["D", "EN"],
        None,
        None,
        0.120,
    );
    b.ff(
        "SDFFX1",
        15.00,
        "(D & !SE) | (SI & SE)",
        &["D", "SI", "SE"],
        None,
        None,
        0.122,
    );
    b.ff(
        "SDFFRX1",
        16.40,
        "((D & !SE) | (SI & SE)) & RN",
        &["D", "SI", "SE", "RN"],
        None,
        None,
        0.125,
    );

    // ---- latches -----------------------------------------------------------
    // As in the paper's worked example (§3.1.2), the library deliberately
    // contains only the simplest possible latch.
    b.latch("LDX1", 8.20, 0.095, 0.075);

    // ---- C-Muller elements (§3.1.5) -----------------------------------------
    b.celement("C2X1", 5.20, &["A", "B"], None, None, 0.030);
    b.celement("C2RX1", 6.24, &["A", "B"], Some("RN"), None, 0.032);
    b.celement("C2SX1", 6.24, &["A", "B"], None, Some("SN"), 0.032);
    b.celement("C3RX1", 7.28, &["A", "B", "C"], Some("RN"), None, 0.038);

    out.push_str("}\n");
    out
}

struct Builder<'a> {
    out: &'a mut String,
    delay_scale: f64,
    leak_scale: f64,
}

impl Builder<'_> {
    fn power_attrs(&self, area: f64) -> String {
        let leak = area * 0.012 * self.leak_scale;
        let energy = 0.0015 + area * 0.0004;
        format!("    cell_leakage_power : {leak:.5};\n    switching_energy : {energy:.5};\n")
    }

    fn input_pin(&self, name: &str, cap: f64) -> String {
        format!("    pin ({name}) {{ direction : input; capacitance : {cap:.4}; }}\n")
    }

    fn timing(&self, related: &str, delay: f64) -> String {
        let rise = delay * self.delay_scale;
        let fall = rise * 0.92;
        format!(
            "      timing () {{ related_pin : \"{related}\"; intrinsic_rise : {rise:.4}; intrinsic_fall : {fall:.4}; }}\n"
        )
    }

    fn comb(&mut self, name: &str, area: f64, res: f64, inputs: &[&str], function: &str, delay: f64) {
        self.out.push_str(&format!("  cell ({name}) {{\n    area : {area:.2};\n"));
        let power = self.power_attrs(area);
        self.out.push_str(&power);
        for input in inputs {
            let pin = self.input_pin(input, 0.0030);
            self.out.push_str(&pin);
        }
        self.out.push_str(&format!(
            "    pin (Z) {{\n      direction : output;\n      function : \"{function}\";\n      drive_resistance : {res:.2};\n"
        ));
        for input in inputs {
            let t = self.timing(input, delay);
            self.out.push_str(&t);
        }
        self.out.push_str("    }\n  }\n");
    }

    fn multi_out(&mut self, name: &str, area: f64, inputs: &[&str], outputs: &[(&str, &str, f64)]) {
        self.out.push_str(&format!("  cell ({name}) {{\n    area : {area:.2};\n"));
        let power = self.power_attrs(area);
        self.out.push_str(&power);
        for input in inputs {
            let pin = self.input_pin(input, 0.0032);
            self.out.push_str(&pin);
        }
        for (pin, function, delay) in outputs {
            self.out.push_str(&format!(
                "    pin ({pin}) {{\n      direction : output;\n      function : \"{function}\";\n      drive_resistance : 1.50;\n"
            ));
            for input in inputs {
                let t = self.timing(input, *delay);
                self.out.push_str(&t);
            }
            self.out.push_str("    }\n");
        }
        self.out.push_str("  }\n");
    }

    #[allow(clippy::too_many_arguments)]
    fn ff(
        &mut self,
        name: &str,
        area: f64,
        next_state: &str,
        data_pins: &[&str],
        clear: Option<(&str, &str)>,
        preset: Option<(&str, &str)>,
        clk_to_q: f64,
    ) {
        let setup = 0.062 * self.delay_scale;
        let hold = 0.010 * self.delay_scale;
        self.out.push_str(&format!(
            "  cell ({name}) {{\n    area : {area:.2};\n    setup_time : {setup:.4};\n    hold_time : {hold:.4};\n"
        ));
        let power = self.power_attrs(area);
        self.out.push_str(&power);
        self.out.push_str("    ff (IQ, IQN) {\n");
        self.out.push_str(&format!("      next_state : \"{next_state}\";\n"));
        self.out.push_str("      clocked_on : \"CK\";\n");
        if let Some((_, cond)) = clear {
            self.out.push_str(&format!("      clear : \"{cond}\";\n"));
        }
        if let Some((_, cond)) = preset {
            self.out.push_str(&format!("      preset : \"{cond}\";\n"));
        }
        self.out.push_str("    }\n");
        for pin in data_pins {
            let p = self.input_pin(pin, 0.0028);
            self.out.push_str(&p);
        }
        let clk = self.input_pin("CK", 0.0040);
        self.out.push_str(&clk);
        if let Some((pin, _)) = clear {
            let p = self.input_pin(pin, 0.0030);
            self.out.push_str(&p);
        }
        if let Some((pin, _)) = preset {
            let p = self.input_pin(pin, 0.0030);
            self.out.push_str(&p);
        }
        self.out.push_str(
            "    pin (Q) {\n      direction : output;\n      function : \"IQ\";\n      drive_resistance : 1.30;\n",
        );
        let t = self.timing("CK", clk_to_q);
        self.out.push_str(&t);
        self.out.push_str("    }\n");
        self.out.push_str(
            "    pin (QN) {\n      direction : output;\n      function : \"IQN\";\n      drive_resistance : 1.30;\n",
        );
        let t = self.timing("CK", clk_to_q * 1.05);
        self.out.push_str(&t);
        self.out.push_str("    }\n  }\n");
    }

    fn latch(&mut self, name: &str, area: f64, g_to_q: f64, d_to_q: f64) {
        let setup = 0.040 * self.delay_scale;
        let hold = 0.008 * self.delay_scale;
        self.out.push_str(&format!(
            "  cell ({name}) {{\n    area : {area:.2};\n    setup_time : {setup:.4};\n    hold_time : {hold:.4};\n"
        ));
        let power = self.power_attrs(area);
        self.out.push_str(&power);
        self.out.push_str(
            "    latch (IQ, IQN) {\n      data_in : \"D\";\n      enable : \"G\";\n    }\n",
        );
        let d = self.input_pin("D", 0.0026);
        self.out.push_str(&d);
        let g = self.input_pin("G", 0.0035);
        self.out.push_str(&g);
        self.out.push_str(
            "    pin (Q) {\n      direction : output;\n      function : \"IQ\";\n      drive_resistance : 1.30;\n",
        );
        let td = self.timing("D", d_to_q);
        self.out.push_str(&td);
        let tg = self.timing("G", g_to_q);
        self.out.push_str(&tg);
        self.out.push_str("    }\n  }\n");
    }

    fn celement(
        &mut self,
        name: &str,
        area: f64,
        inputs: &[&str],
        reset: Option<&str>,
        set: Option<&str>,
        delay: f64,
    ) {
        self.out.push_str(&format!("  cell ({name}) {{\n    area : {area:.2};\n"));
        let power = self.power_attrs(area);
        self.out.push_str(&power);
        let input_list = inputs.join(" ");
        let mut group = format!("    celement () {{ inputs : \"{input_list}\";");
        if let Some(r) = reset {
            group.push_str(&format!(" reset : \"{r}\";"));
        }
        if let Some(sn) = set {
            group.push_str(&format!(" set : \"{sn}\";"));
        }
        group.push_str(" output : \"Z\"; }\n");
        self.out.push_str(&group);
        for input in inputs {
            let p = self.input_pin(input, 0.0030);
            self.out.push_str(&p);
        }
        if let Some(r) = reset {
            let p = self.input_pin(r, 0.0020);
            self.out.push_str(&p);
        }
        if let Some(sn) = set {
            let p = self.input_pin(sn, 0.0020);
            self.out.push_str(&p);
        }
        self.out.push_str(
            "    pin (Z) {\n      direction : output;\n      drive_resistance : 1.40;\n",
        );
        for input in inputs {
            let t = self.timing(input, delay);
            self.out.push_str(&t);
        }
        self.out.push_str("    }\n  }\n");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::{CellClass, SeqKind};

    #[test]
    fn both_variants_parse() {
        let hs = high_speed();
        let ll = low_leakage();
        assert_eq!(hs.name(), "vlib90_hs");
        assert_eq!(ll.name(), "vlib90_ll");
        assert_eq!(hs.cells().count(), ll.cells().count());
        assert!(hs.cells().count() >= 30);
    }

    #[test]
    fn low_leakage_is_slower_and_leaks_less() {
        let hs = high_speed();
        let ll = low_leakage();
        let h = hs.cell("NAND2X1").unwrap();
        let l = ll.cell("NAND2X1").unwrap();
        assert!(l.max_intrinsic_delay() > 1.4 * h.max_intrinsic_delay());
        assert!(l.leakage < 0.2 * h.leakage);
        assert_eq!(l.area, h.area);
    }

    #[test]
    fn latch_pair_vs_dff_area_ratio_matches_paper() {
        let lib = high_speed();
        let dff = lib.cell("DFFX1").unwrap().area;
        let latch = lib.cell("LDX1").unwrap().area;
        let ratio = 2.0 * latch / dff;
        // Table 5.1: +17.66 % sequential overhead is dominated by this.
        assert!(ratio > 1.10 && ratio < 1.25, "pair/dff ratio {ratio}");

        let sdff = lib.cell("SDFFX1").unwrap().area;
        let mux = lib.cell("MUX2X1").unwrap().area;
        let scan_ratio = (mux + 2.0 * latch) / sdff;
        // Table 5.2: +40.7 % sequential overhead for the scan design.
        assert!(scan_ratio > 1.3 && scan_ratio < 1.5, "scan ratio {scan_ratio}");
    }

    #[test]
    fn sequential_cells_have_expected_shapes() {
        let lib = high_speed();
        assert_eq!(lib.cell("DFFX1").unwrap().class(), CellClass::FlipFlop);
        assert_eq!(lib.cell("LDX1").unwrap().class(), CellClass::Latch);
        assert_eq!(lib.cell("C2RX1").unwrap().class(), CellClass::CElement);
        let SeqKind::FlipFlop(ff) = &lib.cell("SDFFX1").unwrap().seq else {
            panic!("SDFFX1 must be a flip-flop")
        };
        // Scan mux lives inside next_state, as in real Liberty files.
        let vars = ff.next_state.vars();
        assert!(vars.contains(&"SI".to_owned()) && vars.contains(&"SE".to_owned()));
    }

    #[test]
    fn async_set_reset_conditions() {
        let lib = high_speed();
        let SeqKind::FlipFlop(ar) = &lib.cell("DFFARX1").unwrap().seq else {
            panic!()
        };
        assert!(ar.clear.is_some());
        assert!(ar.preset.is_none());
        let SeqKind::FlipFlop(asx) = &lib.cell("DFFASX1").unwrap().seq else {
            panic!()
        };
        assert!(asx.preset.is_some());
    }

    #[test]
    fn every_cell_has_positive_area_and_pins() {
        for lib in [high_speed(), low_leakage()] {
            for cell in lib.cells() {
                assert!(cell.area > 0.0, "{} area", cell.name);
                assert!(!cell.pins.is_empty(), "{} pins", cell.name);
                assert!(
                    cell.pins.iter().any(|p| p.dir == drd_netlist::PortDir::Output),
                    "{} must have an output",
                    cell.name
                );
            }
        }
    }
}
