//! The *gatefile* — per-library preparation for desynchronization (§3.1.1).
//!
//! "The first and most important part of the preparation is the creation of
//! the file called gatefile which contains information about the library
//! cells … In addition, the gatefile contains replacement rules used during
//! the flip-flop substitution phase."
//!
//! [`Gatefile::from_library`] extracts, for every cell: name, class and
//! pins; and for every flip-flop a [`FfRule`] describing how to substitute
//! it by a master/slave latch pair, including the extra logic needed for
//! scan, synchronous/asynchronous set/reset and clock-gated flip-flops
//! (recognized structurally from the Liberty `next_state`/`clear`/`preset`
//! expressions — Fig. 3.1 of the paper).

use std::fmt::Write as _;

use drd_netlist::PortDir;

use crate::cell::{CellClass, LibCell, SeqKind};
use crate::function::Expr;
use crate::library::{Library, LibraryError};

/// An active-high or active-low control pin.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ControlPin {
    /// Pin name.
    pub pin: String,
    /// True if the control is asserted when the pin is low.
    pub active_low: bool,
}

/// Scan-path pins of a scan flip-flop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanPins {
    /// Scan data input.
    pub scan_in: String,
    /// Scan enable (mux select).
    pub scan_enable: String,
}

/// Structural features recognized in a flip-flop's next-state function.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FfFeatures {
    /// The functional data pin.
    pub data: Option<String>,
    /// Scan mux (Fig. 3.1a).
    pub scan: Option<ScanPins>,
    /// Synchronous reset (Fig. 3.1b).
    pub sync_reset: Option<ControlPin>,
    /// Synchronous set.
    pub sync_set: Option<ControlPin>,
    /// Clock-enable / clock gating (Fig. 3.1d).
    pub clock_enable: Option<String>,
    /// Asynchronous clear (Fig. 3.1c, reset flavour).
    pub async_clear: Option<ControlPin>,
    /// Asynchronous preset (Fig. 3.1c, set flavour).
    pub async_preset: Option<ControlPin>,
}

impl FfFeatures {
    /// True when the flip-flop is a plain D-FF needing no extra gates.
    pub fn is_plain(&self) -> bool {
        self.scan.is_none()
            && self.sync_reset.is_none()
            && self.sync_set.is_none()
            && self.clock_enable.is_none()
            && self.async_clear.is_none()
            && self.async_preset.is_none()
    }
}

/// A flip-flop → master/slave latch replacement rule.
#[derive(Debug, Clone, PartialEq)]
pub struct FfRule {
    /// The flip-flop cell being replaced.
    pub ff: String,
    /// Recognized features.
    pub features: FfFeatures,
    /// Clock pin of the flip-flop.
    pub clock_pin: String,
    /// Q output pin.
    pub q_pin: String,
    /// QN output pin, if any.
    pub qn_pin: Option<String>,
    /// Library latch used for both master and slave.
    pub latch_cell: String,
    /// Latch data pin name.
    pub latch_d: String,
    /// Latch enable pin name.
    pub latch_g: String,
    /// Latch output pin name.
    pub latch_q: String,
    /// True if extra gates (mux / and / or) must be synthesized around the
    /// latch pair (the "extra latches" of §3.1.2).
    pub composite: bool,
}

/// A per-cell record (name, class, pins) as stored in the paper's gatefile.
#[derive(Debug, Clone, PartialEq)]
pub struct GateRecord {
    /// Cell name.
    pub name: String,
    /// Cell classification.
    pub class: CellClass,
    /// Pins as `(name, direction)`.
    pub pins: Vec<(String, PortDir)>,
}

/// The gatefile: library metadata prepared once per library migration.
#[derive(Debug, Clone)]
pub struct Gatefile {
    /// Source library name.
    pub library: String,
    /// Per-cell records.
    pub records: Vec<GateRecord>,
    /// Flip-flop replacement rules.
    pub rules: Vec<FfRule>,
}

impl Gatefile {
    /// Builds the gatefile for `library`.
    ///
    /// # Errors
    /// Returns [`LibraryError`] if the library contains no simple latch to
    /// substitute flip-flops with, or if a flip-flop's next-state function
    /// cannot be decomposed into the supported feature set.
    pub fn from_library(library: &Library) -> Result<Gatefile, LibraryError> {
        let latch = simplest_latch(library).ok_or_else(|| {
            LibraryError::new(format!(
                "library `{}` has no simple latch for flip-flop substitution",
                library.name()
            ))
        })?;
        let (latch_cell, latch_d, latch_g, latch_q) = latch;

        let mut records = Vec::new();
        let mut rules = Vec::new();
        for cell in library.cells() {
            records.push(GateRecord {
                name: cell.name.clone(),
                class: cell.class(),
                pins: cell.pins.iter().map(|p| (p.name.clone(), p.dir)).collect(),
            });
            if let SeqKind::FlipFlop(ff) = &cell.seq {
                let features = recognize_features(cell, ff)?;
                rules.push(FfRule {
                    ff: cell.name.clone(),
                    composite: !features.is_plain(),
                    features,
                    clock_pin: ff.clocked_on.clone(),
                    q_pin: ff.q.clone(),
                    qn_pin: ff.qn.clone(),
                    latch_cell: latch_cell.clone(),
                    latch_d: latch_d.clone(),
                    latch_g: latch_g.clone(),
                    latch_q: latch_q.clone(),
                });
            }
        }
        Ok(Gatefile {
            library: library.name().to_owned(),
            records,
            rules,
        })
    }

    /// Looks up the replacement rule for a flip-flop cell.
    pub fn rule(&self, ff: &str) -> Option<&FfRule> {
        self.rules.iter().find(|r| r.ff == ff)
    }

    /// Renders the gatefile in its textual form (one record per line), for
    /// inspection and interoperability.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# gatefile for library {}", self.library);
        for r in &self.records {
            let class = match r.class {
                CellClass::Combinational => "comb",
                CellClass::FlipFlop => "ff",
                CellClass::Latch => "latch",
                CellClass::CElement => "celement",
            };
            let pins: Vec<String> = r
                .pins
                .iter()
                .map(|(n, d)| {
                    let d = match d {
                        PortDir::Input => "i",
                        PortDir::Output => "o",
                        PortDir::Inout => "io",
                    };
                    format!("{n}:{d}")
                })
                .collect();
            let _ = writeln!(out, "cell {} {} {}", r.name, class, pins.join(" "));
        }
        for rule in &self.rules {
            let _ = writeln!(
                out,
                "replace {} -> {}+{}{}",
                rule.ff,
                rule.latch_cell,
                rule.latch_cell,
                if rule.composite { " (composite)" } else { "" }
            );
        }
        out
    }
}

/// Picks the smallest latch with a plain `data_in`/`enable` pair.
fn simplest_latch(library: &Library) -> Option<(String, String, String, String)> {
    library
        .cells_of_class(CellClass::Latch)
        .into_iter()
        .find_map(|cell| {
            let SeqKind::Latch(info) = &cell.seq else {
                return None;
            };
            // Simplest possible: bare-variable data, no set/reset.
            let Expr::Var(d) = &info.data_in else {
                return None;
            };
            if info.clear.is_some() || info.preset.is_some() {
                return None;
            }
            Some((
                cell.name.clone(),
                d.clone(),
                info.enable.clone(),
                info.q.clone(),
            ))
        })
}

/// Decomposes a flip-flop's Liberty description into [`FfFeatures`].
fn recognize_features(
    cell: &LibCell,
    ff: &crate::cell::FfInfo,
) -> Result<FfFeatures, LibraryError> {
    let mut features = FfFeatures::default();
    if let Some(clear) = &ff.clear {
        features.async_clear = Some(control_pin(cell, clear)?);
    }
    if let Some(preset) = &ff.preset {
        features.async_preset = Some(control_pin(cell, preset)?);
    }

    // State variable name ("IQ") for clock-enable recognition.
    let state_var = "IQ";
    let mut expr = ff.next_state.clone();

    // Peel synchronous set/reset: `core & RN`, `core & !R`, `core | S`,
    // `core | !SN` (the literal side must be a single control literal).
    loop {
        match &expr {
            Expr::And(parts) if parts.len() == 2 => {
                if let Some((lit, rest)) = split_literal(parts, LitContext::And) {
                    features.sync_reset = Some(lit);
                    expr = rest;
                    continue;
                }
            }
            // Only treat as sync-set when one side is a bare literal and
            // the *other* side is not an AND with the literal's
            // complement (that shape is a mux, handled below).
            Expr::Or(parts) if parts.len() == 2 && !is_mux_shape(parts) => {
                if let Some((lit, rest)) = split_literal(parts, LitContext::Or) {
                    features.sync_set = Some(lit);
                    expr = rest;
                    continue;
                }
            }
            _ => {}
        }
        break;
    }

    // Mux shapes: scan mux or clock-enable mux.
    if let Some((sel, when0, when1)) = match_mux(&expr) {
        let state0 = is_state_ref(&when0, state_var);
        let state1 = is_state_ref(&when1, state_var);
        if state0 || state1 {
            // Clock enable: state recirculates when the enable is off.
            let (enable_active_high, data_branch) =
                if state0 { (true, when1) } else { (false, when0) };
            let _ = enable_active_high;
            features.clock_enable = Some(sel);
            expr = data_branch;
        } else {
            // Scan mux: the branch selected when `sel` is high is scan-in.
            features.scan = Some(ScanPins {
                scan_in: bare_var(&when1).ok_or_else(|| {
                    LibraryError::new(format!(
                        "cell `{}`: scan-in branch is not a bare pin",
                        cell.name
                    ))
                })?,
                scan_enable: sel,
            });
            expr = when0;
        }
    }

    match bare_var(&expr) {
        Some(d) => features.data = Some(d),
        None => {
            return Err(LibraryError::new(format!(
                "cell `{}`: unsupported next_state residue `{}`",
                cell.name, expr
            )))
        }
    }
    Ok(features)
}

fn bare_var(expr: &Expr) -> Option<String> {
    match expr {
        Expr::Var(v) => Some(v.clone()),
        _ => None,
    }
}

fn is_state_ref(expr: &Expr, state_var: &str) -> bool {
    matches!(expr, Expr::Var(v) if v == state_var)
}

/// Matches `(a & !s) | (b & s)` (any commutation) as `(s, a, b)`.
fn match_mux(expr: &Expr) -> Option<(String, Expr, Expr)> {
    let Expr::Or(parts) = expr else { return None };
    if parts.len() != 2 {
        return None;
    }
    let options = [and_decompositions(&parts[0]), and_decompositions(&parts[1])];
    // One side contributes a positive literal `s`, the other `!s`.
    for (pos_idx, neg_idx) in [(0usize, 1usize), (1, 0)] {
        for (pos_lit, pos_rest) in &options[pos_idx] {
            for (neg_lit, neg_rest) in &options[neg_idx] {
                if let (Literal::Pos(s1), Literal::Neg(s2)) = (pos_lit, neg_lit) {
                    if s1 == s2 {
                        return Some((s1.clone(), neg_rest.clone(), pos_rest.clone()));
                    }
                }
            }
        }
    }
    None
}

enum Literal {
    Pos(String),
    Neg(String),
}

/// All ways to split a two-term AND into (control literal, remaining expr).
fn and_decompositions(expr: &Expr) -> Vec<(Literal, Expr)> {
    let Expr::And(parts) = expr else {
        return Vec::new();
    };
    if parts.len() != 2 {
        return Vec::new();
    }
    let mut out = Vec::new();
    for (i, j) in [(0usize, 1usize), (1, 0)] {
        match &parts[i] {
            Expr::Var(v) => out.push((Literal::Pos(v.clone()), parts[j].clone())),
            Expr::Not(inner) => {
                if let Expr::Var(v) = inner.as_ref() {
                    out.push((Literal::Neg(v.clone()), parts[j].clone()));
                }
            }
            _ => {}
        }
    }
    out
}

/// True when an OR's two sides form the mux pattern.
fn is_mux_shape(parts: &[Expr]) -> bool {
    parts.len() == 2
        && match_mux(&Expr::Or(parts.to_vec())).is_some()
}

/// Context for interpreting a control literal's polarity:
/// `core & lit` resets when `lit` deasserts the AND; `core | lit` sets when
/// `lit` asserts the OR.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LitContext {
    And,
    Or,
}

/// Pin names conventionally used for the functional data input.
fn looks_like_data(name: &str) -> bool {
    matches!(name, "D" | "DA" | "DATA" | "DIN")
}

/// Extracts a synchronous control literal from a 2-term AND/OR, leaving the
/// data expression. When both sides are bare pins (e.g. `D & RN`) the pin
/// with a data-like name is kept as data; absent that, the *second* operand
/// is taken as the control (Liberty files write data first).
fn split_literal(parts: &[Expr], ctx: LitContext) -> Option<(ControlPin, Expr)> {
    let literal_of = |e: &Expr| -> Option<(String, bool)> {
        // Returns (pin, negated-in-expression).
        match e {
            Expr::Var(v) => Some((v.clone(), false)),
            Expr::Not(inner) => match inner.as_ref() {
                Expr::Var(v) => Some((v.clone(), true)),
                _ => None,
            },
            _ => None,
        }
    };
    let make = |pin: String, negated: bool| -> ControlPin {
        // AND-reset: `core & RN`  → asserted when RN low  (active-low)
        //            `core & !R` → asserted when R high  (active-high)
        // OR-set:    `core | S`   → asserted when S high  (active-high)
        //            `core | !SN` → asserted when SN low  (active-low)
        let active_low = match ctx {
            LitContext::And => !negated,
            LitContext::Or => negated,
        };
        ControlPin { pin, active_low }
    };
    // Candidate order: prefer taking the control from the side whose
    // *remainder* is complex (not a bare pin); then prefer keeping a
    // data-named pin as the remainder; finally prefer the second operand as
    // control.
    let mut candidates: Vec<(usize, usize)> = vec![(1, 0), (0, 1)]; // (control, rest)
    candidates.sort_by_key(|&(ctrl, rest)| {
        let rest_is_complex = literal_of(&parts[rest]).is_none();
        let rest_is_data = matches!(&parts[rest], Expr::Var(v) if looks_like_data(v));
        let ctrl_is_data = matches!(&parts[ctrl], Expr::Var(v) if looks_like_data(v));
        // Lower key = preferred.
        (
            ctrl_is_data,               // never peel a data pin if avoidable
            !(rest_is_complex || rest_is_data),
        )
    });
    for (ctrl, rest) in candidates {
        if let Some((pin, negated)) = literal_of(&parts[ctrl]) {
            return Some((make(pin, negated), parts[rest].clone()));
        }
    }
    None
}

/// Interprets an async clear/preset condition as a control pin.
fn control_pin(cell: &LibCell, cond: &Expr) -> Result<ControlPin, LibraryError> {
    match cond {
        Expr::Var(v) => Ok(ControlPin {
            pin: v.clone(),
            active_low: false,
        }),
        Expr::Not(inner) => match inner.as_ref() {
            Expr::Var(v) => Ok(ControlPin {
                pin: v.clone(),
                active_low: true,
            }),
            _ => Err(LibraryError::new(format!(
                "cell `{}`: unsupported async condition `{cond}`",
                cell.name
            ))),
        },
        _ => Err(LibraryError::new(format!(
            "cell `{}`: unsupported async condition `{cond}`",
            cell.name
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vlib90;

    fn gatefile() -> Gatefile {
        Gatefile::from_library(&vlib90::high_speed()).unwrap()
    }

    #[test]
    fn records_cover_all_cells() {
        let lib = vlib90::high_speed();
        let gf = gatefile();
        assert_eq!(gf.records.len(), lib.cells().count());
        assert_eq!(gf.library, "vlib90_hs");
    }

    #[test]
    fn plain_dff_rule() {
        let gf = gatefile();
        let rule = gf.rule("DFFX1").expect("DFFX1 rule");
        assert!(rule.features.is_plain());
        assert!(!rule.composite);
        assert_eq!(rule.features.data.as_deref(), Some("D"));
        assert_eq!(rule.latch_cell, "LDX1");
        assert_eq!(rule.clock_pin, "CK");
        assert_eq!(rule.qn_pin.as_deref(), Some("QN"));
    }

    #[test]
    fn scan_dff_rule() {
        let gf = gatefile();
        let rule = gf.rule("SDFFX1").expect("SDFFX1 rule");
        let scan = rule.features.scan.as_ref().expect("scan pins");
        assert_eq!(scan.scan_in, "SI");
        assert_eq!(scan.scan_enable, "SE");
        assert_eq!(rule.features.data.as_deref(), Some("D"));
        assert!(rule.composite);
    }

    #[test]
    fn scan_dff_with_sync_reset() {
        let gf = gatefile();
        let rule = gf.rule("SDFFRX1").expect("SDFFRX1 rule");
        let sr = rule.features.sync_reset.as_ref().expect("sync reset");
        assert_eq!(sr.pin, "RN");
        assert!(sr.active_low);
        assert!(rule.features.scan.is_some());
    }

    #[test]
    fn sync_set_and_reset_rules() {
        let gf = gatefile();
        let r = gf.rule("DFFRX1").unwrap();
        assert_eq!(r.features.sync_reset.as_ref().unwrap().pin, "RN");
        let s = gf.rule("DFFSX1").unwrap();
        let set = s.features.sync_set.as_ref().unwrap();
        assert_eq!(set.pin, "S");
        // `D | S` sets when S is high.
        assert!(!set.active_low);
        assert_eq!(s.features.data.as_deref(), Some("D"));
        assert_eq!(r.features.data.as_deref(), Some("D"));
    }

    #[test]
    fn async_rules() {
        let gf = gatefile();
        let r = gf.rule("DFFARX1").unwrap();
        let clear = r.features.async_clear.as_ref().unwrap();
        assert_eq!(clear.pin, "CDN");
        assert!(clear.active_low);
        let s = gf.rule("DFFASX1").unwrap();
        assert_eq!(s.features.async_preset.as_ref().unwrap().pin, "SDN");
    }

    #[test]
    fn clock_enable_rule() {
        let gf = gatefile();
        let r = gf.rule("DFFEX1").unwrap();
        assert_eq!(r.features.clock_enable.as_deref(), Some("EN"));
        assert_eq!(r.features.data.as_deref(), Some("D"));
        assert!(r.composite);
    }

    #[test]
    fn text_rendering() {
        let gf = gatefile();
        let text = gf.to_text();
        assert!(text.contains("cell NAND2X1 comb"));
        assert!(text.contains("replace DFFX1 -> LDX1+LDX1"));
        assert!(text.contains("replace SDFFX1 -> LDX1+LDX1 (composite)"));
    }

    #[test]
    fn library_without_latch_is_rejected() {
        let lib = crate::parse_library(
            "library (nolatch) { cell (INVX1) { area : 1.0; pin (A) { direction : input; } pin (Z) { direction : output; function : \"!A\"; } } }",
        )
        .unwrap();
        assert!(Gatefile::from_library(&lib).is_err());
    }
}
