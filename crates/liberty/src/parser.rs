//! Parser for a practical subset of the Liberty (`.lib`) format.
//!
//! This is the "custom script that parses the .lib standard technology
//! file" of §3.1.1, turned into a proper parser. It reads the generic
//! Liberty group/attribute structure and interprets the subset needed for
//! desynchronization:
//!
//! * `library(name) { ... }`
//! * `cell(name) { area; cell_leakage_power; ff/latch groups; pin groups }`
//! * `pin(name) { direction; capacitance; function; drive_resistance;
//!   timing() { related_pin; intrinsic_rise; intrinsic_fall; } }`
//! * `ff(IQ, IQN) { next_state; clocked_on; clear; preset; }`
//! * `latch(IQ, IQN) { data_in; enable; clear; preset; }`
//! * `setup_time` / `hold_time` / `switching_energy` cell attributes
//!   (flat simplifications of Liberty's table-based timing/power model)
//! * `celement() { inputs; reset; }` — extension group marking C-Muller
//!   elements (§3.1.5), since stock Liberty has no native C-element kind.

use std::collections::HashMap;

use drd_netlist::PortDir;

use crate::cell::{FfInfo, LatchInfo, LibCell, Pin, SeqKind, TimingArc};
use crate::function::Expr;
use crate::library::{Library, LibraryError};

/// Parses Liberty source into a [`Library`].
///
/// # Errors
/// Returns [`LibraryError`] on syntax errors or semantically malformed
/// cells (e.g. an `ff` group whose state variable matches no output pin).
pub fn parse_library(source: &str) -> Result<Library, LibraryError> {
    let tokens = lex(source)?;
    let mut parser = LibParser { tokens, pos: 0 };
    let root = parser.parse_group()?;
    if root.name != "library" {
        return Err(LibraryError::new(format!(
            "expected top-level `library` group, found `{}`",
            root.name
        )));
    }
    interpret_library(&root)
}

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Id(String),
    Str(String),
    Num(f64),
    Punct(char),
    Eof,
}

fn lex(source: &str) -> Result<Vec<(Tok, usize)>, LibraryError> {
    let bytes = source.as_bytes();
    let mut out = Vec::new();
    let (mut i, mut line) = (0usize, 1usize);
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if bytes.get(i + 1) == Some(&b'*') => {
                i += 2;
                while i + 1 < bytes.len() && !(bytes[i] == b'*' && bytes[i + 1] == b'/') {
                    if bytes[i] == b'\n' {
                        line += 1;
                    }
                    i += 1;
                }
                i += 2;
            }
            '/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '\\' if bytes.get(i + 1) == Some(&b'\n') => {
                // Liberty line continuation.
                line += 1;
                i += 2;
            }
            '"' => {
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && bytes[j] != b'"' {
                    if bytes[j] == b'\n' {
                        line += 1;
                    }
                    j += 1;
                }
                if j >= bytes.len() {
                    return Err(LibraryError::at(line, "unterminated string"));
                }
                out.push((Tok::Str(source[start..j].to_owned()), line));
                i = j + 1;
            }
            '{' | '}' | '(' | ')' | ':' | ';' | ',' => {
                out.push((Tok::Punct(c), line));
                i += 1;
            }
            c if c.is_ascii_digit() || c == '-' || c == '+' => {
                let start = i;
                i += 1;
                while i < bytes.len() {
                    let c = bytes[i] as char;
                    if c.is_ascii_digit() || c == '.' || c == 'e' || c == 'E' || c == '-' || c == '+'
                    {
                        // Only allow +/- right after an exponent marker.
                        if (c == '-' || c == '+')
                            && !matches!(bytes[i - 1], b'e' | b'E')
                        {
                            break;
                        }
                        i += 1;
                    } else {
                        break;
                    }
                }
                let text = &source[start..i];
                let value: f64 = text
                    .parse()
                    .map_err(|_| LibraryError::at(line, format!("bad number `{text}`")))?;
                out.push((Tok::Num(value), line));
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() {
                    let c = bytes[i] as char;
                    if c.is_ascii_alphanumeric() || c == '_' || c == '.' || c == '[' || c == ']' {
                        i += 1;
                    } else {
                        break;
                    }
                }
                out.push((Tok::Id(source[start..i].to_owned()), line));
            }
            other => {
                return Err(LibraryError::at(line, format!("unexpected character `{other}`")));
            }
        }
    }
    out.push((Tok::Eof, line));
    Ok(out)
}

// ---------------------------------------------------------------------------
// Generic group tree
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Value {
    Str(String),
    Num(f64),
    Ident(String),
}

impl Value {
    fn as_str(&self) -> &str {
        match self {
            Value::Str(s) | Value::Ident(s) => s,
            Value::Num(_) => "",
        }
    }

    fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            Value::Str(s) | Value::Ident(s) => s.parse().ok(),
        }
    }
}

#[derive(Debug, Clone, Default)]
struct Group {
    name: String,
    args: Vec<String>,
    attrs: Vec<(String, Value)>,
    groups: Vec<Group>,
}

impl Group {
    fn attr(&self, name: &str) -> Option<&Value> {
        self.attrs.iter().find(|(n, _)| n == name).map(|(_, v)| v)
    }

    fn attr_str(&self, name: &str) -> Option<&str> {
        self.attr(name).map(|v| v.as_str())
    }

    fn attr_num(&self, name: &str) -> Option<f64> {
        self.attr(name).and_then(|v| v.as_num())
    }

    fn children<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Group> + 'a {
        self.groups.iter().filter(move |g| g.name == name)
    }
}

struct LibParser {
    tokens: Vec<(Tok, usize)>,
    pos: usize,
}

impl LibParser {
    fn peek(&self) -> &Tok {
        &self.tokens[self.pos].0
    }

    fn line(&self) -> usize {
        self.tokens[self.pos].1
    }

    fn bump(&mut self) -> Tok {
        let t = self.tokens[self.pos].0.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn expect_punct(&mut self, c: char) -> Result<(), LibraryError> {
        match self.bump() {
            Tok::Punct(p) if p == c => Ok(()),
            other => Err(LibraryError::at(
                self.line(),
                format!("expected `{c}`, found {other:?}"),
            )),
        }
    }

    /// Parses `name ( args ) { body }`.
    fn parse_group(&mut self) -> Result<Group, LibraryError> {
        let name = match self.bump() {
            Tok::Id(n) => n,
            other => {
                return Err(LibraryError::at(
                    self.line(),
                    format!("expected group name, found {other:?}"),
                ))
            }
        };
        self.expect_punct('(')?;
        let mut args = Vec::new();
        while !matches!(self.peek(), Tok::Punct(')')) {
            match self.bump() {
                Tok::Id(s) | Tok::Str(s) => args.push(s),
                Tok::Num(n) => args.push(n.to_string()),
                Tok::Punct(',') => {}
                other => {
                    return Err(LibraryError::at(
                        self.line(),
                        format!("bad group argument {other:?}"),
                    ))
                }
            }
        }
        self.expect_punct(')')?;
        let mut group = Group {
            name,
            args,
            ..Group::default()
        };
        if matches!(self.peek(), Tok::Punct('{')) {
            self.bump();
            while !matches!(self.peek(), Tok::Punct('}')) {
                if matches!(self.peek(), Tok::Eof) {
                    return Err(LibraryError::at(self.line(), "unterminated group"));
                }
                self.parse_item(&mut group)?;
            }
            self.bump(); // '}'
        } else {
            // Group without a body (`timing ();`) — consume optional `;`.
            if matches!(self.peek(), Tok::Punct(';')) {
                self.bump();
            }
        }
        Ok(group)
    }

    fn parse_item(&mut self, parent: &mut Group) -> Result<(), LibraryError> {
        // Lookahead: `id :` is a simple attribute, `id (` a nested group.
        let save = self.pos;
        let name = match self.bump() {
            Tok::Id(n) => n,
            other => {
                return Err(LibraryError::at(
                    self.line(),
                    format!("expected attribute or group, found {other:?}"),
                ))
            }
        };
        match self.peek().clone() {
            Tok::Punct(':') => {
                self.bump();
                let value = match self.bump() {
                    Tok::Str(s) => Value::Str(s),
                    Tok::Num(n) => Value::Num(n),
                    Tok::Id(s) => Value::Ident(s),
                    other => {
                        return Err(LibraryError::at(
                            self.line(),
                            format!("bad attribute value {other:?}"),
                        ))
                    }
                };
                if matches!(self.peek(), Tok::Punct(';')) {
                    self.bump();
                }
                parent.attrs.push((name, value));
                Ok(())
            }
            Tok::Punct('(') => {
                self.pos = save;
                let g = self.parse_group()?;
                parent.groups.push(g);
                Ok(())
            }
            other => Err(LibraryError::at(
                self.line(),
                format!("expected `:` or `(` after `{name}`, found {other:?}"),
            )),
        }
    }
}

// ---------------------------------------------------------------------------
// Interpretation
// ---------------------------------------------------------------------------

fn interpret_library(root: &Group) -> Result<Library, LibraryError> {
    let name = root
        .args
        .first()
        .cloned()
        .unwrap_or_else(|| "unnamed".to_owned());
    let mut cells = Vec::new();
    for cell_group in root.children("cell") {
        cells.push(interpret_cell(cell_group)?);
    }
    Library::from_cells(name, cells)
}

fn parse_fn(cell: &str, text: &str) -> Result<Expr, LibraryError> {
    Expr::parse(text)
        .map_err(|e| LibraryError::new(format!("cell `{cell}`: bad function `{text}`: {e}")))
}

fn interpret_cell(g: &Group) -> Result<LibCell, LibraryError> {
    let name = g
        .args
        .first()
        .cloned()
        .ok_or_else(|| LibraryError::new("cell group without a name"))?;

    let mut pins = Vec::new();
    let mut arcs = Vec::new();
    let mut state_functions: HashMap<String, String> = HashMap::new(); // pin -> raw function

    for pg in g.children("pin") {
        let pin_name = pg
            .args
            .first()
            .cloned()
            .ok_or_else(|| LibraryError::new(format!("cell `{name}`: pin without a name")))?;
        let dir = match pg.attr_str("direction") {
            Some("input") => PortDir::Input,
            Some("output") => PortDir::Output,
            Some("inout") => PortDir::Inout,
            Some(other) => {
                return Err(LibraryError::new(format!(
                    "cell `{name}` pin `{pin_name}`: unknown direction `{other}`"
                )))
            }
            None => PortDir::Input,
        };
        let raw_function = pg.attr_str("function").map(str::to_owned);
        for tg in pg.children("timing") {
            let from = tg
                .attr_str("related_pin")
                .ok_or_else(|| {
                    LibraryError::new(format!(
                        "cell `{name}` pin `{pin_name}`: timing group without related_pin"
                    ))
                })?
                .to_owned();
            let rise = tg.attr_num("intrinsic_rise").unwrap_or(0.0);
            let fall = tg.attr_num("intrinsic_fall").unwrap_or(rise);
            arcs.push(TimingArc {
                from,
                to: pin_name.clone(),
                rise,
                fall,
            });
        }
        if let Some(f) = &raw_function {
            state_functions.insert(pin_name.clone(), f.clone());
        }
        pins.push(Pin {
            name: pin_name,
            dir,
            function: None, // resolved below, once state variables are known
            capacitance: pg.attr_num("capacitance").unwrap_or(0.0),
            drive_resistance: pg.attr_num("drive_resistance").unwrap_or(0.0),
        });
    }

    // Sequential groups.
    let mut seq = SeqKind::None;
    let mut state_vars: Vec<String> = Vec::new();
    if let Some(ff) = g.children("ff").next() {
        state_vars = ff.args.clone();
        let iq = state_vars.first().cloned().unwrap_or_default();
        let iqn = state_vars.get(1).cloned();
        let next = ff.attr_str("next_state").ok_or_else(|| {
            LibraryError::new(format!("cell `{name}`: ff group without next_state"))
        })?;
        let clocked = ff.attr_str("clocked_on").ok_or_else(|| {
            LibraryError::new(format!("cell `{name}`: ff group without clocked_on"))
        })?;
        let q = find_state_pin(&name, &pins, &state_functions, &iq, false)?;
        let qn = find_qn_pin(&pins, &state_functions, &iq, iqn.as_deref());
        seq = SeqKind::FlipFlop(FfInfo {
            next_state: parse_fn(&name, next)?,
            clocked_on: clocked.to_owned(),
            clear: opt_fn(&name, g, ff, "clear")?,
            preset: opt_fn(&name, g, ff, "preset")?,
            q,
            qn,
        });
    } else if let Some(latch) = g.children("latch").next() {
        state_vars = latch.args.clone();
        let iq = state_vars.first().cloned().unwrap_or_default();
        let iqn = state_vars.get(1).cloned();
        let data = latch.attr_str("data_in").ok_or_else(|| {
            LibraryError::new(format!("cell `{name}`: latch group without data_in"))
        })?;
        let enable = latch.attr_str("enable").ok_or_else(|| {
            LibraryError::new(format!("cell `{name}`: latch group without enable"))
        })?;
        let q = find_state_pin(&name, &pins, &state_functions, &iq, false)?;
        let qn = find_qn_pin(&pins, &state_functions, &iq, iqn.as_deref());
        seq = SeqKind::Latch(LatchInfo {
            data_in: parse_fn(&name, data)?,
            enable: enable.to_owned(),
            clear: opt_fn(&name, g, latch, "clear")?,
            preset: opt_fn(&name, g, latch, "preset")?,
            q,
            qn,
        });
    } else if let Some(ce) = g.children("celement").next() {
        let inputs = ce
            .attr_str("inputs")
            .map(|s| s.split_whitespace().map(str::to_owned).collect::<Vec<_>>())
            .unwrap_or_default();
        if inputs.is_empty() {
            return Err(LibraryError::new(format!(
                "cell `{name}`: celement group without inputs"
            )));
        }
        let q = ce
            .attr_str("output")
            .map(str::to_owned)
            .or_else(|| {
                pins.iter()
                    .find(|p| p.dir == PortDir::Output)
                    .map(|p| p.name.clone())
            })
            .ok_or_else(|| {
                LibraryError::new(format!("cell `{name}`: celement without an output pin"))
            })?;
        seq = SeqKind::CElement {
            inputs,
            reset: ce.attr_str("reset").map(str::to_owned),
            set: ce.attr_str("set").map(str::to_owned),
            q,
        };
    }

    // Resolve combinational output functions (skip pure state outputs).
    for pin in pins.iter_mut() {
        if pin.dir != PortDir::Output {
            continue;
        }
        if let Some(raw) = state_functions.get(&pin.name) {
            let trimmed = raw.trim();
            let is_state_ref = state_vars.iter().any(|v| {
                trimmed == v
                    || trimmed == format!("!{v}")
                    || trimmed == format!("{v}'")
                    || trimmed == format!("!({v})")
            });
            if !is_state_ref && seq == SeqKind::None {
                pin.function = Some(parse_fn(&name, raw)?);
            }
        }
    }

    Ok(LibCell {
        name,
        area: g.attr_num("area").unwrap_or(0.0),
        leakage: g.attr_num("cell_leakage_power").unwrap_or(0.0),
        switching_energy: g.attr_num("switching_energy").unwrap_or(0.0),
        setup: g.attr_num("setup_time").unwrap_or(0.0),
        hold: g.attr_num("hold_time").unwrap_or(0.0),
        pins,
        seq,
        arcs,
    })
}

fn opt_fn(
    cell: &str,
    _cell_group: &Group,
    seq_group: &Group,
    key: &str,
) -> Result<Option<Expr>, LibraryError> {
    match seq_group.attr_str(key) {
        Some(text) => Ok(Some(parse_fn(cell, text)?)),
        None => Ok(None),
    }
}


/// Finds the inverted state output: a pin whose function is the second
/// state variable (`IQN`) plainly, or the negation of the first (`!IQ`).
fn find_qn_pin(
    pins: &[Pin],
    state_functions: &HashMap<String, String>,
    iq: &str,
    iqn: Option<&str>,
) -> Option<String> {
    for pin in pins.iter().filter(|p| p.dir == PortDir::Output) {
        if let Some(f) = state_functions.get(&pin.name) {
            let t = f.trim();
            let plain_iqn = iqn.is_some_and(|v| t == v);
            let negated_iq =
                t == format!("!{iq}") || t == format!("{iq}'") || t == format!("!({iq})");
            if plain_iqn || negated_iq {
                return Some(pin.name.clone());
            }
        }
    }
    None
}

/// Finds the output pin whose function equals the state variable `var`
/// (or its negation when `negated`).
fn find_state_pin(
    cell: &str,
    pins: &[Pin],
    state_functions: &HashMap<String, String>,
    var: &str,
    negated: bool,
) -> Result<String, LibraryError> {
    for pin in pins.iter().filter(|p| p.dir == PortDir::Output) {
        if let Some(f) = state_functions.get(&pin.name) {
            let t = f.trim();
            let matches = if negated {
                t == format!("!{var}") || t == format!("{var}'") || t == format!("!({var})")
            } else {
                t == var
            };
            if matches {
                return Ok(pin.name.clone());
            }
        }
    }
    Err(LibraryError::new(format!(
        "cell `{cell}`: no output pin carries state variable `{var}`"
    )))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::CellClass;

    const SAMPLE: &str = r#"
    /* sample library */
    library (mini) {
      cell (INVX1) {
        area : 2.1;
        cell_leakage_power : 0.012;
        switching_energy : 0.0021;
        pin (A) { direction : input; capacitance : 0.0030; }
        pin (Z) {
          direction : output;
          function : "!A";
          drive_resistance : 1.10;
          timing () { related_pin : "A"; intrinsic_rise : 0.014; intrinsic_fall : 0.011; }
        }
      }
      cell (DFFX1) {
        area : 14.1;
        setup_time : 0.062;
        hold_time : 0.012;
        ff (IQ, IQN) {
          next_state : "D";
          clocked_on : "CK";
        }
        pin (D)  { direction : input; capacitance : 0.0028; }
        pin (CK) { direction : input; capacitance : 0.0040; }
        pin (Q)  { direction : output; function : "IQ";
          timing () { related_pin : "CK"; intrinsic_rise : 0.120; intrinsic_fall : 0.118; }
        }
        pin (QN) { direction : output; function : "IQN"; }
      }
      cell (LDX1) {
        area : 8.2;
        setup_time : 0.040;
        latch (IQ, IQN) {
          data_in : "D";
          enable : "G";
        }
        pin (D) { direction : input; capacitance : 0.0026; }
        pin (G) { direction : input; capacitance : 0.0035; }
        pin (Q) { direction : output; function : "IQ";
          timing () { related_pin : "D"; intrinsic_rise : 0.080; intrinsic_fall : 0.078; }
          timing () { related_pin : "G"; intrinsic_rise : 0.100; intrinsic_fall : 0.096; }
        }
      }
      cell (C2RX1) {
        area : 6.4;
        celement () { inputs : "A B"; reset : "RN"; }
        pin (A)  { direction : input; capacitance : 0.0030; }
        pin (B)  { direction : input; capacitance : 0.0030; }
        pin (RN) { direction : input; capacitance : 0.0020; }
        pin (Z)  { direction : output;
          timing () { related_pin : "A"; intrinsic_rise : 0.045; intrinsic_fall : 0.043; }
          timing () { related_pin : "B"; intrinsic_rise : 0.045; intrinsic_fall : 0.043; }
        }
      }
    }
    "#;

    #[test]
    fn parses_sample_library() {
        let lib = parse_library(SAMPLE).unwrap();
        assert_eq!(lib.name(), "mini");
        assert_eq!(lib.cells().count(), 4);
    }

    #[test]
    fn combinational_cell() {
        let lib = parse_library(SAMPLE).unwrap();
        let inv = lib.cell("INVX1").unwrap();
        assert_eq!(inv.class(), CellClass::Combinational);
        assert!((inv.area - 2.1).abs() < 1e-9);
        assert_eq!(inv.arc_delay("A", "Z"), Some((0.014, 0.011)));
        let f = inv.pin("Z").unwrap().function.as_ref().unwrap();
        assert_eq!(f.vars(), ["A"]);
    }

    #[test]
    fn flip_flop_cell() {
        let lib = parse_library(SAMPLE).unwrap();
        let dff = lib.cell("DFFX1").unwrap();
        let SeqKind::FlipFlop(ff) = &dff.seq else {
            panic!("DFFX1 should be a flip-flop");
        };
        assert_eq!(ff.clocked_on, "CK");
        assert_eq!(ff.q, "Q");
        assert_eq!(ff.qn.as_deref(), Some("QN"));
        assert!((dff.setup - 0.062).abs() < 1e-9);
        // State output pins carry no combinational function.
        assert!(dff.pin("Q").unwrap().function.is_none());
    }

    #[test]
    fn latch_cell() {
        let lib = parse_library(SAMPLE).unwrap();
        let ld = lib.cell("LDX1").unwrap();
        let SeqKind::Latch(latch) = &ld.seq else {
            panic!("LDX1 should be a latch");
        };
        assert_eq!(latch.enable, "G");
        assert_eq!(latch.q, "Q");
        assert_eq!(ld.arc_delay("G", "Q"), Some((0.100, 0.096)));
    }

    #[test]
    fn celement_cell() {
        let lib = parse_library(SAMPLE).unwrap();
        let c = lib.cell("C2RX1").unwrap();
        let SeqKind::CElement { inputs, reset, set, q } = &c.seq else {
            panic!("C2RX1 should be a C-element");
        };
        assert_eq!(inputs, &["A", "B"]);
        assert_eq!(reset.as_deref(), Some("RN"));
        assert_eq!(*set, None);
        assert_eq!(q, "Z");
    }

    #[test]
    fn syntax_errors_are_reported() {
        assert!(parse_library("cell (X) {}").is_err());
        assert!(parse_library("library (x) { cell (A) { pin (P) { direction : sideways; } } }").is_err());
        assert!(parse_library("library (x) { cell () {} }").is_err());
    }
}
