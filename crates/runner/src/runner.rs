//! A work-stealing parallel task runner on bare `std::thread` — the
//! throughput backbone that lets mutant × seed counts grow ~10× while
//! `cargo test` wall time stays flat.
//!
//! Design constraints (matching the rest of this crate):
//!
//! * **offline / dependency-free** — `std::thread::scope` plus
//!   `Mutex<VecDeque>` deques, no rayon/crossbeam;
//! * **deterministic results** — every task's outcome depends only on the
//!   task itself (callers derive per-task seeds from a base seed and the
//!   task *index*, never from scheduling order), and results are returned
//!   in task order regardless of which worker ran them;
//! * **seeded scheduling** — each worker owns a SplitMix64 stream (forked
//!   from a fixed scheduler seed) used *only* for victim selection when
//!   stealing, so the schedule itself is reproducible modulo OS timing.
//!
//! Workers pop from the **back** of their own deque and steal from the
//! **front** of a victim's, the classic Chase–Lev discipline (here with a
//! lock per deque — contention is irrelevant at "hundreds of multi-
//! millisecond tasks" granularity).
//!
//! The worker count comes from `DRD_WORKERS` when set, else from
//! [`std::thread::available_parallelism`].

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::governor;
use crate::rng::Rng;

/// Scheduler seed for the per-worker victim-selection streams. Fixed so
/// runs are reproducible; independent from any property/case seed.
const SCHED_SEED: u64 = 0x5EED_0F57_EA1E_2500;

/// The number of workers the runner will use: `DRD_WORKERS` if set (>= 1),
/// else [`std::thread::available_parallelism`], else 1.
pub fn worker_count() -> usize {
    if let Ok(raw) = std::env::var("DRD_WORKERS") {
        let n: usize = raw
            .trim()
            .parse()
            .unwrap_or_else(|_| panic!("DRD_WORKERS={raw} is not a number"));
        return n.max(1);
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Runs `work` over every task index `0..tasks`, in parallel on `workers`
/// threads, returning the results **in task order**.
///
/// `work` must be deterministic in its index argument for the whole run
/// to be deterministic — derive any randomness from a seed and the index.
///
/// # Panics
/// Propagates the first worker panic (by task order) after all workers
/// stopped.
pub fn run_indexed<R, F>(tasks: usize, workers: usize, work: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let workers = workers.clamp(1, tasks.max(1));
    if tasks == 0 {
        return Vec::new();
    }
    if workers == 1 {
        return (0..tasks).map(|i| governor::with_token(|| work(i))).collect();
    }

    // Round-robin initial distribution: task i starts on deque i % workers.
    let deques: Vec<Mutex<VecDeque<usize>>> = (0..workers)
        .map(|w| {
            Mutex::new(
                (0..tasks)
                    .filter(|i| i % workers == w)
                    .collect::<VecDeque<usize>>(),
            )
        })
        .collect();
    let slots: Vec<Mutex<Option<R>>> = (0..tasks).map(|_| Mutex::new(None)).collect();
    let panics: Mutex<Vec<(usize, Box<dyn std::any::Any + Send>)>> = Mutex::new(Vec::new());
    let remaining = AtomicUsize::new(tasks);

    let mut sched = Rng::new(SCHED_SEED);
    let streams: Vec<Rng> = (0..workers).map(|_| sched.fork()).collect();

    std::thread::scope(|scope| {
        for (w, mut stream) in streams.into_iter().enumerate() {
            let deques = &deques;
            let slots = &slots;
            let panics = &panics;
            let remaining = &remaining;
            let work = &work;
            scope.spawn(move || loop {
                // Own deque first (LIFO), then steal (FIFO) from a
                // seeded-random victim. The own-deque guard must be dropped
                // before any steal attempt: holding it across a victim lock
                // is an ABBA deadlock between two mutually-stealing workers
                // (the temporary guard in a `lock().pop_back().or_else(..)`
                // chain would live until the end of the statement).
                let own = deques[w].lock().unwrap().pop_back();
                let task = own.or_else(|| {
                    for _ in 0..4 * deques.len() {
                        let v = stream.range(0, deques.len());
                        if v == w {
                            continue;
                        }
                        if let Some(t) = deques[v].lock().unwrap().pop_front() {
                            return Some(t);
                        }
                    }
                    // Linear sweep so termination never depends on luck.
                    (0..deques.len())
                        .filter(|&v| v != w)
                        .find_map(|v| deques[v].lock().unwrap().pop_front())
                });
                let Some(task) = task else {
                    if remaining.load(Ordering::Acquire) == 0 {
                        return;
                    }
                    std::thread::yield_now();
                    continue;
                };
                match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    governor::with_token(|| work(task))
                })) {
                    Ok(r) => *slots[task].lock().unwrap() = Some(r),
                    Err(p) => panics.lock().unwrap().push((task, p)),
                }
                remaining.fetch_sub(1, Ordering::AcqRel);
            });
        }
    });

    let mut failed = panics.into_inner().unwrap();
    if !failed.is_empty() {
        // Resume the panic of the lowest task index — deterministic even
        // when several workers failed concurrently.
        failed.sort_by_key(|(i, _)| *i);
        std::panic::resume_unwind(failed.remove(0).1);
    }
    slots
        .into_iter()
        .map(|s| s.into_inner().unwrap().expect("every task ran"))
        .collect()
}

/// [`run_indexed`] with the default [`worker_count`].
pub fn run_parallel<R, F>(tasks: usize, work: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    run_indexed(tasks, worker_count(), work)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_task_order() {
        for workers in [1, 2, 3, 8] {
            let out = run_indexed(100, workers, |i| i * i);
            assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn zero_tasks_is_empty() {
        let out: Vec<usize> = run_indexed(0, 4, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn parallel_equals_single_thread() {
        // Determinism across worker counts: per-task seeding only.
        let gold: Vec<u64> = run_indexed(64, 1, |i| Rng::new(0xBEEF ^ i as u64).next_u64());
        for workers in [2, 4, 7] {
            let got = run_indexed(64, workers, |i| Rng::new(0xBEEF ^ i as u64).next_u64());
            assert_eq!(got, gold, "workers = {workers}");
        }
    }

    #[test]
    fn lowest_index_panic_wins() {
        let caught = std::panic::catch_unwind(|| {
            run_indexed(32, 4, |i| {
                if i % 10 == 3 {
                    panic!("task {i} failed");
                }
                i
            })
        });
        let msg = *caught.expect_err("must fail").downcast::<String>().unwrap();
        assert_eq!(msg, "task 3 failed");
    }

    #[test]
    fn mutual_stealing_does_not_deadlock() {
        // Regression: the own-deque guard used to stay held across steal
        // attempts (temporary-lifetime footgun in a
        // `lock().pop_back().or_else(..)` chain), which deadlocks two
        // workers stealing from each other. Tiny tasks, more workers than
        // cores and many rounds make that collision likely; a watchdog
        // turns a regression into a failure instead of a hung suite.
        let (tx, rx) = std::sync::mpsc::channel();
        std::thread::spawn(move || {
            for round in 0..200usize {
                let out = run_indexed(64, 8, |i| i + round);
                assert_eq!(out, (round..round + 64).collect::<Vec<_>>());
            }
            tx.send(()).unwrap();
        });
        rx.recv_timeout(std::time::Duration::from_secs(120))
            .expect("runner deadlocked in the steal path");
    }

    #[test]
    fn uneven_task_sizes_are_stolen() {
        // One long-running initial task per worker would serialize a
        // non-stealing runner; just assert completion and order here.
        let out = run_indexed(40, 4, |i| {
            if i < 4 {
                std::thread::sleep(std::time::Duration::from_millis(10));
            }
            i
        });
        assert_eq!(out, (0..40).collect::<Vec<_>>());
    }
}
