//! # drd-runner — deterministic parallelism primitives
//!
//! The one crate every other crate may depend on: it has **zero
//! dependencies** (not even in-tree ones) so it can sit below `drd-core`,
//! `drd-sta` and `drd-check` in the dependency graph without cycles.
//!
//! * [`rng`] — a deterministic SplitMix64 PRNG (replacing `rand`),
//! * [`runner`] — a dependency-free work-stealing parallel task runner on
//!   `std::thread` with per-worker seeded scheduling streams, returning
//!   results in task order so parallel runs are byte-identical to serial
//!   ones.
//!
//! Both modules started life in `drd-check`; they moved here so the flow
//! passes themselves (region delays, FF substitution, control network,
//! SDC) can fan out per-region work without the core depending on the
//! verification kit.

pub mod governor;
pub mod rng;
pub mod runner;

pub use rng::Rng;
pub use runner::{run_indexed, run_parallel, worker_count};
