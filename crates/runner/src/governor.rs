//! A process-wide core-token governor for cross-job scheduling.
//!
//! A long-running server executes many flows concurrently, and each
//! flow's per-region passes fan out over [`crate::run_indexed`]. Without
//! coordination, `J` in-flight jobs × `C` workers each oversubscribe the
//! machine `J×C`-fold; with a naive per-job core split (`C/J` workers
//! each), a job with few regions strands the cores its siblings could
//! use. The governor is the middle path: every [`crate::run_indexed`]
//! *task execution* (not task *result*) first takes one of a fixed pool
//! of core tokens and returns it when the task finishes. Per-region
//! tasks from *different* jobs interleave at core granularity — the pool
//! drains and refills task by task, so cores stay full whenever any job
//! has runnable work — while the total number of running tasks never
//! exceeds the pool.
//!
//! Determinism is untouched: tokens gate only *when* a task runs, never
//! which worker gets it or how results merge — [`crate::run_indexed`]
//! still returns results in task order, so each job's artifacts stay
//! byte-identical to a solo run (the PR 5 invariant).
//!
//! The governor is inert until [`install`] is called (the server does
//! this once at startup); one-shot CLI runs never pay more than one
//! relaxed atomic load per task. Token acquisition is re-entrant: a task
//! that itself fans out (nested `run_indexed`) runs its inner tasks
//! under the token it already holds instead of deadlocking the pool.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};

/// The installed pool, if any.
static POOL: OnceLock<Pool> = OnceLock::new();

struct Pool {
    capacity: usize,
    available: Mutex<usize>,
    returned: Condvar,
    waiting: AtomicUsize,
}

thread_local! {
    /// True while this thread holds a token — nested acquisitions
    /// piggyback on it (see the module docs).
    static HOLDING: Cell<bool> = const { Cell::new(false) };
}

/// Installs the process-wide governor with `tokens` core tokens
/// (clamped to ≥ 1). Idempotent: the first call wins and later calls
/// are ignored — returns whether *this* call installed it. There is no
/// uninstall; the governor lives as long as the process, which is the
/// server lifetime by construction.
pub fn install(tokens: usize) -> bool {
    POOL.set(Pool {
        capacity: tokens.max(1),
        available: Mutex::new(tokens.max(1)),
        returned: Condvar::new(),
        waiting: AtomicUsize::new(0),
    })
    .is_ok()
}

/// Whether a governor is installed.
pub fn is_installed() -> bool {
    POOL.get().is_some()
}

/// Observability snapshot: `(capacity, available, waiting)` — pool size,
/// tokens currently free, and tasks currently blocked waiting for one.
/// `None` when no governor is installed.
pub fn stats() -> Option<(usize, usize, usize)> {
    POOL.get().map(|p| {
        let available = *p.available.lock().unwrap();
        (p.capacity, available, p.waiting.load(Ordering::Relaxed))
    })
}

/// Releases the token on drop, so a panicking task cannot leak one.
struct TokenGuard {
    pool: &'static Pool,
}

impl Drop for TokenGuard {
    fn drop(&mut self) {
        HOLDING.with(|h| h.set(false));
        *self.pool.available.lock().unwrap() += 1;
        self.pool.returned.notify_one();
    }
}

/// Runs `f` under one core token when a governor is installed (blocking
/// until a token frees up), or directly when none is — or when this
/// thread already holds one.
pub fn with_token<R>(f: impl FnOnce() -> R) -> R {
    let Some(pool) = POOL.get() else {
        return f();
    };
    if HOLDING.with(Cell::get) {
        return f();
    }
    let _guard = {
        pool.waiting.fetch_add(1, Ordering::Relaxed);
        let mut available = pool.available.lock().unwrap();
        while *available == 0 {
            available = pool.returned.wait(available).unwrap();
        }
        *available -= 1;
        pool.waiting.fetch_sub(1, Ordering::Relaxed);
        drop(available);
        HOLDING.with(|h| h.set(true));
        TokenGuard { pool }
    };
    f()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    // The pool is process-global and install is once-only, so all
    // governor behaviour lives in ONE test (cargo runs tests of a module
    // in one process); the uninstalled fast path is covered by every
    // other runner test in this crate.
    #[test]
    fn tokens_bound_concurrency_and_reenter_and_survive_panics() {
        assert!(stats().is_none(), "inert until installed");
        assert!(install(2));
        assert!(!install(8), "second install is ignored");
        assert!(is_installed());
        assert_eq!(stats(), Some((2, 2, 0)));

        // Concurrency never exceeds the pool even with 8 eager threads.
        let running = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..50 {
                        with_token(|| {
                            let now = running.fetch_add(1, Ordering::SeqCst) + 1;
                            peak.fetch_max(now, Ordering::SeqCst);
                            std::thread::yield_now();
                            running.fetch_sub(1, Ordering::SeqCst);
                        });
                    }
                });
            }
        });
        assert!(peak.load(Ordering::SeqCst) <= 2, "peak {}", peak.load(Ordering::SeqCst));
        assert_eq!(stats(), Some((2, 2, 0)), "all tokens returned");

        // Re-entrancy: a nested with_token piggybacks on the held token.
        with_token(|| {
            assert_eq!(stats().unwrap().1, 1);
            with_token(|| assert_eq!(stats().unwrap().1, 1, "no second token taken"));
        });

        // A panicking task returns its token.
        let caught = std::panic::catch_unwind(|| with_token(|| panic!("boom")));
        assert!(caught.is_err());
        assert_eq!(stats(), Some((2, 2, 0)));
    }
}
