//! Deterministic pseudo-random numbers for tests and Monte-Carlo sweeps.
//!
//! SplitMix64 (Steele, Lea & Flood, "Fast splittable pseudorandom number
//! generators", OOPSLA'14): a 64-bit counter passed through an avalanching
//! mix function. It is trivially seedable, has a full 2^64 period, passes
//! BigCrush, and — most importantly here — is ~15 lines of dependency-free
//! code, so the whole workspace can test without touching a registry.

/// A deterministic SplitMix64 generator.
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Creates a generator from a seed. Equal seeds give equal streams.
    pub fn new(seed: u64) -> Rng {
        Rng { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform in `[0, n)`. Returns 0 for `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            return 0;
        }
        // Lemire's multiply-shift; the slight bias is irrelevant for tests.
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }

    /// Uniform `usize` in `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `lo >= hi`.
    pub fn range(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.below((hi - lo) as u64) as usize
    }

    /// A fair coin.
    pub fn coin(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// True with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// A uniformly chosen element of `items`.
    ///
    /// # Panics
    /// Panics if `items` is empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "choose from empty slice");
        &items[self.range(0, items.len())]
    }

    /// `len` random bytes.
    pub fn bytes(&mut self, len: usize) -> Vec<u8> {
        (0..len).map(|_| self.next_u64() as u8).collect()
    }

    /// Standard-normal sample (Box–Muller on two uniforms).
    pub fn gaussian(&mut self) -> f64 {
        let u1 = self.next_f64().max(1e-12);
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// An independent child generator (split).
    pub fn fork(&mut self) -> Rng {
        Rng::new(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_seeds_give_equal_streams() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn range_and_below_stay_in_bounds() {
        let mut r = Rng::new(7);
        for _ in 0..1000 {
            let v = r.range(3, 10);
            assert!((3..10).contains(&v));
            assert!(r.below(5) < 5);
        }
        assert_eq!(r.below(0), 0);
    }

    #[test]
    fn f64_is_unit_interval_and_roughly_uniform() {
        let mut r = Rng::new(11);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| r.next_f64()).sum::<f64>() / f64::from(n);
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gaussian_is_centered_unit_variance() {
        let mut r = Rng::new(13);
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| r.gaussian()).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn chance_tracks_probability() {
        let mut r = Rng::new(17);
        let hits = (0..10_000).filter(|_| r.chance(0.25)).count();
        assert!((2200..2800).contains(&hits), "{hits}");
    }
}
