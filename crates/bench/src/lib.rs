//! # drd-bench — reproduction harnesses for every table and figure
//!
//! One binary per evaluation artifact of the paper (see DESIGN.md's
//! per-experiment index):
//!
//! | binary      | artifact   | what it prints                               |
//! |-------------|------------|----------------------------------------------|
//! | `table_2_1` | Table 2.1  | C-Muller element truth table, checked live   |
//! | `fig_2_4`   | Fig. 2.4   | protocol concurrency ordering + classification|
//! | `table_5_1` | Table 5.1  | DLX vs DDLX area rows                        |
//! | `table_5_2` | Table 5.2  | ARM vs DARM area rows                        |
//! | `fig_5_3`   | Fig. 5.3   | effective period vs delay selection, 2 corners|
//! | `fig_5_4`   | Fig. 5.4   | per-chip delay distribution vs sync worst    |
//! | `fig_5_5`   | Fig. 5.5   | total power vs delay selection               |
//!
//! `benches/kernels.rs` additionally benchmarks the tool's own kernels
//! (parsing, grouping, STA, reachability, simulation, desynchronization).

/// Medium DLX configuration used by the sweep figures: large enough to be
/// representative, small enough that 16 two-corner simulations finish in
/// minutes.
pub fn sweep_dlx_params() -> drd_designs::dlx::DlxParams {
    drd_designs::dlx::DlxParams {
        width: 16,
        regs_log2: 4,
        rom_log2: 5,
        ram_log2: 3,
        seed: 0xD1_5C0DE,
    }
}
