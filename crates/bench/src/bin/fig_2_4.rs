//! Fig. 2.4: desynchronization protocols ordered by allowed concurrency,
//! with liveness and flow-equivalence classification.

use drd_stg::flow_equiv::{check_flow_equivalence, FlowEquivalence};
use drd_stg::protocols::Protocol;

fn main() {
    println!("Fig. 2.4 — protocol ordering according to allowed concurrency");
    println!(
        "{:<36} {:>7} {:>6} {:>6} {:>22}",
        "protocol", "states", "live", "safe", "flow-equivalent"
    );
    for p in Protocol::ALL {
        let stg = p.stg();
        let states = stg.reachability(1 << 14).unwrap().state_count();
        let live = stg.is_live() && stg.reachability(1 << 14).unwrap().deadlocks().is_empty();
        let safe = stg.is_safe(1 << 14).unwrap_or(false);
        let fe = if p.executable_fe() {
            match check_flow_equivalence(&stg, 4, 1 << 22).unwrap() {
                FlowEquivalence::Ok => "yes (checked)",
                FlowEquivalence::Violated { .. } => "NO (overwriting)",
                FlowEquivalence::Deadlock => "NO (deadlock)",
            }
        } else if p.expected_flow_equivalent() {
            "yes (per [4])"
        } else {
            "NO"
        };
        println!(
            "{:<36} {:>7} {:>6} {:>6} {:>22}",
            p.name(),
            states,
            if live { "yes" } else { "NO" },
            if safe { "yes" } else { "2-bnd" },
            fe
        );
        if let Some(expected) = p.expected_states() {
            assert_eq!(states, expected, "{}", p.name());
        }
    }
    println!();
    println!("this flow implements the 4-phase semi-decoupled controllers (§2.2)");
}
