//! Sync-vs-desync variability Monte Carlo at netgen scale (Fig 5.3–5.5).
//!
//! Three stepped synthetic pipelines go through the full flow; each
//! report projects onto a handshake-level control-network spec
//! (`drd_flow::handshake_spec`) which the event-driven timing simulator
//! elaborates (DESIGN.md §3f). Per design:
//!
//! * a matched-delay tap sweep at nominal silicon (the Fig 5.3 curve:
//!   effective cycle time vs `delay_element::tap_factor`),
//! * a Monte-Carlo campaign of [`CHIPS`] chips per sigma on the grid
//!   [`SIGMA_PCT`]: the desynchronized chip runs at its own silicon's
//!   handshake speed, the synchronous reference must be clocked at the
//!   *population worst* period (Fig 5.4's spread, Fig 5.5's ratio),
//! * a cycle-time histogram at `sigma = 0.15` (Fig 5.4).
//!
//! The binary is also the determinism/performance harness for the
//! parallel driver: the sigma-0.15 campaign runs at 1, 2 and the host
//! worker count and must merge byte-identically; on hosts with at least
//! four cores the aggregate parallel speedup must reach 3x. Zero-sigma
//! campaigns must reproduce the nominal simulation bit for bit. The
//! physical claim gated on exit status is the paper's: the desynchronized
//! *mean* degrades more slowly with sigma than the synchronous
//! *worst case*. Any violation exits non-zero so `scripts/verify.sh`
//! can gate on it. Output: `BENCH_variability.json` (directory
//! overridable via `DRD_BENCH_DIR`, default `results/`).

use std::path::PathBuf;
use std::time::Instant;

use drd_check::netgen::{FfKind, FfRecipe, GateOp, NetRecipe, StageRecipe};
use drd_check::Rng;
use drd_core::delay_element::{tap_factor, MUX_TAPS};
use drd_core::{DesyncOptions, Desynchronizer};
use drd_flow::handshake_spec;
use drd_liberty::vlib90;
use drd_sim::handshake::DEFAULT_MAX_EDGES;
use drd_sim::{ChipSample, GateVariability, HandshakeNet};

/// (stages, cloud gates per stage, register lanes per stage) steps.
const STEPS: [(usize, usize, usize); 3] = [(3, 40, 3), (4, 80, 4), (6, 140, 6)];

/// Monte-Carlo chips per (design, sigma) campaign.
const CHIPS: usize = 1000;

/// Sigma grid in percent (relative per-gate delay deviation).
const SIGMA_PCT: [usize; 6] = [0, 5, 10, 15, 20, 25];

/// The sigma used for the byte-identity / timing / histogram campaign.
const IDENTITY_SIGMA_PCT: usize = 15;

fn out_dir() -> PathBuf {
    std::env::var("DRD_BENCH_DIR").map_or_else(
        |_| PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results"),
        PathBuf::from,
    )
}

/// Stepped recipe with *identical* clouds in every stage: equal critical
/// delays give every region the same matched depth, so the open-chain
/// source region's request pulse (set by its successor's response time)
/// always outlasts its own matched delay — the topology is live by
/// construction (see `drd_sim::handshake`'s deadlock notes).
fn recipe(rng: &mut Rng, stages: usize, cloud: usize, width: usize) -> NetRecipe {
    let cloud: Vec<GateOp> = (0..cloud)
        .map(|_| GateOp {
            kind: rng.next_u64() as u8,
            a: rng.range(0, 4096),
            b: rng.range(0, 4096),
        })
        .collect();
    let ffs: Vec<FfRecipe> = (0..width)
        .map(|_| FfRecipe {
            kind: FfKind::Plain,
            d: rng.range(0, 4096),
            aux0: rng.range(0, 4096),
            aux1: rng.range(0, 4096),
        })
        .collect();
    NetRecipe {
        inputs: 4,
        input_bits: rng.next_u64(),
        stages: (0..stages)
            .map(|_| StageRecipe {
                cloud: cloud.clone(),
                ffs: ffs.clone(),
            })
            .collect(),
    }
}

struct SigmaPoint {
    sigma: f64,
    desync_mean_ns: f64,
    desync_min_ns: f64,
    desync_max_ns: f64,
    sync_mean_ns: f64,
    sync_worst_ns: f64,
    fraction_faster: f64,
}

struct Design {
    label: String,
    cells: usize,
    regions: usize,
    controlled: usize,
    nominal_desync_ns: f64,
    nominal_sync_ns: f64,
    taps: Vec<(usize, f64, f64)>,
    curve: Vec<SigmaPoint>,
    hist_lo_ns: f64,
    hist_hi_ns: f64,
    hist_desync: Vec<usize>,
    hist_sync: Vec<usize>,
}

fn stats(samples: &[ChipSample]) -> SigmaPoint {
    let n = samples.len() as f64;
    let desync: Vec<f64> = samples.iter().map(|s| s.desync_cycle_ns).collect();
    let sync: Vec<f64> = samples.iter().map(|s| s.sync_period_ns).collect();
    let sync_worst = sync.iter().copied().fold(0.0f64, f64::max);
    SigmaPoint {
        sigma: 0.0,
        desync_mean_ns: desync.iter().sum::<f64>() / n,
        desync_min_ns: desync.iter().copied().fold(f64::INFINITY, f64::min),
        desync_max_ns: desync.iter().copied().fold(0.0f64, f64::max),
        sync_mean_ns: sync.iter().sum::<f64>() / n,
        sync_worst_ns: sync_worst,
        fraction_faster: desync.iter().filter(|&&d| d < sync_worst).count() as f64 / n,
    }
}

fn bitwise_equal(a: &[ChipSample], b: &[ChipSample]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| {
            x.chip == y.chip
                && x.desync_cycle_ns.to_bits() == y.desync_cycle_ns.to_bits()
                && x.sync_period_ns.to_bits() == y.sync_period_ns.to_bits()
        })
}

/// 12-bucket histogram of `values` over `[lo, hi]`.
fn histogram(values: impl Iterator<Item = f64>, lo: f64, hi: f64) -> Vec<usize> {
    let mut bins = vec![0usize; 12];
    let width = ((hi - lo) / 12.0).max(f64::MIN_POSITIVE);
    for v in values {
        let k = (((v - lo) / width) as usize).min(11);
        bins[k] += 1;
    }
    bins
}

fn json_usize_array(bins: &[usize]) -> String {
    let items: Vec<String> = bins.iter().map(usize::to_string).collect();
    format!("[{}]", items.join(", "))
}

fn main() {
    let lib = vlib90::high_speed();
    let tool = Desynchronizer::new(&lib).expect("library prepares");
    let workers = drd_check::runner::worker_count();
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut rng = Rng::new(0xF1C5_53ED);
    let mut serial_total_ns: u128 = 0;
    let mut parallel_total_ns: u128 = 0;
    let mut designs: Vec<Design> = Vec::new();

    for (di, (stages, cloud, width)) in STEPS.into_iter().enumerate() {
        // Screen candidates at every tap up to 1.75x: an open chain whose
        // source region's matched delay outgrows its successor's response
        // wedges — in silicon as in simulation — so a design that
        // survives the extreme taps has liveness margin to spare for the
        // sigma campaigns below. The rng sequence is fixed, so the first
        // surviving recipe per step is deterministic.
        let mut picked = None;
        for _attempt in 0..32 {
            let module = recipe(&mut rng, stages, cloud, width)
                .build()
                .expect("recipe builds");
            let Ok(result) = tool.run(&module, &DesyncOptions::default()) else {
                continue;
            };
            let spec = handshake_spec(&result.report, &lib).expect("spec projects");
            let Ok(net) = HandshakeNet::elaborate(&spec, &lib) else {
                continue;
            };
            let ones = vec![1.0f64; net.gate_count()];
            let survives = (0..MUX_TAPS).all(|k| {
                net.cycle_times_scaled(&ones, tap_factor(k), DEFAULT_MAX_EDGES)
                    .is_ok()
            });
            if survives {
                picked = Some((module, spec, net, ones));
                break;
            }
        }
        let Some((module, spec, net, ones)) = picked else {
            eprintln!("design {di}: no candidate survives the full tap sweep in 32 draws");
            std::process::exit(1);
        };
        let cells = module.cells().count();
        let nominal = match net.nominal_cycle_times() {
            Ok(c) => c,
            Err(e) => {
                eprintln!("design {di}: nominal handshake simulation failed: {e}");
                std::process::exit(1);
            }
        };
        let nominal_desync = nominal.iter().map(|c| c.cycle_ns).fold(0.0f64, f64::max);

        // Fig 5.3: effective cycle time across the delay element's taps
        // at nominal silicon (tap 2 is the matched point).
        let taps: Vec<(usize, f64, f64)> = (0..MUX_TAPS)
            .map(|k| {
                let cycles = net
                    .cycle_times_scaled(&ones, tap_factor(k), DEFAULT_MAX_EDGES)
                    .unwrap_or_else(|e| {
                        eprintln!("design {di} tap {k}: {e}");
                        std::process::exit(1);
                    });
                let worst = cycles.iter().map(|c| c.cycle_ns).fold(0.0f64, f64::max);
                (k, tap_factor(k), worst)
            })
            .collect();

        // Monte-Carlo sigma sweep. One campaign seed per design: the
        // same underlying per-gate draws scaled by each sigma (common
        // random numbers keep the curve smooth).
        let campaign_seed = 0xD15E_A5E0_u64 + di as u64;
        let mut curve: Vec<SigmaPoint> = Vec::new();
        let mut nominal_sync = 0.0f64;
        let mut identity_samples: Option<Vec<ChipSample>> = None;
        for pct in SIGMA_PCT {
            let sigma = pct as f64 / 100.0;
            let var = GateVariability::new(campaign_seed, sigma);
            let samples = if pct == IDENTITY_SIGMA_PCT {
                // Determinism + speedup campaign: serial, two workers,
                // and the host count must merge byte-identically.
                let start = Instant::now();
                let serial = net.monte_carlo(&var, CHIPS, 1).expect("serial campaign");
                serial_total_ns += start.elapsed().as_nanos();
                let two = net.monte_carlo(&var, CHIPS, 2).expect("2-worker campaign");
                let start = Instant::now();
                let par = net
                    .monte_carlo(&var, CHIPS, workers)
                    .expect("parallel campaign");
                parallel_total_ns += start.elapsed().as_nanos();
                if !bitwise_equal(&serial, &two) || !bitwise_equal(&serial, &par) {
                    eprintln!(
                        "design {di}: sigma {sigma} campaign diverged across worker \
                         counts 1/2/{workers}"
                    );
                    std::process::exit(1);
                }
                identity_samples = Some(par);
                serial
            } else {
                net.monte_carlo(&var, CHIPS, workers).expect("campaign")
            };
            if pct == 0 {
                // Zero-sigma chips are the nominal run, bit for bit.
                nominal_sync = samples[0].sync_period_ns;
                for s in &samples {
                    if s.desync_cycle_ns.to_bits() != nominal_desync.to_bits()
                        || s.sync_period_ns.to_bits() != nominal_sync.to_bits()
                    {
                        eprintln!(
                            "design {di}: zero-sigma chip {} is not bitwise nominal \
                             ({} ns vs {} ns)",
                            s.chip, s.desync_cycle_ns, nominal_desync
                        );
                        std::process::exit(1);
                    }
                }
            }
            let mut point = stats(&samples);
            point.sigma = sigma;
            curve.push(point);
        }

        // Fig 5.4: cycle-time spread of both populations at one sigma.
        let identity = identity_samples.expect("identity sigma is on the grid");
        let lo = identity
            .iter()
            .flat_map(|s| [s.desync_cycle_ns, s.sync_period_ns])
            .fold(f64::INFINITY, f64::min);
        let hi = identity
            .iter()
            .flat_map(|s| [s.desync_cycle_ns, s.sync_period_ns])
            .fold(0.0f64, f64::max);
        let hist_desync = histogram(identity.iter().map(|s| s.desync_cycle_ns), lo, hi);
        let hist_sync = histogram(identity.iter().map(|s| s.sync_period_ns), lo, hi);

        let label = format!("{stages}x{cloud}+{width}");
        let controlled = spec.regions.iter().filter(|r| r.controlled).count();
        eprintln!(
            "{label:>10}: {cells} cells, {controlled}/{} regions controlled, nominal \
             desync {nominal_desync:.3} ns / sync {nominal_sync:.3} ns",
            spec.regions.len(),
        );
        designs.push(Design {
            label,
            cells,
            regions: spec.regions.len(),
            controlled,
            nominal_desync_ns: nominal_desync,
            nominal_sync_ns: nominal_sync,
            taps,
            curve,
            hist_lo_ns: lo,
            hist_hi_ns: hi,
            hist_desync,
            hist_sync,
        });
    }

    // The paper's variability-tolerance claim (Fig 5.4/5.5): as sigma
    // grows, the desynchronized mean must degrade more slowly than the
    // synchronous population worst case, on every design.
    for d in &designs {
        let last = d.curve.last().expect("sigma grid non-empty");
        let desync_norm = last.desync_mean_ns / d.nominal_desync_ns;
        let sync_norm = last.sync_worst_ns / d.nominal_sync_ns;
        if desync_norm >= sync_norm {
            eprintln!(
                "{}: no variability crossover at sigma {} — desync mean degraded {:.4}x, \
                 sync worst case {:.4}x",
                d.label, last.sigma, desync_norm, sync_norm
            );
            std::process::exit(1);
        }
    }

    let speedup = serial_total_ns as f64 / parallel_total_ns.max(1) as f64;
    eprintln!(
        "monte carlo: serial {:.1} ms, parallel({workers}) {:.1} ms, speedup {speedup:.2}x \
         on {host_cores} cores",
        serial_total_ns as f64 / 1e6,
        parallel_total_ns as f64 / 1e6,
    );
    if host_cores >= 4 && workers >= 4 && speedup < 3.0 {
        eprintln!("parallel Monte Carlo speedup {speedup:.2}x < 3x on a {host_cores}-core host");
        std::process::exit(1);
    }

    let sigma_items: Vec<String> = SIGMA_PCT
        .iter()
        .map(|p| format!("{:.2}", *p as f64 / 100.0))
        .collect();
    let mut out = String::from("{\n  \"name\": \"variability\",\n");
    out.push_str(&format!("  \"chips\": {CHIPS},\n"));
    out.push_str(&format!("  \"workers\": {workers},\n"));
    out.push_str(&format!("  \"host_cores\": {host_cores},\n"));
    out.push_str(&format!("  \"sigma_grid\": [{}],\n", sigma_items.join(", ")));
    out.push_str(&format!("  \"serial_ns\": {serial_total_ns},\n"));
    out.push_str(&format!("  \"parallel_ns\": {parallel_total_ns},\n"));
    out.push_str(&format!("  \"speedup\": {speedup:.3},\n"));
    out.push_str("  \"byte_identical\": true,\n");
    out.push_str("  \"designs\": [\n");
    for (i, d) in designs.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"label\": \"{}\", \"cells\": {}, \"regions\": {}, \
             \"controlled_regions\": {},\n",
            d.label, d.cells, d.regions, d.controlled
        ));
        out.push_str(&format!(
            "     \"nominal_desync_ns\": {:.6}, \"nominal_sync_ns\": {:.6},\n",
            d.nominal_desync_ns, d.nominal_sync_ns
        ));
        out.push_str("     \"taps\": [\n");
        for (j, (k, factor, cycle)) in d.taps.iter().enumerate() {
            out.push_str(&format!(
                "       {{\"tap\": {k}, \"factor\": {factor:.2}, \"cycle_ns\": {cycle:.6}}}{}\n",
                if j + 1 == d.taps.len() { "" } else { "," }
            ));
        }
        out.push_str("     ],\n     \"curve\": [\n");
        for (j, p) in d.curve.iter().enumerate() {
            out.push_str(&format!(
                "       {{\"sigma\": {:.2}, \"desync_mean_ns\": {:.6}, \
                 \"desync_min_ns\": {:.6}, \"desync_max_ns\": {:.6}, \
                 \"sync_mean_ns\": {:.6}, \"sync_worst_ns\": {:.6}, \
                 \"desync_mean_norm\": {:.6}, \"sync_worst_norm\": {:.6}, \
                 \"speed_ratio\": {:.6}, \"fraction_faster\": {:.4}}}{}\n",
                p.sigma,
                p.desync_mean_ns,
                p.desync_min_ns,
                p.desync_max_ns,
                p.sync_mean_ns,
                p.sync_worst_ns,
                p.desync_mean_ns / d.nominal_desync_ns,
                p.sync_worst_ns / d.nominal_sync_ns,
                p.sync_worst_ns / p.desync_mean_ns,
                p.fraction_faster,
                if j + 1 == d.curve.len() { "" } else { "," }
            ));
        }
        out.push_str(&format!(
            "     ],\n     \"histogram\": {{\"sigma\": {:.2}, \"lo_ns\": {:.6}, \
             \"hi_ns\": {:.6}, \"desync\": {}, \"sync\": {}}}}}{}\n",
            IDENTITY_SIGMA_PCT as f64 / 100.0,
            d.hist_lo_ns,
            d.hist_hi_ns,
            json_usize_array(&d.hist_desync),
            json_usize_array(&d.hist_sync),
            if i + 1 == designs.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");

    let dir = out_dir();
    std::fs::create_dir_all(&dir).expect("bench dir");
    let path = dir.join("BENCH_variability.json");
    std::fs::write(&path, out).expect("bench json written");
    eprintln!("wrote {} (speedup {speedup:.2}x at {workers} workers)", path.display());
}
