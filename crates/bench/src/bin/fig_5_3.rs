//! Fig. 5.3: effective operational period vs delay-element selection at
//! both corners, with too-short selections marked.

use drd_flow::experiment::{timing_sweep, CaseStudy, TimingSweep};
use drd_flow::report::render_timing_figure;

fn main() {
    let case = CaseStudy::dlx(&drd_bench::sweep_dlx_params()).unwrap();
    let sweep = timing_sweep(&case).unwrap();
    print!("{}", render_timing_figure(&sweep));
    println!();
    let best_fail = TimingSweep::first_working_selection(&sweep.best);
    let worst_fail = TimingSweep::first_working_selection(&sweep.worst);
    println!(
        "first working selection: best case {:?}, worst case {:?}",
        best_fail, worst_fail
    );
    println!(
        "paper's key observation: the delay elements become too short at the \
         SAME selection in both corners — they track the logic across PVT."
    );
    assert_eq!(
        best_fail, worst_fail,
        "failure point must coincide at both corners"
    );
}
