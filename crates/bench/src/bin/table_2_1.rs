//! Table 2.1: truth table of a C-Muller element, verified by live
//! simulation of `vlib90` C-element trees from 2 to 10 inputs.

use drd_core::celement::join;
use drd_liberty::{vlib90, Lv};
use drd_netlist::{Conn, Design, Module, NetId, PortDir};
use drd_sim::{SimOptions, Simulator};

fn main() {
    let lib = vlib90::high_speed();
    println!("Table 2.1 — truth table of a C-Muller element");
    println!("{:<12} {:>8}", "inputs", "output");
    println!("{:<12} {:>8}", "all 0s", "0");
    println!("{:<12} {:>8}", "all 1s", "1");
    println!("{:<12} {:>8}", "other", "unchanged");
    println!();
    println!("verified on C-element trees (§3.1.5 builds 2..10-input elements):");
    for n in 2..=10usize {
        let mut m = Module::new("t");
        for i in 0..n {
            m.add_port(format!("i{i}"), PortDir::Input).unwrap();
        }
        m.add_port("z", PortDir::Output).unwrap();
        let inputs: Vec<NetId> = (0..n)
            .map(|i| m.find_net(&format!("i{i}")).unwrap())
            .collect();
        let (out, rep) = join(&mut m, &inputs, "j").unwrap();
        let z = m.find_net("z").unwrap();
        m.add_cell("ob", "BUFX1", &[("A", Conn::Net(out)), ("Z", Conn::Net(z))])
            .unwrap();
        let mut d = Design::new();
        d.insert(m);
        let mut sim = Simulator::new(&d, &lib, SimOptions::default()).unwrap();
        let set_all = |sim: &mut Simulator, v: Lv| {
            for i in 0..n {
                sim.poke(&format!("i{i}"), v).unwrap();
            }
            sim.run_for(3.0);
        };
        set_all(&mut sim, Lv::Zero);
        let at0 = sim.peek("z").unwrap();
        set_all(&mut sim, Lv::One);
        let at1 = sim.peek("z").unwrap();
        // Mixed: lower one input — output must hold.
        sim.poke("i0", Lv::Zero).unwrap();
        sim.run_for(3.0);
        let mixed = sim.peek("z").unwrap();
        assert_eq!((at0, at1, mixed), (Lv::Zero, Lv::One, Lv::One));
        println!(
            "  {n:>2} inputs: {} C2 cells — all-0→0, all-1→1, mixed→held  ✓",
            rep.celements
        );
    }
}
