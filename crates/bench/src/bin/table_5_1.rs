//! Table 5.1: area results for the synchronous and desynchronized DLX.

use drd_flow::experiment::{area_comparison_traced, CaseStudy};
use drd_flow::report::{render_area_table, render_pass_timings};

fn main() {
    let case = CaseStudy::dlx(&drd_designs::dlx::DlxParams::full()).unwrap();
    let (cmp, trace) = area_comparison_traced(&case).unwrap();
    print!("{}", render_area_table(&cmp));
    println!();
    println!("desynchronization pipeline (instrumented):");
    print!("{}", render_pass_timings(&trace));
    println!();
    println!(
        "paper: +13.44% core size, +17.66% sequential, +2.05% combinational"
    );
    println!(
        "here : {:+.2}% core size, {:+.2}% sequential, {:+.2}% combinational",
        cmp.core_overhead(),
        cmp.sequential_overhead(),
        cmp.combinational_overhead()
    );
}
