//! Serve-mode throughput campaign: a fuzzed corpus of vetted netlists
//! driven through an in-process [`drd_serve::Server`] by 1, 8 and 64
//! concurrent clients, cold cache (every job runs the full flow) and
//! warm cache (every job replays a prior result). Reports jobs/sec and
//! p50/p99 response latency per configuration.
//!
//! Emits `BENCH_serve.json` (directory overridable via `DRD_BENCH_DIR`,
//! default `results/` at the workspace root). Corpus size defaults to
//! 96 jobs, overridable via `DRD_SERVE_JOBS`.
//!
//! Two self-gates make the campaign a verification artifact, consumed
//! by `scripts/verify.sh`:
//!
//! * `failed_jobs` — every response of every run must be `status:"ok"`
//!   with the expected cache disposition; anything else is a wedged or
//!   failed job and the bench exits non-zero.
//! * `identity_mismatches` — every warm-cache artifact (report, SDC,
//!   Verilog, trace) must be byte-identical to its cold-path original;
//!   a divergence means the cache broke the determinism contract.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use drd_check::netgen::{NetGenParams, NetRecipe};
use drd_check::Rng;
use drd_core::{DesyncOptions, Desynchronizer};
use drd_liberty::vlib90;
use drd_serve::{json, Server};

fn out_dir() -> PathBuf {
    std::env::var("DRD_BENCH_DIR").map_or_else(
        |_| PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results"),
        PathBuf::from,
    )
}

/// Seeded, in-process-vetted corpus: only netlists whose flow succeeds
/// are kept, so a non-ok response is always a server bug, never a
/// hostile input.
fn corpus(jobs: usize) -> Vec<String> {
    let lib = vlib90::high_speed();
    let tool = Desynchronizer::new(&lib).expect("tool builds");
    let mut rng = Rng::new(0xBE7C_5E12_7E00);
    let params = NetGenParams::default();
    let mut kept = Vec::new();
    while kept.len() < jobs {
        let recipe = NetRecipe::sample(&mut rng, &params);
        let Ok(module) = recipe.build() else { continue };
        if tool.run(&module, &DesyncOptions::default()).is_ok() {
            kept.push(recipe.verilog());
        }
    }
    kept
}

/// The artifact triple a response carries; compared byte-for-byte
/// between cold and warm passes.
type Artifacts = (String, String, String, String);

struct RunStats {
    clients: usize,
    cache: &'static str,
    jobs_per_sec: f64,
    p50_us: f64,
    p99_us: f64,
}

fn percentile_us(sorted: &[u128], pct: usize) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = (sorted.len() * pct / 100).min(sorted.len() - 1);
    sorted[idx] as f64 / 1_000.0
}

/// Drives every request through `server` with `clients` worker threads
/// pulling from a shared queue; returns latency stats and the artifact
/// triple per job index.
fn drive(
    server: &Server<'_>,
    requests: &[String],
    clients: usize,
    want_cached: bool,
    cache: &'static str,
    failed: &mut usize,
) -> (RunStats, Vec<Artifacts>) {
    let next = AtomicUsize::new(0);
    let latencies: Mutex<Vec<u128>> = Mutex::new(Vec::with_capacity(requests.len()));
    let results: Mutex<Vec<(usize, Artifacts, bool)>> =
        Mutex::new(Vec::with_capacity(requests.len()));
    let start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..clients {
            scope.spawn(|| {
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= requests.len() {
                        return;
                    }
                    let t0 = Instant::now();
                    let line = server.handle_line(&requests[i]);
                    let dt = t0.elapsed().as_nanos();
                    let v = json::parse(&line).expect("response parses");
                    let str_of = |k: &str| {
                        v.get(k)
                            .and_then(json::Value::as_str)
                            .unwrap_or_default()
                            .to_owned()
                    };
                    let ok = v.get("status").and_then(json::Value::as_str) == Some("ok")
                        && v.get("cached").and_then(json::Value::as_bool) == Some(want_cached);
                    let art =
                        (str_of("report"), str_of("sdc"), str_of("verilog"), str_of("trace"));
                    latencies.lock().unwrap().push(dt);
                    results.lock().unwrap().push((i, art, ok));
                }
            });
        }
    });
    let wall = start.elapsed().as_secs_f64();

    let mut lat = latencies.into_inner().unwrap();
    lat.sort_unstable();
    let mut res = results.into_inner().unwrap();
    res.sort_by_key(|&(i, ..)| i);
    *failed += res.iter().filter(|&&(.., ok)| !ok).count();
    let artifacts = res.into_iter().map(|(_, a, _)| a).collect();
    let stats = RunStats {
        clients,
        cache,
        jobs_per_sec: requests.len() as f64 / wall.max(1e-9),
        p50_us: percentile_us(&lat, 50),
        p99_us: percentile_us(&lat, 99),
    };
    (stats, artifacts)
}

fn main() {
    let lib = vlib90::high_speed();
    let jobs: usize = std::env::var("DRD_SERVE_JOBS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(96);
    let tokens = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let corpus = corpus(jobs);
    let requests: Vec<String> = corpus
        .iter()
        .enumerate()
        .map(|(i, v)| {
            format!(
                "{{\"id\":\"j{i}\",\"kind\":\"desync\",\"verilog\":{},\"options\":{{}}}}",
                json::escape(v)
            )
        })
        .collect();

    let mut failed = 0usize;
    let mut identity_mismatches = 0usize;
    let mut runs: Vec<RunStats> = Vec::new();
    let start = Instant::now();
    for &clients in &[1usize, 8, 64] {
        // Fresh server per level: the cold pass really runs the flow,
        // the warm pass replays the exact artifacts just cached.
        let server = Server::new(&lib, tokens).expect("server builds");
        let (cold, cold_art) =
            drive(&server, &requests, clients, false, "cold", &mut failed);
        let (warm, warm_art) = drive(&server, &requests, clients, true, "warm", &mut failed);
        identity_mismatches += cold_art
            .iter()
            .zip(&warm_art)
            .filter(|(c, w)| c != w)
            .count();
        eprintln!(
            "{clients:>2} client(s): cold {:8.1} jobs/s (p50 {:9.1} us, p99 {:9.1} us), \
             warm {:8.1} jobs/s (p50 {:9.1} us, p99 {:9.1} us)",
            cold.jobs_per_sec, cold.p50_us, cold.p99_us, warm.jobs_per_sec, warm.p50_us,
            warm.p99_us
        );
        runs.push(cold);
        runs.push(warm);
    }
    let wall_ns = start.elapsed().as_nanos();

    let rows: Vec<String> = runs
        .iter()
        .map(|r| {
            format!(
                "    {{\"clients\": {}, \"cache\": \"{}\", \"jobs_per_sec\": {:.3}, \
                 \"p50_us\": {:.3}, \"p99_us\": {:.3}}}",
                r.clients, r.cache, r.jobs_per_sec, r.p50_us, r.p99_us
            )
        })
        .collect();
    let out = format!(
        "{{\n  \"name\": \"serve\",\n  \"jobs\": {jobs},\n  \"tokens\": {tokens},\n  \
         \"failed_jobs\": {failed},\n  \"identity_mismatches\": {identity_mismatches},\n  \
         \"campaign_wall_ns\": {wall_ns},\n  \"runs\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    let dir = out_dir();
    std::fs::create_dir_all(&dir).expect("bench dir");
    let path = dir.join("BENCH_serve.json");
    std::fs::write(&path, out).expect("bench json written");
    eprintln!("wrote {}", path.display());

    if failed > 0 || identity_mismatches > 0 {
        eprintln!(
            "error: {failed} failed/wedged job(s), {identity_mismatches} cache identity \
             mismatch(es)"
        );
        std::process::exit(1);
    }
}
