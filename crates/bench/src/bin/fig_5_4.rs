//! Fig. 5.4: real operation delay distribution — desynchronized chips run
//! at their own silicon speed; synchronous chips at the worst corner.

use drd_flow::experiment::{variability_study, CaseStudy};
use drd_flow::report::render_variability_figure;

fn main() {
    let case = CaseStudy::dlx(&drd_designs::dlx::DlxParams::full()).unwrap();
    let study = variability_study(&case, 2000, 0.15, 0xF1605).unwrap();
    print!("{}", render_variability_figure(&study));
    println!();
    println!(
        "paper: DDLX faster than the synchronous worst case in ~90% of chips \
         (1.14/1.41/2.44/2.98 ns markers); measured here: {:.0}% — same shape, \
         larger control overhead (see EXPERIMENTS.md).",
        study.fraction_faster * 100.0
    );
}
