//! Fig. 5.5: total power consumption vs delay selection at both corners.

use drd_flow::experiment::{timing_sweep, CaseStudy};
use drd_flow::report::render_power_figure;

fn main() {
    let case = CaseStudy::dlx(&drd_bench::sweep_dlx_params()).unwrap();
    let sweep = timing_sweep(&case).unwrap();
    print!("{}", render_power_figure(&sweep));
    println!();
    println!(
        "shape check: power rises as the selection number lowers (higher \
         effective frequency), as in the paper."
    );
}
