//! Table 5.2: area results for the synchronous and desynchronized
//! ARM-like scan design (Low-Leakage library, single group).

use drd_flow::experiment::{area_comparison, CaseStudy};
use drd_flow::report::render_area_table;

fn main() {
    let case = CaseStudy::armlike(&drd_designs::armlike::ArmParams::full()).unwrap();
    let cmp = area_comparison(&case).unwrap();
    print!("{}", render_area_table(&cmp));
    println!();
    println!("paper: +7.94% core size, +40.70% sequential, +0.21% combinational");
    println!(
        "here : {:+.2}% core size, {:+.2}% sequential, {:+.2}% combinational",
        cmp.core_overhead(),
        cmp.sequential_overhead(),
        cmp.combinational_overhead()
    );
}
