//! Liveness-guard campaign: fuzzed imbalanced open-chain designs — the
//! pulse-swallowing topology from DESIGN.md §3i — through the full
//! traced flow. Counts the hazards the guard found, how the repair
//! ladder resolved each one (deepen / request latch / degrade /
//! diagnosed error), and measures the guard pass's wall-time share of
//! the whole flow.
//!
//! Emits `BENCH_liveness.json` (directory overridable via
//! `DRD_BENCH_DIR`, default `results/` at the workspace root). Design
//! count defaults to 60, overridable via `DRD_LIVENESS_DESIGNS`.
//!
//! The JSON's `undiagnosed_deadlocks` field is the verification gate
//! consumed by `scripts/verify.sh`: every shipped design is re-checked
//! by both the structural liveness oracle and the handshake-timing
//! simulation, and anything above 0 means a design left the flow
//! wedged without a diagnosis — exactly the failure the guard forbids.

use std::path::PathBuf;
use std::time::Instant;

use drd_check::handshake::{handshake_spec, verify_handshake_timing};
use drd_check::liveness::verify_liveness;
use drd_check::netgen::{NetGenParams, NetRecipe};
use drd_check::Rng;
use drd_core::{DesyncError, DesyncOptions, Desynchronizer, LivenessAction};
use drd_liberty::vlib90;

fn out_dir() -> PathBuf {
    std::env::var("DRD_BENCH_DIR").map_or_else(
        |_| PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results"),
        PathBuf::from,
    )
}

fn main() {
    let lib = vlib90::high_speed();
    let tool = Desynchronizer::new(&lib).expect("tool builds");
    let designs: usize = std::env::var("DRD_LIVENESS_DESIGNS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(60);
    let base = NetGenParams {
        max_stages: 3,
        max_width: 2,
        ..NetGenParams::default()
    };
    let mut rng = Rng::new(0x11FE_BEEF_CAFE);

    let mut completed = 0usize;
    let mut hazardous_designs = 0usize;
    let mut deepened = 0usize;
    let mut latched = 0usize;
    let mut degraded = 0usize;
    let mut diagnosed_errors = 0usize;
    let mut rejected = 0usize;
    let mut undiagnosed = 0usize;
    let mut guard_ns = 0u128;
    let mut flow_ns = 0u128;

    let start = Instant::now();
    for i in 0..designs {
        let mut recipe = NetRecipe::sample(&mut rng, &base);
        // Chain depths span the hazard boundary, same spread as the
        // property suite: shallow chains exercise the quiet path, deep
        // ones force the ladder.
        recipe.imbalance(rng.range(6, 30));
        let Ok(module) = recipe.build() else {
            rejected += 1;
            continue;
        };
        match tool.run_traced(module, &DesyncOptions::default()) {
            Ok((result, trace)) => {
                completed += 1;
                flow_ns += trace.total_wall_ns;
                guard_ns += trace
                    .passes
                    .iter()
                    .filter(|p| p.name == "liveness")
                    .map(|p| p.wall_ns)
                    .sum::<u128>();
                if !result.report.liveness_repairs.is_empty() {
                    hazardous_designs += 1;
                }
                for repair in &result.report.liveness_repairs {
                    match repair.action {
                        LivenessAction::DeepenSuccessor { .. } => deepened += 1,
                        LivenessAction::RequestLatch => latched += 1,
                        LivenessAction::Degrade => degraded += 1,
                    }
                }
                // The gate: what shipped must be live — structurally
                // (repairs really in the netlist) and behaviourally
                // (the handshake network settles).
                let verdict = verify_liveness(&result.report, &result.design, &lib)
                    .and_then(|()| {
                        let spec = handshake_spec(&result.report, &lib)
                            .map_err(|e| e.to_string())?;
                        verify_handshake_timing(&spec, &lib).map(|_| ())
                    });
                if let Err(e) = verdict {
                    undiagnosed += 1;
                    eprintln!("UNDIAGNOSED DEADLOCK: design {i}: {e}");
                }
            }
            Err(DesyncError::Liveness { .. }) => diagnosed_errors += 1,
            Err(_) => rejected += 1,
        }
    }
    let wall_ns = start.elapsed().as_nanos();

    let guard_fraction = if flow_ns > 0 {
        guard_ns as f64 / flow_ns as f64
    } else {
        0.0
    };
    eprintln!(
        "{designs} imbalanced designs: {completed} completed ({hazardous_designs} needed the \
         guard: {deepened} deepen, {latched} latch, {degraded} degrade), {diagnosed_errors} \
         diagnosed, {rejected} rejected, {undiagnosed} undiagnosed deadlocks; guard \
         {guard_ns} ns of {flow_ns} ns flow ({:.2}%)",
        guard_fraction * 100.0
    );

    let out = format!(
        "{{\n  \"name\": \"liveness\",\n  \"designs\": {designs},\n  \"completed\": {completed},\n  \
         \"hazardous_designs\": {hazardous_designs},\n  \"repaired_deepen\": {deepened},\n  \
         \"repaired_latch\": {latched},\n  \"degraded\": {degraded},\n  \
         \"diagnosed_errors\": {diagnosed_errors},\n  \"rejected\": {rejected},\n  \
         \"undiagnosed_deadlocks\": {undiagnosed},\n  \"guard_wall_ns\": {guard_ns},\n  \
         \"flow_wall_ns\": {flow_ns},\n  \"guard_fraction\": {guard_fraction:.6},\n  \
         \"campaign_wall_ns\": {wall_ns}\n}}\n"
    );
    let dir = out_dir();
    std::fs::create_dir_all(&dir).expect("bench dir");
    let path = dir.join("BENCH_liveness.json");
    std::fs::write(&path, out).expect("bench json written");
    eprintln!("wrote {}", path.display());

    if undiagnosed > 0 {
        eprintln!("error: {undiagnosed} design(s) shipped wedged without a diagnosis");
        std::process::exit(1);
    }
}
