//! Mutation-score benchmark: the full `Mutation::ALL × seeds` campaign
//! through the oracle stack on the work-stealing runner, reporting kill
//! rate, per-kind results, structural coverage, and mutants/second for
//! both a single-thread and a parallel run.
//!
//! Emits `BENCH_mutation.json` (directory overridable via
//! `DRD_BENCH_DIR`, default `results/` at the workspace root). Seeds per
//! kind default to 25, overridable via `DRD_MUTATION_SEEDS`.
//!
//! The JSON's `kill_rate` is the verification gate consumed by
//! `scripts/verify.sh`: anything below 1.0 means some oracle failed to
//! notice a paper-meaningful fault.

use std::path::PathBuf;
use std::time::Instant;

use drd_check::cover::{Bucket, Coverage};
use drd_check::diff::DiffConfig;
use drd_check::mutate::{run_campaign, Mutation, MutationOutcome};
use drd_check::runner;
use drd_liberty::vlib90;
use drd_stg::protocols::Protocol;

fn out_dir() -> PathBuf {
    std::env::var("DRD_BENCH_DIR").map_or_else(
        |_| PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results"),
        PathBuf::from,
    )
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn main() {
    let lib = vlib90::high_speed();
    let config = DiffConfig::default();
    let seeds_per_kind: usize = std::env::var("DRD_MUTATION_SEEDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(25);
    let seeds: Vec<u64> = (0..seeds_per_kind as u64).collect();
    let workers = runner::worker_count();

    // Full campaign on the parallel runner.
    let start = Instant::now();
    let outcomes = run_campaign(&Mutation::ALL, &seeds, &lib, &config, workers);
    let parallel_ns = start.elapsed().as_nanos();

    // A smaller single-thread pass over the same grid prefix, for the
    // throughput comparison (re-running the full grid serially would
    // dominate the bench's wall time for no extra information).
    let serial_seeds: Vec<u64> = seeds[..seeds_per_kind.div_ceil(5).max(1)].to_vec();
    let start = Instant::now();
    let serial = run_campaign(&Mutation::ALL, &serial_seeds, &lib, &config, 1);
    let serial_ns = start.elapsed().as_nanos();

    // Structural coverage actually exercised by the campaign.
    let mut coverage = Coverage::new();
    for o in &outcomes {
        if let Some(recipe) = &o.recipe {
            coverage.record(recipe);
        }
        match o.mutation {
            Mutation::ProtocolFallDecoupled => {
                coverage.record_bucket(Bucket::Protocol(Protocol::FallDecoupled));
            }
            Mutation::ProtocolDropArc => {
                coverage.record_bucket(Bucket::Protocol(Protocol::SemiDecoupled));
            }
            _ => {}
        }
    }

    let mutants = outcomes.len();
    let killed = outcomes.iter().filter(|o| o.killed).count();
    let kill_rate = killed as f64 / mutants as f64;
    let par_tput = mutants as f64 / (parallel_ns as f64 / 1e9);
    let ser_tput = serial.len() as f64 / (serial_ns as f64 / 1e9);
    let speedup = par_tput / ser_tput;

    eprintln!(
        "{:<24} {:>7} {:>7} {:>10}",
        "mutation", "seeds", "killed", "attempts"
    );
    let mut per_kind = String::new();
    for (i, kind) in Mutation::ALL.iter().enumerate() {
        let of_kind: Vec<&MutationOutcome> =
            outcomes.iter().filter(|o| o.mutation == *kind).collect();
        let k = of_kind.iter().filter(|o| o.killed).count();
        let mean_attempts =
            of_kind.iter().map(|o| o.attempts).sum::<usize>() as f64 / of_kind.len() as f64;
        eprintln!(
            "{:<24} {:>7} {:>7} {:>10.2}",
            kind.name(),
            of_kind.len(),
            k,
            mean_attempts
        );
        per_kind.push_str(&format!(
            "    {{\"label\": \"{}\", \"attacks\": \"{}\", \"seeds\": {}, \"killed\": {}, \"mean_attempts\": {:.3}}}{}\n",
            escape(kind.name()),
            escape(kind.attacks()),
            of_kind.len(),
            k,
            mean_attempts,
            if i + 1 == Mutation::ALL.len() { "" } else { "," }
        ));
    }
    for o in outcomes.iter().filter(|o| !o.killed) {
        eprintln!(
            "SURVIVOR {} seed {}: {}",
            o.mutation.name(),
            o.seed,
            o.oracle
        );
    }
    eprintln!(
        "{mutants} mutants, {killed} killed (rate {kill_rate:.3}); \
         parallel {par_tput:.1}/s on {workers} worker(s), serial {ser_tput:.1}/s, speedup {speedup:.2}x; \
         {} coverage buckets",
        coverage.len()
    );

    let out = format!(
        "{{\n  \"name\": \"mutation\",\n  \"kinds\": {},\n  \"seeds_per_kind\": {},\n  \
         \"mutants\": {},\n  \"killed\": {},\n  \"kill_rate\": {:.6},\n  \"workers\": {},\n  \
         \"coverage_buckets\": {},\n  \
         \"parallel\": {{\"mutants\": {}, \"wall_ns\": {}, \"mutants_per_s\": {:.3}}},\n  \
         \"single_thread\": {{\"mutants\": {}, \"wall_ns\": {}, \"mutants_per_s\": {:.3}}},\n  \
         \"speedup_estimate\": {:.3},\n  \"results\": [\n{}  ]\n}}\n",
        Mutation::ALL.len(),
        seeds_per_kind,
        mutants,
        killed,
        kill_rate,
        workers,
        coverage.len(),
        mutants,
        parallel_ns,
        par_tput,
        serial.len(),
        serial_ns,
        ser_tput,
        speedup,
        per_kind
    );

    let dir = out_dir();
    std::fs::create_dir_all(&dir).expect("bench dir");
    let path = dir.join("BENCH_mutation.json");
    std::fs::write(&path, out).expect("bench json written");
    eprintln!("wrote {}", path.display());
}
