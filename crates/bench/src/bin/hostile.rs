//! Hostile-input crash campaign: seeded adversarial inputs (raw bytes,
//! token soup, truncated and spliced netlists) through the Verilog
//! reader and the budget-starved guarded flow on the work-stealing
//! runner.
//!
//! Emits `BENCH_hostile.json` (directory overridable via
//! `DRD_BENCH_DIR`, default `results/` at the workspace root). Input
//! count defaults to 10_000, overridable via `DRD_HOSTILE_INPUTS`.
//!
//! The JSON's `panics` field is the verification gate consumed by
//! `scripts/verify.sh`: anything above 0 means a crash escaped the
//! structured-error boundary.

use std::path::PathBuf;
use std::time::Instant;

use drd_check::hostile::run_hostile_campaign;
use drd_check::runner;

fn out_dir() -> PathBuf {
    std::env::var("DRD_BENCH_DIR").map_or_else(
        |_| PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results"),
        PathBuf::from,
    )
}

fn main() {
    let count: usize = std::env::var("DRD_HOSTILE_INPUTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10_000);
    let workers = runner::worker_count();

    let start = Instant::now();
    let report = run_hostile_campaign(count, 0x0DE5_7AC7, workers);
    let wall_ns = start.elapsed().as_nanos();

    eprintln!(
        "{} inputs on {} worker(s): {} rejected, {} flow errors, {} completed, {} panics \
         ({:.1} inputs/s)",
        report.total,
        workers,
        report.rejected,
        report.flow_errors,
        report.completed,
        report.panics,
        report.total as f64 / (wall_ns as f64 / 1e9),
    );
    if let Some((kind, seed)) = report.first_panic {
        eprintln!("FIRST PANIC: kind {kind}, seed {seed}");
    }

    let out = report.to_json(workers, wall_ns);
    let dir = out_dir();
    std::fs::create_dir_all(&dir).expect("bench dir");
    let path = dir.join("BENCH_hostile.json");
    std::fs::write(&path, out).expect("bench json written");
    eprintln!("wrote {}", path.display());
}
