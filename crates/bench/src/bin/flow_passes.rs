//! Per-pass timing of the desynchronization pipeline on the small DLX.
//!
//! Runs the instrumented [`drd_core::Pipeline`] several times and
//! aggregates each pass's wall time from the [`drd_core::FlowTrace`]
//! records into `BENCH_flow_passes.json` (directory overridable via
//! `DRD_BENCH_DIR`, default `results/` at the workspace root), the same
//! shape as `BENCH_kernels.json`.

use std::path::PathBuf;

use drd_core::{DesyncOptions, Desynchronizer, FlowTrace};
use drd_designs::dlx::DlxParams;
use drd_liberty::vlib90;

const ITERS: usize = 5;

fn out_dir() -> PathBuf {
    std::env::var("DRD_BENCH_DIR").map_or_else(
        |_| PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results"),
        PathBuf::from,
    )
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn main() {
    let lib = vlib90::high_speed();
    let dlx = drd_designs::dlx::build(&DlxParams::small()).expect("dlx builds");
    let tool = Desynchronizer::new(&lib).expect("library prepares");
    let opts = DesyncOptions::default();

    let run = || {
        tool.run_traced(dlx.clone(), &opts)
            .expect("desynchronization succeeds")
            .1
    };
    let _warmup: FlowTrace = run();
    let traces: Vec<FlowTrace> = (0..ITERS).map(|_| run()).collect();

    // Aggregate per pass, preserving pipeline order from the first trace.
    let mut out = String::from("{\n  \"name\": \"flow_passes\",\n  \"results\": [\n");
    let passes = traces[0].passes.len();
    for (i, first) in traces[0].passes.iter().enumerate() {
        let times: Vec<f64> = traces.iter().map(|t| t.passes[i].wall_ns as f64).collect();
        let min = times.iter().copied().fold(f64::INFINITY, f64::min);
        let max = times.iter().copied().fold(0.0f64, f64::max);
        let mean = times.iter().sum::<f64>() / times.len() as f64;
        eprintln!(
            "pass {:<16} {:>12.1} µs/iter (min {:.1}, max {:.1}, {} iters)",
            first.name,
            mean / 1e3,
            min / 1e3,
            max / 1e3,
            ITERS
        );
        out.push_str(&format!(
            "    {{\"label\": \"{}\", \"iters\": {}, \"min_ns\": {:.0}, \"mean_ns\": {:.0}, \"max_ns\": {:.0}}}{}\n",
            escape(first.name),
            ITERS,
            min,
            mean,
            max,
            if i + 1 == passes { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");

    let dir = out_dir();
    std::fs::create_dir_all(&dir).expect("bench dir");
    let path = dir.join("BENCH_flow_passes.json");
    std::fs::write(&path, out).expect("bench json written");
    eprintln!("wrote {}", path.display());
}
