//! Scaling curve of the parallel region-sliced flow.
//!
//! Generates stepped synthetic pipelines via `drd_check::netgen` (one
//! region per stage, STA-dominated clouds), runs the full flow serially
//! (`--jobs 1`) and with the host worker count, checks the artifacts are
//! byte-identical, and writes the speedup curve to `BENCH_scale.json`
//! (directory overridable via `DRD_BENCH_DIR`, default `results/` at the
//! workspace root).
//!
//! Also guards the `Regions::region_of` fix: per-lookup cost must stay
//! roughly flat as the design grows (the old linear scan scaled with the
//! region sizes, making the DDG/SDC loops quadratic). On violation the
//! binary exits non-zero, so `scripts/verify.sh` can gate on it.

use std::path::PathBuf;
use std::time::Instant;

use drd_check::netgen::{FfKind, FfRecipe, GateOp, NetRecipe, StageRecipe};
use drd_check::Rng;
use drd_core::region::{clean_for_grouping, group, GroupingOptions};
use drd_core::{DesyncOptions, Desynchronizer};
use drd_liberty::vlib90;

/// (stages, cloud gates per stage, register lanes per stage) steps.
const STEPS: [(usize, usize, usize); 4] = [(4, 60, 4), (4, 120, 6), (6, 200, 8), (8, 320, 8)];

fn out_dir() -> PathBuf {
    std::env::var("DRD_BENCH_DIR").map_or_else(
        |_| PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results"),
        PathBuf::from,
    )
}

/// Deterministic stepped recipe: `stages` stages of `cloud` gates and
/// `width` plain flip-flops (plain lanes keep every region substitutable,
/// so no degradations shrink the parallel work).
fn recipe(rng: &mut Rng, stages: usize, cloud: usize, width: usize) -> NetRecipe {
    let stages = (0..stages)
        .map(|_| StageRecipe {
            cloud: (0..cloud)
                .map(|_| GateOp {
                    kind: rng.next_u64() as u8,
                    a: rng.range(0, 4096),
                    b: rng.range(0, 4096),
                })
                .collect(),
            ffs: (0..width)
                .map(|_| FfRecipe {
                    kind: FfKind::Plain,
                    d: rng.range(0, 4096),
                    aux0: rng.range(0, 4096),
                    aux1: rng.range(0, 4096),
                })
                .collect(),
        })
        .collect();
    NetRecipe {
        inputs: 4,
        input_bits: rng.next_u64(),
        stages,
    }
}

struct Point {
    label: String,
    cells: usize,
    regions: usize,
    serial_ns: u128,
    parallel_ns: u128,
}

fn main() {
    let lib = vlib90::high_speed();
    let tool = Desynchronizer::new(&lib).expect("library prepares");
    let workers = drd_check::runner::worker_count();
    let mut rng = Rng::new(0x5CA1_E0DD);

    let mut points: Vec<Point> = Vec::new();
    let mut lookup_ns: Vec<f64> = Vec::new();
    for (stages, cloud, width) in STEPS {
        let module = recipe(&mut rng, stages, cloud, width)
            .build()
            .expect("recipe builds");
        let cells = module.cells().count();

        let run = |jobs: usize| {
            let opts = DesyncOptions {
                jobs: Some(jobs),
                ..DesyncOptions::default()
            };
            let start = Instant::now();
            let result = tool.run(&module, &opts).expect("flow runs");
            let wall = start.elapsed().as_nanos();
            let verilog = drd_netlist::verilog::write_design(&result.design);
            (wall, result.sdc.clone(), verilog, result.report.regions.len())
        };
        let (serial_ns, serial_sdc, serial_v, regions) = run(1);
        let (parallel_ns, parallel_sdc, parallel_v, _) = run(workers);
        assert_eq!(serial_sdc, parallel_sdc, "SDC differs across worker counts");
        assert_eq!(serial_v, parallel_v, "Verilog differs across worker counts");

        // Per-lookup cost of region lookup at this size (the S2 guard).
        let mut probe = module.clone();
        clean_for_grouping(&mut probe, &lib);
        let grouped = group(&probe, &lib, &GroupingOptions::recommended()).expect("groups");
        let names: Vec<&str> = grouped
            .regions
            .iter()
            .flat_map(|r| r.cells.iter().map(String::as_str))
            .collect();
        const LOOKUPS: usize = 20_000;
        let start = Instant::now();
        let mut hits = 0usize;
        for i in 0..LOOKUPS {
            hits += usize::from(grouped.region_of(names[i % names.len()]).is_some());
        }
        assert_eq!(hits, LOOKUPS);
        lookup_ns.push(start.elapsed().as_nanos() as f64 / LOOKUPS as f64);

        let label = format!("{stages}x{cloud}+{width}");
        eprintln!(
            "{label:>10}: {cells} cells, {regions} regions, serial {:.1} ms, \
             parallel({workers}) {:.1} ms, lookup {:.0} ns",
            serial_ns as f64 / 1e6,
            parallel_ns as f64 / 1e6,
            lookup_ns.last().unwrap(),
        );
        points.push(Point {
            label,
            cells,
            regions,
            serial_ns,
            parallel_ns,
        });
    }

    // Non-quadratic guard: per-lookup time must not scale with design
    // size. The largest step is ~8x the smallest; the old linear scan
    // scaled proportionally, the prebuilt map stays flat. Bound is
    // generous for timer noise.
    let (first, last) = (lookup_ns[0].max(1.0), lookup_ns[lookup_ns.len() - 1]);
    let lookup_ratio = last / first;
    if lookup_ratio > 8.0 {
        eprintln!(
            "region_of per-lookup cost grew {lookup_ratio:.1}x from the smallest to the \
             largest design — lookup is no longer O(1)"
        );
        std::process::exit(1);
    }

    let speedup = points
        .iter()
        .map(|p| p.serial_ns as f64 / p.parallel_ns.max(1) as f64)
        .fold(0.0f64, f64::max);

    let mut out = String::from("{\n  \"name\": \"scale\",\n");
    out.push_str(&format!("  \"workers\": {workers},\n"));
    out.push_str(&format!("  \"speedup\": {speedup:.3},\n"));
    out.push_str(&format!("  \"lookup_ratio\": {lookup_ratio:.3},\n"));
    out.push_str("  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"label\": \"{}\", \"cells\": {}, \"regions\": {}, \"serial_ns\": {}, \
             \"parallel_ns\": {}, \"speedup\": {:.3}}}{}\n",
            p.label,
            p.cells,
            p.regions,
            p.serial_ns,
            p.parallel_ns,
            p.serial_ns as f64 / p.parallel_ns.max(1) as f64,
            if i + 1 == points.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");

    let dir = out_dir();
    std::fs::create_dir_all(&dir).expect("bench dir");
    let path = dir.join("BENCH_scale.json");
    std::fs::write(&path, out).expect("bench json written");
    eprintln!("wrote {} (speedup {speedup:.2}x at {workers} workers)", path.display());
}
