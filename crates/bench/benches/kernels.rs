//! Micro-benchmarks of the tool's own kernels: Verilog parsing and
//! writing, region grouping, STA propagation, STG reachability, event
//! simulation throughput and full desynchronization.
//!
//! Runs on the in-tree `drd_check::bench` harness (`cargo bench -p
//! drd-bench`) and writes `BENCH_kernels.json` next to the workspace so
//! the perf trajectory is recorded run over run.

use drd_check::bench::Bench;
use drd_core::region::{group, GroupingOptions};
use drd_core::{DesyncOptions, Desynchronizer};
use drd_designs::dlx::DlxParams;
use drd_liberty::{vlib90, Corner, Lv};
use drd_netlist::Design;
use drd_sim::{SimOptions, Simulator};
use drd_sta::{GraphOptions, TimingGraph};
use drd_stg::protocols::Protocol;

fn main() {
    let lib = vlib90::high_speed();
    let dlx = drd_designs::dlx::build(&DlxParams::small()).expect("dlx builds");
    let dlx_full = drd_designs::dlx::build(&DlxParams::full()).expect("dlx builds");

    let mut b = Bench::new("kernels").iterations(10);

    // Verilog writer + parser round trip on the full DLX.
    let mut design = Design::new();
    design.insert(dlx_full.clone());
    let text = drd_netlist::verilog::write_design(&design);
    b.run("verilog_write_dlx_full", || {
        drd_netlist::verilog::write_design(std::hint::black_box(&design))
    });
    b.run("verilog_parse_dlx_full", || {
        drd_netlist::verilog::parse_design(std::hint::black_box(&text)).unwrap()
    });

    // Region grouping on the full DLX.
    b.run("grouping_dlx_full", || {
        group(&dlx_full, &lib, &GroupingOptions::recommended()).unwrap()
    });

    // STA arrival propagation on the full DLX.
    let graph = TimingGraph::build(&dlx_full, &lib, &GraphOptions::default()).unwrap();
    b.run("sta_arrivals_dlx_full", || {
        graph.arrivals(Corner::typical()).unwrap()
    });

    // STG reachability + executable flow-equivalence check.
    b.run("stg_reachability_semi_decoupled", || {
        Protocol::SemiDecoupled
            .stg()
            .reachability(1 << 14)
            .unwrap()
            .state_count()
    });
    b.run("stg_flow_equivalence_semi_decoupled", || {
        drd_stg::flow_equiv::check_flow_equivalence(&Protocol::SemiDecoupled.stg(), 4, 1 << 22)
            .unwrap()
    });

    // Event-driven simulation throughput: 20 clocked cycles of the small DLX.
    b.run("sim_dlx_small_20_cycles", || {
        let mut d = Design::new();
        d.insert(dlx.clone());
        let mut sim = Simulator::new(&d, &lib, SimOptions::default()).unwrap();
        sim.poke("irq", Lv::Zero).unwrap();
        sim.schedule_clock("clk", 4.0, 2.0, 20).unwrap();
        sim.run_for(90.0);
        sim.captures().capture_count("pc_r0")
    });

    // Full desynchronization of the small DLX.
    let tool = Desynchronizer::new(&lib).unwrap();
    b.run("desynchronize_dlx_small", || {
        tool.run(&dlx, &DesyncOptions::default()).unwrap()
    });

    b.finish().expect("write BENCH_kernels.json");
}
