//! Criterion benchmarks of the tool's own kernels: Verilog parsing and
//! writing, region grouping, STA propagation, STG reachability, event
//! simulation throughput and full desynchronization.

use criterion::{criterion_group, criterion_main, Criterion};

use drd_core::region::{group, GroupingOptions};
use drd_core::{DesyncOptions, Desynchronizer};
use drd_designs::dlx::DlxParams;
use drd_liberty::{vlib90, Corner, Lv};
use drd_netlist::Design;
use drd_sim::{SimOptions, Simulator};
use drd_sta::{GraphOptions, TimingGraph};
use drd_stg::protocols::Protocol;

fn bench_kernels(c: &mut Criterion) {
    let lib = vlib90::high_speed();
    let dlx = drd_designs::dlx::build(&DlxParams::small()).expect("dlx builds");
    let dlx_full = drd_designs::dlx::build(&DlxParams::full()).expect("dlx builds");

    let mut g = c.benchmark_group("kernels");
    g.sample_size(10);

    // Verilog writer + parser round trip on the full DLX.
    let mut design = Design::new();
    design.insert(dlx_full.clone());
    let text = drd_netlist::verilog::write_design(&design);
    g.bench_function("verilog_write_dlx_full", |b| {
        b.iter(|| drd_netlist::verilog::write_design(std::hint::black_box(&design)))
    });
    g.bench_function("verilog_parse_dlx_full", |b| {
        b.iter(|| drd_netlist::verilog::parse_design(std::hint::black_box(&text)).unwrap())
    });

    // Region grouping on the full DLX.
    g.bench_function("grouping_dlx_full", |b| {
        b.iter(|| group(&dlx_full, &lib, &GroupingOptions::recommended()).unwrap())
    });

    // STA arrival propagation on the full DLX.
    let graph = TimingGraph::build(&dlx_full, &lib, &GraphOptions::default()).unwrap();
    g.bench_function("sta_arrivals_dlx_full", |b| {
        b.iter(|| graph.arrivals(Corner::typical()).unwrap())
    });

    // STG reachability + executable flow-equivalence check.
    g.bench_function("stg_reachability_semi_decoupled", |b| {
        b.iter(|| {
            Protocol::SemiDecoupled
                .stg()
                .reachability(1 << 14)
                .unwrap()
                .state_count()
        })
    });
    g.bench_function("stg_flow_equivalence_semi_decoupled", |b| {
        b.iter(|| {
            drd_stg::flow_equiv::check_flow_equivalence(
                &Protocol::SemiDecoupled.stg(),
                4,
                1 << 22,
            )
            .unwrap()
        })
    });

    // Event-driven simulation throughput: 20 clocked cycles of the small DLX.
    g.bench_function("sim_dlx_small_20_cycles", |b| {
        b.iter(|| {
            let mut d = Design::new();
            d.insert(dlx.clone());
            let mut sim = Simulator::new(&d, &lib, SimOptions::default()).unwrap();
            sim.poke("irq", Lv::Zero).unwrap();
            sim.schedule_clock("clk", 4.0, 2.0, 20).unwrap();
            sim.run_for(90.0);
            sim.captures().capture_count("pc_r0")
        })
    });

    // Full desynchronization of the small DLX.
    let tool = Desynchronizer::new(&lib).unwrap();
    g.bench_function("desynchronize_dlx_small", |b| {
        b.iter(|| tool.run(&dlx, &DesyncOptions::default()).unwrap())
    });

    g.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
