//! Micro-benchmarks of the tool's own kernels: Verilog parsing and
//! writing, region grouping, STA propagation, STG reachability, event
//! simulation throughput and full desynchronization.
//!
//! Runs on the in-tree `drd_check::bench` harness (`cargo bench -p
//! drd-bench`) and writes `BENCH_kernels.json` next to the workspace so
//! the perf trajectory is recorded run over run.

use drd_check::bench::Bench;
use drd_core::region::{group, GroupingOptions};
use drd_core::{DesyncOptions, Desynchronizer};
use drd_designs::dlx::DlxParams;
use drd_liberty::{vlib90, Corner, Lv};
use drd_netlist::Design;
use drd_sim::{SimOptions, Simulator};
use drd_sta::{GraphOptions, TimingGraph};
use drd_stg::protocols::Protocol;

fn main() {
    // `cargo bench` runs with the package as cwd; default the output to
    // the workspace `results/` dir the docs point at.
    if std::env::var_os("DRD_BENCH_DIR").is_none() {
        std::env::set_var(
            "DRD_BENCH_DIR",
            concat!(env!("CARGO_MANIFEST_DIR"), "/../../results"),
        );
    }
    let lib = vlib90::high_speed();
    let dlx = drd_designs::dlx::build(&DlxParams::small()).expect("dlx builds");
    let dlx_full = drd_designs::dlx::build(&DlxParams::full()).expect("dlx builds");

    let mut b = Bench::new("kernels").iterations(10);

    // Verilog writer + parser round trip on the full DLX.
    let mut design = Design::new();
    design.insert(dlx_full.clone());
    let text = drd_netlist::verilog::write_design(&design);
    b.run("verilog_write_dlx_full", || {
        drd_netlist::verilog::write_design(std::hint::black_box(&design))
    });
    b.run("verilog_parse_dlx_full", || {
        drd_netlist::verilog::parse_design(std::hint::black_box(&text)).unwrap()
    });
    // The frozen pre-streaming front end on the same input: the
    // `*_legacy / *` mean ratio is the streaming speedup, measured
    // in-process so it is host-independent (see scripts/verify.sh).
    b.run("verilog_write_dlx_full_legacy", || {
        drd_netlist::verilog::legacy::write_design(std::hint::black_box(&design))
    });
    b.run("verilog_parse_dlx_full_legacy", || {
        drd_netlist::verilog::legacy::parse_design(std::hint::black_box(&text)).unwrap()
    });

    // Region grouping on the full DLX.
    b.run("grouping_dlx_full", || {
        group(&dlx_full, &lib, &GroupingOptions::recommended()).unwrap()
    });

    // STA arrival propagation on the full DLX.
    let graph = TimingGraph::build(&dlx_full, &lib, &GraphOptions::default()).unwrap();
    b.run("sta_arrivals_dlx_full", || {
        graph.arrivals(Corner::typical()).unwrap()
    });

    // STG reachability + executable flow-equivalence check.
    b.run("stg_reachability_semi_decoupled", || {
        Protocol::SemiDecoupled
            .stg()
            .reachability(1 << 14)
            .unwrap()
            .state_count()
    });
    b.run("stg_flow_equivalence_semi_decoupled", || {
        drd_stg::flow_equiv::check_flow_equivalence(&Protocol::SemiDecoupled.stg(), 4, 1 << 22)
            .unwrap()
    });

    // Event-driven simulation throughput: 20 clocked cycles of the small DLX.
    b.run("sim_dlx_small_20_cycles", || {
        let mut d = Design::new();
        d.insert(dlx.clone());
        let mut sim = Simulator::new(&d, &lib, SimOptions::default()).unwrap();
        sim.poke("irq", Lv::Zero).unwrap();
        sim.schedule_clock("clk", 4.0, 2.0, 20).unwrap();
        sim.run_for(90.0);
        sim.captures().capture_count("pc_r0")
    });

    // Full desynchronization of the small DLX.
    let tool = Desynchronizer::new(&lib).unwrap();
    b.run("desynchronize_dlx_small", || {
        tool.run(&dlx, &DesyncOptions::default()).unwrap()
    });

    // Interner kernels: string-keyed maps in pass loops were the scaling
    // bottleneck the symbol table removed. The pair of name-lookup
    // kernels keeps the old HashMap-of-String cost visible next to the
    // interned path every pass now takes.
    let names: Vec<String> = (0..50_000)
        .map(|i| format!("drd_g{}_net_{i}", i % 97))
        .collect();
    b.run("symbol_intern_50k", || {
        let mut t = drd_netlist::SymbolTable::with_capacity(names.len());
        for n in &names {
            std::hint::black_box(t.intern(n));
        }
        t.len()
    });
    let mut table = drd_netlist::SymbolTable::with_capacity(names.len());
    let syms: Vec<drd_netlist::Symbol> = names.iter().map(|n| table.intern(n)).collect();
    b.run("symbol_resolve_50k", || {
        let mut total = 0usize;
        for &s in &syms {
            total += table.resolve(s).len();
        }
        total
    });
    let string_map: std::collections::HashMap<&str, u32> = names
        .iter()
        .enumerate()
        .map(|(i, n)| (n.as_str(), i as u32))
        .collect();
    b.run("name_lookup_string_hashmap_50k", || {
        let mut acc = 0u64;
        for n in &names {
            acc += u64::from(string_map[n.as_str()]);
        }
        acc
    });
    let sym_map: std::collections::HashMap<drd_netlist::Symbol, u32> = syms
        .iter()
        .enumerate()
        .map(|(i, &s)| (s, i as u32))
        .collect();
    b.run("name_lookup_interned_50k", || {
        let mut acc = 0u64;
        for &s in &syms {
            acc += u64::from(sym_map[&s]);
        }
        acc
    });
    // Uniquing over a dense pre-taken range: quadratic before the
    // per-prefix counter cache, linear with it.
    b.run("unique_net_name_dense_1k", || {
        let mut m = drd_netlist::Module::new("t");
        m.add_net("p").unwrap();
        for _ in 0..1000 {
            let name = m.unique_net_name("p");
            m.add_net(name).unwrap();
        }
        m.net_count()
    });

    b.finish().expect("write BENCH_kernels.json");
}
