//! The serve wire protocol: newline-delimited JSON requests and
//! responses.
//!
//! One request per line, one response line per request, matched by the
//! caller-chosen `id` (responses may interleave across concurrent jobs,
//! so the `id` is the only ordering contract). Three request kinds:
//!
//! ```json
//! {"id":"j1","kind":"desync","verilog":"module t; ... endmodule\n",
//!  "deadline_ms":60000,
//!  "options":{"strict":false,"period_ns":2.4,"false_paths":["scan_en"]}}
//! {"id":"s1","kind":"stats"}
//! {"id":"bye","kind":"shutdown"}
//! ```
//!
//! A `desync` response carries the full artifact set — report, SDC,
//! Verilog and the deterministic flow trace — so a cache hit can answer
//! byte-identically to the cold run that populated it. Every artifact is
//! a JSON *string* (the trace is itself JSON text, escaped, because a
//! raw multi-line embed would break the one-line-per-response contract):
//!
//! ```json
//! {"id":"j1","status":"ok","exit_code":0,"cached":false,
//!  "netlist_hash":"<32 hex>","report":"...","sdc":"...","verilog":"...",
//!  "trace":"..."}
//! ```
//!
//! Failures answer with `status:"error"` and the CLI exit-code taxonomy
//! (`1` bad request, `2` netlist parse error, `3` flow error) plus an
//! `error_class` naming the [`DesyncError`] variant for flow errors:
//!
//! ```json
//! {"id":"j1","status":"error","error_kind":"flow","error_class":"liveness",
//!  "exit_code":3,"message":"liveness guard failed for region `r0`: ..."}
//! ```
//!
//! Unknown request kinds, unknown option keys and malformed JSON are all
//! `error_kind:"request"` responses — the server never dies on bad
//! input, it answers and moves on.

use drd_core::{DesyncError, DesyncOptions};

use crate::json::{self, Value};

/// A parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Run the desynchronization flow on an in-line Verilog netlist.
    Desync(DesyncJob),
    /// Report server counters (jobs, cache, queue, per-phase wall times).
    Stats {
        /// Echoed request id.
        id: String,
    },
    /// Stop accepting requests, drain in-flight jobs, then answer.
    Shutdown {
        /// Echoed request id.
        id: String,
    },
}

/// A `desync` job: the netlist source plus the flow options.
#[derive(Debug, Clone, PartialEq)]
pub struct DesyncJob {
    /// Caller-chosen id echoed on the response line.
    pub id: String,
    /// Gate-level Verilog source, inline. The raw bytes are the cache
    /// key's netlist half — hashed before parsing, so warm hits skip the
    /// parser entirely.
    pub verilog: String,
    /// Wall-clock budget for the job. Enforced twice: a job still queued
    /// past its deadline is answered without running, and the remaining
    /// budget is handed to the flow's per-pass deadline guard.
    pub deadline_ms: Option<u64>,
    /// Flow options (canonicalized into the cache key).
    pub options: DesyncOptions,
}

/// A request that could not be accepted. Carries the `id` when one was
/// recoverable from the line, so the error response still correlates.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestError {
    /// Echoed id, empty when the line was too broken to recover one.
    pub id: String,
    /// What was wrong.
    pub message: String,
}

/// Parses one request line.
///
/// # Errors
/// [`RequestError`] on malformed JSON, an unknown `kind`, a missing
/// required field, or an unrecognized option key (typos must fail loudly
/// — a silently-ignored option would desynchronize with the wrong
/// parameters and poison the cache key space).
pub fn parse_request(line: &str) -> Result<Request, RequestError> {
    let value = json::parse(line).map_err(|message| RequestError {
        id: recover_id(line),
        message: format!("malformed request JSON: {message}"),
    })?;
    let id = value
        .get("id")
        .and_then(Value::as_str)
        .unwrap_or_default()
        .to_owned();
    let fail = |message: String| RequestError { id: id.clone(), message };
    let Value::Obj(members) = &value else {
        return Err(fail("request must be a JSON object".to_owned()));
    };
    for (key, _) in members {
        if !matches!(key.as_str(), "id" | "kind" | "verilog" | "deadline_ms" | "options") {
            return Err(fail(format!("unknown request field `{key}`")));
        }
    }
    let kind = value
        .get("kind")
        .and_then(Value::as_str)
        .ok_or_else(|| fail("missing `kind` (desync | stats | shutdown)".to_owned()))?;
    match kind {
        "stats" => Ok(Request::Stats { id }),
        "shutdown" => Ok(Request::Shutdown { id }),
        "desync" => {
            let verilog = value
                .get("verilog")
                .and_then(Value::as_str)
                .ok_or_else(|| fail("desync request needs a `verilog` string".to_owned()))?
                .to_owned();
            let deadline_ms = match value.get("deadline_ms") {
                None => None,
                Some(v) => Some(parse_count(v).map_err(|m| fail(format!("deadline_ms: {m}")))?),
            };
            if deadline_ms == Some(0) {
                return Err(fail("deadline_ms must be positive".to_owned()));
            }
            let options = match value.get("options") {
                None => DesyncOptions::default(),
                Some(raw) => parse_options(raw).map_err(&fail)?,
            };
            Ok(Request::Desync(DesyncJob { id, verilog, deadline_ms, options }))
        }
        other => Err(fail(format!("unknown request kind `{other}`"))),
    }
}

/// Best-effort id extraction from a line that failed JSON parsing, so
/// the error response can still be correlated. Looks for a well-formed
/// `"id":"..."` member textually.
fn recover_id(line: &str) -> String {
    let Some(at) = line.find("\"id\"") else {
        return String::new();
    };
    let rest = line[at + 4..].trim_start();
    let Some(rest) = rest.strip_prefix(':') else {
        return String::new();
    };
    let rest = rest.trim_start();
    let Some(rest) = rest.strip_prefix('"') else {
        return String::new();
    };
    // Only escape-free ids are recoverable — good enough for diagnostics.
    match rest.split_once('"') {
        Some((id, _)) if !id.contains('\\') => id.to_owned(),
        _ => String::new(),
    }
}

fn parse_count(v: &Value) -> Result<u64, String> {
    let n = v.as_num().ok_or("expected a number")?;
    if n < 0.0 || n.fract() != 0.0 || n > u64::MAX as f64 {
        return Err(format!("expected a non-negative integer, found {n}"));
    }
    Ok(n as u64)
}

/// Builds [`DesyncOptions`] from the request's `options` object. Every
/// key is optional; unknown keys are rejected.
fn parse_options(raw: &Value) -> Result<DesyncOptions, String> {
    let Value::Obj(members) = raw else {
        return Err("`options` must be an object".to_owned());
    };
    let mut opts = DesyncOptions::default();
    for (key, v) in members {
        let expect_bool = || v.as_bool().ok_or(format!("option `{key}` expects a boolean"));
        let expect_num = || v.as_num().ok_or(format!("option `{key}` expects a number"));
        let expect_count = || parse_count(v).map_err(|m| format!("option `{key}`: {m}"));
        match key.as_str() {
            "single_group" => opts.grouping.single_group = expect_bool()?,
            "bus_grouping" => opts.grouping.bus_grouping = expect_bool()?,
            "false_paths" => {
                let items = v.as_arr().ok_or("option `false_paths` expects an array")?;
                for item in items {
                    let net = item
                        .as_str()
                        .ok_or("option `false_paths` expects an array of strings")?;
                    opts.grouping.false_path_nets.push(net.to_owned());
                }
            }
            "clean_logic" => opts.clean_logic = expect_bool()?,
            "muxed" => opts.muxed_delay_elements = expect_bool()?,
            "strict" => opts.strict = expect_bool()?,
            "margin" => opts.delay_margin = expect_num()?,
            "clock" => {
                opts.clock_port =
                    Some(v.as_str().ok_or("option `clock` expects a string")?.to_owned());
            }
            "period_ns" => opts.clock_period_ns = expect_num()?,
            "jobs" => {
                let jobs = expect_count()? as usize;
                if jobs == 0 {
                    return Err("option `jobs` must be at least 1".to_owned());
                }
                opts.jobs = Some(jobs);
            }
            "max_cells" => opts.max_cells = Some(expect_count()? as usize),
            "max_nets" => opts.max_nets = Some(expect_count()? as usize),
            "stg_state_limit" => opts.stg_state_limit = Some(expect_count()? as usize),
            "pass_deadline_ms" => opts.pass_deadline_ms = Some(expect_count()?),
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    Ok(opts)
}

/// The stable kebab-case class name of a [`DesyncError`] variant, for
/// the `error_class` response field.
pub fn error_class(e: &DesyncError) -> &'static str {
    match e {
        DesyncError::UnknownCell { .. } => "unknown-cell",
        DesyncError::Clock { .. } => "clock",
        DesyncError::Library(_) => "library",
        DesyncError::Netlist(_) => "netlist",
        DesyncError::Sta(_) => "sta",
        DesyncError::NoRule { .. } => "no-rule",
        DesyncError::Pipeline { .. } => "pipeline",
        DesyncError::Budget { .. } => "budget",
        DesyncError::Deadline { .. } => "deadline",
        DesyncError::Panic { .. } => "panic",
        DesyncError::Liveness { .. } => "liveness",
    }
}

/// Renders a `status:"error"` response line (no trailing newline).
/// `error_kind` is `request` (exit 1), `parse` (exit 2) or `flow`
/// (exit 3); `error_class` refines flow errors and is omitted when
/// empty.
pub fn error_response(id: &str, error_kind: &str, class: &str, message: &str) -> String {
    let exit_code = match error_kind {
        "request" => 1,
        "parse" => 2,
        _ => 3,
    };
    let mut out = String::with_capacity(message.len() + 96);
    out.push_str("{\"id\":");
    json::escape_into(&mut out, id);
    out.push_str(",\"status\":\"error\",\"error_kind\":\"");
    out.push_str(error_kind);
    out.push('"');
    if !class.is_empty() {
        out.push_str(",\"error_class\":\"");
        out.push_str(class);
        out.push('"');
    }
    out.push_str(&format!(",\"exit_code\":{exit_code},\"message\":"));
    json::escape_into(&mut out, message);
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn desync_request_parses_with_full_options() {
        let req = parse_request(
            r#"{"id":"j7","kind":"desync","verilog":"module t; endmodule","deadline_ms":500,
                "options":{"single_group":true,"muxed":true,"strict":true,"margin":1.2,
                           "clock":"ck","period_ns":3.5,"false_paths":["b","a"],"jobs":4,
                           "max_cells":1000,"pass_deadline_ms":250}}"#,
        )
        .unwrap();
        let Request::Desync(job) = req else { panic!("expected desync") };
        assert_eq!(job.id, "j7");
        assert_eq!(job.deadline_ms, Some(500));
        assert!(job.options.grouping.single_group);
        assert!(job.options.muxed_delay_elements && job.options.strict);
        assert_eq!(job.options.delay_margin, 1.2);
        assert_eq!(job.options.clock_port.as_deref(), Some("ck"));
        assert_eq!(job.options.clock_period_ns, 3.5);
        assert_eq!(job.options.grouping.false_path_nets, vec!["b", "a"]);
        assert_eq!(job.options.jobs, Some(4));
        assert_eq!(job.options.max_cells, Some(1000));
        assert_eq!(job.options.pass_deadline_ms, Some(250));
    }

    #[test]
    fn stats_and_shutdown_parse() {
        assert_eq!(
            parse_request(r#"{"id":"s","kind":"stats"}"#).unwrap(),
            Request::Stats { id: "s".to_owned() }
        );
        assert_eq!(
            parse_request(r#"{"kind":"shutdown"}"#).unwrap(),
            Request::Shutdown { id: String::new() }
        );
    }

    #[test]
    fn bad_requests_are_rejected_with_the_id_when_recoverable() {
        let e = parse_request(r#"{"id":"j1","kind":"desync"}"#).unwrap_err();
        assert_eq!(e.id, "j1");
        assert!(e.message.contains("verilog"), "{}", e.message);

        let e = parse_request(r#"{"id":"j2","kind":"desync","verilog":"m","options":{"jbos":1}}"#)
            .unwrap_err();
        assert!(e.message.contains("unknown option `jbos`"), "{}", e.message);

        let e = parse_request(r#"{"id":"j3","kind":"frobnicate"}"#).unwrap_err();
        assert!(e.message.contains("unknown request kind"), "{}", e.message);

        // Truncated JSON: the id still comes back via textual recovery.
        let e = parse_request(r#"{"id":"j4","kind":"desync","verilog":"#).unwrap_err();
        assert_eq!(e.id, "j4");
        assert!(e.message.contains("malformed request JSON"), "{}", e.message);
    }

    #[test]
    fn zero_jobs_and_zero_deadline_are_request_errors() {
        let e = parse_request(r#"{"id":"z","kind":"desync","verilog":"m","options":{"jobs":0}}"#)
            .unwrap_err();
        assert!(e.message.contains("at least 1"), "{}", e.message);
        let e = parse_request(r#"{"id":"z","kind":"desync","verilog":"m","deadline_ms":0}"#)
            .unwrap_err();
        assert!(e.message.contains("positive"), "{}", e.message);
    }

    #[test]
    fn error_responses_carry_the_exit_code_taxonomy() {
        let line = error_response("j1", "request", "", "bad");
        assert!(line.contains("\"exit_code\":1"), "{line}");
        let line = error_response("j1", "parse", "", "bad verilog");
        assert!(line.contains("\"exit_code\":2"), "{line}");
        let line = error_response("j1", "flow", "liveness", "wedged");
        assert!(line.contains("\"exit_code\":3") && line.contains("\"error_class\":\"liveness\""));
    }
}
