//! The long-running desynchronization server.
//!
//! One [`Server`] owns the prepared [`Desynchronizer`] (the gatefile is
//! built once and shared immutably by every job), the flow cache and the
//! observability counters. The serve loops ([`serve_stream`] for
//! stdin/stdout or a socket connection, [`serve_unix`] for a Unix
//! listener) read request lines, answer `stats` inline, and spawn one
//! scoped thread per `desync` job so many jobs run concurrently.
//!
//! **Cross-job scheduling.** [`Server::new`] installs the process-wide
//! [`drd_runner::governor`] with one token per core. Every per-region
//! task the flow fans out (region delays, FF substitution, control
//! network, SDC) takes a token before running, so per-region tasks from
//! *different* jobs interleave at core granularity: a job with few
//! regions cannot strand cores its siblings could use, and total running
//! tasks never exceed the machine. Tokens gate only *when* a task runs —
//! each job's merge order is still task order, so artifacts stay
//! byte-identical to a solo CLI run (the PR 5 invariant).
//!
//! **Flow cache.** Keyed on `(content_hash128(raw verilog bytes),
//! DesyncOptions::cache_key())`. The netlist half hashes the request's
//! raw source bytes, so a warm hit answers without parsing a single
//! token of Verilog; the options half is the canonicalized option string
//! (sorted/deduped false paths, `jobs` excluded because worker count
//! never changes artifacts). A hit replays the stored report, SDC,
//! Verilog and deterministic trace byte-identically. Only successful
//! flows are cached — errors re-run, so a transient budget/deadline
//! failure is not sticky.
//!
//! **Deadlines.** A job's `deadline_ms` is enforced twice: a job whose
//! budget expired while it sat behind other work is answered with a
//! `deadline` flow error without running, and the remaining budget is
//! handed to the flow's per-pass deadline guard (which also observes
//! governor queueing, since pass wall time includes token waits).
//!
//! **Shutdown.** A `shutdown` request stops intake, drains every
//! in-flight job (their responses are still written), then answers the
//! shutdown request last. EOF on stdin drains the same way, minus the
//! response.

use std::collections::{BTreeMap, HashMap};
use std::io::{BufRead, Write};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use drd_core::{DesyncError, Desynchronizer};
use drd_liberty::Library;
use drd_netlist::hash::content_hash128;
use drd_runner::governor;

use crate::json;
use crate::protocol::{self, DesyncJob, Request};

/// The finished artifact set of one successful flow — exactly the bytes
/// a cache hit must replay.
#[derive(Debug)]
struct Artifacts {
    /// `content_hash_hex` of the input netlist bytes.
    netlist_hash: String,
    /// `{:?}` rendering of the [`drd_core::DesyncReport`].
    report: String,
    /// The SDC constraint file.
    sdc: String,
    /// The desynchronized design, written back to Verilog.
    verilog: String,
    /// The deterministic flow trace (`FlowTrace::to_json_deterministic`).
    trace: String,
}

/// Monotonic counters behind one lock (every update is a handful of
/// integer bumps; jobs spend their time in the flow, not here).
#[derive(Debug, Default)]
struct Counters {
    jobs_ok: u64,
    jobs_failed: u64,
    cache_hits: u64,
    cache_misses: u64,
    /// Accumulated wall time per flow pass, across all cold jobs.
    phase_wall_ns: BTreeMap<&'static str, u128>,
}

/// A desynchronization job server. See the module docs for the design.
pub struct Server<'a> {
    lib: &'a Library,
    tool: Desynchronizer<'a>,
    cache: Mutex<HashMap<(u128, String), Arc<Artifacts>>>,
    counters: Mutex<Counters>,
    in_flight: AtomicUsize,
}

impl<'a> Server<'a> {
    /// Prepares a server for `lib`: builds the gatefile once and
    /// installs the process-wide core-token governor with `tokens`
    /// tokens (a no-op if one is already installed — the governor is
    /// process-global and first-install-wins).
    ///
    /// # Errors
    /// Returns [`DesyncError::Library`] when the library cannot support
    /// desynchronization.
    pub fn new(lib: &'a Library, tokens: usize) -> Result<Self, DesyncError> {
        governor::install(tokens);
        Ok(Server {
            lib,
            tool: Desynchronizer::new(lib)?,
            cache: Mutex::new(HashMap::new()),
            counters: Mutex::new(Counters::default()),
            in_flight: AtomicUsize::new(0),
        })
    }

    /// The library this server desynchronizes against.
    pub fn library(&self) -> &Library {
        self.lib
    }

    /// Executes one parsed request and returns its response line
    /// (without trailing newline). Synchronous — the serve loops call
    /// this from per-job threads. `received` is when the request line
    /// was read, the anchor for the job deadline.
    pub fn execute(&self, request: &Request, received: Instant) -> String {
        match request {
            Request::Stats { id } => self.stats_response(id),
            Request::Shutdown { id } => self.shutdown_response(id),
            Request::Desync(job) => self.run_job(job, received),
        }
    }

    /// Parses and executes one raw request line — the single-call path
    /// for in-process callers (benchmarks, tests). Never panics on bad
    /// input; malformed lines come back as `request` error responses.
    pub fn handle_line(&self, line: &str) -> String {
        match protocol::parse_request(line) {
            Err(e) => protocol::error_response(&e.id, "request", "", &e.message),
            Ok(request) => self.execute(&request, Instant::now()),
        }
    }

    fn run_job(&self, job: &DesyncJob, received: Instant) -> String {
        let _depth = InFlight::enter(&self.in_flight);
        let netlist_hash = content_hash128(job.verilog.as_bytes());
        let key = (netlist_hash, job.options.cache_key());

        if let Some(hit) = self.cache.lock().unwrap().get(&key).map(Arc::clone) {
            let mut counters = self.counters.lock().unwrap();
            counters.cache_hits += 1;
            counters.jobs_ok += 1;
            drop(counters);
            return ok_response(&job.id, true, &hit);
        }
        self.counters.lock().unwrap().cache_misses += 1;

        // The queue-side half of the deadline: a job that waited past its
        // whole budget is answered without running at all.
        let mut options = job.options.clone();
        if let Some(deadline_ms) = job.deadline_ms {
            let waited_ms = received.elapsed().as_millis() as u64;
            if waited_ms >= deadline_ms {
                self.counters.lock().unwrap().jobs_failed += 1;
                return protocol::error_response(
                    &job.id,
                    "flow",
                    "deadline",
                    &format!(
                        "job spent {waited_ms} ms queued, past its {deadline_ms} ms deadline"
                    ),
                );
            }
            let remaining = deadline_ms - waited_ms;
            options.pass_deadline_ms =
                Some(options.pass_deadline_ms.map_or(remaining, |p| p.min(remaining)));
        }

        let module = match drd_netlist::verilog::parse_module(&job.verilog) {
            Ok(m) => m,
            Err(e) => {
                self.counters.lock().unwrap().jobs_failed += 1;
                return protocol::error_response(&job.id, "parse", "", &e.to_string());
            }
        };

        let (outcome, trace) = self.tool.run_checked(module, &options);
        {
            let mut counters = self.counters.lock().unwrap();
            for pass in &trace.passes {
                *counters.phase_wall_ns.entry(pass.name).or_insert(0) += pass.wall_ns;
            }
        }
        match outcome {
            Err(e) => {
                self.counters.lock().unwrap().jobs_failed += 1;
                protocol::error_response(
                    &job.id,
                    "flow",
                    protocol::error_class(&e),
                    &e.to_string(),
                )
            }
            Ok(result) => {
                let artifacts = Arc::new(Artifacts {
                    netlist_hash: format!("{netlist_hash:032x}"),
                    report: format!("{:?}", result.report),
                    sdc: result.sdc,
                    verilog: drd_netlist::verilog::write_design(&result.design),
                    trace: trace.to_json_deterministic(),
                });
                self.cache.lock().unwrap().insert(key, Arc::clone(&artifacts));
                self.counters.lock().unwrap().jobs_ok += 1;
                ok_response(&job.id, false, &artifacts)
            }
        }
    }

    fn stats_response(&self, id: &str) -> String {
        let counters = self.counters.lock().unwrap();
        let hits = counters.cache_hits;
        let misses = counters.cache_misses;
        let lookups = hits + misses;
        let hit_rate = if lookups == 0 { 0.0 } else { hits as f64 / lookups as f64 };
        let (capacity, available, waiting) = governor::stats().unwrap_or((0, 0, 0));
        let mut phases = String::from("{");
        for (i, (name, wall_ns)) in counters.phase_wall_ns.iter().enumerate() {
            if i > 0 {
                phases.push(',');
            }
            phases.push_str(&format!("\"{name}\":{:.3}", *wall_ns as f64 / 1e6));
        }
        phases.push('}');
        let mut out = String::from("{\"id\":");
        json::escape_into(&mut out, id);
        out.push_str(&format!(
            ",\"status\":\"ok\",\"kind\":\"stats\",\"jobs_served\":{},\"jobs_ok\":{},\
             \"jobs_failed\":{},\"cache_hits\":{hits},\"cache_misses\":{misses},\
             \"cache_hit_rate\":{hit_rate:.4},\"cache_entries\":{},\"queue_depth\":{},\
             \"governor_capacity\":{capacity},\"governor_available\":{available},\
             \"governor_waiting\":{waiting},\"phase_wall_ms\":{phases}}}",
            counters.jobs_ok + counters.jobs_failed,
            counters.jobs_ok,
            counters.jobs_failed,
            self.cache.lock().unwrap().len(),
            self.in_flight.load(Ordering::Relaxed),
        ));
        out
    }

    fn shutdown_response(&self, id: &str) -> String {
        let counters = self.counters.lock().unwrap();
        let mut out = String::from("{\"id\":");
        json::escape_into(&mut out, id);
        out.push_str(&format!(
            ",\"status\":\"ok\",\"kind\":\"shutdown\",\"jobs_served\":{}}}",
            counters.jobs_ok + counters.jobs_failed
        ));
        out
    }
}

/// RAII in-flight counter, so a panicking job thread cannot leave the
/// queue depth stuck.
struct InFlight<'a>(&'a AtomicUsize);

impl<'a> InFlight<'a> {
    fn enter(counter: &'a AtomicUsize) -> Self {
        counter.fetch_add(1, Ordering::Relaxed);
        InFlight(counter)
    }
}

impl Drop for InFlight<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }
}

fn ok_response(id: &str, cached: bool, artifacts: &Artifacts) -> String {
    let mut out = String::with_capacity(
        artifacts.report.len() + artifacts.sdc.len() + artifacts.verilog.len()
            + artifacts.trace.len()
            + 160,
    );
    out.push_str("{\"id\":");
    json::escape_into(&mut out, id);
    out.push_str(&format!(
        ",\"status\":\"ok\",\"exit_code\":0,\"cached\":{cached},\"netlist_hash\":\"{}\",",
        artifacts.netlist_hash
    ));
    out.push_str("\"report\":");
    json::escape_into(&mut out, &artifacts.report);
    out.push_str(",\"sdc\":");
    json::escape_into(&mut out, &artifacts.sdc);
    out.push_str(",\"verilog\":");
    json::escape_into(&mut out, &artifacts.verilog);
    // The deterministic trace is pretty-printed (multi-line) JSON, so it
    // rides as an escaped string — a raw embed would break the
    // one-line-per-response NDJSON contract.
    out.push_str(",\"trace\":");
    json::escape_into(&mut out, &artifacts.trace);
    out.push('}');
    out
}

/// Serves one NDJSON stream until EOF, a `shutdown` request, or `stop`
/// is raised by another connection. Desync jobs run on their own scoped
/// threads (responses interleave in completion order, matched by `id`);
/// `stats` answers inline so it reflects the live queue. Returns `true`
/// when this stream received the shutdown request.
///
/// The reader may be on a socket with a read timeout: `WouldBlock` /
/// `TimedOut` reads just re-check `stop` and continue (a partially-read
/// line survives in the buffer across retries).
///
/// # Errors
/// Propagates reader/writer I/O failures (except timeouts).
pub fn serve_stream<R, W>(
    server: &Server<'_>,
    mut reader: R,
    writer: W,
    stop: &AtomicBool,
) -> std::io::Result<bool>
where
    R: BufRead,
    W: Write + Send,
{
    let writer = Mutex::new(writer);
    let write_line = |line: &str| -> std::io::Result<()> {
        let mut w = writer.lock().unwrap();
        writeln!(w, "{line}")?;
        w.flush()
    };
    let failure: Mutex<Option<std::io::Error>> = Mutex::new(None);
    let mut shutdown_id: Option<String> = None;

    std::thread::scope(|scope| -> std::io::Result<()> {
        let mut line = String::new();
        loop {
            if stop.load(Ordering::Relaxed) {
                return Ok(());
            }
            match reader.read_line(&mut line) {
                Ok(0) => return Ok(()),
                Ok(_) => {
                    let text = line.trim();
                    if !text.is_empty() {
                        match protocol::parse_request(text) {
                            Err(e) => write_line(&protocol::error_response(
                                &e.id, "request", "", &e.message,
                            ))?,
                            Ok(Request::Shutdown { id }) => {
                                shutdown_id = Some(id);
                                return Ok(());
                            }
                            Ok(request @ Request::Stats { .. }) => {
                                write_line(&server.execute(&request, Instant::now()))?;
                            }
                            Ok(request) => {
                                let received = Instant::now();
                                let write_line = &write_line;
                                let failure = &failure;
                                scope.spawn(move || {
                                    let response = server.execute(&request, received);
                                    if let Err(e) = write_line(&response) {
                                        let mut slot = failure.lock().unwrap();
                                        slot.get_or_insert(e);
                                    }
                                });
                            }
                        }
                    }
                    line.clear();
                }
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    // Poll `stop`; any partial line stays buffered.
                }
                Err(e) => return Err(e),
            }
        }
        // The scope exit below joins every in-flight job (graceful
        // drain) before the shutdown response goes out.
    })?;

    if let Some(e) = failure.into_inner().unwrap() {
        return Err(e);
    }
    match shutdown_id {
        Some(id) => {
            write_line(&server.shutdown_response(&id))?;
            stop.store(true, Ordering::Relaxed);
            Ok(true)
        }
        None => Ok(false),
    }
}

/// Serves a Unix domain socket at `path` until some connection sends a
/// `shutdown` request. Each connection gets its own [`serve_stream`]
/// thread; jobs from all connections share the flow cache and the
/// core-token governor. The socket file is created fresh (a stale one is
/// unlinked) and removed on exit.
///
/// # Errors
/// Propagates bind/accept failures.
pub fn serve_unix(server: &Server<'_>, path: &std::path::Path) -> std::io::Result<()> {
    let _ = std::fs::remove_file(path);
    let listener = std::os::unix::net::UnixListener::bind(path)?;
    listener.set_nonblocking(true)?;
    let stop = AtomicBool::new(false);
    let result = std::thread::scope(|scope| -> std::io::Result<()> {
        loop {
            if stop.load(Ordering::Relaxed) {
                return Ok(());
            }
            match listener.accept() {
                Ok((stream, _)) => {
                    stream.set_nonblocking(false)?;
                    stream.set_read_timeout(Some(Duration::from_millis(100)))?;
                    let reader = std::io::BufReader::new(stream.try_clone()?);
                    let stop = &stop;
                    scope.spawn(move || {
                        // A connection-level I/O failure (client hung up
                        // mid-job) only ends that connection.
                        let _ = serve_stream(server, reader, stream, stop);
                    });
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(20));
                }
                Err(e) => return Err(e),
            }
        }
    });
    let _ = std::fs::remove_file(path);
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use drd_liberty::vlib90;

    /// A tiny but real synchronous design the flow fully desynchronizes.
    fn toy_verilog(name: &str) -> String {
        format!(
            "module {name} (clk, d, q);\n\
             input clk, d;\n\
             output q;\n\
             wire n1;\n\
             INVX1 u1 (.A(d), .Z(n1));\n\
             DFFX1 r0 (.D(n1), .CK(clk), .Q(q));\n\
             endmodule\n"
        )
    }

    fn request_line(id: &str, verilog: &str) -> String {
        format!(
            "{{\"id\":{},\"kind\":\"desync\",\"verilog\":{}}}",
            json::escape(id),
            json::escape(verilog)
        )
    }

    #[test]
    fn jobs_cache_and_errors_flow_through_one_server() {
        let lib = vlib90::high_speed();
        let server = Server::new(&lib, 4).unwrap();

        // Cold job: full artifact set, cached:false.
        let cold = server.handle_line(&request_line("j1", &toy_verilog("t")));
        assert!(cold.contains("\"status\":\"ok\""), "{cold}");
        assert!(cold.contains("\"cached\":false"), "{cold}");
        assert!(cold.contains("\"exit_code\":0"));
        for field in ["\"report\":", "\"sdc\":", "\"verilog\":", "\"trace\":", "\"netlist_hash\":"]
        {
            assert!(cold.contains(field), "missing {field} in {cold}");
        }

        // Warm job, different id: byte-identical artifacts, cached:true.
        let warm = server.handle_line(&request_line("j2", &toy_verilog("t")));
        assert!(warm.contains("\"cached\":true"), "{warm}");
        assert_eq!(
            cold.replace("\"id\":\"j1\"", "").replace("\"cached\":false", ""),
            warm.replace("\"id\":\"j2\"", "").replace("\"cached\":true", ""),
            "cache hit must replay the cold artifacts byte-identically"
        );

        // Different options → different cache key → cold again.
        let other = server.handle_line(&format!(
            "{{\"id\":\"j3\",\"kind\":\"desync\",\"options\":{{\"muxed\":true}},\"verilog\":{}}}",
            json::escape(&toy_verilog("t"))
        ));
        assert!(other.contains("\"cached\":false"), "{other}");

        // Parse error → exit 2, server keeps serving.
        let bad = server.handle_line(&request_line("j4", "module broken ((("));
        assert!(bad.contains("\"error_kind\":\"parse\"") && bad.contains("\"exit_code\":2"));

        // Malformed JSON → request error, exit 1.
        let mal = server.handle_line("{\"id\":\"j5\",");
        assert!(mal.contains("\"error_kind\":\"request\"") && mal.contains("\"exit_code\":1"));

        // Flow error (impossible cell budget) → exit 3 with a class.
        let tight = server.handle_line(&format!(
            "{{\"id\":\"j6\",\"kind\":\"desync\",\"options\":{{\"max_cells\":1}},\"verilog\":{}}}",
            json::escape(&toy_verilog("t"))
        ));
        assert!(tight.contains("\"error_kind\":\"flow\"") && tight.contains("\"exit_code\":3"));
        assert!(tight.contains("\"error_class\":\"budget\""), "{tight}");

        // Stats reflect all of the above.
        let stats = server.handle_line("{\"id\":\"s\",\"kind\":\"stats\"}");
        // j5 (malformed JSON) never became a job: 3 ok + 2 failed.
        assert!(stats.contains("\"jobs_served\":5"), "{stats}");
        assert!(stats.contains("\"cache_hits\":1"), "{stats}");
        assert!(stats.contains("\"cache_entries\":2"), "{stats}");
        assert!(stats.contains("\"phase_wall_ms\":{\"clean\":"), "{stats}");
        let parsed = json::parse(&stats).unwrap();
        assert_eq!(parsed.get("queue_depth").unwrap().as_num(), Some(0.0));
        assert!(parsed.get("cache_hit_rate").unwrap().as_num().unwrap() > 0.0);
    }

    #[test]
    fn expired_deadline_is_answered_without_running() {
        let lib = vlib90::high_speed();
        let server = Server::new(&lib, 4).unwrap();
        let request = protocol::parse_request(&format!(
            "{{\"id\":\"late\",\"kind\":\"desync\",\"deadline_ms\":1,\"verilog\":{}}}",
            json::escape(&toy_verilog("t"))
        ))
        .unwrap();
        let long_ago = Instant::now() - Duration::from_millis(50);
        let response = server.execute(&request, long_ago);
        assert!(response.contains("\"error_class\":\"deadline\""), "{response}");
        assert!(response.contains("queued"), "{response}");
    }

    #[test]
    fn stream_serving_drains_and_answers_shutdown_last() {
        let lib = vlib90::high_speed();
        let server = Server::new(&lib, 4).unwrap();
        let input = format!(
            "{}\n{}\nnot json at all\n{}\n{{\"id\":\"bye\",\"kind\":\"shutdown\"}}\n",
            request_line("a", &toy_verilog("t1")),
            request_line("b", &toy_verilog("t2")),
            request_line("c", &toy_verilog("t1")),
        );
        let mut output: Vec<u8> = Vec::new();
        let stop = AtomicBool::new(false);
        let shut =
            serve_stream(&server, input.as_bytes(), &mut output, &stop).expect("serve I/O ok");
        assert!(shut, "shutdown request must be reported");
        assert!(stop.load(Ordering::Relaxed));

        let text = String::from_utf8(output).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 5, "4 request responses + shutdown: {text}");
        // Every id answered exactly once; shutdown is the last line.
        for id in ["\"id\":\"a\"", "\"id\":\"b\"", "\"id\":\"c\""] {
            assert_eq!(lines.iter().filter(|l| l.contains(id)).count(), 1, "{text}");
        }
        assert_eq!(lines.iter().filter(|l| l.contains("\"error_kind\":\"request\"")).count(), 1);
        assert!(lines.last().unwrap().contains("\"kind\":\"shutdown\""), "{text}");
        assert!(lines.last().unwrap().contains("\"jobs_served\":3"), "{text}");
        // Every response line is valid JSON.
        for l in &lines {
            json::parse(l).unwrap_or_else(|e| panic!("bad response line {l}: {e}"));
        }
    }

    #[test]
    fn unix_socket_round_trip() {
        use std::io::{BufRead, BufReader, Write};

        let lib = vlib90::high_speed();
        let server = Server::new(&lib, 4).unwrap();
        let path = std::env::temp_dir().join(format!("drd-serve-test-{}.sock", std::process::id()));
        let path2 = path.clone();

        std::thread::scope(|scope| {
            let handle = scope.spawn(|| serve_unix(&server, &path2));
            // Wait for the socket to appear.
            let mut stream = None;
            for _ in 0..200 {
                match std::os::unix::net::UnixStream::connect(&path) {
                    Ok(s) => {
                        stream = Some(s);
                        break;
                    }
                    Err(_) => std::thread::sleep(Duration::from_millis(10)),
                }
            }
            let mut stream = stream.expect("server socket never came up");
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            writeln!(stream, "{}", request_line("u1", &toy_verilog("t"))).unwrap();
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            assert!(line.contains("\"id\":\"u1\"") && line.contains("\"status\":\"ok\""));
            writeln!(stream, "{{\"id\":\"bye\",\"kind\":\"shutdown\"}}").unwrap();
            line.clear();
            reader.read_line(&mut line).unwrap();
            assert!(line.contains("\"kind\":\"shutdown\""), "{line}");
            handle.join().unwrap().expect("socket server exits cleanly");
        });
        assert!(!path.exists(), "socket file removed on exit");
    }
}
