//! A minimal JSON reader/writer for the serve protocol.
//!
//! The workspace is dependency-free by policy, so the NDJSON request
//! layer parses with this ~200-line recursive-descent reader instead of
//! serde. It accepts exactly RFC 8259 JSON (objects, arrays, strings
//! with the standard escapes including `\uXXXX` pairs, numbers, bools,
//! null) and rejects everything else with a positioned message — the
//! server turns that message into a structured `request` error without
//! dying, so one malformed line can never take the process down.
//!
//! Writing goes the other way through [`escape`]: response strings are
//! escaped onto a buffer and the rest of each response line is assembled
//! with `format!`, the same hand-rolled style `FlowTrace::to_json` uses.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always carried as `f64`; the protocol's numeric
    /// fields are small counts and millisecond budgets, well inside the
    /// 2^53 exact-integer range).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in source order (the protocol never needs map lookup
    /// faster than a linear scan over a handful of keys).
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on an object; `None` on missing key or non-object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parses one complete JSON value from `text`, rejecting trailing junk.
///
/// # Errors
/// A human-readable message with the byte offset of the first problem.
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while let Some(b' ' | b'\t' | b'\n' | b'\r') = bytes.get(*pos) {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, want: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&want) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{}` at byte {}", want as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Value::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, b"true", Value::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, b"false", Value::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, b"null", Value::Null),
        Some(b'-' | b'0'..=b'9') => parse_number(bytes, pos),
        Some(&b) => Err(format!("unexpected byte `{}` at {}", b as char, *pos)),
        None => Err("unexpected end of input".to_owned()),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    word: &[u8],
    value: Value,
) -> Result<Value, String> {
    if bytes.len() >= *pos + word.len() && &bytes[*pos..*pos + word.len()] == word {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("bad literal at byte {}", *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while let Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') = bytes.get(*pos) {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|n| n.is_finite())
        .map(Value::Num)
        .ok_or_else(|| format!("bad number at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_owned()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                let esc = bytes.get(*pos).ok_or("unterminated escape")?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{0008}'),
                    b'f' => out.push('\u{000C}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let hi = parse_hex4(bytes, pos)?;
                        let code = if (0xD800..0xDC00).contains(&hi) {
                            // Surrogate pair: the low half must follow.
                            if bytes.get(*pos) != Some(&b'\\') || bytes.get(*pos + 1) != Some(&b'u')
                            {
                                return Err(format!("lone surrogate at byte {}", *pos));
                            }
                            *pos += 2;
                            let lo = parse_hex4(bytes, pos)?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err(format!("bad low surrogate at byte {}", *pos));
                            }
                            0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                        } else {
                            hi
                        };
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| format!("bad code point at byte {}", *pos))?,
                        );
                    }
                    other => return Err(format!("bad escape `\\{}`", *other as char)),
                }
            }
            Some(&b) if b < 0x20 => {
                return Err(format!("raw control byte {b:#04x} in string at {}", *pos))
            }
            Some(_) => {
                // Copy one whole UTF-8 scalar (bytes is valid UTF-8: it
                // came from a &str).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().ok_or("unterminated string")?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_hex4(bytes: &[u8], pos: &mut usize) -> Result<u32, String> {
    let slice = bytes
        .get(*pos..*pos + 4)
        .ok_or_else(|| format!("truncated \\u escape at byte {}", *pos))?;
    let text = std::str::from_utf8(slice).map_err(|e| e.to_string())?;
    let code =
        u32::from_str_radix(text, 16).map_err(|_| format!("bad \\u escape at byte {}", *pos))?;
    *pos += 4;
    Ok(code)
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            _ => return Err(format!("expected `,` or `]` at byte {}", *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(bytes, pos, b'{')?;
    let mut members = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Obj(members));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        members.push((key, parse_value(bytes, pos)?));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Obj(members));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {}", *pos)),
        }
    }
}

/// Appends `text` to `out` as a quoted JSON string, escaping quotes,
/// backslashes and control characters.
pub fn escape_into(out: &mut String, text: &str) {
    out.push('"');
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// [`escape_into`] returning a fresh string.
pub fn escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len() + 2);
    escape_into(&mut out, text);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_protocol_shapes() {
        let v = parse(r#"{"id":"j1","kind":"desync","options":{"period_ns":2.4,"strict":false,"false_paths":["a","b"]},"verilog":"module t;\nendmodule\n"}"#).unwrap();
        assert_eq!(v.get("id").unwrap().as_str(), Some("j1"));
        assert_eq!(v.get("kind").unwrap().as_str(), Some("desync"));
        let opts = v.get("options").unwrap();
        assert_eq!(opts.get("period_ns").unwrap().as_num(), Some(2.4));
        assert_eq!(opts.get("strict").unwrap().as_bool(), Some(false));
        assert_eq!(opts.get("false_paths").unwrap().as_arr().unwrap().len(), 2);
        assert_eq!(
            v.get("verilog").unwrap().as_str(),
            Some("module t;\nendmodule\n")
        );
    }

    #[test]
    fn escape_round_trips_through_parse() {
        let nasty = "line1\nline\\2 \"quoted\"\ttab\u{0007}bell\u{1F600}";
        let encoded = escape(nasty);
        assert_eq!(parse(&encoded).unwrap().as_str(), Some(nasty));
    }

    #[test]
    fn surrogate_pairs_and_unicode_escapes_decode() {
        assert_eq!(
            parse(r#""A😀""#).unwrap().as_str(),
            Some("A\u{1F600}")
        );
        assert!(parse(r#""\ud83d""#).is_err(), "lone surrogate rejected");
    }

    #[test]
    fn malformed_inputs_are_rejected_with_positions() {
        for bad in [
            "",
            "{",
            "{\"a\":}",
            "[1,2",
            "tru",
            "{\"a\":1}x",
            "\"unterminated",
            "{\"a\" 1}",
            "nan",
            "1e999",
        ] {
            assert!(parse(bad).is_err(), "accepted malformed input: {bad:?}");
        }
    }

    #[test]
    fn numbers_parse_including_negatives_and_exponents() {
        assert_eq!(parse("-3.25e2").unwrap().as_num(), Some(-325.0));
        assert_eq!(parse("0").unwrap().as_num(), Some(0.0));
    }
}
