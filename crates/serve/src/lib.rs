//! # drd-serve — desynchronization as a long-running service
//!
//! `drdesync serve` turns the one-shot CLI flow into a resident server:
//! many concurrent desynchronization jobs over newline-delimited JSON,
//! on stdin/stdout (`--stdio`) or a Unix domain socket. The pieces:
//!
//! * [`json`] — a dependency-free RFC 8259 reader/writer (the workspace
//!   has no serde by policy);
//! * [`protocol`] — request/response grammar, the [`drd_core::DesyncError`]
//!   → `error_class` mapping and the CLI exit-code taxonomy in response
//!   `exit_code` fields;
//! * [`server`] — the [`server::Server`]: shared gatefile, content-hash
//!   flow cache, per-job deadlines, cross-job core-token scheduling via
//!   [`drd_runner::governor`], stats, and graceful drain on shutdown.
//!
//! The load-bearing invariant, inherited from the one-shot flow: a job's
//! report, SDC, Verilog and deterministic trace are **byte-identical**
//! whether it runs through the CLI or the server, alone or next to 63
//! other jobs, cold or out of the cache. The differential oracle in the
//! workspace root (`tests/serve_differential.rs`) holds the server to
//! that.

pub mod json;
pub mod protocol;
pub mod server;

pub use protocol::{parse_request, DesyncJob, Request, RequestError};
pub use server::{serve_stream, serve_unix, Server};
