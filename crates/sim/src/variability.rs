//! Monte-Carlo inter-chip process variation (Fig. 5.4's methodology).
//!
//! "We have assumed that the desynchronized real average case is a normal
//! distribution between the two extreme cases, exactly like SSTA does for
//! variability factors" (§5.2.2). Each fabricated chip draws a process
//! point `t ∈ [0, 1]` (0 = best corner, 1 = worst) from a clamped
//! Gaussian; the delay elements track the same silicon as the logic they
//! match, so a desynchronized chip runs at its own `t` while a synchronous
//! design must be clocked for `t = 1`.

use drd_liberty::Corner;

/// SplitMix64 step: the sim crate keeps its own inlined generator (it
/// cannot depend on `drd-check`, which depends on this crate) so the
/// workspace stays free of registry dependencies.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn uniform(state: &mut u64) -> f64 {
    (splitmix64(state) >> 11) as f64 / (1u64 << 53) as f64
}

/// A population of fabricated chips with per-chip process points.
#[derive(Debug, Clone)]
pub struct ChipPopulation {
    points: Vec<f64>,
}

impl ChipPopulation {
    /// Samples `n` chips: `t ~ N(0.5, sigma)` clamped to `[0, 1]`.
    pub fn sample(n: usize, sigma: f64, seed: u64) -> ChipPopulation {
        let mut state = seed;
        let points = (0..n)
            .map(|_| {
                // Box–Muller on two uniforms from the seeded RNG.
                let u1 = uniform(&mut state).max(1e-12);
                let u2 = uniform(&mut state);
                let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
                (0.5 + z * sigma).clamp(0.0, 1.0)
            })
            .collect();
        ChipPopulation { points }
    }

    /// Per-chip process points.
    pub fn points(&self) -> &[f64] {
        &self.points
    }

    /// The operating corner of chip `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn corner(&self, i: usize) -> Corner {
        Corner::interpolate(self.points[i])
    }

    /// Number of chips.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True if the population is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Fraction of chips whose value under `f` is below `threshold` —
    /// e.g. the fraction of desynchronized chips faster than the
    /// synchronous worst-case period (the shaded ~90 % area of Fig. 5.4).
    pub fn fraction_below(&self, threshold: f64, mut f: impl FnMut(Corner) -> f64) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        let below = self
            .points
            .iter()
            .filter(|&&t| f(Corner::interpolate(t)) < threshold)
            .count();
        below as f64 / self.points.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn population_is_deterministic_and_centered() {
        let a = ChipPopulation::sample(2000, 0.15, 1);
        let b = ChipPopulation::sample(2000, 0.15, 1);
        assert_eq!(a.points(), b.points());
        assert_eq!(a.len(), 2000);
        assert!(!a.is_empty());
        let mean: f64 = a.points().iter().sum::<f64>() / a.len() as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
        assert!(a.points().iter().all(|&t| (0.0..=1.0).contains(&t)));
    }

    #[test]
    fn fraction_below_tracks_distribution() {
        let pop = ChipPopulation::sample(4000, 0.15, 7);
        // Delay grows with t; the threshold at the worst corner's delay
        // should be nearly always met.
        let worst_delay = Corner::worst().delay(1.0);
        let frac = pop.fraction_below(worst_delay, |c| c.delay(1.0));
        assert!(frac > 0.95, "{frac}");
        // The threshold at the typical point splits the population.
        let mid = Corner::interpolate(0.5).delay(1.0);
        let frac_mid = pop.fraction_below(mid, |c| c.delay(1.0));
        assert!((0.35..0.65).contains(&frac_mid), "{frac_mid}");
    }

    #[test]
    fn corner_accessor() {
        let pop = ChipPopulation::sample(3, 0.1, 2);
        let c = pop.corner(0);
        assert!(c.delay_factor >= Corner::best().delay_factor);
        assert!(c.delay_factor <= Corner::worst().delay_factor);
    }
}
